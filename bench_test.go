// Package fedprox_bench regenerates every table and figure of the paper's
// evaluation as a testing.B benchmark, plus ablation benches for the
// design choices called out in DESIGN.md §5.
//
// Each benchmark executes its experiment at the miniature preset (the
// comparisons' qualitative shape is preserved; see EXPERIMENTS.md for
// paper-scale numbers) and reports the headline scalar of the figure as a
// custom metric so regressions in *outcome*, not just runtime, are
// visible in benchstat output.
//
//	go test -bench=. -benchmem
package fedprox_bench

import (
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/experiments"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
	"fedprox/internal/solver"
	"fedprox/internal/speed"
)

// benchOptions are small enough that the full bench suite completes in a
// couple of minutes.
func benchOptions() experiments.Options {
	o := experiments.Fast()
	o.Scale = 0.1
	o.Rounds = 10
	o.SeqRounds = 2
	o.EvalEvery = 5
	o.LocalEpochs = 10
	o.Hidden = 8
	o.Embed = 4
	o.MaxSeqLen = 8
	return o
}

// runExperiment executes the registered experiment once per iteration and
// reports metric (derived from the result) under name.
func runExperiment(b *testing.B, id string, o experiments.Options, name string, metric func(*experiments.Result) float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, o)
		if err != nil {
			b.Fatal(err)
		}
		if name != "" {
			b.ReportMetric(metric(res), name)
		}
	}
}

// finalLoss returns the final training loss of run r in section s.
func finalLoss(res *experiments.Result, s, r int) float64 {
	return res.Sections[s].Runs[r].Final().TrainLoss
}

func BenchmarkTable1Stats(b *testing.B) {
	runExperiment(b, "table1", benchOptions(), "", nil)
}

func BenchmarkFigure1Synthetic(b *testing.B) {
	o := benchOptions()
	o.Datasets = []string{"synthetic"}
	// Metric: FedAvg loss minus FedProx(best mu) loss at 90% stragglers —
	// positive means the paper's ordering holds.
	runExperiment(b, "figure1", o, "straggler-gap", func(res *experiments.Result) float64 {
		last := len(res.Sections) - 1
		return finalLoss(res, last, 0) - finalLoss(res, last, 2)
	})
}

func BenchmarkFigure1MNIST(b *testing.B) {
	o := benchOptions()
	o.Datasets = []string{"mnist"}
	runExperiment(b, "figure1", o, "straggler-gap", func(res *experiments.Result) float64 {
		last := len(res.Sections) - 1
		return finalLoss(res, last, 0) - finalLoss(res, last, 2)
	})
}

func BenchmarkFigure1FEMNIST(b *testing.B) {
	o := benchOptions()
	o.Datasets = []string{"femnist"}
	runExperiment(b, "figure1", o, "straggler-gap", func(res *experiments.Result) float64 {
		last := len(res.Sections) - 1
		return finalLoss(res, last, 0) - finalLoss(res, last, 2)
	})
}

func BenchmarkFigure1Shakespeare(b *testing.B) {
	o := benchOptions()
	o.Datasets = []string{"shakespeare"}
	runExperiment(b, "figure1", o, "", nil)
}

func BenchmarkFigure1Sent140(b *testing.B) {
	o := benchOptions()
	o.Datasets = []string{"sent140"}
	runExperiment(b, "figure1", o, "", nil)
}

func BenchmarkFigure2Heterogeneity(b *testing.B) {
	// Metric: gradient variance on Synthetic(1,1) minus Synthetic-IID for
	// mu=0 — positive means the dissimilarity ladder has the right slope.
	runExperiment(b, "figure2", benchOptions(), "var-slope", func(res *experiments.Result) float64 {
		hi := res.Sections[3].Runs[0].Final().GradVar
		lo := res.Sections[0].Runs[0].Final().GradVar
		return hi - lo
	})
}

func BenchmarkFigure3AdaptiveMu(b *testing.B) {
	runExperiment(b, "figure3", benchOptions(), "", nil)
}

func BenchmarkFigure4FedDane(b *testing.B) {
	runExperiment(b, "figure4", benchOptions(), "", nil)
}

func BenchmarkFigure5IIDRobustness(b *testing.B) {
	// Metric: |FedAvg loss difference between 0% and 90% stragglers| on
	// IID data — the paper's point is that this stays small.
	runExperiment(b, "figure5", benchOptions(), "iid-gap", func(res *experiments.Result) float64 {
		g := finalLoss(res, 3, 0) - finalLoss(res, 0, 0)
		if g < 0 {
			g = -g
		}
		return g
	})
}

func BenchmarkFigure6FullMetrics(b *testing.B) {
	runExperiment(b, "figure6", benchOptions(), "", nil)
}

func BenchmarkFigure7Accuracy(b *testing.B) {
	o := benchOptions()
	o.Datasets = []string{"synthetic", "mnist"}
	runExperiment(b, "figure7", o, "", nil)
}

func BenchmarkFigure8Dissimilarity(b *testing.B) {
	o := benchOptions()
	o.Datasets = []string{"synthetic", "femnist"}
	runExperiment(b, "figure8", o, "", nil)
}

func BenchmarkFigure9OneEpochLoss(b *testing.B) {
	o := benchOptions()
	o.Datasets = []string{"synthetic"}
	runExperiment(b, "figure9", o, "", nil)
}

func BenchmarkFigure10OneEpochAccuracy(b *testing.B) {
	o := benchOptions()
	o.Datasets = []string{"synthetic"}
	runExperiment(b, "figure10", o, "", nil)
}

func BenchmarkFigure11AdaptiveMuAll(b *testing.B) {
	runExperiment(b, "figure11", benchOptions(), "", nil)
}

func BenchmarkFigure12SamplingSchemes(b *testing.B) {
	runExperiment(b, "figure12", benchOptions(), "", nil)
}

// --- extension benches ---

func BenchmarkExtTheory(b *testing.B) {
	runExperiment(b, "ext-theory", benchOptions(), "", nil)
}

func BenchmarkExtSyshet(b *testing.B) {
	runExperiment(b, "ext-syshet", benchOptions(), "", nil)
}

func BenchmarkExtSolvers(b *testing.B) {
	runExperiment(b, "ext-solvers", benchOptions(), "", nil)
}

func BenchmarkExtGamma(b *testing.B) {
	// Metric: gamma(E=1) − gamma(E=20); positive means inexactness falls
	// with local work, as Definition 2 intends.
	runExperiment(b, "ext-gamma", benchOptions(), "gamma-drop", func(res *experiments.Result) float64 {
		runs := res.Sections[0].Runs
		return runs[0].Final().MeanGamma - runs[len(runs)-1].Final().MeanGamma
	})
}

// --- ablation benches (DESIGN.md §5) ---

func BenchmarkAblationMu(b *testing.B) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.1))
	mdl := linear.ForDataset(fed)
	for _, mu := range []float64{0, 0.001, 0.01, 0.1, 1} {
		b.Run(muName(mu), func(b *testing.B) {
			cfg := core.FedProx(10, 10, 10, 0.01, mu)
			cfg.EvalEvery = 10
			cfg.StragglerFraction = 0.9
			for i := 0; i < b.N; i++ {
				h, err := core.Run(mdl, fed, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(h.Final().TrainLoss, "final-loss")
			}
		})
	}
}

func muName(mu float64) string {
	switch mu {
	case 0:
		return "mu=0"
	case 0.001:
		return "mu=0.001"
	case 0.01:
		return "mu=0.01"
	case 0.1:
		return "mu=0.1"
	default:
		return "mu=1"
	}
}

func BenchmarkAblationStragglerPolicy(b *testing.B) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.1))
	mdl := linear.ForDataset(fed)
	for _, policy := range []core.StragglerPolicy{core.DropStragglers, core.AggregatePartial} {
		b.Run(policy.String(), func(b *testing.B) {
			cfg := core.FedProx(10, 10, 10, 0.01, 0)
			cfg.Straggler = policy
			cfg.StragglerFraction = 0.9
			cfg.EvalEvery = 10
			for i := 0; i < b.N; i++ {
				h, err := core.Run(mdl, fed, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(h.Final().TrainLoss, "final-loss")
			}
		})
	}
}

func BenchmarkAblationEpochs(b *testing.B) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.1))
	mdl := linear.ForDataset(fed)
	for _, e := range []int{1, 5, 20} {
		b.Run(epochName(e), func(b *testing.B) {
			cfg := core.FedProx(10, 10, e, 0.01, 0)
			cfg.EvalEvery = 10
			for i := 0; i < b.N; i++ {
				h, err := core.Run(mdl, fed, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(h.Final().TrainLoss, "final-loss")
			}
		})
	}
}

func epochName(e int) string {
	switch e {
	case 1:
		return "E=1"
	case 5:
		return "E=5"
	default:
		return "E=20"
	}
}

// --- codec benches (internal/comm hot paths) ---

// BenchmarkCodec measures each codec's encode+decode round-trip on a
// realistically sized parameter vector (a 64k-parameter model, the order
// of the LSTM workloads). The wire-bytes metric tracks the compression
// each codec achieves on the same input.
func BenchmarkCodec(b *testing.B) {
	const n = 1 << 16
	rng := frand.New(11)
	params := rng.NormVec(make([]float64, n), 0, 1)
	// prev is close to params, the round-over-round shape delta-family
	// codecs exploit.
	prev := make([]float64, n)
	for i := range prev {
		prev[i] = params[i] + rng.NormMeanStd(0, 0.05)
	}
	specs := []comm.Spec{
		{Name: "raw"},
		{Name: "delta"},
		{Name: "qsgd", Bits: 8},
		{Name: "qsgd", Bits: 4},
		{Name: "delta+qsgd", Bits: 8},
		{Name: "topk", TopK: 0.1},
	}
	for _, spec := range specs {
		b.Run(spec.String(), func(b *testing.B) {
			c, err := spec.ForDevice(comm.Uplink, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(8 * n)
			var wire int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := c.Encode(params, prev)
				if _, err := c.Decode(u, prev); err != nil {
					b.Fatal(err)
				}
				wire = u.WireBytes()
			}
			b.ReportMetric(float64(wire), "wire-bytes")
		})
	}
}

func BenchmarkLocalSolverSGD(b *testing.B) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.1))
	mdl := linear.ForDataset(fed)
	train := fed.Shards[0].Train
	w0 := make([]float64, mdl.NumParams())
	cfg := solver.Config{LearningRate: 0.01, BatchSize: 10, Mu: 1}
	rng := frand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.SGD(mdl, train, w0, cfg, 5, rng)
	}
}

func BenchmarkLocalSolverGD(b *testing.B) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.1))
	mdl := linear.ForDataset(fed)
	train := fed.Shards[0].Train
	w0 := make([]float64, mdl.NumParams())
	cfg := solver.Config{LearningRate: 0.01, BatchSize: 10, Mu: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.GD(mdl, train, w0, cfg, 5)
	}
}

// BenchmarkCoordinatorFold and BenchmarkDeviceDispatch are the gated
// hot-path benchmarks: their bodies live in internal/speed so
// cmd/fedspeed can run the same code via testing.Benchmark to regenerate
// and gate the committed BENCH_speed.json.
func BenchmarkCoordinatorFold(b *testing.B) { speed.CoordinatorFold(b) }

func BenchmarkDeviceDispatch(b *testing.B) { speed.DeviceDispatch(b) }

func BenchmarkDeviceDispatchF32(b *testing.B) { speed.DeviceDispatchF32(b) }

func BenchmarkSolvePerExample(b *testing.B) { speed.SolvePerExample(b) }

func BenchmarkSolveBatched(b *testing.B) { speed.SolveBatched(b) }
