module fedprox

go 1.24
