module fedprox

go 1.23
