// Command fedtrace analyzes and replays the JSONL run traces the other
// fedprox commands record with -trace (schema: internal/obs, decoder:
// internal/obs/tracefile).
//
// Usage:
//
//	fedtrace summary trace.jsonl
//	fedtrace diff a.jsonl b.jsonl
//	fedtrace replay -exp ext-vtime -fast trace.jsonl
//	fedtrace replay -fast -vtime-deadline 0.5,1,2 -json BENCH_replay.json trace.jsonl
//
// summary streams one pass over the trace and prints, per recorded run,
// a per-round table (dispatches, dispositions, reply-latency quantiles,
// wire bytes, virtual duration), straggler attribution, and byte
// accounting.
//
// diff aligns two traces event by event over the shared schema and
// reports the first divergent event plus per-round deltas; it exits
// non-zero when the traces differ — the determinism check in script
// form.
//
// replay feeds a recorded trace back through a fresh sans-I/O
// coordinator (core.Replay): with no policy flags it re-runs every case
// under its recorded policy and verifies the replayed event stream is
// equivalent to the recording (exit non-zero on mismatch); with
// -vtime-deadline/-vtime-round-bytes/-async-* sweeps it answers "what
// would this policy have done to the recorded run" — no local solves,
// pure arrival bookkeeping — and emits the same BenchEntry JSON
// fedbench writes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"fedprox/internal/core"
	"fedprox/internal/experiments"
	"fedprox/internal/obs"
	"fedprox/internal/obs/tracefile"
)

func usage() {
	fmt.Fprintln(os.Stderr, `fedtrace: analyze and replay fedprox JSONL run traces
subcommands:
  summary <trace.jsonl>           per-round breakdown, stragglers, bytes
  diff <a.jsonl> <b.jsonl>        first divergent event + per-round deltas
  replay [flags] <trace.jsonl>    re-enact recorded arrivals under the
                                  recorded policy (verify) or -vtime-*/
                                  -async-* alternatives (what-if sweep)`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fedtrace: %v\n", err)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "summary":
		cmdSummary(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

// ---- summary ----------------------------------------------------------

// roundStats accumulates one round (sync) or milestone window (async):
// everything between two round-close events.
type roundStats struct {
	round      int
	dispatches int
	bytesDown  int64
	bytesUp    int64
	rels       []float64
	dispo      map[string]int
	secs       float64
	loss, acc  float64
}

// deviceStats attributes reply latency to one device across a run. In a
// tiered trace the same device number recurs at every tier (edge-local
// IDs are 0-based), so attribution keys on (tier, device).
type deviceStats struct {
	tier    int
	device  int
	total   float64
	replies int
	dropped int
}

// tierStats rolls a run's traffic up by the emitting coordinator's tier
// (0 = the tree's root, whose devices are edge aggregators; leaves are
// the deepest tier). Untiered events (tier -1) stay out of the rollup.
type tierStats struct {
	dispatches int
	folds      int
	folded     int
	dropped    int
	bytesDown  int64
	bytesUp    int64
	rels       []float64
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fmtSecs(s float64) string {
	if math.IsNaN(s) {
		return "-"
	}
	return fmt.Sprintf("%.3f", s)
}

func cmdSummary(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fail(err)
	}
	defer f.Close()

	d := tracefile.NewDecoder(f)
	newRound := func() *roundStats {
		return &roundStats{round: -1, secs: math.NaN(), loss: math.NaN(), acc: math.NaN(), dispo: map[string]int{}}
	}
	var (
		run      = -1
		runLabel string
		runN     int
		runNodes int
		dispSeen bool // any dispatch since the last run-start
		cur      = newRound()
		devs     = map[[2]int]*deviceStats{}
		tiers    = map[int]*tierStats{}
		rows     []*roundStats
		totDown  int64
		totUp    int64
		totEvals int
	)
	flushRun := func() {
		if run < 0 {
			return
		}
		if runNodes > 1 {
			fmt.Printf("\n== run %d: %q (%d devices at the root, %d tree nodes)\n", run, runLabel, runN, runNodes)
		} else {
			fmt.Printf("\n== run %d: %q (%d devices)\n", run, runLabel, runN)
		}
		fmt.Printf("\n%-6s %5s %6s %6s %8s %8s %8s %11s %11s %8s %9s\n",
			"round", "disp", "folded", "drop", "p50", "p90", "p99", "bytes-down", "bytes-up", "secs", "loss")
		for _, r := range rows {
			sort.Float64s(r.rels)
			dropped := 0
			for k, n := range r.dispo {
				if k != "folded" {
					dropped += n
				}
			}
			loss := "-"
			if !math.IsNaN(r.loss) {
				loss = fmt.Sprintf("%.4f", r.loss)
			}
			fmt.Printf("%-6d %5d %6d %6d %8s %8s %8s %11d %11d %8s %9s\n",
				r.round, r.dispatches, r.dispo["folded"], dropped,
				fmtSecs(quantile(r.rels, 0.5)), fmtSecs(quantile(r.rels, 0.9)), fmtSecs(quantile(r.rels, 0.99)),
				r.bytesDown, r.bytesUp, fmtSecs(r.secs), loss)
		}
		fmt.Printf("totals: %d bytes down, %d bytes up, %d evals\n", totDown, totUp, totEvals)

		// Per-tier rollup: present whenever the run carried tier stamps
		// (a tiered simulation interleaves every node's events; a fednet
		// root or edge process stamps its own tier).
		maxTier := -1
		for t := range tiers {
			if t > maxTier {
				maxTier = t
			}
		}
		if maxTier >= 0 {
			fmt.Println("per-tier rollup (tier 0 = root; its devices are edge aggregators):")
			fmt.Printf("%-6s %5s %6s %6s %6s %8s %8s %8s %11s %11s\n",
				"tier", "disp", "folded", "drop", "folds", "p50", "p90", "p99", "bytes-down", "bytes-up")
			for t := 0; t <= maxTier; t++ {
				ts := tiers[t]
				if ts == nil {
					continue
				}
				sort.Float64s(ts.rels)
				fmt.Printf("%-6d %5d %6d %6d %6d %8s %8s %8s %11d %11d\n",
					t, ts.dispatches, ts.folded, ts.dropped, ts.folds,
					fmtSecs(quantile(ts.rels, 0.5)), fmtSecs(quantile(ts.rels, 0.9)), fmtSecs(quantile(ts.rels, 0.99)),
					ts.bytesDown, ts.bytesUp)
			}
		}

		// Straggler attribution. In a tiered run the interesting laggards
		// are the leaf devices (deepest tier); the root's own slowest
		// child names the edge that held every round open.
		top := make([]*deviceStats, 0, len(devs))
		for _, ds := range devs {
			if maxTier >= 0 && ds.tier != maxTier {
				continue
			}
			top = append(top, ds)
		}
		sort.Slice(top, func(i, j int) bool { return top[i].total > top[j].total })
		if len(top) > 5 {
			top = top[:5]
		}
		if len(top) > 0 && top[0].total > 0 {
			fmt.Println("stragglers (by cumulative reply latency):")
			for _, ds := range top {
				fmt.Printf("  device %-4d %8.3fs over %d replies, %d dropped\n",
					ds.device, ds.total, ds.replies, ds.dropped)
			}
		}
		if maxTier > 0 {
			var slow *deviceStats
			for _, ds := range devs {
				if ds.tier != 0 {
					continue
				}
				if slow == nil || ds.total > slow.total {
					slow = ds
				}
			}
			if slow != nil && slow.total > 0 {
				fmt.Printf("slow edge: edge %d held the root longest — %.3fs cumulative reply latency over %d replies, %d dropped\n",
					slow.device, slow.total, slow.replies, slow.dropped)
			}
		}
	}
	startRun := func(e obs.Event) {
		// A run-start before any dispatch of the current run is another
		// node of the same hierarchical run coming up (every tier edge
		// announces itself before the root opens round 0): fold it in
		// rather than starting a new run. The root announces last, so its
		// label and cohort win the header.
		if run >= 0 && !dispSeen {
			runLabel, runN = e.Label, e.N
			runNodes++
			return
		}
		flushRun()
		run++
		runLabel, runN, runNodes, dispSeen = e.Label, e.N, 1, false
		cur, devs, tiers, rows = newRound(), map[[2]int]*deviceStats{}, map[int]*tierStats{}, nil
		totDown, totUp, totEvals = 0, 0, 0
	}
	tierRow := func(t int) *tierStats {
		ts := tiers[t]
		if ts == nil {
			ts = &tierStats{}
			tiers[t] = ts
		}
		return ts
	}
	for {
		e, err := d.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fail(err)
		}
		switch e.Kind {
		case obs.KindRunStart:
			startRun(e)
		case obs.KindDispatch:
			dispSeen = true
			cur.dispatches++
			cur.bytesDown += e.BytesDown
			totDown += e.BytesDown
			if e.Tier >= 0 {
				ts := tierRow(e.Tier)
				ts.dispatches++
				ts.bytesDown += e.BytesDown
			}
		case obs.KindReply:
			cur.bytesUp += e.BytesUp
			totUp += e.BytesUp
			if !math.IsNaN(e.Seconds) {
				cur.rels = append(cur.rels, e.Seconds)
			}
			cur.dispo[e.Disposition]++
			ds := devs[[2]int{e.Tier, e.Device}]
			if ds == nil {
				ds = &deviceStats{tier: e.Tier, device: e.Device}
				devs[[2]int{e.Tier, e.Device}] = ds
			}
			ds.replies++
			if !math.IsNaN(e.Seconds) {
				ds.total += e.Seconds
			}
			if e.Disposition != "folded" {
				ds.dropped++
			}
			if e.Tier >= 0 {
				ts := tierRow(e.Tier)
				ts.bytesUp += e.BytesUp
				if !math.IsNaN(e.Seconds) {
					ts.rels = append(ts.rels, e.Seconds)
				}
				if e.Disposition == "folded" {
					ts.folded++
				} else {
					ts.dropped++
				}
			}
		case obs.KindDrop:
			cur.dispo[e.Disposition]++
		case obs.KindFold:
			if e.Tier >= 0 {
				tierRow(e.Tier).folds++
			}
		case obs.KindRoundClose:
			// A tiered run closes the same round once per node (edges
			// first, the root last): merge those into one row so the
			// table stays one line per round, keeping the root's timed
			// duration when it has one.
			if n := len(rows); n > 0 && rows[n-1].round == e.Round {
				prev := rows[n-1]
				prev.dispatches += cur.dispatches
				prev.bytesDown += cur.bytesDown
				prev.bytesUp += cur.bytesUp
				prev.rels = append(prev.rels, cur.rels...)
				for k, v := range cur.dispo {
					prev.dispo[k] += v
				}
				if !math.IsNaN(e.Seconds) {
					prev.secs = e.Seconds
				}
				if !math.IsNaN(cur.loss) {
					prev.loss, prev.acc = cur.loss, cur.acc
				}
			} else {
				cur.round = e.Round
				cur.secs = e.Seconds
				rows = append(rows, cur)
			}
			cur = newRound()
		case obs.KindEval:
			totEvals++
			// An eval stamps the most recent closed row when it follows
			// the close (sync cadence), else the open window. Stepped
			// edges answer the eval command with a NaN placeholder — only
			// finite losses land in the table.
			if math.IsNaN(e.Loss) {
				break
			}
			if n := len(rows); n > 0 && rows[n-1].round == e.Round {
				rows[n-1].loss, rows[n-1].acc = e.Loss, e.Acc
			} else {
				cur.loss, cur.acc = e.Loss, e.Acc
			}
		}
	}
	flushRun()
	fmt.Println()
}

// ---- diff -------------------------------------------------------------

// eventDiff reports the first field on which two events of the same kind
// differ ("" when equal). skipEvalMetrics ignores an eval's loss/acc —
// replay verification cannot recompute them.
func eventDiff(a, b obs.Event, skipEvalMetrics bool) string {
	if a.Kind != b.Kind {
		return "kind"
	}
	for _, f := range obs.Fields(a.Kind) {
		if skipEvalMetrics && a.Kind == obs.KindEval && (f.Key == "loss" || f.Key == "acc") {
			continue
		}
		var eq bool
		switch f.Type {
		case obs.FieldInt:
			eq = f.Int(&a) == f.Int(&b)
		case obs.FieldInt64:
			eq = f.Int64(&a) == f.Int64(&b)
		case obs.FieldFloat:
			eq = math.Float64bits(f.Float(&a)) == math.Float64bits(f.Float(&b))
		case obs.FieldString:
			eq = f.Str(&a) == f.Str(&b)
		}
		if !eq {
			return f.Key
		}
	}
	return ""
}

// render returns an event's canonical JSONL line without the newline.
func render(e obs.Event) string {
	return strings.TrimRight(string(obs.AppendEvent(nil, e)), "\n")
}

func readTrace(path string) []obs.Event {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	evs, err := tracefile.ReadAll(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return evs
}

func cmdDiff(args []string) {
	if len(args) != 2 {
		usage()
	}
	a, b := readTrace(args[0]), readTrace(args[1])

	divergent := false
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if key := eventDiff(a[i], b[i], false); key != "" {
			fmt.Printf("first divergent event: #%d, field %q\n  %s: %s\n  %s: %s\n",
				i, key, args[0], render(a[i]), args[1], render(b[i]))
			divergent = true
			break
		}
	}
	if !divergent && len(a) != len(b) {
		fmt.Printf("traces agree for %d events, then %s has %d more\n",
			n, args[0], len(a)-len(b))
		if len(b) > len(a) {
			fmt.Printf("traces agree for %d events, then %s has %d more\n",
				n, args[1], len(b)-len(a))
		}
		divergent = true
	}

	// Per-round deltas: virtual duration and eval loss, keyed by round,
	// first run segment of each trace.
	type roundRow struct {
		secs, loss float64
	}
	collect := func(evs []obs.Event) map[int]*roundRow {
		m := map[int]*roundRow{}
		row := func(r int) *roundRow {
			if m[r] == nil {
				m[r] = &roundRow{secs: math.NaN(), loss: math.NaN()}
			}
			return m[r]
		}
		for _, e := range evs {
			switch e.Kind {
			case obs.KindRoundClose:
				row(e.Round).secs = e.Seconds
			case obs.KindEval:
				row(e.Round).loss = e.Loss
			}
		}
		return m
	}
	ra, rb := collect(a), collect(b)
	var rounds []int
	for r := range ra {
		if rb[r] != nil {
			rounds = append(rounds, r)
		}
	}
	sort.Ints(rounds)
	printed := false
	for _, r := range rounds {
		ds := rb[r].secs - ra[r].secs
		dl := rb[r].loss - ra[r].loss
		if (math.IsNaN(ds) || ds == 0) && (math.IsNaN(dl) || dl == 0) {
			continue
		}
		if !printed {
			fmt.Printf("per-round deltas (%s minus %s):\n", args[1], args[0])
			printed = true
		}
		fmt.Printf("  round %-4d", r)
		if !math.IsNaN(ds) && ds != 0 {
			fmt.Printf("  secs %+.4f", ds)
		}
		if !math.IsNaN(dl) && dl != 0 {
			fmt.Printf("  loss %+.6f", dl)
		}
		fmt.Println()
	}

	if divergent {
		os.Exit(1)
	}
	fmt.Printf("traces identical: %d events\n", len(a))
}

// ---- replay -----------------------------------------------------------

// collector buffers replayed events in memory for comparison.
type collector struct{ evs []obs.Event }

func (c *collector) Emit(e obs.Event) { c.evs = append(c.evs, e) }

// floatList parses a comma-separated -flag value list.
func floatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad list element %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func intList(s string) ([]int64, error) {
	fs, err := floatList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(fs))
	for i, f := range fs {
		out[i] = int64(f)
	}
	return out, nil
}

// recordedFinalLoss extracts the segment's last evaluated loss — the
// value replay itself cannot recompute. Zero (never NaN: BenchEntry
// marshals through encoding/json) when the recording has no finite eval.
func recordedFinalLoss(seg []obs.Event) (loss, acc float64) {
	for _, e := range seg {
		if e.Kind == obs.KindEval && !math.IsNaN(e.Loss) {
			loss = e.Loss
			if !math.IsNaN(e.Acc) {
				acc = e.Acc
			}
		}
	}
	return loss, acc
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		exp       = fs.String("exp", "ext-vtime", "experiment the trace was recorded by (case configs are rebuilt from it)")
		fast      = fs.Bool("fast", false, "the recording used fedbench -fast (miniature preset)")
		seed      = fs.Uint64("seed", 0, "override environment seed (must match the recording)")
		rounds    = fs.Int("rounds", 0, "override communication rounds (must match the recording)")
		scale     = fs.Float64("scale", 0, "override dataset scale (must match the recording)")
		deadlines = fs.String("vtime-deadline", "", "comma-separated deadline sweep in virtual seconds")
		budgets   = fs.String("vtime-round-bytes", "", "comma-separated per-round wire-byte budget sweep")
		alphas    = fs.String("async-alpha", "", "comma-separated async mixing-rate sweep (async cases only)")
		stales    = fs.String("async-staleness-exp", "", "comma-separated staleness-exponent sweep (async cases only)")
		bufferKs  = fs.String("async-buffer-k", "", "comma-separated buffered flush-size sweep (buffered cases only)")
		jsonPath  = fs.String("json", "", "write BenchEntry JSON (same schema as fedbench -json) to this file")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}

	opts := experiments.Full()
	if *fast {
		opts = experiments.Fast()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *rounds > 0 {
		opts.Rounds = *rounds
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	cases, err := experiments.ReplayCases(*exp, opts)
	if err != nil {
		fail(err)
	}

	segments := tracefile.Runs(readTrace(fs.Arg(0)))
	if len(segments) != len(cases) {
		fail(fmt.Errorf("trace has %d run segments but %s runs %d cases — record with `fedbench -exp %s -trace ...` and matching options",
			len(segments), *exp, len(cases), *exp))
	}

	ds, err := floatList(*deadlines)
	if err != nil {
		fail(err)
	}
	bs, err := intList(*budgets)
	if err != nil {
		fail(err)
	}
	as, err := floatList(*alphas)
	if err != nil {
		fail(err)
	}
	ses, err := floatList(*stales)
	if err != nil {
		fail(err)
	}
	ks, err := intList(*bufferKs)
	if err != nil {
		fail(err)
	}
	sweep := len(ds)+len(bs)+len(as)+len(ses)+len(ks) > 0

	if !sweep {
		verifyReplay(cases, segments)
		return
	}

	// What-if sweep: one override axis at a time, recorded policy as the
	// base. Async knobs apply only to cases already in an async mode.
	type override struct {
		label  string
		apply  func(*core.Config)
		wants  func(core.Config) bool
		always bool
	}
	var overrides []override
	every := func(core.Config) bool { return true }
	for _, d := range ds {
		d := d
		overrides = append(overrides, override{
			label: fmt.Sprintf("deadline=%gs", d),
			apply: func(c *core.Config) { c.VTime.DeadlineSeconds = d },
			wants: every,
		})
	}
	for _, b := range bs {
		b := b
		overrides = append(overrides, override{
			label: fmt.Sprintf("round-bytes=%d", b),
			apply: func(c *core.Config) { c.VTime.RoundBytes = b },
			wants: every,
		})
	}
	for _, a := range as {
		a := a
		overrides = append(overrides, override{
			label: fmt.Sprintf("alpha=%g", a),
			apply: func(c *core.Config) { c.Async.Alpha = a },
			wants: func(c core.Config) bool { return c.Async.Enabled() },
		})
	}
	for _, s := range ses {
		s := s
		overrides = append(overrides, override{
			label: fmt.Sprintf("staleness-exp=%g", s),
			apply: func(c *core.Config) { c.Async.StalenessExponent = s },
			wants: func(c core.Config) bool { return c.Async.Enabled() },
		})
	}
	for _, k := range ks {
		k := int(k)
		overrides = append(overrides, override{
			label: fmt.Sprintf("buffer-k=%d", k),
			apply: func(c *core.Config) { c.Async.BufferK = k },
			wants: func(c core.Config) bool { return c.Async.Mode == core.Buffered },
		})
	}

	var entries []experiments.BenchEntry
	fmt.Printf("%-14s %-22s %10s %7s %7s %8s %8s %8s\n",
		"case", "override", "virtual-s", "folded", "dropped", "p50", "p90", "p99")
	for i, c := range cases {
		loss, acc := recordedFinalLoss(segments[i])
		for _, ov := range overrides {
			if !ov.wants(c.Config) {
				continue
			}
			cfg := c.Config
			ov.apply(&cfg)
			h, err := core.Replay(c.Model, c.Fleet, cfg, segments[i])
			if err != nil {
				fail(fmt.Errorf("replay %s under %s: %w", c.Name, ov.label, err))
			}
			fin := h.Final()
			folded, dropped := 0, 0
			for _, a := range h.Arrivals {
				if a.Drop == core.ArrivalFolded {
					folded++
				} else {
					dropped++
				}
			}
			q := h.ReplyLatencyQuantiles(0.5, 0.9, 0.99)
			fmt.Printf("%-14s %-22s %10.1f %7d %7d %8s %8s %8s\n",
				c.Name, ov.label, fin.VirtualSeconds, folded, dropped,
				fmtSecs(q[0]), fmtSecs(q[1]), fmtSecs(q[2]))
			entries = append(entries, experiments.BenchEntry{
				Experiment:      "replay:" + *exp,
				Section:         c.Name,
				Method:          ov.label,
				Rounds:          fin.Round,
				FinalLoss:       loss, // recorded, not replayed: replay never evaluates
				FinalAcc:        acc,
				VirtualSeconds:  fin.VirtualSeconds,
				ReplyLatencyP50: q[0],
				ReplyLatencyP90: q[1],
				ReplyLatencyP99: q[2],
			})
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		err = experiments.WriteBench(f, entries)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
	}
}

// verifyReplay re-runs every recorded case under its recorded policy and
// checks event-stream equivalence — the replay counterpart of the
// decoder's round-trip guarantee, runnable against any trace artifact.
func verifyReplay(cases []experiments.ReplayCase, segments [][]obs.Event) {
	total := 0
	for i, c := range cases {
		var got collector
		cfg := c.Config
		cfg.Trace = &got
		if _, err := core.Replay(c.Model, c.Fleet, cfg, segments[i]); err != nil {
			fail(fmt.Errorf("replay %s: %w", c.Name, err))
		}
		want := segments[i]
		if len(got.evs) != len(want) {
			fail(fmt.Errorf("replay %s: %d events recorded, %d replayed", c.Name, len(want), len(got.evs)))
		}
		for j := range want {
			if key := eventDiff(want[j], got.evs[j], true); key != "" {
				fail(fmt.Errorf("replay %s: event #%d diverges on %q\n  recorded: %s\n  replayed: %s",
					c.Name, j, key, render(want[j]), render(got.evs[j])))
			}
		}
		total += len(want)
	}
	fmt.Printf("replay equivalence OK: %d cases, %d events reproduced under recorded policies (0 solver calls)\n",
		len(cases), total)
}
