// Command fedbench regenerates the tables and figures of "Federated
// Optimization in Heterogeneous Networks" (Li et al., MLSys 2020) on the
// simulated substrates in this repository.
//
// Usage:
//
//	fedbench -list
//	fedbench -exp figure1 [-fast] [-datasets synthetic,mnist] [-csv out.csv] [-series]
//	fedbench -exp all -fast
//
// By default experiments run at the "full" preset (minutes); -fast runs
// the miniature preset used by the benchmark suite (seconds).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fedprox/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		list     = flag.Bool("list", false, "list available experiments")
		fast     = flag.Bool("fast", false, "use the miniature preset (seconds per figure)")
		series   = flag.Bool("series", false, "print full per-round series, not just the summary")
		csvPath  = flag.String("csv", "", "also write every evaluated point as CSV to this file")
		datasets = flag.String("datasets", "", "comma-separated subset of synthetic,mnist,femnist,shakespeare,sent140")
		rounds   = flag.Int("rounds", 0, "override communication rounds for convex workloads")
		seed     = flag.Uint64("seed", 0, "override environment seed")
		scale    = flag.Float64("scale", 0, "override dataset scale factor")
		codec    = flag.String("codec", "", "apply a model-update codec to every run (see internal/comm)")
		downCdc  = flag.String("downlink-codec", "", "override -codec on the broadcast direction")
		bits     = flag.Int("bits", 0, "qsgd bit width (0 = comm default)")
		topk     = flag.Float64("topk", 0, "topk kept fraction (0 = comm default)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Printf("  %-10s %s\n", id, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "fedbench: -exp is required (try -list)")
		os.Exit(2)
	}

	opts := experiments.Full()
	if *fast {
		opts = experiments.Fast()
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *rounds > 0 {
		opts.Rounds = *rounds
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *codec == "" && (*downCdc != "" || *bits != 0 || *topk != 0) {
		fmt.Fprintln(os.Stderr, "fedbench: -downlink-codec, -bits, and -topk require -codec")
		os.Exit(2)
	}
	opts.Codec = *codec
	opts.DownlinkCodec = *downCdc
	opts.CodecBits = *bits
	opts.CodecTopK = *topk

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	for _, id := range ids {
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Summary())
		if *series {
			fmt.Println(res.Series())
		}
		if csvFile != nil {
			if err := res.WriteCSV(csvFile); err != nil {
				fmt.Fprintf(os.Stderr, "fedbench: csv: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
