// Command fedbench regenerates the tables and figures of "Federated
// Optimization in Heterogeneous Networks" (Li et al., MLSys 2020) on the
// simulated substrates in this repository.
//
// Usage:
//
//	fedbench -list
//	fedbench -exp figure1 [-fast] [-datasets synthetic,mnist] [-csv out.csv] [-series]
//	fedbench -exp ext-async,ext-vtime -fast -json BENCH_ci.json -baseline BENCH_baseline.json
//	fedbench -exp all -fast
//
// By default experiments run at the "full" preset (minutes); -fast runs
// the miniature preset used by the benchmark suite (seconds).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fedprox/internal/cli"
	"fedprox/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id or comma-separated ids (see -list), or \"all\"")
		list      = flag.Bool("list", false, "list available experiments")
		fast      = flag.Bool("fast", false, "use the miniature preset (seconds per figure)")
		series    = flag.Bool("series", false, "print full per-round series, not just the summary")
		csvPath   = flag.String("csv", "", "also write every evaluated point as CSV to this file")
		jsonPath  = flag.String("json", "", "write machine-readable run summaries (BENCH_*.json) to this file")
		baseline  = flag.String("baseline", "", "compare against a committed BENCH_*.json and exit non-zero on loss regressions")
		tolerance = flag.Float64("tolerance", 0.05, "relative final-loss budget for -baseline (0.05 = 5%)")
		datasets  = flag.String("datasets", "", "comma-separated subset of synthetic,mnist,femnist,shakespeare,sent140")
		rounds    = flag.Int("rounds", 0, "override communication rounds for convex workloads")
		seed      = flag.Uint64("seed", 0, "override environment seed")
		scale     = flag.Float64("scale", 0, "override dataset scale factor")

		codecFlags cli.Codec
		precFlags  cli.Precision
		asyncFlags cli.Async
		tierFlags  cli.Tier
		vtimeFlags cli.VTime
		traceFlags cli.Trace
	)
	codecFlags.Register(flag.CommandLine)
	precFlags.Register(flag.CommandLine)
	asyncFlags.RegisterOverrides(flag.CommandLine)
	tierFlags.Register(flag.CommandLine)
	vtimeFlags.Register(flag.CommandLine)
	traceFlags.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Printf("  %-10s %s\n", id, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "fedbench: -exp is required (try -list)")
		os.Exit(2)
	}

	opts := experiments.Full()
	if *fast {
		opts = experiments.Fast()
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *rounds > 0 {
		opts.Rounds = *rounds
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if err := codecFlags.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
		os.Exit(2)
	}
	opts.Codec = codecFlags.Name
	opts.DownlinkCodec = codecFlags.Downlink
	opts.CodecBits = codecFlags.Bits
	opts.CodecTopK = codecFlags.TopK
	opts.Precision = precFlags.Name
	opts.AsyncAlpha = asyncFlags.Alpha
	opts.AsyncStalenessExp = asyncFlags.StalenessExp
	opts.AsyncBufferK = asyncFlags.BufferK
	opts.VTimeDeadline = vtimeFlags.Deadline
	opts.VTimeRoundBytes = vtimeFlags.RoundBytes
	tierFan, tierLatency, err := tierFlags.SimOverride()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
		os.Exit(2)
	}
	opts.TierFanOut = tierFan
	opts.TierLatency = tierLatency

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.IDs()
	}

	// closeTrace finalizes the -trace file; main's os.Exit error paths
	// bypass defers, so it runs explicitly once the runs are done.
	trace, closeTrace, err := traceFlags.Open()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
		os.Exit(1)
	}
	if trace != nil {
		opts.Trace = trace
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	var entries []experiments.BenchEntry
	for _, id := range ids {
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Summary())
		if *series {
			fmt.Println(res.Series())
		}
		if csvFile != nil {
			if err := res.WriteCSV(csvFile); err != nil {
				fmt.Fprintf(os.Stderr, "fedbench: csv: %v\n", err)
				os.Exit(1)
			}
		}
		entries = append(entries, res.BenchEntries()...)
	}
	if err := closeTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
		os.Exit(1)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		err = experiments.WriteBench(f, entries)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: json: %v\n", err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		base, err := experiments.ReadBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		if regressions := experiments.CompareBench(entries, base, *tolerance); len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "fedbench: %d loss regression(s) vs %s:\n", len(regressions), *baseline)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("baseline gate passed: no regressions vs %s (tolerance %.0f%%)\n", *baseline, 100**tolerance)
	}
}
