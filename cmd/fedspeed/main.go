// Command fedspeed regenerates and gates BENCH_speed.json, the
// committed ns/op baseline of the repository's hot-path mechanisms
// (internal/speed). Where BENCH_baseline.json ratchets model quality
// (cmd/fedbench -baseline), BENCH_speed.json ratchets mechanism speed:
// the CI bench-smoke job fails when a gated benchmark's ns/op exceeds
// the committed number by more than -tolerance.
//
//	fedspeed -out BENCH_speed.json            # (re)generate the baseline
//	fedspeed -baseline BENCH_speed.json       # gate: exit 1 on regression
//
// The benchmarks are the exact bodies `go test -bench` runs
// (BenchmarkCoordinatorFold, BenchmarkDeviceDispatch), executed through
// testing.Benchmark with its standard auto-calibration.
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"fedprox/internal/obs"
	"fedprox/internal/speed"
)

func main() {
	var (
		out       = flag.String("out", "", "write the measured BENCH_speed.json to this file")
		baseline  = flag.String("baseline", "", "compare against a committed BENCH_speed.json and exit non-zero on ns/op regressions")
		tolerance = flag.Float64("tolerance", 0.15, "relative ns/op budget for -baseline (0.15 = 15%)")
	)
	flag.Parse()
	if *out == "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "fedspeed: nothing to do; pass -out and/or -baseline")
		os.Exit(2)
	}

	pts := make([]obs.BenchPoint, 0, len(speed.Benchmarks))
	for _, bm := range speed.Benchmarks {
		r := testing.Benchmark(bm.Fn)
		pt := obs.BenchPoint{
			Name:        bm.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		fmt.Printf("%-20s %12.0f ns/op %8d B/op %6d allocs/op  (%d iterations)\n",
			pt.Name, pt.NsPerOp, pt.BytesPerOp, pt.AllocsPerOp, pt.Iterations)
		pts = append(pts, pt)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		err = obs.WriteSpeed(f, pts)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fail(err)
		}
		base, err := obs.ReadSpeed(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if regressions := obs.CompareSpeed(pts, base, *tolerance); len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "fedspeed: %d speed regression(s) vs %s:\n", len(regressions), *baseline)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("speed gate passed: no regressions vs %s (tolerance %.0f%%)\n", *baseline, 100**tolerance)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fedspeed: %v\n", err)
	os.Exit(1)
}
