// Command fedspeed regenerates and gates the repository's committed
// performance baselines: BENCH_speed.json (hot-path ns/op, see
// internal/speed) and BENCH_scale.json (population-scale virtual-time
// runs over a lazy fleet). Where BENCH_baseline.json ratchets model
// quality (cmd/fedbench -baseline), these ratchet mechanism speed and
// scalability: the CI bench-smoke job fails when a gated number drifts
// past its committed baseline by more than the tolerance.
//
//	fedspeed -out BENCH_speed.json              # (re)generate the micro baseline
//	fedspeed -baseline BENCH_speed.json         # gate: exit 1 on ns/op regression
//	fedspeed -scale all -scale-out BENCH_scale.json        # full scale sweep (10^5, 10^6)
//	fedspeed -scale 100000 -scale-baseline BENCH_scale.json # CI smoke: gate the 10^5 point
//
// The micro benchmarks are the exact bodies `go test -bench` runs
// (BenchmarkCoordinatorFold, BenchmarkDeviceDispatch), executed through
// testing.Benchmark with its standard auto-calibration. The scale runs
// are speed.ScaleRun: seeded asynchronous virtual-time runs whose
// throughput (dispatches/sec) and footprint (bytes/device) are gated,
// and whose peak memory must clear a hard 2 GB ceiling regardless of
// any baseline.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"fedprox/internal/obs"
	"fedprox/internal/speed"
)

func main() {
	var (
		out        = flag.String("out", "", "write the measured BENCH_speed.json to this file")
		baseline   = flag.String("baseline", "", "compare against a committed BENCH_speed.json and exit non-zero on ns/op regressions")
		tolerance  = flag.Float64("tolerance", 0.15, "relative ns/op budget for -baseline (0.15 = 15%)")
		scaleArg   = flag.String("scale", "", "comma-separated device counts to scale-run, or \"all\" for the committed sweep sizes")
		scaleOut   = flag.String("scale-out", "", "write the measured BENCH_scale.json to this file")
		scaleBase  = flag.String("scale-baseline", "", "compare against a committed BENCH_scale.json and exit non-zero on throughput/footprint regressions")
		scaleTol   = flag.Float64("scale-tolerance", 0.5, "relative budget for -scale-baseline (0.5 = 50%; the gate targets order-of-magnitude O(N) regressions, not jitter)")
		scaleTrace = flag.String("scale-trace", "", "stream the JSONL event trace of the scale runs to this file (see internal/obs)")
	)
	flag.Parse()
	micro := *out != "" || *baseline != ""
	if !micro && *scaleArg == "" {
		fmt.Fprintln(os.Stderr, "fedspeed: nothing to do; pass -out/-baseline and/or -scale")
		os.Exit(2)
	}

	if micro {
		runMicro(*out, *baseline, *tolerance)
	}
	if *scaleArg != "" {
		runScale(*scaleArg, *scaleOut, *scaleBase, *scaleTol, *scaleTrace)
	}
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func runMicro(out, baseline string, tolerance float64) {
	// Three repetitions of the full suite, interleaved so each rep's
	// benchmarks share machine conditions. The committed point for each
	// benchmark is its best rep — ns/op only ever reads high under
	// interference (scheduler, turbo, cache pollution), so the minimum is
	// the noise-robust estimate of the true cost — while the speedup-ratio
	// gates are checked per rep and hold on the median, which cancels the
	// common-mode noise a ratio of two independently-picked minima
	// doubles up on.
	const reps = 3
	repPts := make([][]obs.BenchPoint, reps)
	for rep := 0; rep < reps; rep++ {
		for _, bm := range speed.Benchmarks {
			runtime.GC() // isolate each benchmark from its predecessors' garbage
			r := testing.Benchmark(bm.Fn)
			repPts[rep] = append(repPts[rep], obs.BenchPoint{
				Name:        bm.Name,
				NsPerOp:     nsPerOp(r),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
			})
		}
	}
	pts := make([]obs.BenchPoint, 0, len(speed.Benchmarks))
	for i := range speed.Benchmarks {
		best := repPts[0][i]
		for rep := 1; rep < reps; rep++ {
			if p := repPts[rep][i]; p.NsPerOp < best.NsPerOp {
				best = p
			}
		}
		fmt.Printf("%-20s %12.0f ns/op %8d B/op %6d allocs/op  (%d iterations)\n",
			best.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp, best.Iterations)
		pts = append(pts, best)
	}

	// The declared speedup ratios hold on every run — both when gating
	// against a committed baseline and when regenerating it, so a
	// baseline that no longer backs the repository's claims can never be
	// written in the first place.
	if violations := obs.CheckRatios(repPts, speed.Ratios); len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "fedspeed: %d speedup-ratio violation(s):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	for _, g := range speed.Ratios {
		fmt.Printf("ratio gate passed: %s/%s >= %.1fx\n", g.Slow, g.Fast, g.Min)
	}

	if out != "" {
		writeJSON(out, func(f *os.File) error { return obs.WriteSpeed(f, pts) })
		fmt.Printf("wrote %s\n", out)
	}
	if baseline != "" {
		f, err := os.Open(baseline)
		if err != nil {
			fail(err)
		}
		base, err := obs.ReadSpeed(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if regressions := obs.CompareSpeed(pts, base, tolerance); len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "fedspeed: %d speed regression(s) vs %s:\n", len(regressions), baseline)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("speed gate passed: no regressions vs %s (tolerance %.0f%%)\n", baseline, 100*tolerance)
	}
}

func runScale(arg, out, baseline string, tolerance float64, tracePath string) {
	var sizes []int
	if arg == "all" {
		sizes = speed.ScaleSizes
	} else {
		for _, s := range strings.Split(arg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fail(fmt.Errorf("bad -scale device count %q", s))
			}
			sizes = append(sizes, n)
		}
	}

	var trace obs.Sink
	closeTrace := func() {}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fail(err)
		}
		w := bufio.NewWriterSize(f, 1<<16)
		j := obs.NewJSONL(w)
		trace = j
		closeTrace = func() {
			err := j.Err()
			if ferr := w.Flush(); err == nil {
				err = ferr
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail(fmt.Errorf("scale trace: %w", err))
			}
		}
	}

	pts := make([]obs.ScalePoint, 0, len(sizes))
	for _, n := range sizes {
		pt, err := speed.ScaleRun(n, trace)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-16s %10.0f dispatches/sec %10.0f bytes/device %8.1f MiB peak %8.1fs wall\n",
			pt.Name, pt.DispatchesPerSec, pt.BytesPerDevice, float64(pt.PeakSysBytes)/(1<<20), pt.WallSeconds)
		pts = append(pts, pt)
	}
	closeTrace()

	if out != "" {
		writeJSON(out, func(f *os.File) error { return obs.WriteScale(f, pts) })
		fmt.Printf("wrote %s\n", out)
	}
	if baseline != "" {
		f, err := os.Open(baseline)
		if err != nil {
			fail(err)
		}
		base, err := obs.ReadScale(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if regressions := obs.CompareScale(pts, base, tolerance); len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "fedspeed: %d scale regression(s) vs %s:\n", len(regressions), baseline)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("scale gate passed: no regressions vs %s (tolerance %.0f%%)\n", baseline, 100*tolerance)
	}
}

func writeJSON(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fedspeed: %v\n", err)
	os.Exit(1)
}
