// Command fedworker runs one worker of the fednet distributed runtime.
// Each worker regenerates the shared synthetic federated dataset locally
// (standing in for the on-device data a real deployment would have) and
// hosts the shard range assigned by -index of -workers.
//
// See cmd/fedserver for a full launch recipe.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fedprox/internal/cli"
	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/data/datafile"
	"fedprox/internal/experiments"
	"fedprox/internal/fednet"
	"fedprox/internal/obs"
	"fedprox/internal/privacy"
	"fedprox/internal/solver"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7070", "coordinator address")
		workload = flag.String("workload", "synthetic", "workload key (must match the server)")
		scale    = flag.Float64("scale", 0.25, "dataset scale factor (must match the server)")
		dataPath = flag.String("data", "", "load the federated dataset from a fedgen file instead of regenerating")
		workers  = flag.Int("workers", 1, "total number of workers in the deployment")
		index    = flag.Int("index", 0, "this worker's index in [0, workers)")
		local    = flag.String("solver", "sgd", "local solver: sgd, momentum, adagrad, adam, gd")
		codec    = flag.String("codec", "", "restrict the offered update codecs to this comma-separated list (default: all of "+strings.Join(comm.Names(), ", ")+")")
		privClip = flag.Float64("privacy-clip", 0, "update-level DP: L2 clip bound on each local update delta (0 disables clipping)")
		privStd  = flag.Float64("privacy-noise", 0, "update-level DP: Gaussian noise std added per coordinate of the delta (0 disables noise)")
		privSeed = flag.Uint64("privacy-seed", 0, "seed of the DP noise streams (with -privacy-noise)")

		tierFlags  cli.Tier
		traceFlags cli.Trace
		debugFlags cli.Debug
	)
	tierFlags.Register(flag.CommandLine)
	traceFlags.Register(flag.CommandLine)
	debugFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := tierFlags.Validate(); err != nil {
		fail(err)
	}
	if *index < 0 || *index >= *workers {
		fail(fmt.Errorf("index %d outside [0,%d)", *index, *workers))
	}

	opts := experiments.Full()
	opts.Scale = *scale
	w, err := opts.NamedWorkload(*workload)
	if err != nil {
		fail(err)
	}
	fed := w.Fed
	if *dataPath != "" {
		// A prepared data file (cmd/fedgen) replaces local regeneration —
		// the deployment mode where devices already hold their data.
		fed, err = datafile.ReadFile(*dataPath)
		if err != nil {
			fail(err)
		}
	}

	var shards []*data.Shard
	if tierFlags.Enabled() {
		// Under -tier edge, -workers counts the tree's edges and -index
		// names which edge this worker serves: it hosts that edge's
		// contiguous fleet slice under edge-local device IDs, matching
		// the edge coordinator's 0-based view of its subtree.
		lo, hi, err := tierFlags.WorkerSlice(fed.NumDevices(), *workers, *index)
		if err != nil {
			fail(err)
		}
		for g := lo; g < hi; g++ {
			s := *fed.Shards[g]
			s.ID = g - lo
			shards = append(shards, &s)
		}
	} else {
		// Round-robin shard assignment: worker i hosts devices i, i+W, i+2W...
		for k := *index; k < fed.NumDevices(); k += *workers {
			shards = append(shards, fed.Shards[k])
		}
	}

	ls, err := pickSolver(*local)
	if err != nil {
		fail(err)
	}
	devOpts := core.DeviceOptions{Solver: ls}
	// Observability: the device runtime's per-request events (and the
	// worker shell's solve spans) stream to the -trace JSONL file and
	// aggregate into the -debug-addr /metrics registry. Device events are
	// always untimed; WallClock stamps seconds since process start.
	var sinks []obs.Sink
	trace, closeTrace, err := traceFlags.Open()
	if err != nil {
		fail(err)
	}
	if trace != nil {
		sinks = append(sinks, trace)
	}
	if reg := debugFlags.Serve("fedworker", true); reg != nil {
		sinks = append(sinks, reg)
	}
	devOpts.Trace = obs.WallClock(obs.Multi(sinks...))
	if *privClip > 0 || *privStd > 0 {
		// Update-level DP is device-side state: the mechanism clips and
		// noises each local solution before the uplink encode, so the
		// server never sees a raw update.
		devOpts.Privacy = &privacy.Mechanism{ClipNorm: *privClip, NoiseStd: *privStd, Seed: *privSeed}
		if err := devOpts.Privacy.Validate(); err != nil {
			fail(err)
		}
	}
	fmt.Printf("fedworker %d/%d: hosting %d devices of %s, solver %s\n",
		*index, *workers, len(shards), fed.Name, ls.Name())
	wk := fednet.NewWorkerWithOptions(w.Model, shards, devOpts)
	if *codec != "" {
		for _, name := range strings.Split(*codec, ",") {
			if name = strings.TrimSpace(name); name != "" {
				wk.Offer = append(wk.Offer, name)
			}
		}
		if len(wk.Offer) == 0 {
			// A nil Offer advertises every codec — the opposite of what a
			// non-empty (if malformed) -codec asked for.
			fail(fmt.Errorf("-codec %q names no codecs", *codec))
		}
	}
	if err := wk.Run(*addr); err != nil {
		fail(err)
	}
	if err := closeTrace(); err != nil {
		fail(err)
	}
	fmt.Printf("fedworker %d: shut down cleanly\n", *index)
}

func pickSolver(name string) (solver.LocalSolver, error) {
	switch name {
	case "sgd":
		return solver.SGDSolver{}, nil
	case "momentum":
		return solver.MomentumSolver{Beta: 0.9}, nil
	case "adagrad":
		return solver.AdagradSolver{}, nil
	case "adam":
		return solver.AdamSolver{}, nil
	case "gd":
		return solver.GDSolver{StepsPerEpoch: 1}, nil
	default:
		return nil, fmt.Errorf("unknown solver %q", name)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fedworker: %v\n", err)
	os.Exit(1)
}
