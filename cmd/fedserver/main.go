// Command fedserver runs the federated coordinator of the fednet
// distributed runtime: it owns the global model and round schedule and
// never sees training data. All protocol decisions happen in the shared
// core.Coordinator; this process is its TCP driver.
//
// Workers and server must agree on -workload, -scale, and -data-seed so
// every process derives the same dataset partition and model shape; the
// server uses the dataset only to size the model and count devices.
//
// Under -async/-async buffered a worker that disconnects or times out is
// evicted and the run continues on the survivors; re-running the same
// fedworker command re-registers its devices and the coordinator
// re-admits them mid-run with freshly synchronized codec link state.
//
//	fedserver -addr :7070 -workload synthetic -rounds 50 -mu 1 &
//	fedworker -addr localhost:7070 -workload synthetic -workers 3 -index 0 &
//	fedworker -addr localhost:7070 -workload synthetic -workers 3 -index 1 &
//	fedworker -addr localhost:7070 -workload synthetic -workers 3 -index 2
//
// Hierarchical aggregation (-tier) turns the deployment into a process
// tree: the root's "devices" are edge aggregators, each edge owns a
// contiguous slice of the fleet and folds -fanout device replies into
// one upstream reply per round. Every process agrees on -clients and
// -fanout; the tree has clients/fanout edges:
//
//	fedserver -tier root -fanout 4 -clients 8 -addr :7070 &
//	fedserver -tier edge -fanout 4 -clients 8 -index 0 -parent localhost:7070 -addr :7071 &
//	fedserver -tier edge -fanout 4 -clients 8 -index 1 -parent localhost:7070 -addr :7072 &
//	fedworker -tier edge -fanout 4 -workers 2 -index 0 -addr localhost:7071 &
//	fedworker -tier edge -fanout 4 -workers 2 -index 1 -addr localhost:7072
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedprox/internal/cli"
	"fedprox/internal/core"
	"fedprox/internal/experiments"
	"fedprox/internal/fednet"
	"fedprox/internal/frand"
	"fedprox/internal/obs"
	"fedprox/internal/tier"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		workload   = flag.String("workload", "synthetic", "workload key: synthetic, synthetic-iid, mnist, femnist, shakespeare, sent140")
		scale      = flag.Float64("scale", 0.25, "dataset scale factor (must match workers)")
		rounds     = flag.Int("rounds", 50, "communication rounds")
		clients    = flag.Int("clients", 10, "devices selected per round (K)")
		epochs     = flag.Int("epochs", 20, "local epochs (E)")
		mu         = flag.Float64("mu", 1, "proximal coefficient")
		stragglers = flag.Float64("stragglers", 0.5, "straggler fraction per round")
		drop       = flag.Bool("drop", false, "drop stragglers (FedAvg) instead of aggregating partial work")
		evalEvery  = flag.Int("eval-every", 5, "evaluation interval in rounds")
		seed       = flag.Uint64("seed", 7, "environment seed (must match workers' -data-seed usage)")
		reqTimeout = flag.Duration("request-timeout", 0, "per-reply timeout before a worker is declared dead (0 = wait forever)")
		parent     = flag.String("parent", "", "parent coordinator address (with -tier edge)")
		index      = flag.Int("index", 0, "this edge's index among the tree's edges (with -tier edge)")

		codecFlags cli.Codec
		precFlags  cli.Precision
		asyncFlags cli.Async
		tierFlags  cli.Tier
		traceFlags cli.Trace
		debugFlags cli.Debug
	)
	codecFlags.Register(flag.CommandLine)
	precFlags.Register(flag.CommandLine)
	asyncFlags.Register(flag.CommandLine)
	tierFlags.Register(flag.CommandLine)
	traceFlags.Register(flag.CommandLine)
	debugFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := tierFlags.ServerRole(*parent); err != nil {
		fail(err)
	}

	opts := experiments.Full()
	opts.Scale = *scale
	w, err := opts.NamedWorkload(*workload)
	if err != nil {
		fail(err)
	}

	cfg := core.FedProx(*rounds, *clients, *epochs, w.LR, *mu)
	cfg.StragglerFraction = *stragglers
	cfg.EvalEvery = *evalEvery
	cfg.Seed = *seed
	if *drop {
		cfg.Straggler = core.DropStragglers
	}
	if err := codecFlags.Apply(&cfg); err != nil {
		fail(err)
	}
	if err := precFlags.Apply(&cfg); err != nil {
		fail(err)
	}
	if cfg.Async, err = asyncFlags.Config(); err != nil {
		fail(err)
	}
	if cfg.Async.Enabled() && *drop {
		// The asynchronous modes have no round deadline to drop anyone
		// at; partial straggler work is always folded (the FedProx
		// policy). Refuse rather than silently ignore the request.
		fail(fmt.Errorf("-drop (FedAvg straggler policy) requires synchronous rounds"))
	}

	// Observability: the coordinator's decision points stream to the
	// -trace JSONL file and aggregate into the -debug-addr /metrics
	// registry through one sink. Coordinator events are untimed on a real
	// transport (no virtual clock), so WallClock stamps them with seconds
	// since process start.
	var sinks []obs.Sink
	trace, closeTrace, err := traceFlags.Open()
	if err != nil {
		fail(err)
	}
	if trace != nil {
		sinks = append(sinks, trace)
	}
	if reg := debugFlags.Serve("fedserver", true); reg != nil {
		sinks = append(sinks, reg)
	}
	cfg.Trace = obs.WallClock(obs.Multi(sinks...))

	expect := w.Fed.NumDevices()
	switch tierFlags.Role {
	case "edge":
		// An edge aggregator: accept this edge's slice of the fleet as a
		// child deployment, and join the parent as one pseudo-device.
		edges, err := tierFlags.Cohort(*clients)
		if err != nil {
			fail(err)
		}
		if *index < 0 || *index >= edges {
			fail(fmt.Errorf("-index %d outside [0,%d)", *index, edges))
		}
		lo, hi := tier.Partition(w.Fed.NumDevices(), edges, *index)
		// Each edge runs its own selection streams: decorrelate them the
		// way the simulator's tiered driver seeds its nodes.
		cfg.Seed = frand.New(*seed).Split("tier").SplitIndex(*index).State()
		edge, err := fednet.NewEdge(w.Model, fednet.EdgeConfig{
			Training:       cfg,
			ExpectDevices:  hi - lo,
			DeviceID:       *index,
			FanOut:         tierFlags.FanOut,
			RequestTimeout: *reqTimeout,
			LegLatency:     time.Duration(tierFlags.Latency * float64(time.Second)),
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("fedserver: edge %d/%d on %s — devices [%d,%d) of %s, folding %d per window into %s\n",
			*index, edges, *addr, lo, hi, w.Fed.Name, tierFlags.FanOut, *parent)
		if err := edge.Run(*addr, *parent); err != nil {
			fail(err)
		}
		if err := closeTrace(); err != nil {
			fail(err)
		}
		read, written := edge.BytesOnWire()
		fmt.Printf("fedserver: edge %d done — child wire %dKB in / %dKB out\n", *index, read/1024, written/1024)
		return
	case "root":
		// The tree's root: its "devices" are the edge aggregators, one
		// pseudo-device each, and every edge participates every round.
		// Stragglers are an edge-local phenomenon — each edge applies
		// -stragglers to its own window.
		cohort, err := tierFlags.Cohort(*clients)
		if err != nil {
			fail(err)
		}
		cfg.ClientsPerRound = cohort
		cfg.StragglerFraction = 0
		expect = cohort
	}

	srv, err := fednet.NewServer(w.Model, fednet.ServerConfig{
		Training:       cfg,
		ExpectDevices:  expect,
		RequestTimeout: *reqTimeout,
		Tier:           tierFlags.RootTier(),
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("fedserver: %s on %s — waiting for %d devices\n",
		core.Label(cfg), *addr, expect)
	if cfg.Async.Enabled() {
		fmt.Println("fedserver: async mode — evicted workers may reconnect and will be re-admitted mid-run")
	}
	hist, err := srv.Run(*addr)
	if err != nil {
		fail(err)
	}
	if err := closeTrace(); err != nil {
		fail(err)
	}
	fmt.Print(hist)
	c := hist.Final().Cost
	read, written := srv.BytesOnWire()
	fmt.Printf("bytes: uplink %dKB, downlink %dKB (payload accounting); wire %dKB in / %dKB out (measured)\n",
		c.UplinkBytes/1024, c.DownlinkBytes/1024, read/1024, written/1024)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
	os.Exit(1)
}
