// Command fedgen generates a federated dataset to a file, prints its
// Table-1 statistics, and optionally verifies an existing file — the
// data-preparation step of the reproduction pipeline (the role LEAF's
// preprocessing scripts play for the paper). With -vtime it instead
// prints the workload's virtual-time infrastructure profile (per-tier
// compute times, transfer times for the model size, emergent straggler
// rate) — the planning step for choosing ext-vtime deadlines and byte
// budgets.
//
//	fedgen -workload mnist -scale 0.5 -out mnist.fed
//	fedgen -verify mnist.fed
//	fedgen -workload synthetic -vtime -epochs 20
package main

import (
	"flag"
	"fmt"
	"os"

	"fedprox/internal/cli"
	"fedprox/internal/data/datafile"
	"fedprox/internal/experiments"
	"fedprox/internal/syshet"
)

func main() {
	var (
		workload = flag.String("workload", "synthetic", "workload key: synthetic, synthetic-iid, mnist, femnist, shakespeare, sent140")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		out      = flag.String("out", "", "output path (required unless -verify or -vtime)")
		verify   = flag.String("verify", "", "verify an existing dataset file and print its stats")
		vtimeP   = flag.Bool("vtime", false, "print the workload's virtual-time latency profile instead of writing a file")
		epochs   = flag.Int("epochs", 20, "-vtime: local epoch budget E to profile")
		seed     = flag.Uint64("seed", 7, "-vtime: fleet assignment seed")

		debugFlags cli.Debug
	)
	debugFlags.Register(flag.CommandLine)
	flag.Parse()

	// fedgen has no event stream to aggregate; the endpoint serves pprof
	// only (profile large -scale generations).
	debugFlags.Serve("fedgen", false)

	if *verify != "" {
		fed, err := datafile.ReadFile(*verify)
		if err != nil {
			fail(err)
		}
		fmt.Printf("ok: %s\n", fed.ComputeStats())
		return
	}
	if *out == "" && !*vtimeP {
		fail(fmt.Errorf("-out is required (or -vtime for a latency profile)"))
	}
	opts := experiments.Full()
	opts.Scale = *scale
	w, err := opts.NamedWorkload(*workload)
	if err != nil {
		fail(err)
	}
	if *vtimeP {
		printVTimeProfile(w, *epochs, *seed)
		return
	}
	if err := datafile.WriteFile(*out, w.Fed); err != nil {
		fail(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%.1f MB)\n%s\n", *out, float64(info.Size())/(1<<20), w.Fed.ComputeStats())
}

// printVTimeProfile builds the default syshet fleet over the workload
// and reports the numbers a virtual-time experiment is tuned with: how
// long each hardware tier needs for E epochs on the mean shard, what the
// uncompressed model transfer costs, and the straggler rate a given
// deadline induces.
func printVTimeProfile(w experiments.Workload, epochs int, seed uint64) {
	sizes := w.Fed.TrainSizes()
	mean := 0
	for _, n := range sizes {
		mean += n
	}
	mean /= len(sizes)
	const batch = 10
	deadline := syshet.DeadlineFor(epochs, mean, batch, 10 /* mid-tier speed */)
	fleet := syshet.NewFleet(syshet.Config{
		Deadline:  deadline,
		JitterStd: 0.3,
		BatchSize: batch,
		Seed:      seed,
	}, sizes)

	fmt.Printf("virtual-time profile: %s — %d devices, mean shard %d, E=%d, batch %d\n",
		w.Fed.Name, w.Fed.NumDevices(), mean, epochs, batch)
	fmt.Printf("model: %d params, %.1f KB uncompressed per transfer\n",
		w.Model.NumParams(), float64(w.Model.NumParams()*8)/1024)
	fmt.Printf("fleet tiers (mid-tier deadline %.1fs): %v\n", deadline, fleet.TierCounts())
	fmt.Printf("%10s %8s %18s %18s\n", "tier", "speed", "secs/E-epochs", "budget@deadline")
	for _, tier := range syshet.DefaultTiers() {
		// A representative device of this tier over the mean shard.
		batches := float64((mean + batch - 1) / batch)
		secs := float64(epochs) * batches / tier.Speed
		budget := int(deadline / (batches / tier.Speed))
		if budget > epochs {
			budget = epochs
		}
		fmt.Printf("%10s %8.1f %18.1f %18d\n", tier.Name, tier.Speed, secs, budget)
	}
	fmt.Printf("emergent straggler rate over 10 rounds at E=%d: %.2f\n",
		epochs, fleet.StragglerRate(10, epochs))
	fmt.Printf("suggested ext-vtime knobs: -vtime-deadline %.1f (mid-tier fit), -vtime-round-bytes %d (70%% of a 10-client round)\n",
		deadline, int64(0.7*10*2*float64(w.Model.NumParams()*8)))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fedgen: %v\n", err)
	os.Exit(1)
}
