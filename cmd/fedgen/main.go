// Command fedgen generates a federated dataset to a file, prints its
// Table-1 statistics, and optionally verifies an existing file — the
// data-preparation step of the reproduction pipeline (the role LEAF's
// preprocessing scripts play for the paper).
//
//	fedgen -workload mnist -scale 0.5 -out mnist.fed
//	fedgen -verify mnist.fed
package main

import (
	"flag"
	"fmt"
	"os"

	"fedprox/internal/data/datafile"
	"fedprox/internal/experiments"
)

func main() {
	var (
		workload = flag.String("workload", "synthetic", "workload key: synthetic, synthetic-iid, mnist, femnist, shakespeare, sent140")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		out      = flag.String("out", "", "output path (required unless -verify)")
		verify   = flag.String("verify", "", "verify an existing dataset file and print its stats")
	)
	flag.Parse()

	if *verify != "" {
		fed, err := datafile.ReadFile(*verify)
		if err != nil {
			fail(err)
		}
		fmt.Printf("ok: %s\n", fed.ComputeStats())
		return
	}
	if *out == "" {
		fail(fmt.Errorf("-out is required"))
	}
	opts := experiments.Full()
	opts.Scale = *scale
	w, err := opts.NamedWorkload(*workload)
	if err != nil {
		fail(err)
	}
	if err := datafile.WriteFile(*out, w.Fed); err != nil {
		fail(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%.1f MB)\n%s\n", *out, float64(info.Size())/(1<<20), w.Fed.ComputeStats())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fedgen: %v\n", err)
	os.Exit(1)
}
