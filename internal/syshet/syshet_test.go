package syshet

import (
	"math"
	"testing"

	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
	"fedprox/internal/vtime"
)

func coreWorkload() (*data.Federated, *linear.Model) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	return fed, linear.ForDataset(fed)
}

func sizes(n, per int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = per
	}
	return out
}

func testConfig() Config {
	return Config{
		Deadline:  DeadlineFor(20, 100, 10, 10), // mid-tier just completes E=20
		JitterStd: 0.3,
		BatchSize: 10,
		Seed:      11,
	}
}

func TestFleetImplementsCapabilityModel(t *testing.T) {
	var _ core.CapabilityModel = NewFleet(testConfig(), sizes(10, 100))
}

func TestFleetImplementsVTimeCompute(t *testing.T) {
	var _ vtime.ComputeModel = NewFleet(testConfig(), sizes(10, 100))
}

// TestComputeSecondsConsistentWithBudget: a device's virtual compute time
// for its own epoch budget never exceeds the deadline that produced the
// budget, and one more epoch would overshoot it — the two views of the
// same clock cycle agree.
func TestComputeSecondsConsistentWithBudget(t *testing.T) {
	cfg := testConfig()
	f := NewFleet(cfg, sizes(30, 100))
	for r := 0; r < 3; r++ {
		for k := 0; k < 30; k++ {
			b := f.EpochBudget(r, k, 20)
			if b == 0 {
				continue
			}
			if got := f.ComputeSeconds(r, k, b); got > cfg.Deadline {
				t.Fatalf("device %d round %d: %d budgeted epochs take %g > deadline %g", k, r, b, got, cfg.Deadline)
			}
			if b < 20 {
				if got := f.ComputeSeconds(r, k, b+1); got <= cfg.Deadline {
					t.Fatalf("device %d round %d: budget %d but %d epochs still fit (%g <= %g)", k, r, b, b+1, got, cfg.Deadline)
				}
			}
		}
	}
	if f.ComputeSeconds(0, 0, 0) != 0 {
		t.Fatal("zero epochs must cost zero time")
	}
}

func TestBudgetsWithinRange(t *testing.T) {
	f := NewFleet(testConfig(), sizes(50, 100))
	for r := 0; r < 5; r++ {
		for k := 0; k < 50; k++ {
			b := f.EpochBudget(r, k, 20)
			if b < 0 || b > 20 {
				t.Fatalf("budget = %d, want [0,20]", b)
			}
		}
	}
}

func TestDeterministicBudgets(t *testing.T) {
	a := NewFleet(testConfig(), sizes(30, 100))
	b := NewFleet(testConfig(), sizes(30, 100))
	for r := 0; r < 3; r++ {
		for k := 0; k < 30; k++ {
			if a.EpochBudget(r, k, 20) != b.EpochBudget(r, k, 20) {
				t.Fatalf("budgets differ at round %d device %d", r, k)
			}
		}
	}
}

func TestFasterTiersGetBiggerBudgets(t *testing.T) {
	cfg := testConfig()
	cfg.JitterStd = 0 // isolate tier speed
	f := NewFleet(cfg, sizes(400, 100))
	byTier := map[string][]int{}
	for k := 0; k < 400; k++ {
		byTier[f.Tier(k)] = append(byTier[f.Tier(k)], f.EpochBudget(0, k, 20))
	}
	mean := func(xs []int) float64 {
		s := 0
		for _, x := range xs {
			s += x
		}
		return float64(s) / float64(len(xs))
	}
	if mean(byTier["flagship"]) <= mean(byTier["aging"]) {
		t.Fatalf("flagship budget %g not above aging %g",
			mean(byTier["flagship"]), mean(byTier["aging"]))
	}
	// Mid-tier devices with the calibration shard should complete all 20.
	if got := mean(byTier["midrange"]); got != 20 {
		t.Fatalf("midrange mean budget = %g, want 20 at calibrated deadline", got)
	}
}

func TestMoreDataMeansSmallerBudget(t *testing.T) {
	cfg := testConfig()
	cfg.JitterStd = 0
	small := NewFleet(cfg, sizes(200, 50))
	big := NewFleet(cfg, sizes(200, 500))
	smaller := 0
	for k := 0; k < 200; k++ {
		bs, bb := small.EpochBudget(0, k, 20), big.EpochBudget(0, k, 20)
		if bb < bs {
			smaller++
		}
		if bb > bs {
			t.Fatalf("device %d: 10x data gave bigger budget (%d > %d)", k, bb, bs)
		}
	}
	if smaller == 0 {
		t.Fatal("shard size never affected the budget")
	}
}

func TestStragglerRateEmergent(t *testing.T) {
	f := NewFleet(testConfig(), sizes(300, 100))
	rate := f.StragglerRate(5, 20)
	// Budget/aging tiers (~50% of the fleet) plus jitter should straggle;
	// flagships should not. The rate must be interior, not 0 or 1.
	if rate < 0.2 || rate > 0.9 {
		t.Fatalf("emergent straggler rate = %g, want interior value", rate)
	}
}

func TestDeadlineForCalibration(t *testing.T) {
	d := DeadlineFor(20, 100, 10, 10)
	// 10 batches/epoch at 10 batches/sec = 1 s/epoch; 20 epochs = 20 s.
	if math.Abs(d-20) > 1e-12 {
		t.Fatalf("DeadlineFor = %g, want 20", d)
	}
}

func TestTierCountsMatchShares(t *testing.T) {
	f := NewFleet(testConfig(), sizes(2000, 100))
	counts := f.TierCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 2000 {
		t.Fatalf("tier counts sum to %d", total)
	}
	// midrange has share 0.40: expect roughly 800 of 2000.
	if c := counts["midrange"]; c < 640 || c > 960 {
		t.Fatalf("midrange count = %d, want ~800", c)
	}
	if counts["flagship"] >= counts["midrange"] {
		t.Fatalf("flagship (%d) should be rarer than midrange (%d)",
			counts["flagship"], counts["midrange"])
	}
}

func TestJitterVariesAcrossRounds(t *testing.T) {
	f := NewFleet(testConfig(), sizes(10, 100))
	varies := false
	for k := 0; k < 10 && !varies; k++ {
		s0, s1 := f.EffectiveSpeed(0, k), f.EffectiveSpeed(1, k)
		if s0 != s1 {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jitter never varied across rounds")
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewFleet(Config{Deadline: 0, BatchSize: 10}, sizes(1, 1)) },
		func() { NewFleet(Config{Deadline: 1, BatchSize: 0}, sizes(1, 1)) },
		func() {
			NewFleet(Config{Deadline: 1, BatchSize: 10, Tiers: []Tier{{Share: -1, Speed: 1}}}, sizes(1, 1))
		},
		func() { NewFleet(Config{Deadline: 1, BatchSize: 10, Tiers: []Tier{}}, sizes(1, 1)) },
		func() { NewFleet(testConfig(), sizes(1, 1)).EpochBudget(0, 5, 1) },
		func() { DeadlineFor(1, 1, 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestEndToEndWithCore runs the federated core under the capability model
// and checks that partial-work aggregation beats dropping, as in the
// designated-straggler experiments.
func TestEndToEndWithCore(t *testing.T) {
	// Built here to avoid an import cycle in test helpers: synthetic data
	// through the core public entry points.
	run := func(policy core.StragglerPolicy) float64 {
		fed, mdl := coreWorkload()
		cfg := core.FedProx(12, 10, 20, 0.01, 0)
		cfg.Straggler = policy
		cfg.EvalEvery = 12
		cfg.Capability = NewFleet(Config{
			Deadline:  DeadlineFor(4, 40, 10, 10), // tight: mid-tier gets 4 of 20 epochs
			JitterStd: 0.3,
			BatchSize: 10,
			Seed:      3,
		}, fed.TrainSizes())
		h, err := core.Run(mdl, fed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h.Final().TrainLoss
	}
	drop, agg := run(core.DropStragglers), run(core.AggregatePartial)
	if agg >= drop {
		t.Fatalf("aggregate (%g) not better than drop (%g) under capability model", agg, drop)
	}
}
