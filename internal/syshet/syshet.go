// Package syshet simulates device-level systems heterogeneity from first
// principles, replacing the paper's designated-straggler shortcut with the
// mechanism its Section 5.2 describes: "there is a real-world global clock
// cycle to aggregate model updates, and each participating device
// determines the amount of local work as a function of this clock cycle
// and its systems constraints."
//
// A Fleet assigns every device a hardware tier (flagship phone, mid-range,
// budget, aging) with a characteristic processing speed, plus a per-round
// multiplicative jitter modelling battery state, thermal throttling, and
// background load. A device's epoch budget for a round is how many passes
// over its local shard fit inside the global deadline at its current
// effective speed — so devices with more data or weaker hardware straggle
// organically, and the straggler population is emergent rather than
// designated. Fleet implements core.CapabilityModel.
package syshet

import (
	"fmt"
	"math"

	"fedprox/internal/frand"
)

// Tier is a hardware class.
type Tier struct {
	// Name labels the tier in diagnostics.
	Name string
	// Share is the fraction of the fleet in this tier; shares are
	// normalized, so they need not sum to 1.
	Share float64
	// Speed is the tier's processing rate in mini-batches per second.
	Speed float64
}

// DefaultTiers models a consumer phone population: a small flagship
// segment, a large mid-range core, and budget and aging tails.
func DefaultTiers() []Tier {
	return []Tier{
		{Name: "flagship", Share: 0.10, Speed: 30},
		{Name: "midrange", Share: 0.40, Speed: 10},
		{Name: "budget", Share: 0.35, Speed: 4},
		{Name: "aging", Share: 0.15, Speed: 1.5},
	}
}

// Config parameterizes a Fleet.
type Config struct {
	// Deadline is the global clock cycle in seconds: the time the server
	// waits before aggregating.
	Deadline float64
	// Tiers describes the hardware mix; nil selects DefaultTiers.
	Tiers []Tier
	// JitterStd is the standard deviation of the per-round log-normal
	// speed jitter (0 disables jitter).
	JitterStd float64
	// BatchSize converts shard sizes into batches per epoch; must match
	// the training batch size for budgets to be meaningful.
	BatchSize int
	// Seed drives tier assignment and jitter.
	Seed uint64
}

// DeadlineFor returns the global clock cycle that lets a device of the
// given speed complete exactly `epochs` epochs over a shard of meanShard
// examples — the natural way to pick a deadline that makes mid-tier
// devices just keep up.
func DeadlineFor(epochs int, meanShard, batchSize int, speed float64) float64 {
	if batchSize <= 0 || speed <= 0 {
		panic("syshet: invalid deadline parameters")
	}
	batches := math.Ceil(float64(meanShard) / float64(batchSize))
	return float64(epochs) * batches / speed
}

// Fleet is a population of simulated devices. It implements
// core.CapabilityModel.
type Fleet struct {
	cfg    Config
	tiers  []Tier
	tierOf []int // device -> tier index
	// batchesPerEpoch caches ceil(n_k / BatchSize) per device.
	batchesPerEpoch []float64
	jitterRoot      *frand.Source
}

// NewFleet builds a fleet for devices whose local training-set sizes are
// trainSizes. Tier assignment is deterministic in Config.Seed.
func NewFleet(cfg Config, trainSizes []int) *Fleet {
	if cfg.Deadline <= 0 {
		panic("syshet: Deadline must be positive")
	}
	if cfg.BatchSize <= 0 {
		panic("syshet: BatchSize must be positive")
	}
	tiers := cfg.Tiers
	if tiers == nil {
		tiers = DefaultTiers()
	}
	if len(tiers) == 0 {
		panic("syshet: no tiers")
	}
	shares := make([]float64, len(tiers))
	for i, t := range tiers {
		if t.Share < 0 || t.Speed <= 0 {
			panic(fmt.Sprintf("syshet: invalid tier %+v", t))
		}
		shares[i] = t.Share
	}
	root := frand.New(cfg.Seed)
	assign := root.Split("tiers")
	f := &Fleet{
		cfg:             cfg,
		tiers:           tiers,
		tierOf:          make([]int, len(trainSizes)),
		batchesPerEpoch: make([]float64, len(trainSizes)),
		jitterRoot:      root.Split("jitter"),
	}
	for k, n := range trainSizes {
		f.tierOf[k] = assign.SplitIndex(k).Categorical(shares)
		f.batchesPerEpoch[k] = math.Ceil(float64(n) / float64(cfg.BatchSize))
		if f.batchesPerEpoch[k] < 1 {
			f.batchesPerEpoch[k] = 1
		}
	}
	return f
}

// Tier returns the tier name of a device.
func (f *Fleet) Tier(device int) string {
	return f.tiers[f.tierOf[device]].Name
}

// EffectiveSpeed returns the device's batches-per-second rate in a round,
// including jitter. Deterministic in (round, device).
func (f *Fleet) EffectiveSpeed(round, device int) float64 {
	speed := f.tiers[f.tierOf[device]].Speed
	if f.cfg.JitterStd > 0 {
		z := f.jitterRoot.SplitIndex(round).SplitIndex(device).Norm()
		speed *= math.Exp(f.cfg.JitterStd*z - f.cfg.JitterStd*f.cfg.JitterStd/2)
	}
	return speed
}

// ComputeSeconds returns the virtual time the device needs for epochs
// full passes over its shard at its effective (jittered) speed in the
// given round. It makes a Fleet a vtime.ComputeModel, so the same
// hardware population that drives epoch budgets also drives the
// virtual-time engine's compute leg.
func (f *Fleet) ComputeSeconds(round, device, epochs int) float64 {
	if device < 0 || device >= len(f.tierOf) {
		panic(fmt.Sprintf("syshet: device %d out of range", device))
	}
	if epochs <= 0 {
		return 0
	}
	return float64(epochs) * f.batchesPerEpoch[device] / f.EffectiveSpeed(round, device)
}

// EpochBudget implements core.CapabilityModel: the number of full epochs
// the device completes before the deadline, capped at requested.
func (f *Fleet) EpochBudget(round, device, requested int) int {
	if device < 0 || device >= len(f.tierOf) {
		panic(fmt.Sprintf("syshet: device %d out of range", device))
	}
	epochTime := f.batchesPerEpoch[device] / f.EffectiveSpeed(round, device)
	budget := int(f.cfg.Deadline / epochTime)
	if budget > requested {
		budget = requested
	}
	if budget < 0 {
		budget = 0
	}
	return budget
}

// StragglerRate estimates the emergent straggler fraction: the share of
// (round, device) pairs over the first `rounds` rounds whose budget falls
// short of requested.
func (f *Fleet) StragglerRate(rounds, requested int) float64 {
	if rounds <= 0 || len(f.tierOf) == 0 {
		return 0
	}
	short := 0
	for r := 0; r < rounds; r++ {
		for k := range f.tierOf {
			if f.EpochBudget(r, k, requested) < requested {
				short++
			}
		}
	}
	return float64(short) / float64(rounds*len(f.tierOf))
}

// TierCounts returns how many devices landed in each tier, in tier order.
func (f *Fleet) TierCounts() map[string]int {
	out := make(map[string]int, len(f.tiers))
	for _, ti := range f.tierOf {
		out[f.tiers[ti].Name]++
	}
	return out
}
