package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedprox/internal/core"
)

// parse registers the groups on a throwaway FlagSet and parses args —
// the way every command consumes this package.
func parse(t *testing.T, register func(*flag.FlagSet), args ...string) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
}

func TestCodecApply(t *testing.T) {
	var c Codec
	parse(t, c.Register, "-codec", "qsgd", "-bits", "4", "-downlink-codec", "raw")
	var cfg core.Config
	if err := c.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Codec.Name != "qsgd" || cfg.Codec.Bits != 4 {
		t.Fatalf("uplink spec not applied: %+v", cfg.Codec)
	}
	if cfg.DownlinkCodec.Name != "raw" {
		t.Fatalf("downlink spec not applied: %+v", cfg.DownlinkCodec)
	}

	// Refining flags without -codec are the one cross-flag error, with
	// the same message on every command.
	var bad Codec
	parse(t, bad.Register, "-bits", "4")
	if err := bad.Apply(&core.Config{}); err == nil || !strings.Contains(err.Error(), "require -codec") {
		t.Fatalf("want 'require -codec' error, got %v", err)
	}

	// No codec selected: Apply is a no-op.
	var none Codec
	parse(t, none.Register)
	cfg = core.Config{}
	if err := none.Apply(&cfg); err != nil || cfg.Codec.Enabled() {
		t.Fatalf("empty group must be a no-op, got %+v, %v", cfg.Codec, err)
	}
}

func TestAsyncConfig(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		mode    core.AggregationMode
		wantErr string
	}{
		{name: "default-sync", args: nil, mode: core.SyncRounds},
		{name: "explicit-sync", args: []string{"-async", "sync"}, mode: core.SyncRounds},
		{name: "async", args: []string{"-async", "async", "-alpha", "0.5", "-max-in-flight", "8"}, mode: core.AsyncTotal},
		{name: "buffered", args: []string{"-async", "buffered", "-buffer-k", "3"}, mode: core.Buffered},
		{name: "knobs-without-mode", args: []string{"-alpha", "0.5"}, wantErr: "require -async"},
		{name: "buffer-k-on-total", args: []string{"-async", "async", "-buffer-k", "3"}, wantErr: "-async buffered"},
		{name: "unknown-mode", args: []string{"-async", "bogus"}, wantErr: "unknown -async mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var a Async
			parse(t, a.Register, tc.args...)
			got, err := a.Config()
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got.Mode != tc.mode {
				t.Fatalf("mode = %v, want %v", got.Mode, tc.mode)
			}
		})
	}
}

func TestAsyncRegisterOverrides(t *testing.T) {
	// The fedbench spellings set the same fields, without a mode
	// selector — the experiments decide the mode.
	var a Async
	parse(t, a.RegisterOverrides, "-async-alpha", "0.25", "-async-staleness-exp", "-1", "-async-buffer-k", "4")
	if a.Alpha != 0.25 || a.StalenessExp != -1 || a.BufferK != 4 {
		t.Fatalf("override spellings did not land: %+v", a)
	}
	if a.Mode != "" {
		t.Fatalf("overrides must not select a mode, got %q", a.Mode)
	}
}

func TestTierValidate(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{name: "empty", args: nil},
		{name: "root", args: []string{"-tier", "root", "-fanout", "8"}},
		{name: "edge-with-latency", args: []string{"-tier", "edge", "-fanout", "4", "-tier-latency", "0.02"}},
		{name: "sim", args: []string{"-tier", "sim", "-fanout", "32"}},
		{name: "fanout-without-tier", args: []string{"-fanout", "8"}, wantErr: "require -tier"},
		{name: "latency-without-tier", args: []string{"-tier-latency", "0.5"}, wantErr: "require -tier"},
		{name: "tier-without-fanout", args: []string{"-tier", "root"}, wantErr: "requires -fanout >= 2"},
		{name: "fanout-one", args: []string{"-tier", "edge", "-fanout", "1"}, wantErr: "requires -fanout >= 2"},
		{name: "negative-latency", args: []string{"-tier", "edge", "-fanout", "4", "-tier-latency", "-1"}, wantErr: "non-negative"},
		{name: "unknown-role", args: []string{"-tier", "leaf", "-fanout", "4"}, wantErr: "unknown -tier role"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tr Tier
			parse(t, tr.Register, tc.args...)
			err := tr.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatal(err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestTierServerRole(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		parent  string
		wantErr string
	}{
		{name: "flat", args: nil},
		{name: "root", args: []string{"-tier", "root", "-fanout", "8"}},
		{name: "edge", args: []string{"-tier", "edge", "-fanout", "4"}, parent: "localhost:7070"},
		{name: "edge-without-parent", args: []string{"-tier", "edge", "-fanout", "4"}, wantErr: "requires -parent"},
		{name: "parent-without-edge", args: nil, parent: "localhost:7070", wantErr: "requires -tier edge"},
		{name: "parent-on-root", args: []string{"-tier", "root", "-fanout", "8"}, parent: "localhost:7070", wantErr: "requires -tier edge"},
		{name: "sim-on-server", args: []string{"-tier", "sim", "-fanout", "8"}, wantErr: "fedbench override"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tr Tier
			parse(t, tr.Register, tc.args...)
			err := tr.ServerRole(tc.parent)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatal(err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestTierCohort(t *testing.T) {
	tr := Tier{Role: "root", FanOut: 8}
	if got, err := tr.Cohort(64); err != nil || got != 8 {
		t.Fatalf("Cohort(64) = %d, %v; want 8", got, err)
	}
	if _, err := tr.Cohort(60); err == nil || !strings.Contains(err.Error(), "must divide") {
		t.Fatalf("want divisibility error, got %v", err)
	}
}

func TestTierWorkerSlice(t *testing.T) {
	cases := []struct {
		name        string
		tier        Tier
		n, edges, i int
		lo, hi      int
		wantErr     string
	}{
		{name: "first-edge", tier: Tier{Role: "edge", FanOut: 4}, n: 30, edges: 2, i: 0, lo: 0, hi: 15},
		{name: "last-edge", tier: Tier{Role: "edge", FanOut: 4}, n: 30, edges: 2, i: 1, lo: 15, hi: 30},
		{name: "root-worker", tier: Tier{Role: "root", FanOut: 4}, n: 30, edges: 2, i: 0, wantErr: "only serve under an edge"},
		{name: "sim-worker", tier: Tier{Role: "sim", FanOut: 4}, n: 30, edges: 2, i: 0, wantErr: "only serve under an edge"},
		{name: "worker-latency", tier: Tier{Role: "edge", FanOut: 4, Latency: 0.1}, n: 30, edges: 2, i: 0, wantErr: "not workers"},
		{name: "index-out-of-range", tier: Tier{Role: "edge", FanOut: 4}, n: 30, edges: 2, i: 2, wantErr: "outside"},
		{name: "too-few-devices", tier: Tier{Role: "edge", FanOut: 4}, n: 1, edges: 2, i: 0, wantErr: "cannot cover"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi, err := tc.tier.WorkerSlice(tc.n, tc.edges, tc.i)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if lo != tc.lo || hi != tc.hi {
				t.Fatalf("slice [%d,%d), want [%d,%d)", lo, hi, tc.lo, tc.hi)
			}
		})
	}
}

func TestTierSimOverride(t *testing.T) {
	var none Tier
	if f, l, err := none.SimOverride(); err != nil || f != 0 || l != 0 {
		t.Fatalf("empty group: got %d, %g, %v", f, l, err)
	}
	sim := Tier{Role: "sim", FanOut: 16, Latency: 0.02}
	if f, l, err := sim.SimOverride(); err != nil || f != 16 || l != 0.02 {
		t.Fatalf("sim override: got %d, %g, %v", f, l, err)
	}
	root := Tier{Role: "root", FanOut: 8}
	if _, _, err := root.SimOverride(); err == nil || !strings.Contains(err.Error(), "fedserver role") {
		t.Fatalf("want fedserver-role error, got %v", err)
	}
}

func TestTraceOpen(t *testing.T) {
	// Empty path: nil sink, close is a working no-op.
	var empty Trace
	sink, closeFn, err := empty.Open()
	if err != nil || sink != nil {
		t.Fatalf("empty -trace: want nil sink, got %v, %v", sink, err)
	}
	if err := closeFn(); err != nil {
		t.Fatalf("no-op close errored: %v", err)
	}

	// Real path: events land in the file after close.
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr := Trace{Path: path}
	sink, closeFn, err = tr.Open()
	if err != nil {
		t.Fatal(err)
	}
	if sink == nil {
		t.Fatal("want a sink for a real path")
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
}

func TestDebugServeDisabled(t *testing.T) {
	var d Debug
	if reg := d.Serve("test", true); reg != nil {
		t.Fatal("no -debug-addr must not build a registry")
	}
}
