// Package cli defines the flag groups the fedprox command-line tools
// share, each exactly once: the codec selection (-codec,
// -downlink-codec, -bits, -topk), the asynchronous-aggregation knobs
// (-async, -alpha, -staleness-exp, -buffer-k, -max-in-flight and the
// fedbench "-async-*" override spellings), the hierarchical-aggregation
// group (-tier, -fanout, -tier-latency), the virtual-time policy
// overrides (-vtime-deadline, -vtime-round-bytes), the -trace JSONL
// sink, and the -debug-addr metrics/pprof endpoint.
//
// Before this package, cmd/fedbench and cmd/fedserver each re-declared
// the codec flags with their own help strings and their own "-bits
// requires -codec" checks, and the trace-file open/flush/close dance
// was pasted into three mains; the versions drifted one flag at a time.
// Here a command embeds the groups it serves, calls Register on its
// FlagSet, and gets identical semantics (and identical error messages)
// to every other command by construction.
package cli

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/obs"
	"fedprox/internal/tensor"
	"fedprox/internal/tier"
)

// Codec is the model-update codec flag group: -codec, -downlink-codec,
// -bits, -topk.
type Codec struct {
	Name     string
	Downlink string
	Bits     int
	TopK     float64
}

// Register declares the group's flags on fs.
func (c *Codec) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Name, "codec", "", "model-update codec: "+strings.Join(comm.Names(), ", ")+" (empty = uncompressed)")
	fs.StringVar(&c.Downlink, "downlink-codec", "", "override -codec on the broadcast direction (e.g. raw under -codec topk)")
	fs.IntVar(&c.Bits, "bits", 0, "qsgd bit width (0 = comm default)")
	fs.Float64Var(&c.TopK, "topk", 0, "topk kept fraction (0 = comm default)")
}

// Validate reports the group's one cross-flag constraint: the refining
// flags are meaningless without a codec selected.
func (c *Codec) Validate() error {
	if c.Name == "" && (c.Downlink != "" || c.Bits != 0 || c.TopK != 0) {
		return fmt.Errorf("-downlink-codec, -bits, and -topk require -codec")
	}
	return nil
}

// Enabled reports whether a codec was selected.
func (c *Codec) Enabled() bool { return c.Name != "" }

// Apply validates the group and writes the selected codec specs into
// cfg (a no-op when no codec is selected).
func (c *Codec) Apply(cfg *core.Config) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Name == "" {
		return nil
	}
	cfg.Codec = comm.Spec{Name: c.Name, Bits: c.Bits, TopK: c.TopK}
	if c.Downlink != "" {
		cfg.DownlinkCodec = comm.Spec{Name: c.Downlink, Bits: c.Bits, TopK: c.TopK}
	}
	return nil
}

// Precision is the arithmetic-width flag group: -precision.
type Precision struct {
	Name string
}

// Register declares the group's flag on fs.
func (p *Precision) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.Name, "precision", "", "device hot-path arithmetic width: "+strings.Join(tensor.Precisions(), ", ")+" (empty = f64)")
}

// Apply parses the selected width into cfg. Config.Validate enforces the
// f32 composition rules (no privacy, no topk); the model/solver
// capability check happens at run construction.
func (p *Precision) Apply(cfg *core.Config) error {
	prec, err := tensor.ParsePrecision(p.Name)
	if err != nil {
		return err
	}
	cfg.Precision = prec
	return nil
}

// Async is the asynchronous-aggregation flag group. Register declares
// the full group (mode selector plus knobs) under the canonical names;
// RegisterOverrides declares the knob subset under the "-async-*"
// spellings cmd/fedbench uses to override experiment defaults, where
// the experiments — not a flag — choose the aggregation mode.
type Async struct {
	Mode         string
	Alpha        float64
	StalenessExp float64
	BufferK      int
	MaxInFlight  int
}

// Register declares -async, -alpha, -staleness-exp, -buffer-k, and
// -max-in-flight on fs.
func (a *Async) Register(fs *flag.FlagSet) {
	fs.StringVar(&a.Mode, "async", "", "aggregation discipline: empty/sync (lock-step rounds), async (fold replies on arrival), buffered (flush every -buffer-k replies)")
	fs.Float64Var(&a.Alpha, "alpha", 0, "async base mixing rate in (0,1] (0 = default)")
	fs.Float64Var(&a.StalenessExp, "staleness-exp", 0, "async staleness damping exponent p in alpha/(1+s)^p (0 = default, negative = no damping)")
	fs.IntVar(&a.BufferK, "buffer-k", 0, "buffered mode: replies per flush (0 = -clients)")
	fs.IntVar(&a.MaxInFlight, "max-in-flight", 0, "async modes: concurrently outstanding train requests (0 = -clients)")
}

// RegisterOverrides declares -async-alpha, -async-staleness-exp, and
// -async-buffer-k on fs — the knobs without the mode selector.
func (a *Async) RegisterOverrides(fs *flag.FlagSet) {
	fs.Float64Var(&a.Alpha, "async-alpha", 0, "ext-async/ext-vtime base mixing rate (0 = core default)")
	fs.Float64Var(&a.StalenessExp, "async-staleness-exp", 0, "ext-async/ext-vtime staleness damping exponent (0 = core default, negative = no damping)")
	fs.IntVar(&a.BufferK, "async-buffer-k", 0, "ext-async/ext-vtime buffered flush size (0 = clients per round)")
}

// Config resolves the mode selector into a core.AsyncConfig, enforcing
// the same cross-flag constraints everywhere: knobs require -async, and
// -buffer-k applies only to the buffered mode.
func (a *Async) Config() (core.AsyncConfig, error) {
	switch a.Mode {
	case "", "sync":
		if a.Alpha != 0 || a.StalenessExp != 0 || a.BufferK != 0 || a.MaxInFlight != 0 {
			return core.AsyncConfig{}, fmt.Errorf("-alpha, -staleness-exp, -buffer-k, and -max-in-flight require -async")
		}
		return core.AsyncConfig{}, nil
	case "async":
		if a.BufferK != 0 {
			return core.AsyncConfig{}, fmt.Errorf("-buffer-k applies only to -async buffered")
		}
		return core.AsyncConfig{Mode: core.AsyncTotal, Alpha: a.Alpha, StalenessExponent: a.StalenessExp, MaxInFlight: a.MaxInFlight}, nil
	case "buffered":
		return core.AsyncConfig{Mode: core.Buffered, Alpha: a.Alpha, StalenessExponent: a.StalenessExp, BufferK: a.BufferK, MaxInFlight: a.MaxInFlight}, nil
	default:
		return core.AsyncConfig{}, fmt.Errorf("unknown -async mode %q (sync, async, buffered)", a.Mode)
	}
}

// Tier is the hierarchical-aggregation flag group: -tier, -fanout,
// -tier-latency. The role names a process's place in an aggregation
// tree — fedserver is the tree's root or an edge aggregator, fedworker
// serves the device slice of one edge, and fedbench's "sim" role
// overrides the in-process ext-hier sweep — while -fanout and
// -tier-latency shape the tree identically everywhere, so a deployment
// and its simulation are described in the same vocabulary.
type Tier struct {
	Role    string
	FanOut  int
	Latency float64
}

// Register declares the group's flags on fs.
func (t *Tier) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.Role, "tier", "", "hierarchical-aggregation role: root (accept edge folds), edge (fold children for a -parent), sim (fedbench: override the in-process sweep)")
	fs.IntVar(&t.FanOut, "fanout", 0, "children each aggregator contacts per window (>= 2, requires -tier)")
	fs.Float64Var(&t.Latency, "tier-latency", 0, "aggregator-leg latency in seconds (requires -tier): edges sleep it per parent exchange, fedbench prices it on the virtual backbone")
}

// Enabled reports whether a tier role was selected.
func (t *Tier) Enabled() bool { return t.Role != "" }

// Validate reports the group's cross-flag constraints: the shape flags
// are meaningless without a role, and every role needs a real fan-out.
func (t *Tier) Validate() error {
	switch t.Role {
	case "", "root", "edge", "sim":
	default:
		return fmt.Errorf("unknown -tier role %q (root, edge, sim)", t.Role)
	}
	if t.Role == "" && (t.FanOut != 0 || t.Latency != 0) {
		return fmt.Errorf("-fanout and -tier-latency require -tier")
	}
	if t.Role != "" && t.FanOut < 2 {
		return fmt.Errorf("-tier %s requires -fanout >= 2", t.Role)
	}
	if t.Latency < 0 {
		return fmt.Errorf("-tier-latency must be non-negative, got %g", t.Latency)
	}
	return nil
}

// ServerRole validates the group for fedserver, which additionally owns
// the -parent flag: an edge must have a parent to fold into, and a
// parent address without the edge role is a configuration mistake.
func (t *Tier) ServerRole(parent string) error {
	if err := t.Validate(); err != nil {
		return err
	}
	switch t.Role {
	case "sim":
		return fmt.Errorf("-tier sim is a fedbench override; fedserver is root or edge")
	case "edge":
		if parent == "" {
			return fmt.Errorf("-tier edge requires -parent")
		}
	default:
		if parent != "" {
			return fmt.Errorf("-parent requires -tier edge")
		}
	}
	return nil
}

// Cohort returns clients/FanOut — the number of edge aggregators in a
// one-tier tree, which is also the root's per-window cohort (the root
// contacts every edge).
func (t *Tier) Cohort(clients int) (int, error) {
	if clients <= 0 || clients%t.FanOut != 0 {
		return 0, fmt.Errorf("-fanout %d must divide -clients %d", t.FanOut, clients)
	}
	return clients / t.FanOut, nil
}

// WorkerSlice resolves which global device range [lo, hi) a fedworker
// hosts under -tier edge: the slice of edge `index` of `edges` over n
// devices. Workers are leaves — only the edge role applies, and the
// aggregator-leg latency is not theirs to emulate.
func (t *Tier) WorkerSlice(n, edges, index int) (lo, hi int, err error) {
	if err := t.Validate(); err != nil {
		return 0, 0, err
	}
	if t.Role != "edge" {
		return 0, 0, fmt.Errorf("-tier %s: a fedworker can only serve under an edge (-tier edge)", t.Role)
	}
	if t.Latency != 0 {
		return 0, 0, fmt.Errorf("-tier-latency applies to aggregator legs, not workers")
	}
	if edges <= 0 || index < 0 || index >= edges {
		return 0, 0, fmt.Errorf("edge index %d outside [0,%d)", index, edges)
	}
	if n < edges {
		return 0, 0, fmt.Errorf("%d devices cannot cover %d edges", n, edges)
	}
	lo, hi = tier.Partition(n, edges, index)
	return lo, hi, nil
}

// RootTier returns the core.CoordinatorOptions.Tier value of a
// fedserver in this role: 1 (the tree's root) under -tier root, 0
// (untiered) otherwise. Edges stamp their own depth via fednet.NewEdge.
func (t *Tier) RootTier() int {
	if t.Role == "root" {
		return 1
	}
	return 0
}

// SimOverride resolves the group for fedbench: the in-process commands
// take only the "sim" role, whose fan-out (and optional backbone
// latency) replace the ext-hier sweep's defaults. With no role selected
// it returns zeros.
func (t *Tier) SimOverride() (fanout int, latency float64, err error) {
	if err := t.Validate(); err != nil {
		return 0, 0, err
	}
	switch t.Role {
	case "":
		return 0, 0, nil
	case "sim":
		return t.FanOut, t.Latency, nil
	default:
		return 0, 0, fmt.Errorf("-tier %s is a fedserver role; fedbench takes -tier sim", t.Role)
	}
}

// VTime is the virtual-time straggler-policy override group:
// -vtime-deadline and -vtime-round-bytes.
type VTime struct {
	Deadline   float64
	RoundBytes int64
}

// Register declares the group's flags on fs.
func (v *VTime) Register(fs *flag.FlagSet) {
	fs.Float64Var(&v.Deadline, "vtime-deadline", 0, "ext-vtime sync-deadline policy in virtual seconds (0 = derive from the latency model)")
	fs.Int64Var(&v.RoundBytes, "vtime-round-bytes", 0, "ext-vtime sync-budget policy in wire bytes per round (0 = ~70% of a full round)")
}

// Trace is the -trace flag group: a buffered JSONL event sink.
type Trace struct {
	Path string
}

// Register declares -trace on fs.
func (t *Trace) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.Path, "trace", "", "stream a JSONL event trace to this file (see internal/obs)")
}

// Open creates the trace file and returns its sink plus a close
// function that flushes and reports the first write error — call it
// explicitly once the runs are done (os.Exit paths bypass defers).
// With no -trace, the sink is nil and close is a no-op.
func (t *Trace) Open() (obs.Sink, func() error, error) {
	if t.Path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(t.Path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	j := obs.NewJSONL(w)
	return j, func() error {
		err := j.Err()
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		return nil
	}, nil
}

// Debug is the -debug-addr flag group: the Prometheus /metrics plus
// /debug/pprof endpoint.
type Debug struct {
	Addr string
}

// Register declares -debug-addr on fs.
func (d *Debug) Register(fs *flag.FlagSet) {
	fs.StringVar(&d.Addr, "debug-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. localhost:6060)")
}

// Serve starts the debug endpoint in the background when -debug-addr
// was given and returns the registry sink to feed it (nil otherwise —
// also pass nil to serve pprof without metrics). name prefixes the
// listen-failure message.
func (d *Debug) Serve(name string, withMetrics bool) *obs.Registry {
	if d.Addr == "" {
		return nil
	}
	var reg *obs.Registry
	if withMetrics {
		reg = obs.NewRegistry()
	}
	go func() {
		if err := http.ListenAndServe(d.Addr, obs.Debug(reg)); err != nil {
			fmt.Fprintf(os.Stderr, "%s: debug server: %v\n", name, err)
		}
	}()
	return reg
}
