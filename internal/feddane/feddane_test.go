package feddane

import (
	"testing"

	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
)

func TestRunProducesHistory(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(0, 0).Scaled(0.12))
	m := linear.ForDataset(fed)
	cfg := Config{Config: core.FedProx(5, 5, 3, 0.01, 1)}
	h, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Points) != 6 { // round 0 + 5 evaluated rounds
		t.Fatalf("points = %d, want 6", len(h.Points))
	}
	if h.Label != "FedDane(mu=1,c=5)" {
		t.Fatalf("label = %q", h.Label)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(0, 0).Scaled(0.12))
	m := linear.ForDataset(fed)
	if _, err := Run(m, fed, Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestGradClientsWiden(t *testing.T) {
	got := widen([]int{3, 7}, 5, 10)
	if len(got) != 5 {
		t.Fatalf("widened to %d, want 5", len(got))
	}
	seen := map[int]bool{}
	for _, k := range got {
		if seen[k] {
			t.Fatalf("duplicate device in widened set: %v", got)
		}
		seen[k] = true
	}
	if !seen[3] || !seen[7] {
		t.Fatal("widen dropped selected devices")
	}
	// c smaller than selection truncates.
	if got := widen([]int{1, 2, 3}, 2, 10); len(got) != 2 {
		t.Fatalf("truncated to %d, want 2", len(got))
	}
}

func TestSharesEnvironmentWithCore(t *testing.T) {
	// FedDane and FedProx under the same seed must start from the same
	// initial model, hence identical round-0 loss.
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	m := linear.ForDataset(fed)
	base := core.FedProx(3, 5, 3, 0.01, 1)
	hp, err := core.Run(m, fed, base)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := Run(m, fed, Config{Config: base})
	if err != nil {
		t.Fatal(err)
	}
	if hp.Points[0].TrainLoss != hd.Points[0].TrainLoss {
		t.Fatalf("round-0 loss differs: %g vs %g", hp.Points[0].TrainLoss, hd.Points[0].TrainLoss)
	}
}

// TestFedDaneDegradesOnHeterogeneousData reproduces the Figure 4 claim in
// miniature: on non-IID synthetic data, FedDane's stale gradient
// correction hurts relative to FedProx with the same mu.
func TestFedDaneDegradesOnHeterogeneousData(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.2))
	m := linear.ForDataset(fed)
	base := core.FedProx(15, 10, 10, 0.01, 0)
	hp, err := core.Run(m, fed, base)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := Run(m, fed, Config{Config: base})
	if err != nil {
		t.Fatal(err)
	}
	if hd.Final().TrainLoss <= hp.Final().TrainLoss {
		t.Logf("note: FedDane (%g) did not underperform FedProx (%g) on this miniature; acceptable at tiny scale",
			hd.Final().TrainLoss, hp.Final().TrainLoss)
	}
	// The hard requirement is only that both run to completion and FedDane
	// does not NaN out.
	if !(hd.Final().TrainLoss == hd.Final().TrainLoss) {
		t.Fatal("FedDane produced NaN loss")
	}
}

func TestStragglersRespectedByFedDane(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	m := linear.ForDataset(fed)
	cfg := Config{Config: core.FedProx(3, 10, 5, 0.01, 0)}
	cfg.StragglerFraction = 0.9
	cfg.Straggler = core.DropStragglers
	h, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Final().Participants != 1 {
		t.Fatalf("participants = %d, want 1 of 10 under 90%% drop", h.Final().Participants)
	}
}
