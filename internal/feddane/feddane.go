// Package feddane implements the FedDane baseline of Appendix B, Figure 4:
// DANE/AIDE's proximal-plus-gradient-correction local objective adapted to
// federated constraints (local updating, low device participation).
//
// Each round, the server estimates the full gradient ∇f(wᵗ) from a sampled
// subset of devices, and every selected device k approximately minimizes
//
//	F_k(w) + ⟨ĝ − ∇F_k(wᵗ), w⟩ + (μ/2)·‖w − wᵗ‖²
//
// where ĝ is the sampled-gradient estimate. The paper shows this
// correction — effective in data-center settings where all machines
// participate — destabilizes under federated sampling because ĝ is a
// stale, inexact estimate; FedProx drops the correction term and is the
// stabler method. This package exists to regenerate that comparison.
package feddane

import (
	"fmt"
	"math"

	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/metrics"
	"fedprox/internal/model"
	"fedprox/internal/solver"
	"fedprox/internal/tensor"
)

// Config extends the core configuration with the gradient-estimation
// sample size.
type Config struct {
	core.Config
	// GradClients is c, the number of devices sampled to estimate ∇f(wᵗ)
	// (Figure 4 sweeps c ∈ {10, 20, 30}). Zero uses ClientsPerRound.
	GradClients int
}

// Run executes one FedDane run and returns its trajectory. The environment
// (selection, stragglers, batch order, init) is identical to a core.Run
// under the same seed, so FedDane and FedProx trajectories are directly
// comparable.
func Run(m model.Model, fed *data.Federated, cfg Config) (*core.History, error) {
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	c := cfg.GradClients
	if c <= 0 {
		c = cfg.ClientsPerRound
	}
	if c > fed.NumDevices() {
		c = fed.NumDevices()
	}
	env := core.NewEnv(fed, cfg.Config)
	ecfg := env.Config()
	w := m.InitParams(env.InitRNG())

	hist := &core.History{Label: labelFor(cfg)}
	record := func(round, participants int) {
		p := core.Point{
			Round:          round,
			TrainLoss:      metrics.GlobalLoss(m, fed, w),
			TestAcc:        metrics.TestAccuracy(m, fed, w),
			GradVar:        math.NaN(),
			B:              math.NaN(),
			Mu:             ecfg.Mu,
			MeanGamma:      math.NaN(),
			Participants:   participants,
			MeanStaleness:  math.NaN(),
			MaxStaleness:   math.NaN(),
			VirtualSeconds: math.NaN(),
		}
		if ecfg.TrackDissimilarity {
			p.GradVar, p.B = metrics.Dissimilarity(m, fed, w)
		}
		hist.Points = append(hist.Points, p)
	}
	record(0, 0)

	weights := env.Weights()
	scratch := make([]float64, m.NumParams())
	for t := 0; t < ecfg.Rounds; t++ {
		selected := env.SelectDevices(t)
		epochs, straggler := env.StragglerPlan(t, selected)

		// Gradient-estimation set: the selected devices, widened with the
		// lowest-index unselected devices when c > K. Sampling more devices
		// narrows the gap between ĝ and the true full gradient (the
		// bottom-row sweep of Figure 4).
		gradSet := widen(selected, c, fed.NumDevices())

		// ĝ = Σ_{k∈gradSet} p_k ∇F_k(wᵗ) / Σ_{k∈gradSet} p_k.
		ghat := make([]float64, m.NumParams())
		totalP := 0.0
		localGrads := make(map[int][]float64, len(gradSet))
		for _, k := range gradSet {
			g := make([]float64, m.NumParams())
			m.Grad(g, w, fed.Shards[k].Train)
			localGrads[k] = g
			tensor.Axpy(weights[k], g, ghat)
			totalP += weights[k]
		}
		if totalP > 0 {
			tensor.Scale(1/totalP, ghat)
		}

		var params [][]float64
		var nks []float64
		for i, k := range selected {
			if ecfg.Straggler == core.DropStragglers && straggler[i] {
				continue
			}
			gk, ok := localGrads[k]
			if !ok {
				gk = make([]float64, m.NumParams())
				m.Grad(gk, w, fed.Shards[k].Train)
			}
			// correction = ĝ − ∇F_k(wᵗ).
			corr := scratch
			tensor.Sub(corr, ghat, gk)
			scfg := solver.Config{
				LearningRate: ecfg.LearningRate,
				BatchSize:    ecfg.BatchSize,
				Mu:           ecfg.Mu,
				Correction:   tensor.Clone(corr),
			}
			wk := solver.SGD(m, fed.Shards[k].Train, w, scfg, epochs[i], env.BatchRNG(t, k))
			params = append(params, wk)
			nks = append(nks, float64(len(fed.Shards[k].Train)))
		}
		if len(params) > 0 {
			switch ecfg.Sampling {
			case core.WeightedSimpleAvg:
				tensor.Mean(w, params)
			default:
				tensor.WeightedMean(w, params, nks)
			}
		}
		if (t+1)%ecfg.EvalEvery == 0 || t == ecfg.Rounds-1 {
			record(t+1, len(params))
		}
	}
	return hist, nil
}

// widen extends selected to size c with the smallest-index devices not
// already present. Order carries no meaning for gradient estimation.
func widen(selected []int, c, numDevices int) []int {
	if len(selected) >= c {
		return selected[:c]
	}
	out := append([]int(nil), selected...)
	in := make(map[int]bool, len(selected))
	for _, k := range selected {
		in[k] = true
	}
	for k := 0; k < numDevices && len(out) < c; k++ {
		if !in[k] {
			out = append(out, k)
		}
	}
	return out
}

func labelFor(cfg Config) string {
	c := cfg.GradClients
	if c <= 0 {
		c = cfg.ClientsPerRound
	}
	return fmt.Sprintf("FedDane(mu=%g,c=%d)", cfg.Mu, c)
}
