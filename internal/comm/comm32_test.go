package comm

import (
	"bytes"
	"math"
	"testing"

	"fedprox/internal/frand"
	"fedprox/internal/tensor"
)

func testVec32(n int, seed uint64) []float32 {
	v64 := testVec(n, seed)
	v := make([]float32, n)
	tensor.Narrow(v, v64)
	return v
}

func mustCodec32(t *testing.T, s Spec) Codec32 {
	t.Helper()
	c32, err := As32(mustCodec(t, s))
	if err != nil {
		t.Fatal(err)
	}
	return c32
}

// TestLevelStreamRoundTrip drives the level writer/reader pair across
// every packing regime — radix (bits 2 and 3), the byte-aligned fast
// path (bits 8), and shift/mask bit-packing (4, 5, 11, 16) — at counts
// chosen to land on, before, and after the radix group boundaries
// (groups of 40 at 2 bits, 22 at 3).
func TestLevelStreamRoundTrip(t *testing.T) {
	for _, width := range []int{2, 3, 4, 5, 8, 11, 16} {
		maxLevel := uint32(2 * levels(width)) // offset-binary range [0, 2s]
		for _, n := range []int{1, 2, 21, 22, 23, 39, 40, 41, 44, 80, 257} {
			rng := frand.New(uint64(width*1000 + n))
			vals := make([]uint32, n)
			for i := range vals {
				vals[i] = uint32(rng.Intn(int(maxLevel) + 1))
			}
			buf := make([]byte, packedLen(n, width))
			w := newLevelWriter(buf, width)
			for _, v := range vals {
				w.put(v)
			}
			w.finish()
			r := newLevelReader(buf, width, n)
			for i, want := range vals {
				if got := r.next(); got != want {
					t.Fatalf("width %d n %d index %d: got %d want %d", width, n, i, got, want)
				}
			}
		}
	}
}

// TestByteFastPathMatchesBitPacking pins the 8-bit specialization to
// the generic shift/mask layout: the payload bytes must be identical,
// or a mixed-version fleet (one side on the fast path, one not) would
// disagree about the stream.
func TestByteFastPathMatchesBitPacking(t *testing.T) {
	const n, width = 53, 8
	rng := frand.New(99)
	vals := make([]uint32, n)
	fast := make([]byte, packedLen(n, width))
	generic := make([]byte, packedLen(n, width))
	w := newLevelWriter(fast, width)
	for i := range vals {
		vals[i] = uint32(rng.Intn(1 << width))
		w.put(vals[i])
		putBits(generic, i*width, width, vals[i])
	}
	w.finish()
	if !bytes.Equal(fast, generic) {
		t.Fatal("8-bit fast path produced a different payload than putBits")
	}
	for i, want := range vals {
		if got := getBits(fast, i*width, width); got != want {
			t.Fatalf("getBits cannot read the fast-path payload at %d: got %d want %d", i, got, want)
		}
	}
}

// TestQSGD32RoundTrip checks the f32 quantizer against the same error
// bound the f64 one carries (‖v−decode‖∞ ≤ scale/s), and that its
// payload round-trips exactly through Decode32.
func TestQSGD32RoundTrip(t *testing.T) {
	for _, bits := range []int{2, 3, 4, 8, 16} {
		v := testVec32(257, uint64(bits))
		enc := mustCodec32(t, Spec{Name: "qsgd", Bits: bits, Seed: 5})
		dec := mustCodec32(t, Spec{Name: "qsgd", Bits: bits, Seed: 5})
		u := enc.Encode32(v, nil)
		if !u.F32 {
			t.Fatal("Encode32 did not mark the update f32")
		}
		got, err := dec.Decode32(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		var scale float64
		for _, x := range v {
			if a := math.Abs(float64(x)); a > scale {
				scale = a
			}
		}
		unit := scale / float64(levels(bits))
		for i := range v {
			if d := math.Abs(float64(v[i]) - float64(got[i])); d > unit+1e-6 {
				t.Fatalf("bits %d index %d: |%v - %v| = %g exceeds unit %g", bits, i, v[i], got[i], d, unit)
			}
		}
	}
}

// TestQSGDCrossWidthDecode documents that the level payload is
// width-agnostic: an update quantized from f64 decodes on the f32 side
// and vice versa, to the same reconstruction up to a float32 rounding
// of the scale.
func TestQSGDCrossWidthDecode(t *testing.T) {
	v64 := testVec(129, 3)
	enc := mustCodec(t, Spec{Name: "qsgd", Bits: 8, Seed: 7})
	u := enc.Encode(v64, nil)

	dec32 := mustCodec32(t, Spec{Name: "qsgd", Bits: 8, Seed: 7})
	got32, err := dec32.Decode32(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec64 := mustCodec(t, Spec{Name: "qsgd", Bits: 8, Seed: 7})
	got64, err := dec64.Decode(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got64 {
		if d := math.Abs(float64(got32[i]) - got64[i]); d > 1e-5*math.Abs(got64[i])+1e-7 {
			t.Fatalf("index %d: f32 decode %v vs f64 decode %v", i, got32[i], got64[i])
		}
	}
}

// TestQSGD32Deterministic: same seed, same input → byte-identical
// payload, the property the coordinator's view reconstruction depends
// on.
func TestQSGD32Deterministic(t *testing.T) {
	v := testVec32(200, 8)
	a := mustCodec32(t, Spec{Name: "qsgd", Bits: 4, Seed: 21}).Encode32(v, nil)
	b := mustCodec32(t, Spec{Name: "qsgd", Bits: 4, Seed: 21}).Encode32(v, nil)
	if !bytes.Equal(a.Packed, b.Packed) || a.Scale != b.Scale {
		t.Fatal("same seed and input produced different payloads")
	}
}

// TestF32PathRejections: the sparsifier has no f32 path — both the
// runtime cast and the spec validation must say so, because a silent
// fall back to f64 would change the wire format mid-link.
func TestF32PathRejections(t *testing.T) {
	if _, err := As32(mustCodec(t, Spec{Name: "topk"})); err == nil {
		t.Fatal("As32 accepted the topk codec")
	}
	if err := (Spec{Name: "topk", Precision: tensor.F32}).Validate(); err == nil {
		t.Fatal("Validate accepted a topk spec at f32")
	}
	if err := (Spec{Name: "raw", Precision: "f16"}).Validate(); err == nil {
		t.Fatal("Validate accepted an unknown precision")
	}
}
