package comm

import (
	"fmt"
	"math"
	"sort"

	"fedprox/internal/tensor"
)

// topkCodec transmits only the k largest-magnitude coordinates of the
// link's transition params − prev. Sparsifying the full parameter vector
// would zero most of the model, so top-k inherently operates on the
// transition; the delta transform is built in rather than composed.
//
// When ef is set, coordinates the codec does not send accumulate in a
// per-link error-feedback residual that is added back before the next
// selection (Stich et al., "Sparsified SGD with Memory"), so no
// component of the update is ever permanently lost — only delayed. ef is
// for links whose base is one-shot (each round's prev is exact on both
// ends, e.g. an uplink against that round's broadcast). On a chained
// link (downlink, where prev is the last decoded transfer) the unsent
// mass stays inside the next transition automatically because prev lags
// by exactly that amount, and a residual would double-count it — see
// comm.Downlink.
type topkCodec struct {
	frac     float64
	ef       bool
	residual []float64
}

func (c *topkCodec) Name() string { return "topk" }

func (c *topkCodec) Encode(params, prev []float64) *Update {
	n := len(params)
	// d is the transition this call owes the peer: params − prev, plus
	// whatever earlier rounds left in the residual. It is pure scratch —
	// everything the Update carries is copied out of it.
	d := tensor.GetVec(n)
	copy(d, params)
	if prev != nil {
		for i, p := range prev {
			d[i] -= p
		}
	}
	if c.ef {
		if c.residual == nil {
			c.residual = make([]float64, n)
		}
		for i, r := range c.residual {
			d[i] += r
		}
	}
	k := int(c.frac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Deterministic selection: magnitude descending, index ascending on
	// ties — a strict total order, so the selected set is unique and
	// both endpoints and repeated runs agree exactly. Quickselect keeps
	// this O(n) expected instead of sorting all n coordinates.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	selectTopK(d, order, k)
	sel := order[:k]
	sort.Ints(sel)

	u := &Update{
		Codec:   "topk",
		N:       n,
		Indices: make([]int32, k),
		Values:  make([]float64, k),
	}
	if c.ef {
		copy(c.residual, d)
	}
	for j, i := range sel {
		u.Indices[j] = int32(i)
		u.Values[j] = d[i]
		if c.ef {
			c.residual[i] = 0
		}
	}
	tensor.PutVec(d)
	return u
}

// selectTopK partially partitions order so that its first k entries are
// the k greatest coordinates under the strict total order "larger
// |d[i]| first, lower index on ties". Expected O(n) via quickselect
// with median-of-three pivots; the comparator is a total order, so the
// resulting k-set is unique regardless of pivot choices.
func selectTopK(d []float64, order []int, k int) {
	greater := func(a, b int) bool {
		da, db := math.Abs(d[a]), math.Abs(d[b])
		if da != db {
			return da > db
		}
		return a < b
	}
	lo, hi := 0, len(order)-1
	for lo < hi {
		// Median-of-three pivot, moved to the end for Lomuto partition.
		mid := lo + (hi-lo)/2
		if greater(order[mid], order[lo]) {
			order[mid], order[lo] = order[lo], order[mid]
		}
		if greater(order[hi], order[lo]) {
			order[hi], order[lo] = order[lo], order[hi]
		}
		if greater(order[mid], order[hi]) {
			order[mid], order[hi] = order[hi], order[mid]
		}
		pivot := order[hi]
		p := lo
		for i := lo; i < hi; i++ {
			if greater(order[i], pivot) {
				order[i], order[p] = order[p], order[i]
				p++
			}
		}
		order[p], order[hi] = order[hi], order[p]
		switch {
		case p == k-1:
			return
		case p > k-1:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

func (c *topkCodec) Decode(u *Update, prev []float64) ([]float64, error) {
	if err := u.check("topk", prev); err != nil {
		return nil, err
	}
	if len(u.Indices) != len(u.Values) {
		return nil, fmt.Errorf("comm: topk has %d indices but %d values", len(u.Indices), len(u.Values))
	}
	out := tensor.GetVec(u.N)
	if prev != nil {
		copy(out, prev)
	} else {
		tensor.Zero(out)
	}
	for j, i := range u.Indices {
		if i < 0 || int(i) >= u.N {
			return nil, fmt.Errorf("comm: topk index %d outside [0,%d)", i, u.N)
		}
		out[i] += u.Values[j]
	}
	return out, nil
}
