package comm

import (
	"fmt"

	"fedprox/internal/frand"
)

// This file makes codec link state checkpointable. A Codec instance owns
// exactly two kinds of mutable state: a stochastic-rounding stream
// position (qsgd family) and an error-feedback residual (topk uplinks).
// CodecState captures both; LinkState.Snapshot/Restore and
// EvalLink.Snapshot/Restore lift the capture to a whole endpoint —
// including the per-device broadcast shadows — so a run persisted
// mid-stream resumes with bit-identical encodings.

// CodecState is the serializable state of one codec instance.
type CodecState struct {
	// RNG is the rounding stream position (HasRNG marks it meaningful).
	RNG    uint64
	HasRNG bool
	// Residual is the error-feedback residual (nil when absent).
	Residual []float64
}

// SnapshotCodec captures a codec instance's mutable state. Stateless
// codecs (raw, delta) snapshot to the zero CodecState.
func SnapshotCodec(c Codec) (CodecState, error) {
	switch v := c.(type) {
	case rawCodec:
		return CodecState{}, nil
	case *deltaCodec:
		return SnapshotCodec(v.inner)
	case *qsgdCodec:
		return CodecState{RNG: v.rng.State(), HasRNG: true}, nil
	case *topkCodec:
		var res []float64
		if v.residual != nil {
			res = append([]float64(nil), v.residual...)
		}
		return CodecState{Residual: res}, nil
	default:
		return CodecState{}, fmt.Errorf("comm: cannot snapshot codec %q", c.Name())
	}
}

// RestoreCodec replays a snapshot into a freshly constructed instance of
// the same codec.
func RestoreCodec(c Codec, st CodecState) error {
	switch v := c.(type) {
	case rawCodec:
		return nil
	case *deltaCodec:
		return RestoreCodec(v.inner, st)
	case *qsgdCodec:
		if !st.HasRNG {
			return fmt.Errorf("comm: qsgd snapshot carries no rounding stream")
		}
		v.rng = frand.New(st.RNG)
		return nil
	case *topkCodec:
		if st.Residual == nil {
			v.residual = nil
		} else {
			v.residual = append([]float64(nil), st.Residual...)
		}
		return nil
	default:
		return fmt.Errorf("comm: cannot restore codec %q", c.Name())
	}
}

// DeviceLinkState is one device's endpoint state in a LinkSnapshot.
type DeviceLinkState struct {
	Down, Up CodecState
	Prev     []float64
	Prev32   []float32
}

// LinkSnapshot is the serializable state of a LinkState endpoint.
type LinkSnapshot struct {
	Devices map[int]DeviceLinkState
}

// Snapshot captures the state of every contacted device's link.
func (l *LinkState) Snapshot() (LinkSnapshot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := LinkSnapshot{Devices: make(map[int]DeviceLinkState, len(l.down))}
	for dev, down := range l.down {
		ds, err := SnapshotCodec(down)
		if err != nil {
			return LinkSnapshot{}, err
		}
		us, err := SnapshotCodec(l.up[dev])
		if err != nil {
			return LinkSnapshot{}, err
		}
		var prev []float64
		if p := l.prev[dev]; p != nil {
			prev = append([]float64(nil), p...)
		}
		var prev32 []float32
		if p := l.prev32[dev]; p != nil {
			prev32 = append([]float32(nil), p...)
		}
		snap.Devices[dev] = DeviceLinkState{Down: ds, Up: us, Prev: prev, Prev32: prev32}
	}
	return snap, nil
}

// Restore rebuilds per-device codec instances from a snapshot taken by
// an endpoint with the same specs, discarding any current state.
func (l *LinkState) Restore(snap LinkSnapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = make(map[int]Codec, len(snap.Devices))
	l.up = make(map[int]Codec, len(snap.Devices))
	l.prev = make(map[int][]float64, len(snap.Devices))
	l.prev32 = make(map[int][]float32, len(snap.Devices))
	for dev, st := range snap.Devices {
		down, err := l.downSpec.ForDevice(Downlink, dev)
		if err != nil {
			return err
		}
		up, err := l.upSpec.ForDevice(Uplink, dev)
		if err != nil {
			return err
		}
		if err := RestoreCodec(down, st.Down); err != nil {
			return err
		}
		if err := RestoreCodec(up, st.Up); err != nil {
			return err
		}
		l.down[dev], l.up[dev] = down, up
		if l.trackPrev && st.Prev != nil {
			l.prev[dev] = append([]float64(nil), st.Prev...)
		}
		if l.trackPrev && st.Prev32 != nil {
			l.prev32[dev] = append([]float32(nil), st.Prev32...)
		}
	}
	return nil
}

// Reset discards one device's link state entirely: the next Link call
// creates fresh codec instances with an empty chain, mirroring a peer
// endpoint that reconnected from scratch.
func (l *LinkState) Reset(device int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.down, device)
	delete(l.up, device)
	delete(l.prev, device)
	delete(l.prev32, device)
}

// EvalLinkSnapshot is the serializable state of a shared eval link.
type EvalLinkSnapshot struct {
	Codec CodecState
	Prev  []float64
}

// Snapshot captures the eval link's codec state and chain base.
func (l *EvalLink) Snapshot() (EvalLinkSnapshot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cs, err := SnapshotCodec(l.codec)
	if err != nil {
		return EvalLinkSnapshot{}, err
	}
	var prev []float64
	if l.prev != nil {
		prev = append([]float64(nil), l.prev...)
	}
	return EvalLinkSnapshot{Codec: cs, Prev: prev}, nil
}

// Restore replays a snapshot into this eval link.
func (l *EvalLink) Restore(snap EvalLinkSnapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := RestoreCodec(l.codec, snap.Codec); err != nil {
		return err
	}
	l.prev = nil
	if l.trackPrev && snap.Prev != nil {
		l.prev = append([]float64(nil), snap.Prev...)
	}
	return nil
}

// PrevView returns the link's current chain base (the last decoded
// broadcast), or nil on a chain-free codec or before the first
// broadcast.
func (l *EvalLink) PrevView() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.prev == nil {
		return nil
	}
	return append([]float64(nil), l.prev...)
}

// SeedPrev installs a chain base received from the peer endpoint — how a
// re-admitted worker joins an eval chain already in progress.
func (l *EvalLink) SeedPrev(prev []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.trackPrev && prev != nil {
		l.prev = append([]float64(nil), prev...)
	}
}
