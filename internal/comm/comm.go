// Package comm implements pluggable codecs for federated model-update
// transfers, with byte accounting as a first-class output.
//
// FedProx targets networks where communication, not computation, is the
// dominant cost. This package makes that cost explicit and reducible: a
// Codec compresses one directed link's parameter transfers (a downlink
// broadcast wᵗ or an uplink local solution w_k), and every encoded Update
// reports the bytes an efficient serialization of it occupies, so the
// simulator (internal/core) and the distributed runtime (internal/fednet)
// can record uplink/downlink traffic per round and trade accuracy against
// bytes on the wire.
//
// Registered codecs:
//
//   - raw: float64 verbatim — today's behaviour, the accounting baseline
//     and the only codec that reconstructs bit for bit.
//   - delta: w − w_prev as dense float64. Exact up to one float64
//     rounding step per coordinate and the same size as raw on its own;
//     it exists to compose (the difference between consecutive
//     broadcasts is much smaller in magnitude than the model, so lossy
//     codecs applied to it lose less).
//   - qsgd: stochastic uniform quantization à la QSGD (Alistarh et al.)
//     at a configurable bit width. Rounding randomness comes from a
//     frand stream derived from (seed, direction, device), so runs are
//     bit-reproducible and the simulator and the distributed runtime
//     draw identical streams.
//   - delta+qsgd: quantize the difference instead of the model.
//   - topk: keep only the k = ⌈TopK·n⌉ largest-magnitude coordinates of
//     the transition w − w_prev, carrying the untransmitted remainder in
//     a per-link error-feedback residual (Stich et al.) so every
//     coordinate is eventually delivered. Top-k only makes sense on
//     differences, so the delta transform is built in.
//
// Codec instances are per directed link: Spec.ForDevice(direction,
// device) returns a fresh instance whose state (stochastic-rounding
// stream, error-feedback residual) belongs to that link alone. Encode
// mutates that state; Decode is stateless, so the two endpoints of a
// link may hold distinct instances. Both endpoints must agree on the
// previous delivered value (`prev`) — callers track the last decoded
// transfer per link and feed it back on both sides.
package comm

import (
	"fmt"
	"slices"
	"strings"

	"fedprox/internal/frand"
	"fedprox/internal/tensor"
)

// Default knob values filled in by Spec.WithDefaults.
const (
	// DefaultBits is the qsgd bit width (sign included) when Spec.Bits
	// is zero.
	DefaultBits = 8
	// DefaultTopK is the kept-coordinate fraction when Spec.TopK is zero.
	DefaultTopK = 0.1
)

// Spec selects and parameterizes a codec. The zero value means "no codec
// configured" (Enabled reports false); a Spec with only Name set uses the
// package defaults for every knob.
type Spec struct {
	// Name is one of Names(): "raw", "delta", "qsgd", "delta+qsgd",
	// "topk". Empty disables compression entirely.
	Name string
	// Bits is the qsgd quantization width in bits per coordinate,
	// including the sign, in [2, 16]. Zero selects DefaultBits.
	Bits int
	// TopK is the fraction of coordinates the topk codec keeps, in
	// (0, 1]. Zero selects DefaultTopK.
	TopK float64
	// Seed drives the stochastic-rounding streams. Callers that want
	// codec randomness tied to the run seed leave this zero and let the
	// run fill it in (core.Config.CommSpec does).
	Seed uint64
	// Precision is the arithmetic width of the link's payloads. The zero
	// value (tensor.F64) keeps the historical dense-float64 wire. With
	// tensor.F32 the dense codecs ship float32 (half the bytes) and the
	// qsgd family quantizes straight from float32 input with a float32
	// scale — the codecs then satisfy Codec32 and endpoints use the
	// Encode32/Decode32 fast path. topk does not support f32 (its
	// error-feedback residual is f64 state); Validate rejects the combo.
	Precision tensor.Precision
}

// Enabled reports whether the spec names a codec.
func (s Spec) Enabled() bool { return s.Name != "" }

// WithDefaults returns s with zero-valued knobs replaced by the package
// defaults.
func (s Spec) WithDefaults() Spec {
	if s.Bits == 0 {
		s.Bits = DefaultBits
	}
	if s.TopK == 0 {
		s.TopK = DefaultTopK
	}
	return s
}

// Validate reports the first configuration error, or nil. The zero
// (disabled) spec is valid.
func (s Spec) Validate() error {
	if !s.Enabled() {
		return nil
	}
	if !slices.Contains(Names(), s.Name) {
		return fmt.Errorf("comm: unknown codec %q (known: %s)", s.Name, strings.Join(Names(), ", "))
	}
	s = s.WithDefaults()
	if s.Bits < 2 || s.Bits > 16 {
		return fmt.Errorf("comm: qsgd bit width must be in [2,16], got %d", s.Bits)
	}
	if s.TopK <= 0 || s.TopK > 1 {
		return fmt.Errorf("comm: topk fraction must be in (0,1], got %g", s.TopK)
	}
	if err := s.Precision.Validate(); err != nil {
		return err
	}
	if s.Precision == tensor.F32 && s.Name == "topk" {
		return fmt.Errorf("comm: topk does not support f32 payloads")
	}
	return nil
}

// Lossless reports whether the named codec reconstructs parameters
// bit for bit.
func (s Spec) Lossless() bool { return s.Name == "raw" }

// UsesPrev reports whether the codec interprets payloads relative to
// the link's previously delivered value (the `prev` argument). raw and
// qsgd encode the parameters themselves; the delta family and topk
// encode transitions.
func (s Spec) UsesPrev() bool {
	switch s.Name {
	case "delta", "delta+qsgd", "topk":
		return true
	default:
		return false
	}
}

// WireSize returns the exact WireBytes of any n-parameter transfer this
// codec encodes. Every registered codec's encoded size is a pure
// function of the parameter count — qsgd packs a fixed bit width, topk
// keeps a fixed coordinate fraction, the dense codecs ship 8·n — which
// is what lets the virtual-time driver charge a reply's uplink leg and
// schedule its arrival before the solve has produced the payload
// (core/vsim.go). A test asserts WireSize against realized encodes for
// every codec.
func (s Spec) WireSize(n int) int64 {
	d := s.WithDefaults()
	// A float32 link halves the dense word and the quantizer's scale.
	word, scale := int64(8), int64(8)
	if d.Precision == tensor.F32 {
		word, scale = 4, 4
	}
	switch d.Name {
	case "qsgd", "delta+qsgd":
		return scale + int64(packedLen(n, d.Bits))
	case "topk":
		k := int(d.TopK*float64(n) + 0.5)
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		return 4 + 12*int64(k)
	default: // raw, delta: dense words
		return word * int64(n)
	}
}

// String renders the spec with its effective knobs, e.g. "qsgd(b=8)".
func (s Spec) String() string {
	if !s.Enabled() {
		return "uncompressed"
	}
	d := s.WithDefaults()
	out := s.Name
	switch s.Name {
	case "qsgd", "delta+qsgd":
		out = fmt.Sprintf("%s(b=%d)", s.Name, d.Bits)
	case "topk":
		out = fmt.Sprintf("topk(k=%g%%)", 100*d.TopK)
	}
	if d.Precision == tensor.F32 {
		out += "/f32"
	}
	return out
}

// Names returns every registered codec name, in documentation order.
func Names() []string {
	return []string{"raw", "delta", "qsgd", "delta+qsgd", "topk"}
}

// Link directions. They name frand streams (so the directions of a
// device's link are decorrelated) and select the error-feedback policy:
// Downlink and Eval links chain their base — both endpoints track the
// last decoded broadcast, so any unsent mass automatically reappears in
// the next transition and an explicit residual would double-count it.
// Uplink has a one-shot base that is known exactly on both sides each
// round, so unsent mass is gone unless a residual carries it forward.
const (
	Downlink = "downlink"
	Uplink   = "uplink"
	// Eval is the shared evaluation broadcast: one chained link per
	// deployment (device index 0 by convention) that ships the global
	// model to every evaluator, separate from the per-device training
	// downlinks so evaluation cadence never perturbs training streams.
	Eval = "eval"
)

// ForDevice returns a fresh codec instance for one directed link
// (direction is conventionally Downlink or Uplink; device is the global
// device index). The instance owns per-link state — a
// stochastic-rounding stream derived from (Seed, direction, device) and,
// for topk on non-downlink links, the error-feedback residual — and must
// not be shared across links or used concurrently.
func (s Spec) ForDevice(direction string, device int) (Codec, error) {
	if !s.Enabled() {
		return nil, fmt.Errorf("comm: ForDevice on a disabled spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.WithDefaults()
	rng := frand.New(s.Seed).Split("comm/" + direction).SplitIndex(device)
	switch s.Name {
	case "raw":
		return rawCodec{}, nil
	case "delta":
		return &deltaCodec{name: "delta", inner: rawCodec{}}, nil
	case "qsgd":
		return &qsgdCodec{name: "qsgd", bits: s.Bits, rng: rng}, nil
	case "delta+qsgd":
		return &deltaCodec{name: "delta+qsgd", inner: &qsgdCodec{name: "qsgd", bits: s.Bits, rng: rng}}, nil
	case "topk":
		return &topkCodec{frac: s.TopK, ef: direction == Uplink}, nil
	default:
		return nil, fmt.Errorf("comm: unknown codec %q", s.Name)
	}
}

// Codec compresses the parameter transfers of one directed link.
type Codec interface {
	// Name returns the registered codec name.
	Name() string
	// Encode compresses the transition from prev (the last value
	// delivered on this link; nil means none yet) to params. It may
	// advance per-link state (rounding stream, residual).
	Encode(params, prev []float64) *Update
	// Decode reconstructs the transferred parameters. prev must be the
	// same value the encoder saw — link endpoints keep it in lockstep by
	// both storing every decoded transfer. Decode is stateless. The
	// returned slice is exclusively the caller's (it may come from the
	// tensor pool); callers that do not retain it should hand it back
	// with tensor.PutVec.
	Decode(u *Update, prev []float64) ([]float64, error)
}

// Update is one encoded parameter transfer, the unit that crosses the
// wire. Exactly one payload family is populated: Dense (raw, delta),
// Scale+Packed (qsgd family), or Indices+Values (topk).
type Update struct {
	// Codec names the encoding, for endpoint sanity checks.
	Codec string
	// N is the parameter count of the decoded vector.
	N int

	// Dense is the float64 payload of the raw and delta codecs.
	Dense []float64

	// Dense32 is the float32 payload of the raw and delta codecs on an
	// f32 link — half the dense bytes of Dense.
	Dense32 []float32

	// Bits, Scale, Packed carry a quantized payload: each coordinate is
	// a level of Bits bits in Packed (bit-packed, or radix-packed at the
	// narrow widths — see packedLen), scaled by Scale. F32 marks a scale
	// quantized to float32 by an f32 encoder, which ships in 4 bytes.
	Bits   int
	Scale  float64
	F32    bool
	Packed []byte

	// Indices, Values carry a sparse payload: Values[j] is the
	// transition component at coordinate Indices[j].
	Indices []int32
	Values  []float64
}

// WireBytes returns the bytes an efficient serialization of the update
// occupies: 8 per float64 (4 per float32), 4 per index, plus the
// quantizer's scale at its stored width. The raw codec costs exactly
// 8·N — the accounting the simulator used before codecs existed — so
// "raw" is the baseline compression ratios are measured against.
func (u *Update) WireBytes() int64 {
	switch {
	case u.Packed != nil:
		scale := int64(8)
		if u.F32 {
			scale = 4
		}
		return scale + int64(len(u.Packed))
	case u.Indices != nil:
		return 4 + 12*int64(len(u.Indices))
	case u.Dense32 != nil:
		return 4 * int64(u.N)
	default:
		return 8 * int64(u.N)
	}
}

// check validates the envelope fields every decoder shares.
func (u *Update) check(codec string, prev []float64) error {
	if u.Codec != codec {
		return fmt.Errorf("comm: update encoded with %q, decoding with %q", u.Codec, codec)
	}
	if prev != nil && len(prev) != u.N {
		return fmt.Errorf("comm: update has %d params, link state has %d", u.N, len(prev))
	}
	return nil
}

// Codec32 is the float32 fast path a Codec may implement: encode
// straight from (and decode straight to) float32 vectors, with no
// widening copy in between. The raw, delta, and qsgd families implement
// it; an f32 Spec only ever constructs codecs that do (Validate rejects
// the rest), which is what As32 relies on.
type Codec32 interface {
	Codec
	// Encode32 is Encode from a float32 vector; the resulting Update
	// carries the f32 payload family (Dense32, or Packed with an f32
	// scale).
	Encode32(params, prev []float32) *Update
	// Decode32 is Decode into a pooled float32 vector (hand back with
	// tensor.PutVec32 when not retained).
	Decode32(u *Update, prev []float32) ([]float32, error)
}

// As32 returns c's float32 fast path, or an error naming the codec when
// it has none.
func As32(c Codec) (Codec32, error) {
	if c32, ok := c.(Codec32); ok {
		return c32, nil
	}
	return nil, fmt.Errorf("comm: codec %q has no f32 path", c.Name())
}

// check32 validates the envelope fields every f32 decoder shares.
func (u *Update) check32(codec string, prev []float32) error {
	if u.Codec != codec {
		return fmt.Errorf("comm: update encoded with %q, decoding with %q", u.Codec, codec)
	}
	if prev != nil && len(prev) != u.N {
		return fmt.Errorf("comm: update has %d params, link state has %d", u.N, len(prev))
	}
	return nil
}

// rawCodec ships float64 parameters verbatim.
type rawCodec struct{}

func (rawCodec) Name() string { return "raw" }

func (rawCodec) Encode(params, _ []float64) *Update {
	return &Update{Codec: "raw", N: len(params), Dense: append([]float64(nil), params...)}
}

func (rawCodec) Decode(u *Update, prev []float64) ([]float64, error) {
	if err := u.check("raw", prev); err != nil {
		return nil, err
	}
	if len(u.Dense) != u.N {
		return nil, fmt.Errorf("comm: raw payload has %d values, header says %d", len(u.Dense), u.N)
	}
	out := tensor.GetVec(u.N)
	copy(out, u.Dense)
	return out, nil
}

func (rawCodec) Encode32(params, _ []float32) *Update {
	return &Update{Codec: "raw", N: len(params), Dense32: append([]float32(nil), params...)}
}

func (rawCodec) Decode32(u *Update, prev []float32) ([]float32, error) {
	if err := u.check32("raw", prev); err != nil {
		return nil, err
	}
	if len(u.Dense32) != u.N {
		return nil, fmt.Errorf("comm: raw f32 payload has %d values, header says %d", len(u.Dense32), u.N)
	}
	out := tensor.GetVec32(u.N)
	copy(out, u.Dense32)
	return out, nil
}

// deltaCodec applies an inner codec to the difference params − prev
// (prev nil ⇒ zeros), so lossy inner codecs operate on the small
// round-over-round transition instead of the full model.
type deltaCodec struct {
	name  string
	inner Codec
}

func (c *deltaCodec) Name() string { return c.name }

func (c *deltaCodec) Encode(params, prev []float64) *Update {
	// The difference is pure scratch: inner codecs never retain their
	// input (raw copies it, qsgd/topk extract packed payloads), so it
	// goes back to the pool before returning.
	d := tensor.GetVec(len(params))
	copy(d, params)
	if prev != nil {
		for i, p := range prev {
			d[i] -= p
		}
	}
	u := c.inner.Encode(d, nil)
	u.Codec = c.name
	tensor.PutVec(d)
	return u
}

func (c *deltaCodec) Decode(u *Update, prev []float64) ([]float64, error) {
	if err := u.check(c.name, prev); err != nil {
		return nil, err
	}
	iu := *u
	iu.Codec = c.inner.Name()
	d, err := c.inner.Decode(&iu, nil)
	if err != nil {
		return nil, err
	}
	if prev != nil {
		for i, p := range prev {
			d[i] += p
		}
	}
	return d, nil
}

func (c *deltaCodec) Encode32(params, prev []float32) *Update {
	d := tensor.GetVec32(len(params))
	copy(d, params)
	if prev != nil {
		for i, p := range prev {
			d[i] -= p
		}
	}
	u := c.inner.(Codec32).Encode32(d, nil)
	u.Codec = c.name
	tensor.PutVec32(d)
	return u
}

func (c *deltaCodec) Decode32(u *Update, prev []float32) ([]float32, error) {
	if err := u.check32(c.name, prev); err != nil {
		return nil, err
	}
	iu := *u
	iu.Codec = c.inner.Name()
	d, err := c.inner.(Codec32).Decode32(&iu, nil)
	if err != nil {
		return nil, err
	}
	if prev != nil {
		for i, p := range prev {
			d[i] += p
		}
	}
	return d, nil
}
