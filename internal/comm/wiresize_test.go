package comm

import (
	"testing"

	"fedprox/internal/tensor"
)

// TestWireSizeMatchesRealizedEncodes is the contract the virtual-time
// driver leans on: Spec.WireSize(n) equals the realized WireBytes of an
// actual n-parameter encode, for every registered codec at several
// knob settings and sizes (including n=1 and bit widths that don't
// divide a byte). The driver charges a reply's uplink before the solve
// produces the payload, so a drift here silently skews every virtual
// clock.
func TestWireSizeMatchesRealizedEncodes(t *testing.T) {
	specs := []Spec{
		{Name: "raw"},
		{Name: "delta"},
		{Name: "qsgd"},
		{Name: "qsgd", Bits: 2},
		{Name: "qsgd", Bits: 5}, // 5 bits: packing straddles byte boundaries
		{Name: "qsgd", Bits: 16},
		{Name: "delta+qsgd", Bits: 3},
		{Name: "topk"},
		{Name: "topk", TopK: 0.33},
		{Name: "topk", TopK: 1},
	}
	for _, s := range specs {
		for _, n := range []int{1, 2, 7, 64, 257} {
			params := testVec(n, 11)
			prev := testVec(n, 12)
			c := mustCodec(t, s)
			u := c.Encode(params, prev)
			if got, want := u.WireBytes(), s.WireSize(n); got != want {
				t.Errorf("%v n=%d: realized %d bytes, WireSize predicts %d", s, n, got, want)
			}
			// A second encode on the same link (error feedback, changed
			// state) must not change the size either.
			u = c.Encode(prev, params)
			if got, want := u.WireBytes(), s.WireSize(n); got != want {
				t.Errorf("%v n=%d second encode: realized %d, predicted %d", s, n, got, want)
			}
		}
	}
}

// TestWireSize32MatchesRealizedEncodes is the same contract on the
// float32 wire: a spec stamped Precision f32 must predict the realized
// WireBytes of an Encode32 — raw/delta at 4-byte coordinates, qsgd
// with its 4-byte scale — for every codec that has an f32 path.
func TestWireSize32MatchesRealizedEncodes(t *testing.T) {
	specs := []Spec{
		{Name: "raw", Precision: tensor.F32},
		{Name: "delta", Precision: tensor.F32},
		{Name: "qsgd", Precision: tensor.F32},
		{Name: "qsgd", Bits: 2, Precision: tensor.F32},
		{Name: "qsgd", Bits: 5, Precision: tensor.F32},
		{Name: "delta+qsgd", Bits: 3, Precision: tensor.F32},
		{Name: "delta+qsgd", Bits: 8, Precision: tensor.F32},
	}
	for _, s := range specs {
		for _, n := range []int{1, 2, 7, 64, 257} {
			params := testVec32(n, 11)
			prev := testVec32(n, 12)
			c := mustCodec32(t, s)
			u := c.Encode32(params, prev)
			if got, want := u.WireBytes(), s.WireSize(n); got != want {
				t.Errorf("%v n=%d: realized %d bytes, WireSize predicts %d", s, n, got, want)
			}
			u = c.Encode32(prev, params)
			if got, want := u.WireBytes(), s.WireSize(n); got != want {
				t.Errorf("%v n=%d second encode: realized %d, predicted %d", s, n, got, want)
			}
		}
	}
}
