package comm

import (
	"fmt"
	"math"

	"fedprox/internal/frand"
	"fedprox/internal/tensor"
)

// qsgdCodec implements QSGD-style stochastic uniform quantization: each
// coordinate v is scaled by the vector's max-magnitude, mapped to one of
// 2^(bits−1)−1 levels per sign, and rounded stochastically so the
// quantizer is unbiased (E[decode] = v). Levels are packed at `bits` bits
// per coordinate — except at the narrow widths (see packedLen), where
// plain bit-packing wastes a fraction of every field and levels are
// radix-packed instead.
type qsgdCodec struct {
	name string
	bits int
	rng  *frand.Source
}

func (c *qsgdCodec) Name() string { return c.name }

// levels returns s, the number of positive quantization levels at the
// given width: values are integers in [−s, s], stored offset-binary.
func levels(bits int) int { return 1<<(bits-1) - 1 }

// Radix packing. A width-b level takes one of 2s+1 values (s =
// levels(b)), so bit-packing at b bits wastes log2(2^b/(2s+1)) bits per
// coordinate — 41.5% of the payload at b=2 (3 values in 4 codes) and
// 6.1% at b=3 (7 in 8). At those widths levels are treated as base-(2s+1)
// digits instead: radixGroup(b) digits accumulate into one uint64 (the
// largest group whose value range fits), shipped as 8 little-endian
// bytes, with a final partial group shipped in exactly the bytes its
// value range needs. At b ≥ 4 the bit-packing waste is ≤ 0.9% and the
// shift/mask path is kept.
const maxRadixBits = 3

// radixGroup returns the digits-per-uint64 group size for a radix-packed
// width: the largest G with (2s+1)^G ≤ 2^64.
func radixGroup(bits int) int {
	switch bits {
	case 2:
		return 40 // 3^40 < 2^64
	case 3:
		return 22 // 7^22 < 2^64
	}
	panic("comm: radixGroup on a bit-packed width")
}

// radixTailBytes returns the bytes needed for a trailing group of k
// base-L digits: the smallest m with L^k ≤ 2^(8m).
func radixTailBytes(radix uint64, k int) int {
	if k == 0 {
		return 0
	}
	max := radix - 1 // largest value of a k-digit group
	for i := 1; i < k; i++ {
		max = max*radix + (radix - 1)
	}
	b := 0
	for ; max > 0; max >>= 8 {
		b++
	}
	return b
}

// packedLen returns the payload bytes of n levels at the given width
// under the packing Encode uses — the single sizing truth shared by
// Encode, Decode, Update.WireBytes (via len(Packed)), and Spec.WireSize.
func packedLen(n, bits int) int {
	if bits > maxRadixBits {
		return (n*bits + 7) / 8
	}
	g := radixGroup(bits)
	radix := uint64(2*levels(bits) + 1)
	return 8*(n/g) + radixTailBytes(radix, n%g)
}

// levelWriter streams offset-binary levels into a packed payload,
// choosing the radix or bit-packing layout by width.
type levelWriter struct {
	buf   []byte
	bits  int
	radix uint64 // 0 selects the bit-packing path
	group int
	acc   uint64
	mult  uint64
	cnt   int
	pos   int // next byte (radix) / next bit (bit-packing)
}

func newLevelWriter(buf []byte, bits int) levelWriter {
	w := levelWriter{buf: buf, bits: bits, mult: 1}
	if bits <= maxRadixBits {
		w.radix = uint64(2*levels(bits) + 1)
		w.group = radixGroup(bits)
	}
	return w
}

func (w *levelWriter) put(q uint32) {
	if w.bits == 8 {
		// Byte-aligned width: a level is exactly one payload byte, no
		// shifting or masking. This is the default qsgd width, so the
		// dispatch hot path takes this branch.
		w.buf[w.pos>>3] = byte(q)
		w.pos += 8
		return
	}
	if w.radix == 0 {
		putBits(w.buf, w.pos, w.bits, q)
		w.pos += w.bits
		return
	}
	w.acc += uint64(q) * w.mult
	w.mult *= w.radix
	w.cnt++
	if w.cnt == w.group {
		w.emit(8)
	}
}

// finish flushes a trailing partial radix group into exactly the bytes
// its value range needs.
func (w *levelWriter) finish() {
	if w.radix != 0 && w.cnt > 0 {
		w.emit(radixTailBytes(w.radix, w.cnt))
	}
}

func (w *levelWriter) emit(nbytes int) {
	for i := 0; i < nbytes; i++ {
		w.buf[w.pos+i] = byte(w.acc >> (8 * i))
	}
	w.pos += nbytes
	w.acc, w.mult, w.cnt = 0, 1, 0
}

// levelReader is the decoding mirror of levelWriter. remaining counts
// coordinates left, so the reader knows when it is consuming the final
// (shorter) radix group.
type levelReader struct {
	buf       []byte
	bits      int
	radix     uint64
	group     int
	acc       uint64
	cnt       int
	pos       int
	remaining int
}

func newLevelReader(buf []byte, bits, n int) levelReader {
	r := levelReader{buf: buf, bits: bits, remaining: n}
	if bits <= maxRadixBits {
		r.radix = uint64(2*levels(bits) + 1)
		r.group = radixGroup(bits)
	}
	return r
}

func (r *levelReader) next() uint32 {
	if r.bits == 8 {
		q := uint32(r.buf[r.pos>>3])
		r.pos += 8
		return q
	}
	if r.radix == 0 {
		q := getBits(r.buf, r.pos, r.bits)
		r.pos += r.bits
		return q
	}
	if r.cnt == 0 {
		nbytes := 8
		r.cnt = r.group
		if r.remaining < r.group {
			r.cnt = r.remaining
			nbytes = radixTailBytes(r.radix, r.cnt)
		}
		r.acc = 0
		for i := 0; i < nbytes; i++ {
			r.acc |= uint64(r.buf[r.pos+i]) << (8 * i)
		}
		r.pos += nbytes
	}
	q := uint32(r.acc % r.radix)
	r.acc /= r.radix
	r.cnt--
	r.remaining--
	return q
}

func (c *qsgdCodec) Encode(v, _ []float64) *Update {
	n := len(v)
	s := levels(c.bits)
	scale := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > scale {
			scale = a
		}
	}
	u := &Update{
		Codec:  c.name,
		N:      n,
		Bits:   c.bits,
		Scale:  scale,
		Packed: make([]byte, packedLen(n, c.bits)),
	}
	if scale == 0 {
		// All-zero vector: Decode short-circuits on Scale == 0, so the
		// level payload is never read — leave Packed zeroed.
		return u
	}
	w := newLevelWriter(u.Packed, c.bits)
	for _, x := range v {
		t := x / scale * float64(s) // in [−s, s]
		f := math.Floor(t)
		q := int(f)
		if c.rng.Float64() < t-f {
			q++
		}
		if q < -s {
			q = -s
		}
		if q > s {
			q = s
		}
		w.put(uint32(q + s))
	}
	w.finish()
	return u
}

func (c *qsgdCodec) checkPacked(u *Update) error {
	if u.Bits != c.bits {
		return fmt.Errorf("comm: qsgd update at %d bits, link configured for %d", u.Bits, c.bits)
	}
	if want := packedLen(u.N, u.Bits); len(u.Packed) != want {
		return fmt.Errorf("comm: qsgd payload has %d bytes, want %d", len(u.Packed), want)
	}
	return nil
}

func (c *qsgdCodec) Decode(u *Update, prev []float64) ([]float64, error) {
	if err := u.check(c.name, prev); err != nil {
		return nil, err
	}
	if err := c.checkPacked(u); err != nil {
		return nil, err
	}
	s := levels(u.Bits)
	out := tensor.GetVec(u.N)
	if u.Scale == 0 {
		tensor.Zero(out)
		return out, nil
	}
	unit := u.Scale / float64(s)
	r := newLevelReader(u.Packed, u.Bits, u.N)
	for i := range out {
		q := int(r.next()) - s
		out[i] = float64(q) * unit
	}
	return out, nil
}

// Encode32 quantizes straight from a float32 vector: same level stream
// draws as Encode (one rng draw per coordinate), but the max-magnitude
// scale is itself a float32 — it ships in 4 bytes — and no widening copy
// of the input is ever made.
func (c *qsgdCodec) Encode32(v, _ []float32) *Update {
	n := len(v)
	s := levels(c.bits)
	var scale float32
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a > scale {
			scale = a
		}
	}
	u := &Update{
		Codec:  c.name,
		N:      n,
		Bits:   c.bits,
		Scale:  float64(scale),
		F32:    true,
		Packed: make([]byte, packedLen(n, c.bits)),
	}
	if scale == 0 {
		return u
	}
	w := newLevelWriter(u.Packed, c.bits)
	invUnit := float32(s) / scale
	for _, x := range v {
		t := float64(x * invUnit) // in [−s, s]
		f := math.Floor(t)
		q := int(f)
		if c.rng.Float64() < t-f {
			q++
		}
		if q < -s {
			q = -s
		}
		if q > s {
			q = s
		}
		w.put(uint32(q + s))
	}
	w.finish()
	return u
}

// Decode32 reconstructs the quantized vector in float32. The level
// payload is width-exact either way, so it accepts updates from both
// Encode32 and Encode (the scale merely narrows on the way in).
func (c *qsgdCodec) Decode32(u *Update, prev []float32) ([]float32, error) {
	if err := u.check32(c.name, prev); err != nil {
		return nil, err
	}
	if err := c.checkPacked(u); err != nil {
		return nil, err
	}
	s := levels(u.Bits)
	out := tensor.GetVec32(u.N)
	if u.Scale == 0 {
		tensor.Zero32(out)
		return out, nil
	}
	unit := float32(u.Scale) / float32(s)
	r := newLevelReader(u.Packed, u.Bits, u.N)
	for i := range out {
		q := int(r.next()) - s
		out[i] = float32(q) * unit
	}
	return out, nil
}

// putBits writes the low `width` bits of v at bit offset off. width ≤ 16,
// so a value spans at most three bytes.
func putBits(b []byte, off, width int, v uint32) {
	i := off >> 3
	sh := uint(off & 7)
	x := v << sh
	b[i] |= byte(x)
	if int(sh)+width > 8 {
		b[i+1] |= byte(x >> 8)
	}
	if int(sh)+width > 16 {
		b[i+2] |= byte(x >> 16)
	}
}

// getBits reads `width` bits at bit offset off.
func getBits(b []byte, off, width int) uint32 {
	i := off >> 3
	sh := uint(off & 7)
	x := uint32(b[i])
	if int(sh)+width > 8 {
		x |= uint32(b[i+1]) << 8
	}
	if int(sh)+width > 16 {
		x |= uint32(b[i+2]) << 16
	}
	return (x >> sh) & (1<<width - 1)
}
