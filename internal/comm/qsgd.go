package comm

import (
	"fmt"
	"math"

	"fedprox/internal/frand"
	"fedprox/internal/tensor"
)

// qsgdCodec implements QSGD-style stochastic uniform quantization: each
// coordinate v is scaled by the vector's max-magnitude, mapped to one of
// 2^(bits−1)−1 levels per sign, and rounded stochastically so the
// quantizer is unbiased (E[decode] = v). Levels are packed at `bits` bits
// per coordinate.
type qsgdCodec struct {
	name string
	bits int
	rng  *frand.Source
}

func (c *qsgdCodec) Name() string { return c.name }

// levels returns s, the number of positive quantization levels at the
// given width: values are integers in [−s, s], stored offset-binary.
func levels(bits int) int { return 1<<(bits-1) - 1 }

func (c *qsgdCodec) Encode(v, _ []float64) *Update {
	n := len(v)
	s := levels(c.bits)
	scale := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > scale {
			scale = a
		}
	}
	u := &Update{
		Codec:  c.name,
		N:      n,
		Bits:   c.bits,
		Scale:  scale,
		Packed: make([]byte, (n*c.bits+7)/8),
	}
	if scale == 0 {
		// All-zero vector: Decode short-circuits on Scale == 0, so the
		// level payload is never read — leave Packed zeroed.
		return u
	}
	for i, x := range v {
		t := x / scale * float64(s) // in [−s, s]
		f := math.Floor(t)
		q := int(f)
		if c.rng.Float64() < t-f {
			q++
		}
		if q < -s {
			q = -s
		}
		if q > s {
			q = s
		}
		putBits(u.Packed, i*c.bits, c.bits, uint32(q+s))
	}
	return u
}

func (c *qsgdCodec) Decode(u *Update, prev []float64) ([]float64, error) {
	if err := u.check(c.name, prev); err != nil {
		return nil, err
	}
	if u.Bits != c.bits {
		return nil, fmt.Errorf("comm: qsgd update at %d bits, link configured for %d", u.Bits, c.bits)
	}
	if want := (u.N*u.Bits + 7) / 8; len(u.Packed) != want {
		return nil, fmt.Errorf("comm: qsgd payload has %d bytes, want %d", len(u.Packed), want)
	}
	s := levels(u.Bits)
	out := tensor.GetVec(u.N)
	if u.Scale == 0 {
		tensor.Zero(out)
		return out, nil
	}
	unit := u.Scale / float64(s)
	for i := range out {
		q := int(getBits(u.Packed, i*u.Bits, u.Bits)) - s
		out[i] = float64(q) * unit
	}
	return out, nil
}

// putBits writes the low `width` bits of v at bit offset off. width ≤ 16,
// so a value spans at most three bytes.
func putBits(b []byte, off, width int, v uint32) {
	i := off >> 3
	sh := uint(off & 7)
	x := v << sh
	b[i] |= byte(x)
	if int(sh)+width > 8 {
		b[i+1] |= byte(x >> 8)
	}
	if int(sh)+width > 16 {
		b[i+2] |= byte(x >> 16)
	}
}

// getBits reads `width` bits at bit offset off.
func getBits(b []byte, off, width int) uint32 {
	i := off >> 3
	sh := uint(off & 7)
	x := uint32(b[i])
	if int(sh)+width > 8 {
		x |= uint32(b[i+1]) << 8
	}
	if int(sh)+width > 16 {
		x |= uint32(b[i+2]) << 16
	}
	return (x >> sh) & (1<<width - 1)
}
