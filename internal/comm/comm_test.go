package comm

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"fedprox/internal/frand"
)

func testVec(n int, seed uint64) []float64 {
	return frand.New(seed).NormVec(make([]float64, n), 0, 1)
}

func mustCodec(t *testing.T, s Spec) Codec {
	t.Helper()
	c, err := s.ForDevice("test", 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{}, // disabled
		{Name: "raw"},
		{Name: "delta"},
		{Name: "qsgd", Bits: 2},
		{Name: "qsgd", Bits: 16},
		{Name: "delta+qsgd"},
		{Name: "topk", TopK: 1},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", s, err)
		}
	}
	bad := []Spec{
		{Name: "gzip"},
		{Name: "qsgd", Bits: 1},
		{Name: "qsgd", Bits: 17},
		{Name: "topk", TopK: -0.1},
		{Name: "topk", TopK: 1.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v: invalid spec accepted", s)
		}
	}
	if _, err := (Spec{}).ForDevice("test", 0); err == nil {
		t.Error("ForDevice on a disabled spec accepted")
	}
}

func TestRawIsExact(t *testing.T) {
	params := testVec(257, 1)
	prev := testVec(257, 2)
	c := mustCodec(t, Spec{Name: "raw"})
	for _, p := range [][]float64{nil, prev} {
		u := c.Encode(params, p)
		got, err := c.Decode(u, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, params) {
			t.Fatal("raw decode is not bit-for-bit")
		}
		if u.WireBytes() != 8*257 {
			t.Fatalf("WireBytes = %d, want %d", u.WireBytes(), 8*257)
		}
	}
}

func TestDeltaIsExactUpToRounding(t *testing.T) {
	params := testVec(257, 1)
	prev := testVec(257, 2)
	c := mustCodec(t, Spec{Name: "delta"})
	// Without a base the payload is params verbatim: bit-for-bit.
	got, err := c.Decode(c.Encode(params, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, params) {
		t.Fatal("delta without a base is not bit-for-bit")
	}
	// With a base, (params − prev) + prev re-rounds once per coordinate.
	got, err = c.Decode(c.Encode(params, prev), prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if d := math.Abs(got[i] - params[i]); d > 1e-12*math.Abs(params[i])+1e-300 {
			t.Fatalf("coord %d: delta error %g beyond float rounding", i, d)
		}
	}
}

func TestQSGDErrorBound(t *testing.T) {
	params := testVec(1000, 3)
	for _, bits := range []int{2, 4, 8, 12} {
		c := mustCodec(t, Spec{Name: "qsgd", Bits: bits, Seed: 5})
		u := c.Encode(params, nil)
		got, err := c.Decode(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Stochastic rounding moves each coordinate by at most one level.
		unit := u.Scale / float64(levels(bits))
		for i := range params {
			if d := math.Abs(got[i] - params[i]); d > unit+1e-12 {
				t.Fatalf("bits=%d coord %d: error %g exceeds level width %g", bits, i, d, unit)
			}
		}
	}
}

func TestQSGDUnbiased(t *testing.T) {
	// E[decode] = v for stochastic rounding: averaging many independent
	// quantizations converges to the input.
	params := testVec(8, 4)
	c := mustCodec(t, Spec{Name: "qsgd", Bits: 4, Seed: 9})
	sum := make([]float64, len(params))
	const trials = 4000
	var unit float64
	for trial := 0; trial < trials; trial++ {
		u := c.Encode(params, nil)
		unit = u.Scale / float64(levels(4))
		got, err := c.Decode(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			sum[i] += v
		}
	}
	for i := range sum {
		mean := sum[i] / trials
		if d := math.Abs(mean - params[i]); d > unit/10 {
			t.Fatalf("coord %d: mean %g vs true %g (|Δ|=%g, unit=%g) — rounding looks biased",
				i, mean, params[i], d, unit)
		}
	}
}

func TestQSGDDeterminism(t *testing.T) {
	params := testVec(300, 6)
	s := Spec{Name: "qsgd", Bits: 6, Seed: 42}
	a, _ := s.ForDevice("uplink", 3)
	b, _ := s.ForDevice("uplink", 3)
	ua, ub := a.Encode(params, nil), b.Encode(params, nil)
	if !reflect.DeepEqual(ua, ub) {
		t.Fatal("same (seed, direction, device) produced different encodings")
	}
	other, _ := s.ForDevice("uplink", 4)
	if reflect.DeepEqual(ua, other.Encode(params, nil)) {
		t.Fatal("different devices share a rounding stream")
	}
}

func TestQSGDZeroVector(t *testing.T) {
	c := mustCodec(t, Spec{Name: "qsgd", Bits: 8})
	u := c.Encode(make([]float64, 50), nil)
	got, err := c.Decode(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("coord %d: zero vector decoded to %g", i, v)
		}
	}
}

func TestTopKChainedLinkConverges(t *testing.T) {
	// Downlink semantics: the base chains through the decoded values, so
	// the lagging prev re-queues unsent mass and a fixed target must be
	// delivered exactly within ⌈1/frac⌉ rounds — no residual involved.
	target := testVec(100, 7)
	c, err := (Spec{Name: "topk", TopK: 0.25}).ForDevice(Downlink, 0)
	if err != nil {
		t.Fatal(err)
	}
	var prev []float64
	lastErr := math.Inf(1)
	for round := 0; round < 4; round++ {
		u := c.Encode(target, prev)
		if len(u.Indices) != 25 {
			t.Fatalf("round %d: sent %d coords, want 25", round, len(u.Indices))
		}
		got, err := c.Decode(u, prev)
		if err != nil {
			t.Fatal(err)
		}
		e := 0.0
		for i := range target {
			e += (got[i] - target[i]) * (got[i] - target[i])
		}
		if e > lastErr+1e-12 {
			t.Fatalf("round %d: reconstruction error rose from %g to %g", round, lastErr, e)
		}
		lastErr = e
		prev = got
	}
	if lastErr > 1e-20 {
		t.Fatalf("after 4 rounds at 25%% the chain should have drained, error %g", lastErr)
	}
}

func TestTopKErrorFeedbackAccounting(t *testing.T) {
	// Uplink semantics: each round's base is one-shot (nil here), so the
	// residual must make sent-so-far + residual equal input-so-far, and
	// every coordinate must eventually be transmitted.
	n, rounds := 20, 8
	target := make([]float64, n)
	for i := range target {
		// Magnitudes within 3x of each other so doubling residuals
		// overtake the largest coordinate quickly.
		target[i] = (0.5 + float64(i)/float64(n)) * float64(1-2*(i%2))
	}
	c, err := (Spec{Name: "topk", TopK: 0.25}).ForDevice(Uplink, 0)
	if err != nil {
		t.Fatal(err)
	}
	tk := c.(*topkCodec)
	sent := make([]float64, n)
	seen := map[int32]bool{}
	for round := 0; round < rounds; round++ {
		u := c.Encode(target, nil)
		for j, i := range u.Indices {
			sent[i] += u.Values[j]
			seen[i] = true
		}
		// EF invariant: sent + residual = (round+1) · target.
		for i := range target {
			want := float64(round+1) * target[i]
			if d := math.Abs(sent[i] + tk.residual[i] - want); d > 1e-9 {
				t.Fatalf("round %d coord %d: sent+residual=%g, want %g",
					round, i, sent[i]+tk.residual[i], want)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("after %d rounds only %d/%d coordinates were ever transmitted", rounds, len(seen), n)
	}
}

func TestTopKSelectsLargest(t *testing.T) {
	c := mustCodec(t, Spec{Name: "topk", TopK: 0.2})
	v := []float64{0.1, -5, 0.2, 4, -0.3, 0.1, 0, 3, -0.2, 0.05}
	u := c.Encode(v, nil)
	want := map[int32]bool{1: true, 3: true}
	if len(u.Indices) != 2 {
		t.Fatalf("kept %d coords, want 2", len(u.Indices))
	}
	for _, i := range u.Indices {
		if !want[i] {
			t.Fatalf("kept coordinate %d, want the two largest magnitudes (1, 3)", i)
		}
	}
}

func TestWireBytesCompression(t *testing.T) {
	n := 1000
	params := testVec(n, 8)
	raw := mustCodec(t, Spec{Name: "raw"}).Encode(params, nil).WireBytes()
	cases := []struct {
		spec Spec
		min  float64 // required compression ratio vs raw
	}{
		{Spec{Name: "qsgd", Bits: 8}, 4},
		{Spec{Name: "qsgd", Bits: 4}, 8},
		{Spec{Name: "delta+qsgd", Bits: 8}, 4},
		{Spec{Name: "topk", TopK: 0.1}, 4},
	}
	for _, tc := range cases {
		u := mustCodec(t, tc.spec).Encode(params, nil)
		ratio := float64(raw) / float64(u.WireBytes())
		if ratio < tc.min {
			t.Errorf("%s: ratio %.2fx < required %.0fx (%d vs %d bytes)",
				tc.spec, ratio, tc.min, u.WireBytes(), raw)
		}
	}
}

func TestDecodeRejectsMismatch(t *testing.T) {
	params := testVec(20, 9)
	u := mustCodec(t, Spec{Name: "raw"}).Encode(params, nil)
	if _, err := mustCodec(t, Spec{Name: "topk"}).Decode(u, nil); err == nil {
		t.Error("topk decoded a raw update")
	}
	if _, err := mustCodec(t, Spec{Name: "raw"}).Decode(u, make([]float64, 3)); err == nil {
		t.Error("length mismatch against link state accepted")
	}
	q := mustCodec(t, Spec{Name: "qsgd", Bits: 8}).Encode(params, nil)
	if _, err := mustCodec(t, Spec{Name: "qsgd", Bits: 4}).Decode(q, nil); err == nil {
		t.Error("bit-width mismatch accepted")
	}
}

func TestBitPackingRoundTrip(t *testing.T) {
	for _, width := range []int{2, 3, 5, 8, 11, 16} {
		n := 37
		vals := make([]uint32, n)
		rng := frand.New(uint64(width))
		buf := make([]byte, (n*width+7)/8)
		for i := range vals {
			vals[i] = uint32(rng.Intn(1 << width))
			putBits(buf, i*width, width, vals[i])
		}
		for i, want := range vals {
			if got := getBits(buf, i*width, width); got != want {
				t.Fatalf("width %d index %d: got %d want %d", width, i, got, want)
			}
		}
	}
}

func TestSelectTopKMatchesSort(t *testing.T) {
	// Quickselect must pick the identical set as the reference total
	// order (|d| desc, index asc), including on ties.
	for trial := 0; trial < 50; trial++ {
		rng := frand.New(uint64(trial))
		n := 1 + rng.Intn(200)
		d := make([]float64, n)
		for i := range d {
			// Coarse values force magnitude ties.
			d[i] = float64(rng.Intn(7)-3) / 2
		}
		k := 1 + rng.Intn(n)

		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.Slice(ref, func(a, b int) bool {
			da, db := math.Abs(d[ref[a]]), math.Abs(d[ref[b]])
			if da != db {
				return da > db
			}
			return ref[a] < ref[b]
		})
		want := append([]int(nil), ref[:k]...)
		sort.Ints(want)

		got := make([]int, n)
		for i := range got {
			got[i] = i
		}
		selectTopK(d, got, k)
		sel := got[:k]
		sort.Ints(sel)
		if !reflect.DeepEqual(sel, want) {
			t.Fatalf("trial %d (n=%d k=%d): quickselect %v != sort %v", trial, n, k, sel, want)
		}
	}
}
