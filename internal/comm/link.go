package comm

import (
	"sync"

	"fedprox/internal/tensor"
)

// LinkState is one endpoint's per-device codec state: lazily created
// downlink/uplink codec instances plus the last decoded broadcast per
// device. The simulator's network model and both fednet endpoints
// (coordinator and worker) share this type, so the three state machines
// that must stay in lockstep for decoding to work cannot drift apart.
//
// LinkState is safe for concurrent use by goroutines handling distinct
// devices: the internal maps are mutex-guarded, while the per-device
// Codec instances themselves remain single-owner (the coordinator's
// aggregation loop and each worker's per-device request handler — at
// most one request is outstanding per device at any time).
type LinkState struct {
	downSpec, upSpec Spec
	trackPrev        bool

	mu       sync.Mutex
	down, up map[int]Codec
	prev     map[int][]float64
	prev32   map[int][]float32
}

// NewLinkState validates the per-direction specs and returns empty state.
func NewLinkState(down, up Spec) (*LinkState, error) {
	if err := down.Validate(); err != nil {
		return nil, err
	}
	if err := up.Validate(); err != nil {
		return nil, err
	}
	return &LinkState{
		downSpec: down,
		upSpec:   up,
		// Only prev-relative downlink codecs need the broadcast shadow;
		// for raw/qsgd downlinks, per-device copies of the full model
		// would be pure waste.
		trackPrev: down.UsesPrev(),
		down:      make(map[int]Codec),
		up:        make(map[int]Codec),
		prev:      make(map[int][]float64),
		prev32:    make(map[int][]float32),
	}, nil
}

// Link returns the device's codec pair, creating both directions on
// first contact. The returned instances are per-device single-owner
// state: callers must not drive the same device's codecs from two
// goroutines at once, but distinct devices may proceed concurrently.
func (l *LinkState) Link(device int) (down, up Codec, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	down = l.down[device]
	if down == nil {
		if down, err = l.downSpec.ForDevice(Downlink, device); err != nil {
			return nil, nil, err
		}
		if up, err = l.upSpec.ForDevice(Uplink, device); err != nil {
			return nil, nil, err
		}
		l.down[device], l.up[device] = down, up
	}
	return l.down[device], l.up[device], nil
}

// Prev returns the last decoded broadcast delivered on the device's
// downlink (nil before first contact, or when the downlink codec does
// not interpret payloads relative to it).
func (l *LinkState) Prev(device int) []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.prev[device]
}

// SetPrev records the decoded broadcast after a downlink transfer. Both
// endpoints of a link must call it with the same decoded value to stay
// in lockstep. The view is copied into a per-device buffer the link
// retains, so callers keep ownership of the slice they pass (and may
// recycle it).
func (l *LinkState) SetPrev(device int, view []float64) {
	if l.trackPrev {
		l.mu.Lock()
		p := l.prev[device]
		if cap(p) < len(view) {
			p = make([]float64, len(view))
		}
		p = p[:len(view)]
		copy(p, view)
		l.prev[device] = p
		l.mu.Unlock()
	}
}

// Prev32 is Prev for an f32 link: the last decoded float32 broadcast on
// the device's downlink. An endpoint uses either the f64 or the f32
// chain, never both — the chains are kept separate so a precision can
// never silently mix into the other's lockstep state.
func (l *LinkState) Prev32(device int) []float32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.prev32[device]
}

// SetPrev32 is SetPrev for an f32 link; the view is copied into a
// retained per-device buffer.
func (l *LinkState) SetPrev32(device int, view []float32) {
	if l.trackPrev {
		l.mu.Lock()
		p := l.prev32[device]
		if cap(p) < len(view) {
			p = make([]float32, len(view))
		}
		p = p[:len(view)]
		copy(p, view)
		l.prev32[device] = p
		l.mu.Unlock()
	}
}

// EvalLink is the shared evaluation-broadcast link: a single chained
// codec stream (direction Eval, device 0) that ships the global model to
// every evaluator. The coordinator (or simulator) encodes each eval
// broadcast once with Broadcast; every worker decodes it with Receive.
// Both sides advance the same prev chain, so lossy codecs stay in
// lockstep exactly as the training links do.
type EvalLink struct {
	mu        sync.Mutex
	codec     Codec
	trackPrev bool
	prev      []float64
}

// NewEvalLink builds the eval link for the deployment's downlink spec.
// Evaluation always happens at full width: an f32 downlink spec's
// precision is stripped here (on both endpoints, so the chain stays in
// lockstep), which is what lets an f32 run's loss be measured in the
// same arithmetic as its f64 baseline.
func NewEvalLink(down Spec) (*EvalLink, error) {
	down.Precision = tensor.F64
	c, err := down.ForDevice(Eval, 0)
	if err != nil {
		return nil, err
	}
	return &EvalLink{codec: c, trackPrev: down.UsesPrev()}, nil
}

// Broadcast encodes w against the link's prev chain, decodes it back as
// every receiver will, advances the chain, and returns the encoded
// update (send it to each evaluator verbatim) plus the decoded view the
// evaluation happens at.
func (l *EvalLink) Broadcast(w []float64) (*Update, []float64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	u := l.codec.Encode(w, l.prev)
	view, err := l.codec.Decode(u, l.prev)
	if err != nil {
		return nil, nil, err
	}
	if l.trackPrev {
		l.prev = view
	}
	return u, view, nil
}

// Receive decodes one eval broadcast at the receiving endpoint and
// advances its prev chain. Receivers must decode every broadcast in
// order — the chain is shared state.
func (l *EvalLink) Receive(u *Update) ([]float64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	view, err := l.codec.Decode(u, l.prev)
	if err != nil {
		return nil, err
	}
	if l.trackPrev {
		l.prev = view
	}
	return view, nil
}
