package comm

// LinkState is one endpoint's per-device codec state: lazily created
// downlink/uplink codec instances plus the last decoded broadcast per
// device. The simulator's network model and both fednet endpoints
// (coordinator and worker) share this type, so the three state machines
// that must stay in lockstep for decoding to work cannot drift apart.
type LinkState struct {
	downSpec, upSpec Spec
	trackPrev        bool
	down, up         map[int]Codec
	prev             map[int][]float64
}

// NewLinkState validates the per-direction specs and returns empty state.
func NewLinkState(down, up Spec) (*LinkState, error) {
	if err := down.Validate(); err != nil {
		return nil, err
	}
	if err := up.Validate(); err != nil {
		return nil, err
	}
	return &LinkState{
		downSpec: down,
		upSpec:   up,
		// Only prev-relative downlink codecs need the broadcast shadow;
		// for raw/qsgd downlinks, per-device copies of the full model
		// would be pure waste.
		trackPrev: down.UsesPrev(),
		down:      make(map[int]Codec),
		up:        make(map[int]Codec),
		prev:      make(map[int][]float64),
	}, nil
}

// Link returns the device's codec pair, creating both directions on
// first contact. Create links sequentially (e.g. during the broadcast
// phase); afterwards the maps are only read, so per-device codecs may
// be used from concurrent goroutines — one goroutine per device.
func (l *LinkState) Link(device int) (down, up Codec, err error) {
	down = l.down[device]
	if down == nil {
		if down, err = l.downSpec.ForDevice(Downlink, device); err != nil {
			return nil, nil, err
		}
		if up, err = l.upSpec.ForDevice(Uplink, device); err != nil {
			return nil, nil, err
		}
		l.down[device], l.up[device] = down, up
	}
	return l.down[device], l.up[device], nil
}

// Prev returns the last decoded broadcast delivered on the device's
// downlink (nil before first contact, or when the downlink codec does
// not interpret payloads relative to it).
func (l *LinkState) Prev(device int) []float64 { return l.prev[device] }

// SetPrev records the decoded broadcast after a downlink transfer. Both
// endpoints of a link must call it with the same decoded value to stay
// in lockstep.
func (l *LinkState) SetPrev(device int, view []float64) {
	if l.trackPrev {
		l.prev[device] = view
	}
}
