// Package theory implements the paper's convergence analysis (Section 4)
// as executable code: the sufficient-decrease coefficient ρ of Theorem 4,
// the Remark 5 conditions, Corollary 7's convex-case constants, Corollary
// 10's bounded-variance bound on B, and empirical estimators for the
// quantities the theory is stated in terms of (B-dissimilarity, Lipschitz
// smoothness).
//
// The point of this module is the paper's own validation loop
// (Section 5.3.3): the theory predicts that smaller dissimilarity means
// better convergence, and the dissimilarity metric can be measured on
// real runs. Tests and the "theory" experiment check the predicted
// inequalities against simulated trajectories.
package theory

import (
	"fmt"
	"math"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/metrics"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

// Params are the problem constants the analysis is stated in terms of.
type Params struct {
	// Mu is the proximal coefficient μ.
	Mu float64
	// Gamma is the local inexactness γ ∈ [0, 1] (Definition 1).
	Gamma float64
	// B is the dissimilarity bound (Definition 3 / Assumption 1).
	B float64
	// K is the number of devices selected per round.
	K int
	// L is the Lipschitz-smoothness constant of the local objectives.
	L float64
	// LMinus is L⁻ ≥ 0, the bound ∇²F_k ⪰ −L⁻·I on local non-convexity
	// (0 for convex objectives).
	LMinus float64
}

// MuBar returns μ̄ = μ − L⁻, the strong-convexity modulus of the local
// subproblem h_k. The analysis requires μ̄ > 0.
func (p Params) MuBar() float64 { return p.Mu - p.LMinus }

// Validate reports the first structural problem with the constants.
func (p Params) Validate() error {
	switch {
	case p.Mu <= 0:
		return fmt.Errorf("theory: mu must be positive, got %g", p.Mu)
	case p.Gamma < 0 || p.Gamma > 1:
		return fmt.Errorf("theory: gamma must be in [0,1], got %g", p.Gamma)
	case p.B < 1:
		return fmt.Errorf("theory: B is at least 1 by construction, got %g", p.B)
	case p.K <= 0:
		return fmt.Errorf("theory: K must be positive, got %d", p.K)
	case p.L <= 0:
		return fmt.Errorf("theory: L must be positive, got %g", p.L)
	case p.LMinus < 0:
		return fmt.Errorf("theory: L- must be non-negative, got %g", p.LMinus)
	case p.MuBar() <= 0:
		return fmt.Errorf("theory: mu-bar = mu - L- = %g must be positive", p.MuBar())
	}
	return nil
}

// Rho evaluates the sufficient-decrease coefficient of Theorem 4:
//
//	ρ = 1/μ − γB/μ − B(1+γ)√2/(μ̄√K) − LB(1+γ)/(μ̄μ)
//	    − L(1+γ)²B²/(2μ̄²) − LB²(1+γ)²(2√(2K)+2)/(μ̄²K)
//
// Theorem 4 guarantees E[f(wᵗ⁺¹)] ≤ f(wᵗ) − ρ‖∇f(wᵗ)‖² whenever ρ > 0.
func Rho(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	mu, muBar := p.Mu, p.MuBar()
	g, b, l := p.Gamma, p.B, p.L
	k := float64(p.K)
	one := 1 / mu
	t1 := g * b / mu
	t2 := b * (1 + g) * math.Sqrt2 / (muBar * math.Sqrt(k))
	t3 := l * b * (1 + g) / (muBar * mu)
	t4 := l * (1 + g) * (1 + g) * b * b / (2 * muBar * muBar)
	t5 := l * b * b * (1 + g) * (1 + g) / (muBar * muBar * k) * (2*math.Sqrt(2*k) + 2)
	return one - t1 - t2 - t3 - t4 - t5, nil
}

// RemarkFiveHolds reports the Remark 5 necessary structure for ρ > 0:
// γB < 1 and B/√K < 1. These quantify the trade-off between dissimilarity
// and the algorithm parameters.
func RemarkFiveHolds(p Params) bool {
	return p.Gamma*p.B < 1 && p.B/math.Sqrt(float64(p.K)) < 1
}

// ConvexMu returns Corollary 7's recommended penalty μ ≈ 6LB² for convex
// losses solved exactly, and the resulting decrease coefficient
// ρ ≈ 1/(24LB²).
func ConvexMu(l, b float64) (mu, rho float64) {
	mu = 6 * l * b * b
	rho = 1 / (24 * l * b * b)
	return mu, rho
}

// BoundedVarianceB returns Corollary 10's bound B ≤ sqrt(1 + σ²/ε): the
// dissimilarity implied by a gradient-variance bound σ² at gradient-norm
// threshold ε.
func BoundedVarianceB(sigma2, eps float64) float64 {
	if eps <= 0 {
		panic("theory: eps must be positive")
	}
	return math.Sqrt(1 + sigma2/eps)
}

// IterationComplexity returns Theorem 6's round count T = Δ/(ρ·ε) to reach
// (1/T)Σ E‖∇f(wᵗ)‖² ≤ ε from initial gap Δ = f(w⁰) − f*.
func IterationComplexity(delta, rho, eps float64) float64 {
	if rho <= 0 || eps <= 0 {
		panic("theory: rho and eps must be positive")
	}
	return delta / (rho * eps)
}

// EstimateB measures B(w) (Definition 3) on a federated dataset at the
// given parameters. It is a thin naming wrapper over
// metrics.Dissimilarity for symmetry with the analysis.
func EstimateB(m model.Model, fed *data.Federated, w []float64) float64 {
	_, b := metrics.Dissimilarity(m, fed, w)
	return b
}

// EstimateL estimates the Lipschitz-smoothness constant of the global
// objective by probing gradient differences along random directions:
//
//	L ≳ max over probes of ‖∇f(w + δu) − ∇f(w)‖ / δ
//
// The estimate is a lower bound that tightens with more probes; it is the
// standard practical stand-in for an analytic constant.
func EstimateL(m model.Model, fed *data.Federated, w []float64, probes int, delta float64, rng *frand.Source) float64 {
	if probes <= 0 || delta <= 0 {
		panic("theory: probes and delta must be positive")
	}
	n := m.NumParams()
	g0 := make([]float64, n)
	globalGrad(m, fed, w, g0)
	g1 := make([]float64, n)
	wp := make([]float64, n)
	best := 0.0
	for p := 0; p < probes; p++ {
		u := rng.NormVec(make([]float64, n), 0, 1)
		tensor.Scale(1/tensor.Norm2(u), u)
		tensor.AddScaled(wp, w, delta, u)
		globalGrad(m, fed, wp, g1)
		tensor.Sub(g1, g1, g0)
		if est := tensor.Norm2(g1) / delta; est > best {
			best = est
		}
	}
	return best
}

// globalGrad writes ∇f(w) = Σ p_k ∇F_k(w) into dst.
func globalGrad(m model.Model, fed *data.Federated, w, dst []float64) {
	weights := fed.Weights()
	tensor.Zero(dst)
	g := make([]float64, m.NumParams())
	for k, s := range fed.Shards {
		m.Grad(g, w, s.Train)
		tensor.Axpy(weights[k], g, dst)
	}
}

// SufficientDecreaseReport compares a run's observed per-round decrease
// with Theorem 4's bound at measured constants.
type SufficientDecreaseReport struct {
	// Rho is the theoretical coefficient at the measured constants.
	Rho float64
	// Remark5 reports whether the Remark 5 conditions held.
	Remark5 bool
	// B and L are the measured constants used.
	B, L float64
}

// Analyze measures B and L at the given parameters and evaluates ρ for the
// run configuration. It is the entry point the "theory" experiment uses.
func Analyze(m model.Model, fed *data.Federated, w []float64, mu, gamma float64, k int, rng *frand.Source) (SufficientDecreaseReport, error) {
	b := EstimateB(m, fed, w)
	if b < 1 {
		b = 1 // Definition 3: B(w) >= 1 up to measurement noise
	}
	l := EstimateL(m, fed, w, 5, 1e-3, rng)
	if l <= 0 {
		l = 1e-6
	}
	p := Params{Mu: mu, Gamma: gamma, B: b, K: k, L: l, LMinus: 0}
	rho, err := Rho(p)
	if err != nil {
		return SufficientDecreaseReport{}, err
	}
	return SufficientDecreaseReport{
		Rho:     rho,
		Remark5: RemarkFiveHolds(p),
		B:       b,
		L:       l,
	}, nil
}
