package theory

import (
	"math"
	"testing"
	"testing/quick"

	"fedprox/internal/data/synthetic"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
)

func goodParams() Params {
	return Params{Mu: 10, Gamma: 0.05, B: 1.5, K: 10, L: 1, LMinus: 0.2}
}

func TestParamsValidate(t *testing.T) {
	if err := goodParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Mu = 0 },
		func(p *Params) { p.Gamma = -0.1 },
		func(p *Params) { p.Gamma = 1.1 },
		func(p *Params) { p.B = 0.5 },
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.L = 0 },
		func(p *Params) { p.LMinus = -1 },
		func(p *Params) { p.Mu = 0.1; p.LMinus = 0.2 }, // mu-bar <= 0
	}
	for i, mutate := range bad {
		p := goodParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestMuBar(t *testing.T) {
	p := Params{Mu: 3, LMinus: 1}
	if got := p.MuBar(); got != 2 {
		t.Fatalf("MuBar = %g, want 2", got)
	}
}

// TestRhoPositiveInGoodRegime: exact solves (γ=0), low dissimilarity,
// large μ and K — the regime the theory says must give decrease.
func TestRhoPositiveInGoodRegime(t *testing.T) {
	p := Params{Mu: 50, Gamma: 0, B: 1.2, K: 100, L: 1, LMinus: 0}
	rho, err := Rho(p)
	if err != nil {
		t.Fatal(err)
	}
	if rho <= 0 {
		t.Fatalf("rho = %g in a benign regime, want > 0", rho)
	}
}

// TestRhoNegativeUnderExtremeDissimilarity: B >> √K must kill the
// guarantee (Remark 5).
func TestRhoNegativeUnderExtremeDissimilarity(t *testing.T) {
	p := Params{Mu: 50, Gamma: 0, B: 50, K: 10, L: 1, LMinus: 0}
	rho, err := Rho(p)
	if err != nil {
		t.Fatal(err)
	}
	if rho > 0 {
		t.Fatalf("rho = %g despite B/sqrt(K) = %g >> 1", rho, 50/math.Sqrt(10))
	}
	if RemarkFiveHolds(p) {
		t.Fatal("Remark 5 claimed to hold at B=50, K=10")
	}
}

// TestRhoMonotoneInGamma: sloppier local solves (larger γ) can only shrink
// the guaranteed decrease.
func TestRhoMonotoneInGamma(t *testing.T) {
	base := Params{Mu: 50, Gamma: 0, B: 1.5, K: 100, L: 1, LMinus: 0}
	prev := math.Inf(1)
	for _, g := range []float64{0, 0.1, 0.3, 0.6, 0.9} {
		p := base
		p.Gamma = g
		rho, err := Rho(p)
		if err != nil {
			t.Fatal(err)
		}
		if rho >= prev {
			t.Fatalf("rho not decreasing in gamma at %g: %g >= %g", g, rho, prev)
		}
		prev = rho
	}
}

// TestRhoMonotoneInB: more dissimilarity, weaker guarantee.
func TestRhoMonotoneInBProperty(t *testing.T) {
	f := func(seed uint8) bool {
		b1 := 1 + float64(seed%40)/10 // 1.0 .. 4.9
		b2 := b1 + 0.5
		base := Params{Mu: 80, Gamma: 0.05, K: 100, L: 1, LMinus: 0}
		pa, pb := base, base
		pa.B, pb.B = b1, b2
		r1, err1 := Rho(pa)
		r2, err2 := Rho(pb)
		return err1 == nil && err2 == nil && r2 < r1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRhoImprovesWithK: more participating devices tighten the variance
// terms.
func TestRhoImprovesWithK(t *testing.T) {
	base := Params{Mu: 50, Gamma: 0.05, B: 2, K: 10, L: 1, LMinus: 0}
	small, err := Rho(base)
	if err != nil {
		t.Fatal(err)
	}
	base.K = 1000
	big, err := Rho(base)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("rho did not improve with K: K=10 %g, K=1000 %g", small, big)
	}
}

func TestConvexMu(t *testing.T) {
	mu, rho := ConvexMu(1, 2)
	if mu != 24 {
		t.Fatalf("ConvexMu mu = %g, want 6LB^2 = 24", mu)
	}
	if math.Abs(rho-1.0/96) > 1e-15 {
		t.Fatalf("ConvexMu rho = %g, want 1/(24LB^2) = %g", rho, 1.0/96)
	}
}

func TestBoundedVarianceB(t *testing.T) {
	if got := BoundedVarianceB(0, 1); got != 1 {
		t.Fatalf("B with zero variance = %g, want 1", got)
	}
	if got := BoundedVarianceB(3, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("B = %g, want 2", got)
	}
	// Smaller eps (higher accuracy) inflates B, as Corollary 7 discusses.
	if BoundedVarianceB(1, 0.1) <= BoundedVarianceB(1, 1) {
		t.Fatal("B must grow as eps shrinks")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("eps <= 0 did not panic")
		}
	}()
	BoundedVarianceB(1, 0)
}

func TestIterationComplexity(t *testing.T) {
	if got := IterationComplexity(10, 0.5, 0.1); got != 200 {
		t.Fatalf("T = %g, want 200", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rho <= 0 did not panic")
		}
	}()
	IterationComplexity(1, 0, 1)
}

func TestEstimateBOnSyntheticLadder(t *testing.T) {
	// The measured B must be >= 1 and larger on Synthetic(1,1) than on
	// IID data — the empirical claim of Section 5.3.3.
	rng := frand.New(5)
	measure := func(iid bool) float64 {
		cfg := synthetic.Default(1, 1).Scaled(0.15)
		cfg.IID = iid
		fed := synthetic.Generate(cfg)
		m := linear.ForDataset(fed)
		w := rng.NormVec(make([]float64, m.NumParams()), 0, 0.1)
		return EstimateB(m, fed, w)
	}
	bIID, bHet := measure(true), measure(false)
	if bIID < 1-1e-9 || bHet < 1-1e-9 {
		t.Fatalf("B below 1: iid %g, het %g", bIID, bHet)
	}
	if bHet <= bIID {
		t.Fatalf("B on heterogeneous data (%g) not above IID (%g)", bHet, bIID)
	}
}

func TestEstimateLPositiveAndStable(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(0, 0).Scaled(0.15))
	m := linear.ForDataset(fed)
	w := make([]float64, m.NumParams())
	l := EstimateL(m, fed, w, 4, 1e-3, frand.New(7))
	if l <= 0 || math.IsNaN(l) {
		t.Fatalf("EstimateL = %g", l)
	}
	// Logistic loss curvature is bounded by ~max ‖x‖²/4 per class block;
	// the estimate must land in a plausible range, not explode.
	if l > 1e4 {
		t.Fatalf("EstimateL = %g, implausibly large", l)
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(0, 0).Scaled(0.15))
	m := linear.ForDataset(fed)
	w := make([]float64, m.NumParams())
	rep, err := Analyze(m, fed, w, 10, 0.1, 10, frand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.B < 1 || rep.L <= 0 {
		t.Fatalf("bad measured constants: %+v", rep)
	}
	if math.IsNaN(rep.Rho) {
		t.Fatal("rho is NaN")
	}
}
