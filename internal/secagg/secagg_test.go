package secagg

import (
	"math"
	"testing"
	"testing/quick"

	"fedprox/internal/frand"
	"fedprox/internal/tensor"
)

func TestMasksCancelInSum(t *testing.T) {
	rng := frand.New(3)
	ids := []int{4, 1, 9}
	const dim = 32
	c, err := NewCohort(ids, dim, 12345)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, dim)
	uploads := map[int][]int64{}
	for _, id := range ids {
		v := rng.NormVec(make([]float64, dim), 0, 1)
		tensor.Axpy(1, v, truth)
		u, err := c.Mask(id, v)
		if err != nil {
			t.Fatal(err)
		}
		uploads[id] = u
	}
	got, err := c.Aggregate(uploads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 3.0/scale*float64(len(ids)) {
			t.Fatalf("coordinate %d: recovered %g, truth %g", i, got[i], truth[i])
		}
	}
}

func TestMaskedUploadHidesPayload(t *testing.T) {
	// A single masked upload must look nothing like the payload: the mask
	// magnitude (~2^40 lattice units ≈ 2^20 in float) dwarfs any model
	// coordinate, so correlation with the payload is invisible.
	c, err := NewCohort([]int{0, 1}, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	u, err := c.Mask(0, v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u {
		if math.Abs(float64(u[i])/scale-v[i]) < 100 {
			t.Fatalf("coordinate %d leaked: upload %g vs payload %g", i, float64(u[i])/scale, v[i])
		}
	}
}

func TestPairwiseMasksAreOpposite(t *testing.T) {
	c, err := NewCohort([]int{2, 7}, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.maskFor(2)
	if err != nil {
		t.Fatal(err)
	}
	m7, err := c.maskFor(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m2 {
		if m2[i]+m7[i] != 0 {
			t.Fatalf("pair masks do not cancel at %d: %d + %d", i, m2[i], m7[i])
		}
	}
}

func TestWeightedAverageMatchesPlain(t *testing.T) {
	rng := frand.New(11)
	ids := []int{0, 3, 5, 8}
	const dim = 24
	c, err := NewCohort(ids, dim, 777)
	if err != nil {
		t.Fatal(err)
	}
	models := map[int][]float64{}
	sizes := map[int]int{}
	for i, id := range ids {
		models[id] = rng.NormVec(make([]float64, dim), 0, 1)
		sizes[id] = 10 * (i + 1)
	}
	secure, err := c.WeightedAverage(models, sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Plain weighted average for comparison.
	plain := make([]float64, dim)
	total := 0
	for _, id := range ids {
		total += sizes[id]
	}
	for _, id := range ids {
		tensor.Axpy(float64(sizes[id])/float64(total), models[id], plain)
	}
	for i := range plain {
		if math.Abs(secure[i]-plain[i]) > 1e-4 {
			t.Fatalf("coordinate %d: secure %g vs plain %g", i, secure[i], plain[i])
		}
	}
}

func TestAggregateRefusesPartialCohort(t *testing.T) {
	c, err := NewCohort([]int{0, 1, 2}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	u0, _ := c.Mask(0, make([]float64, 4))
	u1, _ := c.Mask(1, make([]float64, 4))
	if _, err := c.Aggregate(map[int][]int64{0: u0, 1: u1}); err == nil {
		t.Fatal("partial cohort accepted; masks would not cancel")
	}
}

func TestCohortValidation(t *testing.T) {
	if _, err := NewCohort([]int{1}, 4, 1); err == nil {
		t.Fatal("single participant accepted")
	}
	if _, err := NewCohort([]int{1, 1}, 4, 1); err == nil {
		t.Fatal("duplicate participant accepted")
	}
	if _, err := NewCohort([]int{1, 2}, 0, 1); err == nil {
		t.Fatal("zero dimension accepted")
	}
	c, _ := NewCohort([]int{1, 2}, 4, 1)
	if _, err := c.Mask(3, make([]float64, 4)); err == nil {
		t.Fatal("non-member masked")
	}
	if _, err := c.Mask(1, make([]float64, 5)); err == nil {
		t.Fatal("wrong payload dim accepted")
	}
}

func TestCancellationProperty(t *testing.T) {
	// Property: for random cohorts and payloads, the recovered sum matches
	// the true sum within lattice resolution.
	f := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw%5) + 2
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i * 3
		}
		c, err := NewCohort(ids, 6, uint64(seed))
		if err != nil {
			return false
		}
		rng := frand.New(uint64(seed) + 1)
		truth := make([]float64, 6)
		uploads := map[int][]int64{}
		for _, id := range ids {
			v := rng.NormVec(make([]float64, 6), 0, 10)
			tensor.Axpy(1, v, truth)
			u, err := c.Mask(id, v)
			if err != nil {
				return false
			}
			uploads[id] = u
		}
		got, err := c.Aggregate(uploads)
		if err != nil {
			return false
		}
		for i := range truth {
			if math.Abs(got[i]-truth[i]) > float64(n)*2/scale*10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParticipantsSorted(t *testing.T) {
	c, err := NewCohort([]int{9, 2, 5}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Participants()
	if p[0] != 2 || p[1] != 5 || p[2] != 9 {
		t.Fatalf("participants = %v", p)
	}
	// Returned slice must be a copy.
	p[0] = 100
	if c.Participants()[0] == 100 {
		t.Fatal("Participants leaked internal state")
	}
}
