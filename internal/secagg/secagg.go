// Package secagg implements pairwise-mask secure aggregation (Bonawitz et
// al.-style, simplified to the honest-but-curious, no-dropout setting):
// the server learns only the SUM of the participants' vectors, never any
// individual contribution.
//
// The paper notes (footnote 1) that standard privacy mechanisms "can
// naturally be combined with the methods proposed herein" because FedProx
// only changes the local objective; aggregation remains a weighted sum.
// This package demonstrates that composition: each device k uploads
//
//	masked_k = n_k·w_k + Σ_{j>k} PRG(s_kj) − Σ_{j<k} PRG(s_jk)
//
// where s_ij is a seed shared pairwise between devices i and j. Every
// mask appears exactly once with each sign across the cohort, so the
// masks cancel in the sum and the server recovers Σ n_k·w_k exactly —
// which divided by Σ n_k is precisely the FedProx weighted average.
//
// Masks are generated in a fixed-point lattice (scaled int64) so
// cancellation is exact rather than subject to float rounding.
package secagg

import (
	"fmt"
	"sort"

	"fedprox/internal/frand"
)

// scale converts between float64 payloads and the int64 lattice the masks
// live in. 2^20 gives ~1e-6 resolution over the |v| < 2^43/2^20 ≈ 8e6
// range, far beyond any model coordinate in this repository.
const scale = 1 << 20

// Cohort is one aggregation round's participant set with its pairwise
// seeds. Seeds derive deterministically from a round secret; in a real
// deployment each pair runs a key agreement, which this simulation stands
// in for.
type Cohort struct {
	ids   []int
	seeds map[[2]int]uint64 // (lo, hi) -> shared seed
	dim   int
}

// NewCohort creates a cohort for the given device IDs and vector
// dimension. roundSecret stands in for the pairwise key agreement; every
// pair (i, j) derives seed = H(roundSecret, i, j) known only to i and j
// (and, in this simulation, to the test harness).
func NewCohort(ids []int, dim int, roundSecret uint64) (*Cohort, error) {
	if len(ids) < 2 {
		return nil, fmt.Errorf("secagg: cohort needs >= 2 participants, got %d", len(ids))
	}
	if dim <= 0 {
		return nil, fmt.Errorf("secagg: non-positive dimension %d", dim)
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("secagg: duplicate participant %d", sorted[i])
		}
	}
	root := frand.New(roundSecret)
	seeds := make(map[[2]int]uint64)
	for a := 0; a < len(sorted); a++ {
		for b := a + 1; b < len(sorted); b++ {
			pair := [2]int{sorted[a], sorted[b]}
			seeds[pair] = root.SplitIndex(pair[0]).SplitIndex(pair[1]).Uint64()
		}
	}
	return &Cohort{ids: sorted, seeds: seeds, dim: dim}, nil
}

// Participants returns the cohort's device IDs in ascending order.
func (c *Cohort) Participants() []int { return append([]int(nil), c.ids...) }

// maskFor returns the lattice mask device id applies: +PRG for partners
// above it, −PRG for partners below.
func (c *Cohort) maskFor(id int) ([]int64, error) {
	found := false
	for _, x := range c.ids {
		if x == id {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("secagg: device %d not in cohort", id)
	}
	mask := make([]int64, c.dim)
	for _, other := range c.ids {
		if other == id {
			continue
		}
		pair := [2]int{id, other}
		sign := int64(1)
		if other < id {
			pair = [2]int{other, id}
			sign = -1
		}
		prg := frand.New(c.seeds[pair])
		for i := range mask {
			// Bounded mask magnitude keeps the masked sum inside int64.
			mask[i] += sign * int64(prg.Uint64()%(1<<40)) //nolint:gosec
		}
	}
	return mask, nil
}

// Mask produces device id's upload for payload v (already weighted by the
// caller, e.g. n_k·w_k). The result reveals nothing about v without the
// complementary masks.
func (c *Cohort) Mask(id int, v []float64) ([]int64, error) {
	if len(v) != c.dim {
		return nil, fmt.Errorf("secagg: payload dim %d != cohort dim %d", len(v), c.dim)
	}
	mask, err := c.maskFor(id)
	if err != nil {
		return nil, err
	}
	out := make([]int64, c.dim)
	for i := range v {
		out[i] = int64(v[i]*scale) + mask[i]
	}
	return out, nil
}

// Aggregate sums the masked uploads of the FULL cohort and returns the
// recovered Σ v_k. It fails if any participant is missing (this simplified
// protocol has no dropout recovery; the caller decides cohorts after
// seeing who reported in).
func (c *Cohort) Aggregate(uploads map[int][]int64) ([]float64, error) {
	if len(uploads) != len(c.ids) {
		return nil, fmt.Errorf("secagg: need all %d uploads, got %d (no dropout recovery)",
			len(c.ids), len(uploads))
	}
	sum := make([]int64, c.dim)
	for _, id := range c.ids {
		u, ok := uploads[id]
		if !ok {
			return nil, fmt.Errorf("secagg: missing upload from device %d", id)
		}
		if len(u) != c.dim {
			return nil, fmt.Errorf("secagg: device %d upload dim %d != %d", id, len(u), c.dim)
		}
		for i := range sum {
			sum[i] += u[i]
		}
	}
	out := make([]float64, c.dim)
	for i := range sum {
		out[i] = float64(sum[i]) / scale
	}
	return out, nil
}

// WeightedAverage runs the whole round: every device masks n_k·w_k, the
// server aggregates, and the result is divided by Σ n_k — the FedProx
// aggregation rule computed without the server ever seeing a single
// device's model.
func (c *Cohort) WeightedAverage(models map[int][]float64, sizes map[int]int) ([]float64, error) {
	uploads := make(map[int][]int64, len(models))
	totalN := 0
	for _, id := range c.ids {
		w, ok := models[id]
		if !ok {
			return nil, fmt.Errorf("secagg: missing model for device %d", id)
		}
		n, ok := sizes[id]
		if !ok || n <= 0 {
			return nil, fmt.Errorf("secagg: missing or invalid size for device %d", id)
		}
		weighted := make([]float64, len(w))
		for i := range w {
			weighted[i] = float64(n) * w[i]
		}
		u, err := c.Mask(id, weighted)
		if err != nil {
			return nil, err
		}
		uploads[id] = u
		totalN += n
	}
	sum, err := c.Aggregate(uploads)
	if err != nil {
		return nil, err
	}
	for i := range sum {
		sum[i] /= float64(totalN)
	}
	return sum, nil
}
