package frand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	root := New(7)
	a1 := root.Split("alpha")
	a2 := New(7).Split("alpha")
	if a1.Uint64() != a2.Uint64() {
		t.Fatal("Split is not deterministic")
	}
	b := root.Split("beta")
	if root.Split("alpha").Uint64() == b.Uint64() {
		t.Fatal("distinct labels produced identical streams")
	}
	// Splitting must not advance the parent.
	before := New(7)
	_ = before.Split("x")
	after := New(7)
	if before.Uint64() != after.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	root := New(5)
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		v := root.SplitIndex(i).Uint64()
		if seen[v] {
			t.Fatalf("SplitIndex(%d) collided", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	f := func(skip uint8) bool {
		for i := 0; i < int(skip); i++ {
			s.Uint64()
		}
		v := s.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("uniform variance = %g, want ~%g", variance, 1.0/12)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestNormMeanStd(t *testing.T) {
	s := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.NormMeanStd(3, 0.5)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.02 {
		t.Fatalf("mean = %g, want ~3", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(19)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRangeInclusive(t *testing.T) {
	s := New(23)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(1, 20)
		if v < 1 || v > 20 {
			t.Fatalf("IntRange(1,20) = %d", v)
		}
		seen[v] = true
	}
	if !seen[1] || !seen[20] {
		t.Fatal("IntRange never produced an endpoint in 1000 draws")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(29)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		p := s.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceDistinct(t *testing.T) {
	s := New(31)
	f := func(a, b uint8) bool {
		n := int(a%40) + 1
		k := int(b) % (n + 1)
		c := s.Choice(n, k)
		if len(c) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range c {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceUniform(t *testing.T) {
	s := New(37)
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range s.Choice(10, 3) {
			counts[v]++
		}
	}
	want := float64(trials) * 3 / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("index %d chosen %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestWeightedChoiceBias(t *testing.T) {
	s := New(41)
	weights := []float64{1, 2, 4, 8}
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[s.WeightedChoice(weights, 1)[0]]++
	}
	// Heavier indices must be drawn strictly more often, roughly in ratio.
	for i := 1; i < 4; i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("weighted counts not increasing: %v", counts)
		}
	}
	ratio := float64(counts[3]) / float64(counts[0])
	if ratio < 6 || ratio > 10 {
		t.Fatalf("weight-8/weight-1 ratio = %g, want ~8", ratio)
	}
}

func TestWeightedChoiceDistinct(t *testing.T) {
	s := New(43)
	weights := []float64{5, 1, 1, 1, 1}
	for i := 0; i < 500; i++ {
		c := s.WeightedChoice(weights, 5)
		seen := map[int]bool{}
		for _, v := range c {
			if seen[v] {
				t.Fatalf("duplicate in without-replacement draw: %v", c)
			}
			seen[v] = true
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	cases := []struct {
		w []float64
		k int
	}{
		{[]float64{1, 2}, 3},
		{[]float64{1, -1}, 1},
		{[]float64{0, 0}, 1},
	}
	for i, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			New(1).WeightedChoice(tc.w, tc.k)
		}()
	}
}

func TestPowerLawBounds(t *testing.T) {
	s := New(47)
	f := func(seed uint16) bool {
		v := s.PowerLaw(10, 500, 1.5)
		return v >= 10 && v <= 500
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawSkew(t *testing.T) {
	s := New(53)
	const n = 50000
	small, large := 0, 0
	for i := 0; i < n; i++ {
		v := s.PowerLaw(10, 1000, 2.0)
		if v < 50 {
			small++
		}
		if v > 500 {
			large++
		}
	}
	if small < 10*large {
		t.Fatalf("power law not heavy near the minimum: small=%d large=%d", small, large)
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(59)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %g", rate)
	}
}

func TestCategoricalBias(t *testing.T) {
	s := New(61)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[s.Categorical([]float64{1, 1, 2})]++
	}
	if counts[2] < counts[0] || counts[2] < counts[1] {
		t.Fatalf("categorical ignored weights: %v", counts)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for i, w := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(67)
	p := []int{1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(p)
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle changed elements: %v", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Norm()
	}
}
