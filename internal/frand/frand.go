// Package frand provides deterministic, splittable pseudo-random number
// streams for federated simulations.
//
// The paper's evaluation protocol requires that, for each comparison, the
// randomly selected devices, the stragglers, and the mini-batch orders are
// fixed across all runs (Section 5.1). frand makes that protocol explicit:
// a single experiment seed is split into independent named streams
// ("selection", "stragglers", "batches", ...), so changing the algorithm
// under test never perturbs the randomness of the environment.
//
// The generator is SplitMix64 (Steele et al., "Fast Splittable Pseudorandom
// Number Generators", OOPSLA 2014): tiny state, high quality, and cheap to
// split by hashing a label into the seed.
package frand

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic 64-bit PRNG stream.
//
// The zero value is a valid stream seeded with 0; prefer New or Split so
// related streams are decorrelated.
type Source struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream from s identified by label.
// Splitting is deterministic: the same parent seed and label always yield
// the same child stream, and distinct labels yield decorrelated streams.
// Split does not advance s.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(mix(s.state + 0x9e3779b97f4a7c15 ^ h.Sum64()))
}

// SplitIndex derives an independent child stream identified by an integer,
// e.g. one stream per device or per round.
func (s *Source) SplitIndex(i int) *Source {
	return New(mix(s.state + 0x9e3779b97f4a7c15*uint64(i+1)))
}

// State returns the stream's current state. frand.New(s.State()) yields a
// stream that continues exactly where s is now — the serialization hook
// the distributed runtime uses to ship a batch-order stream to a worker.
func (s *Source) State() uint64 { return s.state }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

// mix is the SplitMix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("frand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// modulo bias at n << 2^64 is far below simulation noise.
	return int(s.Uint64() % uint64(n))
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("frand: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Norm returns a standard normal deviate via the Box-Muller transform.
func (s *Source) Norm() float64 {
	// Draw u1 in (0,1] so Log never sees zero.
	u1 := 1.0 - s.Float64()
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormMeanStd returns a normal deviate with the given mean and standard
// deviation.
func (s *Source) NormMeanStd(mean, std float64) float64 {
	return mean + std*s.Norm()
}

// NormVec fills dst with independent N(mean, std²) deviates and returns it.
func (s *Source) NormVec(dst []float64, mean, std float64) []float64 {
	for i := range dst {
		dst[i] = s.NormMeanStd(mean, std)
	}
	return dst
}

// Perm returns a random permutation of [0, n), as used for mini-batch
// shuffling.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(p)
	return p
}

// Shuffle permutes p in place with a Fisher-Yates shuffle.
func (s *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Choice samples k distinct indices uniformly from [0, n) without
// replacement. It panics if k > n or k < 0.
func (s *Source) Choice(n, k int) []int {
	if k < 0 || k > n {
		panic("frand: Choice with k out of range")
	}
	// Partial Fisher-Yates: only the first k slots are needed.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// WeightedChoice samples k distinct indices without replacement where index
// i is drawn with probability proportional to weights[i], matching the
// device-sampling distribution p_k = n_k/n in Algorithms 1 and 2. It panics
// if k > len(weights), or if the remaining total weight is not positive
// while draws remain.
func (s *Source) WeightedChoice(weights []float64, k int) []int {
	n := len(weights)
	if k < 0 || k > n {
		panic("frand: WeightedChoice with k out of range")
	}
	w := make([]float64, n)
	copy(w, weights)
	total := 0.0
	for _, v := range w {
		if v < 0 {
			panic("frand: WeightedChoice with negative weight")
		}
		total += v
	}
	out := make([]int, 0, k)
	for len(out) < k {
		if total <= 0 {
			panic("frand: WeightedChoice ran out of positive weight")
		}
		r := s.Float64() * total
		acc := 0.0
		pick := -1
		for i, v := range w {
			if v == 0 {
				continue
			}
			acc += v
			if r < acc {
				pick = i
				break
			}
		}
		if pick < 0 {
			// Float round-off pushed r past the accumulated total; take the
			// last positive-weight index.
			for i := n - 1; i >= 0; i-- {
				if w[i] > 0 {
					pick = i
					break
				}
			}
		}
		out = append(out, pick)
		total -= w[pick]
		w[pick] = 0
	}
	return out
}

// PowerLaw draws an integer sample count from a discrete power-law-like
// distribution over [min, max]: value v is proportional to v^(-alpha).
// The paper allocates "samples per device following a power law"; this is
// the sampler the dataset generators share.
func (s *Source) PowerLaw(min, max int, alpha float64) int {
	if min <= 0 || max < min {
		panic("frand: PowerLaw with invalid range")
	}
	// Inverse-CDF on the continuous Pareto, then clamp to the integer range.
	u := s.Float64()
	lo := math.Pow(float64(min), 1-alpha)
	hi := math.Pow(float64(max), 1-alpha)
	v := math.Pow(lo+u*(hi-lo), 1/(1-alpha))
	n := int(v)
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Categorical samples an index from the (unnormalized, non-negative)
// weights. It panics on an empty or all-zero weight vector.
func (s *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, v := range weights {
		if v < 0 {
			panic("frand: Categorical with negative weight")
		}
		total += v
	}
	if total <= 0 {
		panic("frand: Categorical with no positive weight")
	}
	r := s.Float64() * total
	acc := 0.0
	for i, v := range weights {
		acc += v
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}
