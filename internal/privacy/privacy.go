// Package privacy implements the update-level privacy mechanism of
// DP-federated learning: each device's model delta is L2-clipped and
// Gaussian noise is added before upload.
//
// The paper's footnote 1 notes that differential privacy composes
// naturally with FedProx because the framework only alters the local
// objective. This package is that composition point: core.Run applies a
// Mechanism (when configured) to every device update between the local
// solve and aggregation, so any method built on the core — FedAvg,
// FedProx, FedDane — inherits it unchanged.
//
// The noise calibration (σ per clip bound per target ε, δ) is left to the
// caller; this package provides the mechanism, deterministic per
// (seed, round, device) so runs stay reproducible.
package privacy

import (
	"fmt"
	"math"

	"fedprox/internal/frand"
	"fedprox/internal/tensor"
)

// Mechanism clips and noises device updates.
type Mechanism struct {
	// ClipNorm is the L2 bound on the update delta w_k − wᵗ; 0 disables
	// clipping.
	ClipNorm float64
	// NoiseStd is the Gaussian noise standard deviation added per
	// coordinate of the delta; 0 disables noise.
	NoiseStd float64
	// Seed drives the noise streams.
	Seed uint64
}

// Validate reports configuration errors.
func (m *Mechanism) Validate() error {
	if m.ClipNorm < 0 {
		return fmt.Errorf("privacy: negative clip norm %g", m.ClipNorm)
	}
	if m.NoiseStd < 0 {
		return fmt.Errorf("privacy: negative noise std %g", m.NoiseStd)
	}
	return nil
}

// Apply transforms the update in place: w ← w0 + noise(clip(w − w0)).
// Noise is deterministic in (Seed, round, device).
func (m *Mechanism) Apply(w, w0 []float64, round, device int) {
	if len(w) != len(w0) {
		panic("privacy: parameter length mismatch")
	}
	if m.ClipNorm > 0 {
		ClipDelta(w, w0, m.ClipNorm)
	}
	if m.NoiseStd > 0 {
		rng := frand.New(m.Seed).SplitIndex(round).SplitIndex(device)
		for i := range w {
			w[i] += rng.NormMeanStd(0, m.NoiseStd)
		}
	}
}

// ClipDelta rescales w in place so that ‖w − w0‖₂ ≤ bound, leaving w
// unchanged when already inside the ball.
func ClipDelta(w, w0 []float64, bound float64) {
	if bound <= 0 {
		panic("privacy: non-positive clip bound")
	}
	norm := math.Sqrt(tensor.SqDist(w, w0))
	if norm <= bound {
		return
	}
	scale := bound / norm
	for i := range w {
		w[i] = w0[i] + scale*(w[i]-w0[i])
	}
}

// NoiseMultiplier returns the Gaussian-mechanism noise multiplier
// z = σ/clip for a single release at (ε, δ) via the classical analytic
// bound z = sqrt(2·ln(1.25/δ))/ε. Callers multiply by the clip bound to
// get the per-coordinate σ. Composition accounting across rounds is out
// of scope.
func NoiseMultiplier(epsilon, delta float64) float64 {
	if epsilon <= 0 || delta <= 0 || delta >= 1 {
		panic("privacy: epsilon must be positive and delta in (0,1)")
	}
	return math.Sqrt(2*math.Log(1.25/delta)) / epsilon
}
