package privacy_test

import (
	"math"
	"testing"
	"testing/quick"

	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
	"fedprox/internal/privacy"
	"fedprox/internal/tensor"
)

func TestClipDeltaInsideBallUnchanged(t *testing.T) {
	w := []float64{1, 1}
	w0 := []float64{0.5, 0.5}
	privacy.ClipDelta(w, w0, 10)
	if w[0] != 1 || w[1] != 1 {
		t.Fatalf("in-ball update changed: %v", w)
	}
}

func TestClipDeltaBoundHolds(t *testing.T) {
	rng := frand.New(5)
	f := func(seed uint16) bool {
		n := 8
		w0 := rng.NormVec(make([]float64, n), 0, 1)
		w := rng.NormVec(make([]float64, n), 0, 10)
		privacy.ClipDelta(w, w0, 0.5)
		return math.Sqrt(tensor.SqDist(w, w0)) <= 0.5+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClipDeltaPreservesDirection(t *testing.T) {
	w0 := []float64{0, 0}
	w := []float64{3, 4} // norm 5
	privacy.ClipDelta(w, w0, 1)
	if math.Abs(w[0]-0.6) > 1e-12 || math.Abs(w[1]-0.8) > 1e-12 {
		t.Fatalf("clip changed direction: %v", w)
	}
}

func TestClipDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bound 0 did not panic")
		}
	}()
	privacy.ClipDelta([]float64{1}, []float64{0}, 0)
}

func TestApplyDeterministic(t *testing.T) {
	m := &privacy.Mechanism{ClipNorm: 1, NoiseStd: 0.1, Seed: 9}
	w0 := []float64{0, 0, 0}
	a := []float64{5, 0, 0}
	b := []float64{5, 0, 0}
	m.Apply(a, w0, 3, 7)
	m.Apply(b, w0, 3, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Apply not deterministic in (round, device)")
		}
	}
	c := []float64{5, 0, 0}
	m.Apply(c, w0, 3, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different devices received identical noise")
	}
}

func TestApplyZeroConfigIsClipOnlyOrIdentity(t *testing.T) {
	w0 := []float64{0, 0}
	w := []float64{3, 4}
	id := &privacy.Mechanism{}
	id.Apply(w, w0, 0, 0)
	if w[0] != 3 || w[1] != 4 {
		t.Fatalf("zero mechanism modified the update: %v", w)
	}
}

func TestNoiseStatistics(t *testing.T) {
	m := &privacy.Mechanism{NoiseStd: 0.5, Seed: 3}
	const n = 20000
	w0 := make([]float64, n)
	w := make([]float64, n)
	m.Apply(w, w0, 0, 0)
	mean, sq := 0.0, 0.0
	for _, v := range w {
		mean += v
		sq += v * v
	}
	mean /= n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.02 || math.Abs(std-0.5) > 0.02 {
		t.Fatalf("noise stats: mean %g std %g, want 0 / 0.5", mean, std)
	}
}

func TestNoiseMultiplier(t *testing.T) {
	z := privacy.NoiseMultiplier(1, 1e-5)
	want := math.Sqrt(2 * math.Log(1.25e5))
	if math.Abs(z-want) > 1e-12 {
		t.Fatalf("z = %g, want %g", z, want)
	}
	// Stronger privacy (smaller epsilon) needs more noise.
	if privacy.NoiseMultiplier(0.5, 1e-5) <= z {
		t.Fatal("noise multiplier not decreasing in epsilon")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad (eps, delta) did not panic")
		}
	}()
	privacy.NoiseMultiplier(0, 0.1)
}

func TestValidate(t *testing.T) {
	if err := (&privacy.Mechanism{ClipNorm: 1, NoiseStd: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&privacy.Mechanism{ClipNorm: -1}).Validate(); err == nil {
		t.Fatal("negative clip accepted")
	}
	if err := (&privacy.Mechanism{NoiseStd: -1}).Validate(); err == nil {
		t.Fatal("negative noise accepted")
	}
}

// TestCoreIntegration: a private FedProx run trains (noise slows but does
// not break convergence at modest σ), and noise-free clipping with a huge
// bound reproduces the unprotected run exactly.
func TestCoreIntegration(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	base := core.FedProx(10, 5, 3, 0.01, 1)
	base.EvalEvery = 5

	plain, err := core.Run(mdl, fed, base)
	if err != nil {
		t.Fatal(err)
	}

	huge := base
	huge.Privacy = &privacy.Mechanism{ClipNorm: 1e9} // no-op clip, no noise
	same, err := core.Run(mdl, fed, huge)
	if err != nil {
		t.Fatal(err)
	}
	if same.Final().TrainLoss != plain.Final().TrainLoss {
		t.Fatal("no-op privacy mechanism changed the trajectory")
	}

	private := base
	private.Privacy = &privacy.Mechanism{ClipNorm: 1, NoiseStd: 0.001, Seed: 5}
	hp, err := core.Run(mdl, fed, private)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Final().TrainLoss >= hp.Points[0].TrainLoss {
		t.Fatalf("private run made no progress: %g -> %g",
			hp.Points[0].TrainLoss, hp.Final().TrainLoss)
	}
	if hp.Final().TrainLoss == plain.Final().TrainLoss {
		t.Fatal("noise had no effect at all")
	}
}

func TestCoreRejectsInvalidMechanism(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	cfg := core.FedProx(2, 2, 1, 0.01, 0)
	cfg.Privacy = &privacy.Mechanism{ClipNorm: -1}
	if _, err := core.Run(mdl, fed, cfg); err == nil {
		t.Fatal("invalid mechanism accepted")
	}
}
