// Package solver implements the local solvers devices run on their
// subproblems.
//
// The FedProx framework is solver-agnostic (Section 3.2): a device may use
// any procedure that produces a γ-inexact solution of
//
//	h_k(w; wᵗ) = F_k(w) + (μ/2)·‖w − wᵗ‖²
//
// This package provides the solvers the paper evaluates — mini-batch SGD
// (the FedAvg solver, and the FedProx solver with the proximal gradient
// term added) and full gradient descent — plus the γ-inexactness
// measurement of Definitions 1 and 2. A configurable linear correction
// term supports the FedDane baseline (Appendix B), whose local objective
// adds ⟨∇f(wᵗ) − ∇F_k(wᵗ), w⟩ to h_k.
package solver

import (
	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

// Config are the hyperparameters of a local solve.
type Config struct {
	// LearningRate is the SGD step size η. The paper tunes it per dataset
	// on FedAvg and reuses it for all methods.
	LearningRate float64
	// BatchSize is the mini-batch size (paper: 10).
	BatchSize int
	// Mu is the proximal coefficient μ; 0 recovers the FedAvg subproblem.
	Mu float64
	// Correction, when non-nil, is a constant vector added to every
	// stochastic gradient (the FedDane gradient-correction term). It must
	// have the model's parameter length.
	Correction []float64
	// Precision selects the arithmetic width of the local solve.
	// tensor.F32 routes SGD/GD through the float32 kernel path when the
	// model implements model.Model32 (and Correction is nil — FedDane
	// stays full-width); anything else runs the float64 reference path.
	Precision tensor.Precision
}

// SGD runs epochs passes of mini-batch SGD on the device subproblem
// h(w; w0) starting from w0 and returns the resulting parameters. Batch
// order is drawn from rng, so fixing rng fixes mini-batch order across
// compared runs, per the paper's protocol.
//
// Each step takes w ← w − η·(∇F(w; batch) + μ·(w − w0) + correction).
//
// The returned slice is exclusively the caller's: it may come from the
// tensor pool, and callers that do not retain it should hand it back
// with tensor.PutVec.
func SGD(m model.Model, train []data.Example, w0 []float64, cfg Config, epochs int, rng *frand.Source) []float64 {
	if epochs < 0 {
		panic("solver: negative epochs")
	}
	if cfg.BatchSize <= 0 {
		panic("data: non-positive batch size")
	}
	w := tensor.GetVec(len(w0))
	copy(w, w0)
	grad := tensor.GetVec(m.NumParams())
	batch := batchPool.get(cfg.BatchSize)[:0]
	perm := permPool.get(len(train))
	// Batch windows are sliced straight off the epoch permutation —
	// identical draws and batches as data.Batches, without materializing
	// the per-epoch slice-of-slices. The permutation buffer is pooled:
	// identity-fill + Shuffle consumes exactly the draws rng.Perm would.
	for e := 0; e < epochs; e++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(perm)
		for start := 0; start < len(train); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(train) {
				end = len(train)
			}
			batch = batch[:0]
			for _, i := range perm[start:end] {
				batch = append(batch, train[i])
			}
			m.Grad(grad, w, batch)
			applyStep(w, grad, w0, cfg)
		}
	}
	permPool.put(perm)
	batchPool.put(batch)
	tensor.PutVec(grad)
	return w
}

// GD runs steps iterations of full-batch gradient descent on the device
// subproblem and returns the resulting parameters. It is the deterministic
// local solver used to exercise the framework's solver-agnosticism.
func GD(m model.Model, train []data.Example, w0 []float64, cfg Config, steps int) []float64 {
	w := tensor.GetVec(len(w0))
	copy(w, w0)
	grad := tensor.GetVec(m.NumParams())
	for s := 0; s < steps; s++ {
		m.Grad(grad, w, train)
		applyStep(w, grad, w0, cfg)
	}
	tensor.PutVec(grad)
	return w
}

// applyStep performs w ← w − η·(grad + μ(w − w0) + correction) in place.
func applyStep(w, grad, w0 []float64, cfg Config) {
	eta := cfg.LearningRate
	mu := cfg.Mu
	corr := cfg.Correction
	for i := range w {
		g := grad[i] + mu*(w[i]-w0[i])
		if corr != nil {
			g += corr[i]
		}
		w[i] -= eta * g
	}
}

// SubproblemGrad writes ∇h(w; w0) = ∇F(w) + μ(w − w0) + correction over the
// full local training set into dst and returns the subproblem loss
// F(w) + (μ/2)‖w − w0‖² (+ ⟨correction, w⟩ when present).
func SubproblemGrad(dst []float64, m model.Model, train []data.Example, w, w0 []float64, cfg Config) float64 {
	loss := m.Grad(dst, w, train)
	for i := range dst {
		dst[i] += cfg.Mu * (w[i] - w0[i])
		if cfg.Correction != nil {
			dst[i] += cfg.Correction[i]
		}
	}
	loss += 0.5 * cfg.Mu * tensor.SqDist(w, w0)
	if cfg.Correction != nil {
		loss += tensor.Dot(cfg.Correction, w)
	}
	return loss
}

// Gamma measures the achieved inexactness of a local solution w relative
// to the starting point w0 (Definitions 1 and 2):
//
//	γ = ‖∇h(w; w0)‖ / ‖∇h(w0; w0)‖
//
// A device that did no work returns γ = 1; an exact minimizer returns
// γ = 0. When the starting point is already stationary (denominator ≈ 0)
// Gamma returns 0, matching the convention that no further progress is
// required there.
func Gamma(m model.Model, train []data.Example, w, w0 []float64, cfg Config) float64 {
	grad := tensor.GetVec(m.NumParams())
	defer tensor.PutVec(grad)
	SubproblemGrad(grad, m, train, w0, w0, cfg)
	denom := tensor.Norm2(grad)
	if denom < 1e-12 {
		return 0
	}
	SubproblemGrad(grad, m, train, w, w0, cfg)
	return tensor.Norm2(grad) / denom
}
