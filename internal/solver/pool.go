package solver

import (
	"sync"

	"fedprox/internal/data"
)

// slicePool recycles per-solve scratch slices (epoch permutations, batch
// gather buffers) the same way tensor's vector pool does: slice values
// shuttle inside reused pointer boxes so a Get/Put pair costs zero
// steady-state allocations. Within a run every solve draws same-sized
// scratch, so the pools converge on a handful of buffers and the
// BenchmarkDeviceDispatch allocs/op floor holds.
type slicePool[T any] struct {
	vals, boxes sync.Pool
}

// get returns a length-n slice with unspecified contents.
func (sp *slicePool[T]) get(n int) []T {
	if p, ok := sp.vals.Get().(*[]T); ok {
		v := *p
		*p = nil
		sp.boxes.Put(p)
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([]T, n)
}

// put returns a slice to the pool; the caller must not touch it after.
func (sp *slicePool[T]) put(v []T) {
	if cap(v) == 0 {
		return
	}
	v = v[:cap(v)]
	p, ok := sp.boxes.Get().(*[]T)
	if !ok {
		p = new([]T)
	}
	*p = v
	sp.vals.Put(p)
}

var (
	permPool  slicePool[int]
	batchPool slicePool[data.Example]
)
