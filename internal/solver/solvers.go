package solver

import (
	"math"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

// LocalSolver abstracts the optimizer a device runs on its subproblem.
// The FedProx framework is explicitly solver-agnostic — "the use of any
// local solver" is one of the four conditions its analysis covers
// (Section 3.2) — so the federated core accepts any implementation.
//
// Solve must return a fresh parameter vector (never w0 itself) after
// running `epochs` passes over train on the subproblem
// h(w; w0) = F(w) + (μ/2)‖w − w0‖² (+ ⟨correction, w⟩), drawing batch
// order from rng. Implementations must be safe for concurrent use: any
// per-solve state lives in Solve's frame.
type LocalSolver interface {
	// Name identifies the solver in experiment labels.
	Name() string
	// Solve runs the local optimization and returns the new parameters.
	Solve(m model.Model, train []data.Example, w0 []float64, cfg Config, epochs int, rng *frand.Source) []float64
}

// LocalSolver32 is the optional float32 fast path a LocalSolver may
// implement. The device runtime type-asserts for it when a run opts into
// tensor.F32: parameters arrive narrowed, the whole solve runs on the
// f32 kernels, and the returned pooled Vec32 feeds the codec encode
// directly — no widening copy between solve and wire. Solvers that don't
// implement it simply keep the float64 path under every precision.
type LocalSolver32 interface {
	LocalSolver
	// Solve32 is Solve on narrowed parameters, returning a pooled Vec32
	// (hand back with tensor.PutVec32 when not retained).
	Solve32(m model.Model32, train []data.Example, w0 tensor.Vec32, cfg Config, epochs int, rng *frand.Source) tensor.Vec32
}

// SGDSolver is plain mini-batch SGD — the paper's local solver for both
// FedAvg and FedProx ("we employ SGD as a local solver for FedProx, to
// draw a fair comparison with FedAvg").
type SGDSolver struct{}

// Name implements LocalSolver.
func (SGDSolver) Name() string { return "sgd" }

// Solve implements LocalSolver. Under cfg.Precision == tensor.F32 (with
// an f32-capable model) the solve itself runs on the float32 kernels and
// only the returned vector is widened — direct callers get the f64
// contract either way; the device runtime avoids even that widening by
// calling Solve32.
func (SGDSolver) Solve(m model.Model, train []data.Example, w0 []float64, cfg Config, epochs int, rng *frand.Source) []float64 {
	if m32, ok := F32Capable(m, cfg); ok {
		n0 := tensor.GetVec32(len(w0))
		tensor.Narrow(n0, w0)
		w32 := SGD32(m32, train, n0, cfg, epochs, rng)
		tensor.PutVec32(n0)
		out := tensor.GetVec(len(w0))
		tensor.Widen(out, w32)
		tensor.PutVec32(w32)
		return out
	}
	return SGD(m, train, w0, cfg, epochs, rng)
}

// Solve32 implements LocalSolver32.
func (SGDSolver) Solve32(m model.Model32, train []data.Example, w0 tensor.Vec32, cfg Config, epochs int, rng *frand.Source) tensor.Vec32 {
	return SGD32(m, train, w0, cfg, epochs, rng)
}

// GDSolver is full-batch gradient descent with StepsPerEpoch descent steps
// per nominal epoch, the deterministic solver used to exercise
// γ-inexactness bounds exactly.
type GDSolver struct {
	// StepsPerEpoch converts the epoch budget into descent steps; 0 means
	// 1 step per epoch.
	StepsPerEpoch int
}

// Name implements LocalSolver.
func (s GDSolver) Name() string { return "gd" }

// Solve implements LocalSolver.
func (s GDSolver) Solve(m model.Model, train []data.Example, w0 []float64, cfg Config, epochs int, rng *frand.Source) []float64 {
	per := s.StepsPerEpoch
	if per <= 0 {
		per = 1
	}
	if m32, ok := F32Capable(m, cfg); ok {
		n0 := tensor.GetVec32(len(w0))
		tensor.Narrow(n0, w0)
		w32 := GD32(m32, train, n0, cfg, epochs*per)
		tensor.PutVec32(n0)
		out := tensor.GetVec(len(w0))
		tensor.Widen(out, w32)
		tensor.PutVec32(w32)
		return out
	}
	return GD(m, train, w0, cfg, epochs*per)
}

// Solve32 implements LocalSolver32.
func (s GDSolver) Solve32(m model.Model32, train []data.Example, w0 tensor.Vec32, cfg Config, epochs int, rng *frand.Source) tensor.Vec32 {
	per := s.StepsPerEpoch
	if per <= 0 {
		per = 1
	}
	return GD32(m, train, w0, cfg, epochs*per)
}

// MomentumSolver is SGD with classical (heavy-ball) momentum.
type MomentumSolver struct {
	// Beta is the momentum coefficient (typically 0.9).
	Beta float64
}

// Name implements LocalSolver.
func (s MomentumSolver) Name() string { return "momentum" }

// Solve implements LocalSolver.
func (s MomentumSolver) Solve(m model.Model, train []data.Example, w0 []float64, cfg Config, epochs int, rng *frand.Source) []float64 {
	if epochs < 0 {
		panic("solver: negative epochs")
	}
	w := tensor.Clone(w0)
	grad := make([]float64, m.NumParams())
	vel := make([]float64, m.NumParams())
	batch := make([]data.Example, 0, cfg.BatchSize)
	for e := 0; e < epochs; e++ {
		for _, idx := range data.Batches(len(train), cfg.BatchSize, rng) {
			batch = gather(batch, train, idx)
			m.Grad(grad, w, batch)
			for i := range w {
				g := grad[i] + cfg.Mu*(w[i]-w0[i])
				if cfg.Correction != nil {
					g += cfg.Correction[i]
				}
				vel[i] = s.Beta*vel[i] + g
				w[i] -= cfg.LearningRate * vel[i]
			}
		}
	}
	return w
}

// AdagradSolver is SGD with per-coordinate Adagrad step-size adaptation.
type AdagradSolver struct {
	// Eps guards the denominator; 0 selects 1e-8.
	Eps float64
}

// Name implements LocalSolver.
func (s AdagradSolver) Name() string { return "adagrad" }

// Solve implements LocalSolver.
func (s AdagradSolver) Solve(m model.Model, train []data.Example, w0 []float64, cfg Config, epochs int, rng *frand.Source) []float64 {
	if epochs < 0 {
		panic("solver: negative epochs")
	}
	eps := s.Eps
	if eps == 0 {
		eps = 1e-8
	}
	w := tensor.Clone(w0)
	grad := make([]float64, m.NumParams())
	acc := make([]float64, m.NumParams())
	batch := make([]data.Example, 0, cfg.BatchSize)
	for e := 0; e < epochs; e++ {
		for _, idx := range data.Batches(len(train), cfg.BatchSize, rng) {
			batch = gather(batch, train, idx)
			m.Grad(grad, w, batch)
			for i := range w {
				g := grad[i] + cfg.Mu*(w[i]-w0[i])
				if cfg.Correction != nil {
					g += cfg.Correction[i]
				}
				acc[i] += g * g
				w[i] -= cfg.LearningRate * g / (math.Sqrt(acc[i]) + eps)
			}
		}
	}
	return w
}

// AdamSolver is SGD with Adam's bias-corrected first and second moment
// adaptation.
type AdamSolver struct {
	// Beta1, Beta2 are the moment decay rates; zeros select 0.9 / 0.999.
	Beta1, Beta2 float64
	// Eps guards the denominator; 0 selects 1e-8.
	Eps float64
}

// Name implements LocalSolver.
func (s AdamSolver) Name() string { return "adam" }

// Solve implements LocalSolver.
func (s AdamSolver) Solve(m model.Model, train []data.Example, w0 []float64, cfg Config, epochs int, rng *frand.Source) []float64 {
	if epochs < 0 {
		panic("solver: negative epochs")
	}
	b1, b2, eps := s.Beta1, s.Beta2, s.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	w := tensor.Clone(w0)
	grad := make([]float64, m.NumParams())
	m1 := make([]float64, m.NumParams())
	m2 := make([]float64, m.NumParams())
	batch := make([]data.Example, 0, cfg.BatchSize)
	t := 0
	p1, p2 := 1.0, 1.0 // running powers of b1, b2 for bias correction
	for e := 0; e < epochs; e++ {
		for _, idx := range data.Batches(len(train), cfg.BatchSize, rng) {
			batch = gather(batch, train, idx)
			m.Grad(grad, w, batch)
			t++
			p1 *= b1
			p2 *= b2
			for i := range w {
				g := grad[i] + cfg.Mu*(w[i]-w0[i])
				if cfg.Correction != nil {
					g += cfg.Correction[i]
				}
				m1[i] = b1*m1[i] + (1-b1)*g
				m2[i] = b2*m2[i] + (1-b2)*g*g
				mhat := m1[i] / (1 - p1)
				vhat := m2[i] / (1 - p2)
				w[i] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + eps)
			}
		}
	}
	return w
}

// gather copies the indexed examples into dst (reusing its storage).
func gather(dst, train []data.Example, idx []int) []data.Example {
	dst = dst[:0]
	for _, i := range idx {
		dst = append(dst, train[i])
	}
	return dst
}
