package solver

import (
	"math"
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
	"fedprox/internal/tensor"
)

// relDrift returns ‖a−b‖/(‖b‖+1), a relative L2 distance that stays
// meaningful near the origin.
func relDrift(a tensor.Vec32, b []float64) float64 {
	var num, den float64
	for i := range b {
		d := float64(a[i]) - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	return math.Sqrt(num) / (math.Sqrt(den) + 1)
}

// TestF32DriftAgainstF64 runs the float32 solve against the float64
// reference across the hyperparameter corners the fast path must not
// distort: the plain subproblem, a prox-dominated one, a mu so small
// the proximal pull sits near float32 resolution, and full-batch
// gradient descent. Identical seeds mean identical batch schedules, so
// the only divergence is arithmetic width — which must stay rounding
// noise, not a different trajectory.
func TestF32DriftAgainstF64(t *testing.T) {
	rng := frand.New(7)
	m := linear.New(4, 2)
	train := trainSet(rng, 60)
	w0 := rng.NormVec(make([]float64, m.NumParams()), 0, 0.5)
	w032 := make(tensor.Vec32, len(w0))
	tensor.Narrow(w032, w0)

	cases := []struct {
		name   string
		cfg    Config
		epochs int
		tol    float64
	}{
		{"plain sgd", Config{LearningRate: 0.1, BatchSize: 10}, 3, 1e-4},
		{"prox mu=1", Config{LearningRate: 0.1, BatchSize: 10, Mu: 1}, 3, 1e-4},
		{"prox dominated mu=10", Config{LearningRate: 0.05, BatchSize: 10, Mu: 10}, 3, 1e-4},
		// The proximal pull mu·(w−w0) sits ~7 decimal orders below the
		// data gradient here — at the edge of float32 resolution. The
		// trajectories must still agree: a tiny mu may round to a plain
		// SGD step, never to garbage.
		{"tiny mu=1e-8", Config{LearningRate: 0.1, BatchSize: 10, Mu: 1e-8}, 3, 1e-4},
		{"full batch", Config{LearningRate: 0.1, BatchSize: len(train), Mu: 1}, 5, 1e-4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w64 := SGD(m, train, w0, tc.cfg, tc.epochs, frand.New(42))
			w32 := SGD32(m, train, w032, tc.cfg, tc.epochs, frand.New(42))
			if d := relDrift(w32, w64); d > tc.tol {
				t.Fatalf("f32 solution drifted %.2e from f64 (tol %.0e)", d, tc.tol)
			}
			// The γ-probe must price both solutions the same: it is the
			// device's claim about how inexact its work was, and the
			// coordinator's partial-work policy keys off it.
			g64 := Gamma(m, train, w64, w0, tc.cfg)
			g32 := Gamma32(m, train, w32, w032, tc.cfg)
			if math.Abs(g64-g32) > 1e-3 {
				t.Fatalf("gamma drifted: f64 %.6f vs f32 %.6f", g64, g32)
			}
		})
	}
}

// TestF32GammaZeroGradient probes the γ edge case the division hides:
// a training set whose gradient at w0 is exactly zero (two copies of
// the same input with opposite labels cancel at w = 0). Both widths
// must agree on the degenerate value rather than one of them dividing
// by a denormal.
func TestF32GammaZeroGradient(t *testing.T) {
	m := linear.New(3, 2)
	x := []float64{0.5, -1, 2}
	train := []data.Example{{X: x, Y: 0}, {X: x, Y: 1}}
	w0 := make([]float64, m.NumParams())
	w032 := make(tensor.Vec32, len(w0))

	for _, mu := range []float64{0, 1e-8, 1} {
		cfg := Config{LearningRate: 0.1, BatchSize: 2, Mu: mu}
		g64 := Gamma(m, train, w0, w0, cfg)
		g32 := Gamma32(m, train, w032, w032, cfg)
		if math.IsNaN(g64) || math.IsNaN(g32) {
			t.Fatalf("mu=%g: gamma is NaN at a zero-gradient start (f64 %v, f32 %v)", mu, g64, g32)
		}
		if math.Abs(g64-g32) > 1e-6 {
			t.Fatalf("mu=%g: zero-gradient gamma disagrees: f64 %v vs f32 %v", mu, g64, g32)
		}
	}
}

// TestF32SubproblemGradMatches checks the h_k gradient — data gradient
// plus prox pull — agrees between widths coordinate-wise, including
// when the prox term is the only non-zero part (zero data gradient,
// w far from w0).
func TestF32SubproblemGradMatches(t *testing.T) {
	rng := frand.New(9)
	m := linear.New(4, 2)
	train := trainSet(rng, 40)
	w0 := rng.NormVec(make([]float64, m.NumParams()), 0, 0.5)
	w := rng.NormVec(make([]float64, m.NumParams()), 0, 0.5)
	w032 := make(tensor.Vec32, len(w0))
	w32 := make(tensor.Vec32, len(w))
	tensor.Narrow(w032, w0)
	tensor.Narrow(w32, w)

	for _, mu := range []float64{0, 1e-8, 1, 10} {
		cfg := Config{Mu: mu}
		g64 := make([]float64, len(w))
		SubproblemGrad(g64, m, train, w, w0, cfg)
		g32 := make(tensor.Vec32, len(w))
		SubproblemGrad32(g32, m, train, w32, w032, cfg)
		if d := relDrift(g32, g64); d > 1e-5 {
			t.Fatalf("mu=%g: subproblem gradient drifted %.2e", mu, d)
		}
	}

	// Pure prox: duplicate examples with opposite labels at input zero
	// have zero data gradient everywhere except the bias, leaving the
	// prox pull as the dominant term.
	zeroX := make([]float64, 4)
	sym := []data.Example{{X: zeroX, Y: 0}, {X: zeroX, Y: 1}}
	cfg := Config{Mu: 2}
	g64 := make([]float64, len(w))
	SubproblemGrad(g64, m, sym, w, w0, cfg)
	g32 := make(tensor.Vec32, len(w))
	SubproblemGrad32(g32, m, sym, w32, w032, cfg)
	if d := relDrift(g32, g64); d > 1e-5 {
		t.Fatalf("prox-only gradient drifted %.2e", d)
	}
}
