package solver

import (
	"time"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
)

// Delayed wraps a LocalSolver with wall-clock latency: Solve sleeps
// Delay, then delegates. It simulates a device whose hardware — not its
// data or its optimizer — is slow, so results are identical to the
// inner solver's, just late. The fednet straggler experiments and tests
// use it to build fleets with real (not simulated-epoch) heterogeneity.
type Delayed struct {
	Inner LocalSolver
	Delay time.Duration
}

// Name implements LocalSolver.
func (s Delayed) Name() string { return s.Inner.Name() }

// Solve implements LocalSolver.
func (s Delayed) Solve(m model.Model, train []data.Example, w0 []float64, cfg Config, epochs int, rng *frand.Source) []float64 {
	time.Sleep(s.Delay)
	return s.Inner.Solve(m, train, w0, cfg, epochs, rng)
}
