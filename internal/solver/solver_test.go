package solver

import (
	"math"
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
	"fedprox/internal/tensor"
)

func trainSet(rng *frand.Source, n int) []data.Example {
	out := make([]data.Example, n)
	for i := range out {
		x := rng.NormVec(make([]float64, 4), 0, 1)
		y := 0
		if x[0]+x[1] > 0 {
			y = 1
		}
		out[i] = data.Example{X: x, Y: y}
	}
	return out
}

func TestSGDReducesLocalLoss(t *testing.T) {
	rng := frand.New(1)
	m := linear.New(4, 2)
	train := trainSet(rng, 60)
	w0 := make([]float64, m.NumParams())
	cfg := Config{LearningRate: 0.2, BatchSize: 10}
	w := SGD(m, train, w0, cfg, 10, rng.Split("batches"))
	if got, want := m.Loss(w, train), m.Loss(w0, train); got >= want {
		t.Fatalf("SGD did not reduce loss: %g >= %g", got, want)
	}
}

func TestSGDZeroEpochsReturnsStart(t *testing.T) {
	rng := frand.New(2)
	m := linear.New(4, 2)
	train := trainSet(rng, 20)
	w0 := rng.NormVec(make([]float64, m.NumParams()), 0, 1)
	w := SGD(m, train, w0, Config{LearningRate: 0.1, BatchSize: 5}, 0, rng)
	for i := range w {
		if w[i] != w0[i] {
			t.Fatal("zero epochs changed parameters")
		}
	}
	// And it must be a copy, not the same slice.
	w[0] = 123
	if w0[0] == 123 {
		t.Fatal("SGD returned the input slice")
	}
}

func TestSGDDeterministicUnderSeed(t *testing.T) {
	rng := frand.New(3)
	m := linear.New(4, 2)
	train := trainSet(rng, 40)
	w0 := make([]float64, m.NumParams())
	cfg := Config{LearningRate: 0.1, BatchSize: 7}
	a := SGD(m, train, w0, cfg, 3, frand.New(77))
	b := SGD(m, train, w0, cfg, 3, frand.New(77))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SGD not deterministic under equal batch seeds")
		}
	}
}

// TestProximalTermPullsTowardStart verifies the defining property of the
// FedProx subproblem: larger μ keeps the local solution closer to wᵗ.
func TestProximalTermPullsTowardStart(t *testing.T) {
	rng := frand.New(5)
	m := linear.New(4, 2)
	train := trainSet(rng, 60)
	w0 := make([]float64, m.NumParams())
	// Keep η·μ < 2 so the proximal update itself is stable.
	dist := func(mu float64) float64 {
		cfg := Config{LearningRate: 0.1, BatchSize: 10, Mu: mu}
		w := SGD(m, train, w0, cfg, 20, frand.New(9))
		return tensor.SqDist(w, w0)
	}
	d0, d1, d5 := dist(0), dist(1), dist(5)
	if !(d5 < d1 && d1 < d0) {
		t.Fatalf("proximal pull not monotone: mu=0 %g, mu=1 %g, mu=5 %g", d0, d1, d5)
	}
}

func TestGDConvergesOnConvexProblem(t *testing.T) {
	rng := frand.New(7)
	m := linear.New(4, 2)
	train := trainSet(rng, 60)
	w0 := make([]float64, m.NumParams())
	cfg := Config{LearningRate: 0.5, BatchSize: 10}
	w := GD(m, train, w0, cfg, 100)
	grad := make([]float64, m.NumParams())
	m.Grad(grad, w, train)
	if n := tensor.Norm2(grad); n > 0.05 {
		t.Fatalf("GD gradient norm after 100 steps = %g", n)
	}
}

func TestGammaBounds(t *testing.T) {
	rng := frand.New(9)
	m := linear.New(4, 2)
	train := trainSet(rng, 60)
	w0 := rng.NormVec(make([]float64, m.NumParams()), 0, 0.5)
	cfg := Config{LearningRate: 0.2, BatchSize: 10, Mu: 0.1}
	// No work: γ = 1 by definition.
	if g := Gamma(m, train, w0, w0, cfg); math.Abs(g-1) > 1e-12 {
		t.Fatalf("Gamma(no work) = %g, want 1", g)
	}
	// Substantial work: γ should drop well below 1.
	w := GD(m, train, w0, cfg, 200)
	if g := Gamma(m, train, w, w0, cfg); g > 0.5 {
		t.Fatalf("Gamma after 200 GD steps = %g, want < 0.5", g)
	}
}

func TestGammaMonotoneInWork(t *testing.T) {
	rng := frand.New(11)
	m := linear.New(4, 2)
	train := trainSet(rng, 60)
	w0 := make([]float64, m.NumParams())
	cfg := Config{LearningRate: 0.1, BatchSize: 10, Mu: 1}
	g5 := Gamma(m, train, GD(m, train, w0, cfg, 5), w0, cfg)
	g50 := Gamma(m, train, GD(m, train, w0, cfg, 50), w0, cfg)
	if g50 >= g5 {
		t.Fatalf("more local work did not reduce gamma: 5 steps %g, 50 steps %g", g5, g50)
	}
}

func TestGammaStationaryStart(t *testing.T) {
	m := linear.New(2, 2)
	// A single example with symmetric classes at w=0 is not stationary, so
	// construct stationarity with an empty-gradient case: two examples
	// with opposite features and opposite labels cancel at w=0.
	train := []data.Example{
		{X: []float64{1, 0}, Y: 0},
		{X: []float64{-1, 0}, Y: 1},
	}
	w0 := make([]float64, m.NumParams())
	g := make([]float64, m.NumParams())
	SubproblemGrad(g, m, train, w0, w0, Config{})
	if tensor.Norm2(g) > 1e-12 {
		t.Skipf("construction not stationary (|g|=%g); skip", tensor.Norm2(g))
	}
	if got := Gamma(m, train, w0, w0, Config{}); got != 0 {
		t.Fatalf("Gamma at stationary start = %g, want 0", got)
	}
}

func TestSubproblemGradIncludesProx(t *testing.T) {
	rng := frand.New(13)
	m := linear.New(3, 2)
	train := trainSet(rng, 20)[:0:0]
	train = append(train, data.Example{X: []float64{1, 0, 0}, Y: 0})
	w0 := make([]float64, m.NumParams())
	w := rng.NormVec(make([]float64, m.NumParams()), 0, 1)
	gPlain := make([]float64, m.NumParams())
	m.Grad(gPlain, w, train)
	gProx := make([]float64, m.NumParams())
	lossProx := SubproblemGrad(gProx, m, train, w, w0, Config{Mu: 2})
	for i := range gProx {
		want := gPlain[i] + 2*(w[i]-w0[i])
		if math.Abs(gProx[i]-want) > 1e-12 {
			t.Fatalf("prox grad[%d] = %g, want %g", i, gProx[i], want)
		}
	}
	wantLoss := m.Loss(w, train) + tensor.SqDist(w, w0)
	if math.Abs(lossProx-wantLoss) > 1e-12 {
		t.Fatalf("prox loss = %g, want %g", lossProx, wantLoss)
	}
}

func TestCorrectionTermApplied(t *testing.T) {
	rng := frand.New(15)
	m := linear.New(3, 2)
	train := []data.Example{{X: []float64{1, 1, 1}, Y: 1}}
	w0 := make([]float64, m.NumParams())
	corr := rng.NormVec(make([]float64, m.NumParams()), 0, 1)
	// One GD step with a correction equals one plain step minus η·corr.
	cfgPlain := Config{LearningRate: 0.1, BatchSize: 1}
	cfgCorr := Config{LearningRate: 0.1, BatchSize: 1, Correction: corr}
	wPlain := GD(m, train, w0, cfgPlain, 1)
	wCorr := GD(m, train, w0, cfgCorr, 1)
	for i := range wCorr {
		want := wPlain[i] - 0.1*corr[i]
		if math.Abs(wCorr[i]-want) > 1e-12 {
			t.Fatalf("correction step[%d] = %g, want %g", i, wCorr[i], want)
		}
	}
}

func TestSGDPanicsOnNegativeEpochs(t *testing.T) {
	m := linear.New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative epochs did not panic")
		}
	}()
	SGD(m, nil, make([]float64, m.NumParams()), Config{LearningRate: 1, BatchSize: 1}, -1, frand.New(1))
}

// TestMuStrongConvexityEffect: with μ large (and η·μ < 2 so the proximal
// update is stable), the subproblem is strongly convex around w0 and the
// solution stays near the start even after many epochs.
func TestMuStrongConvexityEffect(t *testing.T) {
	rng := frand.New(17)
	m := linear.New(4, 2)
	train := trainSet(rng, 40)
	w0 := make([]float64, m.NumParams())
	w := SGD(m, train, w0, Config{LearningRate: 0.1, BatchSize: 5, Mu: 5}, 50, frand.New(3))
	if d := math.Sqrt(tensor.SqDist(w, w0)); d > 1 {
		t.Fatalf("large-mu solution wandered %g from start", d)
	}
}
