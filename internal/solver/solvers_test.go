package solver

import (
	"testing"

	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
	"fedprox/internal/tensor"
)

func allSolvers() []LocalSolver {
	return []LocalSolver{
		SGDSolver{},
		GDSolver{StepsPerEpoch: 3},
		MomentumSolver{Beta: 0.9},
		AdagradSolver{},
		AdamSolver{},
	}
}

func TestSolverNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range allSolvers() {
		name := s.Name()
		if name == "" || seen[name] {
			t.Fatalf("solver name %q empty or duplicated", name)
		}
		seen[name] = true
	}
}

// TestAllSolversReduceLoss is the framework's solver-agnosticism contract:
// every local solver must make progress on the local subproblem.
func TestAllSolversReduceLoss(t *testing.T) {
	rng := frand.New(41)
	m := linear.New(4, 2)
	train := trainSet(rng, 80)
	w0 := make([]float64, m.NumParams())
	before := m.Loss(w0, train)
	for _, s := range allSolvers() {
		lr := 0.2
		if s.Name() == "adagrad" || s.Name() == "adam" {
			lr = 0.05 // adaptive methods want smaller nominal rates
		}
		cfg := Config{LearningRate: lr, BatchSize: 10}
		w := s.Solve(m, train, w0, cfg, 8, frand.New(5))
		after := m.Loss(w, train)
		if after >= before {
			t.Errorf("%s: loss %g -> %g (no progress)", s.Name(), before, after)
		}
	}
}

// TestAllSolversRespectProx: for every solver, adding μ must pull the
// solution toward the starting point.
func TestAllSolversRespectProx(t *testing.T) {
	rng := frand.New(43)
	m := linear.New(4, 2)
	train := trainSet(rng, 80)
	w0 := make([]float64, m.NumParams())
	for _, s := range allSolvers() {
		lr := 0.1
		if s.Name() == "adagrad" || s.Name() == "adam" {
			lr = 0.05
		}
		dist := func(mu float64) float64 {
			cfg := Config{LearningRate: lr, BatchSize: 10, Mu: mu}
			w := s.Solve(m, train, w0, cfg, 10, frand.New(5))
			return tensor.SqDist(w, w0)
		}
		free, prox := dist(0), dist(5)
		if prox >= free {
			t.Errorf("%s: mu=5 distance %g not below mu=0 distance %g", s.Name(), prox, free)
		}
	}
}

func TestAllSolversReturnFreshVector(t *testing.T) {
	rng := frand.New(47)
	m := linear.New(4, 2)
	train := trainSet(rng, 20)
	w0 := rng.NormVec(make([]float64, m.NumParams()), 0, 1)
	orig := tensor.Clone(w0)
	for _, s := range allSolvers() {
		w := s.Solve(m, train, w0, Config{LearningRate: 0.1, BatchSize: 5}, 2, frand.New(5))
		for i := range w0 {
			if w0[i] != orig[i] {
				t.Fatalf("%s mutated the input parameters", s.Name())
			}
		}
		w[0] = 1e9
		if w0[0] == 1e9 {
			t.Fatalf("%s returned the input slice", s.Name())
		}
	}
}

func TestSolversDeterministic(t *testing.T) {
	rng := frand.New(53)
	m := linear.New(4, 2)
	train := trainSet(rng, 40)
	w0 := make([]float64, m.NumParams())
	for _, s := range allSolvers() {
		cfg := Config{LearningRate: 0.1, BatchSize: 7, Mu: 0.5}
		a := s.Solve(m, train, w0, cfg, 3, frand.New(77))
		b := s.Solve(m, train, w0, cfg, 3, frand.New(77))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s not deterministic under equal seeds", s.Name())
			}
		}
	}
}

func TestMomentumAcceleratesOnConvex(t *testing.T) {
	rng := frand.New(59)
	m := linear.New(4, 2)
	train := trainSet(rng, 80)
	w0 := make([]float64, m.NumParams())
	cfg := Config{LearningRate: 0.05, BatchSize: 80} // full batch: isolate dynamics
	plain := SGDSolver{}.Solve(m, train, w0, cfg, 10, frand.New(5))
	mom := MomentumSolver{Beta: 0.9}.Solve(m, train, w0, cfg, 10, frand.New(5))
	if m.Loss(mom, train) >= m.Loss(plain, train) {
		t.Fatalf("momentum (%g) no faster than plain SGD (%g) on convex full-batch",
			m.Loss(mom, train), m.Loss(plain, train))
	}
}

func TestGDSolverStepsPerEpochDefault(t *testing.T) {
	rng := frand.New(61)
	m := linear.New(4, 2)
	train := trainSet(rng, 30)
	w0 := make([]float64, m.NumParams())
	cfg := Config{LearningRate: 0.1, BatchSize: 10}
	a := GDSolver{}.Solve(m, train, w0, cfg, 4, nil)
	b := GD(m, train, w0, cfg, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GDSolver default differs from GD with steps=epochs")
		}
	}
}

func TestCorrectionRespectedByAllSolvers(t *testing.T) {
	rng := frand.New(67)
	m := linear.New(4, 2)
	train := trainSet(rng, 30)
	w0 := make([]float64, m.NumParams())
	corr := rng.NormVec(make([]float64, m.NumParams()), 0, 1)
	for _, s := range allSolvers() {
		cfg := Config{LearningRate: 0.05, BatchSize: 10}
		plain := s.Solve(m, train, w0, cfg, 2, frand.New(5))
		cfg.Correction = corr
		corrected := s.Solve(m, train, w0, cfg, 2, frand.New(5))
		same := true
		for i := range plain {
			if plain[i] != corrected[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s ignored the correction term", s.Name())
		}
	}
}

func TestNegativeEpochsPanicAcrossSolvers(t *testing.T) {
	m := linear.New(2, 2)
	for _, s := range allSolvers() {
		if s.Name() == "gd" {
			continue // GD takes a step count derived from epochs*per, guarded in GD
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative epochs did not panic", s.Name())
				}
			}()
			s.Solve(m, nil, make([]float64, m.NumParams()), Config{LearningRate: 1, BatchSize: 1}, -1, frand.New(1))
		}()
	}
}
