// Float32 local solves: the narrow twins of SGD/GD plus the f32
// subproblem gradient and γ-probe. The contract mirrors the dispatch
// boundary: parameters arrive already narrowed (tensor.Vec32), every
// step — stochastic gradient, proximal term, γ measurement — runs in
// float32, and the caller widens exactly once wherever the result
// crosses back into f64 aggregation math.

package solver

import (
	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

// SGD32 runs epochs passes of mini-batch SGD on the device subproblem in
// float32, starting from the narrowed w0, and returns the resulting
// parameters as a pooled Vec32 (hand back with tensor.PutVec32 when not
// retained). Batch order consumes exactly the rng draws SGD would, so a
// f32 run is comparable step-for-step with its f64 twin.
//
// cfg.Correction must be nil: the FedDane correction stays on the
// float64 reference path.
func SGD32(m model.Model32, train []data.Example, w0 tensor.Vec32, cfg Config, epochs int, rng *frand.Source) tensor.Vec32 {
	if epochs < 0 {
		panic("solver: negative epochs")
	}
	if cfg.BatchSize <= 0 {
		panic("data: non-positive batch size")
	}
	if cfg.Correction != nil {
		panic("solver: SGD32 does not support Correction")
	}
	w := tensor.GetVec32(len(w0))
	copy(w, w0)
	grad := tensor.GetVec32(m.NumParams())
	batch := batchPool.get(cfg.BatchSize)[:0]
	perm := permPool.get(len(train))
	for e := 0; e < epochs; e++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(perm)
		for start := 0; start < len(train); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(train) {
				end = len(train)
			}
			batch = batch[:0]
			for _, i := range perm[start:end] {
				batch = append(batch, train[i])
			}
			m.Grad32(grad, w, batch)
			applyStep32(w, grad, w0, cfg)
		}
	}
	permPool.put(perm)
	batchPool.put(batch)
	tensor.PutVec32(grad)
	return w
}

// GD32 runs steps iterations of full-batch gradient descent in float32
// and returns the resulting parameters as a pooled Vec32.
func GD32(m model.Model32, train []data.Example, w0 tensor.Vec32, cfg Config, steps int) tensor.Vec32 {
	if cfg.Correction != nil {
		panic("solver: GD32 does not support Correction")
	}
	w := tensor.GetVec32(len(w0))
	copy(w, w0)
	grad := tensor.GetVec32(m.NumParams())
	for s := 0; s < steps; s++ {
		m.Grad32(grad, w, train)
		applyStep32(w, grad, w0, cfg)
	}
	tensor.PutVec32(grad)
	return w
}

// applyStep32 performs w ← w − η·(grad + μ(w − w0)) in place.
func applyStep32(w, grad, w0 tensor.Vec32, cfg Config) {
	eta := float32(cfg.LearningRate)
	mu := float32(cfg.Mu)
	for i := range w {
		w[i] -= eta * (grad[i] + mu*(w[i]-w0[i]))
	}
}

// SubproblemGrad32 writes ∇h(w; w0) = ∇F(w) + μ(w − w0) over the full
// local training set into dst and returns the subproblem loss
// F(w) + (μ/2)‖w − w0‖², all in float32.
func SubproblemGrad32(dst tensor.Vec32, m model.Model32, train []data.Example, w, w0 tensor.Vec32, cfg Config) float32 {
	if cfg.Correction != nil {
		panic("solver: SubproblemGrad32 does not support Correction")
	}
	loss := m.Grad32(dst, w, train)
	mu := float32(cfg.Mu)
	if mu != 0 {
		for i := range dst {
			dst[i] += mu * (w[i] - w0[i])
		}
		loss += 0.5 * mu * tensor.SqDist32(w, w0)
	}
	return loss
}

// Gamma32 measures γ-inexactness on the float32 path, mirroring Gamma:
// γ = ‖∇h(w; w0)‖/‖∇h(w0; w0)‖, with 0 when the start is already
// stationary. Norms are finished in float64, so the denominator guard
// keeps the same scale as the f64 probe.
func Gamma32(m model.Model32, train []data.Example, w, w0 tensor.Vec32, cfg Config) float64 {
	grad := tensor.GetVec32(m.NumParams())
	defer tensor.PutVec32(grad)
	SubproblemGrad32(grad, m, train, w0, w0, cfg)
	denom := tensor.Norm232(grad)
	if denom < 1e-12 {
		return 0
	}
	SubproblemGrad32(grad, m, train, w, w0, cfg)
	return tensor.Norm232(grad) / denom
}

// F32Capable reports whether a (model, config) pair can take the float32
// fast path: the run opted in, the model implements the batched f32
// gradient, and no FedDane correction is in play.
func F32Capable(m model.Model, cfg Config) (model.Model32, bool) {
	if cfg.Precision != tensor.F32 || cfg.Correction != nil {
		return nil, false
	}
	m32, ok := m.(model.Model32)
	if !ok {
		return nil, false
	}
	return m32, true
}
