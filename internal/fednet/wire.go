// Package fednet runs FedProx over real network connections: a
// coordinator (Server) that owns only the global model, and workers that
// own the data — the deployment shape federated learning actually has,
// where raw examples never leave the device.
//
// The protocol is length-unframed gob over TCP. Each worker registers the
// devices (shards) it hosts and the update codecs it supports; the
// coordinator answers with a Welcome carrying the codec specs the
// deployment will use (negotiated at Hello time). Every round the
// coordinator selects devices, ships the encoded global parameters with
// the round's subproblem hyperparameters and a batch-order seed, and
// aggregates the decoded returned models. Evaluation is also distributed:
// workers report per-device loss and accuracy sums and the coordinator
// combines them, so the server never touches data.
//
// The environment streams (selection, stragglers, batch order, init)
// come from the shared core.Coordinator — this package is a transport
// driver, not a protocol implementation — so a fednet run with the same
// seed and configuration reproduces the simulator's trajectory bit for
// bit by construction (asserted in fednet_test.go).
//
// Aggregation disciplines: under the default synchronous protocol the
// coordinator keeps at most one exchange outstanding per connection
// (strict request/response). Under core.AsyncTotal / core.Buffered it
// pipelines TrainRequests — several may be outstanding on one
// connection, though never more than one per device — and a per-conn
// reader routes the interleaved replies. Workers therefore serve every
// TrainRequest in its own goroutine; replies carry the model-version
// stamp of the broadcast they trained from so the coordinator can damp
// stale contributions.
package fednet

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fedprox/internal/comm"
	"fedprox/internal/core"
)

// DeviceInfo describes one shard a worker hosts.
type DeviceInfo struct {
	// ID is the global device index (shard ID).
	ID int
	// TrainSize is n_k, used for sampling weights and aggregation.
	TrainSize int
}

// Hello is the worker's registration message.
type Hello struct {
	// Devices lists every shard this worker hosts.
	Devices []DeviceInfo
	// Codecs lists the update codecs this worker supports. The
	// coordinator refuses the deployment (via Welcome.Err) if its
	// configured codec is not offered. An empty list offers only "raw".
	Codecs []string
	// Precisions lists the arithmetic widths this worker can execute
	// ("f64", "f32"). The coordinator refuses the deployment if its
	// configured precision is not offered. An empty list offers only
	// "f64" — the pre-precision wire vocabulary, so old workers remain
	// compatible with full-width deployments.
	Precisions []string
}

// Welcome is the coordinator's reply to a Hello: the codec negotiation
// result every endpoint must honour for the rest of the session.
type Welcome struct {
	// Downlink and Uplink are the resolved per-direction codec specs
	// (seed included), shared so worker-side streams match the
	// coordinator's and the simulator's.
	Downlink comm.Spec
	Uplink   comm.Spec
	// EvalPrev, when non-nil, is the shared evaluation link's current
	// chain base. A worker re-admitted mid-run (asynchronous deployments
	// accept reconnects) seeds its eval link with it so the next chained
	// eval broadcast decodes in lockstep; workers joining at round 0
	// receive nil.
	EvalPrev []float64
	// Err, when non-empty, aborts the session (e.g. codec not offered).
	Err string
}

// TrainRequest asks a worker to run one local solve.
type TrainRequest struct {
	// Round is the communication round index. Under asynchronous
	// aggregation it is the model-version milestone in effect at
	// dispatch (versions elapsed / versions-per-round).
	Round int
	// Version stamps the global model version the broadcast was encoded
	// at. The asynchronous coordinator computes each reply's staleness as
	// the difference between its current version and this stamp; the
	// synchronous coordinator stamps the round index (one version per
	// round).
	Version int
	// Device is the shard to train on.
	Device int
	// Update is the encoded broadcast global model wᵗ for this device's
	// downlink, decoded against the device's last decoded broadcast.
	Update comm.Update
	// Epochs is the device's epoch target for this round.
	Epochs int
	// EpochBudget is the device-side compute budget in epochs (0 =
	// unlimited): the worker's device runtime truncates its solve to
	// min(Epochs, EpochBudget) and reports the realized work in
	// TrainReply.EpochsDone (core.Config.DeviceBudget).
	EpochBudget int
	// Mu, LearningRate, BatchSize parameterize the local subproblem.
	Mu           float64
	LearningRate float64
	BatchSize    int
	// BatchSeed is the state of the device's batch-order stream.
	BatchSeed uint64
	// PrivacyTag seeds the device-side DP noise stream for this
	// dispatch: the round (synchronous) or the dispatch sequence
	// (asynchronous). Without it a worker's mechanism would reuse one
	// noise vector every round, letting an observer difference two
	// uplinks to cancel the noise exactly.
	PrivacyTag int
}

// TrainReply returns the local solution.
type TrainReply struct {
	Round int
	// Version echoes TrainRequest.Version: the model version the local
	// solve started from.
	Version int
	Device  int
	// Update is the encoded local solution for the device's uplink,
	// decoded against the broadcast view the device trained from.
	Update comm.Update
	// EpochsDone is the local epochs the device actually ran — less
	// than Epochs when TrainRequest.EpochBudget truncated the solve.
	EpochsDone int
	// Err carries a worker-side failure description ("" on success).
	Err string
}

// EvalRequest asks a worker to evaluate the global model on every shard
// it hosts. The parameters travel encoded on the deployment's shared
// eval link (downlink codec, direction comm.Eval): every worker decodes
// the same chained stream, so all evaluators hold the identical view —
// and so does the simulator under the same seed.
type EvalRequest struct {
	// Seq matches replies to requests. Eval broadcasts are strictly
	// sequential per deployment; the chained eval link depends on it.
	Seq int
	// Update is the encoded global model on the shared eval link.
	Update comm.Update
}

// DeviceEval is one shard's contribution to the global metrics — the
// core device runtime's type, shared so the wire and the runtime cannot
// disagree on what an evaluation reports.
type DeviceEval = core.DeviceEval

// EvalReply returns per-device metric contributions.
type EvalReply struct {
	Seq     int
	Devices []DeviceEval
	Err     string
}

// Shutdown tells a worker to exit its serve loop.
type Shutdown struct{}

// Envelope is the single wire type; exactly one field is non-nil.
type Envelope struct {
	Hello        *Hello
	Welcome      *Welcome
	TrainRequest *TrainRequest
	TrainReply   *TrainReply
	EvalRequest  *EvalRequest
	EvalReply    *EvalReply
	Shutdown     *Shutdown
}

// meteredConn counts the raw bytes crossing a net.Conn, so the
// coordinator can report actual serialized wire traffic (gob framing and
// evaluation messages included) alongside the codecs' analytic
// accounting.
type meteredConn struct {
	net.Conn
	read, written *atomic.Int64
}

func (m meteredConn) Read(p []byte) (int, error) {
	n, err := m.Conn.Read(p)
	m.read.Add(int64(n))
	return n, err
}

func (m meteredConn) Write(p []byte) (int, error) {
	n, err := m.Conn.Write(p)
	m.written.Add(int64(n))
	return n, err
}

// conn wraps a net.Conn with gob codecs and two locks: mu guards the
// encoder for interleaved sends, and rtMu serializes whole
// request/response exchanges so multiple device goroutines can share one
// worker connection. sendTimeout, when positive, bounds each send —
// without it a peer that stops reading (full TCP buffers) would block
// the sender in gob Encode forever.
type conn struct {
	raw         net.Conn
	enc         *gob.Encoder
	dec         *gob.Decoder
	sendTimeout time.Duration
	mu          sync.Mutex // guards enc
	rtMu        sync.Mutex // serializes request/response round-trips
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

func (c *conn) send(e Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sendTimeout > 0 {
		_ = c.raw.SetWriteDeadline(time.Now().Add(c.sendTimeout))
		defer c.raw.SetWriteDeadline(time.Time{})
	}
	if err := c.enc.Encode(&e); err != nil {
		return fmt.Errorf("fednet: send: %w", err)
	}
	return nil
}

// recv decodes the next envelope. Callers own sequencing: the protocol is
// strictly request/response per connection from the coordinator's side.
func (c *conn) recv() (Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return Envelope{}, fmt.Errorf("fednet: recv: %w", err)
	}
	return e, nil
}

// armRecvDeadline sets (d > 0) or clears (d <= 0) the connection's read
// deadline — the coordinator's guard against workers that never reply.
func (c *conn) armRecvDeadline(d time.Duration) {
	if d <= 0 {
		_ = c.raw.SetReadDeadline(time.Time{})
		return
	}
	_ = c.raw.SetReadDeadline(time.Now().Add(d))
}

func (c *conn) close() error { return c.raw.Close() }
