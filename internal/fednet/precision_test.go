package fednet

import (
	"net"
	"sync"
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/tensor"
)

// TestF32MatchesSimulatorOverLoopback: an f32 deployment over real TCP
// reproduces the in-process simulator's f32 trajectory bit for bit —
// the same guarantee the package gives at full width, extended to the
// negotiated-precision wire. Covered on both the uncompressed f32 wire
// (raw, 4-byte coordinates) and the quantized one.
func TestF32MatchesSimulatorOverLoopback(t *testing.T) {
	fed, mdl := testWorkload()
	for _, spec := range []comm.Spec{
		{Name: "raw"},
		{Name: "delta+qsgd", Bits: 8},
	} {
		t.Run(spec.Name, func(t *testing.T) {
			cfg := core.FedProx(6, 5, 3, 0.01, 1)
			cfg.StragglerFraction = 0.5
			cfg.EvalEvery = 2
			cfg.Codec = spec
			cfg.Precision = tensor.F32

			sim, err := core.Run(mdl, fed, cfg)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := launch(t, fed, mdl, cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(sim.Points) != len(dist.Points) {
				t.Fatalf("point counts differ: sim %d, dist %d", len(sim.Points), len(dist.Points))
			}
			for i := range sim.Points {
				sp, dp := sim.Points[i], dist.Points[i]
				if sp.TrainLoss != dp.TrainLoss || sp.TestAcc != dp.TestAcc {
					t.Fatalf("round %d: f32 deployment diverged from simulator: sim loss %.17g acc %g, dist loss %.17g acc %g",
						sp.Round, sp.TrainLoss, sp.TestAcc, dp.TrainLoss, dp.TestAcc)
				}
				sc, dc := sp.Cost, dp.Cost
				if sc.UplinkBytes != dc.UplinkBytes || sc.DownlinkBytes != dc.DownlinkBytes {
					t.Fatalf("round %d: accounting diverged: sim %+v, dist %+v", sp.Round, sc, dc)
				}
			}
		})
	}
}

// TestPrecisionNegotiationRejection: a worker that offers only f64 (an
// old binary, say) aborts an f32 deployment on both sides at Hello
// time — before any dispatch could hit a link whose wire format the
// worker cannot produce.
func TestPrecisionNegotiationRejection(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(2, 2, 1, 0.01, 1)
	cfg.Codec = comm.Spec{Name: "raw"}
	cfg.Precision = tensor.F32
	srv, err := NewServer(mdl, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var shards []*data.Shard
	shards = append(shards, fed.Shards...)
	w := NewWorker(mdl, shards, nil)
	w.PrecisionOffer = []string{"f64"} // predates the f32 path

	var wg sync.WaitGroup
	var workerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		workerErr = w.Run(ln.Addr().String())
	}()
	_, srvErr := srv.RunWithListener(ln)
	wg.Wait()
	if srvErr == nil {
		t.Fatal("coordinator accepted a worker that cannot run f32")
	}
	if workerErr == nil {
		t.Fatal("worker did not surface the negotiation failure")
	}
}

// TestEmptyPrecisionOfferMeansF64: a Hello without the Precisions field
// (an old worker binary) still joins an f64 deployment — the empty
// offer is read as the pre-precision wire's only width — and is
// refused by an f32 one.
func TestEmptyPrecisionOfferMeansF64(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(2, 2, 1, 0.01, 1)
	cfg.Codec = comm.Spec{Name: "raw"}
	srv, err := NewServer(mdl, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()})
	if err != nil {
		t.Fatal(err)
	}
	if msg := srv.codecOfferError(&Hello{Codecs: comm.Names()}); msg != "" {
		t.Fatalf("f64 deployment refused an empty precision offer: %s", msg)
	}

	cfg.Precision = tensor.F32
	srv32, err := NewServer(mdl, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()})
	if err != nil {
		t.Fatal(err)
	}
	if msg := srv32.codecOfferError(&Hello{Codecs: comm.Names()}); msg == "" {
		t.Fatal("f32 deployment accepted a worker with no precision offer")
	}
}
