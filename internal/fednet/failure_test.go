package fednet

import (
	"net"
	"sync"
	"testing"
	"time"

	"fedprox/internal/core"
	"fedprox/internal/data"
)

// stubWorker registers shards like a real worker, then misbehaves:
// depending on mode it disconnects right after registration, or accepts
// every request and never replies. It exercises the coordinator's
// failure paths without cooperating in them.
type stubMode int

const (
	stubDisconnect stubMode = iota // close the conn after the first TrainRequest arrives
	stubSilent                     // read requests forever, never reply
)

func runStubWorker(t *testing.T, addr string, shards []*data.Shard, mode stubMode) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Errorf("stub worker dial: %v", err)
		return
	}
	c := newConn(raw)
	defer c.close()
	hello := Hello{}
	for _, s := range shards {
		hello.Devices = append(hello.Devices, DeviceInfo{ID: s.ID, TrainSize: len(s.Train)})
	}
	if err := c.send(Envelope{Hello: &hello}); err != nil {
		t.Errorf("stub worker hello: %v", err)
		return
	}
	if _, err := c.recv(); err != nil { // Welcome
		t.Errorf("stub worker welcome: %v", err)
		return
	}
	for {
		env, err := c.recv()
		if err != nil {
			return // coordinator gave up on us
		}
		switch {
		case env.TrainRequest != nil:
			if mode == stubDisconnect {
				return // deferred close: vanish mid-round
			}
			// stubSilent: swallow the request.
		case env.EvalRequest != nil:
			// Both stubs answer evals so the run reaches the training
			// phase before the failure bites.
			reply := EvalReply{Seq: env.EvalRequest.Seq}
			for _, s := range shards {
				reply.Devices = append(reply.Devices, DeviceEval{Device: s.ID, TrainN: len(s.Train), TestN: len(s.Test)})
			}
			if mode == stubSilent && env.EvalRequest.Seq > 1 {
				continue // after round 0 the silent stub goes fully dark
			}
			if err := c.send(Envelope{EvalReply: &reply}); err != nil {
				return
			}
		case env.Shutdown != nil:
			return
		}
	}
}

// splitShards partitions the dataset round-robin over n workers.
func splitShards(fed *data.Federated, n int) [][]*data.Shard {
	out := make([][]*data.Shard, n)
	for k := 0; k < fed.NumDevices(); k++ {
		out[k%n] = append(out[k%n], fed.Shards[k])
	}
	return out
}

// launchWithStub runs a deployment where worker 0 is a misbehaving stub
// and the rest are real. It returns the coordinator's error and whether
// the real workers all returned (none left hanging).
func launchWithStub(t *testing.T, cfg core.Config, timeout time.Duration, mode stubMode) error {
	t.Helper()
	fed, mdl := testWorkload()
	srv, err := NewServer(mdl, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices(), RequestTimeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	parts := splitShards(fed, 3)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); runStubWorker(t, addr, parts[0], mode) }()
	for wi := 1; wi < 3; wi++ {
		w := NewWorker(mdl, parts[wi], nil)
		go func() { defer wg.Done(); _ = w.Run(addr) }()
	}

	_, runErr := srv.RunWithListener(ln)

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("workers still blocked after the coordinator returned")
	}
	return runErr
}

func syncCfg() core.Config {
	cfg := core.FedProx(4, 6, 2, 0.01, 1)
	cfg.EvalEvery = 2
	return cfg
}

func asyncCfg() core.Config {
	cfg := syncCfg()
	cfg.Async = core.AsyncConfig{Mode: core.AsyncTotal}
	return cfg
}

// TestSyncWorkerDisconnectFailsRound: a worker that vanishes mid-round
// fails the synchronous run promptly (the protocol cannot continue
// without its devices) and releases every other worker via Shutdown.
func TestSyncWorkerDisconnectFailsRound(t *testing.T) {
	if err := launchWithStub(t, syncCfg(), 0, stubDisconnect); err == nil {
		t.Fatal("sync coordinator survived a mid-round disconnect")
	}
}

// TestSyncWorkerTimeoutFailsRound: a worker that accepts requests but
// never replies trips RequestTimeout instead of hanging the deployment.
func TestSyncWorkerTimeoutFailsRound(t *testing.T) {
	start := time.Now()
	err := launchWithStub(t, syncCfg(), 300*time.Millisecond, stubSilent)
	if err == nil {
		t.Fatal("sync coordinator survived a silent worker")
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("timeout took %v — deadline not applied", elapsed)
	}
}

// TestAsyncWorkerDisconnectEvicted: the asynchronous coordinator treats
// a mid-round disconnect as device loss, not run failure — it finishes
// the schedule on the surviving workers.
func TestAsyncWorkerDisconnectEvicted(t *testing.T) {
	if err := launchWithStub(t, asyncCfg(), 0, stubDisconnect); err != nil {
		t.Fatalf("async coordinator did not survive a disconnect: %v", err)
	}
}

// TestAsyncWorkerTimeoutEvicted: same for a silent worker, via
// RequestTimeout.
func TestAsyncWorkerTimeoutEvicted(t *testing.T) {
	if err := launchWithStub(t, asyncCfg(), 300*time.Millisecond, stubSilent); err != nil {
		t.Fatalf("async coordinator did not survive a silent worker: %v", err)
	}
}

// TestShutdownReleasesWorkers: a successful run (either mode) must end
// with every worker's Run returning nil — the Shutdown handshake, not a
// dropped connection.
func TestShutdownReleasesWorkers(t *testing.T) {
	fed, mdl := testWorkload()
	for _, cfg := range []core.Config{syncCfg(), asyncCfg()} {
		hist, err := launch(t, fed, mdl, cfg, 3) // launch fails the test on worker errors
		if err != nil {
			t.Fatalf("%s: %v", core.Label(cfg), err)
		}
		if len(hist.Points) == 0 {
			t.Fatalf("%s: empty history", core.Label(cfg))
		}
	}
}
