package fednet

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/solver"
)

// hookedSolver wraps a LocalSolver with a solve counter and an optional
// first-solve callback — the test's observability into which worker
// actually served training requests.
type hookedSolver struct {
	inner   solver.LocalSolver
	n       atomic.Int64
	once    sync.Once
	onFirst func()
}

func (h *hookedSolver) Name() string { return h.inner.Name() }

func (h *hookedSolver) Solve(m model.Model, train []data.Example, w0 []float64, cfg solver.Config, epochs int, rng *frand.Source) []float64 {
	h.n.Add(1)
	if h.onFirst != nil {
		h.once.Do(h.onFirst)
	}
	return h.inner.Solve(m, train, w0, cfg, epochs, rng)
}

// TestAsyncWorkerReadmission is the re-admission satellite's acceptance
// test: an asynchronous deployment loses a worker mid-run (its
// connection is killed after its first local solve), evicts its devices,
// and later re-admits a reconnecting worker hosting the same shards —
// whose devices demonstrably return to the schedule (its solver runs)
// before the run completes cleanly for every surviving endpoint.
func TestAsyncWorkerReadmission(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(10, 4, 2, 0.01, 1)
	cfg.EvalEvery = 5
	cfg.Async = core.AsyncConfig{Mode: core.AsyncTotal}

	srv, err := NewServer(mdl, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	parts := splitShards(fed, 2)

	// The survivor paces the run so the revived worker has schedule left
	// to rejoin.
	survivor := NewWorker(mdl, parts[0], solver.Delayed{Inner: solver.SGDSolver{}, Delay: 3 * time.Millisecond})
	var wg sync.WaitGroup
	var survivorErr error
	wg.Add(1)
	go func() { defer wg.Done(); survivorErr = survivor.Run(addr) }()

	// The victim hosts the other half and dies right after its first
	// solve: the test closes its connection, the coordinator's reader
	// surfaces the error, and the devices are evicted.
	rawVictim, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	victimSolver := &hookedSolver{inner: solver.SGDSolver{}, onFirst: func() {
		_ = rawVictim.Close()
		close(killed)
	}}
	victim := NewWorker(mdl, parts[1], victimSolver)
	wg.Add(1)
	go func() { defer wg.Done(); _ = victim.ServeConn(rawVictim) }() // dies with the conn

	// The revival: a fresh worker hosting the victim's shards reconnects
	// mid-run. Re-admission can race the eviction (the coordinator
	// refuses devices that are still live), so retry until admitted; an
	// admitted worker blocks until the run's Shutdown and returns nil.
	revived := &hookedSolver{inner: solver.SGDSolver{}}
	var revivedErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-killed
		replacement := NewWorker(mdl, parts[1], revived)
		for attempt := 0; attempt < 100; attempt++ {
			revivedErr = replacement.Run(addr)
			if revivedErr == nil || !strings.Contains(revivedErr.Error(), "still live") {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	hist, runErr := srv.RunWithListener(ln)
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("workers still blocked after the coordinator returned")
	}

	if runErr != nil {
		t.Fatalf("run did not survive the kill/revive cycle: %v", runErr)
	}
	if survivorErr != nil {
		t.Fatalf("survivor worker: %v", survivorErr)
	}
	if revivedErr != nil {
		t.Fatalf("revived worker was never admitted: %v", revivedErr)
	}
	if got := revived.n.Load(); got == 0 {
		t.Fatal("revived worker served no training requests — its devices never rejoined the schedule")
	}
	if len(hist.Points) == 0 || !(hist.Final().TrainLoss < hist.Points[0].TrainLoss) {
		t.Fatalf("run did not improve across the failure: %+v", hist.Points)
	}
}

// TestAsyncReadmissionWithChainedCodec: re-admission composes with
// stateful codec link state — the coordinator resets the rejoining
// devices' links and ships the eval chain base, so a delta-chained
// downlink keeps decoding in lockstep after the reconnect.
func TestAsyncReadmissionWithChainedCodec(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(8, 4, 2, 0.01, 1)
	cfg.EvalEvery = 2 // frequent evals exercise the seeded eval chain
	cfg.Async = core.AsyncConfig{Mode: core.AsyncTotal}
	cfg.Codec = comm.Spec{Name: "delta"}

	srv, err := NewServer(mdl, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	parts := splitShards(fed, 2)

	survivor := NewWorker(mdl, parts[0], solver.Delayed{Inner: solver.SGDSolver{}, Delay: 3 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = survivor.Run(addr) }()

	rawVictim, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	victim := NewWorker(mdl, parts[1], &hookedSolver{inner: solver.SGDSolver{}, onFirst: func() {
		_ = rawVictim.Close()
		close(killed)
	}})
	wg.Add(1)
	go func() { defer wg.Done(); _ = victim.ServeConn(rawVictim) }()

	revived := &hookedSolver{inner: solver.SGDSolver{}}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-killed
		replacement := NewWorker(mdl, parts[1], revived)
		for attempt := 0; attempt < 100; attempt++ {
			if err := replacement.Run(addr); err == nil || !strings.Contains(err.Error(), "still live") {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	hist, runErr := srv.RunWithListener(ln)
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("workers still blocked after the coordinator returned")
	}
	if runErr != nil {
		t.Fatalf("chained-codec run did not survive the kill/revive cycle: %v", runErr)
	}
	if len(hist.Points) == 0 || !(hist.Final().TrainLoss < hist.Points[0].TrainLoss) {
		t.Fatalf("chained-codec run did not improve across the failure: %+v", hist.Points)
	}
}
