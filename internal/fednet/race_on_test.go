//go:build race

package fednet

// raceEnabled relaxes wall-clock assertions: race instrumentation
// multiplies compute time, which shrinks the sleep-dominated speedup the
// straggler test measures.
const raceEnabled = true
