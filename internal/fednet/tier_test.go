package fednet

import (
	"math"
	"net"
	"strings"
	"sync"
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/model/linear"
	"fedprox/internal/tier"
)

// launchTree deploys a two-tier process tree over loopback TCP: a root
// coordinator, edges = clients/fanOut edge aggregators each owning a
// contiguous slice of the fleet, and one worker per edge hosting that
// slice under edge-local device IDs. Everything runs in-process on real
// sockets — the exact topology `fedserver -tier root` + `fedserver
// -tier edge` + `fedworker -tier edge` builds across machines.
func launchTree(t *testing.T, fed *data.Federated, mdl *linear.Model, rootCfg, edgeCfg core.Config, fanOut int) (*core.History, error) {
	t.Helper()
	edges := rootCfg.ClientsPerRound / fanOut
	rootCfg.ClientsPerRound = edges
	srv, err := NewServer(mdl, ServerConfig{Training: rootCfg, ExpectDevices: edges})
	if err != nil {
		return nil, err
	}
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	edgeErrs := make([]error, edges)
	workerErrs := make([]error, edges)
	for i := 0; i < edges; i++ {
		lo, hi := tier.Partition(fed.NumDevices(), edges, i)
		cfg := edgeCfg
		cfg.Seed = edgeCfg.Seed + uint64(i)*1009
		edge, err := NewEdge(mdl, EdgeConfig{
			Training:      cfg,
			ExpectDevices: hi - lo,
			DeviceID:      i,
			FanOut:        fanOut,
		})
		if err != nil {
			return nil, err
		}
		edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		parentRaw, err := net.Dial("tcp", rootLn.Addr().String())
		if err != nil {
			return nil, err
		}
		// The worker hosts the edge's fleet slice under edge-local IDs,
		// as `fedworker -tier edge` does.
		var shards []*data.Shard
		for g := lo; g < hi; g++ {
			s := *fed.Shards[g]
			s.ID = g - lo
			shards = append(shards, &s)
		}
		w := NewWorker(mdl, shards, nil)
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			pc := newConn(parentRaw)
			defer pc.close()
			edgeErrs[i] = edge.RunWithConns(edgeLn, pc)
			edgeLn.Close()
		}(i)
		go func(i int, addr string) {
			defer wg.Done()
			workerErrs[i] = w.Run(addr)
		}(i, edgeLn.Addr().String())
	}
	hist, runErr := srv.RunWithListener(rootLn)
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	for i := 0; i < edges; i++ {
		if edgeErrs[i] != nil {
			t.Fatalf("edge %d: %v", i, edgeErrs[i])
		}
		if workerErrs[i] != nil {
			t.Fatalf("worker %d: %v", i, workerErrs[i])
		}
	}
	return hist, nil
}

// TestTieredProcessTree is the fednet face of the tentpole: a root and
// two edge aggregators train a real fleet over sockets, the root only
// ever sees edges=2 pseudo-device replies per round, and the distributed
// evaluation still reports the exact global weighted loss.
func TestTieredProcessTree(t *testing.T) {
	fed, mdl := testWorkload()
	const fanOut = 4
	rootCfg := core.FedProx(6, 8, 3, 0.01, 1) // 8/4 = 2 edges
	rootCfg.EvalEvery = 2
	edgeCfg := core.FedProx(6, fanOut, 3, 0.01, 1)
	edgeCfg.Seed = 21

	hist, err := launchTree(t, fed, mdl, rootCfg, edgeCfg, fanOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hist.Label, "[fednet]") {
		t.Fatalf("label %q missing transport marker", hist.Label)
	}
	first, fin := hist.Points[0], hist.Final()
	if math.IsNaN(first.TrainLoss) || math.IsNaN(fin.TrainLoss) {
		t.Fatalf("global loss not measured: first %v, final %v", first.TrainLoss, fin.TrainLoss)
	}
	if fin.TrainLoss >= first.TrainLoss {
		t.Fatalf("no progress through the tree: loss %v -> %v", first.TrainLoss, fin.TrainLoss)
	}
	if fin.Participants != 2 {
		t.Fatalf("root saw %d participants per round, want 2 edges", fin.Participants)
	}
	// Root ingress is 2 edge replies per round — a quarter of the 8
	// device replies a flat run uploads.
	paramBytes := int64(mdl.NumParams() * 8)
	if want := int64(6*2) * paramBytes; fin.Cost.UplinkBytes != want {
		t.Fatalf("root ingress %d bytes, want %d (2 edge replies x 6 rounds)", fin.Cost.UplinkBytes, want)
	}
}

// TestTieredProcessTreeCodec runs the tree with qsgd on both hops: the
// parent-edge links and the edge-worker links each carry their own codec
// streams, and the deployment still trains.
func TestTieredProcessTreeCodec(t *testing.T) {
	fed, mdl := testWorkload()
	const fanOut = 4
	spec := comm.Spec{Name: "qsgd", Bits: 8}
	rootCfg := core.FedProx(4, 8, 3, 0.01, 1)
	rootCfg.EvalEvery = 2
	rootCfg.Codec = spec
	edgeCfg := core.FedProx(4, fanOut, 3, 0.01, 1)
	edgeCfg.Seed = 33
	edgeCfg.Codec = spec

	hist, err := launchTree(t, fed, mdl, rootCfg, edgeCfg, fanOut)
	if err != nil {
		t.Fatal(err)
	}
	first, fin := hist.Points[0], hist.Final()
	if math.IsNaN(fin.TrainLoss) || fin.TrainLoss >= first.TrainLoss {
		t.Fatalf("qsgd tree did not train: loss %v -> %v", first.TrainLoss, fin.TrainLoss)
	}
	raw := int64(4*2) * int64(mdl.NumParams()*8)
	if fin.Cost.UplinkBytes <= 0 || fin.Cost.UplinkBytes >= raw {
		t.Fatalf("root ingress %d not compressed below raw %d", fin.Cost.UplinkBytes, raw)
	}
}

// TestNewEdgeRejections pins the edge's configuration guard rails.
func TestNewEdgeRejections(t *testing.T) {
	_, mdl := testWorkload()
	good := core.FedProx(2, 4, 1, 0.01, 0)
	async := good
	async.Async = core.AsyncConfig{Mode: core.AsyncTotal}
	cases := []struct {
		name string
		cfg  EdgeConfig
		want string
	}{
		{"fanout", EdgeConfig{Training: good, ExpectDevices: 8, FanOut: 1}, "FanOut"},
		{"async", EdgeConfig{Training: async, ExpectDevices: 8, FanOut: 4}, "root-only"},
	}
	for _, tc := range cases {
		if _, err := NewEdge(mdl, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}
