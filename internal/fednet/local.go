package fednet

import (
	"fmt"
	"net"
	"sync"

	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/model"
	"fedprox/internal/solver"
)

// RunLoopback deploys one coordinator and len(solvers) in-process
// workers over an ephemeral TCP loopback, partitioning fed's shards
// round-robin (worker i hosts shards i, i+n, i+2n, …) with worker i
// training on solvers[i] (nil selects mini-batch SGD). It returns the
// coordinator's trajectory; worker failures are joined into the error.
//
// This is the single-machine deployment harness the experiments and
// tests share — real sockets, real concurrency, no processes to manage.
func RunLoopback(mdl model.Model, fed *data.Federated, cfg ServerConfig, solvers []solver.LocalSolver) (*core.History, error) {
	srv, err := NewServer(mdl, cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()

	workers := len(solvers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		var shards []*data.Shard
		for k := wi; k < fed.NumDevices(); k += workers {
			shards = append(shards, fed.Shards[k])
		}
		w := NewWorker(mdl, shards, solvers[wi])
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			errs[wi] = w.Run(addr)
		}(wi)
	}
	hist, runErr := srv.RunWithListener(ln)
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	for wi, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fednet: worker %d: %w", wi, err)
		}
	}
	return hist, nil
}
