package fednet

import (
	"errors"
	"fmt"
	"math"
	"net"
	"slices"
	"sort"
	"time"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/model"
)

// EdgeConfig parameterizes one edge aggregator of a fednet process
// tree: a node that accepts its own worker connections exactly like a
// coordinator, but is itself driven by a parent coordinator exactly
// like a worker.
type EdgeConfig struct {
	// Training is the edge-local schedule. Rounds, epochs, learning
	// rate, straggler policy, and codec must match the parent's so every
	// window the parent requests maps onto one edge-local round.
	// ClientsPerRound is overridden to FanOut and EvalEvery to Rounds
	// (the parent owns real evaluation; edge-local evaluations are
	// answered with NaN stubs). Asynchronous aggregation is rejected —
	// an edge is stepped by its parent's round clock.
	Training core.Config
	// ExpectDevices is how many devices must register with this edge
	// (the edge's slice of the fleet), with edge-local IDs
	// 0..ExpectDevices-1.
	ExpectDevices int
	// DeviceID is the pseudo-device index this edge registers with its
	// parent; its TrainSize is the sum of the children's, so the
	// parent's fold weights the subtree by its sample mass.
	DeviceID int
	// FanOut is how many children this edge contacts per window — its
	// coordinator's ClientsPerRound.
	FanOut int
	// Depth is the edge's distance from the root (1 = directly under
	// it); it stamps the edge's trace events with obs tier Depth. Zero
	// means 1.
	Depth int
	// RequestTimeout bounds child replies, as ServerConfig's does.
	RequestTimeout time.Duration
	// LegLatency, when positive, is slept before each reply to the
	// parent — a crude stand-in for a backbone leg when the process
	// tree runs on one machine (the -tier-latency flag).
	LegLatency time.Duration
}

// Edge is one interior node of a hierarchical fednet deployment. Its
// child-facing half is a Server whose coordinator runs in stepped mode:
// each parent TrainRequest resumes it for exactly one window (select
// FanOut children, dispatch, fold), and the folded parameters return
// upstream as a single version-stamped device reply — so the parent's
// staleness damping, selection, and accounting treat the whole subtree
// as one device, and tiers compose without new protocol.
type Edge struct {
	srv *Server
	cfg EdgeConfig
}

// NewEdge builds an edge aggregator.
func NewEdge(mdl model.Model, cfg EdgeConfig) (*Edge, error) {
	if cfg.FanOut < 2 {
		return nil, fmt.Errorf("fednet: edge FanOut must be >= 2, got %d", cfg.FanOut)
	}
	if cfg.Training.Async.Enabled() {
		return nil, errors.New("fednet: a tier edge is stepped by its parent round clock; asynchronous aggregation is root-only")
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	t := cfg.Training
	t.ClientsPerRound = cfg.FanOut
	t.EvalEvery = t.Rounds
	t.TrackDissimilarity = false
	cfg.Training = t
	srv, err := newServerWithOptions(mdl, ServerConfig{
		Training:       t,
		ExpectDevices:  cfg.ExpectDevices,
		RequestTimeout: cfg.RequestTimeout,
	}, core.CoordinatorOptions{
		NumDevices:  cfg.ExpectDevices,
		WireEncoded: true,
		Stepped:     true,
		Tier:        cfg.Depth + 1,
		LabelSuffix: " [fednet edge]",
	})
	if err != nil {
		return nil, err
	}
	return &Edge{srv: srv, cfg: cfg}, nil
}

// BytesOnWire reports the child-facing wire traffic, as Server's does.
func (e *Edge) BytesOnWire() (read, written int64) { return e.srv.BytesOnWire() }

// Run listens for children on addr, dials the parent coordinator, and
// serves both sides until the parent shuts the deployment down.
func (e *Edge) Run(addr, parent string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fednet: listen %s: %w", addr, err)
	}
	defer ln.Close()
	raw, err := net.Dial("tcp", parent)
	if err != nil {
		return fmt.Errorf("fednet: dial parent %s: %w", parent, err)
	}
	pc := newConn(raw)
	defer pc.close()
	return e.RunWithConns(ln, pc)
}

// RunWithConns is Run over caller-provided connections (tests use
// loopback listeners and pipes). Order matters: the children must all
// register before the edge says Hello upstream, because the Hello
// carries the subtree's total sample count.
func (e *Edge) RunWithConns(ln net.Listener, parent *conn) error {
	defer e.srv.shutdownWorkers()
	if err := e.srv.acceptAll(ln); err != nil {
		return err
	}
	e.srv.weights = e.srv.deviceWeights()

	// Run the stepped coordinator to its first Pause: it snapshots the
	// initial parameters and answers its round-0 evaluation with a stub.
	cmds, err := e.srv.coord.Start()
	if err != nil {
		return err
	}
	if done, err := e.window(cmds); err != nil {
		return err
	} else if done {
		return errors.New("fednet: edge coordinator finished before its first window")
	}

	// Join the parent as one pseudo-device covering the subtree.
	total := 0
	for _, d := range e.srv.devices {
		total += d.trainSize
	}
	hello := Hello{
		Devices: []DeviceInfo{{ID: e.cfg.DeviceID, TrainSize: total}},
		Codecs:  comm.Names(),
	}
	if err := parent.send(Envelope{Hello: &hello}); err != nil {
		return err
	}
	env, err := parent.recv()
	if err != nil {
		return err
	}
	welcome := env.Welcome
	if welcome == nil {
		return fmt.Errorf("fednet: expected Welcome, got %+v", env)
	}
	if welcome.Err != "" {
		return errors.New(welcome.Err)
	}
	for _, name := range []string{welcome.Downlink.Name, welcome.Uplink.Name} {
		if !slices.Contains(hello.Codecs, name) {
			return fmt.Errorf("fednet: parent selected codec %q, but this edge offered only %v", name, hello.Codecs)
		}
	}
	if welcome.EvalPrev != nil {
		// Mid-run re-admission would need the edge to also resynchronize
		// every child's link state; the synchronous tier protocol never
		// re-admits, so refuse rather than decode against a stale chain.
		return errors.New("fednet: tier edges do not support mid-run re-admission")
	}
	// The parent-facing link state: training links keyed by the edge's
	// pseudo-device, plus the parent's shared eval chain — the same
	// comm state machines a worker's device runtime holds, so codecs
	// compose per hop by construction.
	links, err := comm.NewLinkState(welcome.Downlink, welcome.Uplink)
	if err != nil {
		return err
	}
	parentEval, err := comm.NewEvalLink(welcome.Downlink)
	if err != nil {
		return err
	}
	childEval, err := comm.NewEvalLink(e.srv.downSpec)
	if err != nil {
		return err
	}

	// Serve the parent. The synchronous protocol keeps one exchange
	// outstanding per device, and this edge registered exactly one, so
	// requests are strictly sequential.
	for {
		env, err := parent.recv()
		if err != nil {
			return err
		}
		var reply Envelope
		switch {
		case env.TrainRequest != nil:
			r := e.train(links, env.TrainRequest)
			reply = Envelope{TrainReply: &r}
		case env.EvalRequest != nil:
			r := e.eval(parentEval, childEval, env.EvalRequest)
			reply = Envelope{EvalReply: &r}
		case env.Shutdown != nil:
			return nil
		default:
			return fmt.Errorf("fednet: edge received unexpected envelope %+v", env)
		}
		if e.cfg.LegLatency > 0 {
			time.Sleep(e.cfg.LegLatency)
		}
		if err := parent.send(reply); err != nil {
			return err
		}
	}
}

// train serves one parent TrainRequest: decode the broadcast view, run
// one window of the edge-local schedule re-based on it, and return the
// folded parameters as this pseudo-device's solution. EpochsDone echoes
// the parent's epoch target — the subtree ran a full window, so the
// parent's realized-work accounting sees a complete solve.
func (e *Edge) train(links *comm.LinkState, req *TrainRequest) TrainReply {
	reply := TrainReply{Round: req.Round, Version: req.Version, Device: req.Device}
	down, up, err := links.Link(req.Device)
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	view, err := down.Decode(&req.Update, links.Prev(req.Device))
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	links.SetPrev(req.Device, view)
	cmds, err := e.srv.coord.Resume(view)
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	if _, err := e.window(cmds); err != nil {
		reply.Err = err.Error()
		return reply
	}
	reply.Update = *up.Encode(e.srv.coord.Params(), view)
	reply.EpochsDone = req.Epochs
	return reply
}

// window drives the edge coordinator until it pauses for the next
// parent broadcast (or finishes its schedule): child dispatches become
// TrainRequest round-trips, edge-local evaluations are stubbed.
func (e *Edge) window(cmds []core.Command) (finished bool, err error) {
	for {
		var dispatches []core.Dispatch
		var next []core.Command
		ended := false
		for _, cmd := range cmds {
			switch v := cmd.(type) {
			case core.Dispatch:
				dispatches = append(dispatches, v)
			case core.Evaluate:
				// The parent owns real evaluation (it reaches this subtree
				// through EvalRequest forwarding); the edge-local schedule's
				// own evaluations are answered with NaN so its History never
				// pretends to hold global metrics.
				more, err := e.srv.coord.EvalDone(core.EvalResult{Loss: math.NaN(), Acc: math.NaN()})
				if err != nil {
					return false, err
				}
				next = append(next, more...)
			case core.Pause:
				ended = true
			case core.Done:
				ended, finished = true, true
			default:
				// Checkpoint/ObserveLoss/AdvanceClock are never emitted for
				// edge configurations (rejected or disabled by NewEdge).
			}
		}
		if len(dispatches) > 0 {
			replies, err := e.srv.roundTripAll(dispatches)
			if err != nil {
				return false, err
			}
			for _, r := range replies {
				more, err := e.srv.coord.HandleReply(r)
				if err != nil {
					return false, err
				}
				next = append(next, more...)
			}
		}
		if ended {
			return finished, nil
		}
		if len(next) == 0 && len(dispatches) == 0 {
			return false, errors.New("fednet: edge coordinator stalled with no commands")
		}
		cmds = next
	}
}

// eval serves one parent EvalRequest: decode the broadcast on the
// parent's eval chain, re-encode it on the child-facing chain, gather
// every child's contributions, and fold them into a single
// pseudo-device report — the weighted mean loss over the subtree plus
// its raw test counts, so the parent's combination is exact.
func (e *Edge) eval(parentEval, childEval *comm.EvalLink, req *EvalRequest) EvalReply {
	reply := EvalReply{Seq: req.Seq}
	params, err := parentEval.Receive(&req.Update)
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	u, _, err := childEval.Broadcast(params)
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	evals, err := e.srv.gatherEvals(core.Evaluate{Seq: req.Seq, Update: u})
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	sort.Slice(evals, func(i, j int) bool { return evals[i].Device < evals[j].Device })
	var loss float64
	var trainN, correct, testN int
	for _, ev := range evals {
		loss += e.srv.weights[ev.Device] * ev.TrainLoss
		trainN += ev.TrainN
		correct += ev.Correct
		testN += ev.TestN
	}
	reply.Devices = []DeviceEval{{Device: e.cfg.DeviceID, TrainLoss: loss, TrainN: trainN, Correct: correct, TestN: testN}}
	return reply
}
