package fednet

import (
	"strings"
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
	"fedprox/internal/solver"
)

func testWorkload() (*data.Federated, *linear.Model) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	return fed, linear.ForDataset(fed)
}

// launch starts a coordinator on an ephemeral loopback port and `workers`
// workers that partition the dataset's shards round-robin. It returns the
// trajectory.
func launch(t *testing.T, fed *data.Federated, mdl *linear.Model, cfg core.Config, workers int) (*core.History, error) {
	t.Helper()
	return RunLoopback(mdl, fed, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()}, make([]solver.LocalSolver, workers))
}

// TestDistributedMatchesSimulator is the package's defining guarantee:
// a fednet run reproduces the simulator's trajectory bit for bit under
// the same configuration and seed.
func TestDistributedMatchesSimulator(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(6, 5, 3, 0.01, 1)
	cfg.StragglerFraction = 0.5
	cfg.EvalEvery = 2

	sim, err := core.Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := launch(t, fed, mdl, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Points) != len(dist.Points) {
		t.Fatalf("point counts differ: sim %d, dist %d", len(sim.Points), len(dist.Points))
	}
	for i := range sim.Points {
		sp, dp := sim.Points[i], dist.Points[i]
		if sp.TrainLoss != dp.TrainLoss {
			t.Fatalf("round %d: sim loss %.17g != dist loss %.17g", sp.Round, sp.TrainLoss, dp.TrainLoss)
		}
		if sp.TestAcc != dp.TestAcc {
			t.Fatalf("round %d: sim acc %g != dist acc %g", sp.Round, sp.TestAcc, dp.TestAcc)
		}
		if sp.Participants != dp.Participants {
			t.Fatalf("round %d: participants %d != %d", sp.Round, sp.Participants, dp.Participants)
		}
	}
}

func TestDistributedWeightedSamplingScheme(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(4, 5, 3, 0.01, 0)
	cfg.Sampling = core.WeightedSimpleAvg
	cfg.EvalEvery = 2

	sim, err := core.Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := launch(t, fed, mdl, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sim.Points {
		if sim.Points[i].TrainLoss != dist.Points[i].TrainLoss {
			t.Fatalf("weighted scheme diverged at point %d", i)
		}
	}
}

func TestDistributedDropsStragglers(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedAvg(3, 10, 5, 0.01)
	cfg.StragglerFraction = 0.9
	cfg.EvalEvery = 1
	dist, err := launch(t, fed, mdl, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := dist.Final().Participants; got != 1 {
		t.Fatalf("participants = %d, want 1 of 10 under 90%% drop", got)
	}
	if !strings.HasSuffix(dist.Label, "[fednet]") {
		t.Fatalf("label %q missing transport marker", dist.Label)
	}
}

func TestSingleWorkerHostsEverything(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(3, 5, 2, 0.01, 1)
	cfg.EvalEvery = 3
	sim, err := core.Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := launch(t, fed, mdl, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Final().TrainLoss != dist.Final().TrainLoss {
		t.Fatal("single-worker run diverged from simulator")
	}
}

func TestNewServerRejections(t *testing.T) {
	_, mdl := testWorkload()
	good := core.FedProx(2, 2, 1, 0.01, 0)
	cases := []ServerConfig{
		{Training: core.Config{}, ExpectDevices: 3},
		{Training: func() core.Config { c := good; c.TrackGamma = true; return c }(), ExpectDevices: 3},
		{Training: func() core.Config { c := good; c.TrackDissimilarity = true; return c }(), ExpectDevices: 3},
		{Training: good, ExpectDevices: 0},
	}
	for i, sc := range cases {
		if _, err := NewServer(mdl, sc); err == nil {
			t.Errorf("case %d: invalid server config accepted", i)
		}
	}
}

// rawUpdate encodes params with the raw codec, the form direct worker
// tests feed into train().
func rawUpdate(t *testing.T, params []float64) comm.Update {
	t.Helper()
	c, err := comm.Spec{Name: "raw"}.ForDevice(comm.Downlink, 0)
	if err != nil {
		t.Fatal(err)
	}
	return *c.Encode(params, nil)
}

func TestWorkerRejectsUnknownDevice(t *testing.T) {
	fed, mdl := testWorkload()
	w := NewWorker(mdl, fed.Shards[:1], nil)
	reply := w.train(&TrainRequest{Device: 999, Update: rawUpdate(t, make([]float64, mdl.NumParams()))})
	if reply.Err == "" {
		t.Fatal("unknown device accepted")
	}
}

func TestWorkerRejectsBadParamLength(t *testing.T) {
	fed, mdl := testWorkload()
	w := NewWorker(mdl, fed.Shards[:1], nil)
	reply := w.train(&TrainRequest{Device: fed.Shards[0].ID, Update: rawUpdate(t, []float64{1, 2})})
	if reply.Err == "" {
		t.Fatal("bad parameter length accepted for train")
	}
	ev := w.eval(&EvalRequest{Update: rawUpdate(t, []float64{1})})
	if ev.Err == "" {
		t.Fatal("bad parameter length accepted for eval")
	}
}

func TestNewWorkerPanics(t *testing.T) {
	_, mdl := testWorkload()
	defer func() {
		if recover() == nil {
			t.Fatal("worker without shards did not panic")
		}
	}()
	NewWorker(mdl, nil, nil)
}
