package fednet

import (
	"math"
	"testing"
	"time"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/solver"
	"fedprox/internal/vtime"
)

func asyncBase(mode core.AggregationMode) core.Config {
	cfg := core.FedProx(8, 5, 3, 0.01, 1)
	cfg.StragglerFraction = 0.5
	cfg.EvalEvery = 2
	cfg.Async = core.AsyncConfig{Mode: mode}
	return cfg
}

// TestAsyncConverges: the pure async mode completes its schedule, its
// history carries staleness columns, its evaluation cadence matches the
// sync layout, and the model actually improves.
func TestAsyncConverges(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := asyncBase(core.AsyncTotal)
	hist, err := launch(t, fed, mdl, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := 1 + cfg.Rounds/cfg.EvalEvery // round 0 + every EvalEvery (final coincides)
	if len(hist.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(hist.Points), wantPoints)
	}
	if !hist.TracksStaleness() {
		t.Fatal("async history has no staleness columns")
	}
	first, last := hist.Points[0], hist.Final()
	if !(last.TrainLoss < first.TrainLoss) {
		t.Fatalf("async did not improve: loss %g -> %g", first.TrainLoss, last.TrainLoss)
	}
	if math.IsNaN(last.MeanStaleness) || last.MaxStaleness < last.MeanStaleness {
		t.Fatalf("implausible staleness stats: mean %g max %g", last.MeanStaleness, last.MaxStaleness)
	}
	// Every milestone folds exactly ClientsPerRound replies — the async
	// analogue of the sync per-round participant count.
	for _, p := range hist.Points[1:] {
		if p.Participants != cfg.ClientsPerRound {
			t.Fatalf("round %d: participants %d, want %d", p.Round, p.Participants, cfg.ClientsPerRound)
		}
	}
	if first.Participants != 0 {
		t.Fatalf("round 0 participants %d, want 0", first.Participants)
	}
	if !math.IsNaN(first.MeanStaleness) {
		t.Fatalf("round 0 should not carry staleness, got %g", first.MeanStaleness)
	}
}

// TestBufferedConverges: the FedBuff-style middle ground advances one
// version per BufferK replies and still improves the model.
func TestBufferedConverges(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := asyncBase(core.Buffered)
	cfg.Async.BufferK = 4
	hist, err := launch(t, fed, mdl, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist.Points[0], hist.Final()
	if !(last.TrainLoss < first.TrainLoss) {
		t.Fatalf("buffered did not improve: loss %g -> %g", first.TrainLoss, last.TrainLoss)
	}
	for _, p := range hist.Points[1:] {
		if p.Participants != cfg.Async.BufferK {
			t.Fatalf("round %d: participants %d, want BufferK %d", p.Round, p.Participants, cfg.Async.BufferK)
		}
	}
	// Buffered staleness is bounded by construction: a reply can be at
	// most one flush stale per in-flight wave; sanity-check it stays
	// small on a healthy deployment.
	for _, p := range hist.Points[1:] {
		if p.MaxStaleness > float64(cfg.Rounds) {
			t.Fatalf("staleness %g exceeds version count", p.MaxStaleness)
		}
	}
}

// TestAsyncWithCodec: asynchronous aggregation composes with stateful
// codecs — chained downlinks, per-device rounding streams, and
// error-feedback residuals stay consistent even though replies
// interleave (the link state is version-aware: every uplink decodes
// against the exact broadcast view it trained from).
func TestAsyncWithCodec(t *testing.T) {
	fed, mdl := testWorkload()
	for _, spec := range []comm.Spec{
		{Name: "qsgd", Bits: 8},
		{Name: "topk", TopK: 0.25},
	} {
		t.Run(spec.Name, func(t *testing.T) {
			cfg := asyncBase(core.AsyncTotal)
			cfg.Codec = spec
			if spec.Name == "topk" {
				cfg.DownlinkCodec = comm.Spec{Name: "raw"}
			}
			hist, err := launch(t, fed, mdl, cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			first, last := hist.Points[0], hist.Final()
			if !(last.TrainLoss < first.TrainLoss) {
				t.Fatalf("async+%s did not improve: loss %g -> %g", spec.Name, first.TrainLoss, last.TrainLoss)
			}
			c := last.Cost
			if c.UplinkBytes == 0 || c.DownlinkBytes == 0 || c.EvalBytes == 0 {
				t.Fatalf("missing analytic accounting: %+v", c)
			}
		})
	}
}

// TestAsyncOutpacesSyncUnderStraggler is the tentpole's acceptance
// criterion: with one worker delayed 10x, the asynchronous coordinator
// completes the same total device work at least 2x faster than the
// synchronous one while landing within 5% of its final loss.
func TestAsyncOutpacesSyncUnderStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison")
	}
	fed, mdl := testWorkload()

	base := core.FedProx(20, 4, 2, 0.01, 1)
	base.EvalEvery = 10
	// Worker 0 is 10x slower than the others: its devices hold the
	// deployment hostage every synchronous round they are selected in.
	const baseDelay = 3 * time.Millisecond
	solvers := []solver.LocalSolver{
		solver.Delayed{Inner: solver.SGDSolver{}, Delay: 10 * baseDelay},
		solver.Delayed{Inner: solver.SGDSolver{}, Delay: baseDelay},
		solver.Delayed{Inner: solver.SGDSolver{}, Delay: baseDelay},
		solver.Delayed{Inner: solver.SGDSolver{}, Delay: baseDelay},
	}
	deploy := func(cfg core.Config) (*core.History, time.Duration) {
		start := time.Now()
		h, err := RunLoopback(mdl, fed, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()}, solvers)
		if err != nil {
			t.Fatal(err)
		}
		return h, time.Since(start)
	}

	sync_, syncSecs := deploy(base)
	acfg := base
	acfg.Async = core.AsyncConfig{Mode: core.AsyncTotal}
	async, asyncSecs := deploy(acfg)

	t.Logf("sync %v (loss %.4f) vs async %v (loss %.4f)",
		syncSecs, sync_.Final().TrainLoss, asyncSecs, async.Final().TrainLoss)
	// Race instrumentation multiplies the compute share of wall-clock,
	// shrinking the sleep-dominated gap; only demand the full 2x on
	// uninstrumented builds.
	want := 2.0
	if raceEnabled {
		want = 1.3
	}
	if ratio := float64(syncSecs) / float64(asyncSecs); ratio < want {
		t.Errorf("async speedup %.2fx < %gx (sync %v, async %v)", ratio, want, syncSecs, asyncSecs)
	}
	// Within 5% of sync's final loss: async may not regress the model
	// quality it buys its speed with (ending below sync is fine — more
	// sequential folds per unit work often win on this workload).
	sl, al := sync_.Final().TrainLoss, async.Final().TrainLoss
	if al > sl*1.05 {
		t.Errorf("async final loss %.4f is %.1f%% above sync %.4f (budget 5%%)", al, 100*(al-sl)/sl, sl)
	}
}

// TestAsyncClockRequirements documents the division of labour: fednet
// executes async configs against the real clock as-is, while the
// simulator needs a virtual clock — core.Run refuses an async config
// without a latency model and accepts it with one (internal/vtime).
func TestAsyncClockRequirements(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := asyncBase(core.AsyncTotal)
	if _, err := core.Run(mdl, fed, cfg); err == nil {
		t.Fatal("simulator accepted an async config without a latency model")
	}
	if _, err := NewServer(mdl, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()}); err != nil {
		t.Fatalf("fednet rejected an async config: %v", err)
	}
	cfg.VTime = core.VTimeConfig{Model: vtime.MustModel(
		vtime.UniformCompute{SecondsPerEpoch: 0.1},
		vtime.Net{UplinkBps: 1e6, DownlinkBps: 1e6},
		7,
	)}
	h, err := core.Run(mdl, fed, cfg)
	if err != nil {
		t.Fatalf("simulator rejected an async config with a latency model: %v", err)
	}
	if !h.TracksStaleness() || !h.TracksVirtualTime() {
		t.Fatal("virtual-time async history missing staleness or clock columns")
	}
}
