package fednet

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"

	"fedprox/internal/comm"
	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/solver"
)

// Worker hosts a set of device shards and serves training and evaluation
// requests from a coordinator. Raw examples never leave the worker.
type Worker struct {
	mdl    model.Model
	shards map[int]*data.Shard
	local  solver.LocalSolver

	// Offer restricts which update codecs this worker advertises in its
	// Hello; nil advertises every codec comm registers. The coordinator
	// aborts the session if its configured codec is not offered.
	Offer []string

	// links is the worker's half of every hosted device's link state,
	// installed by the coordinator's Welcome: downlink decoders with the
	// last decoded broadcast per device, and stateful uplink encoders
	// (rounding streams, error-feedback residuals). NewWorker seeds it
	// with the raw codec so a worker can also be driven directly in
	// tests.
	links *comm.LinkState
	// evalLink is the worker's end of the deployment's shared
	// evaluation-broadcast link (downlink codec, direction comm.Eval).
	evalLink *comm.EvalLink
}

// NewWorker builds a worker hosting the given shards. A nil localSolver
// selects mini-batch SGD.
func NewWorker(mdl model.Model, shards []*data.Shard, localSolver solver.LocalSolver) *Worker {
	if mdl == nil || len(shards) == 0 {
		panic("fednet: worker needs a model and at least one shard")
	}
	if localSolver == nil {
		localSolver = solver.SGDSolver{}
	}
	byID := make(map[int]*data.Shard, len(shards))
	for _, s := range shards {
		byID[s.ID] = s
	}
	w := &Worker{mdl: mdl, shards: byID, local: localSolver}
	raw := comm.Spec{Name: "raw"}.WithDefaults()
	w.links, _ = comm.NewLinkState(raw, raw)
	w.evalLink, _ = comm.NewEvalLink(raw)
	return w
}

// Run connects to the coordinator at addr, registers, and serves until
// the coordinator sends Shutdown or the connection drops.
func (w *Worker) Run(addr string) error {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("fednet: dial %s: %w", addr, err)
	}
	c := newConn(raw)
	defer c.close()
	return w.Serve(c)
}

// ServeConn serves an already-established connection (used by in-process
// tests and custom transports).
func (w *Worker) ServeConn(raw net.Conn) error {
	c := newConn(raw)
	defer c.close()
	return w.Serve(c)
}

// Serve registers over c, completes the codec negotiation, and processes
// requests until Shutdown.
func (w *Worker) Serve(c *conn) error {
	hello := Hello{Codecs: w.Offer}
	if hello.Codecs == nil {
		hello.Codecs = comm.Names()
	}
	for id, s := range w.shards {
		hello.Devices = append(hello.Devices, DeviceInfo{ID: id, TrainSize: len(s.Train)})
	}
	if err := c.send(Envelope{Hello: &hello}); err != nil {
		return err
	}
	env, err := c.recv()
	if err != nil {
		return err
	}
	welcome := env.Welcome
	if welcome == nil {
		return fmt.Errorf("fednet: expected Welcome, got %+v", env)
	}
	if welcome.Err != "" {
		return errors.New(welcome.Err)
	}
	// Honour our own offer: a coordinator (version-skewed or
	// misbehaving) must not be able to install a codec this worker
	// explicitly declined to advertise.
	for _, name := range []string{welcome.Downlink.Name, welcome.Uplink.Name} {
		if !slices.Contains(hello.Codecs, name) {
			return fmt.Errorf("fednet: coordinator selected codec %q, but this worker offered only %v", name, hello.Codecs)
		}
	}
	w.links, err = comm.NewLinkState(welcome.Downlink, welcome.Uplink)
	if err != nil {
		return err
	}
	w.evalLink, err = comm.NewEvalLink(welcome.Downlink)
	if err != nil {
		return err
	}
	// A re-admission Welcome carries the eval chain's current base so
	// this worker decodes the next broadcast in lockstep with the
	// evaluators that never left.
	w.evalLink.SeedPrev(welcome.EvalPrev)
	// Each TrainRequest is served in its own goroutine so an
	// asynchronous coordinator can pipeline work for several hosted
	// devices over one connection (it never has more than one request
	// outstanding per device, so per-device link state stays
	// single-owner). A send failure inside a handler means the
	// connection is broken; the serve loop's next recv surfaces it.
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		env, err := c.recv()
		if err != nil {
			return err
		}
		switch {
		case env.TrainRequest != nil:
			req := env.TrainRequest
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				reply := w.train(req)
				_ = c.send(Envelope{TrainReply: &reply})
			}()
		case env.EvalRequest != nil:
			// Eval broadcasts are strictly sequential per deployment and
			// the eval link chains on their order: decode inline, then
			// compute metrics concurrently with any running solves.
			reply := w.eval(env.EvalRequest)
			if err := c.send(Envelope{EvalReply: &reply}); err != nil {
				return err
			}
		case env.Shutdown != nil:
			return nil
		default:
			return fmt.Errorf("fednet: worker received unexpected envelope %+v", env)
		}
	}
}

func (w *Worker) train(req *TrainRequest) TrainReply {
	reply := TrainReply{Round: req.Round, Version: req.Version, Device: req.Device}
	shard, ok := w.shards[req.Device]
	if !ok {
		reply.Err = fmt.Sprintf("device %d not hosted here", req.Device)
		return reply
	}
	dec, enc, err := w.links.Link(req.Device)
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	view, err := dec.Decode(&req.Update, w.links.Prev(req.Device))
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	if len(view) != w.mdl.NumParams() {
		reply.Err = fmt.Sprintf("parameter length %d != model %d", len(view), w.mdl.NumParams())
		return reply
	}
	w.links.SetPrev(req.Device, view)
	cfg := solver.Config{
		LearningRate: req.LearningRate,
		BatchSize:    req.BatchSize,
		Mu:           req.Mu,
	}
	wk := w.local.Solve(w.mdl, shard.Train, view, cfg, req.Epochs, frand.New(req.BatchSeed))
	reply.Update = *enc.Encode(wk, view)
	return reply
}

func (w *Worker) eval(req *EvalRequest) EvalReply {
	reply := EvalReply{Seq: req.Seq}
	view, err := w.evalLink.Receive(&req.Update)
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	if len(view) != w.mdl.NumParams() {
		reply.Err = fmt.Sprintf("parameter length %d != model %d", len(view), w.mdl.NumParams())
		return reply
	}
	for id, s := range w.shards {
		ev := DeviceEval{
			Device:    id,
			TrainLoss: w.mdl.Loss(view, s.Train),
			TrainN:    len(s.Train),
			TestN:     len(s.Test),
		}
		for _, ex := range s.Test {
			if w.mdl.Predict(view, ex) == ex.Y {
				ev.Correct++
			}
		}
		reply.Devices = append(reply.Devices, ev)
	}
	return reply
}
