package fednet

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/model"
	"fedprox/internal/obs"
	"fedprox/internal/solver"
	"fedprox/internal/tensor"
)

// Worker is the transport shell around one core.Device: it registers the
// hosted shards, completes the codec negotiation, and translates
// TrainRequest/EvalRequest wire messages into the device runtime's
// HandleDispatch/HandleEval events. All device-side protocol — downlink
// decode and link state, the local solve with compute-budget truncation,
// the uplink encode, the eval receive chain — lives in the runtime,
// which is the same type the simulator drives in process, so worker
// behavior cannot drift from the simulator's. Raw examples never leave
// the worker.
type Worker struct {
	dev *core.Device

	// Offer restricts which update codecs this worker advertises in its
	// Hello; nil advertises every codec comm registers. The coordinator
	// aborts the session if its configured codec is not offered.
	Offer []string

	// PrecisionOffer restricts which arithmetic widths this worker
	// advertises; nil advertises every width the device runtime actually
	// supports (see core.Device.SupportsPrecision). Setting it models an
	// older or constrained worker — e.g. []string{"f64"} for a binary
	// predating the f32 path — and the coordinator aborts the session if
	// its configured precision is not offered.
	PrecisionOffer []string

	// trace mirrors DeviceOptions.Trace: the runtime emits the per-request
	// device events, the worker shell adds a worker-solve span around each
	// dispatch so the wall cost of the local solve (decode + SGD + encode)
	// is visible per device.
	trace obs.Sink
}

// NewWorker builds a worker hosting the given shards. A nil localSolver
// selects mini-batch SGD. The device runtime is seeded with raw links so
// a worker can also be driven directly in tests; Serve replaces them
// with the negotiated specs.
func NewWorker(mdl model.Model, shards []*data.Shard, localSolver solver.LocalSolver) *Worker {
	return NewWorkerWithOptions(mdl, shards, core.DeviceOptions{Solver: localSolver})
}

// NewWorkerWithOptions is NewWorker with the full set of client-side
// knobs — in particular DeviceOptions.Privacy, the only place
// update-level DP can be configured in a fednet deployment (the
// mechanism clips and noises solutions before the uplink encode, so it
// is worker state; the server config rejects it). TrackGamma is forced
// off: the wire protocol does not carry γ, so probing it on a worker
// would only waste a gradient pass per dispatch.
func NewWorkerWithOptions(mdl model.Model, shards []*data.Shard, opts core.DeviceOptions) *Worker {
	if mdl == nil || len(shards) == 0 {
		panic("fednet: worker needs a model and at least one shard")
	}
	opts.TrackGamma = false
	dev := core.NewDevice(mdl, shards, opts)
	raw := comm.Spec{Name: "raw"}.WithDefaults()
	if err := dev.InstallLinks(raw, raw); err != nil {
		panic(err) // the raw spec is statically valid
	}
	return &Worker{dev: dev, trace: opts.Trace}
}

// Run connects to the coordinator at addr, registers, and serves until
// the coordinator sends Shutdown or the connection drops.
func (w *Worker) Run(addr string) error {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("fednet: dial %s: %w", addr, err)
	}
	c := newConn(raw)
	defer c.close()
	return w.Serve(c)
}

// ServeConn serves an already-established connection (used by in-process
// tests and custom transports).
func (w *Worker) ServeConn(raw net.Conn) error {
	c := newConn(raw)
	defer c.close()
	return w.Serve(c)
}

// Serve registers over c, completes the codec negotiation, and processes
// requests until Shutdown.
func (w *Worker) Serve(c *conn) error {
	hello := Hello{Codecs: w.Offer}
	if hello.Codecs == nil {
		hello.Codecs = comm.Names()
	}
	// Offer exactly the widths this runtime can execute: "f32" appears
	// only when the model, solver, and privacy configuration complete the
	// float32 path, so the coordinator can never negotiate a precision
	// the device would have to refuse at link installation.
	hello.Precisions = w.PrecisionOffer
	if hello.Precisions == nil {
		for _, p := range tensor.Precisions() {
			if w.dev.SupportsPrecision(tensor.Precision(p)) {
				hello.Precisions = append(hello.Precisions, p)
			}
		}
	}
	for _, reg := range w.dev.Hosted() {
		hello.Devices = append(hello.Devices, DeviceInfo{ID: reg.ID, TrainSize: reg.TrainSize})
	}
	if err := c.send(Envelope{Hello: &hello}); err != nil {
		return err
	}
	env, err := c.recv()
	if err != nil {
		return err
	}
	welcome := env.Welcome
	if welcome == nil {
		return fmt.Errorf("fednet: expected Welcome, got %+v", env)
	}
	if welcome.Err != "" {
		return errors.New(welcome.Err)
	}
	// Honour our own offer: a coordinator (version-skewed or
	// misbehaving) must not be able to install a codec this worker
	// explicitly declined to advertise.
	for _, name := range []string{welcome.Downlink.Name, welcome.Uplink.Name} {
		if !slices.Contains(hello.Codecs, name) {
			return fmt.Errorf("fednet: coordinator selected codec %q, but this worker offered only %v", name, hello.Codecs)
		}
	}
	for _, p := range []tensor.Precision{welcome.Downlink.Precision, welcome.Uplink.Precision} {
		if !slices.Contains(hello.Precisions, p.String()) {
			return fmt.Errorf("fednet: coordinator selected precision %q, but this worker offered only %v", p.String(), hello.Precisions)
		}
	}
	if err := w.dev.InstallLinks(welcome.Downlink, welcome.Uplink); err != nil {
		return err
	}
	// A re-admission Welcome carries the eval chain's current base so
	// this worker decodes the next broadcast in lockstep with the
	// evaluators that never left.
	w.dev.SeedEvalPrev(welcome.EvalPrev)
	// Each TrainRequest is served in its own goroutine so an
	// asynchronous coordinator can pipeline work for several hosted
	// devices over one connection (it never has more than one request
	// outstanding per device, so per-device link state stays
	// single-owner). A send failure inside a handler means the
	// connection is broken; the serve loop's next recv surfaces it.
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		env, err := c.recv()
		if err != nil {
			return err
		}
		switch {
		case env.TrainRequest != nil:
			req := env.TrainRequest
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				reply := w.train(req)
				_ = c.send(Envelope{TrainReply: &reply})
			}()
		case env.EvalRequest != nil:
			// Eval broadcasts are strictly sequential per deployment and
			// the eval link chains on their order: decode inline, then
			// compute metrics concurrently with any running solves.
			reply := w.eval(env.EvalRequest)
			if err := c.send(Envelope{EvalReply: &reply}); err != nil {
				return err
			}
		case env.Shutdown != nil:
			return nil
		default:
			return fmt.Errorf("fednet: worker received unexpected envelope %+v", env)
		}
	}
}

// train translates one TrainRequest into a device dispatch.
func (w *Worker) train(req *TrainRequest) TrainReply {
	defer obs.StartSpan(w.trace, obs.Event{Label: "worker-solve", Device: req.Device}).End()
	reply := TrainReply{Round: req.Round, Version: req.Version, Device: req.Device}
	r, err := w.dev.HandleDispatch(core.Dispatch{
		Round:        req.Round,
		Version:      req.Version,
		Device:       req.Device,
		Epochs:       req.Epochs,
		EpochBudget:  req.EpochBudget,
		Mu:           req.Mu,
		LearningRate: req.LearningRate,
		BatchSize:    req.BatchSize,
		BatchSeed:    req.BatchSeed,
		PrivacyTag:   req.PrivacyTag,
		Update:       &req.Update,
	})
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	reply.Update = *r.Update
	reply.EpochsDone = r.EpochsDone
	return reply
}

// eval translates one EvalRequest into a device eval receive.
func (w *Worker) eval(req *EvalRequest) EvalReply {
	reply := EvalReply{Seq: req.Seq}
	r, err := w.dev.HandleEval(core.EvalRequest{Seq: req.Seq, Update: &req.Update})
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	reply.Devices = r.Devices
	return reply
}
