//go:build !race

package fednet

const raceEnabled = false
