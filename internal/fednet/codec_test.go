package fednet

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
)

// TestCodecsMatchSimulatorOverLoopback exercises every registered codec
// over a real TCP loopback deployment and checks the decoded trajectory
// against the simulator: bit for bit for the lossless raw codec, and
// within float tolerance for the lossy ones — the coordinator and the
// simulator derive identical rounding streams and residuals from the
// shared seed, so even lossy runs should agree to the last ulp.
func TestCodecsMatchSimulatorOverLoopback(t *testing.T) {
	fed, mdl := testWorkload()
	for _, name := range comm.Names() {
		t.Run(name, func(t *testing.T) {
			cfg := core.FedProx(6, 5, 3, 0.01, 1)
			cfg.StragglerFraction = 0.5
			cfg.EvalEvery = 2
			cfg.Codec = comm.Spec{Name: name, Bits: 8, TopK: 0.25}
			if name == "topk" {
				// Sparsifying the chained broadcast slows convergence; use
				// the asymmetric deployment shape it is meant for.
				cfg.DownlinkCodec = comm.Spec{Name: "raw"}
			}

			sim, err := core.Run(mdl, fed, cfg)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := launch(t, fed, mdl, cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(sim.Points) != len(dist.Points) {
				t.Fatalf("point counts differ: sim %d, dist %d", len(sim.Points), len(dist.Points))
			}
			lossless := (comm.Spec{Name: name}).Lossless()
			for i := range sim.Points {
				sp, dp := sim.Points[i], dist.Points[i]
				if lossless {
					if sp.TrainLoss != dp.TrainLoss || sp.TestAcc != dp.TestAcc {
						t.Fatalf("round %d: raw codec diverged: sim loss %.17g acc %g, dist loss %.17g acc %g",
							sp.Round, sp.TrainLoss, sp.TestAcc, dp.TrainLoss, dp.TestAcc)
					}
				} else {
					if d := math.Abs(sp.TrainLoss - dp.TrainLoss); d > 1e-9*(1+math.Abs(sp.TrainLoss)) {
						t.Fatalf("round %d: loss differs by %g (sim %.17g, dist %.17g)",
							sp.Round, d, sp.TrainLoss, dp.TrainLoss)
					}
				}
				if sp.Participants != dp.Participants {
					t.Fatalf("round %d: participants %d != %d", sp.Round, sp.Participants, dp.Participants)
				}
				// Analytic byte/epoch accounting mirrors the simulator
				// exactly: same codecs, same contacted devices.
				sc, dc := sp.Cost, dp.Cost
				if sc.UplinkBytes != dc.UplinkBytes || sc.DownlinkBytes != dc.DownlinkBytes || sc.DeviceEpochs != dc.DeviceEpochs {
					t.Fatalf("round %d: accounting diverged: sim %+v, dist %+v", sp.Round, sc, dc)
				}
			}
			// Measured wire traffic exists and exceeds the analytic payload
			// accounting (gob framing, hyperparameters, eval messages).
			fin := dist.Final().Cost
			if fin.WireUplinkBytes <= fin.UplinkBytes || fin.WireDownlinkBytes <= 0 {
				t.Fatalf("measured wire bytes implausible: %+v", fin)
			}
		})
	}
}

// TestCodecNegotiationRejection: a worker that does not offer the
// coordinator's codec aborts the deployment on both sides at Hello time.
func TestCodecNegotiationRejection(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(2, 2, 1, 0.01, 1)
	cfg.Codec = comm.Spec{Name: "qsgd"}
	srv, err := NewServer(mdl, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var shards []*data.Shard
	shards = append(shards, fed.Shards...)
	w := NewWorker(mdl, shards, nil)
	w.Offer = []string{"topk"} // refuses qsgd

	var wg sync.WaitGroup
	var workerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		workerErr = w.Run(ln.Addr().String())
	}()
	_, srvErr := srv.RunWithListener(ln)
	wg.Wait()
	if srvErr == nil {
		t.Fatal("coordinator accepted a worker that refuses its codec")
	}
	if workerErr == nil {
		t.Fatal("worker did not surface the negotiation failure")
	}
}

// TestUncompressedDeploymentMeasuresWire: even without a configured
// codec the coordinator meters actual serialized traffic.
func TestUncompressedDeploymentMeasuresWire(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(3, 4, 2, 0.01, 1)
	cfg.EvalEvery = 3
	dist, err := launch(t, fed, mdl, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	fin := dist.Final().Cost
	if fin.WireUplinkBytes == 0 || fin.WireDownlinkBytes == 0 {
		t.Fatalf("wire metering missing: %+v", fin)
	}
	if fin.UplinkBytes == 0 || fin.DownlinkBytes == 0 {
		t.Fatalf("analytic accounting missing: %+v", fin)
	}
}

// TestUncompressedAccountingMatchesSimulator: without a configured
// codec, fednet keeps the simulator's historical Cost semantics — every
// selected device is charged a download and its epochs, dropped
// stragglers' epochs count as waste.
func TestUncompressedAccountingMatchesSimulator(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedAvg(4, 6, 3, 0.01)
	cfg.StragglerFraction = 0.5
	cfg.EvalEvery = 2

	sim, err := core.Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := launch(t, fed, mdl, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sim.Points {
		sc, dc := sim.Points[i].Cost, dist.Points[i].Cost
		if sc.UplinkBytes != dc.UplinkBytes || sc.DownlinkBytes != dc.DownlinkBytes ||
			sc.DeviceEpochs != dc.DeviceEpochs || sc.WastedEpochs != dc.WastedEpochs {
			t.Fatalf("point %d: sim cost %+v != dist cost %+v", i, sc, dc)
		}
	}
	if dist.Final().Cost.WastedEpochs == 0 {
		t.Fatal("drop policy at 50% stragglers should record wasted epochs")
	}
}

// TestNegotiationRejectionReleasesOtherWorkers: when a later worker
// fails codec negotiation, workers that already registered must receive
// Shutdown instead of blocking in recv forever.
func TestNegotiationRejectionReleasesOtherWorkers(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(2, 2, 1, 0.01, 1)
	cfg.Codec = comm.Spec{Name: "qsgd"}
	srv, err := NewServer(mdl, ServerConfig{Training: cfg, ExpectDevices: fed.NumDevices()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	half := fed.NumDevices() / 2
	good := NewWorker(mdl, fed.Shards[:half], nil)
	bad := NewWorker(mdl, fed.Shards[half:], nil)
	bad.Offer = []string{"raw"} // refuses qsgd

	errs := make(chan error, 2)
	go func() { errs <- good.Run(ln.Addr().String()) }()
	// Give the good worker time to register first so it is the one left
	// waiting when the bad worker aborts the deployment.
	time.Sleep(100 * time.Millisecond)
	go func() { errs <- bad.Run(ln.Addr().String()) }()

	if _, err := srv.RunWithListener(ln); err == nil {
		t.Fatal("coordinator accepted a worker that refuses its codec")
	}
	for i := 0; i < 2; i++ {
		select {
		case <-errs:
			// One worker errors (rejection), the good one exits on
			// Shutdown or connection close; either way it returned.
		case <-time.After(5 * time.Second):
			t.Fatal("a worker is still blocked after the coordinator aborted")
		}
	}
}

// TestWorkerRefusesUnofferedCodec: the worker enforces its own offer
// against the Welcome, so a coordinator cannot install a codec the
// worker declined to advertise.
func TestWorkerRefusesUnofferedCodec(t *testing.T) {
	fed, mdl := testWorkload()
	w := NewWorker(mdl, fed.Shards[:1], nil)
	w.Offer = []string{"raw"}

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- w.ServeConn(server) }()

	c := newConn(client)
	if _, err := c.recv(); err != nil { // the worker's Hello
		t.Fatal(err)
	}
	spec := comm.Spec{Name: "qsgd", Seed: 1}.WithDefaults()
	if err := c.send(Envelope{Welcome: &Welcome{Downlink: spec, Uplink: spec}}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker accepted a codec it did not offer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not reject the unoffered codec")
	}
}
