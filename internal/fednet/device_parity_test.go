package fednet

import (
	"math"
	"net"
	"reflect"
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/frand"
	"fedprox/internal/privacy"
)

// TestDeviceDispatchParityWithWorker is the device-level half of the
// package's parity guarantee: the same Dispatch served by the
// simulator's in-process core.Device and by a fednet.Worker over a real
// loopback connection yields a bit-identical encoded uplink update —
// for the raw codec and for a stateful chained codec, across several
// sequential dispatches (the chains and rounding streams must advance
// in lockstep), and with a device-side epoch budget in effect.
func TestDeviceDispatchParityWithWorker(t *testing.T) {
	fed, mdl := testWorkload()
	shard := fed.Shards[0]

	cases := []struct {
		name string
		spec comm.Spec
	}{
		{"raw", comm.Spec{Name: "raw", Seed: 11}},
		{"delta+qsgd", comm.Spec{Name: "delta+qsgd", Bits: 8, Seed: 11}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.spec.WithDefaults()

			// The in-process device, exactly as core.Run constructs it.
			simDev := core.NewDevice(mdl, fed.Shards[:1], core.DeviceOptions{})
			if err := simDev.InstallLinks(spec, spec); err != nil {
				t.Fatal(err)
			}

			// The worker, served over a real TCP loopback connection with
			// the same negotiated specs.
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			w := NewWorker(mdl, fed.Shards[:1], nil)
			done := make(chan error, 1)
			go func() { done <- w.Run(ln.Addr().String()) }()
			raw, err := ln.Accept()
			if err != nil {
				t.Fatal(err)
			}
			c := newConn(raw)
			defer c.close()
			env, err := c.recv()
			if err != nil {
				t.Fatal(err)
			}
			if env.Hello == nil {
				t.Fatalf("expected Hello, got %+v", env)
			}
			if err := c.send(Envelope{Welcome: &Welcome{Downlink: spec, Uplink: spec}}); err != nil {
				t.Fatal(err)
			}

			// The coordinator's half of the link: encode each round's
			// broadcast once, ship the same bytes to both devices.
			srvLinks, err := comm.NewLinkState(spec, spec)
			if err != nil {
				t.Fatal(err)
			}
			w0 := mdl.InitParams(frand.New(3))
			wt := append([]float64(nil), w0...)
			for round := 0; round < 3; round++ {
				enc, _, err := srvLinks.Link(shard.ID)
				if err != nil {
					t.Fatal(err)
				}
				prev := srvLinks.Prev(shard.ID)
				u := enc.Encode(wt, prev)
				view, err := enc.Decode(u, prev)
				if err != nil {
					t.Fatal(err)
				}
				srvLinks.SetPrev(shard.ID, view)

				d := core.Dispatch{
					Round:        round,
					Version:      round,
					Device:       shard.ID,
					Epochs:       5,
					EpochBudget:  2, // the device, not the server, truncates
					Mu:           1,
					LearningRate: 0.01,
					BatchSize:    10,
					BatchSeed:    frand.New(uint64(100 + round)).State(),
					Update:       u,
				}
				simReply, err := simDev.HandleDispatch(d)
				if err != nil {
					t.Fatal(err)
				}

				req := TrainRequest{
					Round: d.Round, Version: d.Version, Device: d.Device,
					Update: *d.Update, Epochs: d.Epochs, EpochBudget: d.EpochBudget,
					Mu: d.Mu, LearningRate: d.LearningRate, BatchSize: d.BatchSize,
					BatchSeed: d.BatchSeed,
				}
				if err := c.send(Envelope{TrainRequest: &req}); err != nil {
					t.Fatal(err)
				}
				renv, err := c.recv()
				if err != nil {
					t.Fatal(err)
				}
				if renv.TrainReply == nil || renv.TrainReply.Err != "" {
					t.Fatalf("bad train reply: %+v", renv)
				}
				if got, want := renv.TrainReply.EpochsDone, 2; got != want {
					t.Fatalf("round %d: worker ran %d epochs, want the budget %d", round, got, want)
				}
				if simReply.EpochsDone != renv.TrainReply.EpochsDone {
					t.Fatalf("round %d: EpochsDone %d != %d", round, simReply.EpochsDone, renv.TrainReply.EpochsDone)
				}
				if !reflect.DeepEqual(*simReply.Update, renv.TrainReply.Update) {
					t.Fatalf("round %d: encoded uplink updates differ between the sim device and the worker", round)
				}
				// Perturb the model so the next broadcast exercises the chain.
				for i := range wt {
					wt[i] += 0.01 * float64(i%3)
				}
			}
			if err := c.send(Envelope{Shutdown: &Shutdown{}}); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatalf("worker: %v", err)
			}
		})
	}
}

// loopbackBudget grants every dispatch the same epoch allowance.
type loopbackBudget int

func (b loopbackBudget) EpochBudget(tag, device, requested int) int { return int(b) }

// TestDeviceBudgetLoopbackMatchesSimulator extends the executor-parity
// guarantee to the variable-work axis: a fednet run whose workers
// truncate at their device-side budget reproduces the simulator's
// trajectory — and its realized-work accounting — bit for bit.
func TestDeviceBudgetLoopbackMatchesSimulator(t *testing.T) {
	fed, mdl := testWorkload()
	cfg := core.FedProx(6, 5, 8, 0.01, 1)
	cfg.EvalEvery = 2
	cfg.DeviceBudget = loopbackBudget(3)

	sim, err := core.Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := launch(t, fed, mdl, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Points) != len(dist.Points) {
		t.Fatalf("point counts differ: sim %d, dist %d", len(sim.Points), len(dist.Points))
	}
	for i := range sim.Points {
		sp, dp := sim.Points[i], dist.Points[i]
		if sp.TrainLoss != dp.TrainLoss {
			t.Fatalf("round %d: sim loss %.17g != dist loss %.17g", sp.Round, sp.TrainLoss, dp.TrainLoss)
		}
		if math.Float64bits(sp.MeanEpochsDone) != math.Float64bits(dp.MeanEpochsDone) ||
			math.Float64bits(sp.PartialFraction) != math.Float64bits(dp.PartialFraction) {
			t.Fatalf("round %d: work columns differ: sim (%g, %g) vs dist (%g, %g)", sp.Round,
				sp.MeanEpochsDone, sp.PartialFraction, dp.MeanEpochsDone, dp.PartialFraction)
		}
		if sp.Cost.DeviceEpochs != dp.Cost.DeviceEpochs {
			t.Fatalf("round %d: sim charged %d device epochs, dist %d", sp.Round,
				sp.Cost.DeviceEpochs, dp.Cost.DeviceEpochs)
		}
	}
}

// TestWorkerPrivacyIsApplied: a worker built with a privacy mechanism
// noises its uplinks — the device-side DP hook is reachable in a fednet
// deployment and actually changes what leaves the device — and the
// noise stream advances with the wire's PrivacyTag: two dispatches of
// different rounds must not share a noise vector (an observer could
// difference two uplinks to cancel reused noise exactly).
func TestWorkerPrivacyIsApplied(t *testing.T) {
	fed, mdl := testWorkload()
	shards := fed.Shards[:1]
	req := func(tag int) *TrainRequest {
		return &TrainRequest{
			Device: shards[0].ID,
			Epochs: 1, Mu: 1, LearningRate: 0.01, BatchSize: 10,
			BatchSeed:  frand.New(9).State(),
			PrivacyTag: tag,
			Update:     rawUpdate(t, mdl.InitParams(frand.New(3))),
		}
	}
	mech := func() *privacy.Mechanism {
		return &privacy.Mechanism{ClipNorm: 0.5, NoiseStd: 0.01, Seed: 5}
	}
	plain := NewWorker(mdl, shards, nil).train(req(0))
	noised := NewWorkerWithOptions(mdl, shards, core.DeviceOptions{Privacy: mech()}).train(req(0))
	if plain.Err != "" || noised.Err != "" {
		t.Fatalf("train failed: %q / %q", plain.Err, noised.Err)
	}
	if reflect.DeepEqual(plain.Update, noised.Update) {
		t.Fatal("privacy mechanism left the uplink unchanged")
	}
	// Identical request, different round tag: fresh noise. (Fresh workers
	// so the raw links' state is identical across the two calls.)
	tag0 := NewWorkerWithOptions(mdl, shards, core.DeviceOptions{Privacy: mech()}).train(req(0))
	tag1 := NewWorkerWithOptions(mdl, shards, core.DeviceOptions{Privacy: mech()}).train(req(1))
	if reflect.DeepEqual(tag0.Update, tag1.Update) {
		t.Fatal("privacy noise did not advance with the dispatch's PrivacyTag — noise vectors are being reused across rounds")
	}
}

// TestWorkerEvalOrderDeterministic: the eval reply lists hosted devices
// in ascending ID order — the wire output no longer depends on map
// iteration order.
func TestWorkerEvalOrderDeterministic(t *testing.T) {
	fed, mdl := testWorkload()
	w := NewWorker(mdl, fed.Shards, nil)
	params := mdl.InitParams(frand.New(3))
	for trial := 0; trial < 3; trial++ {
		reply := w.eval(&EvalRequest{Seq: trial, Update: rawUpdate(t, params)})
		if reply.Err != "" {
			t.Fatal(reply.Err)
		}
		for i := 1; i < len(reply.Devices); i++ {
			if reply.Devices[i-1].Device >= reply.Devices[i].Device {
				t.Fatalf("trial %d: eval devices out of order at %d", trial, i)
			}
		}
	}
}
