package fednet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/frand"
)

// This file implements the coordinator's asynchronous aggregation modes
// (core.AsyncTotal, core.Buffered). Where the synchronous protocol runs
// lock-step rounds — every round as slow as its slowest contacted worker,
// the exact failure mode FedProx targets — the asynchronous coordinator
// keeps MaxInFlight devices training at all times and folds replies into
// a version-stamped global model as they arrive, damping each
// contribution by its staleness:
//
//	alpha_k = Alpha / (1 + s)^p,   s = versions elapsed since the
//	                               worker's broadcast snapshot
//
// AsyncTotal advances one model version per reply; Buffered accumulates
// BufferK replies and advances one version per flush (FedBuff-style).
// Replies keep flowing while older ones fold, so per-device codec link
// state must be version-aware: every in-flight request records the
// broadcast view and model version it was encoded at, and uplink replies
// decode against exactly that view. The coordinator guarantees at most
// one outstanding request per device, which keeps each device's chained
// downlink state and stateful uplink codec single-owner even though many
// devices interleave on one connection.
//
// The asynchronous modes trade the sync path's bit-reproducibility for
// liveness: arrival order is real-time nondeterminism. They are also
// straggler-resilient in failure, not just latency — a worker that times
// out (ServerConfig.RequestTimeout) or disconnects is evicted and its
// in-flight work is charged as waste, while aggregation continues on the
// surviving devices.

// inflight records one outstanding TrainRequest: the model version and
// decoded broadcast view the request was encoded against (the uplink
// decode base), plus bookkeeping for timeout eviction and waste
// accounting.
type inflight struct {
	device  int
	version int
	view    []float64
	dec     comm.Codec
	epochs  int
	sentAt  time.Time
}

// bufEntry is one decoded reply waiting in the aggregation buffer: the
// device's model delta relative to the broadcast view it trained from,
// not its absolute solution — folding deltas means a stale reply
// contributes its local progress without dragging the global model back
// toward the older point it started at.
type bufEntry struct {
	delta []float64 // wk − view (the device's local progress)
	nk    float64
	snap  int // model version the reply trained from
}

// asyncMsg is what a per-conn reader delivers to the aggregator: one
// received envelope, or the receive error that ended the reader.
type asyncMsg struct {
	c   *conn
	env Envelope
	err error
}

// connState is the aggregator's bookkeeping for one worker connection.
type connState struct {
	c       *conn
	devices []int
	dead    bool
}

// trainAsync runs the asynchronous aggregation schedule. cfg.Rounds
// counts model milestones of roundSize replies each (ClientsPerRound for
// AsyncTotal, BufferK for Buffered), so total device work matches a sync
// run of the same Rounds, and evaluation cadence (round 0, every
// EvalEvery milestones, the final milestone) lines up point for point
// with the synchronous history.
func (s *Server) trainAsync() (*core.History, error) {
	cfg := s.cfg.Training
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	async := cfg.Async.WithDefaults(cfg.ClientsPerRound)
	flushSize := 1
	roundSize := cfg.ClientsPerRound
	if async.Mode == core.Buffered {
		flushSize = async.BufferK
		roundSize = async.BufferK
	}
	target := cfg.Rounds * roundSize

	n := s.cfg.ExpectDevices
	root := frand.New(cfg.Seed)
	selRoot := root.Split("selection")
	stragRoot := root.Split("stragglers")
	batchRoot := root.Split("batches")
	initRng := root.Split("init").Split("params")

	weights := make([]float64, n)
	total := 0
	for id, d := range s.devices {
		weights[id] = float64(d.trainSize)
		total += d.trainSize
	}
	for i := range weights {
		weights[i] /= float64(total)
	}

	w := s.mdl.InitParams(initRng)

	links, err := comm.NewLinkState(s.downSpec, s.upSpec)
	if err != nil {
		return nil, err
	}
	legacyAccounting := !cfg.Codec.Enabled()
	var acc core.Cost

	// Per-conn readers: the strict request/response discipline of the
	// sync path does not survive pipelining, so each connection gets a
	// reader goroutine that routes every inbound envelope (train and
	// eval replies interleaved) to the aggregator. done unblocks readers
	// once the aggregator returns; the deferred shutdown in
	// RunWithListener closes the conns, which unblocks any reader still
	// parked in recv.
	conns := make(map[*conn]*connState, len(s.conns))
	for _, c := range s.conns {
		conns[c] = &connState{c: c}
	}
	for id, d := range s.devices {
		conns[d.conn].devices = append(conns[d.conn].devices, id)
	}
	replyCh := make(chan asyncMsg, len(s.conns)+async.MaxInFlight+8)
	done := make(chan struct{})
	defer close(done)
	for _, c := range s.conns {
		go func(c *conn) {
			for {
				env, err := c.recv()
				select {
				case replyCh <- asyncMsg{c: c, env: env, err: err}:
				case <-done:
					return
				}
				if err != nil {
					return
				}
			}
		}(c)
	}

	// Aggregator state. All of it is owned by this goroutine; the only
	// concurrency is the readers feeding replyCh and the workers' own
	// solves.
	var (
		version     int // global model version
		folded      int // replies folded (or discarded in drain)
		dispatchSeq int // total dispatches, names the env streams
		pending     = make(map[int]*inflight)
		buffer      []bufEntry
		idle        = make(map[int]bool, n)
		liveDevices = n
		// staleness and participation stats since the last recorded point
		staleSum   float64
		staleMax   float64
		staleN     int
		evalFailed error
	)
	for id := range s.devices {
		idle[id] = true
	}

	failConn := func(cs *connState) {
		if cs.dead {
			return
		}
		cs.dead = true
		_ = cs.c.close()
		for _, id := range cs.devices {
			delete(idle, id)
			if in, ok := pending[id]; ok {
				// The dispatched epochs stay charged; whatever the dead
				// worker computed is lost — waste.
				acc.WastedEpochs += in.epochs
				delete(pending, id)
			}
			liveDevices--
		}
	}

	hist := &core.History{Label: core.Label(cfg) + " [fednet]"}

	// collectEvals runs one evaluation broadcast over the live conns,
	// stashing any train replies that arrive meanwhile for the caller to
	// process afterwards.
	var stash []asyncMsg
	record := func(milestone, participants int) error {
		s.evalSeq++
		seq := s.evalSeq
		u, _, err := s.evalLink.Broadcast(w)
		if err != nil {
			return err
		}
		waiting := make(map[*conn]bool)
		for _, cs := range conns {
			if cs.dead {
				continue
			}
			if err := cs.c.send(Envelope{EvalRequest: &EvalRequest{Seq: seq, Update: *u}}); err != nil {
				failConn(cs)
				continue
			}
			waiting[cs.c] = true
		}
		if len(waiting) == 0 {
			return errors.New("fednet: no live workers to evaluate on")
		}
		if !legacyAccounting {
			acc.EvalBytes += u.WireBytes()
		}
		var all []DeviceEval
		deadline := time.Now().Add(s.cfg.RequestTimeout)
		for len(waiting) > 0 {
			var timeout <-chan time.Time
			if s.cfg.RequestTimeout > 0 {
				timeout = time.After(time.Until(deadline))
			}
			select {
			case m := <-replyCh:
				cs := conns[m.c]
				switch {
				case m.err != nil:
					delete(waiting, m.c)
					failConn(cs)
				case m.env.EvalReply != nil:
					delete(waiting, m.c)
					if m.env.EvalReply.Err != "" {
						return errors.New(m.env.EvalReply.Err)
					}
					if !cs.dead {
						all = append(all, m.env.EvalReply.Devices...)
					}
				default:
					stash = append(stash, m)
				}
			case <-timeout:
				for c := range waiting {
					failConn(conns[c])
					delete(waiting, c)
				}
			}
		}
		if len(all) == 0 {
			return errors.New("fednet: evaluation returned no device metrics")
		}
		loss, tacc := combineEvals(all, weights, true)
		cost := acc
		cost.WireUplinkBytes, cost.WireDownlinkBytes = s.BytesOnWire()
		p := core.Point{
			Round:          milestone,
			TrainLoss:      loss,
			TestAcc:        tacc,
			GradVar:        math.NaN(),
			B:              math.NaN(),
			Mu:             cfg.Mu,
			MeanGamma:      math.NaN(),
			Participants:   participants,
			MeanStaleness:  math.NaN(),
			MaxStaleness:   math.NaN(),
			VirtualSeconds: math.NaN(),
			Cost:           cost,
		}
		if staleN > 0 {
			p.MeanStaleness = staleSum / float64(staleN)
			p.MaxStaleness = staleMax
		}
		hist.Points = append(hist.Points, p)
		staleSum, staleMax, staleN = 0, 0, 0
		return nil
	}

	// dispatch ships one TrainRequest to an idle device chosen by the
	// environment streams (uniform or size-weighted, mirroring the sync
	// sampling schemes over the currently idle set). The straggler stream
	// draws partial epoch budgets — under asynchronous aggregation
	// partial work is always folded, the paper's FedProx policy; there is
	// no deadline to drop anyone at.
	dispatch := func() error {
		ids := make([]int, 0, len(idle))
		for id := range idle {
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return nil
		}
		sort.Ints(ids)
		rng := selRoot.SplitIndex(dispatchSeq)
		var id int
		if cfg.Sampling == core.WeightedSimpleAvg {
			ws := make([]float64, len(ids))
			for i, d := range ids {
				ws[i] = weights[d]
			}
			id = ids[rng.WeightedChoice(ws, 1)[0]]
		} else {
			id = ids[rng.Intn(len(ids))]
		}
		epochs := cfg.LocalEpochs
		if cfg.StragglerFraction > 0 {
			srng := stragRoot.SplitIndex(dispatchSeq)
			if srng.Bernoulli(cfg.StragglerFraction) {
				epochs = srng.IntRange(1, cfg.LocalEpochs)
			}
		}
		batchSeed := batchRoot.SplitIndex(dispatchSeq).SplitIndex(id).State()
		dispatchSeq++

		enc, dec, err := links.Link(id)
		if err != nil {
			return err
		}
		prev := links.Prev(id)
		u := enc.Encode(w, prev)
		view, err := enc.Decode(u, prev)
		if err != nil {
			return fmt.Errorf("fednet: async downlink device %d: %w", id, err)
		}
		links.SetPrev(id, view)

		cs := conns[s.devices[id].conn]
		req := TrainRequest{
			Round:        folded / roundSize,
			Version:      version,
			Device:       id,
			Update:       *u,
			Epochs:       epochs,
			Mu:           cfg.Mu,
			LearningRate: cfg.LearningRate,
			BatchSize:    cfg.BatchSize,
			BatchSeed:    batchSeed,
		}
		if err := cs.c.send(Envelope{TrainRequest: &req}); err != nil {
			failConn(cs)
			return nil
		}
		acc.DownlinkBytes += u.WireBytes()
		acc.DeviceEpochs += epochs
		delete(idle, id)
		pending[id] = &inflight{
			device:  id,
			version: version,
			view:    view,
			dec:     dec,
			epochs:  epochs,
			sentAt:  time.Now(),
		}
		return nil
	}

	// flush folds the buffered replies into the global model, FedBuff
	// style: each device's delta is damped by its own staleness at flush
	// time and the damped deltas are combined under the run's sampling
	// scheme —
	//
	//	w ← w + Σ n_k·alpha_k·Δ_k / Σ n_k   (uniform sampling)
	//	w ← w + Σ alpha_k·Δ_k / |B|         (weighted sampling)
	//
	// With fresh replies (s = 0, Alpha = 1, views = w) this reproduces
	// the synchronous round update exactly; for flushSize 1 it is the
	// delta form of the FedAsync fold, w ← w + alpha_k·Δ_k.
	flush := func() {
		num := make([]float64, len(w))
		den := 0.0
		for _, e := range buffer {
			s := float64(version - e.snap)
			a := async.Alpha / math.Pow(1+s, async.StalenessExponent)
			staleSum += s
			staleN++
			if s > staleMax {
				staleMax = s
			}
			cw := 1.0
			if cfg.Sampling != core.WeightedSimpleAvg {
				cw = e.nk
			}
			den += cw
			for i, v := range e.delta {
				num[i] += cw * a * v
			}
		}
		if den > 0 {
			for i := range w {
				w[i] += num[i] / den
			}
			version++
		}
		buffer = buffer[:0]
	}

	handleTrainReply := func(m asyncMsg, reply *TrainReply) error {
		in, ok := pending[reply.Device]
		if !ok {
			return nil // evicted conn's late reply routed elsewhere: drop
		}
		delete(pending, reply.Device)
		if cs := conns[m.c]; !cs.dead {
			idle[reply.Device] = true
		}
		if reply.Err != "" {
			return errors.New(reply.Err)
		}
		wk, err := in.dec.Decode(&reply.Update, in.view)
		if err != nil {
			return fmt.Errorf("fednet: async uplink device %d: %w", reply.Device, err)
		}
		acc.UplinkBytes += reply.Update.WireBytes()
		if folded >= target {
			// Drain phase: the schedule is complete; late work is waste.
			acc.WastedEpochs += in.epochs
			return nil
		}
		delta := make([]float64, len(wk))
		for i := range wk {
			delta[i] = wk[i] - in.view[i]
		}
		buffer = append(buffer, bufEntry{delta: delta, nk: float64(s.devices[reply.Device].trainSize), snap: in.version})
		folded++
		if len(buffer) >= flushSize {
			flush()
		}
		if folded%roundSize == 0 {
			milestone := folded / roundSize
			if milestone%cfg.EvalEvery == 0 || milestone == cfg.Rounds {
				// A milestone always folds exactly roundSize replies —
				// the async analogue of the sync per-round participant
				// count.
				if err := record(milestone, roundSize); err != nil {
					evalFailed = err
				}
			}
		}
		return nil
	}

	if err := record(0, 0); err != nil {
		return nil, err
	}

	for folded < target || len(pending) > 0 {
		if evalFailed != nil {
			return nil, evalFailed
		}
		if liveDevices == 0 {
			return nil, errors.New("fednet: async aggregation lost every worker")
		}
		// Keep MaxInFlight devices busy while the schedule has work left.
		for folded+len(pending) < target && len(pending) < async.MaxInFlight && len(idle) > 0 {
			if err := dispatch(); err != nil {
				return nil, err
			}
		}
		if len(pending) == 0 {
			if folded >= target {
				break
			}
			continue // a conn just died; re-check liveness and re-dispatch
		}

		// Process any replies stashed during an evaluation wait first.
		var m asyncMsg
		if len(stash) > 0 {
			m, stash = stash[0], stash[1:]
		} else {
			var timeout <-chan time.Time
			if s.cfg.RequestTimeout > 0 {
				earliest := time.Time{}
				for _, in := range pending {
					d := in.sentAt.Add(s.cfg.RequestTimeout)
					if earliest.IsZero() || d.Before(earliest) {
						earliest = d
					}
				}
				timeout = time.After(time.Until(earliest))
			}
			select {
			case m = <-replyCh:
			case <-timeout:
				now := time.Now()
				for _, in := range pending {
					if now.Sub(in.sentAt) >= s.cfg.RequestTimeout {
						cs := conns[s.devices[in.device].conn]
						failConn(cs)
					}
				}
				continue
			}
		}

		cs := conns[m.c]
		switch {
		case m.err != nil:
			failConn(cs)
		case m.env.TrainReply != nil:
			if err := handleTrainReply(m, m.env.TrainReply); err != nil {
				return nil, err
			}
		case m.env.EvalReply != nil:
			// A late eval reply from a conn that timed out during a
			// previous record call: drop it.
		default:
			return nil, fmt.Errorf("fednet: async coordinator received unexpected envelope %+v", m.env)
		}
	}
	if evalFailed != nil {
		return nil, evalFailed
	}
	return hist, nil
}
