package fednet

import (
	"errors"
	"fmt"
	"net"
	"time"

	"fedprox/internal/core"
	"fedprox/internal/obs"
)

// This file drives the coordinator's asynchronous aggregation modes
// (core.AsyncTotal, core.Buffered) over real connections. Where the
// synchronous protocol runs lock-step rounds — every round as slow as
// its slowest contacted worker, the exact failure mode FedProx targets —
// the asynchronous schedule keeps MaxInFlight devices training at all
// times and folds replies into a version-stamped global model as they
// arrive, damping each contribution by its staleness alpha/(1+s)^p.
//
// All of that logic lives in core.Coordinator; this loop only owns the
// transport: per-conn reader goroutines route interleaved replies to the
// aggregator, RequestTimeout and connection errors become WorkerLost
// events (the worker's devices are evicted and its in-flight work
// charged as waste, while aggregation continues on the survivors), and
// Dispatch/Evaluate commands become pipelined TrainRequests and
// broadcast EvalRequests.
//
// Failure is a round trip, not a one-way door: the listener keeps
// accepting for the whole run, so an evicted worker can reconnect. Its
// Hello is re-validated (same devices, same sizes, codec offer) and the
// coordinator re-admits the devices with reset link state on both
// endpoints — the re-admission Welcome carries the shared eval chain's
// current base so the rejoining worker decodes the next evaluation
// broadcast in lockstep.
//
// The asynchronous modes trade the sync path's bit-reproducibility for
// liveness: arrival order is real-time nondeterminism. The simulator
// executes the same coordinator against the internal/vtime virtual
// clock instead, where the trajectory is bit-reproducible.

// asyncMsg is what a per-conn reader delivers to the aggregator: one
// received envelope, or the receive error that ended the reader.
type asyncMsg struct {
	c   *conn
	env Envelope
	err error
}

// regMsg is a mid-run registration attempt from a reconnecting worker.
type regMsg struct {
	c     *conn
	hello *Hello
}

// connState is the aggregator's bookkeeping for one worker connection.
type connState struct {
	c       *conn
	devices []int
	dead    bool
}

// asyncDriver owns the transport state of one asynchronous run.
type asyncDriver struct {
	s        *Server
	conns    map[*conn]*connState
	inflight map[int]time.Time // device -> dispatch time, for timeouts
	replyCh  chan asyncMsg
	regCh    chan regMsg
	done     chan struct{}
	stash    []asyncMsg
}

// trainAsync runs the asynchronous schedule. The listener stays open so
// evicted workers can reconnect; it is closed when the run ends.
func (s *Server) trainAsync(ln net.Listener) (*core.History, error) {
	d := &asyncDriver{
		s:        s,
		conns:    make(map[*conn]*connState, len(s.conns)),
		inflight: make(map[int]time.Time),
		replyCh:  make(chan asyncMsg, len(s.conns)+64),
		regCh:    make(chan regMsg, 4),
		done:     make(chan struct{}),
	}
	defer close(d.done)
	defer ln.Close() // stops the re-admission accept loop
	for _, c := range s.conns {
		d.conns[c] = &connState{c: c}
	}
	for id, dev := range s.devices {
		d.conns[dev.conn].devices = append(d.conns[dev.conn].devices, id)
	}
	for _, c := range s.conns {
		d.startReader(c)
	}
	go d.acceptLoop(ln)
	return d.run()
}

// startReader routes every inbound envelope of one connection (train and
// eval replies interleaved) to the aggregator. done unblocks readers
// once the aggregator returns; the deferred shutdown in RunWithListener
// closes the conns, which unblocks any reader still parked in recv.
func (d *asyncDriver) startReader(c *conn) {
	go func() {
		for {
			env, err := c.recv()
			select {
			case d.replyCh <- asyncMsg{c: c, env: env, err: err}:
			case <-d.done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
}

// acceptLoop admits reconnecting workers for the whole run: each
// accepted connection gets a handshake goroutine (so a rogue connection
// that never sends a Hello cannot block further accepts) whose Hello is
// handed to the aggregator for validation and re-admission.
func (d *asyncDriver) acceptLoop(ln net.Listener) {
	for {
		raw, err := ln.Accept()
		if err != nil {
			return // listener closed: run over
		}
		c := d.s.newMeteredConn(raw)
		go func() {
			// The Hello read is deadline-bounded: a connection that never
			// registers must release its goroutine and socket instead of
			// leaking for the life of the process.
			handshake := d.s.cfg.RequestTimeout
			if handshake <= 0 {
				handshake = 30 * time.Second
			}
			c.armRecvDeadline(handshake)
			env, err := c.recv()
			c.armRecvDeadline(0)
			if err != nil || env.Hello == nil {
				_ = c.close()
				return
			}
			select {
			case d.regCh <- regMsg{c: c, hello: env.Hello}:
			case <-d.done:
				_ = c.close()
			}
		}()
	}
}

// run is the aggregator loop: execute coordinator commands, then block
// for the next transport event and translate it.
func (d *asyncDriver) run() (*core.History, error) {
	s := d.s
	queue, err := s.coord.Start()
	if err != nil {
		return nil, err
	}
	for {
		for len(queue) > 0 {
			cmd := queue[0]
			queue = queue[1:]
			switch v := cmd.(type) {
			case core.Dispatch:
				more, err := d.dispatch(v)
				if err != nil {
					return nil, err
				}
				queue = append(queue, more...)
			case core.Evaluate:
				res, lost, err := d.evaluate(v)
				for _, devs := range lost {
					more, werr := s.coord.WorkerLost(devs)
					if werr != nil {
						return nil, werr
					}
					queue = append(queue, more...)
				}
				if err != nil {
					return nil, err
				}
				more, err := s.coord.EvalDone(res)
				if err != nil {
					return nil, err
				}
				queue = append(queue, more...)
			case core.Done:
				return s.coord.History(), nil
			default:
				// Checkpoint/ObserveLoss/AdvanceClock are never emitted
				// for fednet configurations (rejected by NewServer).
			}
		}
		more, err := d.waitEvent()
		if err != nil {
			return nil, err
		}
		queue = more
	}
}

// dispatch ships one TrainRequest. A send failure means the worker is
// gone: its devices are evicted (the coordinator charges the in-flight
// work as waste) and aggregation continues.
func (d *asyncDriver) dispatch(v core.Dispatch) ([]core.Command, error) {
	cs := d.conns[d.s.devices[v.Device].conn]
	req := TrainRequest{
		Round:        v.Round,
		Version:      v.Version,
		Device:       v.Device,
		Update:       *v.Update,
		Epochs:       v.Epochs,
		EpochBudget:  v.EpochBudget,
		Mu:           v.Mu,
		LearningRate: v.LearningRate,
		BatchSize:    v.BatchSize,
		BatchSeed:    v.BatchSeed,
		PrivacyTag:   v.PrivacyTag,
	}
	if cs.dead {
		return d.s.coord.WorkerLost([]int{v.Device})
	}
	if err := cs.c.send(Envelope{TrainRequest: &req}); err != nil {
		return d.failConn(cs)
	}
	// Only a confirmed send is billed as traffic and device work.
	d.s.coord.DispatchSent(v.Device)
	d.inflight[v.Device] = time.Now()
	return nil, nil
}

// failConn evicts a connection: closes it, clears its devices' in-flight
// bookkeeping, and reports the loss to the coordinator.
func (d *asyncDriver) failConn(cs *connState) ([]core.Command, error) {
	if cs.dead {
		return nil, nil
	}
	cs.dead = true
	_ = cs.c.close()
	for _, id := range cs.devices {
		delete(d.inflight, id)
	}
	cmds, err := d.s.coord.WorkerLost(cs.devices)
	if err != nil {
		return nil, fmt.Errorf("fednet: async %w", err)
	}
	return cmds, nil
}

// waitEvent blocks for the next transport event (a stashed message, a
// reply, a re-registration, or a timeout) and translates it into
// coordinator events.
func (d *asyncDriver) waitEvent() ([]core.Command, error) {
	s := d.s
	var m asyncMsg
	if len(d.stash) > 0 {
		m, d.stash = d.stash[0], d.stash[1:]
	} else {
		var timeout <-chan time.Time
		if s.cfg.RequestTimeout > 0 && len(d.inflight) > 0 {
			earliest := time.Time{}
			for _, at := range d.inflight {
				dl := at.Add(s.cfg.RequestTimeout)
				if earliest.IsZero() || dl.Before(earliest) {
					earliest = dl
				}
			}
			timeout = time.After(time.Until(earliest))
		}
		select {
		case m = <-d.replyCh:
		case reg := <-d.regCh:
			return d.admit(reg)
		case <-timeout:
			var cmds []core.Command
			now := time.Now()
			for id, at := range d.inflight {
				if now.Sub(at) >= s.cfg.RequestTimeout {
					more, err := d.failConn(d.conns[s.devices[id].conn])
					if err != nil {
						return nil, err
					}
					cmds = append(cmds, more...)
				}
			}
			return cmds, nil
		}
	}

	cs := d.conns[m.c]
	switch {
	case m.err != nil:
		return d.failConn(cs)
	case cs.dead:
		// A message queued by a reader before its connection was evicted.
		// It must not be delivered: after a re-admission the device may
		// have a fresh in-flight dispatch, and the stale reply would
		// alias it (decoding old bytes against the new dispatch's view).
		return nil, nil
	case m.env.TrainReply != nil:
		reply := m.env.TrainReply
		if _, ok := d.inflight[reply.Device]; !ok {
			return nil, nil // an evicted worker's late reply: drop
		}
		delete(d.inflight, reply.Device)
		if reply.Err != "" {
			return nil, errors.New(reply.Err)
		}
		return s.coord.HandleReply(core.Reply{Device: reply.Device, Update: &reply.Update, EpochsDone: reply.EpochsDone})
	case m.env.EvalReply != nil:
		// A late eval reply from a conn that timed out during a previous
		// evaluation: drop it.
		return nil, nil
	default:
		return nil, fmt.Errorf("fednet: async coordinator received unexpected envelope %+v", m.env)
	}
}

// admit processes a mid-run registration: the codec offer and the device
// roster are validated (the coordinator refuses unknown devices,
// still-live devices, and changed shard sizes without disturbing the
// run), link state is reset on the coordinator's side, and the Welcome
// ships the eval chain base so the worker's fresh endpoint decodes in
// lockstep. A rejected worker gets a Welcome.Err and the run continues.
func (d *asyncDriver) admit(reg regMsg) ([]core.Command, error) {
	s := d.s
	if msg := s.codecOfferError(reg.hello); msg != "" {
		_ = reg.c.send(Envelope{Welcome: &Welcome{Err: msg}})
		_ = reg.c.close()
		return nil, nil
	}
	regs := make([]core.DeviceReg, 0, len(reg.hello.Devices))
	ids := make([]int, 0, len(reg.hello.Devices))
	for _, dev := range reg.hello.Devices {
		regs = append(regs, core.DeviceReg{ID: dev.ID, TrainSize: dev.TrainSize})
		ids = append(ids, dev.ID)
	}
	cmds, err := s.coord.RegisterWorker(regs)
	if err != nil {
		// Validation refusal (unknown device, still-live device, size
		// mismatch): reject this worker, keep the run alive.
		_ = reg.c.send(Envelope{Welcome: &Welcome{Err: err.Error()}})
		_ = reg.c.close()
		return nil, nil
	}
	welcome := &Welcome{Downlink: s.downSpec, Uplink: s.upSpec, EvalPrev: s.coord.EvalResyncState()}
	if err := reg.c.send(Envelope{Welcome: welcome}); err != nil {
		// Admitted but unreachable: evict again immediately.
		_ = reg.c.close()
		more, werr := s.coord.WorkerLost(ids)
		if werr != nil {
			return nil, fmt.Errorf("fednet: async %w", werr)
		}
		return append(cmds, more...), nil
	}
	cs := &connState{c: reg.c, devices: ids}
	d.conns[reg.c] = cs
	s.conns = append(s.conns, reg.c) // shutdownWorkers releases it at run end
	for _, id := range ids {
		s.devices[id].conn = reg.c
	}
	d.startReader(reg.c)
	s.emit(obs.Event{Kind: obs.KindWorkerJoin, N: len(ids)})
	return cmds, nil
}

// evaluate runs one evaluation broadcast over the live conns, stashing
// any train replies that arrive meanwhile for the aggregator to process
// afterwards. Connections that fail mid-evaluation are evicted; their
// device lists are returned for WorkerLost delivery.
func (d *asyncDriver) evaluate(v core.Evaluate) (core.EvalResult, [][]int, error) {
	s := d.s
	defer obs.StartSpan(s.trace, obs.Event{Label: "fednet-eval", Device: -1}).End()
	var lost [][]int
	fail := func(cs *connState) {
		if cs.dead {
			return
		}
		cs.dead = true
		_ = cs.c.close()
		for _, id := range cs.devices {
			delete(d.inflight, id)
		}
		lost = append(lost, cs.devices)
	}

	waiting := make(map[*conn]bool)
	for _, cs := range d.conns {
		if cs.dead {
			continue
		}
		if err := cs.c.send(Envelope{EvalRequest: &EvalRequest{Seq: v.Seq, Update: *v.Update}}); err != nil {
			fail(cs)
			continue
		}
		waiting[cs.c] = true
	}
	if len(waiting) == 0 {
		return core.EvalResult{}, lost, errors.New("fednet: no live workers to evaluate on")
	}
	var all []DeviceEval
	deadline := time.Now().Add(s.cfg.RequestTimeout)
	for len(waiting) > 0 {
		var timeout <-chan time.Time
		if s.cfg.RequestTimeout > 0 {
			timeout = time.After(time.Until(deadline))
		}
		select {
		case m := <-d.replyCh:
			cs := d.conns[m.c]
			switch {
			case m.err != nil:
				delete(waiting, m.c)
				fail(cs)
			case m.env.EvalReply != nil:
				delete(waiting, m.c)
				if m.env.EvalReply.Err != "" {
					return core.EvalResult{}, lost, errors.New(m.env.EvalReply.Err)
				}
				if !cs.dead {
					all = append(all, m.env.EvalReply.Devices...)
				}
			default:
				d.stash = append(d.stash, m)
			}
		case <-timeout:
			for c := range waiting {
				fail(d.conns[c])
				delete(waiting, c)
			}
		}
	}
	if len(all) == 0 {
		return core.EvalResult{}, lost, errors.New("fednet: evaluation returned no device metrics")
	}
	loss, acc := combineEvals(all, s.weights, true)
	res := core.EvalResult{Loss: loss, Acc: acc}
	res.WireUplinkBytes, res.WireDownlinkBytes = s.BytesOnWire()
	return res, lost, nil
}
