package fednet

import (
	"errors"
	"fmt"
	"math"
	"net"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/model"
	"fedprox/internal/obs"
)

// ServerConfig parameterizes a coordinator.
type ServerConfig struct {
	// Training carries the federated hyperparameters. TrackDissimilarity,
	// TrackGamma, Capability, AdaptiveMu, and Solver are simulator-only
	// features and must be unset (workers choose their own local solver).
	// Training.Async selects the aggregation discipline: the default
	// synchronous rounds reproduce the simulator bit for bit; AsyncTotal
	// and Buffered trade that determinism for straggler tolerance.
	Training core.Config
	// ExpectDevices is the total number of devices that must register
	// (across all workers) before training starts. Device IDs must cover
	// exactly 0..ExpectDevices-1 so the environment streams line up with
	// the simulator's.
	ExpectDevices int
	// RequestTimeout bounds how long the coordinator waits for any reply
	// on a connection — and how long any single send may block, so a
	// worker that stops reading is also caught — before declaring the
	// worker dead (zero waits forever). The synchronous protocol fails
	// the run on a timed-out worker; the asynchronous modes evict the
	// worker's devices and keep aggregating from the rest.
	RequestTimeout time.Duration
	// Tier is 1 + this coordinator's depth in a hierarchical deployment
	// (1 = the tree's root, whose devices are edge aggregators); 0 is an
	// untiered flat deployment. Trace events carry Tier-1 so `fedtrace
	// summary` can roll dispatches and stragglers up by tier.
	Tier int
}

// Server is the federated coordinator's transport: it owns the worker
// connections and the wire protocol, and never sees training data. All
// protocol decisions — selection, straggler policies, aggregation and
// the staleness-damped folds, accounting — happen in the shared
// core.Coordinator; this package only translates its Dispatch/Evaluate
// commands into TrainRequest/EvalRequest exchanges and feeds worker
// replies, losses, and (re-)registrations back as events. Cross-executor
// equivalence with the simulator therefore holds by construction.
type Server struct {
	mdl   model.Model
	cfg   ServerConfig
	coord *core.Coordinator

	// downSpec/upSpec are the negotiated codec specs ("raw" when the
	// training config carries no codec, so the wire always moves
	// comm.Updates).
	downSpec comm.Spec
	upSpec   comm.Spec

	// bytesIn/bytesOut meter actual serialized traffic across all worker
	// connections.
	bytesIn, bytesOut atomic.Int64

	conns   []*conn
	devices map[int]*device // device ID -> hosting connection + size
	weights []float64       // p_k, for combining distributed evaluations

	// trace mirrors Training.Trace for transport-level events the
	// coordinator core never sees: worker registration and the distributed
	// evaluation span. Server events are always untimed (Time NaN) — a
	// deployment wraps the sink in obs.WallClock for wall-clock stamps.
	trace obs.Sink
}

type device struct {
	conn      *conn
	trainSize int
}

// NewServer builds a coordinator for the given model and configuration.
func NewServer(mdl model.Model, cfg ServerConfig) (*Server, error) {
	return newServerWithOptions(mdl, cfg, core.CoordinatorOptions{
		NumDevices: cfg.ExpectDevices,
		Tier:       cfg.Tier,
		// The wire protocol always carries encoded updates; no codec
		// means raw, which reproduces the uncompressed trajectory bit
		// for bit.
		WireEncoded: true,
		LabelSuffix: " [fednet]",
	})
}

// newServerWithOptions is NewServer with the coordinator options under
// the caller's control — the tier edge builds its child-facing half
// here with a stepped, tier-stamped coordinator.
func newServerWithOptions(mdl model.Model, cfg ServerConfig, opts core.CoordinatorOptions) (*Server, error) {
	if err := cfg.Training.Validate(); err != nil {
		return nil, err
	}
	if cfg.Training.TrackDissimilarity || cfg.Training.TrackGamma {
		return nil, errors.New("fednet: dissimilarity/gamma tracking is simulator-only")
	}
	if cfg.Training.AdaptiveMu {
		return nil, errors.New("fednet: adaptive mu is simulator-only")
	}
	if cfg.Training.Capability != nil {
		return nil, errors.New("fednet: capability models are simulator-only")
	}
	if cfg.Training.Solver != nil {
		return nil, errors.New("fednet: local solvers are chosen by workers")
	}
	if cfg.Training.Privacy != nil {
		// The mechanism is client-side state (it runs between the local
		// solve and the uplink encode, inside core.Device); a server
		// config cannot install it on remote workers. Reject rather than
		// silently train without privacy.
		return nil, errors.New("fednet: update-level privacy is device-side state; configure it on the workers (fednet.NewWorkerWithOptions / fedworker privacy flags)")
	}
	if cfg.Training.Checkpointer != nil {
		return nil, errors.New("fednet: checkpointing is simulator-only")
	}
	if cfg.Training.VTime.Enabled() {
		// The deadline/byte-budget policies are clock-native: they need
		// the virtual engine's reply latencies, which a real transport
		// does not have. Reject rather than half-apply them.
		return nil, errors.New("fednet: virtual-time models are simulator-only")
	}
	if cfg.ExpectDevices <= 0 {
		return nil, errors.New("fednet: ExpectDevices must be positive")
	}
	coord, err := core.NewCoordinator(mdl, cfg.Training, opts)
	if err != nil {
		return nil, err
	}
	down, up := coord.CommSpecs()
	return &Server{
		mdl:      mdl,
		cfg:      cfg,
		coord:    coord,
		downSpec: down,
		upSpec:   up,
		devices:  make(map[int]*device),
		trace:    cfg.Training.Trace,
	}, nil
}

// emit reports one transport-level event. Server events carry no virtual
// clock; Time is NaN so an obs.WallClock wrapper can stamp them.
func (s *Server) emit(e obs.Event) {
	if s.trace == nil {
		return
	}
	e.Time = math.NaN()
	s.trace.Emit(e)
}

// BytesOnWire returns the actual serialized bytes moved over all worker
// connections so far: read is worker→coordinator traffic (uplink),
// written is coordinator→worker (downlink). Both include gob framing and
// evaluation messages, which the analytic Cost accounting excludes.
func (s *Server) BytesOnWire() (read, written int64) {
	return s.bytesIn.Load(), s.bytesOut.Load()
}

// Run listens on addr, waits for every device to register, executes the
// training schedule, shuts the workers down, and returns the trajectory.
func (s *Server) Run(addr string) (*core.History, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fednet: listen %s: %w", addr, err)
	}
	defer ln.Close()
	return s.RunWithListener(ln)
}

// RunWithListener is Run over a caller-provided listener (tests use an
// ephemeral loopback listener). Workers that registered are always shut
// down, including when registration itself fails partway (e.g. a
// later-connecting worker refuses the codec) — otherwise the
// already-welcomed workers would block in recv forever. Asynchronous
// runs keep accepting on the listener for the whole run, so an evicted
// worker can reconnect and be re-admitted, and close it when done.
func (s *Server) RunWithListener(ln net.Listener) (*core.History, error) {
	defer s.shutdownWorkers()
	if err := s.acceptAll(ln); err != nil {
		return nil, err
	}
	s.weights = s.deviceWeights()
	if s.cfg.Training.Async.Enabled() {
		return s.trainAsync(ln)
	}
	return s.train()
}

// acceptAll accepts worker connections until every expected device has
// registered, feeding each registration to the coordinator.
func (s *Server) acceptAll(ln net.Listener) error {
	registered := 0
	for registered < s.cfg.ExpectDevices {
		raw, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("fednet: accept: %w", err)
		}
		c := s.newMeteredConn(raw)
		env, err := c.recv()
		if err != nil {
			return err
		}
		if env.Hello == nil {
			return fmt.Errorf("fednet: expected Hello, got %+v", env)
		}
		s.conns = append(s.conns, c)
		if err := s.checkCodecOffer(c, env.Hello); err != nil {
			return err
		}
		if err := c.send(Envelope{Welcome: &Welcome{Downlink: s.downSpec, Uplink: s.upSpec}}); err != nil {
			return err
		}
		regs := make([]core.DeviceReg, 0, len(env.Hello.Devices))
		for _, d := range env.Hello.Devices {
			regs = append(regs, core.DeviceReg{ID: d.ID, TrainSize: d.TrainSize})
		}
		if _, err := s.coord.RegisterWorker(regs); err != nil {
			return fmt.Errorf("fednet: %w", err)
		}
		s.emit(obs.Event{Kind: obs.KindWorkerJoin, N: len(env.Hello.Devices)})
		for _, d := range env.Hello.Devices {
			s.devices[d.ID] = &device{conn: c, trainSize: d.TrainSize}
			registered++
		}
	}
	return nil
}

// newMeteredConn wraps an accepted connection with byte metering and the
// send timeout: a worker that stops reading must surface as a send
// error, not block the coordinator in gob Encode with its TCP buffers
// full.
func (s *Server) newMeteredConn(raw net.Conn) *conn {
	c := newConn(meteredConn{Conn: raw, read: &s.bytesIn, written: &s.bytesOut})
	c.sendTimeout = s.cfg.RequestTimeout
	return c
}

// codecOfferError is the single codec-negotiation rule: the worker must
// offer both directions' codecs (an empty offer means raw only). It
// returns the rejection message, or "" when the offer is acceptable —
// callers decide whether a rejection is fatal (initial registration) or
// survivable (mid-run re-admission).
func (s *Server) codecOfferError(hello *Hello) string {
	offered := hello.Codecs
	if len(offered) == 0 {
		offered = []string{"raw"}
	}
	for _, want := range []string{s.downSpec.Name, s.upSpec.Name} {
		if !slices.Contains(offered, want) {
			return fmt.Sprintf("fednet: coordinator requires codec %q, worker offers %v", want, offered)
		}
	}
	precs := hello.Precisions
	if len(precs) == 0 {
		precs = []string{"f64"}
	}
	if want := s.downSpec.Precision.String(); !slices.Contains(precs, want) {
		return fmt.Sprintf("fednet: coordinator requires precision %q, worker offers %v", want, precs)
	}
	return ""
}

// checkCodecOffer enforces codecOfferError fatally, telling the worker
// why before failing the registration.
func (s *Server) checkCodecOffer(c *conn, hello *Hello) error {
	if msg := s.codecOfferError(hello); msg != "" {
		_ = c.send(Envelope{Welcome: &Welcome{Err: msg}})
		return errors.New(msg)
	}
	return nil
}

// deviceWeights returns p_k = n_k/n over the registered devices, the
// combination weights for distributed evaluation.
func (s *Server) deviceWeights() []float64 {
	weights := make([]float64, s.cfg.ExpectDevices)
	total := 0
	for id, d := range s.devices {
		weights[id] = float64(d.trainSize)
		total += d.trainSize
	}
	for i := range weights {
		weights[i] /= float64(total)
	}
	return weights
}

func (s *Server) shutdownWorkers() {
	for _, c := range s.conns {
		_ = c.send(Envelope{Shutdown: &Shutdown{}})
		_ = c.close()
	}
}

// train drives the coordinator's synchronous schedule: each batch of
// Dispatch commands becomes one round of concurrent TrainRequest
// round-trips, and Evaluate commands become distributed evaluation
// broadcasts. Any worker failure fails the run — the synchronous
// protocol cannot continue without its devices.
func (s *Server) train() (*core.History, error) {
	cmds, err := s.coord.Start()
	if err != nil {
		return nil, err
	}
	for {
		var dispatches []core.Dispatch
		var next []core.Command
		for _, cmd := range cmds {
			switch v := cmd.(type) {
			case core.Dispatch:
				dispatches = append(dispatches, v)
			case core.Evaluate:
				// The synchronous path never renormalizes: all devices
				// report or the run fails, and dividing by the full weight
				// sum would perturb the bit-reproducible trajectory.
				res, err := s.evaluate(v, false)
				if err != nil {
					return nil, err
				}
				more, err := s.coord.EvalDone(res)
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			case core.Done:
				return s.coord.History(), nil
			default:
				// Checkpoint/ObserveLoss/AdvanceClock are never emitted
				// for fednet configurations (rejected by NewServer).
			}
		}
		if len(dispatches) > 0 {
			replies, err := s.roundTripAll(dispatches)
			if err != nil {
				return nil, err
			}
			for _, r := range replies {
				more, err := s.coord.HandleReply(r)
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			}
		} else if len(next) == 0 {
			return nil, errors.New("fednet: coordinator stalled with no commands")
		}
		cmds = next
	}
}

// roundTripAll executes one round's dispatches concurrently (one
// goroutine per device, serialized per shared connection by the conn's
// round-trip lock) and returns the replies in dispatch order.
func (s *Server) roundTripAll(dispatches []core.Dispatch) ([]core.Reply, error) {
	type result struct {
		reply core.Reply
		err   error
	}
	results := make([]result, len(dispatches))
	var wg sync.WaitGroup
	for i, d := range dispatches {
		wg.Add(1)
		go func(i int, d core.Dispatch) {
			defer wg.Done()
			dev := s.devices[d.Device]
			req := TrainRequest{
				Round:        d.Round,
				Version:      d.Version,
				Device:       d.Device,
				Update:       *d.Update,
				Epochs:       d.Epochs,
				EpochBudget:  d.EpochBudget,
				Mu:           d.Mu,
				LearningRate: d.LearningRate,
				BatchSize:    d.BatchSize,
				BatchSeed:    d.BatchSeed,
				PrivacyTag:   d.PrivacyTag,
			}
			env, err := s.roundTrip(dev.conn, Envelope{TrainRequest: &req})
			if err != nil {
				results[i] = result{err: err}
				return
			}
			reply := env.TrainReply
			if reply == nil {
				results[i] = result{err: fmt.Errorf("fednet: expected TrainReply, got %+v", env)}
				return
			}
			if reply.Err != "" {
				results[i] = result{err: errors.New(reply.Err)}
				return
			}
			results[i] = result{reply: core.Reply{Device: d.Device, Update: &reply.Update, EpochsDone: reply.EpochsDone}}
		}(i, d)
	}
	wg.Wait()
	replies := make([]core.Reply, 0, len(dispatches))
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("fednet: round %d device %d: %w", dispatches[i].Round, dispatches[i].Device, r.err)
		}
		replies = append(replies, r.reply)
	}
	return replies, nil
}

// roundTrip serializes one request/response exchange on a connection.
// The connection's send lock plus the strict request/response protocol
// per device make concurrent exchanges from different devices on the same
// worker safe only if serialized — the per-conn reply lock does that.
// With a RequestTimeout configured the reply wait is bounded: a worker
// that never answers surfaces as an i/o timeout instead of hanging the
// deployment.
func (s *Server) roundTrip(c *conn, e Envelope) (Envelope, error) {
	c.rtMu.Lock()
	defer c.rtMu.Unlock()
	if err := c.send(e); err != nil {
		return Envelope{}, err
	}
	if s.cfg.RequestTimeout > 0 {
		c.armRecvDeadline(s.cfg.RequestTimeout)
		defer c.armRecvDeadline(0)
	}
	return c.recv()
}

// evaluate gathers distributed metrics for one Evaluate command and
// combines them exactly as internal/metrics does (ascending-device
// weighted sum), so losses match the simulator bit for bit. The global
// model travels encoded on the shared eval link. With renormalize set,
// the per-device weights are rescaled by the reporting mass, which keeps
// the metrics meaningful when the asynchronous modes lose workers
// mid-run.
func (s *Server) evaluate(v core.Evaluate, renormalize bool) (core.EvalResult, error) {
	all, err := s.gatherEvals(v)
	if err != nil {
		return core.EvalResult{}, err
	}
	loss, acc := combineEvals(all, s.weights, renormalize)
	res := core.EvalResult{Loss: loss, Acc: acc}
	res.WireUplinkBytes, res.WireDownlinkBytes = s.BytesOnWire()
	return res, nil
}

// gatherEvals broadcasts one Evaluate to every connection and collects
// the raw per-device contributions — the tier edge folds these into a
// single pseudo-device report instead of combining them into a scalar.
func (s *Server) gatherEvals(v core.Evaluate) ([]DeviceEval, error) {
	defer obs.StartSpan(s.trace, obs.Event{Label: "fednet-eval", Device: -1}).End()
	type shardEval struct {
		evals []DeviceEval
		err   error
	}
	out := make([]shardEval, len(s.conns))
	var wg sync.WaitGroup
	for i, c := range s.conns {
		wg.Add(1)
		go func(i int, c *conn) {
			defer wg.Done()
			env, err := s.roundTrip(c, Envelope{EvalRequest: &EvalRequest{Seq: v.Seq, Update: *v.Update}})
			if err != nil {
				out[i] = shardEval{err: err}
				return
			}
			if env.EvalReply == nil {
				out[i] = shardEval{err: fmt.Errorf("fednet: expected EvalReply, got %+v", env)}
				return
			}
			if env.EvalReply.Err != "" {
				out[i] = shardEval{err: errors.New(env.EvalReply.Err)}
				return
			}
			out[i] = shardEval{evals: env.EvalReply.Devices}
		}(i, c)
	}
	wg.Wait()

	var all []DeviceEval
	for _, o := range out {
		if o.err != nil {
			return nil, o.err
		}
		all = append(all, o.evals...)
	}
	return all, nil
}

// combineEvals folds per-device metric contributions into the global
// training loss and test accuracy, in ascending device order so the
// float summation matches internal/metrics exactly.
func combineEvals(all []DeviceEval, weights []float64, renormalize bool) (loss, acc float64) {
	sort.Slice(all, func(i, j int) bool { return all[i].Device < all[j].Device })
	correct, testN := 0, 0
	wsum := 0.0
	for _, ev := range all {
		loss += weights[ev.Device] * ev.TrainLoss
		wsum += weights[ev.Device]
		correct += ev.Correct
		testN += ev.TestN
	}
	if renormalize && wsum > 0 {
		loss /= wsum
	}
	if testN > 0 {
		acc = float64(correct) / float64(testN)
	}
	return loss, acc
}
