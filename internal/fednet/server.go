package fednet

import (
	"errors"
	"fmt"
	"math"
	"net"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

// ServerConfig parameterizes a coordinator.
type ServerConfig struct {
	// Training carries the federated hyperparameters. TrackDissimilarity,
	// TrackGamma, Capability, AdaptiveMu, and Solver are simulator-only
	// features and must be unset (workers choose their own local solver).
	// Training.Async selects the aggregation discipline: the default
	// synchronous rounds reproduce the simulator bit for bit; AsyncTotal
	// and Buffered trade that determinism for straggler tolerance.
	Training core.Config
	// ExpectDevices is the total number of devices that must register
	// (across all workers) before training starts. Device IDs must cover
	// exactly 0..ExpectDevices-1 so the environment streams line up with
	// the simulator's.
	ExpectDevices int
	// RequestTimeout bounds how long the coordinator waits for any reply
	// on a connection — and how long any single send may block, so a
	// worker that stops reading is also caught — before declaring the
	// worker dead (zero waits forever). The synchronous protocol fails
	// the run on a timed-out worker; the asynchronous modes evict the
	// worker's devices and keep aggregating from the rest.
	RequestTimeout time.Duration
}

// Server is the federated coordinator: it owns the global model
// parameters and the round schedule, and never sees training data.
type Server struct {
	mdl model.Model
	cfg ServerConfig

	// downSpec/upSpec are the negotiated codec specs ("raw" when the
	// training config carries no codec, so the wire always moves
	// comm.Updates).
	downSpec comm.Spec
	upSpec   comm.Spec

	// bytesIn/bytesOut meter actual serialized traffic across all worker
	// connections.
	bytesIn, bytesOut atomic.Int64

	// evalLink is the coordinator's end of the shared evaluation
	// broadcast: one chained codec stream every worker decodes.
	evalLink *comm.EvalLink

	mu      sync.Mutex
	conns   []*conn
	devices map[int]*device // device ID -> hosting connection + size
	evalSeq int
}

type device struct {
	conn      *conn
	trainSize int
}

// NewServer builds a coordinator for the given model and configuration.
func NewServer(mdl model.Model, cfg ServerConfig) (*Server, error) {
	if err := cfg.Training.Validate(); err != nil {
		return nil, err
	}
	if cfg.Training.TrackDissimilarity || cfg.Training.TrackGamma {
		return nil, errors.New("fednet: dissimilarity/gamma tracking is simulator-only")
	}
	if cfg.Training.AdaptiveMu {
		return nil, errors.New("fednet: adaptive mu is simulator-only")
	}
	if cfg.Training.Capability != nil {
		return nil, errors.New("fednet: capability models are simulator-only")
	}
	if cfg.Training.Solver != nil {
		return nil, errors.New("fednet: local solvers are chosen by workers")
	}
	if cfg.Training.Checkpointer != nil {
		return nil, errors.New("fednet: checkpointing is simulator-only")
	}
	if cfg.ExpectDevices <= 0 {
		return nil, errors.New("fednet: ExpectDevices must be positive")
	}
	down, up := cfg.Training.CommSpecs()
	if !up.Enabled() {
		// The wire protocol always carries encoded updates; no codec
		// means raw, which reproduces the uncompressed trajectory bit
		// for bit.
		raw := core.Config{Codec: comm.Spec{Name: "raw"}, Seed: cfg.Training.Seed}
		down, up = raw.CommSpecs()
	}
	evalLink, err := comm.NewEvalLink(down)
	if err != nil {
		return nil, err
	}
	return &Server{
		mdl:      mdl,
		cfg:      cfg,
		downSpec: down,
		upSpec:   up,
		evalLink: evalLink,
		devices:  make(map[int]*device),
	}, nil
}

// BytesOnWire returns the actual serialized bytes moved over all worker
// connections so far: read is worker→coordinator traffic (uplink),
// written is coordinator→worker (downlink). Both include gob framing and
// evaluation messages, which the analytic Cost accounting excludes.
func (s *Server) BytesOnWire() (read, written int64) {
	return s.bytesIn.Load(), s.bytesOut.Load()
}

// Run listens on addr, waits for every device to register, executes the
// training schedule, shuts the workers down, and returns the trajectory.
func (s *Server) Run(addr string) (*core.History, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fednet: listen %s: %w", addr, err)
	}
	defer ln.Close()
	return s.RunWithListener(ln)
}

// RunWithListener is Run over a caller-provided listener (tests use an
// ephemeral loopback listener). Workers that registered are always shut
// down, including when registration itself fails partway (e.g. a
// later-connecting worker refuses the codec) — otherwise the
// already-welcomed workers would block in recv forever.
func (s *Server) RunWithListener(ln net.Listener) (*core.History, error) {
	defer s.shutdownWorkers()
	if err := s.acceptAll(ln); err != nil {
		return nil, err
	}
	if s.cfg.Training.Async.Enabled() {
		return s.trainAsync()
	}
	return s.train()
}

// acceptAll accepts worker connections until every expected device has
// registered.
func (s *Server) acceptAll(ln net.Listener) error {
	registered := 0
	for registered < s.cfg.ExpectDevices {
		raw, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("fednet: accept: %w", err)
		}
		c := newConn(meteredConn{Conn: raw, read: &s.bytesIn, written: &s.bytesOut})
		// RequestTimeout bounds sends as well as reply waits: a worker
		// that stops reading must surface as a send error, not block the
		// coordinator in gob Encode with its TCP buffers full.
		c.sendTimeout = s.cfg.RequestTimeout
		env, err := c.recv()
		if err != nil {
			return err
		}
		if env.Hello == nil {
			return fmt.Errorf("fednet: expected Hello, got %+v", env)
		}
		s.conns = append(s.conns, c)
		// Codec negotiation: the worker must offer both directions'
		// codecs; an empty offer means raw only.
		offered := env.Hello.Codecs
		if len(offered) == 0 {
			offered = []string{"raw"}
		}
		for _, want := range []string{s.downSpec.Name, s.upSpec.Name} {
			if !slices.Contains(offered, want) {
				msg := fmt.Sprintf("fednet: coordinator requires codec %q, worker offers %v", want, offered)
				_ = c.send(Envelope{Welcome: &Welcome{Err: msg}})
				return errors.New(msg)
			}
		}
		if err := c.send(Envelope{Welcome: &Welcome{Downlink: s.downSpec, Uplink: s.upSpec}}); err != nil {
			return err
		}
		for _, d := range env.Hello.Devices {
			if d.ID < 0 || d.ID >= s.cfg.ExpectDevices {
				return fmt.Errorf("fednet: device ID %d outside [0,%d)", d.ID, s.cfg.ExpectDevices)
			}
			if _, dup := s.devices[d.ID]; dup {
				return fmt.Errorf("fednet: device %d registered twice", d.ID)
			}
			if d.TrainSize <= 0 {
				return fmt.Errorf("fednet: device %d has no training data", d.ID)
			}
			s.devices[d.ID] = &device{conn: c, trainSize: d.TrainSize}
			registered++
		}
	}
	return nil
}

func (s *Server) shutdownWorkers() {
	for _, c := range s.conns {
		_ = c.send(Envelope{Shutdown: &Shutdown{}})
		_ = c.close()
	}
}

// train runs the round schedule. The environment streams replicate
// internal/core.Env exactly so trajectories match the simulator.
func (s *Server) train() (*core.History, error) {
	cfg := s.cfg.Training
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	n := s.cfg.ExpectDevices
	root := frand.New(cfg.Seed)
	selRoot := root.Split("selection")
	stragRoot := root.Split("stragglers")
	batchRoot := root.Split("batches")
	initRng := root.Split("init").Split("params")

	weights := make([]float64, n)
	total := 0
	for id, d := range s.devices {
		weights[id] = float64(d.trainSize)
		total += d.trainSize
	}
	for i := range weights {
		weights[i] /= float64(total)
	}

	w := s.mdl.InitParams(initRng)

	// Per-device codec state, the coordinator's half of every link: the
	// downlink encoders with shadows of the last decoded broadcast (what
	// each worker holds) plus decoders for uplink replies.
	links, err := comm.NewLinkState(s.downSpec, s.upSpec)
	if err != nil {
		return nil, err
	}
	// Without a configured codec the wire still moves raw comm.Updates,
	// but the recorded Cost keeps the simulator's historical semantics:
	// every selected device is charged a full-model download and its
	// epoch budget, dropped stragglers' epochs count as waste.
	legacyAccounting := !cfg.Codec.Enabled()
	paramBytes := int64(s.mdl.NumParams() * 8)
	var acc core.Cost // cumulative analytic accounting

	hist := &core.History{Label: core.Label(cfg) + " [fednet]"}
	record := func(round int, mu float64, participants int) error {
		loss, tacc, evalBytes, err := s.evaluate(w, weights, false)
		if err != nil {
			return err
		}
		// Analytic eval accounting exists only under the explicit codec
		// link model, mirroring the simulator (legacy accounting predates
		// eval encoding).
		if !legacyAccounting {
			acc.EvalBytes += evalBytes
		}
		cost := acc
		cost.WireUplinkBytes, cost.WireDownlinkBytes = s.BytesOnWire()
		hist.Points = append(hist.Points, core.Point{
			Round:          round,
			TrainLoss:      loss,
			TestAcc:        tacc,
			GradVar:        math.NaN(),
			B:              math.NaN(),
			Mu:             mu,
			MeanGamma:      math.NaN(),
			Participants:   participants,
			MeanStaleness:  math.NaN(),
			MaxStaleness:   math.NaN(),
			VirtualSeconds: math.NaN(),
			Cost:           cost,
		})
		return nil
	}
	if err := record(0, cfg.Mu, 0); err != nil {
		return nil, err
	}

	k := cfg.ClientsPerRound
	if k > n {
		k = n
	}
	for t := 0; t < cfg.Rounds; t++ {
		// Selection mirrors core.Env.SelectDevices.
		rng := selRoot.SplitIndex(t)
		var selected []int
		if cfg.Sampling == core.WeightedSimpleAvg {
			selected = rng.WeightedChoice(weights, k)
		} else {
			selected = rng.Choice(n, k)
		}
		// Straggler plan mirrors core.Env.StragglerPlan.
		epochs := make([]int, len(selected))
		straggler := make([]bool, len(selected))
		for i := range epochs {
			epochs[i] = cfg.LocalEpochs
		}
		if nStrag := int(cfg.StragglerFraction*float64(len(selected)) + 0.5); nStrag > 0 {
			srng := stragRoot.SplitIndex(t)
			for _, i := range srng.Choice(len(selected), nStrag) {
				straggler[i] = true
				epochs[i] = srng.IntRange(1, cfg.LocalEpochs)
			}
		}

		// Broadcast phase, sequential: encoding advances per-device link
		// state (rounding streams, residuals, broadcast shadows), exactly
		// as the simulator does before its parallel solves.
		updates := make([]*comm.Update, len(selected))
		views := make([][]float64, len(selected))
		upDec := make([]comm.Codec, len(selected))
		for i, id := range selected {
			if cfg.Straggler == core.DropStragglers && straggler[i] {
				if legacyAccounting {
					acc.DownlinkBytes += paramBytes
					acc.DeviceEpochs += epochs[i]
					acc.WastedEpochs += epochs[i]
				}
				continue // never contacted
			}
			enc, dec, err := links.Link(id)
			if err != nil {
				return nil, err
			}
			prev := links.Prev(id)
			u := enc.Encode(w, prev)
			view, err := enc.Decode(u, prev)
			if err != nil {
				return nil, fmt.Errorf("fednet: round %d device %d downlink: %w", t, id, err)
			}
			links.SetPrev(id, view)
			updates[i] = u
			views[i] = view
			upDec[i] = dec
			acc.DownlinkBytes += u.WireBytes()
			acc.DeviceEpochs += epochs[i]
		}

		type result struct {
			id      int
			params  []float64
			nk      float64
			upBytes int64
			err     error
		}
		results := make([]result, len(selected))
		var wg sync.WaitGroup
		batchRound := batchRoot.SplitIndex(t)
		for i, id := range selected {
			if cfg.Straggler == core.DropStragglers && straggler[i] {
				results[i] = result{id: -1}
				continue
			}
			wg.Add(1)
			go func(i, id, ep int) {
				defer wg.Done()
				d := s.devices[id]
				req := TrainRequest{
					Round:        t,
					Version:      t, // sync: one model version per round
					Device:       id,
					Update:       *updates[i],
					Epochs:       ep,
					Mu:           cfg.Mu,
					LearningRate: cfg.LearningRate,
					BatchSize:    cfg.BatchSize,
					BatchSeed:    batchRound.SplitIndex(id).State(),
				}
				env, err := s.roundTrip(d.conn, Envelope{TrainRequest: &req})
				if err != nil {
					results[i] = result{id: id, err: err}
					return
				}
				reply := env.TrainReply
				if reply == nil {
					results[i] = result{id: id, err: fmt.Errorf("fednet: expected TrainReply, got %+v", env)}
					return
				}
				if reply.Err != "" {
					results[i] = result{id: id, err: errors.New(reply.Err)}
					return
				}
				// Decode the uplink against the broadcast view the device
				// trained from — both sides hold it exactly. Decoding is
				// stateless, so doing it in-goroutine is safe.
				wk, err := upDec[i].Decode(&reply.Update, views[i])
				if err != nil {
					results[i] = result{id: id, err: err}
					return
				}
				results[i] = result{id: id, params: wk, nk: float64(d.trainSize), upBytes: reply.Update.WireBytes()}
			}(i, id, epochs[i])
		}
		wg.Wait()

		var params [][]float64
		var nks []float64
		for _, r := range results {
			if r.id == -1 {
				continue
			}
			if r.err != nil {
				return nil, fmt.Errorf("fednet: round %d device %d: %w", t, r.id, r.err)
			}
			acc.UplinkBytes += r.upBytes
			params = append(params, r.params)
			nks = append(nks, r.nk)
		}
		if len(params) > 0 {
			if cfg.Sampling == core.WeightedSimpleAvg {
				tensor.Mean(w, params)
			} else {
				tensor.WeightedMean(w, params, nks)
			}
		}
		if (t+1)%cfg.EvalEvery == 0 || t == cfg.Rounds-1 {
			if err := record(t+1, cfg.Mu, len(params)); err != nil {
				return nil, err
			}
		}
	}
	return hist, nil
}

// roundTrip serializes one request/response exchange on a connection.
// The connection's send lock plus the strict request/response protocol
// per device make concurrent exchanges from different devices on the same
// worker safe only if serialized — the per-conn reply lock does that.
// With a RequestTimeout configured the reply wait is bounded: a worker
// that never answers surfaces as an i/o timeout instead of hanging the
// deployment.
func (s *Server) roundTrip(c *conn, e Envelope) (Envelope, error) {
	c.rtMu.Lock()
	defer c.rtMu.Unlock()
	if err := c.send(e); err != nil {
		return Envelope{}, err
	}
	if s.cfg.RequestTimeout > 0 {
		c.armRecvDeadline(s.cfg.RequestTimeout)
		defer c.armRecvDeadline(0)
	}
	return c.recv()
}

// evaluate gathers distributed metrics and combines them exactly as
// internal/metrics does (ascending-device weighted sum), so losses match
// the simulator bit for bit. The global model travels encoded on the
// shared eval link; evalBytes is the encoded broadcast size (charged
// once — broadcast semantics). With renormalize set, the per-device
// weights are rescaled by the reporting mass, which keeps the metrics
// meaningful when the asynchronous modes lose workers mid-run; the
// synchronous path never renormalizes (all devices report or the run
// fails, and dividing by the full weight sum would perturb the
// bit-reproducible trajectory).
func (s *Server) evaluate(w []float64, weights []float64, renormalize bool) (loss, acc float64, evalBytes int64, err error) {
	s.evalSeq++
	seq := s.evalSeq
	u, _, err := s.evalLink.Broadcast(w)
	if err != nil {
		return 0, 0, 0, err
	}
	type shardEval struct {
		evals []DeviceEval
		err   error
	}
	out := make([]shardEval, len(s.conns))
	var wg sync.WaitGroup
	for i, c := range s.conns {
		wg.Add(1)
		go func(i int, c *conn) {
			defer wg.Done()
			env, err := s.roundTrip(c, Envelope{EvalRequest: &EvalRequest{Seq: seq, Update: *u}})
			if err != nil {
				out[i] = shardEval{err: err}
				return
			}
			if env.EvalReply == nil {
				out[i] = shardEval{err: fmt.Errorf("fednet: expected EvalReply, got %+v", env)}
				return
			}
			if env.EvalReply.Err != "" {
				out[i] = shardEval{err: errors.New(env.EvalReply.Err)}
				return
			}
			out[i] = shardEval{evals: env.EvalReply.Devices}
		}(i, c)
	}
	wg.Wait()

	var all []DeviceEval
	for _, o := range out {
		if o.err != nil {
			return 0, 0, 0, o.err
		}
		all = append(all, o.evals...)
	}
	loss, acc = combineEvals(all, weights, renormalize)
	return loss, acc, u.WireBytes(), nil
}

// combineEvals folds per-device metric contributions into the global
// training loss and test accuracy, in ascending device order so the
// float summation matches internal/metrics exactly.
func combineEvals(all []DeviceEval, weights []float64, renormalize bool) (loss, acc float64) {
	sort.Slice(all, func(i, j int) bool { return all[i].Device < all[j].Device })
	correct, testN := 0, 0
	wsum := 0.0
	for _, ev := range all {
		loss += weights[ev.Device] * ev.TrainLoss
		wsum += weights[ev.Device]
		correct += ev.Correct
		testN += ev.TestN
	}
	if renormalize && wsum > 0 {
		loss /= wsum
	}
	if testN > 0 {
		acc = float64(correct) / float64(testN)
	}
	return loss, acc
}
