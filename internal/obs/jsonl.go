package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
)

// JSONL writes one JSON object per event, newline-terminated — the
// `-trace out.jsonl` format of the cmds. The encoder is hand-rolled
// against a fixed per-kind field schema (no reflection, no maps), so
// for a deterministic event stream the output is byte-stable: two
// same-seed vtime runs produce byte-identical trace files, and the
// trace-determinism tests hold the encoder to that.
//
// Writes are mutex-serialized (device runtimes emit from concurrent
// goroutines). The first write error latches and silences the sink;
// check Err after the run — a trace is diagnostics, not control flow,
// so a full disk must not abort training.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewJSONL returns a JSONL sink writing to w. Callers own w's
// lifecycle (and any buffering/flushing around it).
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, buf: make([]byte, 0, 256)}
}

// Emit encodes and writes one event.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.buf = AppendEvent(j.buf[:0], e)
	if _, err := j.w.Write(j.buf); err != nil {
		j.err = err
	}
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// AppendEvent appends e's JSONL line (including the trailing newline)
// to buf. The field set and order per kind is the trace schema — the
// shared table in schema.go, documented in the README's Observability
// section — and is fixed: every field a kind lists is always present
// (values are deterministic given a seed), except fields whose absence
// is part of the schema ("t", "rel", and "secs" are omitted when NaN —
// clockless runs — and a span's "device" is omitted when negative).
// internal/obs/tracefile decodes by walking the same table, so
// decode→re-encode is byte-identical.
func AppendEvent(buf []byte, e Event) []byte {
	buf = append(buf, `{"kind":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, '"')
	for _, f := range Fields(e.Kind) {
		switch f.Type {
		case FieldInt:
			v := f.Int(&e)
			if f.OmitNeg && v < 0 {
				continue
			}
			buf = appendInt(buf, f.Key, v)
		case FieldInt64:
			buf = appendInt64(buf, f.Key, f.Int64(&e))
		case FieldFloat:
			v := f.Float(&e)
			if f.OmitNaN && math.IsNaN(v) {
				continue
			}
			buf = appendFloat(buf, f.Key, v)
		case FieldString:
			buf = appendString(buf, f.Key, f.Str(&e))
		}
	}
	return append(buf, '}', '\n')
}

func appendKey(buf []byte, key string) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, key...)
	return append(buf, '"', ':')
}

func appendInt(buf []byte, key string, v int) []byte {
	return strconv.AppendInt(appendKey(buf, key), int64(v), 10)
}

func appendInt64(buf []byte, key string, v int64) []byte {
	return strconv.AppendInt(appendKey(buf, key), v, 10)
}

// appendFloat renders v in the shortest round-trip form ('g', -1 — the
// same value always renders the same bytes). JSON has no NaN or
// infinity literals; callers omit NaN-able fields, and any that slip
// through become null rather than corrupt the line.
func appendFloat(buf []byte, key string, v float64) []byte {
	buf = appendKey(buf, key)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendString quotes v with strconv (valid JSON for any UTF-8 input).
func appendString(buf []byte, key string, v string) []byte {
	return strconv.AppendQuote(appendKey(buf, key), v)
}
