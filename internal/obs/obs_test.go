package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

type capture struct{ events []Event }

func (c *capture) Emit(e Event) { c.events = append(c.events, e) }

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no live sinks must be nil (tracing off)")
	}
	c := &capture{}
	if Multi(nil, c) != Sink(c) {
		t.Fatal("Multi of one live sink must unwrap it")
	}
	c2 := &capture{}
	m := Multi(c, nil, c2)
	m.Emit(Event{Kind: KindRunDone})
	if len(c.events) != 1 || len(c2.events) != 1 {
		t.Fatalf("fan-out reached %d/%d sinks, want 1/1", len(c.events), len(c2.events))
	}
}

func TestWallClockStampsOnlyUntimed(t *testing.T) {
	c := &capture{}
	w := WallClock(c)
	w.Emit(Event{Kind: KindEval, Time: math.NaN()})
	w.Emit(Event{Kind: KindEval, Time: 42})
	if math.IsNaN(c.events[0].Time) || c.events[0].Time < 0 {
		t.Fatalf("untimed event not stamped: t=%v", c.events[0].Time)
	}
	if c.events[1].Time != 42 {
		t.Fatalf("timed event clobbered: t=%v", c.events[1].Time)
	}
	if WallClock(nil) != nil {
		t.Fatal("WallClock(nil) must stay nil")
	}
}

func TestSpan(t *testing.T) {
	c := &capture{}
	sp := StartSpan(c, Event{Label: "solve", Device: 3})
	sp.Event.N = 7
	sp.End()
	e := c.events[0]
	if e.Kind != KindSpan || e.Label != "solve" || e.Device != 3 || e.N != 7 {
		t.Fatalf("span event = %+v", e)
	}
	if e.Seconds < 0 {
		t.Fatalf("span duration %v", e.Seconds)
	}
	var nilSpan *Span
	nilSpan.End() // must not panic
	if StartSpan(nil, Event{}) != nil {
		t.Fatal("StartSpan(nil) must return nil")
	}
}

func TestJSONLSchema(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	events := []Event{
		{Kind: KindRunStart, Time: math.NaN(), Label: `Fed"Prox`, N: 30},
		{Kind: KindRoundOpen, Time: 0, Round: 0, N: 10, Tier: -1},
		{Kind: KindDispatch, Time: 1.5, Round: 2, Seq: 1, Device: 4, Version: 2, Epochs: 20, Budget: 5, BytesDown: 800, Tier: -1},
		{Kind: KindReply, Time: 2.25, Seq: 1, Device: 4, Version: 2, Staleness: 3, EpochsDone: 5, BytesUp: 800, BytesDown: 800, Seconds: 0.75, Disposition: "folded", Tier: -1},
		{Kind: KindReply, Time: math.NaN(), Seq: 2, Device: 5, Version: 2, Staleness: -1, EpochsDone: 9, BytesUp: 800, BytesDown: 800, Seconds: math.NaN(), Disposition: "drop-deadline", Tier: -1},
		{Kind: KindDrop, Time: math.NaN(), Round: 2, Device: 6, Disposition: "drop-policy"},
		{Kind: KindFold, Time: 2.25, Round: 2, Version: 3, N: 10, Tier: -1},
		{Kind: KindRoundClose, Time: 2.25, Round: 2, N: 10, Seconds: 0.75, Tier: -1},
		{Kind: KindEval, Time: 2.25, Round: 3, Loss: 0.5, Acc: 0.875},
		{Kind: KindCheckpoint, Time: math.NaN(), Round: 3},
		{Kind: KindWorkerJoin, Time: math.NaN(), N: 8},
		{Kind: KindWorkerLost, Time: 3, Device: 4},
		{Kind: KindWorkerReadmit, Time: 4, Device: 4},
		{Kind: KindDeviceDispatch, Time: math.NaN(), Round: 2, Seq: 1, Device: 4, EpochsDone: 5, BytesUp: 800, BytesDown: 800},
		{Kind: KindDeviceEval, Time: math.NaN(), Seq: 3, N: 8},
		{Kind: KindSpan, Time: 9, Label: "fednet-eval", Device: -1, Seconds: 0.01},
		{Kind: KindRunDone, Time: 2.25},
		{Kind: KindFold, Time: 2.25, Round: 2, Version: 3, N: 8, Tier: 1},
	}
	for _, e := range events {
		j.Emit(e)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("%d lines for %d events", len(lines), len(events))
	}
	// Every line is valid JSON with the expected kind.
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if m["kind"] != events[i].Kind.String() {
			t.Fatalf("line %d kind %v, want %v", i, m["kind"], events[i].Kind)
		}
	}
	// Spot-check the schema contract: NaN fields omitted, fixed order.
	if want := `{"kind":"reply","t":2.25,"seq":1,"device":4,"version":2,"stale":3,"done":5,"up":800,"down":800,"rel":0.75,"drop":"folded"}`; lines[3] != want {
		t.Fatalf("reply line:\n got %s\nwant %s", lines[3], want)
	}
	if strings.Contains(lines[4], `"t"`) || strings.Contains(lines[4], `"rel"`) {
		t.Fatalf("untimed reply must omit t and rel: %s", lines[4])
	}
	if strings.Contains(lines[15], `"device"`) {
		t.Fatalf("span with Device -1 must omit device: %s", lines[15])
	}
	// Untiered events omit the tier field; tiered ones carry it.
	if strings.Contains(lines[6], `"tier"`) {
		t.Fatalf("untiered fold must omit tier: %s", lines[6])
	}
	if want := `{"kind":"fold","t":2.25,"round":2,"version":3,"n":8,"tier":1}`; lines[17] != want {
		t.Fatalf("tiered fold line:\n got %s\nwant %s", lines[17], want)
	}
	// Byte stability: re-encoding the same events reproduces the bytes.
	var buf2 bytes.Buffer
	j2 := NewJSONL(&buf2)
	for _, e := range events {
		j2.Emit(e)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("identical event streams encoded to different bytes")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Emit(Event{Kind: KindRunStart, N: 30})
	r.Emit(Event{Kind: KindRoundClose, Round: 0, N: 10, Seconds: 1.5})
	r.Emit(Event{Kind: KindDispatch, BytesDown: 800})
	r.Emit(Event{Kind: KindReply, Staleness: 2, EpochsDone: 5, BytesUp: 300, Disposition: "folded"})
	r.Emit(Event{Kind: KindReply, Staleness: -1, BytesUp: 300, Disposition: "drop-deadline"})
	r.Emit(Event{Kind: KindDrop, Disposition: "drop-policy"})
	r.Emit(Event{Kind: KindSpan, Label: "worker-solve", Seconds: 0.02})
	out := r.Render()
	for _, want := range []string{
		"# TYPE fedprox_rounds_total counter",
		"fedprox_rounds_total 1",
		"fedprox_devices 30",
		`fedprox_replies_total{disposition="folded"} 1`,
		`fedprox_drops_total{reason="drop-deadline"} 1`,
		`fedprox_drops_total{reason="drop-policy"} 1`,
		"fedprox_uplink_bytes_total 600",
		"fedprox_downlink_bytes_total 800",
		`fedprox_staleness_bucket{le="2"} 1`,
		`fedprox_staleness_bucket{le="+Inf"} 1`,
		"fedprox_staleness_sum 2",
		`fedprox_span_seconds_bucket{span="worker-solve",le="0.025"} 1`,
		"# TYPE fedprox_staleness histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\n%s", want, out)
		}
	}
	// Deterministic rendering.
	if out != r.Render() {
		t.Fatal("Render is not deterministic")
	}
}

func TestSpeedRoundTripAndGate(t *testing.T) {
	pts := []BenchPoint{
		{Name: "CoordinatorFold", NsPerOp: 1000, AllocsPerOp: 3, BytesPerOp: 128, Iterations: 100},
		{Name: "DeviceDispatch", NsPerOp: 5000, AllocsPerOp: 10, BytesPerOp: 4096},
	}
	var buf bytes.Buffer
	if err := WriteSpeed(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpeed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != pts[0] || got[1] != pts[1] {
		t.Fatalf("round trip: %+v", got)
	}

	// Within budget: 10% slower under a 15% tolerance.
	cur := []BenchPoint{{Name: "CoordinatorFold", NsPerOp: 1100}, {Name: "DeviceDispatch", NsPerOp: 5000}}
	if msgs := CompareSpeed(cur, pts, 0.15); len(msgs) != 0 {
		t.Fatalf("unexpected regressions: %v", msgs)
	}
	// Over budget and missing both flag.
	cur = []BenchPoint{{Name: "CoordinatorFold", NsPerOp: 1200}}
	msgs := CompareSpeed(cur, pts, 0.15)
	if len(msgs) != 2 {
		t.Fatalf("want 2 regressions, got %v", msgs)
	}
	// New benchmarks in current never flag.
	cur = []BenchPoint{{Name: "CoordinatorFold", NsPerOp: 900}, {Name: "DeviceDispatch", NsPerOp: 4000}, {Name: "New", NsPerOp: 1}}
	if msgs := CompareSpeed(cur, pts, 0.15); len(msgs) != 0 {
		t.Fatalf("unexpected regressions: %v", msgs)
	}
	// Allocations get no tolerance: one alloc over the committed floor
	// flags even when ns/op improved.
	cur = []BenchPoint{{Name: "CoordinatorFold", NsPerOp: 900, AllocsPerOp: 4}, {Name: "DeviceDispatch", NsPerOp: 4000, AllocsPerOp: 10}}
	msgs = CompareSpeed(cur, pts, 0.15)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "allocs/op") {
		t.Fatalf("want 1 alloc regression, got %v", msgs)
	}
}

func TestCheckRatios(t *testing.T) {
	gates := []RatioGate{
		{Slow: "SolvePerExample", Fast: "SolveBatched", Min: 2.0},
	}
	// Holds: 2.5x in a single rep.
	pts := []BenchPoint{{Name: "SolvePerExample", NsPerOp: 2500}, {Name: "SolveBatched", NsPerOp: 1000}}
	if v := CheckRatios([][]BenchPoint{pts}, gates); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Violated: 1.5x against a 2x requirement.
	pts = []BenchPoint{{Name: "SolvePerExample", NsPerOp: 1500}, {Name: "SolveBatched", NsPerOp: 1000}}
	v := CheckRatios([][]BenchPoint{pts}, gates)
	if len(v) != 1 || !strings.Contains(v[0], "below required") {
		t.Fatalf("want 1 ratio violation, got %v", v)
	}
	// The gate holds on the median rep: one noisy dip below the line
	// among three repetitions does not flag...
	reps := [][]BenchPoint{
		{{Name: "SolvePerExample", NsPerOp: 2400}, {Name: "SolveBatched", NsPerOp: 1000}},
		{{Name: "SolvePerExample", NsPerOp: 1900}, {Name: "SolveBatched", NsPerOp: 1000}},
		{{Name: "SolvePerExample", NsPerOp: 2200}, {Name: "SolveBatched", NsPerOp: 1000}},
	}
	if v := CheckRatios(reps, gates); len(v) != 0 {
		t.Fatalf("median 2.2 flagged against a 2x gate: %v", v)
	}
	// ...but a majority below it does.
	reps[2][0].NsPerOp = 1800
	v = CheckRatios(reps, gates)
	if len(v) != 1 || !strings.Contains(v[0], "median") {
		t.Fatalf("want 1 median-ratio violation, got %v", v)
	}
	// A gate over missing benchmarks flags rather than silently passing.
	if v := CheckRatios([][]BenchPoint{nil}, gates); len(v) != 1 {
		t.Fatalf("want 1 missing-benchmark violation, got %v", v)
	}
}
