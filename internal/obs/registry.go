package obs

import (
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is the in-memory counter/gauge/histogram sink behind the
// cmds' -debug-addr /metrics endpoint. It maps the event vocabulary to
// a fixed set of fedprox_* metrics and renders them in the Prometheus
// text exposition format (version 0.0.4) — hand-written, stdlib-only,
// so the package stays dependency-free.
//
// The event mapping is the observable protocol surface: rounds,
// dispatches, reply dispositions, drop reasons, bytes up/down, realized
// epochs, staleness, workers lost/re-admitted, checkpoints, and span
// durations. Callers needing ad-hoc metrics can use Add/Set/Observe
// directly; everything shares one render path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*family
	gauges   map[string]*family
	hists    map[string]*histFamily
}

// family is one metric name's label→value map plus its HELP text.
type family struct {
	help string
	vals map[string]float64
}

type histFamily struct {
	help string
	le   []float64 // upper bounds, ascending, +Inf implicit
	vals map[string]*histogram
}

type histogram struct {
	counts []uint64 // one per le bound, plus +Inf at the end
	sum    float64
	count  uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*family),
		gauges:   make(map[string]*family),
		hists:    make(map[string]*histFamily),
	}
}

// stalenessBuckets cover the damping regimes of alpha/(1+s)^p: fresh,
// near-fresh, and the long tail a straggler-heavy run produces.
var stalenessBuckets = []float64{0, 1, 2, 4, 8, 16, 32}

// secondsBuckets cover span and round durations from sub-millisecond
// solves to multi-minute rounds.
var secondsBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Emit maps one event onto the fedprox_* metric set.
func (r *Registry) Emit(e Event) {
	// Per-kind event counters let a live run's /metrics be cross-checked
	// against its JSONL trace for event loss: every kind a sink saw is
	// counted here under the same wire name tracefile decodes.
	r.Add("fedprox_trace_events_total", "Events emitted, by kind.", labels("kind", e.Kind.String()), 1)
	switch e.Kind {
	case KindRunStart:
		r.Add("fedprox_runs_total", "Runs started.", "", 1)
		r.Set("fedprox_devices", "Devices registered at run start.", "", float64(e.N))
	case KindRoundOpen:
		r.Set("fedprox_round", "Current communication round.", "", float64(e.Round))
	case KindDispatch:
		r.Add("fedprox_dispatches_total", "Training dispatches sent.", "", 1)
		r.Add("fedprox_downlink_bytes_total", "Broadcast bytes down, per dispatch.", "", float64(e.BytesDown))
		if e.Tier >= 0 {
			r.Add("fedprox_tier_downlink_bytes_total", "Broadcast bytes down, by emitting tier.",
				labels("tier", strconv.Itoa(e.Tier)), float64(e.BytesDown))
		}
	case KindReply:
		disp := labels("disposition", e.Disposition)
		r.Add("fedprox_replies_total", "Device replies by coordinator disposition.", disp, 1)
		r.Add("fedprox_uplink_bytes_total", "Reply bytes up.", "", float64(e.BytesUp))
		if e.Tier >= 0 {
			r.Add("fedprox_tier_uplink_bytes_total", "Reply bytes up, by receiving tier.",
				labels("tier", strconv.Itoa(e.Tier)), float64(e.BytesUp))
		}
		if e.Disposition == "folded" {
			r.Add("fedprox_epochs_done_total", "Local epochs folded into the model.", "", float64(e.EpochsDone))
			if e.Staleness >= 0 {
				r.Observe("fedprox_staleness", "Model-version staleness of folded replies.", "", stalenessBuckets, float64(e.Staleness))
			}
		} else {
			r.Add("fedprox_drops_total", "Replies discarded, by reason.", labels("reason", e.Disposition), 1)
		}
	case KindDrop:
		r.Add("fedprox_drops_total", "Replies discarded, by reason.", labels("reason", e.Disposition), 1)
	case KindFold:
		r.Add("fedprox_folds_total", "Model advances.", "", 1)
		r.Set("fedprox_model_version", "Current global model version.", "", float64(e.Version))
	case KindRoundClose:
		r.Add("fedprox_rounds_total", "Rounds (or async milestones) completed.", "", 1)
		if !math.IsNaN(e.Seconds) {
			r.Observe("fedprox_round_seconds", "Round critical-path duration.", "", secondsBuckets, e.Seconds)
		}
	case KindEval:
		r.Add("fedprox_evals_total", "Global evaluations recorded.", "", 1)
		r.Set("fedprox_train_loss", "Last evaluated global training loss.", "", e.Loss)
		r.Set("fedprox_test_acc", "Last evaluated test accuracy.", "", e.Acc)
	case KindCheckpoint:
		r.Add("fedprox_checkpoints_total", "Checkpoints persisted.", "", 1)
	case KindWorkerJoin:
		r.Add("fedprox_worker_joins_total", "Worker connections admitted.", "", 1)
	case KindWorkerLost:
		r.Add("fedprox_workers_lost_total", "Devices evicted with dead workers.", "", 1)
	case KindWorkerReadmit:
		r.Add("fedprox_workers_readmitted_total", "Evicted devices re-admitted.", "", 1)
	case KindDeviceDispatch:
		r.Add("fedprox_device_dispatches_total", "Dispatches served by the device runtime.", "", 1)
		r.Add("fedprox_device_epochs_total", "Local epochs run by the device runtime.", "", float64(e.EpochsDone))
		r.Add("fedprox_device_uplink_bytes_total", "Device-side reply bytes up.", "", float64(e.BytesUp))
		r.Add("fedprox_device_downlink_bytes_total", "Device-side broadcast bytes down.", "", float64(e.BytesDown))
	case KindDeviceEval:
		r.Add("fedprox_device_evals_total", "Eval broadcasts served by the device runtime.", "", 1)
	case KindSpan:
		r.Observe("fedprox_span_seconds", "Measured section durations.", labels("span", e.Label), secondsBuckets, e.Seconds)
	case KindRunDone:
		r.Add("fedprox_runs_completed_total", "Runs completed.", "", 1)
	}
}

// labels renders a single key="value" label pair.
func labels(key, value string) string {
	return key + `="` + strings.ReplaceAll(value, `"`, `\"`) + `"`
}

// Add increments the counter name{labels} by v, registering it (with
// help) on first use.
func (r *Registry) Add(name, help, labels string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.counters[name]
	if fam == nil {
		fam = &family{help: help, vals: make(map[string]float64)}
		r.counters[name] = fam
	}
	fam.vals[labels] += v
}

// Set sets the gauge name{labels} to v.
func (r *Registry) Set(name, help, labels string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.gauges[name]
	if fam == nil {
		fam = &family{help: help, vals: make(map[string]float64)}
		r.gauges[name] = fam
	}
	fam.vals[labels] = v
}

// Observe records v into the histogram name{labels} with the given
// upper bounds (ascending; +Inf is implicit). The bounds are fixed at
// first use per name.
func (r *Registry) Observe(name, help, labels string, le []float64, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.hists[name]
	if fam == nil {
		fam = &histFamily{help: help, le: le, vals: make(map[string]*histogram)}
		r.hists[name] = fam
	}
	h := fam.vals[labels]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(fam.le)+1)}
		fam.vals[labels] = h
	}
	i := sort.SearchFloat64s(fam.le, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Render returns the registry in the Prometheus text exposition
// format, families and label sets in sorted order (deterministic
// output for tests and diffing).
func (r *Registry) Render() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if fam, ok := r.counters[name]; ok {
			renderFamily(&b, name, "counter", fam)
		} else if fam, ok := r.gauges[name]; ok {
			renderFamily(&b, name, "gauge", fam)
		} else {
			renderHist(&b, name, r.hists[name])
		}
	}
	return b.String()
}

func renderFamily(b *strings.Builder, name, typ string, fam *family) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, fam.help, name, typ)
	for _, ls := range sortedKeys(fam.vals) {
		b.WriteString(name)
		if ls != "" {
			b.WriteString("{" + ls + "}")
		}
		b.WriteByte(' ')
		b.WriteString(formatValue(fam.vals[ls]))
		b.WriteByte('\n')
	}
}

func renderHist(b *strings.Builder, name string, fam *histFamily) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, fam.help, name, "histogram")
	ls := make([]string, 0, len(fam.vals))
	for l := range fam.vals {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	for _, l := range ls {
		h := fam.vals[l]
		var cum uint64
		for i, bound := range fam.le {
			cum += h.counts[i]
			b.WriteString(name + "_bucket{" + joinLabels(l, `le="`+formatValue(bound)+`"`) + "} ")
			b.WriteString(strconv.FormatUint(cum, 10))
			b.WriteByte('\n')
		}
		cum += h.counts[len(fam.le)]
		b.WriteString(name + "_bucket{" + joinLabels(l, `le="+Inf"`) + "} " + strconv.FormatUint(cum, 10) + "\n")
		suffix := ""
		if l != "" {
			suffix = "{" + l + "}"
		}
		b.WriteString(name + "_sum" + suffix + " " + formatValue(h.sum) + "\n")
		b.WriteString(name + "_count" + suffix + " " + strconv.FormatUint(h.count, 10) + "\n")
	}
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ServeHTTP serves the rendered registry — mount at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(r.Render()))
}

// Debug returns the handler the cmds mount on -debug-addr: the
// registry at /metrics and the runtime profiles (CPU, heap, goroutine,
// trace) under /debug/pprof/. A nil registry serves pprof only.
func Debug(r *Registry) http.Handler {
	mux := http.NewServeMux()
	if r != nil {
		mux.Handle("/metrics", r)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
