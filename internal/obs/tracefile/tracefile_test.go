package tracefile

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"

	"fedprox/internal/obs"
)

// fullEvent builds an event of kind k with a distinctive value in
// every schema field, derived from the field's position so no two
// fields collide.
func fullEvent(k obs.Kind) obs.Event {
	e := obs.NewEvent(k)
	for i, f := range obs.Fields(k) {
		switch f.Type {
		case obs.FieldInt:
			f.SetInt(&e, 3+2*i)
		case obs.FieldInt64:
			f.SetInt64(&e, int64(1)<<40+int64(i))
		case obs.FieldFloat:
			f.SetFloat(&e, 0.25+1.5*float64(i))
		case obs.FieldString:
			f.SetStr(&e, fmt.Sprintf("val-%d", i))
		}
	}
	return e
}

// TestRoundTripEveryKind is the schema contract: for every kind, in
// both the all-fields-present and the all-omittable-fields-omitted
// form, encode→decode→re-encode reproduces the bytes exactly. Both
// sides walk the shared table in obs/schema.go, so a drift in either
// fails here.
func TestRoundTripEveryKind(t *testing.T) {
	for _, k := range obs.Kinds() {
		for _, tc := range []struct {
			name string
			ev   obs.Event
		}{
			{"full", fullEvent(k)},
			{"omitted", obs.NewEvent(k)}, // NaN floats / -1 OmitNeg ints stay omitted
		} {
			line := obs.AppendEvent(nil, tc.ev)
			got, err := ReadAll(bytes.NewReader(line))
			if err != nil {
				t.Fatalf("%v/%s: decode: %v\n%s", k, tc.name, err, line)
			}
			if len(got) != 1 {
				t.Fatalf("%v/%s: %d events", k, tc.name, len(got))
			}
			re := obs.AppendEvent(nil, got[0])
			if !bytes.Equal(line, re) {
				t.Errorf("%v/%s: round trip changed bytes\n in %s out %s", k, tc.name, line, re)
			}
		}
	}
}

// Non-omitted NaN floats encode as null and must survive the trip.
func TestRoundTripNullFloats(t *testing.T) {
	e := obs.NewEvent(obs.KindEval)
	e.Time = 1.5
	e.Round = 2
	e.Loss = math.NaN()
	e.Acc = 0.75
	line := obs.AppendEvent(nil, e)
	if !bytes.Contains(line, []byte(`"loss":null`)) {
		t.Fatalf("NaN loss must render null: %s", line)
	}
	got, err := ReadAll(bytes.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[0].Loss) || got[0].Acc != 0.75 {
		t.Fatalf("decoded %+v", got[0])
	}
	if re := obs.AppendEvent(nil, got[0]); !bytes.Equal(line, re) {
		t.Fatalf("null round trip changed bytes\n in %s out %s", line, re)
	}
}

// Escaped strings (quotes, control chars) take the slow path and must
// still round-trip byte-identically.
func TestRoundTripEscapedStrings(t *testing.T) {
	for _, label := range []string{`Fed"Prox`, "a\\b", "tab\there", "nl\nthere", "µ-label"} {
		e := obs.NewEvent(obs.KindRunStart)
		e.Label = label
		e.N = 5
		line := obs.AppendEvent(nil, e)
		got, err := ReadAll(bytes.NewReader(line))
		if err != nil {
			t.Fatalf("%q: %v\n%s", label, err, line)
		}
		if got[0].Label != label {
			t.Fatalf("label %q decoded as %q", label, got[0].Label)
		}
		if re := obs.AppendEvent(nil, got[0]); !bytes.Equal(line, re) {
			t.Fatalf("%q round trip changed bytes\n in %s out %s", label, line, re)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  error
		line  int
	}{
		{"empty object", "{}\n", ErrSyntax, 1},
		{"no kind", `{"round":1}` + "\n", ErrSyntax, 1},
		{"unknown kind", `{"kind":"frobnicate","round":1}` + "\n", ErrUnknownKind, 1},
		{"unknown field", `{"kind":"checkpoint","round":1,"extra":2}` + "\n", ErrUnknownField, 1},
		{"field out of order", `{"kind":"round-open","n":3,"round":1}` + "\n", ErrSyntax, 1},
		{"missing required field", `{"kind":"round-open","round":1}` + "\n", ErrSyntax, 1},
		{"bad int", `{"kind":"checkpoint","round":1x}` + "\n", ErrBadNumber, 1},
		{"int overflow", `{"kind":"checkpoint","round":99999999999999999999}` + "\n", ErrBadNumber, 1},
		{"bad float", `{"kind":"run-done","t":1..5}` + "\n", ErrBadNumber, 1},
		{"float inf spelled out", `{"kind":"run-done","t":Infinity}` + "\n", ErrBadNumber, 1},
		{"truncated line", `{"kind":"checkpoint","round":1}`, ErrTruncated, 1},
		{"truncated mid-line", `{"kind":"checkpoint","round":1}` + "\n" + `{"kind":"chec`, ErrTruncated, 2},
		{"unterminated string", `{"kind":"run-start","label":"oops,"n":1}` + "\n", ErrSyntax, 1},
		{"trailing bytes", `{"kind":"run-done"} ` + "\n", ErrSyntax, 1},
		{"out-of-order round", `{"kind":"round-open","round":3,"n":1}` + "\n" + `{"kind":"round-open","round":2,"n":1}` + "\n", ErrOutOfOrder, 2},
		{"repeated round", `{"kind":"round-open","round":3,"n":1}` + "\n" + `{"kind":"round-open","round":3,"n":1}` + "\n", ErrOutOfOrder, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadAll(strings.NewReader(tc.input))
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			var le *LineError
			if !errors.As(err, &le) {
				t.Fatalf("error %v carries no line number", err)
			}
			if le.Line != tc.line {
				t.Fatalf("line = %d, want %d", le.Line, tc.line)
			}
		})
	}
}

// A run-start resets round monotonicity: two concatenated runs each
// open at round 0.
func TestRunStartResetsRoundOrder(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	for run := 0; run < 2; run++ {
		e := obs.NewEvent(obs.KindRunStart)
		e.Label = "case"
		e.N = 2
		j.Emit(e)
		for r := 0; r < 3; r++ {
			ro := obs.NewEvent(obs.KindRoundOpen)
			ro.Round = r
			ro.N = 2
			j.Emit(ro)
		}
	}
	evs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	runs := Runs(evs)
	if len(runs) != 2 || len(runs[0]) != 4 || len(runs[1]) != 4 {
		t.Fatalf("Runs split: %d runs", len(runs))
	}
}

func TestDecoderErrorLatches(t *testing.T) {
	d := NewDecoder(strings.NewReader("garbage\n"))
	_, err1 := d.Next()
	_, err2 := d.Next()
	if err1 == nil || err1 != err2 {
		t.Fatalf("error did not latch: %v then %v", err1, err2)
	}
}

// Long lines spill past the internal buffer and still decode.
func TestLongLine(t *testing.T) {
	e := obs.NewEvent(obs.KindRunStart)
	e.Label = strings.Repeat("x", 200<<10)
	e.N = 1
	line := obs.AppendEvent(nil, e)
	got, err := ReadAll(bytes.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Label != e.Label {
		t.Fatal("long label mangled")
	}
}

// Decoding a long stream of identical-shape lines should not allocate
// per line beyond the event slice: strings intern, numbers parse in
// place.
func TestDecodeInternsStrings(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	for i := 0; i < 1000; i++ {
		e := obs.NewEvent(obs.KindReply)
		e.Time = float64(i)
		e.Seq = i
		e.Device = i % 7
		e.Disposition = "folded"
		j.Emit(e)
	}
	d := NewDecoder(&buf)
	for {
		e, err := d.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.Disposition != "folded" {
			t.Fatalf("disposition %q", e.Disposition)
		}
	}
	if len(d.strs) != 1 {
		t.Fatalf("interned %d strings, want 1", len(d.strs))
	}
	if allocs := testing.AllocsPerRun(10, func() {
		line := obs.AppendEvent(nil, obs.Event{Kind: obs.KindRunDone, Time: 1.5})
		d := NewDecoder(bytes.NewReader(line))
		if _, err := d.Next(); err != nil {
			t.Fatal(err)
		}
	}); allocs > 12 {
		// The decoder itself (reader buffer, intern map) dominates; the
		// bound just catches accidental per-field allocation blowups.
		t.Fatalf("decode allocations per fresh decoder: %v", allocs)
	}
}

func FuzzDecoder(f *testing.F) {
	// Seed with every kind's encoded form plus the documented failure
	// shapes, so the fuzzer starts at the real grammar.
	for _, k := range obs.Kinds() {
		f.Add(obs.AppendEvent(nil, fullEvent(k)))
		f.Add(obs.AppendEvent(nil, obs.NewEvent(k)))
	}
	f.Add([]byte(`{"kind":"reply","seq":1}`))
	f.Add([]byte(`{"kind":"eval","round":1,"loss":null,"acc":null}` + "\n"))
	f.Add([]byte(`{"kind":"round-open","round":2,"n":1}` + "\n" + `{"kind":"round-open","round":1,"n":1}` + "\n"))
	f.Add([]byte(`{"kind":"run-start","label":"µ\n","n":1}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"kind":"checkpoint","round":-99999999999999999999}` + "\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		d := NewDecoder(bytes.NewReader(in))
		for {
			e, err := d.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return
				}
				// Any failure must be a typed, located error.
				var le *LineError
				if !errors.As(err, &le) || le.Line <= 0 {
					t.Fatalf("untyped decode error: %v", err)
				}
				if !errors.Is(err, ErrSyntax) && !errors.Is(err, ErrUnknownKind) &&
					!errors.Is(err, ErrUnknownField) && !errors.Is(err, ErrBadNumber) &&
					!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOutOfOrder) {
					t.Fatalf("unclassified decode error: %v", err)
				}
				return
			}
			// Whatever decodes must re-encode to a line that decodes to
			// the same event (idempotent canonical form).
			line := obs.AppendEvent(nil, e)
			again, err := ReadAll(bytes.NewReader(line))
			if err != nil || len(again) != 1 {
				t.Fatalf("re-decode of %s failed: %v", line, err)
			}
			if re := obs.AppendEvent(nil, again[0]); !bytes.Equal(line, re) {
				t.Fatalf("canonical form unstable: %s vs %s", line, re)
			}
		}
	})
}
