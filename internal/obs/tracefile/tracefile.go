// Package tracefile reads the JSONL run traces internal/obs writes
// (the `-trace out.jsonl` files of the cmds) back into obs.Events.
//
// The decoder is not a generic JSON parser: it walks the same per-kind
// field table the encoder walks (obs.Fields), expecting exactly the
// keys that table lists, in that order, with only the table's omission
// rules allowed. That strictness is the point — decode→re-encode is
// byte-identical for every kind (the round-trip test holds both sides
// to the shared table), so a trace that decodes is known to be exactly
// what the writer emits and `fedtrace diff` can compare streams
// event-by-event.
//
// The decoder is streaming and allocation-conscious: lines are scanned
// in place from a bufio.Reader, numbers are parsed without
// intermediate strings, and the small set of recurring string values
// (dispositions, run labels) is interned so a million-line trace
// allocates a handful of strings, not a million.
//
// Malformed input never panics: every failure is a typed sentinel
// (ErrSyntax, ErrUnknownKind, ErrUnknownField, ErrBadNumber,
// ErrTruncated, ErrOutOfOrder) wrapped in a LineError carrying the
// 1-based line number, so `errors.Is` can classify and messages point
// at the offending line.
package tracefile

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"fedprox/internal/obs"
)

// Sentinel error classes; match with errors.Is. Every error returned
// by Decoder.Next (except io.EOF) wraps one of these inside a
// *LineError.
var (
	// ErrSyntax marks a line that is not a well-formed trace object
	// (bad framing, missing required field, trailing bytes).
	ErrSyntax = errors.New("malformed trace line")
	// ErrUnknownKind marks a "kind" value the schema does not list.
	ErrUnknownKind = errors.New("unknown event kind")
	// ErrUnknownField marks a key the line's kind does not list (or a
	// known key out of schema order).
	ErrUnknownField = errors.New("unexpected field")
	// ErrBadNumber marks a numeric value that is not a plain decimal
	// int or float (or overflows).
	ErrBadNumber = errors.New("malformed number")
	// ErrTruncated marks a final line cut off before its newline — the
	// writer terminates every line, so a missing one means a partial
	// write.
	ErrTruncated = errors.New("truncated line")
	// ErrOutOfOrder marks a round-open whose round does not increase
	// within its run at its tier — each coordinator emits its rounds
	// strictly ascending, so a violation means spliced or reordered
	// input. A hierarchical run interleaves several coordinators into
	// one trace; their tier stamps keep the per-node streams separable.
	ErrOutOfOrder = errors.New("out-of-order round")
)

// LineError locates a decode failure: Line is 1-based, Err wraps one
// of the sentinel classes above.
type LineError struct {
	Line int
	Err  error
}

func (e *LineError) Error() string { return fmt.Sprintf("trace line %d: %v", e.Line, e.Err) }

// Unwrap exposes the wrapped sentinel to errors.Is/As.
func (e *LineError) Unwrap() error { return e.Err }

// Decoder streams events out of one trace. Not safe for concurrent
// use.
type Decoder struct {
	r    *bufio.Reader
	line int    // lines consumed so far (1-based for errors)
	long []byte // spill buffer for lines longer than the read buffer
	err  error  // latched terminal state (io.EOF or a *LineError)

	// strs interns recurring string values ("folded", "drop-deadline",
	// run labels) so decoding N lines allocates O(distinct), not O(N).
	strs map[string]string

	// lastRound enforces round-open monotonicity per run and tier;
	// reset by run-start. The root (tier 0) and untiered coordinators
	// (tier -1) open each round exactly once, so their rounds must
	// strictly increase; sibling edges share a tier and each opens the
	// same root round, so tiers above 0 only require non-decreasing.
	lastRound map[int]int
}

// NewDecoder returns a Decoder reading r. Wrap files in the Decoder
// directly — it buffers internally.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{
		r:         bufio.NewReaderSize(r, 64<<10),
		strs:      make(map[string]string),
		lastRound: make(map[int]int),
	}
}

// Line returns the number of lines consumed so far — after a
// successful Next, the line the returned event came from.
func (d *Decoder) Line() int { return d.line }

// Next returns the next event. At clean end of input it returns io.EOF;
// any other error is a *LineError and latches (subsequent calls return
// it again).
func (d *Decoder) Next() (obs.Event, error) {
	if d.err != nil {
		return obs.Event{}, d.err
	}
	raw, err := d.readLine()
	if err != nil {
		d.err = err
		return obs.Event{}, err
	}
	e, perr := d.parse(raw)
	if perr != nil {
		d.err = &LineError{Line: d.line, Err: perr}
		return obs.Event{}, d.err
	}
	switch e.Kind {
	case obs.KindRunStart:
		clear(d.lastRound)
	case obs.KindRoundOpen:
		last, seen := d.lastRound[e.Tier]
		repeatOK := e.Tier > 0 // sibling edges each open the root's round
		if seen && (e.Round < last || (e.Round == last && !repeatOK)) {
			d.err = &LineError{Line: d.line, Err: fmt.Errorf("%w: round-open %d after round %d", ErrOutOfOrder, e.Round, last)}
			return obs.Event{}, d.err
		}
		d.lastRound[e.Tier] = e.Round
	}
	return e, nil
}

// readLine returns the next line without its trailing newline, valid
// until the following readLine call. Lines longer than the reader's
// buffer spill into d.long; EOF mid-line is ErrTruncated.
func (d *Decoder) readLine() ([]byte, error) {
	d.long = d.long[:0]
	for {
		chunk, err := d.r.ReadSlice('\n')
		switch {
		case err == nil:
			d.line++
			if len(d.long) > 0 {
				d.long = append(d.long, chunk...)
				chunk = d.long
			}
			return chunk[:len(chunk)-1], nil
		case errors.Is(err, bufio.ErrBufferFull):
			d.long = append(d.long, chunk...)
		case errors.Is(err, io.EOF):
			if len(chunk) > 0 || len(d.long) > 0 {
				d.line++
				return nil, &LineError{Line: d.line, Err: ErrTruncated}
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

// parse decodes one line against the shared schema table.
func (d *Decoder) parse(b []byte) (obs.Event, error) {
	var e obs.Event
	rest, ok := cut(b, `{"kind":"`)
	if !ok {
		return e, fmt.Errorf(`%w: line must start with {"kind":"`, ErrSyntax)
	}
	name, rest, ok := scanTo(rest, '"')
	if !ok {
		return e, fmt.Errorf("%w: unterminated kind", ErrSyntax)
	}
	kind, ok := obs.KindFromName(name)
	if !ok {
		return e, fmt.Errorf("%w: %q", ErrUnknownKind, name)
	}
	e = obs.NewEvent(kind)
	fields := obs.Fields(kind)
	idx := 0

	for {
		if len(rest) == 0 {
			return e, fmt.Errorf("%w: unterminated object", ErrSyntax)
		}
		if rest[0] == '}' {
			if len(rest) != 1 {
				return e, fmt.Errorf("%w: trailing bytes after }", ErrSyntax)
			}
			// Any fields left in the schema must be omittable.
			for ; idx < len(fields); idx++ {
				if !omittable(fields[idx]) {
					return e, fmt.Errorf("%w: missing field %q", ErrSyntax, fields[idx].Key)
				}
			}
			return e, nil
		}
		var key []byte
		key, rest, ok = scanKey(rest)
		if !ok {
			return e, fmt.Errorf("%w: malformed field key", ErrSyntax)
		}
		// Advance through the schema to the field this key names,
		// stepping only over omittable fields.
		for idx < len(fields) && !keyIs(key, fields[idx].Key) {
			if !omittable(fields[idx]) {
				return e, fmt.Errorf("%w: missing field %q", ErrSyntax, fields[idx].Key)
			}
			idx++
		}
		if idx == len(fields) {
			return e, fmt.Errorf("%w: %q in %s event", ErrUnknownField, key, kind)
		}
		f := fields[idx]
		idx++

		switch f.Type {
		case obs.FieldInt:
			var tok []byte
			tok, rest = scanValue(rest)
			v, err := parseInt(tok)
			if err != nil {
				return e, fmt.Errorf("%w: field %q value %q", err, f.Key, tok)
			}
			if v < math.MinInt || v > math.MaxInt {
				return e, fmt.Errorf("%w: field %q value %q overflows int", ErrBadNumber, f.Key, tok)
			}
			f.SetInt(&e, int(v))
		case obs.FieldInt64:
			var tok []byte
			tok, rest = scanValue(rest)
			v, err := parseInt(tok)
			if err != nil {
				return e, fmt.Errorf("%w: field %q value %q", err, f.Key, tok)
			}
			f.SetInt64(&e, v)
		case obs.FieldFloat:
			var tok []byte
			tok, rest = scanValue(rest)
			v, err := parseFloat(tok)
			if err != nil {
				return e, fmt.Errorf("%w: field %q value %q", err, f.Key, tok)
			}
			f.SetFloat(&e, v)
		case obs.FieldString:
			var s string
			var err error
			s, rest, err = d.scanString(rest)
			if err != nil {
				return e, fmt.Errorf("%w: field %q: %v", ErrSyntax, f.Key, err)
			}
			f.SetStr(&e, s)
		}
	}
}

func omittable(f obs.FieldSpec) bool { return f.OmitNaN || f.OmitNeg }

// cut strips prefix from b, reporting whether it was present.
func cut(b []byte, prefix string) ([]byte, bool) {
	if len(b) < len(prefix) || string(b[:len(prefix)]) != prefix {
		return nil, false
	}
	return b[len(prefix):], true
}

// scanTo splits b at the first occurrence of c.
func scanTo(b []byte, c byte) (head, tail []byte, ok bool) {
	for i := 0; i < len(b); i++ {
		if b[i] == c {
			return b[:i], b[i+1:], true
		}
	}
	return nil, nil, false
}

// scanKey consumes `,"key":` and returns the key.
func scanKey(b []byte) (key, rest []byte, ok bool) {
	if len(b) < 2 || b[0] != ',' || b[1] != '"' {
		return nil, nil, false
	}
	key, rest, ok = scanTo(b[2:], '"')
	if !ok || len(rest) == 0 || rest[0] != ':' {
		return nil, nil, false
	}
	return key, rest[1:], true
}

func keyIs(key []byte, want string) bool { return string(key) == want }

// scanValue consumes an unquoted value token (number or null), up to
// the next ',' or '}'.
func scanValue(b []byte) (tok, rest []byte) {
	for i := 0; i < len(b); i++ {
		if b[i] == ',' || b[i] == '}' {
			return b[:i], b[i:]
		}
	}
	return b, nil
}

// scanString consumes a quoted string value, interning the result.
func (d *Decoder) scanString(b []byte) (string, []byte, error) {
	if len(b) == 0 || b[0] != '"' {
		return "", nil, errors.New("value is not a string")
	}
	b = b[1:]
	// Fast path: no escapes.
	for i := 0; i < len(b); i++ {
		switch b[i] {
		case '\\':
			return d.unquoteSlow(b)
		case '"':
			return d.intern(b[:i]), b[i+1:], nil
		}
	}
	return "", nil, errors.New("unterminated string")
}

// unquoteSlow handles strings with escapes (rare: only labels and
// dispositions containing quotes or non-printable characters). It
// finds the escape-aware closing quote, then delegates to
// strconv.Unquote — the exact inverse of the strconv quoting
// AppendEvent uses, including its \xNN and \uNNNN forms — so every
// string the encoder can write decodes.
func (d *Decoder) unquoteSlow(b []byte) (string, []byte, error) {
	for i := 0; i < len(b); {
		switch b[i] {
		case '\\':
			i += 2
		case '"':
			s, err := strconv.Unquote(`"` + string(b[:i]) + `"`)
			if err != nil {
				return "", nil, errors.New("bad escape")
			}
			return s, b[i+1:], nil
		default:
			i++
		}
	}
	return "", nil, errors.New("unterminated string")
}

// intern returns the canonical string for b, allocating only on first
// sight. The map lookup with a converted key is recognized by the
// compiler and does not allocate.
func (d *Decoder) intern(b []byte) string {
	if s, ok := d.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	d.strs[s] = s
	return s
}

// parseInt parses a plain decimal integer (optional leading minus, no
// exponents, no leading zeros enforced) with overflow checking.
func parseInt(b []byte) (int64, error) {
	neg := false
	i := 0
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	if i >= len(b) {
		return 0, ErrBadNumber
	}
	var v uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, ErrBadNumber
		}
		if v > (math.MaxUint64-uint64(c-'0'))/10 {
			return 0, ErrBadNumber
		}
		v = v*10 + uint64(c-'0')
	}
	if neg {
		if v > math.MaxInt64+1 {
			return 0, ErrBadNumber
		}
		return -int64(v), nil
	}
	if v > math.MaxInt64 {
		return 0, ErrBadNumber
	}
	return int64(v), nil
}

// parseFloat parses a JSON number token or null (the encoder writes
// non-omitted NaN/Inf as null). The charset is pre-checked so
// strconv's laxer forms ("Inf", "NaN", hex floats) are rejected.
func parseFloat(b []byte) (float64, error) {
	if string(b) == "null" {
		return math.NaN(), nil
	}
	if len(b) == 0 {
		return 0, ErrBadNumber
	}
	for _, c := range b {
		switch {
		case c >= '0' && c <= '9':
		case c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E':
		default:
			return 0, ErrBadNumber
		}
	}
	// The conversion does not escape, so the compiler keeps it off the
	// heap for the short tokens numbers are.
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return 0, ErrBadNumber
	}
	return v, nil
}

// ReadAll decodes every event in r. On error it returns the events
// decoded so far alongside the *LineError.
func ReadAll(r io.Reader) ([]obs.Event, error) {
	d := NewDecoder(r)
	var evs []obs.Event
	for {
		e, err := d.Next()
		if errors.Is(err, io.EOF) {
			return evs, nil
		}
		if err != nil {
			return evs, err
		}
		evs = append(evs, e)
	}
}

// Runs splits a decoded event stream at its run-start events — a trace
// file written by a multi-experiment command (fedbench -exp a,b)
// concatenates one run per case. Events before the first run-start (if
// any) form the first slice.
func Runs(events []obs.Event) [][]obs.Event {
	var runs [][]obs.Event
	start := 0
	for i, e := range events {
		if e.Kind == obs.KindRunStart && i > start {
			runs = append(runs, events[start:i])
			start = i
		}
	}
	if start < len(events) {
		runs = append(runs, events[start:])
	}
	return runs
}
