package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestScaleRoundTripAndGate(t *testing.T) {
	pts := []ScalePoint{
		{Name: "scale-100000", Devices: 100_000, Dispatches: 2000, DispatchesPerSec: 400,
			BytesPerDevice: 220, PeakSysBytes: 22 << 20, WallSeconds: 5, FinalLoss: 1.61},
		{Name: "scale-1000000", Devices: 1_000_000, Dispatches: 2000, DispatchesPerSec: 40,
			BytesPerDevice: 140, PeakSysBytes: 140 << 20, WallSeconds: 50, FinalLoss: 1.61},
	}
	var buf bytes.Buffer
	if err := WriteScale(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScale(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != pts[0] || got[1] != pts[1] {
		t.Fatalf("round trip: %+v", got)
	}

	// Within budget: 30% slower and 30% fatter under a 50% tolerance.
	cur := []ScalePoint{{Name: "scale-100000", DispatchesPerSec: 280, BytesPerDevice: 286}}
	if msgs := CompareScale(cur, pts, 0.5); len(msgs) != 0 {
		t.Fatalf("unexpected regressions: %v", msgs)
	}
	// Throughput below floor AND footprint above ceiling both flag.
	cur = []ScalePoint{{Name: "scale-100000", DispatchesPerSec: 100, BytesPerDevice: 400}}
	msgs := CompareScale(cur, pts, 0.5)
	if len(msgs) != 2 {
		t.Fatalf("want 2 regressions, got %v", msgs)
	}
	if !strings.Contains(msgs[0], "dispatches/sec") || !strings.Contains(msgs[1], "bytes/device") {
		t.Fatalf("regression messages lack the gated dimensions: %v", msgs)
	}
	// Unlike CompareSpeed, a baseline point the current run skipped is
	// NOT a regression — CI smoke re-measures only the sizes in budget.
	cur = []ScalePoint{{Name: "scale-100000", DispatchesPerSec: 400, BytesPerDevice: 220}}
	if msgs := CompareScale(cur, pts, 0.5); len(msgs) != 0 {
		t.Fatalf("skipped baseline size flagged: %v", msgs)
	}
	// A size new to current ratchets in silently.
	cur = append(cur, ScalePoint{Name: "scale-10000000", DispatchesPerSec: 1, BytesPerDevice: 999})
	if msgs := CompareScale(cur, pts, 0.5); len(msgs) != 0 {
		t.Fatalf("new size flagged: %v", msgs)
	}
}
