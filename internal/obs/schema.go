package obs

import "math"

// This file is the single source of truth for the JSONL trace schema:
// one table mapping each Kind to its wire fields, in output order. The
// encoder (AppendEvent) and the decoder (internal/obs/tracefile) both
// iterate this table, so the two sides cannot drift — adding a field
// here changes writer and reader together, and the tracefile round-trip
// test (decode→re-encode byte-identical for every kind) holds them to
// it.

// FieldType is the wire representation of one event field.
type FieldType uint8

const (
	// FieldInt is an int rendered in decimal.
	FieldInt FieldType = iota
	// FieldInt64 is an int64 rendered in decimal (byte counters).
	FieldInt64
	// FieldFloat is a float64 rendered via strconv 'g'/-1 (shortest
	// round-trip form); non-omitted NaN/Inf render as null.
	FieldFloat
	// FieldString is a strconv-quoted string.
	FieldString
)

// fieldID names the Event struct field a spec reads and writes. It is
// private — external readers go through the FieldSpec accessors — so
// the schema table stays the only coupling point.
type fieldID uint8

const (
	fTime fieldID = iota
	fLabel
	fRound
	fSeq
	fDevice
	fVersion
	fStaleness
	fEpochs
	fBudget
	fEpochsDone
	fBytesDown
	fBytesUp
	fDisposition
	fLoss
	fAcc
	fSeconds
	fN
	fTier
)

// FieldSpec describes one wire field of a kind: its JSON key, wire
// type, omission rule, and (privately) which Event field it maps to.
// Use the typed accessors to move values between an Event and the wire.
type FieldSpec struct {
	// Key is the JSON object key ("round", "rel", "down", ...).
	Key string
	// Type selects which accessor pair is valid for this field.
	Type FieldType
	// OmitNaN marks a float field that is absent from the line when
	// NaN (clockless runs omit "t", untimed replies omit "rel").
	OmitNaN bool
	// OmitNeg marks an int field that is absent when negative (a
	// span's "device").
	OmitNeg bool

	id fieldID
}

// Int reads the spec's field from e. Valid only for FieldInt specs.
func (f FieldSpec) Int(e *Event) int {
	switch f.id {
	case fRound:
		return e.Round
	case fSeq:
		return e.Seq
	case fDevice:
		return e.Device
	case fVersion:
		return e.Version
	case fStaleness:
		return e.Staleness
	case fEpochs:
		return e.Epochs
	case fBudget:
		return e.Budget
	case fEpochsDone:
		return e.EpochsDone
	case fN:
		return e.N
	case fTier:
		return e.Tier
	}
	return 0
}

// SetInt writes the spec's field on e. Valid only for FieldInt specs.
func (f FieldSpec) SetInt(e *Event, v int) {
	switch f.id {
	case fRound:
		e.Round = v
	case fSeq:
		e.Seq = v
	case fDevice:
		e.Device = v
	case fVersion:
		e.Version = v
	case fStaleness:
		e.Staleness = v
	case fEpochs:
		e.Epochs = v
	case fBudget:
		e.Budget = v
	case fEpochsDone:
		e.EpochsDone = v
	case fN:
		e.N = v
	case fTier:
		e.Tier = v
	}
}

// Int64 reads the spec's field from e. Valid only for FieldInt64 specs.
func (f FieldSpec) Int64(e *Event) int64 {
	switch f.id {
	case fBytesDown:
		return e.BytesDown
	case fBytesUp:
		return e.BytesUp
	}
	return 0
}

// SetInt64 writes the spec's field on e. Valid only for FieldInt64
// specs.
func (f FieldSpec) SetInt64(e *Event, v int64) {
	switch f.id {
	case fBytesDown:
		e.BytesDown = v
	case fBytesUp:
		e.BytesUp = v
	}
}

// Float reads the spec's field from e. Valid only for FieldFloat specs.
func (f FieldSpec) Float(e *Event) float64 {
	switch f.id {
	case fTime:
		return e.Time
	case fLoss:
		return e.Loss
	case fAcc:
		return e.Acc
	case fSeconds:
		return e.Seconds
	}
	return 0
}

// SetFloat writes the spec's field on e. Valid only for FieldFloat
// specs.
func (f FieldSpec) SetFloat(e *Event, v float64) {
	switch f.id {
	case fTime:
		e.Time = v
	case fLoss:
		e.Loss = v
	case fAcc:
		e.Acc = v
	case fSeconds:
		e.Seconds = v
	}
}

// Str reads the spec's field from e. Valid only for FieldString specs.
func (f FieldSpec) Str(e *Event) string {
	switch f.id {
	case fLabel:
		return e.Label
	case fDisposition:
		return e.Disposition
	}
	return ""
}

// SetStr writes the spec's field on e. Valid only for FieldString
// specs.
func (f FieldSpec) SetStr(e *Event, v string) {
	switch f.id {
	case fLabel:
		e.Label = v
	case fDisposition:
		e.Disposition = v
	}
}

// Spec constructors — terse on purpose so the table below reads as the
// schema itself.
func fi(key string, id fieldID) FieldSpec { return FieldSpec{Key: key, Type: FieldInt, id: id} }
func f64(key string, id fieldID) FieldSpec {
	return FieldSpec{Key: key, Type: FieldInt64, id: id}
}
func ff(key string, id fieldID) FieldSpec { return FieldSpec{Key: key, Type: FieldFloat, id: id} }
func fnan(key string, id fieldID) FieldSpec {
	return FieldSpec{Key: key, Type: FieldFloat, OmitNaN: true, id: id}
}
func fneg(key string, id fieldID) FieldSpec {
	return FieldSpec{Key: key, Type: FieldInt, OmitNeg: true, id: id}
}
func fs(key string, id fieldID) FieldSpec {
	return FieldSpec{Key: key, Type: FieldString, id: id}
}

// tf is the "t" timestamp: first field of every kind, omitted on
// clockless runs.
var tf = fnan("t", fTime)

// kindFields is the trace schema, indexed by Kind. Field order is wire
// order; every listed field is always present except those whose
// omission rule fires.
var kindFields = [KindRunDone + 1][]FieldSpec{
	KindRunStart:  {tf, fs("label", fLabel), fi("n", fN)},
	KindRoundOpen: {tf, fi("round", fRound), fi("n", fN), fneg("tier", fTier)},
	KindDispatch: {tf, fi("round", fRound), fi("seq", fSeq), fi("device", fDevice),
		fi("version", fVersion), fi("epochs", fEpochs), fi("budget", fBudget), f64("down", fBytesDown),
		fneg("tier", fTier)},
	KindReply: {tf, fi("seq", fSeq), fi("device", fDevice), fi("version", fVersion),
		fi("stale", fStaleness), fi("done", fEpochsDone), f64("up", fBytesUp),
		f64("down", fBytesDown), fnan("rel", fSeconds), fs("drop", fDisposition),
		fneg("tier", fTier)},
	KindDrop:          {tf, fi("round", fRound), fi("device", fDevice), fs("drop", fDisposition)},
	KindFold:          {tf, fi("round", fRound), fi("version", fVersion), fi("n", fN), fneg("tier", fTier)},
	KindRoundClose:    {tf, fi("round", fRound), fi("n", fN), fnan("secs", fSeconds), fneg("tier", fTier)},
	KindEval:          {tf, fi("round", fRound), ff("loss", fLoss), ff("acc", fAcc)},
	KindCheckpoint:    {tf, fi("round", fRound)},
	KindWorkerJoin:    {tf, fi("n", fN)},
	KindWorkerLost:    {tf, fi("device", fDevice)},
	KindWorkerReadmit: {tf, fi("device", fDevice)},
	KindDeviceDispatch: {tf, fi("round", fRound), fi("seq", fSeq), fi("device", fDevice),
		fi("done", fEpochsDone), f64("up", fBytesUp), f64("down", fBytesDown)},
	KindDeviceEval: {tf, fi("seq", fSeq), fi("n", fN)},
	KindSpan:       {tf, fs("label", fLabel), fneg("device", fDevice), fnan("secs", fSeconds)},
	KindRunDone:    {tf},
}

// Fields returns k's wire fields in output order, or nil for an
// invalid kind. The returned slice is shared — do not mutate it.
func Fields(k Kind) []FieldSpec {
	if int(k) < len(kindFields) {
		return kindFields[k]
	}
	return nil
}

// Kinds lists every valid kind in wire order.
func Kinds() []Kind {
	ks := make([]Kind, 0, int(KindRunDone))
	for k := KindRunStart; k <= KindRunDone; k++ {
		ks = append(ks, k)
	}
	return ks
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, int(KindRunDone))
	for k := KindRunStart; k <= KindRunDone; k++ {
		m[k.String()] = k
	}
	return m
}()

// KindFromName resolves a wire name ("dispatch") to its Kind. The
// []byte signature lets decoders look up without allocating (the
// compiler elides the conversion for map access).
func KindFromName(name []byte) (Kind, bool) {
	k, ok := kindByName[string(name)]
	return k, ok
}

// NewEvent returns an Event of kind k with every omittable field preset
// to its omitted sentinel (NaN for OmitNaN floats including Time, -1
// for OmitNeg ints), so decoders and emitters that never touch those
// fields produce the omitted form rather than a spurious zero.
func NewEvent(k Kind) Event {
	e := Event{Kind: k}
	for _, f := range Fields(k) {
		switch {
		case f.Type == FieldFloat && f.OmitNaN:
			f.SetFloat(&e, math.NaN())
		case f.Type == FieldInt && f.OmitNeg:
			f.SetInt(&e, -1)
		}
	}
	return e
}
