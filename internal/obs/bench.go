package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchPoint is one hot-path micro-benchmark measurement — the unit of
// the committed BENCH_speed.json that cmd/fedspeed regenerates and the
// CI bench-smoke job gates. Where BENCH_baseline.json ratchets model
// quality (final loss), BENCH_speed.json ratchets mechanism speed:
// ns/op is the gated number, allocs/op and bytes/op are tracked so an
// allocation regression is visible even when wall time absorbs it.
type BenchPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Iterations records the measured b.N, informational only.
	Iterations int `json:"iterations,omitempty"`
}

// WriteSpeed serializes points as indented JSON (the BENCH_speed.json
// format).
func WriteSpeed(w io.Writer, pts []BenchPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pts)
}

// ReadSpeed parses a BENCH_speed.json file.
func ReadSpeed(r io.Reader) ([]BenchPoint, error) {
	var pts []BenchPoint
	if err := json.NewDecoder(r).Decode(&pts); err != nil {
		return nil, fmt.Errorf("obs: parse speed json: %w", err)
	}
	return pts, nil
}

// CompareSpeed checks current against baseline and returns one message
// per regression: a benchmark present in the baseline whose ns/op now
// exceeds baseline·(1+tol), or which went missing entirely. An empty
// result means the gate passes. Benchmarks only in current are ignored
// — the baseline ratchets forward by being regenerated with
// `fedspeed -update`, not by blocking additions. Improvements are
// never flagged; regenerate the baseline to bank them.
func CompareSpeed(current, baseline []BenchPoint, tol float64) []string {
	cur := make(map[string]BenchPoint, len(current))
	for _, p := range current {
		cur[p.Name] = p
	}
	var regressions []string
	for _, b := range baseline {
		c, ok := cur[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current results", b.Name))
			continue
		}
		budget := b.NsPerOp * (1 + tol)
		if c.NsPerOp > budget {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by %.1f%% (budget %.0f%%)",
				b.Name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp-b.NsPerOp)/b.NsPerOp, 100*tol))
		}
	}
	return regressions
}
