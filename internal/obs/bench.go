package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// BenchPoint is one hot-path micro-benchmark measurement — the unit of
// the committed BENCH_speed.json that cmd/fedspeed regenerates and the
// CI bench-smoke job gates. Where BENCH_baseline.json ratchets model
// quality (final loss), BENCH_speed.json ratchets mechanism speed:
// ns/op is the gated number, allocs/op and bytes/op are tracked so an
// allocation regression is visible even when wall time absorbs it.
type BenchPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Iterations records the measured b.N, informational only.
	Iterations int `json:"iterations,omitempty"`
}

// WriteSpeed serializes points as indented JSON (the BENCH_speed.json
// format).
func WriteSpeed(w io.Writer, pts []BenchPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pts)
}

// ReadSpeed parses a BENCH_speed.json file.
func ReadSpeed(r io.Reader) ([]BenchPoint, error) {
	var pts []BenchPoint
	if err := json.NewDecoder(r).Decode(&pts); err != nil {
		return nil, fmt.Errorf("obs: parse speed json: %w", err)
	}
	return pts, nil
}

// CompareSpeed checks current against baseline and returns one message
// per regression: a benchmark present in the baseline whose ns/op now
// exceeds baseline·(1+tol), whose allocs/op rose above the committed
// floor (allocations are deterministic counts, so they get no
// tolerance), or which went missing entirely. An empty result means the
// gate passes. Benchmarks only in current are ignored — the baseline
// ratchets forward by being regenerated with `fedspeed -out`, not by
// blocking additions. Improvements are never flagged; regenerate the
// baseline to bank them.
func CompareSpeed(current, baseline []BenchPoint, tol float64) []string {
	cur := make(map[string]BenchPoint, len(current))
	for _, p := range current {
		cur[p.Name] = p
	}
	var regressions []string
	for _, b := range baseline {
		c, ok := cur[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current results", b.Name))
			continue
		}
		budget := b.NsPerOp * (1 + tol)
		if c.NsPerOp > budget {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by %.1f%% (budget %.0f%%)",
				b.Name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp-b.NsPerOp)/b.NsPerOp, 100*tol))
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op exceeds committed floor %d",
				b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return regressions
}

// RatioGate declares a required speedup between two benchmarks measured
// in the same run: the Fast benchmark's ns/op must be at least Min
// times lower than the Slow one's. These gate the claims an
// optimization was built on (e.g. "the f32 dispatch path is ≥1.5x the
// f64 one"), so they hold absolutely rather than relative to a
// baseline file — a refactor that quietly erases the speedup fails CI
// even if both sides got faster.
type RatioGate struct {
	Slow string  // the baseline benchmark's name
	Fast string  // the optimized benchmark's name
	Min  float64 // required Slow/Fast ns-per-op ratio
}

// CheckRatios verifies each gate against one or more measurement
// repetitions and returns one message per violation (or per gate whose
// benchmarks are missing from a repetition). Each repetition is a full
// suite run, so the two sides of a gate were measured under the same
// machine conditions; the gate holds on the median of the per-rep
// ratios, which cancels the common-mode noise (turbo, scheduler,
// neighbor load) that a ratio of two independently-picked numbers
// doubles up on. An empty result means every declared speedup still
// holds.
func CheckRatios(reps [][]BenchPoint, gates []RatioGate) []string {
	var violations []string
	for _, g := range gates {
		ratios := make([]float64, 0, len(reps))
		bad := false
		for _, pts := range reps {
			var slow, fast *BenchPoint
			for i := range pts {
				switch pts[i].Name {
				case g.Slow:
					slow = &pts[i]
				case g.Fast:
					fast = &pts[i]
				}
			}
			if slow == nil || fast == nil {
				violations = append(violations, fmt.Sprintf(
					"ratio %s/%s: benchmark missing from results", g.Slow, g.Fast))
				bad = true
				break
			}
			if fast.NsPerOp <= 0 {
				violations = append(violations, fmt.Sprintf(
					"ratio %s/%s: non-positive ns/op %.0f", g.Slow, g.Fast, fast.NsPerOp))
				bad = true
				break
			}
			ratios = append(ratios, slow.NsPerOp/fast.NsPerOp)
		}
		if bad {
			continue
		}
		if len(ratios) == 0 {
			violations = append(violations, fmt.Sprintf(
				"ratio %s/%s: no measurements", g.Slow, g.Fast))
			continue
		}
		sort.Float64s(ratios)
		if med := ratios[len(ratios)/2]; med < g.Min {
			violations = append(violations, fmt.Sprintf(
				"ratio %s/%s = %.2f (median of %d reps), below required %.2fx",
				g.Slow, g.Fast, med, len(ratios), g.Min))
		}
	}
	return violations
}
