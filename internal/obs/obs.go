// Package obs is the observability spine of the repo: one flat event
// vocabulary for every protocol decision the sans-I/O cores make, a
// Sink interface those cores emit into, and a small set of concrete
// sinks (a deterministic JSONL trace writer, a Prometheus-text
// counter/histogram registry, and the BENCH_speed.json bench points).
//
// The package is deliberately dependency-free: it imports only the
// standard library and nothing from the rest of the module, so
// internal/core can emit events without an import cycle and CI can
// enforce the boundary with `go list -deps`.
//
// Emission contract:
//
//   - A nil Sink means "tracing off". Emitters guard with a nil check,
//     so the disabled path costs one predictable branch and no
//     allocation — nothing measurable on the hot path.
//   - Event.Time is seconds on the emitting run's clock: virtual
//     seconds in the simulator and vtime executors, NaN when the run
//     has no clock. Wall-clock runtimes (fednet) wrap their sinks in
//     WallClock, which stamps NaN times with wall seconds since the
//     wrapper was built. Virtual-time events are therefore
//     deterministic per seed; wall-time events are not and never feed
//     determinism-sensitive sinks.
//   - Sinks must tolerate concurrent Emit calls: the coordinator
//     serializes its own emissions, but device runtimes serve distinct
//     devices from concurrent goroutines.
package obs

import (
	"math"
	"time"
)

// Kind classifies an Event. The zero value is invalid so a forgotten
// Kind is visible in traces instead of masquerading as a real event.
type Kind uint8

const (
	// KindRunStart opens a run: Label names it, N is the device count.
	KindRunStart Kind = iota + 1
	// KindRoundOpen opens a synchronous round: Round, N selected devices.
	KindRoundOpen
	// KindDispatch records one training dispatch leaving the
	// coordinator: Round (sync round or async milestone), Seq, Device,
	// Version of the broadcast snapshot, Epochs target, Budget (0 =
	// unlimited), BytesDown on the wire.
	KindDispatch
	// KindReply records the coordinator's verdict on one device reply:
	// Seq, Device, Version, Staleness at fold time (-1 when not
	// folded), EpochsDone, BytesUp/BytesDown of the round trip, Seconds
	// the reply's own latency (NaN untimed), Disposition ("folded" or a
	// drop reason).
	KindReply
	// KindDrop records a device cut without ever being contacted (the
	// DropStragglers policy): Round, Device, Disposition.
	KindDrop
	// KindFold records a model advance: Round, new Version, N updates
	// folded.
	KindFold
	// KindRoundClose closes a round or async milestone: Round, N
	// participants, Seconds of critical path (NaN untimed).
	KindRoundClose
	// KindEval records an evaluated point: Round, Loss, Acc.
	KindEval
	// KindCheckpoint records a persisted checkpoint: Round is the next
	// round after the saved prefix.
	KindCheckpoint
	// KindWorkerJoin records a transport-level worker connection
	// admitted by a wire driver: N devices on the connection.
	KindWorkerJoin
	// KindWorkerLost records one device evicted with its dead worker.
	KindWorkerLost
	// KindWorkerReadmit records one evicted device re-admitted.
	KindWorkerReadmit
	// KindDeviceDispatch is the device runtime's view of one served
	// dispatch: Round, Seq, Device, EpochsDone, BytesUp/BytesDown.
	KindDeviceDispatch
	// KindDeviceEval is the device runtime's view of one eval
	// broadcast: Seq, N hosted devices.
	KindDeviceEval
	// KindSpan is a measured duration around a named section: Label,
	// Seconds, optionally Device.
	KindSpan
	// KindRunDone closes a run.
	KindRunDone
)

// String returns the stable wire name of the kind — the "kind" value in
// JSONL traces and the README's event-schema table.
func (k Kind) String() string {
	switch k {
	case KindRunStart:
		return "run-start"
	case KindRoundOpen:
		return "round-open"
	case KindDispatch:
		return "dispatch"
	case KindReply:
		return "reply"
	case KindDrop:
		return "drop"
	case KindFold:
		return "fold"
	case KindRoundClose:
		return "round-close"
	case KindEval:
		return "eval"
	case KindCheckpoint:
		return "checkpoint"
	case KindWorkerJoin:
		return "worker-join"
	case KindWorkerLost:
		return "worker-lost"
	case KindWorkerReadmit:
		return "worker-readmit"
	case KindDeviceDispatch:
		return "device-dispatch"
	case KindDeviceEval:
		return "device-eval"
	case KindSpan:
		return "span"
	case KindRunDone:
		return "run-done"
	default:
		return "unknown"
	}
}

// Event is one observation. It is a flat value struct — no maps, no
// pointers — so building one on the emit path allocates nothing. Which
// fields are meaningful depends on Kind (see the Kind constants); the
// JSONL encoder serializes exactly the meaningful set, in a fixed
// order, so traces are byte-stable.
type Event struct {
	Kind Kind
	// Time is seconds on the run's clock; NaN when the run has no
	// clock (see the package comment).
	Time float64
	// Label names a run (KindRunStart) or a span section (KindSpan).
	Label string

	Round     int
	Seq       int
	Device    int
	Version   int
	Staleness int

	// Tier is the emitting coordinator's depth in a hierarchical
	// topology: 0 for the root, 1 for its edge aggregators, and so on.
	// -1 (the wire-omitted sentinel) marks an untiered run, so flat
	// traces carry no tier field at all.
	Tier int

	// Epochs is the dispatched epoch target; Budget the device-side
	// compute budget riding the dispatch (0 = unlimited); EpochsDone
	// the epochs the device actually ran.
	Epochs     int
	Budget     int
	EpochsDone int

	BytesDown int64
	BytesUp   int64

	// Disposition is what the coordinator did with a reply: "folded"
	// or a core.DropReason string.
	Disposition string

	Loss float64
	Acc  float64

	// Seconds is a measured duration: a reply's own latency
	// (KindReply), a round's critical path (KindRoundClose), a span's
	// length (KindSpan). NaN when unmeasured.
	Seconds float64

	// N is the kind's contextual count: devices in a run, selected
	// devices in a round, updates in a fold, hosted devices in an eval.
	N int
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls and must not retain the Event past the call (it is a
// value; retaining copies is fine).
type Sink interface {
	Emit(Event)
}

// Discard is the explicit no-op sink: every event is dropped. Emitters
// treat a nil Sink the same way without the interface call; Discard
// exists for call sites that want a non-nil sink unconditionally (and
// for measuring the cost of emission itself, see the no-op overhead
// benchmark).
var Discard Sink = discard{}

type discard struct{}

func (discard) Emit(Event) {}

// Multi fans every event out to each non-nil sink, in order. Nil
// arguments are skipped; with zero live sinks it returns nil (tracing
// off), with one it returns that sink unwrapped.
func Multi(sinks ...Sink) Sink {
	live := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multi []Sink

func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// WallClock stamps events that carry no time (Time NaN) with wall
// seconds since the wrapper was built, leaving timed events untouched.
// Wire runtimes wrap their sinks in it; simulator runs never do, so
// their traces stay deterministic. A nil inner sink yields nil.
func WallClock(inner Sink) Sink {
	if inner == nil {
		return nil
	}
	return &wallClock{inner: inner, start: time.Now()}
}

type wallClock struct {
	inner Sink
	start time.Time
}

func (w *wallClock) Emit(e Event) {
	if math.IsNaN(e.Time) {
		e.Time = time.Since(w.start).Seconds()
	}
	w.inner.Emit(e)
}

// Span measures the wall duration of one section and emits it as a
// single event when ended. The zero Kind defaults to KindSpan; Time is
// marked NaN so a WallClock wrapper stamps the emission point.
//
//	sp := obs.StartSpan(sink, obs.Event{Label: "worker-solve", Device: id})
//	... work ...
//	sp.End()
//
// Fields set on sp.Event between start and End (a result count, byte
// totals) ride the emitted event. A nil sink returns a nil *Span whose
// End is a no-op, so call sites need no guards.
type Span struct {
	Event Event
	sink  Sink
	start time.Time
}

// StartSpan opens a span; see Span.
func StartSpan(sink Sink, e Event) *Span {
	if sink == nil {
		return nil
	}
	if e.Kind == 0 {
		e.Kind = KindSpan
	}
	e.Time = math.NaN()
	return &Span{Event: e, sink: sink, start: time.Now()}
}

// End emits the span's event with Seconds set to the measured wall
// duration. Safe on a nil Span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Event.Seconds = time.Since(s.start).Seconds()
	s.sink.Emit(s.Event)
}
