package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ScalePoint is one population-scale run measurement — the unit of the
// committed BENCH_scale.json that `fedspeed -scale` regenerates and the
// CI bench-smoke job gates. Where BENCH_speed.json ratchets per-op
// mechanism speed, BENCH_scale.json ratchets whole-run scalability: a
// virtual-time asynchronous run over a lazily materialized fleet of
// Devices devices, measured as dispatch throughput and memory footprint
// per device. A change that silently re-introduces an O(N)-per-dispatch
// walk or an eager per-device allocation moves these numbers by orders
// of magnitude, not percent.
type ScalePoint struct {
	Name    string `json:"name"`
	Devices int    `json:"devices"`
	// Dispatches is the number of training dispatches the run served.
	Dispatches int `json:"dispatches"`
	// DispatchesPerSec is the gated throughput number: dispatches
	// served per wall-clock second, end to end (fleet construction,
	// run, final evaluation).
	DispatchesPerSec float64 `json:"dispatches_per_sec"`
	// BytesPerDevice is the gated footprint number: peak runtime memory
	// divided by the population. Lazy fleets hold O(1) bytes per device
	// (sample counts, liveness, the Fenwick tree) — materializing
	// shards or buffers per device shows up here as a ~100x jump.
	BytesPerDevice float64 `json:"bytes_per_device"`
	// PeakSysBytes is the runtime's peak memory claimed from the OS
	// (runtime.MemStats.Sys after the run), informational.
	PeakSysBytes int64 `json:"peak_sys_bytes"`
	// WallSeconds is the measured wall-clock duration, informational.
	WallSeconds float64 `json:"wall_seconds"`
	// FinalLoss is the run's final evaluated global loss — a
	// determinism tripwire, not a gated number: the run is seeded, so
	// any change here means the scale path diverged from the reference
	// semantics, not that the model got worse.
	FinalLoss float64 `json:"final_loss"`
}

// WriteScale serializes points as indented JSON (the BENCH_scale.json
// format).
func WriteScale(w io.Writer, pts []ScalePoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pts)
}

// ReadScale parses a BENCH_scale.json file.
func ReadScale(r io.Reader) ([]ScalePoint, error) {
	var pts []ScalePoint
	if err := json.NewDecoder(r).Decode(&pts); err != nil {
		return nil, fmt.Errorf("obs: parse scale json: %w", err)
	}
	return pts, nil
}

// CompareScale checks current against baseline and returns one message
// per regression: a measured point whose throughput fell below
// baseline·(1−tol) or whose per-device footprint rose above
// baseline·(1+tol). An empty result means the gate passes.
//
// Unlike CompareSpeed, baseline points missing from current are NOT
// regressions: the committed file carries every population size the
// full `fedspeed -scale` sweep measures (10^5 and 10^6), while the CI
// smoke job re-measures only the sizes that fit its time budget and
// gates those.
func CompareScale(current, baseline []ScalePoint, tol float64) []string {
	base := make(map[string]ScalePoint, len(baseline))
	for _, p := range baseline {
		base[p.Name] = p
	}
	var regressions []string
	for _, c := range current {
		b, ok := base[c.Name]
		if !ok {
			continue // a new size ratchets in when the baseline is regenerated
		}
		if floor := b.DispatchesPerSec * (1 - tol); c.DispatchesPerSec < floor {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f dispatches/sec below baseline %.0f by %.1f%% (budget %.0f%%)",
				c.Name, c.DispatchesPerSec, b.DispatchesPerSec,
				100*(b.DispatchesPerSec-c.DispatchesPerSec)/b.DispatchesPerSec, 100*tol))
		}
		if budget := b.BytesPerDevice * (1 + tol); c.BytesPerDevice > budget {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f bytes/device exceeds baseline %.0f by %.1f%% (budget %.0f%%)",
				c.Name, c.BytesPerDevice, b.BytesPerDevice,
				100*(c.BytesPerDevice-b.BytesPerDevice)/b.BytesPerDevice, 100*tol))
		}
	}
	return regressions
}
