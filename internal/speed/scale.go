package speed

import (
	"fmt"
	"runtime"
	"time"

	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
	"fedprox/internal/obs"
	"fedprox/internal/vtime"
)

// ScaleSizes are the populations the committed BENCH_scale.json
// measures. CI's bench-smoke job re-measures only the sizes that fit
// its time budget (the 10^5 point) and gates those; the full sweep runs
// when the baseline is regenerated.
var ScaleSizes = []int{100_000, 1_000_000}

// ScaleRSSBudget is the hard peak-memory ceiling for a scale run: a
// million-device virtual-time run must fit in 2 GB, which is only
// possible while fleet state stays O(1) per device and shards
// materialize on demand. ScaleRun fails outright above it — this is an
// absolute property of the lazy-fleet design, not a ratchet.
const ScaleRSSBudget = 2 << 30

// ScaleRun executes one population-scale virtual-time run: an
// asynchronous (staleness-damped) schedule over a lazily synthesized
// Synthetic(1,1) fleet of `devices` devices with a 10x-slow 10% tail,
// 2000 dispatches at 128 in flight, and a single final fleet
// evaluation. Every device-indexed structure in the run is O(1) per
// device; shards exist only while a dispatch or evaluation reads them.
//
// The run is fully seeded: same devices => same History, same trace,
// same FinalLoss, at any Parallelism. trace may be nil.
func ScaleRun(devices int, trace obs.Sink) (obs.ScalePoint, error) {
	start := time.Now()

	sc := synthetic.Config{
		Alpha: 1, Beta: 1,
		Devices:    devices,
		Dim:        10,
		Classes:    5,
		MinSamples: 10,
		MaxSamples: 20,
		PowerAlpha: 1.55,
		TrainFrac:  0.8,
		Seed:       42,
	}
	fl := synthetic.NewFleet(sc)
	mdl := linear.New(sc.Dim, sc.Classes)

	const rounds, clients = 20, 100 // 2000 dispatches per run
	cfg := core.FedAvg(rounds, clients, 1, 0.01)
	cfg.Mu = 0.1
	cfg.EvalEvery = rounds // evaluate the fleet once, at the end
	cfg.Async = core.AsyncConfig{Mode: core.AsyncTotal, MaxInFlight: 128}
	cfg.VTime = core.VTimeConfig{Model: vtime.MustModel(
		vtime.UniformCompute{SecondsPerEpoch: 0.05, Speed: vtime.SlowTail(devices, 0.1, 10)},
		vtime.Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.02, JitterStd: 0.1},
		cfg.Seed+101,
	)}
	cfg.Trace = trace

	h, err := core.RunFleet(mdl, fl, cfg)
	if err != nil {
		return obs.ScalePoint{}, fmt.Errorf("speed: scale run (%d devices): %w", devices, err)
	}
	wall := time.Since(start).Seconds()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.Sys > ScaleRSSBudget {
		return obs.ScalePoint{}, fmt.Errorf(
			"speed: scale run (%d devices) peaked at %d bytes, over the %d hard budget",
			devices, ms.Sys, int64(ScaleRSSBudget))
	}
	if len(h.Points) == 0 {
		return obs.ScalePoint{}, fmt.Errorf("speed: scale run (%d devices) evaluated no points", devices)
	}
	return obs.ScalePoint{
		Name:             fmt.Sprintf("scale-%d", devices),
		Devices:          devices,
		Dispatches:       len(h.Arrivals),
		DispatchesPerSec: float64(len(h.Arrivals)) / wall,
		BytesPerDevice:   float64(ms.Sys) / float64(devices),
		PeakSysBytes:     int64(ms.Sys),
		WallSeconds:      wall,
		FinalLoss:        h.Points[len(h.Points)-1].TrainLoss,
	}, nil
}
