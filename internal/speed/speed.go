// Package speed holds the repository's gated hot-path micro-benchmarks
// as plain functions over *testing.B, so two harnesses can share one
// body: the `go test -bench` suite (bench_test.go delegates here) and
// cmd/fedspeed, which runs them via testing.Benchmark to regenerate and
// gate the committed BENCH_speed.json (see internal/obs.BenchPoint).
//
// Only mechanism benchmarks belong here — code on the per-reply or
// per-dispatch hot path whose ns/op is meaningful in isolation. Whole
// experiment benchmarks stay in bench_test.go; their headline number is
// model quality, gated by BENCH_baseline.json instead.
package speed

import (
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
)

// Benchmarks enumerates the gated benchmarks by the stable names used in
// BENCH_speed.json.
var Benchmarks = []struct {
	Name string
	Fn   func(*testing.B)
}{
	{"CoordinatorFold", CoordinatorFold},
	{"DeviceDispatch", DeviceDispatch},
}

// CoordinatorFold measures the coordinator's staleness-damped fold
// (core.FoldStaleDeltas) — the arithmetic every asynchronous reply
// crosses on its way into the global model, shared by the fednet runtime
// and the virtual-time simulator. The workload is one FedBuff-style
// flush: K buffered deltas of a 10k-parameter model at mixed staleness.
func CoordinatorFold(b *testing.B) {
	const dim, k = 10_000, 10
	rng := frand.New(11)
	w := rng.NormVec(make([]float64, dim), 0, 1)
	batch := make([]core.StaleDelta, k)
	for i := range batch {
		batch[i] = core.StaleDelta{
			Delta:   rng.NormVec(make([]float64, dim), 0, 0.01),
			Weight:  float64(100 + 10*i),
			Version: i / 2, // mixed staleness against version k
		}
	}
	b.ReportAllocs()
	b.SetBytes(8 * dim * k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.FoldStaleDeltas(w, batch, k, core.UniformWeightedAvg, 1, 0.5) {
			b.Fatal("fold did not advance the model")
		}
	}
}

// DeviceDispatch measures the device runtime's full dispatch hot path —
// downlink decode, local solve, uplink encode on a stateful chained
// codec — the per-contact work every executor (simulator, vtime driver,
// fednet worker) performs through the same core.Device. The
// coordinator's half (broadcast encode) runs outside the timer.
func DeviceDispatch(b *testing.B) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.1))
	mdl := linear.ForDataset(fed)
	shard := fed.Shards[0]
	spec := comm.Spec{Name: "delta+qsgd", Bits: 8, Seed: 11}.WithDefaults()

	dev := core.NewDevice(mdl, fed.Shards[:1], core.DeviceOptions{})
	if err := dev.InstallLinks(spec, spec); err != nil {
		b.Fatal(err)
	}
	srv, err := comm.NewLinkState(spec, spec)
	if err != nil {
		b.Fatal(err)
	}
	rng := frand.New(3)
	wt := mdl.InitParams(rng.Split("params"))

	// Pre-encode b.N broadcasts (the coordinator's job) so the timed
	// loop holds only device-side work. Each broadcast is perturbed so
	// the delta chain never degenerates.
	updates := make([]*comm.Update, b.N)
	seeds := make([]uint64, b.N)
	for i := 0; i < b.N; i++ {
		enc, _, err := srv.Link(shard.ID)
		if err != nil {
			b.Fatal(err)
		}
		prev := srv.Prev(shard.ID)
		u := enc.Encode(wt, prev)
		view, err := enc.Decode(u, prev)
		if err != nil {
			b.Fatal(err)
		}
		srv.SetPrev(shard.ID, view)
		updates[i] = u
		seeds[i] = rng.SplitIndex(i).State()
		for j := range wt {
			wt[j] += 1e-3
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := dev.HandleDispatch(core.Dispatch{
			Device:       shard.ID,
			Epochs:       1,
			Mu:           1,
			LearningRate: 0.01,
			BatchSize:    10,
			BatchSeed:    seeds[i],
			Update:       updates[i],
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Update == nil || r.EpochsDone != 1 {
			b.Fatal("device dispatch produced no encoded update")
		}
	}
}
