// Package speed holds the repository's gated hot-path micro-benchmarks
// as plain functions over *testing.B, so two harnesses can share one
// body: the `go test -bench` suite (bench_test.go delegates here) and
// cmd/fedspeed, which runs them via testing.Benchmark to regenerate and
// gate the committed BENCH_speed.json (see internal/obs.BenchPoint).
//
// Only mechanism benchmarks belong here — code on the per-reply or
// per-dispatch hot path whose ns/op is meaningful in isolation. Whole
// experiment benchmarks stay in bench_test.go; their headline number is
// model quality, gated by BENCH_baseline.json instead.
package speed

import (
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
	"fedprox/internal/obs"
	"fedprox/internal/solver"
	"fedprox/internal/tensor"
)

// Benchmarks enumerates the gated benchmarks by the stable names used in
// BENCH_speed.json.
var Benchmarks = []struct {
	Name string
	Fn   func(*testing.B)
}{
	{"CoordinatorFold", CoordinatorFold},
	{"DeviceDispatch", DeviceDispatch},
	{"DeviceDispatchF32", DeviceDispatchF32},
	{"SolvePerExample", SolvePerExample},
	{"SolveBatched", SolveBatched},
}

// Ratios declares the cross-benchmark speedups this repository claims
// and cmd/fedspeed enforces on every gate run: the float32 dispatch
// path must stay ≥1.5x faster than the float64 one, and the batched
// gradient kernels ≥2x faster than the per-example walk. Unlike the
// ns/op baselines these are absolute — both sides speeding up equally
// does not excuse losing the ratio.
var Ratios = []obs.RatioGate{
	{Slow: "DeviceDispatch", Fast: "DeviceDispatchF32", Min: 1.5},
	{Slow: "SolvePerExample", Fast: "SolveBatched", Min: 2.0},
}

// CoordinatorFold measures the coordinator's staleness-damped fold
// (core.FoldStaleDeltas) — the arithmetic every asynchronous reply
// crosses on its way into the global model, shared by the fednet runtime
// and the virtual-time simulator. The workload is one FedBuff-style
// flush: K buffered deltas of a 10k-parameter model at mixed staleness.
func CoordinatorFold(b *testing.B) {
	const dim, k = 10_000, 10
	rng := frand.New(11)
	w := rng.NormVec(make([]float64, dim), 0, 1)
	batch := make([]core.StaleDelta, k)
	for i := range batch {
		batch[i] = core.StaleDelta{
			Delta:   rng.NormVec(make([]float64, dim), 0, 0.01),
			Weight:  float64(100 + 10*i),
			Version: i / 2, // mixed staleness against version k
		}
	}
	b.ReportAllocs()
	b.SetBytes(8 * dim * k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.FoldStaleDeltas(w, batch, k, core.UniformWeightedAvg, 1, 0.5) {
			b.Fatal("fold did not advance the model")
		}
	}
}

// dispatchEpochs is the local-epoch budget both dispatch benchmarks
// hand the device per contact.
const dispatchEpochs = 5

// dispatchBenchFed builds the dispatch benchmarks' dataset: a single
// MNIST-shaped device (784 features, 10 classes, 64 train examples), the
// workload the paper's E = 20 local-epoch experiments run. The synthetic
// generator's paper-scale 60-feature shards are too small for a dispatch
// to be anything but codec bookkeeping.
func dispatchBenchFed() *data.Federated {
	return synthetic.Generate(synthetic.Config{
		Alpha:      1,
		Beta:       1,
		Devices:    1,
		Dim:        784,
		Classes:    10,
		MinSamples: 80,
		MaxSamples: 80,
		PowerAlpha: 1.55,
		TrainFrac:  0.8,
		Seed:       42,
	})
}

// DeviceDispatch measures the device runtime's full dispatch hot path —
// downlink decode, local solve, uplink encode on a stateful chained
// codec — the per-contact work every executor (simulator, vtime driver,
// fednet worker) performs through the same core.Device. The
// coordinator's half (broadcast encode) runs outside the timer. Each
// dispatch runs dispatchEpochs local epochs so the solve-to-codec mix
// resembles a real contact (the paper's experiments run E = 20 local
// epochs; one would make the fixed per-contact codec cost dominate).
func DeviceDispatch(b *testing.B) {
	fed := dispatchBenchFed()
	mdl := linear.ForDataset(fed)
	shard := fed.Shards[0]
	spec := comm.Spec{Name: "delta+qsgd", Bits: 8, Seed: 11}.WithDefaults()

	dev := core.NewDevice(mdl, fed.Shards[:1], core.DeviceOptions{})
	if err := dev.InstallLinks(spec, spec); err != nil {
		b.Fatal(err)
	}
	srv, err := comm.NewLinkState(spec, spec)
	if err != nil {
		b.Fatal(err)
	}
	rng := frand.New(3)
	wt := mdl.InitParams(rng.Split("params"))

	// Pre-encode b.N broadcasts (the coordinator's job) so the timed
	// loop holds only device-side work. Each broadcast is perturbed so
	// the delta chain never degenerates.
	updates := make([]*comm.Update, b.N)
	seeds := make([]uint64, b.N)
	for i := 0; i < b.N; i++ {
		enc, _, err := srv.Link(shard.ID)
		if err != nil {
			b.Fatal(err)
		}
		prev := srv.Prev(shard.ID)
		u := enc.Encode(wt, prev)
		view, err := enc.Decode(u, prev)
		if err != nil {
			b.Fatal(err)
		}
		srv.SetPrev(shard.ID, view)
		updates[i] = u
		seeds[i] = rng.SplitIndex(i).State()
		for j := range wt {
			wt[j] += 1e-3
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := dev.HandleDispatch(core.Dispatch{
			Device:       shard.ID,
			Epochs:       dispatchEpochs,
			Mu:           1,
			LearningRate: 0.01,
			BatchSize:    32,
			BatchSeed:    seeds[i],
			Update:       updates[i],
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Update == nil || r.EpochsDone != dispatchEpochs {
			b.Fatal("device dispatch produced no encoded update")
		}
	}
}

// DeviceDispatchF32 is DeviceDispatch on the float32 fast path: the same
// workload, codec chain, and dispatch schedule, but the deployment's
// precision is f32 — the decode lands in a Vec32, the solve runs on the
// batched f32 kernels, and the uplink encodes straight from the f32
// solution. Its ratio against DeviceDispatch is the tentpole gate
// cmd/fedspeed enforces.
func DeviceDispatchF32(b *testing.B) {
	fed := dispatchBenchFed()
	mdl := linear.ForDataset(fed)
	shard := fed.Shards[0]
	spec := comm.Spec{Name: "delta+qsgd", Bits: 8, Seed: 11, Precision: tensor.F32}.WithDefaults()

	dev := core.NewDevice(mdl, fed.Shards[:1], core.DeviceOptions{Precision: tensor.F32})
	if err := dev.InstallLinks(spec, spec); err != nil {
		b.Fatal(err)
	}
	srv, err := comm.NewLinkState(spec, spec)
	if err != nil {
		b.Fatal(err)
	}
	rng := frand.New(3)
	wt := mdl.InitParams(rng.Split("params"))
	w32 := make([]float32, len(wt))

	// Pre-encode b.N broadcasts on the f32 chain (the coordinator's job)
	// so the timed loop holds only device-side work.
	updates := make([]*comm.Update, b.N)
	seeds := make([]uint64, b.N)
	for i := 0; i < b.N; i++ {
		enc, _, err := srv.Link(shard.ID)
		if err != nil {
			b.Fatal(err)
		}
		e32, err := comm.As32(enc)
		if err != nil {
			b.Fatal(err)
		}
		tensor.Narrow(w32, wt)
		prev := srv.Prev32(shard.ID)
		u := e32.Encode32(w32, prev)
		view, err := e32.Decode32(u, prev)
		if err != nil {
			b.Fatal(err)
		}
		srv.SetPrev32(shard.ID, view)
		updates[i] = u
		seeds[i] = rng.SplitIndex(i).State()
		for j := range wt {
			wt[j] += 1e-3
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := dev.HandleDispatch(core.Dispatch{
			Device:       shard.ID,
			Epochs:       dispatchEpochs,
			Mu:           1,
			LearningRate: 0.01,
			BatchSize:    32,
			BatchSeed:    seeds[i],
			Update:       updates[i],
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Update == nil || r.EpochsDone != dispatchEpochs {
			b.Fatal("device dispatch produced no encoded update")
		}
	}
}

// solveBenchWorkload builds the shared workload of the solve-kernel pair:
// an MNIST-shaped multinomial regression (784 features, 10 classes) over
// 256 synthetic examples — large enough that gradient arithmetic, not
// bookkeeping, dominates each step.
func solveBenchWorkload() (*linear.Model, []data.Example, []float64) {
	const dim, classes, n = 784, 10, 256
	mdl := linear.New(dim, classes)
	rng := frand.New(17)
	train := make([]data.Example, n)
	for i := range train {
		train[i] = data.Example{
			X: rng.NormVec(make([]float64, dim), 0, 1),
			Y: rng.Intn(classes),
		}
	}
	w0 := mdl.InitParams(rng.Split("params"))
	return mdl, train, w0
}

// SolvePerExample measures one local SGD epoch on the float64 path, whose
// gradient walks the minibatch one example at a time (a fresh GEMV per
// example). It is the denominator of the batched-kernel gate.
func SolvePerExample(b *testing.B) {
	mdl, train, w0 := solveBenchWorkload()
	cfg := solver.Config{LearningRate: 0.01, BatchSize: 32, Mu: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := solver.SGD(mdl, train, w0, cfg, 1, frand.New(uint64(i+1)))
		if len(w) != len(w0) {
			b.Fatal("solve returned wrong length")
		}
	}
}

// SolveBatched measures the same epoch on the float32 fast path, where
// the gradient gathers each minibatch into a row-major panel and the
// matrix kernels walk the whole batch per call. cmd/fedspeed gates its
// ratio against SolvePerExample.
func SolveBatched(b *testing.B) {
	mdl, train, w0 := solveBenchWorkload()
	cfg := solver.Config{LearningRate: 0.01, BatchSize: 32, Mu: 1}
	n0 := make([]float32, len(w0))
	tensor.Narrow(n0, w0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := solver.SGD32(mdl, train, n0, cfg, 1, frand.New(uint64(i+1)))
		if len(w) != len(w0) {
			b.Fatal("solve returned wrong length")
		}
		tensor.PutVec32(w)
	}
}
