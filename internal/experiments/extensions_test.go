package experiments

import (
	"strings"
	"testing"
)

func TestExtTheoryReportsConstants(t *testing.T) {
	res, err := Run("ext-theory", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 4 {
		t.Fatalf("sections = %d, want 4", len(res.Sections))
	}
	for _, sec := range res.Sections {
		if len(sec.Notes) != 1 || !strings.Contains(sec.Notes[0], "measured B=") {
			t.Fatalf("section %q missing measurement note: %v", sec.Name, sec.Notes)
		}
	}
}

func TestExtSyshetEmergentStragglers(t *testing.T) {
	res, err := Run("ext-syshet", micro())
	if err != nil {
		t.Fatal(err)
	}
	sec := res.Sections[0]
	if len(sec.Runs) != 3 {
		t.Fatalf("runs = %d, want FedAvg + FedProx(0) + FedProx(best)", len(sec.Runs))
	}
	found := false
	for _, n := range sec.Notes {
		if strings.Contains(n, "emergent straggler rate") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing straggler-rate note: %v", sec.Notes)
	}
}

func TestExtSolversAllConverge(t *testing.T) {
	o := micro()
	o.Rounds = 6
	res, err := Run("ext-solvers", o)
	if err != nil {
		t.Fatal(err)
	}
	runs := res.Sections[0].Runs
	if len(runs) != 5 {
		t.Fatalf("runs = %d, want 5 solvers", len(runs))
	}
	labels := map[string]bool{}
	for _, h := range runs {
		labels[h.Label] = true
		if h.Final().TrainLoss != h.Final().TrainLoss {
			t.Fatalf("%s produced NaN", h.Label)
		}
		if h.Final().TrainLoss >= h.Points[0].TrainLoss {
			t.Errorf("%s made no progress: %g -> %g", h.Label, h.Points[0].TrainLoss, h.Final().TrainLoss)
		}
	}
	if len(labels) != 5 {
		t.Fatalf("labels not distinct: %v", labels)
	}
}

func TestExtCommAccounting(t *testing.T) {
	res, err := Run("ext-comm", micro())
	if err != nil {
		t.Fatal(err)
	}
	sec := res.Sections[0]
	if len(sec.Runs) != 3 || len(sec.Notes) != 3 {
		t.Fatalf("want 3 runs with 3 notes, got %d/%d", len(sec.Runs), len(sec.Notes))
	}
	avg := sec.Runs[0].Final().Cost  // FedAvg
	prox := sec.Runs[1].Final().Cost // FedProx(mu=0)
	if avg.WastedEpochs == 0 {
		t.Fatal("FedAvg at 90% stragglers wasted no epochs")
	}
	if prox.WastedEpochs != 0 {
		t.Fatalf("FedProx wasted %d epochs; aggregation wastes none", prox.WastedEpochs)
	}
	if prox.UplinkBytes <= avg.UplinkBytes {
		t.Fatal("FedProx must upload more models than dropping FedAvg")
	}
	if avg.DownlinkBytes != prox.DownlinkBytes {
		t.Fatal("both methods broadcast to the same selected devices")
	}
}

func TestExtBiasShowsClassGap(t *testing.T) {
	o := micro()
	o.Rounds = 8
	res, err := Run("ext-bias", o)
	if err != nil {
		t.Fatal(err)
	}
	sec := res.Sections[0]
	if len(sec.Runs) != 2 || len(sec.Notes) != 2 {
		t.Fatalf("want 2 runs with notes, got %d/%d", len(sec.Runs), len(sec.Notes))
	}
	if !strings.Contains(sec.Notes[0], "straggler classes 0-1") {
		t.Fatalf("missing per-class note: %v", sec.Notes)
	}
}

func TestExtNonconvexStructure(t *testing.T) {
	o := micro()
	o.Rounds = 3
	res, err := Run("ext-nonconvex", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 2 {
		t.Fatalf("sections = %d, want 0%% and 90%%", len(res.Sections))
	}
	for _, sec := range res.Sections {
		if len(sec.Runs) != 3 {
			t.Fatalf("section %q runs = %d", sec.Name, len(sec.Runs))
		}
	}
}

func TestExtPrivacyNoiseLadder(t *testing.T) {
	o := micro()
	res, err := Run("ext-privacy", o)
	if err != nil {
		t.Fatal(err)
	}
	runs := res.Sections[0].Runs
	if len(runs) != 4 {
		t.Fatalf("runs = %d, want 4 noise levels", len(runs))
	}
	// The noiseless run and the smallest-noise run must differ (noise is
	// actually applied) but both must complete without NaN.
	for _, h := range runs {
		if h.Final().TrainLoss != h.Final().TrainLoss {
			t.Fatalf("%s produced NaN", h.Label)
		}
	}
	if runs[0].Final().TrainLoss == runs[3].Final().TrainLoss {
		t.Fatal("largest noise level had no effect")
	}
}

func TestExtGammaMonotone(t *testing.T) {
	o := micro()
	res, err := Run("ext-gamma", o)
	if err != nil {
		t.Fatal(err)
	}
	runs := res.Sections[0].Runs
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3 epoch budgets", len(runs))
	}
	// Gamma at E=20 must be below gamma at E=1: more work, more exact.
	g1 := runs[0].Final().MeanGamma
	g20 := runs[2].Final().MeanGamma
	if !(g20 < g1) {
		t.Fatalf("gamma not decreasing in work: E=1 %g, E=20 %g", g1, g20)
	}
}

func TestExtAsyncComparesDisciplines(t *testing.T) {
	o := micro()
	o.Rounds = 4
	res, err := Run("ext-async", o)
	if err != nil {
		t.Fatal(err)
	}
	sec := res.Sections[0]
	if len(sec.Runs) != 4 {
		t.Fatalf("runs = %d, want sync-drop/sync-partial/async/buffered", len(sec.Runs))
	}
	if len(sec.Seconds) != 4 {
		t.Fatalf("wall-clock missing: %v", sec.Seconds)
	}
	sawStale := false
	for _, h := range sec.Runs {
		if h.TracksStaleness() {
			sawStale = true
		}
	}
	if !sawStale {
		t.Fatal("no run recorded staleness")
	}
	entries := res.BenchEntries()
	if len(entries) != 4 {
		t.Fatalf("bench entries = %d, want 4", len(entries))
	}
	for _, e := range entries {
		if e.Seconds <= 0 {
			t.Fatalf("entry %s missing wall-clock: %+v", e.Method, e)
		}
	}
}
