// Package experiments maps every table and figure in the paper's
// evaluation (Section 5 and Appendices B-C) to a runnable experiment.
//
// Each experiment builds its workloads, runs every method in the paper's
// comparison under the shared-environment protocol (same seed ⇒ same
// device selection, stragglers, batch order, and initial model), and
// returns the same series the paper plots: per-round training loss, test
// accuracy, and — where the figure shows it — the gradient-variance
// dissimilarity.
//
// Use Registry to look experiments up by their paper artifact id
// ("figure1" … "figure12", "table1") and Run to execute one.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"fedprox/internal/core"
)

// Section is one panel of a figure: one dataset (and, for the straggler
// grids, one heterogeneity level) with all compared methods.
type Section struct {
	// Name identifies the panel, e.g. "Synthetic(1,1) 90% stragglers".
	Name string
	// Runs are the compared trajectories, in the paper's legend order.
	Runs []*core.History
	// Seconds, when non-nil, is the measured wall-clock of each run,
	// parallel to Runs (filled by the wall-clock experiments, e.g.
	// ext-async).
	Seconds []float64
	// Notes carries derived scalars (e.g. the Figure 7 improvement
	// accounting) rendered after the table.
	Notes []string
}

// Result is the output of one experiment.
type Result struct {
	// ID is the registry key, e.g. "figure1".
	ID string
	// Title restates which paper artifact this regenerates.
	Title string
	// Sections are the panels in paper order.
	Sections []Section
	// Notes carries experiment-level commentary.
	Notes []string
}

// Summary renders the result as aligned text: per section, one row per
// method with final loss, best accuracy, and divergence markers — the
// quantities needed to check the figure's qualitative shape.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, sec := range r.Sections {
		fmt.Fprintf(&b, "\n-- %s --\n", sec.Name)
		fmt.Fprintf(&b, "%-40s %11s %11s %9s %9s %10s %9s\n",
			"method", "first-loss", "final-loss", "best-acc", "final-acc", "grad-var", "diverged")
		for _, h := range sec.Runs {
			if len(h.Points) == 0 {
				continue
			}
			div := ""
			if h.Diverged(1.0, minInt(10, len(h.Points)-1)) {
				div = "yes"
			}
			gv := "-"
			if v := h.Final().GradVar; !math.IsNaN(v) {
				gv = fmt.Sprintf("%.4g", v)
			}
			fmt.Fprintf(&b, "%-40s %11.4f %11.4f %9.4f %9.4f %10s %9s\n",
				h.Label, h.Points[0].TrainLoss, h.Final().TrainLoss,
				h.BestAccuracy(), h.Final().TestAcc, gv, div)
		}
		for _, n := range sec.Notes {
			fmt.Fprintf(&b, "   note: %s\n", n)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// Series renders the full per-round series of every run, the data behind
// the plotted curves.
func (r *Result) Series() string {
	var b strings.Builder
	for _, sec := range r.Sections {
		for _, h := range sec.Runs {
			fmt.Fprintf(&b, "[%s] ", sec.Name)
			b.WriteString(h.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// WriteCSV streams every evaluated point of every run as CSV with the
// header experiment,section,method,round,train_loss,test_acc,grad_var,mu.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "experiment,section,method,round,train_loss,test_acc,grad_var,mu"); err != nil {
		return err
	}
	for _, sec := range r.Sections {
		for _, h := range sec.Runs {
			for _, p := range h.Points {
				gv := ""
				if !math.IsNaN(p.GradVar) {
					gv = fmt.Sprintf("%g", p.GradVar)
				}
				if _, err := fmt.Fprintf(w, "%s,%q,%q,%d,%g,%g,%s,%g\n",
					r.ID, sec.Name, h.Label, p.Round, p.TrainLoss, p.TestAcc, gv, p.Mu); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Experiment is a runnable paper artifact.
type Experiment struct {
	// ID is the registry key.
	ID string
	// Title restates the paper artifact.
	Title string
	// Run executes the experiment.
	Run func(Options) (*Result, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Options) (*Result, error)) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// Lookup returns the experiment registered under id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run looks up and executes the experiment registered under id.
func Run(id string, o Options) (*Result, error) {
	e, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return e.Run(o)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
