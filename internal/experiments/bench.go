package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// BenchEntry is one run's machine-readable summary, the unit of the CI
// bench-smoke gate: fedbench -json writes a list of these and -baseline
// compares a fresh list against a committed one, failing on final-loss
// regressions.
type BenchEntry struct {
	Experiment string  `json:"experiment"`
	Section    string  `json:"section"`
	Method     string  `json:"method"`
	Rounds     int     `json:"rounds"`
	FinalLoss  float64 `json:"final_loss"`
	FinalAcc   float64 `json:"final_acc"`
	// Seconds is the measured wall-clock of the run, when the experiment
	// recorded one (ext-async does). Informational: machine-speed
	// dependent, never gated on.
	Seconds float64 `json:"seconds,omitempty"`
	// VirtualSeconds is the run's virtual wall-clock when it executed on
	// the internal/vtime engine (ext-vtime does). Deterministic — the
	// same seed always yields the same value — but additive to the
	// schema: the loss gate ignores it, and baselines written before the
	// field parse unchanged.
	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`
	// ReplyLatencyP50/P90/P99 are quantiles of the per-reply virtual
	// latency distribution (History.ReplyLatencyQuantiles over the
	// Arrivals trace) for runs with a virtual clock — the
	// straggler-tail summary behind the deadline/byte-budget policy
	// comparisons. Deterministic per seed, never gated on, and omitted
	// (like VirtualSeconds) for runs without a clock.
	ReplyLatencyP50 float64 `json:"reply_latency_p50,omitempty"`
	ReplyLatencyP90 float64 `json:"reply_latency_p90,omitempty"`
	ReplyLatencyP99 float64 `json:"reply_latency_p99,omitempty"`
}

// BenchEntries flattens the result into gate-comparable entries. Runs
// whose final loss is not finite (diverged) are skipped — they cannot be
// compared and should be caught by the experiment's own notes.
func (r *Result) BenchEntries() []BenchEntry {
	var out []BenchEntry
	for _, sec := range r.Sections {
		for i, h := range sec.Runs {
			if len(h.Points) == 0 {
				continue
			}
			fin := h.Final()
			if math.IsNaN(fin.TrainLoss) || math.IsInf(fin.TrainLoss, 0) {
				continue
			}
			e := BenchEntry{
				Experiment: r.ID,
				Section:    sec.Name,
				Method:     h.Label,
				Rounds:     fin.Round,
				FinalLoss:  fin.TrainLoss,
				FinalAcc:   fin.TestAcc,
			}
			if i < len(sec.Seconds) {
				e.Seconds = sec.Seconds[i]
			}
			if h.TracksVirtualTime() {
				e.VirtualSeconds = fin.VirtualSeconds
			}
			if len(h.Arrivals) > 0 {
				q := h.ReplyLatencyQuantiles(0.5, 0.9, 0.99)
				e.ReplyLatencyP50, e.ReplyLatencyP90, e.ReplyLatencyP99 = q[0], q[1], q[2]
			}
			out = append(out, e)
		}
	}
	return out
}

// WriteBench serializes entries as indented JSON (the BENCH_*.json
// format).
func WriteBench(w io.Writer, entries []BenchEntry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// ReadBench parses a BENCH_*.json file.
func ReadBench(r io.Reader) ([]BenchEntry, error) {
	var entries []BenchEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("experiments: parse bench json: %w", err)
	}
	return entries, nil
}

// CompareBench checks current against baseline and returns one message
// per regression: a (experiment, section, method) present in the
// baseline whose final loss now exceeds baseline·(1+tol), or which went
// missing entirely. An empty result means the gate passes. Entries only
// in current (new experiments) are ignored — baselines ratchet forward
// by being regenerated, not by blocking additions.
func CompareBench(current, baseline []BenchEntry, tol float64) []string {
	key := func(e BenchEntry) string {
		return e.Experiment + " | " + e.Section + " | " + e.Method
	}
	cur := make(map[string]BenchEntry, len(current))
	for _, e := range current {
		cur[key(e)] = e
	}
	var regressions []string
	for _, b := range baseline {
		c, ok := cur[key(b)]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current results", key(b)))
			continue
		}
		budget := b.FinalLoss * (1 + tol)
		if c.FinalLoss > budget+1e-9 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: final loss %.4f exceeds baseline %.4f by %.1f%% (budget %.0f%%)",
				key(b), c.FinalLoss, b.FinalLoss, 100*(c.FinalLoss-b.FinalLoss)/b.FinalLoss, 100*tol))
		}
	}
	return regressions
}
