package experiments

import (
	"fmt"
	"math"
	"time"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
	"fedprox/internal/tier"
	"fedprox/internal/vtime"
)

func init() {
	register("ext-hier", "hierarchical aggregation: edge tiers fold device replies before the root, at equal device count and work", extHier)
}

// The ext-hier cohort: 64 devices per window, divisible by every swept
// fan-out (and by 32^1, the deepest width the sweep uses).
const hierClientsPerRound = 64

// hierFanOuts is the swept tree shape: flat (fan-out 1 disables the
// hierarchy) against one-tier trees of 8 and 32 devices per edge.
var hierFanOuts = [...]int{1, 8, 32}

// extHier measures what edge aggregation buys at fixed statistical
// work: every run contacts the same 64-device cohort per round over the
// same large fleet with the same seed, but a tiered run folds each
// edge's replies before they cross the backbone, so the root ingests
// K/F edge replies instead of K device replies. The sweep runs
// fan-outs {1 (flat), 8, 32} twice — raw wire and per-hop qsgd links —
// under virtual time: device legs on the access network (10x-slow 10%
// tail), aggregator legs on a faster backbone, so the virtual
// wall-clock shows what the extra hop costs while the root's ingress
// bytes show what the fold saves.
//
// The run itself asserts the payoff the bench gate rides on: at
// fan-out 32 the root ingress must shrink at least 4x versus flat with
// a final loss no more than 5% worse — a violated bound fails the
// experiment (and bench-smoke) outright.
func extHier(o Options) (*Result, error) {
	devices := int(100000 * o.Scale)
	if devices < 8*hierClientsPerRound {
		devices = 8 * hierClientsPerRound
	}
	// The scale recipe of internal/speed: a narrow model and small
	// shards keep the two full-fleet evaluations (round 0 and final)
	// proportionate, while the fleet stays lazy — shards exist only
	// while a dispatch or an evaluation reads them.
	sc := synthetic.Config{
		Alpha: 1, Beta: 1,
		Devices:    devices,
		Dim:        10,
		Classes:    5,
		MinSamples: 10,
		MaxSamples: 20,
		PowerAlpha: 1.55,
		TrainFrac:  0.8,
		Seed:       o.Seed + 11,
	}
	fl := synthetic.NewFleet(sc)
	mdl := linear.New(sc.Dim, sc.Classes)

	deviceLegs := vtime.MustModel(
		vtime.UniformCompute{SecondsPerEpoch: 0.05, Speed: vtime.SlowTail(devices, vtimeTailFrac, vtimeSlowFactor)},
		vtimeNet,
		o.Seed+101,
	)
	// The backbone the aggregator legs ride: better provisioned and
	// steadier than the device access network, as edge deployments are.
	backboneNet := vtime.Net{UplinkBps: 2e7, DownlinkBps: 2e7, Latency: 0.005, JitterStd: 0.05}
	if o.TierLatency > 0 {
		backboneNet.Latency = o.TierLatency
	}
	backbone := vtime.MustModel(vtime.UniformCompute{}, backboneNet, o.Seed+211)

	fans := hierFanOuts[:]
	if o.TierFanOut > 1 {
		fans = []int{1, o.TierFanOut}
	}
	gateFan := fans[len(fans)-1]

	base := core.FedProx(o.Rounds, hierClientsPerRound, o.LocalEpochs, 0.01, 1)
	base.EvalEvery = o.Rounds // full-fleet measurement at round 0 and the end
	base.Seed = o.Seed
	base.Parallelism = o.Parallelism
	base.Trace = o.Trace
	base.VTime = core.VTimeConfig{Model: deviceLegs}

	res := &Result{
		ID: "ext-hier",
		Title: fmt.Sprintf("hierarchical aggregation over %d devices (%d-device windows, fan-outs %v)",
			devices, hierClientsPerRound, fans),
	}
	type outcome struct {
		ingress int64
		loss    float64
		vs      float64
	}
	for _, codec := range []struct {
		name string
		spec comm.Spec
	}{
		{"raw wire", comm.Spec{}},
		{"qsgd links", comm.Spec{Name: "qsgd", Bits: 8}},
	} {
		sec := Section{Name: fmt.Sprintf("synthetic(1,1) x %d + %s", devices, codec.name)}
		byFan := map[int]outcome{}
		for _, fan := range fans {
			cfg := base
			cfg.Codec = codec.spec
			topo := tier.Topology{FanOut: fan, Depth: 1, Model: backbone}
			start := time.Now()
			h, err := core.RunTiered(mdl, fl, cfg, topo)
			if err != nil {
				return nil, fmt.Errorf("ext-hier f=%d %s: %w", fan, codec.name, err)
			}
			secs := time.Since(start).Seconds()
			name := "flat"
			if fan > 1 {
				name = fmt.Sprintf("f=%d", fan)
			}
			h.Label = name + " " + h.Label
			sec.Runs = append(sec.Runs, h)
			sec.Seconds = append(sec.Seconds, secs)
			fin := h.Final()
			byFan[fan] = outcome{ingress: fin.Cost.UplinkBytes, loss: fin.TrainLoss, vs: fin.VirtualSeconds}
			sec.Notes = append(sec.Notes, fmt.Sprintf(
				"%s: root ingress %.2f MB, %.1f virtual-s, final loss %.4f",
				name, float64(fin.Cost.UplinkBytes)/1e6, fin.VirtualSeconds, fin.TrainLoss))
		}
		// The acceptance gate, enforced where the numbers are made: the
		// fold shrinks root ingress by ~F analytically, so demand at
		// least min(4, 0.9*F) — which for the default sweep's fan-out 32
		// is the hard >= 4x bound the bench suite gates on.
		flat, deep := byFan[1], byFan[gateFan]
		ratio := float64(flat.ingress) / float64(deep.ingress)
		want := math.Min(4, 0.9*float64(gateFan))
		if ratio < want {
			return nil, fmt.Errorf("ext-hier %s: fan-out %d shrank root ingress only %.2fx vs flat (want >= %.1fx)",
				codec.name, gateFan, ratio, want)
		}
		if deep.loss > 1.05*flat.loss {
			return nil, fmt.Errorf("ext-hier %s: fan-out %d final loss %.4f is worse than 105%% of flat's %.4f",
				codec.name, gateFan, deep.loss, flat.loss)
		}
		sec.Notes = append(sec.Notes, fmt.Sprintf(
			"fan-out %d vs flat: %.0fx less root ingress, %+.1f%% virtual time, loss %.4f vs %.4f",
			gateFan, ratio, 100*(deep.vs/flat.vs-1), deep.loss, flat.loss))
		res.Sections = append(res.Sections, sec)
	}
	res.Notes = append(res.Notes,
		"deterministic: the same seed reproduces every number above bit for bit;",
		"expected shape: root ingress shrinks ~F-fold at equal device count and",
		"cohort (the fold happens at the edge), codecs compose per hop, and the",
		"extra backbone hop costs little virtual time on a fast backbone")
	return res, nil
}
