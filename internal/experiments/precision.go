package experiments

import (
	"fmt"
	"math"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/tensor"
)

func init() {
	register("ext-precision", "float32 fast path: same-seed f64 vs f32 runs, loss parity gated at 2%, raw wire traffic halved", extPrecision)
}

// precisionLossTol is the in-experiment acceptance bound: a float32 run
// must land within this relative distance of the same-seed float64
// run's final loss, in every pairing. The f32 path exists to make
// devices faster and updates smaller — not to change what is learned.
const precisionLossTol = 0.02

// extPrecision exercises the float32 end-to-end fast path against the
// full-width reference, on Synthetic(1,1) with FedProx's tuned μ. Each
// f64/f32 pair shares seed, schedule, and hyperparameters, so the only
// difference is the arithmetic width of the device hot loop (batched
// f32 kernels, f32 prox and γ-probe) and — when a codec is on — the
// wire encoding (raw ships 4-byte coordinates; qsgd quantizes straight
// from f32 with no widening copy).
//
// Three pairings:
//
//   - bare: no codec, in-process views — isolates the solver arithmetic,
//   - raw wire: uncompressed transfers — the f32 run must ship ~half
//     the uplink bytes at equal round count,
//   - qsgd8 wire: quantized transfers — shows the f32 path composes
//     with the compression stack (the level stream is width-exact, so
//     the payload does not change; the solve feeding it does).
//
// The experiment fails (rather than noting) when a f32 final loss
// drifts more than precisionLossTol from its f64 partner, or when the
// raw-wire f32 run fails to cut uplink traffic by at least 1.9x —
// these are the acceptance bounds the fast path was built against.
func extPrecision(o Options) (*Result, error) {
	w := o.syntheticWorkload(1, 1, false)
	base := o.base(w)
	f32 := func(cfg core.Config) core.Config {
		cfg.Precision = tensor.F32
		return cfg
	}
	coded := func(cfg core.Config, spec comm.Spec) core.Config {
		cfg.Codec = spec
		return cfg
	}

	pairs := []struct {
		name string
		spec comm.Spec // zero Name = no codec
	}{
		{"bare", comm.Spec{}},
		{"raw wire", comm.Spec{Name: "raw"}},
		{"qsgd8 wire", comm.Spec{Name: "delta+qsgd", Bits: 8}},
	}

	res := &Result{
		ID:    "ext-precision",
		Title: "float32 end-to-end fast path vs the float64 reference (same seed, same schedule)",
	}
	sec := Section{Name: w.fed.Name + " f64 vs f32"}
	var rawUp64, rawUp32 int64
	for _, p := range pairs {
		cfg64 := fedprox(base, w.bestMu)
		if p.spec.Name != "" {
			cfg64 = coded(cfg64, p.spec)
		}
		cfg32 := f32(cfg64)

		h64, err := core.Run(w.mdl, w.fed, cfg64)
		if err != nil {
			return nil, fmt.Errorf("ext-precision %s f64: %w", p.name, err)
		}
		h32, err := core.Run(w.mdl, w.fed, cfg32)
		if err != nil {
			return nil, fmt.Errorf("ext-precision %s f32: %w", p.name, err)
		}
		h64.Label = p.name + " f64 " + h64.Label
		h32.Label = p.name + " f32 " + h32.Label
		sec.Runs = append(sec.Runs, h64, h32)

		l64, l32 := h64.Final().TrainLoss, h32.Final().TrainLoss
		drift := math.Abs(l32-l64) / l64
		if drift > precisionLossTol {
			return nil, fmt.Errorf(
				"ext-precision %s: f32 final loss %.4f drifted %.2f%% from f64's %.4f (bound %.0f%%)",
				p.name, l32, 100*drift, l64, 100*precisionLossTol)
		}
		note := fmt.Sprintf("%s: f64 loss %.4f, f32 loss %.4f (drift %.2f%%)", p.name, l64, l32, 100*drift)
		if c := h32.Final().Cost; c.UplinkBytes > 0 {
			note += fmt.Sprintf(", uplink %d KiB f64 / %d KiB f32",
				h64.Final().Cost.UplinkBytes/1024, c.UplinkBytes/1024)
		}
		sec.Notes = append(sec.Notes, note)
		if p.spec.Name == "raw" {
			rawUp64 = h64.Final().Cost.UplinkBytes
			rawUp32 = h32.Final().Cost.UplinkBytes
		}
	}
	if rawUp32 <= 0 {
		return nil, fmt.Errorf("ext-precision: raw-wire f32 run recorded no uplink bytes")
	}
	if shrink := float64(rawUp64) / float64(rawUp32); shrink < 1.9 {
		return nil, fmt.Errorf(
			"ext-precision: raw f32 wire only %.2fx smaller than f64 (want >= 1.9x: 4-byte coordinates)", shrink)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("raw uncompressed wire: %.2fx less uplink traffic at f32 (4-byte coordinates)",
			float64(rawUp64)/float64(rawUp32)),
		"deterministic: the same seed reproduces every number above bit for bit;",
		"expected shape: every f32 run tracks its f64 partner within the 2% bound —",
		"the device hot loop (batched kernels, prox term, gamma probe) runs at half",
		"width, results widen exactly once at the reply boundary, and evaluation",
		"always runs at full width so the losses compare like for like")
	res.Sections = append(res.Sections, sec)
	return res, nil
}
