package experiments

import (
	"fmt"

	"fedprox/internal/comm"
	"fedprox/internal/core"
)

func init() {
	register("ext-codecs", "accuracy vs bytes: model-update codecs on Synthetic(1,1)", extCodecs)
}

// extCodecs sweeps the internal/comm codecs over the paper's main
// synthetic workload and reports the accuracy-vs-bytes frontier: the
// systems question FedProx's setting poses (communication as the
// dominant cost) that the paper's figures leave implicit. All runs share
// the environment seed, so differences are attributable to the codec
// alone.
func extCodecs(o Options) (*Result, error) {
	w := o.syntheticWorkload(1, 1, false)
	base := o.base(w)
	base.StragglerFraction = 0.5

	sweep := []struct {
		codec comm.Spec
		down  comm.Spec
	}{
		{codec: comm.Spec{Name: "raw"}},
		{codec: comm.Spec{Name: "delta"}},
		{codec: comm.Spec{Name: "qsgd", Bits: 8}},
		{codec: comm.Spec{Name: "qsgd", Bits: 4}},
		{codec: comm.Spec{Name: "delta+qsgd", Bits: 8}},
		// topk rides over a dense broadcast: sparsifying the chained
		// downlink starves devices of coordinate updates.
		{codec: comm.Spec{Name: "topk", TopK: 0.1}, down: comm.Spec{Name: "raw"}},
	}

	res := &Result{
		ID:    "ext-codecs",
		Title: "update codecs: uplink/downlink bytes vs convergence at 50% stragglers",
	}
	sec := Section{Name: w.fed.Name + " 50% stragglers"}
	var rawUp int64
	for _, sw := range sweep {
		cfg := fedprox(base, w.bestMu)
		cfg.Codec = sw.codec
		cfg.DownlinkCodec = sw.down
		h, err := core.Run(w.mdl, w.fed, cfg)
		if err != nil {
			return nil, err
		}
		sec.Runs = append(sec.Runs, h)
		c := h.Final().Cost
		if sw.codec.Name == "raw" {
			rawUp = c.UplinkBytes
		}
		ratio := "1.0x"
		if rawUp > 0 && c.UplinkBytes > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(rawUp)/float64(c.UplinkBytes))
		}
		sec.Notes = append(sec.Notes, fmt.Sprintf(
			"%-28s up=%6.1fKB (%s less) down=%6.1fKB final-loss=%.4f best-acc=%.4f",
			h.Label, float64(c.UplinkBytes)/1024, ratio, float64(c.DownlinkBytes)/1024,
			h.Final().TrainLoss, h.BestAccuracy()))
	}
	res.Sections = append(res.Sections, sec)
	res.Notes = append(res.Notes,
		"expected shape: qsgd-8 and uplink topk-10% sit within a few percent of the",
		"uncompressed loss at 4-13x fewer uplink bytes; qsgd-4 trades more accuracy")
	return res, nil
}
