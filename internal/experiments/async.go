package experiments

import (
	"fmt"
	"time"

	"fedprox/internal/core"
	"fedprox/internal/fednet"
	"fedprox/internal/solver"
)

func init() {
	register("ext-async", "async/buffered aggregation under a 10x wall-clock straggler (fednet deployment)", extAsync)
}

// extAsync reproduces the paper's straggler scenario on the real
// distributed runtime with wall-clock heterogeneity instead of simulated
// epoch budgets alone: four in-process fednet deployments share one
// synthetic workload and one fleet shape — three fast workers plus one
// worker whose devices are 10x slower — and differ only in aggregation
// discipline:
//
//   - sync-drop: lock-step rounds, stragglers dropped (FedAvg)
//   - sync-partial: lock-step rounds, partial work aggregated (FedProx)
//   - async: staleness-damped fold per reply (core.AsyncTotal)
//   - buffered: FedBuff-style flush every K replies (core.Buffered)
//
// Both synchronous modes pay the slow worker's latency every round it is
// selected in; the asynchronous modes keep folding fast replies while
// the slow devices finish in their own time. Wall-clock, final loss, and
// staleness land in the section notes and in BenchEntries for the CI
// bench-smoke gate.
func extAsync(o Options) (*Result, error) {
	w := o.syntheticWorkload(1, 1, false)
	base := o.base(w)
	// The paper's systems-heterogeneity knob (partial epoch budgets)
	// stays on so sync-drop vs sync-partial reproduces Section 5.2's
	// comparison inside the same sweep.
	base.StragglerFraction = 0.5

	const workers = 4
	const slowFactor = 10
	baseDelay := 2 * time.Millisecond
	solvers := make([]solver.LocalSolver, workers)
	for i := range solvers {
		d := baseDelay
		if i == 0 {
			d = slowFactor * baseDelay
		}
		solvers[i] = solver.Delayed{Inner: solver.SGDSolver{}, Delay: d}
	}

	async := core.AsyncConfig{
		Mode:              core.AsyncTotal,
		Alpha:             o.AsyncAlpha,
		StalenessExponent: o.AsyncStalenessExp,
	}
	buffered := async
	buffered.Mode = core.Buffered
	buffered.BufferK = o.AsyncBufferK

	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"sync-drop", fedavg(base)},
		{"sync-partial", fedprox(base, w.bestMu)},
		{"async", withAsync(fedprox(base, w.bestMu), async)},
		{"buffered", withAsync(fedprox(base, w.bestMu), buffered)},
	}

	res := &Result{
		ID: "ext-async",
		Title: fmt.Sprintf("aggregation disciplines under a %dx straggler worker (%d workers, fednet over loopback)",
			slowFactor, workers),
	}
	sec := Section{Name: w.fed.Name + " + 10x straggler worker"}
	var syncSecs, asyncSecs float64
	for _, tc := range cases {
		start := time.Now()
		h, err := fednet.RunLoopback(w.mdl, w.fed, fednet.ServerConfig{
			Training:      tc.cfg,
			ExpectDevices: w.fed.NumDevices(),
		}, solvers)
		secs := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("ext-async %s: %w", tc.name, err)
		}
		h.Label = tc.name + " " + h.Label
		sec.Runs = append(sec.Runs, h)
		sec.Seconds = append(sec.Seconds, secs)
		fin := h.Final()
		note := fmt.Sprintf("%s: %.2fs wall, final loss %.4f", tc.name, secs, fin.TrainLoss)
		if h.TracksStaleness() {
			note += fmt.Sprintf(", staleness mean %.2f max %.0f", fin.MeanStaleness, fin.MaxStaleness)
		}
		sec.Notes = append(sec.Notes, note)
		switch tc.name {
		case "sync-partial":
			syncSecs = secs
		case "async":
			asyncSecs = secs
		}
	}
	if asyncSecs > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"async completed the same device work %.1fx faster than sync-partial", syncSecs/asyncSecs))
	}
	res.Notes = append(res.Notes,
		"expected shape: both async modes finish well under the sync wall-clock;",
		"async ends at or below sync-partial's loss, buffered trades a little",
		"loss for bounded staleness")
	res.Sections = append(res.Sections, sec)
	return res, nil
}

func withAsync(cfg core.Config, a core.AsyncConfig) core.Config {
	cfg.Async = a
	return cfg
}
