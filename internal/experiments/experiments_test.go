package experiments

import (
	"strings"
	"testing"

	"fedprox/internal/core"
)

// micro returns options small enough that any single experiment runs in
// well under a second.
func micro() Options {
	o := Fast()
	o.Scale = 0.08
	o.Rounds = 4
	o.SeqRounds = 2
	o.EvalEvery = 2
	o.LocalEpochs = 3
	o.Hidden = 4
	o.Embed = 3
	o.MaxSeqLen = 5
	o.Datasets = []string{"synthetic"}
	return o
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ext-async", "ext-bias", "ext-codecs", "ext-comm", "ext-gamma", "ext-hier", "ext-nonconvex", "ext-partialwork", "ext-precision", "ext-privacy", "ext-solvers", "ext-syshet", "ext-theory", "ext-vtime",
		"figure1", "figure10", "figure11", "figure12", "figure2", "figure3",
		"figure4", "figure5", "figure6", "figure7", "figure8", "figure9", "table1",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, id := range got {
		e, ok := Lookup(id)
		if !ok || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incompletely registered", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("figure99", micro()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestWantDataset(t *testing.T) {
	o := Options{}
	if !o.wantDataset("anything") {
		t.Fatal("nil filter must allow everything")
	}
	o.Datasets = []string{"mnist"}
	if o.wantDataset("synthetic") || !o.wantDataset("mnist") {
		t.Fatal("filter not applied")
	}
}

func TestFigure2Shapes(t *testing.T) {
	res, err := Run("figure2", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 4 {
		t.Fatalf("sections = %d, want 4 synthetic datasets", len(res.Sections))
	}
	names := []string{"Synthetic-IID", "Synthetic(0,0)", "Synthetic(0.5,0.5)", "Synthetic(1,1)"}
	for i, sec := range res.Sections {
		if sec.Name != names[i] {
			t.Fatalf("section %d = %q, want %q", i, sec.Name, names[i])
		}
		if len(sec.Runs) != 2 {
			t.Fatalf("section %q has %d runs, want 2", sec.Name, len(sec.Runs))
		}
		for _, h := range sec.Runs {
			for _, p := range h.Points {
				if !(p.GradVar >= 0) {
					t.Fatalf("figure2 must track dissimilarity; got GradVar=%g", p.GradVar)
				}
			}
		}
	}
}

func TestFigure1GridStructure(t *testing.T) {
	res, err := Run("figure1", micro())
	if err != nil {
		t.Fatal(err)
	}
	// synthetic only -> 3 straggler levels.
	if len(res.Sections) != 3 {
		t.Fatalf("sections = %d, want 3", len(res.Sections))
	}
	for _, sec := range res.Sections {
		if len(sec.Runs) != 3 {
			t.Fatalf("section %q has %d runs, want FedAvg + 2 FedProx", sec.Name, len(sec.Runs))
		}
		if sec.Runs[0].Label != "FedAvg" {
			t.Fatalf("first run = %q, want FedAvg", sec.Runs[0].Label)
		}
	}
	// 0%-straggler FedAvg and FedProx(mu=0) must coincide exactly.
	zero := res.Sections[0]
	for i := range zero.Runs[0].Points {
		if zero.Runs[0].Points[i].TrainLoss != zero.Runs[1].Points[i].TrainLoss {
			t.Fatal("FedAvg != FedProx(mu=0) without stragglers")
		}
	}
}

func TestFigure3AdaptiveSections(t *testing.T) {
	res, err := Run("figure3", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(res.Sections))
	}
	for _, sec := range res.Sections {
		foundAdaptive := false
		for _, h := range sec.Runs {
			if strings.Contains(h.Label, "adaptive") {
				foundAdaptive = true
			}
		}
		if !foundAdaptive {
			t.Fatalf("section %q lacks an adaptive run", sec.Name)
		}
	}
}

func TestFigure4IncludesFedDane(t *testing.T) {
	o := micro()
	res, err := Run("figure4", o)
	if err != nil {
		t.Fatal(err)
	}
	// 4 datasets x (mu sweep + c sweep).
	if len(res.Sections) != 8 {
		t.Fatalf("sections = %d, want 8", len(res.Sections))
	}
	dane := 0
	for _, sec := range res.Sections {
		for _, h := range sec.Runs {
			if strings.HasPrefix(h.Label, "FedDane") {
				dane++
			}
		}
	}
	if dane != 4*2+4*3 {
		t.Fatalf("FedDane runs = %d, want 20", dane)
	}
}

func TestFigure5Grid(t *testing.T) {
	res, err := Run("figure5", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 4 {
		t.Fatalf("sections = %d, want 4 straggler levels", len(res.Sections))
	}
}

func TestFigure7ComputesImprovement(t *testing.T) {
	res, err := Run("figure7", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) == 0 {
		t.Fatal("figure7 missing the improvement note")
	}
	if !strings.Contains(res.Notes[len(res.Notes)-1], "improvement") {
		t.Fatalf("unexpected note: %q", res.Notes[len(res.Notes)-1])
	}
	found := false
	for _, sec := range res.Sections {
		if is90(sec.Name) && len(sec.Notes) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no per-section settled-accuracy notes at 90% stragglers")
	}
}

func TestFigure9UsesOneEpoch(t *testing.T) {
	res, err := Run("figure9", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 3 {
		t.Fatalf("sections = %d, want 3", len(res.Sections))
	}
	for _, sec := range res.Sections {
		if len(sec.Runs) != 2 {
			t.Fatalf("figure9 compares 2 methods, got %d", len(sec.Runs))
		}
	}
}

func TestFigure11And12Structure(t *testing.T) {
	res11, err := Run("figure11", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res11.Sections) != 4 {
		t.Fatalf("figure11 sections = %d, want 4", len(res11.Sections))
	}
	res12, err := Run("figure12", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res12.Sections) != 4 {
		t.Fatalf("figure12 sections = %d, want 4", len(res12.Sections))
	}
	for _, sec := range res12.Sections {
		if len(sec.Runs) != 4 {
			t.Fatalf("figure12 section %q runs = %d, want 4 (2 schemes x 2 mu)", sec.Name, len(sec.Runs))
		}
	}
}

func TestTable1RunsAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	res, err := Run("table1", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 1 || len(res.Sections[0].Notes) != 4 {
		t.Fatalf("table1 must report 4 dataset rows, got %+v", res.Sections)
	}
	for _, row := range res.Sections[0].Notes {
		if !strings.Contains(row, "devices=") {
			t.Fatalf("malformed row: %q", row)
		}
	}
}

func TestSummaryAndSeriesRender(t *testing.T) {
	res, err := Run("figure5", micro())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if !strings.Contains(sum, "figure5") || !strings.Contains(sum, "FedAvg") {
		t.Fatalf("summary incomplete:\n%s", sum)
	}
	series := res.Series()
	if !strings.Contains(series, "round") {
		t.Fatal("series output missing header")
	}
}

func TestWriteCSV(t *testing.T) {
	res, err := Run("figure5", micro())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "experiment,section,method,round,train_loss,test_acc,grad_var,mu" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("csv has only %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "figure5,") {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestLSTMWorkloadsRun(t *testing.T) {
	o := micro()
	o.Datasets = []string{"sent140"}
	res, err := Run("figure9", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 3 {
		t.Fatalf("sections = %d", len(res.Sections))
	}
	for _, sec := range res.Sections {
		for _, h := range sec.Runs {
			if h.Final().TrainLoss != h.Final().TrainLoss {
				t.Fatal("LSTM workload produced NaN loss")
			}
		}
	}
}

func TestNamedWorkload(t *testing.T) {
	o := micro()
	for _, key := range []string{"synthetic", "synthetic-iid", "mnist", "femnist", "shakespeare", "sent140"} {
		w, err := o.NamedWorkload(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if w.Fed == nil || w.Model == nil || w.LR <= 0 || w.Rounds <= 0 {
			t.Fatalf("%s: incomplete workload %+v", key, w)
		}
	}
	if _, err := o.NamedWorkload("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBaseConfigUsesWorkloadHyperparams(t *testing.T) {
	o := micro()
	w := o.syntheticWorkload(1, 1, false)
	c := o.base(w)
	if c.LearningRate != 0.01 {
		t.Fatalf("synthetic lr = %g, want paper 0.01", c.LearningRate)
	}
	if c.Rounds != o.Rounds || c.ClientsPerRound != o.ClientsPerRound {
		t.Fatal("base config ignored options")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = core.Label(c)
}
