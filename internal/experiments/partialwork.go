package experiments

import (
	"fmt"

	"fedprox/internal/core"
	"fedprox/internal/syshet"
	"fedprox/internal/vtime"
)

func init() {
	register("ext-partialwork", "device-side compute budgets: variable local work enforced by the device runtime", extPartialWork)
}

// extPartialWork exercises the variable-local-work axis: a tiered
// syshet.Fleet acts as each device's compute budget
// (core.Config.DeviceBudget), so every dispatch is truncated by the
// DEVICE to however many epochs its hardware affords, and the server
// only learns the realized work from the reply (Reply.EpochsDone).
//
// This is the paper's partial-solution story with the enforcement on the
// correct side of the wire: unlike Config.Capability — where the server
// re-plans epoch targets and FedAvg can pre-drop the short devices — a
// device-side budget cannot be dropped in advance, so the server's only
// choice is the FedProx one: aggregate the γ-inexact partial solutions.
// Because the truncation lives in the shared core.Device runtime, all
// three executors (sync simulator, virtual-time async, fednet) inherit
// it from the same code path.
//
// The sweep compares, on Synthetic(1,1):
//
//   - full-work: FedProx with every device completing E epochs,
//   - budget mu=0: partial solutions aggregated without the proximal
//     term (FedAvg's aggregation faced with work it cannot drop),
//   - budget prox: FedProx over the same partial solutions,
//
// and then reruns the full-vs-budget pair on the virtual clock with the
// SAME fleet as the compute model, so a device that stops at its budget
// also returns early: the budget run finishes in less virtual time
// because the compute leg charges the epochs actually run.
func extPartialWork(o Options) (*Result, error) {
	w := o.syntheticWorkload(1, 1, false)
	mean := 0
	for _, n := range w.fed.TrainSizes() {
		mean += n
	}
	mean /= w.fed.NumDevices()
	// Deadline calibrated so a mid-tier device completes about half of E
	// epochs on the mean shard: a strongly work-limited fleet.
	fleet := syshet.NewFleet(syshet.Config{
		Deadline:  syshet.DeadlineFor(o.LocalEpochs/2+1, mean, 10, 10),
		JitterStd: 0.3,
		BatchSize: 10,
		Seed:      o.Seed + 5,
	}, w.fed.TrainSizes())

	base := o.base(w)
	budget := func(cfg core.Config) core.Config {
		cfg.DeviceBudget = fleet
		return cfg
	}
	net := vtime.Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.02, JitterStd: 0.1}
	vtimed := func(cfg core.Config) core.Config {
		// The same fleet that bounds each device's work also prices it:
		// syshet.Fleet is both a core.CapabilityModel and a
		// vtime.ComputeModel.
		cfg.VTime = core.VTimeConfig{Model: vtime.MustModel(fleet, net, o.Seed+103)}
		return cfg
	}

	// The fold-weight ablation: weight each accepted update by realized
	// epochs (Reply.EpochsDone) instead of shard size, so a device that
	// ran half its budget counts half as much in the fold. Only
	// interesting under a budget — with full work the two schemes agree
	// up to a constant.
	byEpochs := func(cfg core.Config) core.Config {
		cfg.FoldWeight = core.WeightByEpochs
		return cfg
	}

	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"full-work", fedprox(base, w.bestMu)},
		{"budget mu=0", budget(fedprox(base, 0))},
		{"budget prox", budget(fedprox(base, w.bestMu))},
		{"budget mu=0", byEpochs(budget(fedprox(base, 0)))},
		{"budget prox", byEpochs(budget(fedprox(base, w.bestMu)))},
		{"vtime-full", vtimed(fedprox(base, w.bestMu))},
		{"vtime-budget", vtimed(budget(fedprox(base, w.bestMu)))},
	}

	res := &Result{
		ID:    "ext-partialwork",
		Title: "variable local work under a device-side compute budget (enforced in core.Device)",
	}
	sec := Section{Name: w.fed.Name + " + tiered compute budgets"}
	var fullVT, budgetVT float64
	for _, tc := range cases {
		h, err := core.Run(w.mdl, w.fed, tc.cfg)
		if err != nil {
			return nil, fmt.Errorf("ext-partialwork %s: %w", tc.name, err)
		}
		h.Label = tc.name + " " + h.Label
		sec.Runs = append(sec.Runs, h)
		fin := h.Final()
		note := fmt.Sprintf("%s: final loss %.4f, device-epochs %d", tc.name, fin.TrainLoss, fin.Cost.DeviceEpochs)
		if h.TracksWork() {
			note += fmt.Sprintf(", mean epochs done %.2f/%d (%.0f%% partial)",
				fin.MeanEpochsDone, o.LocalEpochs, 100*fin.PartialFraction)
		}
		if h.TracksVirtualTime() {
			note += fmt.Sprintf(", %.1f virtual-s", fin.VirtualSeconds)
		}
		sec.Notes = append(sec.Notes, note)
		switch tc.name {
		case "vtime-full":
			fullVT = fin.VirtualSeconds
		case "vtime-budget":
			budgetVT = fin.VirtualSeconds
		}
	}
	if budgetVT > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"the budget run finished %.1fx faster in virtual time: devices that stop at their budget also return early", fullVT/budgetVT))
	}
	res.Notes = append(res.Notes,
		"deterministic: the same seed reproduces every number above bit for bit;",
		"expected shape: budget runs spend far fewer device epochs at a modest loss",
		"penalty, and the proximal term recovers part of the gap (Theorem 4's",
		"gamma-inexact regime); the [w=epochs] ablation re-weights the fold by",
		"realized epochs instead of n_k and lands far behind — the paper's",
		"full-n_k fold with prox absorbing inexactness is the better estimator")
	res.Sections = append(res.Sections, sec)
	return res, nil
}
