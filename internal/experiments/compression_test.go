package experiments

import (
	"strings"
	"testing"
)

func TestExtCodecsSweep(t *testing.T) {
	res, err := Run("ext-codecs", micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 1 {
		t.Fatalf("got %d sections, want 1", len(res.Sections))
	}
	sec := res.Sections[0]
	if len(sec.Runs) != 6 {
		t.Fatalf("got %d runs, want 6 codecs", len(sec.Runs))
	}
	if len(sec.Notes) != len(sec.Runs) {
		t.Fatalf("every run needs a bytes note: %d notes, %d runs", len(sec.Notes), len(sec.Runs))
	}
	// The raw run anchors the sweep; every labelled run carries its codec.
	if !strings.Contains(sec.Runs[0].Label, "@raw") {
		t.Fatalf("first run should be the raw baseline, got %q", sec.Runs[0].Label)
	}
	rawUp := sec.Runs[0].Final().Cost.UplinkBytes
	if rawUp == 0 {
		t.Fatal("raw baseline recorded no uplink bytes")
	}
	for _, h := range sec.Runs[2:] { // quantized/sparse runs
		if up := h.Final().Cost.UplinkBytes; up >= rawUp {
			t.Fatalf("%s: uplink %d not below raw %d", h.Label, up, rawUp)
		}
	}
}

func TestOptionsCodecAppliesToFigures(t *testing.T) {
	o := micro()
	o.Codec = "qsgd"
	o.CodecBits = 4
	res, err := Run("figure1", o)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Sections[0].Runs[0]
	if !strings.Contains(h.Label, "@qsgd(b=4)") {
		t.Fatalf("options codec not applied: label %q", h.Label)
	}
	if h.Final().Cost.UplinkBytes == 0 {
		t.Fatal("codec-enabled run recorded no uplink bytes")
	}
}

func TestOptionsCodecSkipsBiasExperiment(t *testing.T) {
	// ext-bias uses a capture checkpointer, which cannot combine with
	// codec link state; a global -codec must not abort it.
	o := micro()
	o.Codec = "qsgd"
	res, err := Run("ext-bias", o)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.Sections[0].Notes {
		if strings.Contains(n, "codec ignored") {
			found = true
		}
	}
	if !found {
		t.Fatal("ext-bias should note that the codec was ignored")
	}
}
