package experiments

import (
	"fmt"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/data/femnistsim"
	"fedprox/internal/data/mnistsim"
	"fedprox/internal/data/sent140sim"
	"fedprox/internal/data/shakespearesim"
	"fedprox/internal/feddane"
	"fedprox/internal/tensor"
)

func init() {
	register("table1", "Table 1: statistics of the four real federated datasets (surrogates)", table1)
	register("figure1", "Figure 1: training loss under 0/50/90% stragglers, five datasets", figure1)
	register("figure2", "Figure 2: statistical heterogeneity ladder — loss and dissimilarity", figure2)
	register("figure3", "Figure 3: adaptive mu heuristic on Synthetic-IID and Synthetic(1,1)", figure3)
	register("figure4", "Figure 4 (App. B): FedDane vs FedProx on the synthetic suite", figure4)
	register("figure5", "Figure 5 (App. C.3.1): straggler robustness on IID data", figure5)
	register("figure6", "Figure 6: full loss/accuracy/dissimilarity for the Figure 2 ladder", figure6)
	register("figure7", "Figure 7: testing accuracy for Figure 1 + 90%-straggler improvement", figure7)
	register("figure8", "Figure 8: dissimilarity metric on the five datasets, no stragglers", figure8)
	register("figure9", "Figure 9 (App.): E=1 training loss under stragglers", figure9)
	register("figure10", "Figure 10 (App.): E=1 testing accuracy under stragglers", figure10)
	register("figure11", "Figure 11 (App.): adaptive mu on all four synthetic datasets", figure11)
	register("figure12", "Figure 12 (App. C.3.4): device sampling scheme comparison", figure12)
}

// base returns the shared configuration for one workload under o.
func (o Options) base(w workload) core.Config {
	cfg := core.Config{
		Rounds:          w.rounds,
		ClientsPerRound: o.ClientsPerRound,
		LocalEpochs:     o.LocalEpochs,
		LearningRate:    w.lr,
		BatchSize:       10,
		EvalEvery:       o.EvalEvery,
		Seed:            o.Seed,
		Parallelism:     o.Parallelism,
		Trace:           o.Trace,
	}
	if o.Codec != "" {
		cfg.Codec = comm.Spec{Name: o.Codec, Bits: o.CodecBits, TopK: o.CodecTopK}
		if o.DownlinkCodec != "" {
			cfg.DownlinkCodec = comm.Spec{Name: o.DownlinkCodec, Bits: o.CodecBits, TopK: o.CodecTopK}
		}
	}
	if p, err := tensor.ParsePrecision(o.Precision); err == nil {
		cfg.Precision = p
	} else {
		// Keep the bad spelling so Config.Validate reports it.
		cfg.Precision = tensor.Precision(o.Precision)
	}
	return cfg
}

func fedavg(c core.Config) core.Config {
	c.Mu = 0
	c.Straggler = core.DropStragglers
	return c
}

func fedprox(c core.Config, mu float64) core.Config {
	c.Mu = mu
	c.Straggler = core.AggregatePartial
	return c
}

// runAll executes the given configurations on one workload.
func runAll(w workload, cfgs ...core.Config) ([]*core.History, error) {
	out := make([]*core.History, 0, len(cfgs))
	for _, c := range cfgs {
		h, err := core.Run(w.mdl, w.fed, c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.fed.Name, err)
		}
		out = append(out, h)
	}
	return out, nil
}

func table1(o Options) (*Result, error) {
	res := &Result{
		ID:    "table1",
		Title: "dataset statistics at paper scale (surrogate generators)",
		Notes: []string{
			"paper reference: MNIST 1000/69035/69±106, FEMNIST 200/18345/92±159,",
			"Shakespeare 143/517106/3616±6808, Sent140 772/40783/53±32",
		},
	}
	stats := []data.Stats{
		mnistsim.Generate().ComputeStats(),
		femnistsim.Generate().ComputeStats(),
		shakespearesim.Generate(shakespearesim.Default()).ComputeStats(),
		sent140sim.Generate(sent140sim.Default()).ComputeStats(),
	}
	sec := Section{Name: "Table 1"}
	for _, st := range stats {
		sec.Notes = append(sec.Notes, st.String())
	}
	res.Sections = append(res.Sections, sec)
	return res, nil
}

// stragglerGrid runs the Figure 1/7 (and, with epochs=1, Figure 9/10)
// comparison: for each workload and straggler level, FedAvg vs
// FedProx(μ=0) vs FedProx(best μ).
func stragglerGrid(o Options, epochs int, withBestMu bool) ([]Section, error) {
	fracs := []float64{0, 0.5, 0.9}
	var sections []Section
	for _, w := range o.figure1Workloads() {
		for _, frac := range fracs {
			base := o.base(w)
			base.LocalEpochs = epochs
			base.StragglerFraction = frac
			cfgs := []core.Config{fedavg(base), fedprox(base, 0)}
			if withBestMu {
				cfgs = append(cfgs, fedprox(base, w.bestMu))
			}
			runs, err := runAll(w, cfgs...)
			if err != nil {
				return nil, err
			}
			sections = append(sections, Section{
				Name: fmt.Sprintf("%s %.0f%% stragglers", w.fed.Name, frac*100),
				Runs: runs,
			})
		}
	}
	return sections, nil
}

func figure1(o Options) (*Result, error) {
	sections, err := stragglerGrid(o, o.LocalEpochs, true)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:       "figure1",
		Title:    "training loss, five datasets x {0,50,90}% stragglers, E=20",
		Sections: sections,
		Notes: []string{
			"expected shape: FedProx(mu=0) beats FedAvg under stragglers;",
			"FedProx(best mu) is the most stable and converges everywhere",
		},
	}, nil
}

func figure2(o Options) (*Result, error) {
	res := &Result{
		ID:    "figure2",
		Title: "heterogeneity ladder: loss (top row) and gradient variance (bottom row)",
		Notes: []string{"expected shape: convergence degrades left to right for mu=0; mu>0 combats it"},
	}
	for _, w := range o.syntheticLadder() {
		base := o.base(w)
		base.TrackDissimilarity = true
		runs, err := runAll(w, fedprox(base, 0), fedprox(base, 1))
		if err != nil {
			return nil, err
		}
		res.Sections = append(res.Sections, Section{Name: w.fed.Name, Runs: runs})
	}
	return res, nil
}

func figure3(o Options) (*Result, error) {
	res := &Result{
		ID:    "figure3",
		Title: "adaptive mu (increase 0.1 on loss rise, decrease 0.1 after 5 falls)",
	}
	cases := []struct {
		w   workload
		mu0 float64
	}{
		{o.syntheticWorkload(0, 0, true), 1}, // adversarial start for IID
		{o.syntheticWorkload(1, 1, false), 0},
	}
	for _, tc := range cases {
		base := o.base(tc.w)
		adaptive := fedprox(base, tc.mu0)
		adaptive.AdaptiveMu = true
		runs, err := runAll(tc.w, fedprox(base, 0), adaptive, fedprox(base, tc.w.bestMu))
		if err != nil {
			return nil, err
		}
		res.Sections = append(res.Sections, Section{
			Name: fmt.Sprintf("%s (mu0=%g)", tc.w.fed.Name, tc.mu0),
			Runs: runs,
		})
	}
	return res, nil
}

func figure4(o Options) (*Result, error) {
	res := &Result{
		ID:    "figure4",
		Title: "FedDane vs FedProx on the synthetic suite (top: mu sweep; bottom: c sweep)",
		Notes: []string{"expected shape: FedDane matches on IID, degrades on non-IID; larger c helps only partially"},
	}
	for _, w := range o.syntheticLadder() {
		base := o.base(w)
		runs, err := runAll(w, fedprox(base, 0), fedprox(base, 1))
		if err != nil {
			return nil, err
		}
		for _, mu := range []float64{0, 1} {
			dh, err := feddane.Run(w.mdl, w.fed, feddane.Config{Config: fedprox(base, mu)})
			if err != nil {
				return nil, err
			}
			runs = append(runs, dh)
		}
		res.Sections = append(res.Sections, Section{Name: w.fed.Name + " mu sweep", Runs: runs})

		var cRuns []*core.History
		for _, c := range []int{10, 20, 30} {
			dh, err := feddane.Run(w.mdl, w.fed, feddane.Config{Config: fedprox(base, 0), GradClients: c})
			if err != nil {
				return nil, err
			}
			cRuns = append(cRuns, dh)
		}
		res.Sections = append(res.Sections, Section{Name: w.fed.Name + " c sweep", Runs: cRuns})
	}
	return res, nil
}

func figure5(o Options) (*Result, error) {
	res := &Result{
		ID:    "figure5",
		Title: "IID data: FedAvg is robust to stragglers; partial work changes little",
	}
	w := o.syntheticWorkload(0, 0, true)
	for _, frac := range []float64{0, 0.1, 0.5, 0.9} {
		base := o.base(w)
		base.StragglerFraction = frac
		runs, err := runAll(w, fedavg(base), fedprox(base, 0))
		if err != nil {
			return nil, err
		}
		res.Sections = append(res.Sections, Section{
			Name: fmt.Sprintf("Synthetic-IID %.0f%% stragglers", frac*100),
			Runs: runs,
		})
	}
	return res, nil
}

func figure6(o Options) (*Result, error) {
	res, err := figure2(o)
	if err != nil {
		return nil, err
	}
	res.ID = "figure6"
	res.Title = "Figure 2 ladder with testing accuracy (all three metric rows)"
	return res, nil
}

func figure7(o Options) (*Result, error) {
	sections, err := stragglerGrid(o, o.LocalEpochs, true)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:       "figure7",
		Title:    "testing accuracy for the Figure 1 grid + improvement accounting",
		Sections: sections,
	}
	// The paper's 22% claim: mean absolute test-accuracy improvement of
	// FedProx(best mu) over FedAvg at 90% stragglers, with accuracies
	// taken at convergence/divergence/budget-exhaustion (Appendix C.3.2).
	const tol, rise, win = 1e-4, 1.0, 10
	sum, n := 0.0, 0
	for i := range res.Sections {
		sec := &res.Sections[i]
		if len(sec.Runs) < 3 || !is90(sec.Name) {
			continue
		}
		avg := sec.Runs[0].SettledAccuracy(tol, rise, minInt(win, len(sec.Runs[0].Points)-1))
		prox := sec.Runs[2].SettledAccuracy(tol, rise, minInt(win, len(sec.Runs[2].Points)-1))
		diff := prox - avg
		sec.Notes = append(sec.Notes,
			fmt.Sprintf("settled accuracy: FedAvg %.4f, FedProx(best mu) %.4f, improvement %+.4f", avg, prox, diff))
		sum += diff
		n++
	}
	if n > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"mean absolute accuracy improvement at 90%% stragglers: %+.1f points (paper reports +22)", 100*sum/float64(n)))
	}
	return res, nil
}

func is90(name string) bool {
	return len(name) >= 14 && name[len(name)-14:] == "90% stragglers"
}

func figure8(o Options) (*Result, error) {
	res := &Result{
		ID:    "figure8",
		Title: "gradient-variance dissimilarity on five datasets, no stragglers",
	}
	for _, w := range o.figure1Workloads() {
		base := o.base(w)
		base.TrackDissimilarity = true
		runs, err := runAll(w, fedprox(base, 0), fedprox(base, w.bestMu))
		if err != nil {
			return nil, err
		}
		res.Sections = append(res.Sections, Section{Name: w.fed.Name, Runs: runs})
	}
	return res, nil
}

func figure9(o Options) (*Result, error) {
	sections, err := stragglerGrid(o, 1, false)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:       "figure9",
		Title:    "E=1 training loss under stragglers: partial work still beats dropping",
		Sections: sections,
	}, nil
}

func figure10(o Options) (*Result, error) {
	res, err := figure9(o)
	if err != nil {
		return nil, err
	}
	res.ID = "figure10"
	res.Title = "E=1 testing accuracy under stragglers"
	return res, nil
}

func figure11(o Options) (*Result, error) {
	res := &Result{
		ID:    "figure11",
		Title: "adaptive mu on all four synthetic datasets (adversarial mu0)",
	}
	for _, w := range o.syntheticLadder() {
		mu0 := 0.0
		if w.fed.Name == "Synthetic-IID" {
			mu0 = 1
		}
		base := o.base(w)
		adaptive := fedprox(base, mu0)
		adaptive.AdaptiveMu = true
		runs, err := runAll(w, fedprox(base, 0), adaptive, fedprox(base, 1))
		if err != nil {
			return nil, err
		}
		res.Sections = append(res.Sections, Section{
			Name: fmt.Sprintf("%s (mu0=%g)", w.fed.Name, mu0),
			Runs: runs,
		})
	}
	return res, nil
}

func figure12(o Options) (*Result, error) {
	res := &Result{
		ID:    "figure12",
		Title: "sampling schemes: uniform+weighted-average vs weighted+simple-average",
	}
	for _, w := range o.syntheticLadder() {
		var runs []*core.History
		for _, scheme := range []core.SamplingScheme{core.UniformWeightedAvg, core.WeightedSimpleAvg} {
			for _, mu := range []float64{0, 1} {
				c := fedprox(o.base(w), mu)
				c.Sampling = scheme
				c.TrackDissimilarity = true
				h, err := core.Run(w.mdl, w.fed, c)
				if err != nil {
					return nil, err
				}
				h.Label = fmt.Sprintf("mu=%g %s", mu, scheme)
				runs = append(runs, h)
			}
		}
		res.Sections = append(res.Sections, Section{Name: w.fed.Name, Runs: runs})
	}
	return res, nil
}
