package experiments

import "fedprox/internal/obs"

// Options scales an experiment between bench-friendly miniatures and
// paper-scale runs. The heterogeneity structure (device counts where
// feasible, label skew, power-law allocation, straggler simulation) is
// identical at every scale; only sample volumes, model widths, and round
// counts change.
type Options struct {
	// Scale multiplies per-device sample volumes (and device counts for
	// the very large networks).
	Scale float64
	// Rounds is the communication-round count for convex workloads.
	Rounds int
	// SeqRounds is the round count for LSTM workloads (the paper also
	// runs these for far fewer rounds, e.g. 20 for Shakespeare).
	SeqRounds int
	// EvalEvery is the evaluation interval in rounds.
	EvalEvery int
	// LocalEpochs is E for the main experiments (paper: 20).
	LocalEpochs int
	// ClientsPerRound is K (paper: 10).
	ClientsPerRound int
	// Hidden, Embed, Layers size the LSTM workloads.
	Hidden, Embed, Layers int
	// MaxSeqLen caps sequence lengths (0 keeps the dataset default).
	MaxSeqLen int
	// Datasets optionally restricts the five-dataset experiments to a
	// subset of {"synthetic", "mnist", "femnist", "shakespeare",
	// "sent140"}; nil runs all five.
	Datasets []string
	// Seed drives every environment draw.
	Seed uint64
	// Parallelism bounds concurrent local solves (0 = GOMAXPROCS).
	Parallelism int
	// Codec names a model-update codec (see internal/comm) applied to
	// every run's transfers; empty keeps the uncompressed wire.
	Codec string
	// CodecBits is the qsgd bit width (0 selects the comm default).
	CodecBits int
	// CodecTopK is the topk kept fraction (0 selects the comm default).
	CodecTopK float64
	// DownlinkCodec optionally overrides Codec on the broadcast
	// direction (e.g. "raw" to sparsify only the uplink).
	DownlinkCodec string
	// Precision selects the device hot path's arithmetic width ("f64" or
	// "f32", see core.Config.Precision); empty keeps full width.
	Precision string
	// AsyncAlpha, AsyncStalenessExp, and AsyncBufferK parameterize the
	// asynchronous aggregation runs of ext-async and ext-vtime (zero
	// selects the core.AsyncConfig defaults).
	AsyncAlpha        float64
	AsyncStalenessExp float64
	AsyncBufferK      int
	// VTimeDeadline and VTimeRoundBytes override the straggler-policy
	// knobs of the ext-vtime policy cases (zero derives defaults from
	// the latency model and the round's wire traffic).
	VTimeDeadline   float64
	VTimeRoundBytes int64
	// TierFanOut, when > 1, replaces ext-hier's default fan-out sweep
	// with {1 (flat), TierFanOut}; TierLatency, when > 0, overrides the
	// backbone latency pricing the aggregator legs (the fedbench
	// -tier sim override group).
	TierFanOut  int
	TierLatency float64
	// Trace attaches an event sink (see internal/obs) to every run the
	// experiment launches: each workload/method case streams its
	// coordinator events — round lifecycle, dispatches, replies with
	// disposition, folds, evals — to the same sink. Virtual-time cases
	// stamp virtual seconds; clockless cases emit untimed events. Nil
	// (the default) keeps tracing off.
	Trace obs.Sink
}

// Fast returns miniature settings for benchmarks and CI: every experiment
// finishes in seconds while preserving the comparisons' qualitative shape.
func Fast() Options {
	return Options{
		Scale:           0.15,
		Rounds:          30,
		SeqRounds:       6,
		EvalEvery:       5,
		LocalEpochs:     20,
		ClientsPerRound: 10,
		Hidden:          12,
		Embed:           6,
		Layers:          2,
		MaxSeqLen:       10,
		Seed:            7,
	}
}

// Full returns the settings cmd/fedbench uses by default: paper-scale
// synthetic suite, moderately scaled real-data surrogates, and small LSTM
// widths so a full figure regenerates in minutes on a laptop.
func Full() Options {
	return Options{
		Scale:           0.5,
		Rounds:          200,
		SeqRounds:       20,
		EvalEvery:       5,
		LocalEpochs:     20,
		ClientsPerRound: 10,
		Hidden:          32,
		Embed:           8,
		Layers:          2,
		MaxSeqLen:       20,
		Seed:            7,
	}
}

// wantDataset reports whether the named dataset is enabled by o.Datasets.
func (o Options) wantDataset(name string) bool {
	if len(o.Datasets) == 0 {
		return true
	}
	for _, d := range o.Datasets {
		if d == name {
			return true
		}
	}
	return false
}
