package experiments

import (
	"fmt"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/data/imagesim"
	"fedprox/internal/frand"
	"fedprox/internal/metrics"
	"fedprox/internal/model/linear"
	"fedprox/internal/model/mlp"
	"fedprox/internal/privacy"
	"fedprox/internal/solver"
	"fedprox/internal/syshet"
	"fedprox/internal/theory"
)

// The ext-* experiments go beyond the paper's figures: they validate the
// theory on measured constants, replace the designated-straggler shortcut
// with an emergent capability model, demonstrate solver-agnosticism, and
// measure achieved γ-inexactness. DESIGN.md §5 lists them as ablations.
func init() {
	register("ext-theory", "theory validation: measured B/L/rho across the synthetic ladder", extTheory)
	register("ext-syshet", "capability-driven systems heterogeneity (global clock + device tiers)", extSyshet)
	register("ext-solvers", "solver-agnosticism: FedProx with SGD, momentum, Adagrad, Adam, GD", extSolvers)
	register("ext-gamma", "achieved gamma-inexactness vs local epoch budget", extGamma)
	register("ext-comm", "communication and wasted-computation accounting: drop vs aggregate", extComm)
	register("ext-nonconvex", "straggler results survive non-convexity: MLP on the MNIST surrogate", extNonconvex)
	register("ext-privacy", "update-level DP composed with FedProx: accuracy vs noise", extPrivacy)
	register("ext-bias", "dropping stragglers biases the model against the stragglers' classes", extBias)
}

// extBias constructs the bias scenario of Section 2: devices holding
// classes 0 and 1 carry much larger shards, so under a capability fleet
// they take longer per epoch and straggle systematically. Dropping them
// (FedAvg) starves classes 0-1 of updates; aggregating partial work
// (FedProx) keeps them in the model. Per-class accuracy makes the bias
// visible.
func extBias(o Options) (*Result, error) {
	fed := biasedDataset(o)
	mdl := linear.ForDataset(fed)
	w := workload{key: "biased", fed: fed, mdl: mdl, lr: 0.01, bestMu: 1, rounds: o.Rounds}

	base := o.base(w)
	// Uniform-speed fleet with a deadline calibrated so a device with a
	// SMALL shard just completes E epochs; the inflated big-shard devices
	// (the class 0-1 holders) therefore straggle every round — hardware
	// cannot rescue them, isolating the data-size → straggler → bias
	// chain.
	base.Capability = syshet.NewFleet(syshet.Config{
		Deadline:  syshet.DeadlineFor(o.LocalEpochs, smallShard(o), 10, 10),
		Tiers:     []syshet.Tier{{Name: "uniform", Share: 1, Speed: 10}},
		JitterStd: 0.1,
		BatchSize: 10,
		Seed:      o.Seed + 7,
	}, fed.TrainSizes())

	res := &Result{
		ID:    "ext-bias",
		Title: "systematic stragglers hold classes 0-1: per-class accuracy under drop vs aggregate",
	}
	sec := Section{Name: fed.Name}
	if base.Codec.Enabled() {
		// This experiment measures per-class accuracy, not bytes; running
		// it compressed would only add quantization noise to the story.
		base.Codec, base.DownlinkCodec = comm.Spec{}, comm.Spec{}
		sec.Notes = append(sec.Notes, "update codec ignored here (bias experiment measures per-class accuracy, not bytes)")
	}
	for _, policy := range []core.StragglerPolicy{core.DropStragglers, core.AggregatePartial} {
		cfg := base
		cfg.Straggler = policy
		cap := &captureCheckpointer{}
		cfg.Checkpointer = cap
		cfg.CheckpointEvery = cfg.Rounds
		h, err := core.Run(w.mdl, w.fed, cfg)
		if err != nil {
			return nil, err
		}
		h.Label = policy.String()
		sec.Runs = append(sec.Runs, h)
		acc, _ := metrics.PerClassAccuracy(w.mdl, w.fed, cap.params)
		mean01 := (acc[0] + acc[1]) / 2
		rest := 0.0
		for c := 2; c < len(acc); c++ {
			rest += acc[c]
		}
		rest /= float64(len(acc) - 2)
		sec.Notes = append(sec.Notes, fmt.Sprintf(
			"%s: straggler classes 0-1 accuracy %.3f vs other classes %.3f (per-class %s...)",
			policy, mean01, rest, fmtClasses(acc, 4)))
	}
	res.Sections = append(res.Sections, sec)
	res.Notes = append(res.Notes,
		"expected shape: under drop, classes 0-1 lag the others; aggregation closes the gap")
	return res, nil
}

// captureCheckpointer records the last saved parameters in memory.
type captureCheckpointer struct{ params []float64 }

func (c *captureCheckpointer) Load() (int, []float64, *core.History, []byte, error) {
	return 0, nil, nil, nil, nil
}

func (c *captureCheckpointer) Save(_ int, params []float64, _ *core.History, _ []byte) error {
	c.params = append(c.params[:0], params...)
	return nil
}

// biasedDataset builds an image dataset where devices holding classes 0-1
// have ~8x larger shards than everyone else.
func biasedDataset(o Options) *data.Federated {
	cfg := imagesim.Config{
		Name:             "BiasedMNIST",
		Devices:          40,
		Classes:          10,
		ClassesPerDevice: 2,
		Side:             14,
		BlobsPerClass:    4,
		Noise:            0.4,
		DeviceSkew:       0.4,
		MinSamples:       15,
		MaxSamples:       30,
		PowerAlpha:       2.0,
		TrainFrac:        0.8,
		Seed:             o.Seed + 99,
	}
	fed := imagesim.Generate(cfg)
	// Inflate shards whose devices hold class 0 or 1 by repeating their
	// own examples (the device genuinely has more data of its classes).
	for _, s := range fed.Shards {
		holds01 := false
		for _, ex := range s.Train {
			if ex.Y == 0 || ex.Y == 1 {
				holds01 = true
				break
			}
		}
		if !holds01 {
			continue
		}
		orig := append([]data.Example(nil), s.Train...)
		for i := 0; i < 2; i++ {
			s.Train = append(s.Train, orig...)
		}
	}
	return fed
}

func smallShard(o Options) int {
	// The calibration shard for the deadline: a non-inflated device.
	return 25
}

func fmtClasses(acc []float64, n int) string {
	out := "["
	for c := 0; c < n && c < len(acc); c++ {
		if c > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", acc[c])
	}
	return out + "]"
}

func extPrivacy(o Options) (*Result, error) {
	res := &Result{
		ID:    "ext-privacy",
		Title: "DP clipping+noise composes with FedProx (footnote 1): graceful degradation",
	}
	w := o.syntheticWorkload(1, 1, false)
	sec := Section{Name: w.fed.Name}
	for _, noise := range []float64{0, 0.0005, 0.002, 0.01} {
		cfg := fedprox(o.base(w), w.bestMu)
		if noise > 0 {
			cfg.Privacy = &privacy.Mechanism{ClipNorm: 0.5, NoiseStd: noise, Seed: o.Seed + 3}
		}
		h, err := core.Run(w.mdl, w.fed, cfg)
		if err != nil {
			return nil, err
		}
		h.Label = fmt.Sprintf("FedProx(mu=%g) noise=%g", w.bestMu, noise)
		sec.Runs = append(sec.Runs, h)
	}
	res.Sections = append(res.Sections, sec)
	res.Notes = append(res.Notes,
		"expected shape: accuracy degrades smoothly with noise; small noise is near-free")
	return res, nil
}

func extNonconvex(o Options) (*Result, error) {
	res := &Result{
		ID:    "ext-nonconvex",
		Title: "FedAvg vs FedProx with a tanh MLP (non-convex F_k, Theorem 4's regime)",
	}
	w := o.mnistWorkload()
	w.mdl = mlp.ForDataset(w.fed, 32)
	w.lr = 0.05 // MLP tolerates a slightly larger step than the paper's mclr rate
	for _, frac := range []float64{0, 0.9} {
		base := o.base(w)
		base.StragglerFraction = frac
		runs, err := runAll(w, fedavg(base), fedprox(base, 0), fedprox(base, w.bestMu))
		if err != nil {
			return nil, err
		}
		res.Sections = append(res.Sections, Section{
			Name: fmt.Sprintf("%s+MLP %.0f%% stragglers", w.fed.Name, frac*100),
			Runs: runs,
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: same ordering as Figure 1 — the analysis covers non-convex F_k")
	return res, nil
}

func extComm(o Options) (*Result, error) {
	res := &Result{
		ID:    "ext-comm",
		Title: "resource accounting at 90% stragglers: FedAvg wastes straggler epochs",
	}
	w := o.syntheticWorkload(1, 1, false)
	base := o.base(w)
	base.StragglerFraction = 0.9
	runs, err := runAll(w, fedavg(base), fedprox(base, 0), fedprox(base, w.bestMu))
	if err != nil {
		return nil, err
	}
	sec := Section{Name: w.fed.Name + " 90% stragglers", Runs: runs}
	for _, h := range runs {
		c := h.Final().Cost
		waste := 0.0
		if c.DeviceEpochs > 0 {
			waste = float64(c.WastedEpochs) / float64(c.DeviceEpochs)
		}
		sec.Notes = append(sec.Notes, fmt.Sprintf(
			"%s: device-epochs=%d wasted=%d (%.0f%%) up=%dKB down=%dKB final-loss=%.4f",
			h.Label, c.DeviceEpochs, c.WastedEpochs, 100*waste,
			c.UplinkBytes/1024, c.DownlinkBytes/1024, h.Final().TrainLoss))
	}
	res.Sections = append(res.Sections, sec)
	res.Notes = append(res.Notes,
		"expected shape: FedAvg discards most straggler work; FedProx converts the same",
		"device computation (and slightly more uplink) into convergence progress")
	return res, nil
}

func extTheory(o Options) (*Result, error) {
	res := &Result{
		ID:    "ext-theory",
		Title: "Theorem 4 constants measured on data: B rises with heterogeneity, rho falls",
	}
	rng := frand.New(o.Seed)
	for _, w := range o.syntheticLadder() {
		winit := w.mdl.InitParams(rng.Split(w.fed.Name))
		rep, err := theory.Analyze(w.mdl, w.fed, winit, 1 /* mu */, 0.1 /* gamma */, o.ClientsPerRound, rng.Split("probe-"+w.fed.Name))
		if err != nil {
			return nil, err
		}
		res.Sections = append(res.Sections, Section{
			Name: w.fed.Name,
			Notes: []string{
				fmt.Sprintf("measured B=%.3f L=%.3f -> rho=%.4f remark5=%v", rep.B, rep.L, rep.Rho, rep.Remark5),
			},
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: B grows along the ladder; rho shrinks (and can go negative),",
		"matching Section 5.3.3's claim that dissimilarity predicts convergence quality")
	return res, nil
}

func extSyshet(o Options) (*Result, error) {
	res := &Result{
		ID:    "ext-syshet",
		Title: "emergent stragglers from device tiers: drop vs aggregate vs prox",
	}
	w := o.syntheticWorkload(1, 1, false)
	// Deadline calibrated so a mid-tier device completes ~1/4 of E epochs
	// on the mean shard: a strongly straggling fleet.
	mean := 0
	for _, n := range w.fed.TrainSizes() {
		mean += n
	}
	mean /= w.fed.NumDevices()
	fleet := syshet.NewFleet(syshet.Config{
		Deadline:  syshet.DeadlineFor(o.LocalEpochs/4+1, mean, 10, 10),
		JitterStd: 0.3,
		BatchSize: 10,
		Seed:      o.Seed + 1,
	}, w.fed.TrainSizes())

	base := o.base(w)
	base.Capability = fleet
	runs, err := runAll(w, fedavg(base), fedprox(base, 0), fedprox(base, w.bestMu))
	if err != nil {
		return nil, err
	}
	res.Sections = append(res.Sections, Section{
		Name: w.fed.Name,
		Runs: runs,
		Notes: []string{
			fmt.Sprintf("emergent straggler rate at E=%d: %.2f", o.LocalEpochs,
				fleet.StragglerRate(10, o.LocalEpochs)),
			fmt.Sprintf("fleet tiers: %v", fleet.TierCounts()),
		},
	})
	return res, nil
}

func extSolvers(o Options) (*Result, error) {
	res := &Result{
		ID:    "ext-solvers",
		Title: "the framework is solver-agnostic: every local solver converges under prox",
	}
	w := o.syntheticWorkload(1, 1, false)
	solvers := []solver.LocalSolver{
		solver.SGDSolver{},
		solver.MomentumSolver{Beta: 0.9},
		solver.AdagradSolver{},
		solver.AdamSolver{},
		solver.GDSolver{StepsPerEpoch: 2},
	}
	var runs []*core.History
	for _, ls := range solvers {
		cfg := fedprox(o.base(w), w.bestMu)
		cfg.Solver = ls
		if ls.Name() == "adagrad" || ls.Name() == "adam" {
			cfg.LearningRate = w.lr * 3 // adaptive methods renormalize steps
		}
		h, err := core.Run(w.mdl, w.fed, cfg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, h)
	}
	res.Sections = append(res.Sections, Section{Name: w.fed.Name, Runs: runs})
	return res, nil
}

func extGamma(o Options) (*Result, error) {
	res := &Result{
		ID:    "ext-gamma",
		Title: "achieved gamma-inexactness falls as the local epoch budget grows",
	}
	w := o.syntheticWorkload(1, 1, false)
	sec := Section{Name: w.fed.Name}
	for _, e := range []int{1, 5, 20} {
		cfg := fedprox(o.base(w), 1)
		cfg.LocalEpochs = e
		cfg.TrackGamma = true
		h, err := core.Run(w.mdl, w.fed, cfg)
		if err != nil {
			return nil, err
		}
		h.Label = fmt.Sprintf("E=%d", e)
		sec.Runs = append(sec.Runs, h)
		sec.Notes = append(sec.Notes,
			fmt.Sprintf("E=%d final mean gamma %.4f", e, h.Final().MeanGamma))
	}
	res.Sections = append(res.Sections, sec)
	res.Notes = append(res.Notes, "Definition 2: more local work means a smaller (more exact) gamma")
	return res, nil
}
