package experiments

import (
	"math"
	"testing"
)

// TestExtVTimeAsyncOutpacesSync is the tentpole's acceptance criterion
// run offline: under a 10x-slow tail on the virtual clock, async
// completes the same device work in less virtual time than the
// synchronous protocol at equal-or-better final loss — and, unlike the
// fednet wall-clock sweep, the whole comparison is deterministic.
func TestExtVTimeAsyncOutpacesSync(t *testing.T) {
	o := micro()
	o.Rounds = 6
	res, err := Run("ext-vtime", o)
	if err != nil {
		t.Fatal(err)
	}
	sec := res.Sections[0]
	if len(sec.Runs) != 6 {
		t.Fatalf("runs = %d, want sync-drop/sync-partial/sync-deadline/sync-budget/async/buffered", len(sec.Runs))
	}
	byName := map[string]int{"sync-drop": 0, "sync-partial": 1, "sync-deadline": 2, "sync-budget": 3, "async": 4, "buffered": 5}
	vtOf := func(name string) float64 { return sec.Runs[byName[name]].VirtualDuration() }
	lossOf := func(name string) float64 { return sec.Runs[byName[name]].Final().TrainLoss }

	for name := range byName {
		if d := vtOf(name); !(d > 0) {
			t.Fatalf("%s: virtual duration %g, want positive", name, d)
		}
		if !sec.Runs[byName[name]].TracksVirtualTime() {
			t.Fatalf("%s does not track virtual time", name)
		}
	}
	// Less virtual time than sync for the same work...
	if !(vtOf("async") < vtOf("sync-partial")) || !(vtOf("async") < vtOf("sync-drop")) {
		t.Fatalf("async %.2fvs not faster than sync (partial %.2fvs, drop %.2fvs)",
			vtOf("async"), vtOf("sync-partial"), vtOf("sync-drop"))
	}
	if !(vtOf("buffered") < vtOf("sync-partial")) {
		t.Fatalf("buffered %.2fvs not faster than sync-partial %.2fvs", vtOf("buffered"), vtOf("sync-partial"))
	}
	// ...at equal-or-better final loss than the sync baselines.
	if lossOf("async") > lossOf("sync-drop") {
		t.Fatalf("async loss %.4f above sync-drop %.4f", lossOf("async"), lossOf("sync-drop"))
	}
	if lossOf("async") > lossOf("sync-partial")*1.05 {
		t.Fatalf("async loss %.4f more than 5%% above sync-partial %.4f", lossOf("async"), lossOf("sync-partial"))
	}
	// The clock-native policies actually cut stragglers and save time.
	if !(vtOf("sync-deadline") < vtOf("sync-partial")) {
		t.Fatalf("deadline policy saved no time: %.2fvs vs %.2fvs", vtOf("sync-deadline"), vtOf("sync-partial"))
	}
	if !(vtOf("sync-budget") < vtOf("sync-partial")) {
		t.Fatalf("byte-budget policy saved no time: %.2fvs vs %.2fvs", vtOf("sync-budget"), vtOf("sync-partial"))
	}
	if len(sec.Runs[byName["sync-budget"]].Arrivals) == 0 {
		t.Fatal("no arrival trace on the budget run")
	}
}

// TestExtVTimeDeterministic: two full sweeps agree to the bit — the
// property the fednet ext-async sweep cannot offer.
func TestExtVTimeDeterministic(t *testing.T) {
	o := micro()
	o.Rounds = 3
	a, err := Run("ext-vtime", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("ext-vtime", o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sections[0].Runs {
		ra, rb := a.Sections[0].Runs[i], b.Sections[0].Runs[i]
		if len(ra.Points) != len(rb.Points) {
			t.Fatalf("run %d: point counts differ", i)
		}
		for j := range ra.Points {
			if math.Float64bits(ra.Points[j].TrainLoss) != math.Float64bits(rb.Points[j].TrainLoss) ||
				math.Float64bits(ra.Points[j].VirtualSeconds) != math.Float64bits(rb.Points[j].VirtualSeconds) {
				t.Fatalf("run %d point %d differs across identical sweeps", i, j)
			}
		}
	}
}

// TestExtVTimeBenchEntriesCarryVirtualSeconds: the fedbench -json schema
// extension — every ext-vtime entry reports its deterministic virtual
// wall-clock without disturbing the loss-gate fields.
func TestExtVTimeBenchEntriesCarryVirtualSeconds(t *testing.T) {
	o := micro()
	o.Rounds = 3
	res, err := Run("ext-vtime", o)
	if err != nil {
		t.Fatal(err)
	}
	entries := res.BenchEntries()
	if len(entries) != 6 {
		t.Fatalf("bench entries = %d, want 6", len(entries))
	}
	for _, e := range entries {
		if !(e.VirtualSeconds > 0) {
			t.Fatalf("entry %s missing virtual seconds: %+v", e.Method, e)
		}
		if !(e.FinalLoss > 0) || e.Seconds <= 0 {
			t.Fatalf("entry %s missing gate fields: %+v", e.Method, e)
		}
	}
}
