package experiments

import (
	"fmt"

	"fedprox/internal/data"
	"fedprox/internal/data/femnistsim"
	"fedprox/internal/data/mnistsim"
	"fedprox/internal/data/sent140sim"
	"fedprox/internal/data/shakespearesim"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model"
	"fedprox/internal/model/linear"
	"fedprox/internal/model/lstm"
)

// workload bundles a federated dataset with its model and the paper's
// tuned hyperparameters for it.
type workload struct {
	key string // registry name used by Options.Datasets
	fed *data.Federated
	mdl model.Model
	// lr is the learning rate the paper tuned on FedAvg for this dataset
	// (Appendix C.2): synthetic 0.01, MNIST 0.03, FEMNIST 0.003,
	// Shakespeare 0.8, Sent140 0.3.
	lr float64
	// bestMu is the best μ from the paper's candidate set for this
	// dataset (Section 5.3.2): 1, 1, 1, 0.001, 0.01.
	bestMu float64
	// rounds is the communication-round budget.
	rounds int
}

func (o Options) syntheticWorkload(alpha, beta float64, iid bool) workload {
	cfg := synthetic.Default(alpha, beta)
	if iid {
		cfg = synthetic.DefaultIID()
	}
	cfg = cfg.Scaled(o.Scale)
	fed := synthetic.Generate(cfg)
	return workload{
		key:    "synthetic",
		fed:    fed,
		mdl:    linear.ForDataset(fed),
		lr:     0.01,
		bestMu: 1,
		rounds: o.Rounds,
	}
}

func (o Options) mnistWorkload() workload {
	fed := mnistsim.GenerateScaled(o.Scale)
	return workload{
		key:    "mnist",
		fed:    fed,
		mdl:    linear.ForDataset(fed),
		lr:     0.03,
		bestMu: 1,
		rounds: o.Rounds,
	}
}

func (o Options) femnistWorkload() workload {
	fed := femnistsim.GenerateScaled(o.Scale)
	return workload{
		key:    "femnist",
		fed:    fed,
		mdl:    linear.ForDataset(fed),
		lr:     0.003,
		bestMu: 1,
		rounds: o.Rounds,
	}
}

func (o Options) shakespeareWorkload() workload {
	// Sequence volume is the runtime driver; scale harder than the convex
	// datasets (the paper itself runs Shakespeare for only ~20 rounds).
	cfg := shakespearesim.Default().Scaled(o.Scale*0.05, o.MaxSeqLen)
	fed := shakespearesim.Generate(cfg)
	return workload{
		key:    "shakespeare",
		fed:    fed,
		mdl:    lstm.ForDataset(fed, o.Embed, o.Hidden, o.Layers),
		lr:     0.8,
		bestMu: 0.001,
		rounds: o.SeqRounds,
	}
}

func (o Options) sent140Workload() workload {
	cfg := sent140sim.Default().Scaled(o.Scale, o.MaxSeqLen)
	fed := sent140sim.Generate(cfg)
	return workload{
		key:    "sent140",
		fed:    fed,
		mdl:    lstm.ForDataset(fed, o.Embed, o.Hidden, o.Layers),
		lr:     0.3,
		bestMu: 0.01,
		rounds: o.SeqRounds,
	}
}

// figure1Workloads returns the five federated datasets of Figures 1, 7, 8,
// 9, and 10 in paper order, filtered by Options.Datasets.
func (o Options) figure1Workloads() []workload {
	var out []workload
	if o.wantDataset("synthetic") {
		out = append(out, o.syntheticWorkload(1, 1, false))
	}
	if o.wantDataset("mnist") {
		out = append(out, o.mnistWorkload())
	}
	if o.wantDataset("femnist") {
		out = append(out, o.femnistWorkload())
	}
	if o.wantDataset("shakespeare") {
		out = append(out, o.shakespeareWorkload())
	}
	if o.wantDataset("sent140") {
		out = append(out, o.sent140Workload())
	}
	return out
}

// Workload is the exported view of a standard workload, used by the
// distributed binaries (cmd/fedserver, cmd/fedworker) so both sides of a
// deployment agree on dataset, model shape, and tuned hyperparameters.
type Workload struct {
	// Fed is the federated dataset.
	Fed *data.Federated
	// Model is sized for Fed.
	Model model.Model
	// LR is the paper's tuned learning rate for this dataset.
	LR float64
	// BestMu is the paper's best proximal coefficient for this dataset.
	BestMu float64
	// Rounds is the round budget under the options used.
	Rounds int
}

// NamedWorkload builds one of the standard workloads by key: "synthetic"
// (Synthetic(1,1)), "synthetic-iid", "mnist", "femnist", "shakespeare",
// or "sent140".
func (o Options) NamedWorkload(key string) (Workload, error) {
	var w workload
	switch key {
	case "synthetic":
		w = o.syntheticWorkload(1, 1, false)
	case "synthetic-iid":
		w = o.syntheticWorkload(0, 0, true)
	case "mnist":
		w = o.mnistWorkload()
	case "femnist":
		w = o.femnistWorkload()
	case "shakespeare":
		w = o.shakespeareWorkload()
	case "sent140":
		w = o.sent140Workload()
	default:
		return Workload{}, fmt.Errorf("experiments: unknown workload %q", key)
	}
	return Workload{Fed: w.fed, Model: w.mdl, LR: w.lr, BestMu: w.bestMu, Rounds: w.rounds}, nil
}

// syntheticLadder returns the four synthetic datasets of Figure 2 in
// increasing heterogeneity order: IID, (0,0), (0.5,0.5), (1,1).
func (o Options) syntheticLadder() []workload {
	return []workload{
		o.syntheticWorkload(0, 0, true),
		o.syntheticWorkload(0, 0, false),
		o.syntheticWorkload(0.5, 0.5, false),
		o.syntheticWorkload(1, 1, false),
	}
}
