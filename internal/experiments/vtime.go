package experiments

import (
	"fmt"
	"time"

	"fedprox/internal/core"
	"fedprox/internal/model"
	"fedprox/internal/vtime"
)

func init() {
	register("ext-vtime", "virtual-time simulation: sync vs async vs straggler policies under a 10x-slow tail", extVTime)
}

// The ext-vtime fleet shape: the last 10% of devices compute 10x slower.
const (
	vtimeSlowFactor      = 10
	vtimeTailFrac        = 0.1
	vtimeSecondsPerEpoch = 0.05
)

// vtimeNet is the shared network model all ext-vtime cases charge
// transfer time against.
var vtimeNet = vtime.Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.02, JitterStd: 0.1}

// vtimeCase is one named configuration of the ext-vtime sweep.
type vtimeCase struct {
	name string
	cfg  core.Config
}

// extVTimeCases builds the workload and the six-case sweep — the single
// source of truth for what ext-vtime runs, shared by the experiment
// itself and by ReplayCases (cmd/fedtrace must rebuild the exact
// configuration a recorded case executed under).
func extVTimeCases(o Options) (workload, []vtimeCase) {
	w := o.syntheticWorkload(1, 1, false)
	base := o.base(w)
	// The paper's systems-heterogeneity knob (partial epoch budgets)
	// stays on, as in ext-async.
	base.StragglerFraction = 0.5

	n := w.fed.NumDevices()
	lat := vtime.MustModel(
		vtime.UniformCompute{SecondsPerEpoch: vtimeSecondsPerEpoch, Speed: vtime.SlowTail(n, vtimeTailFrac, vtimeSlowFactor)},
		vtimeNet,
		o.Seed+101,
	)
	vt := core.VTimeConfig{Model: lat}

	// Policy defaults derived from the model: the deadline fits a full
	// nominal round-trip with ~2x headroom (the 10x tail cannot make
	// it); the byte budget pays for ~70% of a full round's traffic, so
	// the latest ~30% of arrivals are dropped by bytes.
	paramBytes := float64(w.mdl.NumParams() * 8)
	deadline := o.VTimeDeadline
	if deadline == 0 {
		nominal := paramBytes/vtimeNet.DownlinkBps + float64(o.LocalEpochs)*vtimeSecondsPerEpoch + paramBytes/vtimeNet.UplinkBps + 2*vtimeNet.Latency
		deadline = 2 * nominal
	}
	roundBytes := o.VTimeRoundBytes
	if roundBytes == 0 {
		roundBytes = int64(0.7 * float64(base.ClientsPerRound) * 2 * paramBytes)
	}
	withDeadline := vt
	withDeadline.DeadlineSeconds = deadline
	withBudget := vt
	withBudget.RoundBytes = roundBytes

	async := core.AsyncConfig{
		Mode:              core.AsyncTotal,
		Alpha:             o.AsyncAlpha,
		StalenessExponent: o.AsyncStalenessExp,
	}
	buffered := async
	buffered.Mode = core.Buffered
	buffered.BufferK = o.AsyncBufferK

	vtimed := func(cfg core.Config, v core.VTimeConfig) core.Config {
		cfg.VTime = v
		return cfg
	}
	return w, []vtimeCase{
		{"sync-drop", vtimed(fedavg(base), vt)},
		{"sync-partial", vtimed(fedprox(base, w.bestMu), vt)},
		{"sync-deadline", vtimed(fedprox(base, w.bestMu), withDeadline)},
		{"sync-budget", vtimed(fedprox(base, w.bestMu), withBudget)},
		{"async", vtimed(withAsync(fedprox(base, w.bestMu), async), vt)},
		{"buffered", vtimed(withAsync(fedprox(base, w.bestMu), buffered), vt)},
	}
}

// ReplayCase is one named (model, fleet, config) triple of a
// trace-recording experiment: everything cmd/fedtrace needs to replay a
// recorded run segment under the recorded — or an alternative — policy
// via core.Replay.
type ReplayCase struct {
	Name   string
	Model  model.Model
	Fleet  core.Fleet
	Config core.Config
}

// ReplayCases reconstructs the case list an experiment ran, in emission
// order: a multi-run trace's i-th run segment was produced by the i-th
// case. Match by index, not by label — core.Label is ambiguous between
// cases that differ only in clock policy (sync-partial vs
// sync-deadline). The returned Configs carry no trace sink.
func ReplayCases(id string, o Options) ([]ReplayCase, error) {
	if id != "ext-vtime" {
		return nil, fmt.Errorf("experiments: %q does not record replayable virtual-time traces (only ext-vtime does)", id)
	}
	o.Trace = nil
	w, cases := extVTimeCases(o)
	out := make([]ReplayCase, len(cases))
	for i, tc := range cases {
		out[i] = ReplayCase{Name: tc.name, Model: w.mdl, Fleet: w.fed.Fleet(), Config: tc.cfg}
	}
	return out, nil
}

// extVTime is the offline counterpart of ext-async: the same aggregation
// disciplines under the same 10x straggler shape, but executed entirely
// in the simulator against the internal/vtime virtual clock, so the
// comparison is bit-reproducible (the fednet sweep's wall-clock numbers
// jitter run to run; these never do). The fleet's slow tail is the last
// 10% of devices at 10x-slower compute and the network charges transfer
// time on encoded bytes, so every run reports a deterministic virtual
// duration next to its loss:
//
//   - sync-drop: lock-step rounds, stragglers dropped (FedAvg). Every
//     round that selects a tail device pays the tail's latency.
//   - sync-partial: lock-step rounds, partial work aggregated (FedProx).
//     Same round barrier, same tail tax.
//   - sync-deadline: FedProx under VTime.DeadlineSeconds — the
//     clock-native straggler policy. Rounds close at the deadline; tail
//     replies that miss it are dropped by time, not by epoch budget.
//   - sync-budget: FedProx under VTime.RoundBytes — the codec-aware
//     policy from the ROADMAP: the round accepts replies in arrival
//     order until its wire-byte budget is spent and drops the tail by
//     deadline bytes.
//   - async: staleness-damped fold per reply (core.AsyncTotal) on the
//     event queue; tail devices delay only their own contributions.
//   - buffered: FedBuff-style flush every K replies (core.Buffered).
//
// All six runs perform the same total device work (Rounds milestones of
// ClientsPerRound folds — minus what a policy deliberately drops), so
// virtual-duration differences are pure scheduling.
func extVTime(o Options) (*Result, error) {
	w, cases := extVTimeCases(o)
	n := w.fed.NumDevices()

	res := &Result{
		ID: "ext-vtime",
		Title: fmt.Sprintf("virtual-time disciplines under a %dx-slow %.0f%% tail (%d devices, deterministic clock)",
			vtimeSlowFactor, vtimeTailFrac*100, n),
	}
	sec := Section{Name: w.fed.Name + fmt.Sprintf(" + %dx-slow tail", vtimeSlowFactor)}
	var syncVT, asyncVT float64
	for _, tc := range cases {
		start := time.Now()
		h, err := core.Run(w.mdl, w.fed, tc.cfg)
		if err != nil {
			return nil, fmt.Errorf("ext-vtime %s: %w", tc.name, err)
		}
		secs := time.Since(start).Seconds()
		h.Label = tc.name + " " + h.Label
		sec.Runs = append(sec.Runs, h)
		sec.Seconds = append(sec.Seconds, secs)
		fin := h.Final()
		dropped := 0
		for _, a := range h.Arrivals {
			if a.Drop != core.ArrivalFolded {
				dropped++
			}
		}
		note := fmt.Sprintf("%s: %.1f virtual-s, final loss %.4f", tc.name, fin.VirtualSeconds, fin.TrainLoss)
		if dropped > 0 {
			note += fmt.Sprintf(", %d replies cut by the clock policy", dropped)
		}
		if h.TracksStaleness() {
			note += fmt.Sprintf(", staleness mean %.2f max %.0f", fin.MeanStaleness, fin.MaxStaleness)
		}
		sec.Notes = append(sec.Notes, note)
		switch tc.name {
		case "sync-partial":
			syncVT = fin.VirtualSeconds
		case "async":
			asyncVT = fin.VirtualSeconds
		}
	}
	if asyncVT > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"async completed the same device work %.1fx faster in virtual time than sync-partial", syncVT/asyncVT))
	}
	res.Notes = append(res.Notes,
		"deterministic: the same seed reproduces every number above bit for bit;",
		"expected shape: both async modes and both clock policies finish well under",
		"the sync virtual time; async ends at or below FedAvg's loss")
	res.Sections = append(res.Sections, sec)
	return res, nil
}
