// Float32 kernel set: the narrow twin of tensor.go's float64 kernels.
//
// The f32 path exists for speed, not semantics: halved memory traffic on
// the solve/encode hot loop and half the bytes on a raw wire. Everything
// here mirrors the float64 layout (flat slices, row-major matrices) so a
// model's parameter vector can be narrowed once at the dispatch boundary,
// walked entirely in float32, and widened once at the reply boundary.
//
// The batched panel kernels (MatMulNT32, MatMul32, AddOuterPanel32) are
// what let linear/mlp gradient code walk a whole minibatch per call:
// examples are gathered into a row-major B×D panel and every weight row
// streams through the panel once, instead of re-entering a per-example
// GEMV with cold accumulators.
package tensor

import (
	"fmt"
	"math"
)

// Precision selects the arithmetic width of the device-side hot path
// (local solve, γ-probe, codec encode/decode). The zero value is float64
// — the historical default — so Precision is omittable everywhere it
// appears (configs, wire Specs, gob snapshots).
type Precision string

const (
	// F64 is full-width execution, the default.
	F64 Precision = ""
	// F32 runs the device hot path and the wire in float32; results are
	// widened once at the reply boundary so aggregation math stays f64.
	F32 Precision = "f32"
)

// Precisions lists the supported precision names in negotiation form
// (the fednet Hello offer vocabulary). The zero Precision is spelled
// "f64" on the wire.
func Precisions() []string { return []string{"f64", "f32"} }

// ParsePrecision maps a flag/wire spelling to a Precision. "" and "f64"
// both mean full width.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64":
		return F64, nil
	case "f32":
		return F32, nil
	}
	return F64, fmt.Errorf("tensor: unknown precision %q (want f64 or f32)", s)
}

// Validate rejects anything but the two supported widths.
func (p Precision) Validate() error {
	_, err := ParsePrecision(string(p))
	return err
}

// String spells the zero value as "f64".
func (p Precision) String() string {
	if p == F64 {
		return "f64"
	}
	return string(p)
}

// Vec32 is a dense float32 vector.
type Vec32 = []float32

// NewVec32 returns a zero vector of length n.
func NewVec32(n int) Vec32 { return make(Vec32, n) }

// Clone32 returns a copy of v.
func Clone32(v Vec32) Vec32 {
	out := make(Vec32, len(v))
	copy(out, v)
	return out
}

// Zero32 sets every element of v to 0.
func Zero32(v Vec32) {
	for i := range v {
		v[i] = 0
	}
}

// Fill32 sets every element of v to c.
func Fill32(v Vec32, c float32) {
	for i := range v {
		v[i] = c
	}
}

// Widen copies src into dst element-wise, promoting to float64. This is
// the one sanctioned f32→f64 crossing: reply params, γ numerators, and
// fold inputs go through here exactly once.
func Widen(dst Vec, src Vec32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Widen length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// Narrow copies src into dst element-wise, truncating to float32 — the
// dispatch-boundary twin of Widen.
func Narrow(dst Vec32, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Narrow length mismatch %d vs %d", len(dst), len(src)))
	}
	// Unrolled: the convert sits on the panel-gather path of every batched
	// gradient, where the loop-carried bounds checks otherwise cost as
	// much as the conversions.
	i := 0
	for ; i+4 <= len(src); i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] = float32(s[0])
		d[1] = float32(s[1])
		d[2] = float32(s[2])
		d[3] = float32(s[3])
	}
	for ; i < len(src); i++ {
		dst[i] = float32(src[i])
	}
}

// Dot32 returns the inner product of a and b. Four independent
// accumulators keep the multiply-adds pipelined instead of serialized on
// one register's latency chain.
func Dot32(a, b Vec32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa, bb := a[i:i+4:i+4], b[i:i+4:i+4]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm232 returns the Euclidean norm of v, accumulated in float32 and
// finished in float64 (Sqrt has no float32 form in the stdlib).
func Norm232(v Vec32) float64 {
	return math.Sqrt(float64(Dot32(v, v)))
}

// SqDist32 returns ‖a − b‖² — the f32 proximal-term distance.
func SqDist32(a, b Vec32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", len(a), len(b)))
	}
	var s0, s1 float32
	i := 0
	for ; i+2 <= len(a); i += 2 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		s0 += d0 * d0
		s1 += d1 * d1
	}
	if i < len(a) {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1
}

// Axpy32 computes y ← y + alpha·x in place.
func Axpy32(alpha float32, x, y Vec32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", len(x), len(y)))
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xx, yy := x[i:i+4:i+4], y[i:i+4:i+4]
		yy[0] += alpha * xx[0]
		yy[1] += alpha * xx[1]
		yy[2] += alpha * xx[2]
		yy[3] += alpha * xx[3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale32 computes v ← alpha·v in place.
func Scale32(alpha float32, v Vec32) {
	for i := range v {
		v[i] *= alpha
	}
}

// CrossEntropySoftmax32 writes the stable softmax of logits into probs
// (which may alias logits) and returns the cross-entropy loss −log p_y.
// One exp pass serves both outputs — the f64 path's separate LogSumExp +
// Softmax calls exponentiate every logit twice.
func CrossEntropySoftmax32(probs, logits Vec32, y int) float32 {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	var sum float32
	for i, v := range logits {
		e := float32(math.Exp(float64(v - max)))
		probs[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range probs {
		probs[i] *= inv
	}
	return float32(math.Log(float64(sum))) + max - logits[y]
}

// Tanh32 is the float32 hyperbolic tangent.
func Tanh32(x float32) float32 { return float32(math.Tanh(float64(x))) }

// Mat32 is a dense row-major float32 matrix view over a flat vector.
type Mat32 struct {
	Rows, Cols int
	Data       Vec32 // len == Rows*Cols
}

// MatView32 wraps an existing slice as a rows×cols matrix. It panics if
// the slice has the wrong length.
func MatView32(data Vec32, rows, cols int) Mat32 {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: MatView32 %dx%d over %d elements", rows, cols, len(data)))
	}
	return Mat32{Rows: rows, Cols: cols, Data: data}
}

// Row returns row i as a view (mutations are visible in m).
func (m Mat32) Row(i int) Vec32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MatMulNT32 computes dst ← a·bᵀ (+ bias broadcast over rows when bias
// is non-nil): dst is B×C, a is the B×D example panel, b is the C×D
// weight matrix. This is the batched forward pass — each weight row is
// streamed against every example before moving on, so it is read from
// cache C·B times but fetched once.
func MatMulNT32(dst, a, b Mat32, bias Vec32) {
	if dst.Rows != a.Rows || dst.Cols != b.Rows || a.Cols != b.Cols {
		panic("tensor: MatMulNT32 shape mismatch")
	}
	if bias != nil && len(bias) != b.Rows {
		panic("tensor: MatMulNT32 bias length mismatch")
	}
	d := a.Cols
	i := 0
	// Register-block two weight rows per pass: each example element is
	// loaded once and feeds both rows' accumulators, halving the panel
	// traffic per output relative to row-at-a-time dots.
	for ; i+2 <= b.Rows; i += 2 {
		w0, w1 := b.Row(i)[:d], b.Row(i + 1)[:d]
		var off0, off1 float32
		if bias != nil {
			off0, off1 = bias[i], bias[i+1]
		}
		for e := 0; e < a.Rows; e++ {
			ar := a.Row(e)[:d]
			var s0, s1, t0, t1 float32
			k := 0
			for ; k+4 <= d; k += 4 {
				aa, u0, u1 := ar[k:k+4:k+4], w0[k:k+4:k+4], w1[k:k+4:k+4]
				s0 += aa[0]*u0[0] + aa[2]*u0[2]
				t0 += aa[1]*u0[1] + aa[3]*u0[3]
				s1 += aa[0]*u1[0] + aa[2]*u1[2]
				t1 += aa[1]*u1[1] + aa[3]*u1[3]
			}
			for ; k < d; k++ {
				a0 := ar[k]
				s0 += a0 * w0[k]
				s1 += a0 * w1[k]
			}
			out := dst.Row(e)
			out[i] = s0 + t0 + off0
			out[i+1] = s1 + t1 + off1
		}
	}
	if i < b.Rows {
		w := b.Row(i)
		var off float32
		if bias != nil {
			off = bias[i]
		}
		for e := 0; e < a.Rows; e++ {
			dst.Data[e*dst.Cols+i] = Dot32(a.Row(e), w) + off
		}
	}
}

// MatMul32 computes dst ← a·b: dst is B×N, a is B×M, b is M×N. Used by
// the batched backward pass to push a delta panel through Wᵀ… spelled as
// row-panel axpys so the inner loop is contiguous in both b and dst.
func MatMul32(dst, a, b Mat32) {
	if dst.Rows != a.Rows || a.Cols != b.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMul32 shape mismatch")
	}
	for e := 0; e < a.Rows; e++ {
		out := dst.Row(e)
		Zero32(out)
		ar := a.Row(e)
		for i, c := range ar {
			if c != 0 {
				Axpy32(c, b.Row(i), out)
			}
		}
	}
}

// AddOuterPanel32 computes m ← m + alpha·(yᵀ·x), the batched rank-B
// generalization of AddOuter: m is C×D, y is the B×C coefficient panel
// (one softmax/delta row per example), x is the B×D example panel. Each
// destination row accumulates across the whole batch while it is hot.
func AddOuterPanel32(m Mat32, alpha float32, y, x Mat32) {
	if y.Rows != x.Rows || m.Rows != y.Cols || m.Cols != x.Cols {
		panic("tensor: AddOuterPanel32 shape mismatch")
	}
	d := m.Cols
	bn := y.Rows
	yc := y.Cols
	i := 0
	// Register-block two destination rows and four examples per pass. The
	// naive form is a read-modify-write on a weight row per example — one
	// store per multiply-add, which is what bounds the kernel. Folding
	// four examples' contributions into each destination element before it
	// is written back cuts the store traffic 4x while every stream (both
	// rows, all four example rows) stays sequential.
	for ; i+2 <= m.Rows; i += 2 {
		r0, r1 := m.Row(i)[:d], m.Row(i + 1)[:d]
		e := 0
		for ; e+4 <= bn; e += 4 {
			c00, c01 := alpha*y.Data[e*yc+i], alpha*y.Data[(e+1)*yc+i]
			c02, c03 := alpha*y.Data[(e+2)*yc+i], alpha*y.Data[(e+3)*yc+i]
			c10, c11 := alpha*y.Data[e*yc+i+1], alpha*y.Data[(e+1)*yc+i+1]
			c12, c13 := alpha*y.Data[(e+2)*yc+i+1], alpha*y.Data[(e+3)*yc+i+1]
			x0, x1 := x.Row(e)[:d], x.Row(e + 1)[:d]
			x2, x3 := x.Row(e + 2)[:d], x.Row(e + 3)[:d]
			for k := 0; k < d; k++ {
				xv0, xv1, xv2, xv3 := x0[k], x1[k], x2[k], x3[k]
				r0[k] += c00*xv0 + c01*xv1 + c02*xv2 + c03*xv3
				r1[k] += c10*xv0 + c11*xv1 + c12*xv2 + c13*xv3
			}
		}
		for ; e < bn; e++ {
			c0 := alpha * y.Data[e*yc+i]
			c1 := alpha * y.Data[e*yc+i+1]
			xr := x.Row(e)[:d]
			for k := 0; k < d; k++ {
				x0 := xr[k]
				r0[k] += c0 * x0
				r1[k] += c1 * x0
			}
		}
	}
	if i < m.Rows {
		row := m.Row(i)
		for e := 0; e < bn; e++ {
			c := alpha * y.Data[e*yc+i]
			if c != 0 {
				Axpy32(c, x.Row(e), row)
			}
		}
	}
}
