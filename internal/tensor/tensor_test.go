package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"fedprox/internal/frand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randVec(rng *frand.Source, n int) Vec {
	return rng.NormVec(NewVec(n), 0, 1)
}

func TestDotBasics(t *testing.T) {
	if got := Dot(Vec{1, 2, 3}, Vec{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
}

func TestDotSymmetryProperty(t *testing.T) {
	rng := frand.New(1)
	f := func(n uint8) bool {
		m := int(n%20) + 1
		a, b := randVec(rng, m), randVec(rng, m)
		return almostEq(Dot(a, b), Dot(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	rng := frand.New(2)
	f := func(n uint8) bool {
		m := int(n%20) + 1
		a, b := randVec(rng, m), randVec(rng, m)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestSqDistMatchesNorm(t *testing.T) {
	rng := frand.New(3)
	f := func(n uint8) bool {
		m := int(n%20) + 1
		a, b := randVec(rng, m), randVec(rng, m)
		d := NewVec(m)
		Sub(d, a, b)
		return almostEq(SqDist(a, b), Dot(d, d), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAxpyScaleAddSub(t *testing.T) {
	y := Vec{1, 2, 3}
	Axpy(2, Vec{1, 1, 1}, y)
	if y[0] != 3 || y[1] != 4 || y[2] != 5 {
		t.Fatalf("Axpy: %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[2] != 2.5 {
		t.Fatalf("Scale: %v", y)
	}
	dst := NewVec(3)
	Add(dst, Vec{1, 2, 3}, Vec{4, 5, 6})
	if dst[2] != 9 {
		t.Fatalf("Add: %v", dst)
	}
	Sub(dst, dst, dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("aliased Sub: %v", dst)
	}
	AddScaled(dst, Vec{1, 1, 1}, -2, Vec{1, 2, 3})
	if dst[0] != -1 || dst[2] != -5 {
		t.Fatalf("AddScaled: %v", dst)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Vec{1, 2}
	b := Clone(a)
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMeanAndWeightedMean(t *testing.T) {
	vs := []Vec{{1, 2}, {3, 4}, {5, 6}}
	dst := NewVec(2)
	Mean(dst, vs)
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Mean: %v", dst)
	}
	WeightedMean(dst, vs, []float64{1, 0, 1})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("WeightedMean: %v", dst)
	}
	WeightedMean(dst, vs, []float64{1, 0, 0})
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("WeightedMean single: %v", dst)
	}
}

func TestWeightedMeanEqualWeightsIsMean(t *testing.T) {
	rng := frand.New(5)
	f := func(n uint8) bool {
		k := int(n%5) + 1
		vs := make([]Vec, k)
		ws := make([]float64, k)
		for i := range vs {
			vs[i] = randVec(rng, 4)
			ws[i] = 2.5
		}
		m1, m2 := NewVec(4), NewVec(4)
		Mean(m1, vs)
		WeightedMean(m2, vs, ws)
		for j := range m1 {
			if !almostEq(m1[j], m2[j], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean of nothing did not panic")
		}
	}()
	Mean(NewVec(1), nil)
}

func TestWeightedMeanPanics(t *testing.T) {
	cases := []struct {
		vs []Vec
		ws []float64
	}{
		{nil, nil},
		{[]Vec{{1}}, []float64{1, 2}},
		{[]Vec{{1}}, []float64{0}},
		{[]Vec{{1}}, []float64{-1}},
	}
	for i, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			WeightedMean(NewVec(1), tc.vs, tc.ws)
		}()
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	rng := frand.New(7)
	f := func(n uint8) bool {
		m := int(n%10) + 2
		logits := randVec(rng, m)
		Scale(50, logits) // stress stability
		p := NewVec(m)
		Softmax(p, logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{101, 102, 103}
	pa, pb := NewVec(3), NewVec(3)
	Softmax(pa, a)
	Softmax(pb, b)
	for i := range pa {
		if !almostEq(pa[i], pb[i], 1e-12) {
			t.Fatalf("softmax not shift invariant: %v vs %v", pa, pb)
		}
	}
}

func TestLogSumExpStable(t *testing.T) {
	v := Vec{1000, 1000}
	want := 1000 + math.Log(2)
	if got := LogSumExp(v); !almostEq(got, want, 1e-9) {
		t.Fatalf("LogSumExp = %g, want %g", got, want)
	}
	if got := LogSumExp(Vec{-1000, -1000}); !almostEq(got, -1000+math.Log(2), 1e-9) {
		t.Fatalf("LogSumExp underflow: %g", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax(Vec{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d", got)
	}
	if got := ArgMax(Vec{2, 2, 2}); got != 0 {
		t.Fatalf("ArgMax tie = %d, want first index", got)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %g", got)
	}
	if got := Sigmoid(1000); got != 1 {
		t.Fatalf("Sigmoid(1000) = %g", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Fatalf("Sigmoid(-1000) = %g", got)
	}
	// Symmetry: σ(−x) = 1 − σ(x).
	for _, x := range []float64{0.5, 2, 7} {
		if !almostEq(Sigmoid(-x), 1-Sigmoid(x), 1e-12) {
			t.Fatalf("sigmoid symmetry broken at %g", x)
		}
	}
}

func TestMatViewAndAccessors(t *testing.T) {
	m := MatView(Vec{1, 2, 3, 4, 5, 6}, 2, 3)
	if m.At(1, 2) != 6 {
		t.Fatalf("At = %g", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.Data[1] != 9 {
		t.Fatal("Set did not write through")
	}
	row := m.Row(1)
	row[0] = -1
	if m.At(1, 0) != -1 {
		t.Fatal("Row is not a view")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MatView with wrong size did not panic")
		}
	}()
	MatView(Vec{1, 2, 3}, 2, 2)
}

func TestMatVecAgainstNaive(t *testing.T) {
	rng := frand.New(11)
	f := func(a, b uint8) bool {
		r := int(a%8) + 1
		c := int(b%8) + 1
		m := NewMat(r, c)
		rng.NormVec(m.Data, 0, 1)
		x := randVec(rng, c)
		got := NewVec(r)
		MatVec(got, m, x)
		for i := 0; i < r; i++ {
			want := 0.0
			for j := 0; j < c; j++ {
				want += m.At(i, j) * x[j]
			}
			if !almostEq(got[i], want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatTVecIsTranspose(t *testing.T) {
	rng := frand.New(13)
	m := NewMat(3, 4)
	rng.NormVec(m.Data, 0, 1)
	y := randVec(rng, 3)
	got := NewVec(4)
	MatTVec(got, m, y)
	for j := 0; j < 4; j++ {
		want := 0.0
		for i := 0; i < 3; i++ {
			want += m.At(i, j) * y[i]
		}
		if !almostEq(got[j], want, 1e-9) {
			t.Fatalf("MatTVec[%d] = %g, want %g", j, got[j], want)
		}
	}
}

func TestAddOuterRankOne(t *testing.T) {
	m := NewMat(2, 3)
	AddOuter(m, 2, Vec{1, 2}, Vec{3, 4, 5})
	if m.At(0, 0) != 6 || m.At(1, 2) != 20 {
		t.Fatalf("AddOuter: %v", m.Data)
	}
	// alpha·y[i] == 0 fast path must not corrupt other rows.
	AddOuter(m, 1, Vec{0, 1}, Vec{1, 1, 1})
	if m.At(0, 0) != 6 || m.At(1, 0) != 13 {
		t.Fatalf("AddOuter zero row: %v", m.Data)
	}
}

func TestMatShapePanics(t *testing.T) {
	m := NewMat(2, 3)
	for i, fn := range []func(){
		func() { MatVec(NewVec(3), m, NewVec(3)) },
		func() { MatVec(NewVec(2), m, NewVec(2)) },
		func() { MatTVec(NewVec(2), m, NewVec(2)) },
		func() { AddOuter(m, 1, NewVec(3), NewVec(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMatVecAddCombines(t *testing.T) {
	m := MatView(Vec{1, 0, 0, 1}, 2, 2)
	dst := NewVec(2)
	MatVecAdd(dst, m, Vec{3, 4}, Vec{10, 20})
	if dst[0] != 13 || dst[1] != 24 {
		t.Fatalf("MatVecAdd: %v", dst)
	}
}

func TestZeroFill(t *testing.T) {
	v := Vec{1, 2, 3}
	Fill(v, 7)
	if v[0] != 7 || v[2] != 7 {
		t.Fatalf("Fill: %v", v)
	}
	Zero(v)
	if v[1] != 0 {
		t.Fatalf("Zero: %v", v)
	}
}

func BenchmarkDot1k(b *testing.B) {
	rng := frand.New(1)
	x, y := randVec(rng, 1024), randVec(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func BenchmarkMatVec128(b *testing.B) {
	rng := frand.New(1)
	m := NewMat(128, 128)
	rng.NormVec(m.Data, 0, 1)
	x := randVec(rng, 128)
	dst := NewVec(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(dst, m, x)
	}
}
