package tensor

import "sync"

// vecPool recycles parameter-length float64 scratch across the hot
// per-dispatch paths (solver gradients, codec delta scratch, decoded
// views, broadcast copies). Within one run every vector is model-sized,
// so the pool converges on a small set of buffers and steady-state
// allocation becomes O(model), independent of how many dispatches a run
// serves — the property the BenchmarkDeviceDispatch allocs/op gate
// holds.
var vecPool sync.Pool // *Vec boxes holding a pooled vector

// boxPool recycles the *Vec boxes themselves: storing a slice in a
// sync.Pool needs a heap box for the header, and allocating a fresh box
// per PutVec would put one allocation right back on the path the pool
// exists to clear. Boxes shuttle between the two pools instead.
var boxPool sync.Pool

// GetVec returns a length-n vector with unspecified contents. Callers
// must fully overwrite it (or Zero it) before reading. The vector may
// be handed to PutVec when the caller is done; never Put a vector that
// something else still references.
func GetVec(n int) Vec {
	if p, ok := vecPool.Get().(*Vec); ok {
		v := *p
		*p = nil
		boxPool.Put(p)
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make(Vec, n)
}

// PutVec returns a vector to the pool. The caller must not touch v
// afterwards. Put only vectors with exclusive ownership — a slice that
// escaped into a retained structure (a Reply, a link's prev shadow)
// must be dropped to the garbage collector instead.
func PutVec(v Vec) {
	if cap(v) == 0 {
		return
	}
	v = v[:cap(v)]
	p, ok := boxPool.Get().(*Vec)
	if !ok {
		p = new(Vec)
	}
	*p = v
	vecPool.Put(p)
}
