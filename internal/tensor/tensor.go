// Package tensor provides the dense float64 vector and matrix kernels that
// every model and solver in this repository is built on.
//
// All state lives in flat []float64 slices. Matrices are row-major views
// over a flat slice, which lets a whole model's parameters occupy one
// contiguous vector — the representation the federated server aggregates,
// and the representation the proximal term ‖w − wᵗ‖² is computed over.
package tensor

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec = []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func Clone(v Vec) Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0.
func Zero(v Vec) {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to c.
func Fill(v Vec, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b Vec) float64 {
	mustSameLen(a, b)
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vec) float64 {
	return math.Sqrt(Dot(v, v))
}

// SqDist returns ‖a − b‖², the squared Euclidean distance — the quantity
// scaled by μ/2 in the FedProx subproblem.
func SqDist(a, b Vec) float64 {
	mustSameLen(a, b)
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Axpy computes y ← y + alpha·x in place.
func Axpy(alpha float64, x, y Vec) {
	mustSameLen(x, y)
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale computes v ← alpha·v in place.
func Scale(alpha float64, v Vec) {
	for i := range v {
		v[i] *= alpha
	}
}

// Add computes dst ← a + b. dst may alias a or b.
func Add(dst, a, b Vec) {
	mustSameLen(a, b)
	mustSameLen(dst, a)
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst ← a − b. dst may alias a or b.
func Sub(dst, a, b Vec) {
	mustSameLen(a, b)
	mustSameLen(dst, a)
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// AddScaled computes dst ← a + alpha·b. dst may alias a or b.
func AddScaled(dst, a Vec, alpha float64, b Vec) {
	mustSameLen(a, b)
	mustSameLen(dst, a)
	for i := range a {
		dst[i] = a[i] + alpha*b[i]
	}
}

// Mean computes the arithmetic mean of the vectors in vs into dst.
// It panics if vs is empty or lengths differ.
func Mean(dst Vec, vs []Vec) {
	if len(vs) == 0 {
		panic("tensor: Mean of no vectors")
	}
	Zero(dst)
	for _, v := range vs {
		Axpy(1, v, dst)
	}
	Scale(1/float64(len(vs)), dst)
}

// WeightedMean computes dst ← Σᵢ wᵢ·vsᵢ / Σᵢ wᵢ, the weighted model average
// used by the paper's second sampling scheme. It panics if the weights are
// empty, mismatched, or sum to a non-positive value.
func WeightedMean(dst Vec, vs []Vec, ws []float64) {
	if len(vs) == 0 || len(vs) != len(ws) {
		panic("tensor: WeightedMean with mismatched inputs")
	}
	total := 0.0
	for _, w := range ws {
		total += w
	}
	if total <= 0 {
		panic("tensor: WeightedMean with non-positive total weight")
	}
	Zero(dst)
	for i, v := range vs {
		Axpy(ws[i]/total, v, dst)
	}
}

// Softmax writes the softmax of logits into dst (which may alias logits),
// using the max-subtraction trick for numerical stability.
func Softmax(dst, logits Vec) {
	mustSameLen(dst, logits)
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// LogSumExp returns log Σ exp(v_i), stabilized.
func LogSumExp(v Vec) float64 {
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	sum := 0.0
	for _, x := range v {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// ArgMax returns the index of the largest element of v.
func ArgMax(v Vec) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	_ = v[best]
	return best
}

// Sigmoid returns 1/(1+e^−x), saturating gracefully at the float64 limits.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Tanh returns the hyperbolic tangent of x.
func Tanh(x float64) float64 { return math.Tanh(x) }

func mustSameLen(a, b Vec) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", len(a), len(b)))
	}
}

// Mat is a dense row-major matrix view over a flat vector.
type Mat struct {
	Rows, Cols int
	Data       Vec // len == Rows*Cols
}

// NewMat returns a zero matrix of the given shape backed by fresh storage.
func NewMat(rows, cols int) Mat {
	return Mat{Rows: rows, Cols: cols, Data: NewVec(rows * cols)}
}

// MatView wraps an existing slice as a rows×cols matrix. It panics if the
// slice has the wrong length.
func MatView(data Vec, rows, cols int) Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: MatView %dx%d over %d elements", rows, cols, len(data)))
	}
	return Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a view (mutations are visible in m).
func (m Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MatVec computes dst ← M·x. It panics on shape mismatch.
func MatVec(dst Vec, m Mat, x Vec) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("tensor: MatVec shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MatVecAdd computes dst ← M·x + b.
func MatVecAdd(dst Vec, m Mat, x, b Vec) {
	MatVec(dst, m, x)
	Axpy(1, b, dst)
}

// MatTVec computes dst ← Mᵀ·y (accumulating from zero).
func MatTVec(dst Vec, m Mat, y Vec) {
	if len(y) != m.Rows || len(dst) != m.Cols {
		panic("tensor: MatTVec shape mismatch")
	}
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		yi := y[i]
		if yi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * yi
		}
	}
}

// AddOuter computes M ← M + alpha·(y xᵀ), the rank-one update that backs
// every weight-matrix gradient in this repository.
func AddOuter(m Mat, alpha float64, y, x Vec) {
	if len(y) != m.Rows || len(x) != m.Cols {
		panic("tensor: AddOuter shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		ayi := alpha * y[i]
		if ayi == 0 {
			continue
		}
		for j := range row {
			row[j] += ayi * x[j]
		}
	}
}
