package tensor

import "sync"

// The float32 twins of pool.go's vecPool/boxPool: the f32 dispatch path
// (narrowed views, f32 gradients, panel scratch) recycles through its
// own pools so f32 and f64 buffers never mix capacities.
var (
	vec32Pool sync.Pool // *Vec32 boxes holding a pooled vector
	box32Pool sync.Pool
)

// GetVec32 returns a length-n float32 vector with unspecified contents.
// Callers must fully overwrite it (or Zero32 it) before reading.
func GetVec32(n int) Vec32 {
	if p, ok := vec32Pool.Get().(*Vec32); ok {
		v := *p
		*p = nil
		box32Pool.Put(p)
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make(Vec32, n)
}

// PutVec32 returns a vector to the pool. The caller must not touch v
// afterwards, and must only Put vectors it exclusively owns.
func PutVec32(v Vec32) {
	if cap(v) == 0 {
		return
	}
	v = v[:cap(v)]
	p, ok := box32Pool.Get().(*Vec32)
	if !ok {
		p = new(Vec32)
	}
	*p = v
	vec32Pool.Put(p)
}
