package tier

import (
	"strings"
	"testing"
)

func TestEnabled(t *testing.T) {
	for _, tc := range []struct {
		f, d int
		want bool
	}{
		{0, 0, false}, {1, 1, false}, {2, 0, false}, {0, 2, false},
		{2, 1, true}, {8, 1, true}, {32, 2, true},
	} {
		if got := (Topology{FanOut: tc.f, Depth: tc.d}).Enabled(); got != tc.want {
			t.Errorf("Enabled(f=%d d=%d) = %v, want %v", tc.f, tc.d, got, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		topo    Topology
		k, n    int
		wantErr string
	}{
		{"flat ok", Topology{}, 10, 30, ""},
		{"flat negative", Topology{FanOut: -1}, 10, 30, "non-negative"},
		{"divides", Topology{FanOut: 8, Depth: 1}, 64, 1000, ""},
		{"deep divides", Topology{FanOut: 8, Depth: 2}, 64, 1000, ""},
		{"no divide", Topology{FanOut: 8, Depth: 1}, 60, 1000, "must divide"},
		{"deep no divide", Topology{FanOut: 32, Depth: 2}, 64, 100000, "must divide"},
		{"too few devices", Topology{FanOut: 8, Depth: 1}, 64, 63, "cannot host"},
		{"overflow", Topology{FanOut: 1 << 16, Depth: 4}, 64, 100, "overflows"},
	} {
		err := tc.topo.Validate(tc.k, tc.n)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && (err == nil || !strings.Contains(err.Error(), tc.wantErr)):
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestCohortSizes(t *testing.T) {
	// d=1: root contacts K/F edges, each edge selects F devices.
	topo := Topology{FanOut: 32, Depth: 1}
	if got := topo.RootCohort(64); got != 2 {
		t.Errorf("RootCohort = %d, want 2", got)
	}
	if got := topo.Leaves(64); got != 2 {
		t.Errorf("Leaves = %d, want 2", got)
	}
	// d=2: root cohort shrinks by another factor of F; leaf count is
	// unchanged (each interior node fans into F leaves).
	deep := Topology{FanOut: 8, Depth: 2}
	if got := deep.RootCohort(64); got != 1 {
		t.Errorf("deep RootCohort = %d, want 1", got)
	}
	if got := deep.Leaves(64); got != 8 {
		t.Errorf("deep Leaves = %d, want 8", got)
	}
}

func TestPartition(t *testing.T) {
	// Ranges tile [0, n) contiguously; sizes differ by at most one, with
	// the larger parts first.
	n, parts := 103, 8
	next, minSz, maxSz := 0, n, 0
	for i := 0; i < parts; i++ {
		lo, hi := Partition(n, parts, i)
		if lo != next {
			t.Fatalf("part %d starts at %d, want %d", i, lo, next)
		}
		if hi <= lo {
			t.Fatalf("part %d is empty: [%d, %d)", i, lo, hi)
		}
		if sz := hi - lo; sz < minSz {
			minSz = sz
		} else if sz > maxSz {
			maxSz = sz
		}
		next = hi
	}
	if next != n {
		t.Fatalf("parts end at %d, want %d", next, n)
	}
	if maxSz-minSz > 1 {
		t.Fatalf("part sizes range [%d, %d], want spread ≤ 1", minSz, maxSz)
	}
}

func TestSuffix(t *testing.T) {
	if got := (Topology{}).Suffix(); got != "" {
		t.Errorf("flat suffix = %q, want empty", got)
	}
	if got := (Topology{FanOut: 8, Depth: 2}).Suffix(); got != " [tier f=8 d=2]" {
		t.Errorf("suffix = %q", got)
	}
}
