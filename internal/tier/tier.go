// Package tier describes hierarchical aggregation topologies: a root
// coordinator fans into tiers of edge aggregators, which fan into the
// device fleet. The package holds the pure topology math — tree shape,
// cohort sizes, device partitioning, and the latency model pricing the
// aggregator-to-aggregator network legs — and nothing else; the tiered
// drivers (core.RunTiered, the fednet process tree) consume it.
//
// A Topology is parameterized by the per-window participation K (the
// run's ClientsPerRound) rather than the population: every aggregator
// contacts FanOut of its children per window except the root, which
// contacts all K/FanOut^Depth of its tier-1 children, so the total
// device cohort stays exactly K and the root's per-window ingress
// shrinks from K device replies to K/FanOut edge replies — the
// hierarchy's bandwidth payoff.
package tier

import (
	"fmt"

	"fedprox/internal/vtime"
)

// Topology is a uniform aggregation tree between the root and the
// device fleet. The zero value (and any FanOut ≤ 1 or Depth ≤ 0) is the
// flat topology: no aggregators, devices fan directly into the root.
type Topology struct {
	// FanOut F is how many children each aggregator contacts per
	// window: leaf aggregators select F devices from the devices they
	// own; interior aggregators contact all F of their children. ≤ 1
	// disables tiering.
	FanOut int
	// Depth is the number of aggregator tiers between the root and the
	// devices (1 = root → edges → devices). ≤ 0 disables tiering.
	Depth int
	// Model prices the aggregator-leg transfers (root ↔ edge, edge ↔
	// edge) on encoded bytes, exactly as Config.VTime.Model prices the
	// device legs. Nil makes aggregator legs instantaneous; it is only
	// consulted on virtual-time runs.
	Model vtime.LatencyModel
}

// Enabled reports whether the topology actually interposes aggregators.
func (t Topology) Enabled() bool { return t.FanOut > 1 && t.Depth > 0 }

// width returns FanOut^Depth, the device cohort one root-child subtree
// covers, and false on overflow or when tiering is disabled.
func (t Topology) width() (int, bool) {
	if !t.Enabled() {
		return 0, false
	}
	w := 1
	for i := 0; i < t.Depth; i++ {
		if w > 1<<30/t.FanOut {
			return 0, false
		}
		w *= t.FanOut
	}
	return w, true
}

// Validate reports the first configuration error for a run contacting
// clientsPerRound devices per window over numDevices devices, or nil.
// The disabled (flat) topology is always valid.
func (t Topology) Validate(clientsPerRound, numDevices int) error {
	if !t.Enabled() {
		if t.FanOut < 0 || t.Depth < 0 {
			return fmt.Errorf("tier: FanOut and Depth must be non-negative, got %d/%d", t.FanOut, t.Depth)
		}
		return nil
	}
	w, ok := t.width()
	if !ok {
		return fmt.Errorf("tier: FanOut^Depth overflows (%d^%d)", t.FanOut, t.Depth)
	}
	if clientsPerRound%w != 0 {
		return fmt.Errorf("tier: FanOut^Depth (%d^%d = %d) must divide ClientsPerRound %d",
			t.FanOut, t.Depth, w, clientsPerRound)
	}
	if numDevices < clientsPerRound {
		return fmt.Errorf("tier: %d devices cannot host a %d-device cohort", numDevices, clientsPerRound)
	}
	return nil
}

// RootCohort returns how many tier-1 children the root contacts per
// window: K/FanOut^Depth. Call only on a validated, enabled topology.
func (t Topology) RootCohort(clientsPerRound int) int {
	w, _ := t.width()
	return clientsPerRound / w
}

// Leaves returns the number of leaf aggregators, K/FanOut — independent
// of depth, since each interior tier multiplies the node count by
// FanOut while the root cohort divides it by the same factor. Call only
// on a validated, enabled topology.
func (t Topology) Leaves(clientsPerRound int) int {
	return clientsPerRound / t.FanOut
}

// Suffix is the History-label marker of a tiered run.
func (t Topology) Suffix() string {
	if !t.Enabled() {
		return ""
	}
	return fmt.Sprintf(" [tier f=%d d=%d]", t.FanOut, t.Depth)
}

// Partition returns the half-open global device range [lo, hi) owned by
// leaf aggregator i of parts, splitting n devices contiguously and as
// evenly as possible (the first n%parts leaves own one extra device).
func Partition(n, parts, i int) (lo, hi int) {
	base, rem := n/parts, n%parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
