// Package core implements the paper's contribution: the FedProx federated
// optimization framework (Algorithm 2) and FedAvg (Algorithm 1) as its
// μ = 0 / drop-stragglers special case.
//
// A run simulates T communication rounds. Each round the server selects K
// of N devices, ships the global model wᵗ, lets each selected device run
// its local solver on the subproblem h_k(w; wᵗ) = F_k(w) + (μ/2)‖w − wᵗ‖²
// for as many epochs as its (simulated) systems resources allow, and
// aggregates the returned models. Systems heterogeneity is simulated
// exactly as in Section 5.2: a fixed fraction of the selected devices are
// designated stragglers and draw a uniformly random epoch budget in
// [1, E]; FedAvg drops them, FedProx aggregates their partial solutions.
//
// The environment (device selection, straggler designation, epoch draws,
// and mini-batch order) is derived only from Config.Seed, the round index,
// and the device index — never from the algorithm under test — so two
// runs that differ only in method hyperparameters see byte-identical
// randomness, the comparison protocol of Section 5.1.
package core

import (
	"fmt"
	"runtime"

	"fedprox/internal/comm"
	"fedprox/internal/obs"
	"fedprox/internal/privacy"
	"fedprox/internal/solver"
	"fedprox/internal/tensor"
	"fedprox/internal/vtime"
)

// SamplingScheme selects how devices are sampled and how their returned
// models are aggregated. The two schemes are compared in Appendix C.3.4
// (Figure 12).
type SamplingScheme int

const (
	// UniformWeightedAvg samples K devices uniformly without replacement
	// and averages returned models with weights proportional to local
	// sample counts n_k. This is the scheme of McMahan et al. that the
	// paper's main experiments use.
	UniformWeightedAvg SamplingScheme = iota
	// WeightedSimpleAvg samples K devices with probability proportional to
	// p_k = n_k/n (without replacement) and takes the unweighted average,
	// as written in Algorithms 1 and 2.
	WeightedSimpleAvg
)

// String implements fmt.Stringer.
func (s SamplingScheme) String() string {
	switch s {
	case UniformWeightedAvg:
		return "uniform-sampling+weighted-average"
	case WeightedSimpleAvg:
		return "weighted-sampling+simple-average"
	default:
		return fmt.Sprintf("SamplingScheme(%d)", int(s))
	}
}

// FoldWeightScheme selects the per-update aggregation weight within the
// sampling scheme's fold (the w_k in Σ w_k·Δ_k / Σ w_k under uniform
// sampling; WeightedSimpleAvg ignores it by construction).
type FoldWeightScheme int

const (
	// WeightBySize weighs each update by the device's local sample count
	// n_k — the paper's prescription, which folds partial solutions at
	// full weight and lets the proximal term absorb their inexactness.
	WeightBySize FoldWeightScheme = iota
	// WeightByEpochs weighs each update by the local epochs the device
	// actually ran (Reply.EpochsDone), the ablation of the ROADMAP's
	// epoch-budget-aware-weights item: if partial solutions should count
	// less, the weights — not the prox term — would do the work.
	WeightByEpochs
)

// String implements fmt.Stringer.
func (f FoldWeightScheme) String() string {
	switch f {
	case WeightBySize:
		return "weight-by-size"
	case WeightByEpochs:
		return "weight-by-epochs"
	default:
		return fmt.Sprintf("FoldWeightScheme(%d)", int(f))
	}
}

// StragglerPolicy selects what the server does with devices that could not
// complete all E local epochs within the round.
type StragglerPolicy int

const (
	// DropStragglers discards straggler updates entirely (FedAvg's
	// behaviour, per Bonawitz et al.).
	DropStragglers StragglerPolicy = iota
	// AggregatePartial incorporates whatever partial solution each
	// straggler produced (FedProx's behaviour: tolerating partial work).
	AggregatePartial
)

// String implements fmt.Stringer.
func (p StragglerPolicy) String() string {
	switch p {
	case DropStragglers:
		return "drop-stragglers"
	case AggregatePartial:
		return "aggregate-partial"
	default:
		return fmt.Sprintf("StragglerPolicy(%d)", int(p))
	}
}

// Config fully describes one federated optimization run.
type Config struct {
	// Rounds is the number of communication rounds T.
	Rounds int
	// ClientsPerRound is K, the number of devices selected per round
	// (paper: 10 everywhere).
	ClientsPerRound int
	// LocalEpochs is E, the epoch budget of a non-straggler (paper: 20,
	// or 1 for the Appendix C.3.2 low-capability setting).
	LocalEpochs int
	// LearningRate is the local SGD step size η.
	LearningRate float64
	// BatchSize is the local mini-batch size (paper: 10).
	BatchSize int
	// Mu is the proximal coefficient μ. 0 with DropStragglers recovers
	// FedAvg exactly.
	Mu float64
	// AdaptiveMu enables the Section 5.3.2 heuristic: μ starts at Mu, is
	// increased by MuStep when the global loss increases, and decreased by
	// MuStep after MuPatience consecutive decreases.
	AdaptiveMu bool
	// MuStep is the adaptive-μ adjustment (paper: 0.1). Zero selects 0.1.
	MuStep float64
	// MuPatience is the consecutive-decrease count before μ is lowered
	// (paper: 5). Zero selects 5.
	MuPatience int
	// Sampling selects the sampling/aggregation scheme.
	Sampling SamplingScheme
	// FoldWeight selects the per-update weight inside the fold: n_k (the
	// paper default) or the realized local epochs — the epoch-budget-
	// aware-weights ablation. Applies to the synchronous aggregate and
	// the asynchronous staleness-damped fold alike; WeightedSimpleAvg
	// ignores it (its fold is unweighted by construction).
	FoldWeight FoldWeightScheme
	// Straggler selects the straggler policy (drop vs aggregate).
	Straggler StragglerPolicy
	// StragglerFraction is the fraction of selected devices designated as
	// stragglers each round (paper: 0, 0.5, 0.9).
	StragglerFraction float64
	// EvalEvery is the round interval between full-network evaluations;
	// round 0 and the final round are always evaluated. Zero selects 1.
	EvalEvery int
	// TrackDissimilarity additionally records the gradient-variance
	// dissimilarity at every evaluation (the bottom rows of Figures 2, 6,
	// 8, 12). It costs one full-network gradient pass per evaluation.
	TrackDissimilarity bool
	// TrackGamma records the mean achieved γ-inexactness across the
	// selected devices each round (one full local gradient pass per
	// selected device per round).
	TrackGamma bool
	// Seed drives every random draw of the simulated environment.
	Seed uint64
	// Parallelism bounds concurrent local solves within a round;
	// 0 selects GOMAXPROCS.
	Parallelism int
	// Solver is the local solver devices run on their subproblems; nil
	// selects mini-batch SGD (the paper's choice). The framework is
	// solver-agnostic (Section 3.2), so any solver.LocalSolver works.
	Solver solver.LocalSolver
	// Privacy, when non-nil, clips and noises every device update before
	// aggregation (the DP composition point of footnote 1).
	Privacy *privacy.Mechanism
	// Checkpointer, when non-nil, enables crash-safe persistence: the run
	// resumes from the checkpointer's saved state if one exists and saves
	// every CheckpointEvery rounds (see internal/checkpoint for the file
	// implementation).
	Checkpointer Checkpointer
	// CheckpointEvery is the checkpoint interval in rounds; 0 selects
	// EvalEvery.
	CheckpointEvery int
	// Codec, when enabled (non-empty Name), compresses every model
	// transfer: each contacted device trains from the decoded broadcast
	// and the server aggregates decoded uplink updates, with
	// UplinkBytes/DownlinkBytes recording the encoded wire sizes. The
	// zero value keeps today's uncompressed path and byte accounting.
	//
	// With a codec the link model is explicit — only contacted devices
	// move bytes or spend epochs, so under DropStragglers the
	// coordinator skips stragglers outright (as the fednet runtime
	// does) instead of charging them a download and wasted epochs.
	// Codec.Seed zero derives the rounding streams from Seed.
	Codec comm.Spec
	// DownlinkCodec, when enabled, overrides Codec for the broadcast
	// direction only, giving the two link directions different codecs —
	// the deployment shape where the device uplink is the scarce
	// resource (e.g. topk uplink over a raw or quantized downlink; topk
	// on the chained broadcast starves devices of most coordinate
	// updates and slows convergence badly). Requires Codec to be
	// enabled.
	DownlinkCodec comm.Spec
	// Capability, when non-nil, replaces the designated-straggler
	// simulation with the capability-driven model of internal/syshet: each
	// device's epoch budget is derived from its simulated hardware and the
	// round's global clock cycle, and a device is a straggler exactly when
	// its budget falls short of LocalEpochs. StragglerFraction is ignored
	// when set.
	Capability CapabilityModel
	// DeviceBudget, when non-nil, models device-side variable local work
	// — the paper's partial-solution axis. Each Dispatch carries the
	// budget's epoch allowance for its (round-or-sequence, device) pair,
	// clamped to [1, Epochs]; the device runtime truncates its solve to
	// it and reports the realized work in Reply.EpochsDone, which the
	// coordinator charges instead of the dispatched target and records
	// in the Point.MeanEpochsDone / PartialFraction columns.
	//
	// Unlike Capability — which re-plans the round's epoch targets
	// server-side and lets DropStragglers discard the short devices —
	// the budget is enforced by the device: the server only learns the
	// realized work after the fact, so partial solutions must be
	// aggregated (or wasted), never pre-dropped. It applies to every
	// executor (sync, virtual-time async, fednet: the budget rides the
	// wire as TrainRequest.EpochBudget) and composes with Capability,
	// codecs, and the clock policies. syshet.Fleet implements the
	// interface.
	DeviceBudget CapabilityModel
	// Async selects the coordinator's aggregation discipline. The zero
	// value is the paper's synchronous round protocol. AsyncTotal and
	// Buffered are executed by the fednet runtime against the real
	// clock, or by the simulator against the virtual clock when
	// VTime.Model is set (core.Run rejects async configs without a
	// latency model — simulated time needs a clock for replies to race
	// on). In the async modes Rounds counts model-version milestones
	// (ClientsPerRound folds each for AsyncTotal, one BufferK-reply
	// flush each for Buffered), so the total device work matches a sync
	// run of the same Rounds.
	Async AsyncConfig
	// Trace, when non-nil, receives one obs.Event at every coordinator
	// decision point: run start/done, round open/close, each dispatch,
	// each reply with its disposition (folded or a drop reason),
	// staleness, realized epochs and wire bytes, folds, evaluations,
	// checkpoints, and worker eviction/re-admission. Events are stamped
	// with the run's virtual clock (NaN when the run has no clock — wire
	// drivers wrap the sink in obs.WallClock to stamp wall seconds
	// instead). Every executor serializes coordinator events, and their
	// payloads derive only from Seed, so a deterministic sink such as
	// obs.JSONL produces byte-identical traces for same-seed sim/vtime
	// runs. Tracing never alters the run itself: History and the model
	// trajectory are bit-identical with and without a sink.
	//
	// Trace covers the coordinator half only; the device runtime's
	// events are a DeviceOptions.Trace concern (fednet workers), because
	// the simulator solves dispatches in parallel and device-side
	// emission order there would not be deterministic.
	Trace obs.Sink
	// Precision selects the arithmetic width of the device-side hot path.
	// The zero value (tensor.F64) is the framework's float64 contract.
	// tensor.F32 routes the whole per-dispatch pipeline through the
	// float32 kernels: parameters are narrowed once on arrival, the local
	// solve (prox term and γ probe included) runs on batched f32 kernels,
	// and the uplink encodes straight from the f32 solution — wire scales
	// and dense payloads ship at 4 bytes per word. Results are widened
	// exactly once at the reply boundary, and evaluation always happens at
	// full width (the eval link strips precision on both endpoints), so an
	// f32 run's loss is measured in the same arithmetic as its f64
	// baseline.
	//
	// F32 requires an f32-capable model (model.Model32) and local solver
	// (solver.LocalSolver32; nil selects SGD, which is capable), no
	// Privacy mechanism (the DP hook runs at full width), and no topk
	// codec — the run is rejected up front rather than silently falling
	// back, because the wire format is part of the negotiated protocol.
	Precision tensor.Precision
	// VTime, when enabled (non-nil Model), runs the simulation on the
	// internal/vtime virtual clock: synchronous rounds are charged their
	// critical-path duration (slowest contacted device's round-trip plus
	// the evaluation broadcast), asynchronous modes execute as a
	// deterministic discrete-event simulation with replies arriving in
	// latency order, and every evaluated Point records the virtual
	// wall-clock (Point.VirtualSeconds) with the reply trace in
	// History.Arrivals.
	VTime VTimeConfig
}

// VTimeConfig attaches a virtual-time latency model and its
// codec-aware straggler policies to a run.
type VTimeConfig struct {
	// Model yields per-device compute and transfer durations (see
	// internal/vtime; vtime.Model composes a compute model such as
	// syshet.Fleet with a jittered network). Non-nil enables virtual
	// time.
	Model vtime.LatencyModel
	// DeadlineSeconds, when positive, drops any reply arriving later
	// than this after its round's broadcast began (sync) or its own
	// dispatch (async). The dropped device's epochs are wasted; its
	// transfer bytes stay charged (the data moved, the server ignored
	// it). A deadline-based drop is the clock-native form of the
	// paper's straggler policy: the tail is cut by time, not by a
	// designated epoch budget.
	DeadlineSeconds float64
	// RoundBytes, when positive, is a wire-byte budget per synchronous
	// round or per asynchronous milestone window: replies are accepted
	// in arrival order until the window's cumulative training transfer
	// bytes (downlink + uplink) exceed the budget, and the remaining
	// tail is dropped as waste. With codecs configured this is the
	// ROADMAP's codec-aware straggler policy — the tail is cut by
	// deadline bytes, not epochs.
	RoundBytes int64
}

// Enabled reports whether a virtual-time model is attached.
func (v VTimeConfig) Enabled() bool { return v.Model != nil }

// Validate reports the first configuration error, or nil. The zero
// (disabled) config is valid.
func (v VTimeConfig) Validate() error {
	if !v.Enabled() {
		if v.DeadlineSeconds != 0 || v.RoundBytes != 0 {
			return fmt.Errorf("core: VTime deadline/byte policies require VTime.Model")
		}
		return nil
	}
	if v.DeadlineSeconds < 0 {
		return fmt.Errorf("core: VTime.DeadlineSeconds must be non-negative, got %g", v.DeadlineSeconds)
	}
	if v.RoundBytes < 0 {
		return fmt.Errorf("core: VTime.RoundBytes must be non-negative, got %d", v.RoundBytes)
	}
	return nil
}

// Checkpointer persists and restores a run's resumable state. Load
// returning all zero values means "no checkpoint yet — start fresh".
// Implementations live outside this package (internal/checkpoint) so the
// core stays dependency-free.
//
// state is the coordinator's opaque resumable extras — cumulative cost
// counters plus, for codec runs, the serialized link state (rounding
// streams, error-feedback residuals, broadcast shadows). Implementations
// persist it verbatim; a codec run refuses to resume from a checkpoint
// without it.
type Checkpointer interface {
	// Load returns the next round to execute, the global parameters, the
	// history so far, and the opaque coordinator state, or zero values
	// when nothing is saved.
	Load() (nextRound int, params []float64, hist *History, state []byte, err error)
	// Save persists the state reached after round nextRound-1.
	Save(nextRound int, params []float64, hist *History, state []byte) error
}

// CapabilityModel yields per-(round, device) epoch budgets for the
// capability-driven systems-heterogeneity simulation. Implementations
// must be deterministic in (round, device).
type CapabilityModel interface {
	// EpochBudget returns how many of the requested epochs the device
	// completes before the round's global clock cycle expires, in [0,
	// requested].
	EpochBudget(round, device, requested int) int
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("core: Rounds must be positive, got %d", c.Rounds)
	case c.ClientsPerRound <= 0:
		return fmt.Errorf("core: ClientsPerRound must be positive, got %d", c.ClientsPerRound)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("core: LocalEpochs must be positive, got %d", c.LocalEpochs)
	case c.LearningRate <= 0:
		return fmt.Errorf("core: LearningRate must be positive, got %g", c.LearningRate)
	case c.BatchSize <= 0:
		return fmt.Errorf("core: BatchSize must be positive, got %d", c.BatchSize)
	case c.Mu < 0:
		return fmt.Errorf("core: Mu must be non-negative, got %g", c.Mu)
	case c.StragglerFraction < 0 || c.StragglerFraction > 1:
		return fmt.Errorf("core: StragglerFraction must be in [0,1], got %g", c.StragglerFraction)
	case c.FoldWeight != WeightBySize && c.FoldWeight != WeightByEpochs:
		return fmt.Errorf("core: unknown FoldWeight scheme %d", int(c.FoldWeight))
	}
	if err := c.Async.Validate(); err != nil {
		return err
	}
	if c.Async.Enabled() {
		// Neither executor of the async modes implements these knobs:
		// fednet rejects them outright, and the virtual-time path's
		// per-dispatch schedule has no place for round-scoped capability
		// budgets, loss-driven mu control, or per-round gamma probes.
		// Reject rather than silently ignore.
		switch {
		case c.Capability != nil:
			return fmt.Errorf("core: capability models apply only to synchronous rounds (model compute heterogeneity with VTime.Model instead)")
		case c.AdaptiveMu:
			return fmt.Errorf("core: adaptive mu applies only to synchronous rounds")
		case c.TrackGamma:
			return fmt.Errorf("core: gamma tracking applies only to synchronous rounds")
		}
	}
	if err := c.VTime.Validate(); err != nil {
		return err
	}
	if c.VTime.Enabled() && c.Checkpointer != nil {
		return fmt.Errorf("core: virtual-time runs and checkpointing cannot be combined (the clock and arrival trace are not checkpointed)")
	}
	if c.Privacy != nil {
		if err := c.Privacy.Validate(); err != nil {
			return err
		}
	}
	if err := c.Precision.Validate(); err != nil {
		return err
	}
	if c.Precision == tensor.F32 && c.Privacy != nil {
		return fmt.Errorf("core: Precision f32 cannot be combined with a privacy mechanism (the DP hook runs at full width)")
	}
	if c.Codec.Enabled() {
		// Specs are validated at the run's precision (CommSpecs stamps it
		// into both directions), so an f32 run with a topk codec is
		// rejected here rather than at link setup.
		cc := c.Codec
		cc.Precision = c.Precision
		if err := cc.Validate(); err != nil {
			return err
		}
		dc := c.DownlinkCodec
		if dc.Enabled() {
			dc.Precision = c.Precision
		}
		if err := dc.Validate(); err != nil {
			return err
		}
	} else if c.DownlinkCodec.Enabled() {
		return fmt.Errorf("core: DownlinkCodec requires Codec to be enabled")
	}
	return nil
}

// CommSpecs returns the per-direction codec specs with defaults applied
// and rounding seeds derived from the run seed when unset — the resolved
// form the simulator and the fednet runtime share so their codec streams
// match. Both are zero when no codec is configured.
func (c Config) CommSpecs() (down, up comm.Spec) {
	if !c.Codec.Enabled() {
		return comm.Spec{}, comm.Spec{}
	}
	up = c.Codec
	if up.Seed == 0 {
		up.Seed = c.Seed
	}
	up.Precision = c.Precision
	down = up
	if c.DownlinkCodec.Enabled() {
		down = c.DownlinkCodec
		if down.Seed == 0 {
			down.Seed = c.Seed
		}
		down.Precision = c.Precision
	}
	return down.WithDefaults(), up.WithDefaults()
}

// WithDefaults returns c with every zero-valued optional knob replaced
// by its default. This is the one place the zero-selects-default rules
// live: EvalEvery 0 → evaluate every round, MuStep/MuPatience 0 → the
// adaptive-μ controller's paper settings, Parallelism 0 → GOMAXPROCS.
// Every constructor path (NewCoordinator, the drivers) normalizes
// through here, so callers may hand-build a Config with zeros and get
// the documented behavior; Validate accepts everything WithDefaults
// produces from a valid base (asserted by a table-driven test).
func (c Config) WithDefaults() Config {
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.MuStep == 0 {
		c.MuStep = 0.1
	}
	if c.MuPatience == 0 {
		c.MuPatience = 5
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// DefaultConfig returns the paper's baseline configuration, fully
// normalized: FedAvg at the synthetic-suite scale (200 rounds, 10
// clients per round, 20 local epochs, lr 0.01) with every optional knob
// resolved by WithDefaults. It validates as-is; experiments override
// fields from here instead of re-stating the defaults.
func DefaultConfig() Config {
	return FedAvg(200, 10, 20, 0.01).WithDefaults()
}

// FedAvg returns a configuration implementing Algorithm 1: μ = 0, SGD
// local solver, stragglers dropped.
func FedAvg(rounds, clients, epochs int, lr float64) Config {
	return Config{
		Rounds:          rounds,
		ClientsPerRound: clients,
		LocalEpochs:     epochs,
		LearningRate:    lr,
		BatchSize:       10,
		Mu:              0,
		Straggler:       DropStragglers,
		Sampling:        UniformWeightedAvg,
		Seed:            7,
	}
}

// FedProx returns a configuration implementing Algorithm 2 with the given
// proximal coefficient: partial work aggregated, SGD local solver.
func FedProx(rounds, clients, epochs int, lr, mu float64) Config {
	c := FedAvg(rounds, clients, epochs, lr)
	c.Mu = mu
	c.Straggler = AggregatePartial
	return c
}
