package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/obs"
	"fedprox/internal/obs/tracefile"
	"fedprox/internal/solver"
)

// panicSolver fails the test the moment any local solve runs — the
// what-if acceptance criterion is "zero solver invocations".
type panicSolver struct{}

// Name deliberately claims "sgd" so Label(cfg) — and with it the
// run-start trace event — is identical to a run with the default solver.
func (panicSolver) Name() string { return "sgd" }

func (panicSolver) Solve(model.Model, []data.Example, []float64, solver.Config, int, *frand.Source) []float64 {
	panic("core: replay invoked a local solver")
}

// replaySyncConfig is a synchronous virtual-time run with a deadline
// tight enough to cut the 10x tail but loose enough to keep the cohort.
func replaySyncConfig(n int) Config {
	cfg := vtimeAsyncConfig(SyncRounds, n)
	cfg.Async = AsyncConfig{}
	cfg.VTime.DeadlineSeconds = 2
	return cfg
}

// recordTraced runs cfg over the tiny workload with a JSONL trace
// attached and returns the history plus the decoded event stream — the
// decode side of the round trip is exercised on every recording.
func recordTraced(t *testing.T, cfg Config) (*History, []obs.Event, []byte) {
	t.Helper()
	mdl, fed := tinyWorkload()
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	cfg.Trace = j
	h, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	evs, err := tracefile.ReadAll(&buf)
	if err != nil {
		t.Fatalf("decoding own trace: %v", err)
	}
	return h, evs, raw
}

// replayTraced replays recorded under cfg with its own trace attached.
func replayTraced(t *testing.T, cfg Config, recorded []obs.Event) (*History, []byte) {
	t.Helper()
	mdl, fed := tinyWorkload()
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	cfg.Trace = j
	h, err := Replay(mdl, fed.Fleet(), cfg, recorded)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	return h, buf.Bytes()
}

// assertArrivalEquivalence is the replay-equivalence contract on the
// History: the fold schedule and every arrival-derived column re-derive
// exactly; only the loss/accuracy metrics (which replay cannot know)
// may differ.
func assertArrivalEquivalence(t *testing.T, rec, rep *History) {
	t.Helper()
	if rec.Label != rep.Label {
		t.Fatalf("label %q replayed as %q", rec.Label, rep.Label)
	}
	if len(rec.Arrivals) != len(rep.Arrivals) {
		t.Fatalf("arrivals: %d recorded, %d replayed", len(rec.Arrivals), len(rep.Arrivals))
	}
	for i := range rec.Arrivals {
		if rec.Arrivals[i] != rep.Arrivals[i] {
			t.Fatalf("arrival %d: recorded %+v, replayed %+v", i, rec.Arrivals[i], rep.Arrivals[i])
		}
	}
	if len(rec.Points) != len(rep.Points) {
		t.Fatalf("points: %d recorded, %d replayed", len(rec.Points), len(rep.Points))
	}
	bits := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	for i := range rec.Points {
		p, q := rec.Points[i], rep.Points[i]
		if p.Round != q.Round || p.Participants != q.Participants || p.Cost != q.Cost {
			t.Fatalf("point %d: recorded %+v, replayed %+v", i, p, q)
		}
		for _, f := range [][2]float64{
			{p.VirtualSeconds, q.VirtualSeconds},
			{p.MeanStaleness, q.MeanStaleness}, {p.MaxStaleness, q.MaxStaleness},
			{p.MeanEpochsDone, q.MeanEpochsDone}, {p.PartialFraction, q.PartialFraction},
			{p.Mu, q.Mu},
		} {
			if !bits(f[0], f[1]) {
				t.Fatalf("point %d arrival-derived fields diverge: recorded %+v, replayed %+v", i, p, q)
			}
		}
		if !math.IsNaN(q.TrainLoss) || !math.IsNaN(q.TestAcc) {
			t.Fatalf("point %d: replay fabricated metrics %g/%g", i, q.TrainLoss, q.TestAcc)
		}
	}
}

// assertTraceEquivalence compares two trace streams event-by-event over
// the shared schema: every field of every event must match (NaN-equal
// floats), except an eval event's loss/acc — the metrics replay does
// not recompute.
func assertTraceEquivalence(t *testing.T, recRaw, repRaw []byte) {
	t.Helper()
	rec, err := tracefile.ReadAll(bytes.NewReader(recRaw))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tracefile.ReadAll(bytes.NewReader(repRaw))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(rep) {
		t.Fatalf("trace length: %d recorded, %d replayed", len(rec), len(rep))
	}
	for i := range rec {
		a, b := rec[i], rep[i]
		if a.Kind != b.Kind {
			t.Fatalf("event %d: kind %v replayed as %v", i, a.Kind, b.Kind)
		}
		for _, f := range obs.Fields(a.Kind) {
			if a.Kind == obs.KindEval && (f.Key == "loss" || f.Key == "acc") {
				continue
			}
			var eq bool
			switch f.Type {
			case obs.FieldInt:
				eq = f.Int(&a) == f.Int(&b)
			case obs.FieldInt64:
				eq = f.Int64(&a) == f.Int64(&b)
			case obs.FieldFloat:
				eq = math.Float64bits(f.Float(&a)) == math.Float64bits(f.Float(&b))
			case obs.FieldString:
				eq = f.Str(&a) == f.Str(&b)
			}
			if !eq {
				t.Fatalf("event %d (%v): field %q diverges\nrecorded %s\nreplayed %s",
					i, a.Kind, f.Key,
					obs.AppendEvent(nil, a), obs.AppendEvent(nil, b))
			}
		}
	}
}

// TestReplayEquivalence is the tentpole's replay criterion: feeding a
// recorded trace back through a fresh coordinator under the recorded
// policy reproduces the original fold schedule, every arrival-derived
// History column, and the full event stream — with zero local solves.
func TestReplayEquivalence(t *testing.T) {
	mdl, fed := tinyWorkload()
	n := fed.NumDevices()
	// A per-round wire budget worth ~3 of the 5 cohort replies.
	roundBytes := int64(3 * 2 * mdl.NumParams() * 8)
	cases := []struct {
		name     string
		cfg      Config
		wantDrop DropReason // a drop the policy must actually produce
	}{
		{"sync-deadline", replaySyncConfig(n), DropDeadline},
		{"sync-round-bytes", func() Config {
			cfg := vtimeAsyncConfig(SyncRounds, n)
			cfg.Async = AsyncConfig{}
			cfg.VTime.RoundBytes = roundBytes // cuts the arrival-order tail
			return cfg
		}(), DropBudget},
		{"async-total", vtimeAsyncConfig(AsyncTotal, n), ArrivalFolded},
		{"async-buffered", func() Config {
			cfg := vtimeAsyncConfig(Buffered, n)
			cfg.Async.BufferK = 3
			return cfg
		}(), ArrivalFolded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, evs, recRaw := recordTraced(t, tc.cfg)
			if tc.wantDrop != ArrivalFolded {
				hit := false
				for _, a := range rec.Arrivals {
					if a.Drop == tc.wantDrop {
						hit = true
						break
					}
				}
				if !hit {
					t.Fatalf("recording produced no %v drops — the policy never bit", tc.wantDrop)
				}
			}
			cfg := tc.cfg
			cfg.Solver = panicSolver{} // replay must never solve
			rep, repRaw := replayTraced(t, cfg, evs)
			assertArrivalEquivalence(t, rec, rep)
			assertTraceEquivalence(t, recRaw, repRaw)
		})
	}
}

// TestReplayWhatIf sweeps alternative policies over one recording: the
// replays complete without a single solver call and actually change the
// schedule — the point of a what-if.
func TestReplayWhatIf(t *testing.T) {
	mdl, fed := tinyWorkload()
	n := fed.NumDevices()
	roundBytes := int64(3 * 2 * mdl.NumParams() * 8)
	rec, evs, _ := recordTraced(t, replaySyncConfig(n))

	alternatives := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tighter-deadline", func(c *Config) { c.VTime.DeadlineSeconds = 0.9 }},
		{"round-bytes", func(c *Config) {
			c.VTime.DeadlineSeconds = 0
			c.VTime.RoundBytes = roundBytes
		}},
		{"async-alpha", func(c *Config) {
			c.VTime.DeadlineSeconds = 0
			c.Async = AsyncConfig{Mode: AsyncTotal, Alpha: 0.5, StalenessExponent: 1}
		}},
		{"buffered-k", func(c *Config) {
			c.VTime.DeadlineSeconds = 0
			c.Async = AsyncConfig{Mode: Buffered, BufferK: 3}
		}},
	}
	for _, alt := range alternatives {
		t.Run(alt.name, func(t *testing.T) {
			cfg := replaySyncConfig(n)
			alt.mutate(&cfg)
			cfg.Solver = panicSolver{}
			rep, _ := replayTraced(t, cfg, evs)
			if len(rep.Arrivals) == 0 {
				t.Fatal("what-if replay recorded no arrivals")
			}
			if rep.Final().VirtualSeconds <= 0 {
				t.Fatalf("what-if replay has no virtual duration: %+v", rep.Final())
			}
			same := len(rep.Arrivals) == len(rec.Arrivals)
			if same {
				for i := range rep.Arrivals {
					if rep.Arrivals[i] != rec.Arrivals[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatal("alternative policy reproduced the recorded schedule exactly — what-if had no effect")
			}
		})
	}
}

// TestReplayRejections: configurations whose behavior replay cannot
// re-derive are refused up front with a pointed error.
func TestReplayRejections(t *testing.T) {
	_, fed := tinyWorkload()
	n := fed.NumDevices()
	_, evs, _ := recordTraced(t, replaySyncConfig(n))

	reject := func(name, wantSub string, mutate func(*Config)) {
		t.Run(name, func(t *testing.T) {
			mdl, fed := tinyWorkload()
			cfg := replaySyncConfig(n)
			mutate(&cfg)
			_, err := Replay(mdl, fed.Fleet(), cfg, evs)
			if err == nil {
				t.Fatal("replay accepted a config it cannot re-derive")
			}
			if !strings.Contains(err.Error(), wantSub) {
				t.Fatalf("rejection %q does not mention %q", err, wantSub)
			}
		})
	}
	reject("no-vtime", "VTime.Model", func(c *Config) { c.VTime = VTimeConfig{} })
	reject("adaptive-mu", "adaptive-mu", func(c *Config) { c.AdaptiveMu = true })
	reject("track-gamma", "gamma", func(c *Config) { c.TrackGamma = true })

	t.Run("fleet-size-mismatch", func(t *testing.T) {
		mdl, fed := tinyWorkload()
		cfg := replaySyncConfig(n)
		small := fed.Fleet()
		// Replay against a fleet with one device fewer than recorded.
		_, err := Replay(mdl, truncatedFleet{small, small.NumDevices() - 1}, cfg, evs)
		if err == nil || !strings.Contains(err.Error(), "devices") {
			t.Fatalf("fleet mismatch not rejected: %v", err)
		}
	})

	t.Run("untimed-trace", func(t *testing.T) {
		mdl, fed := tinyWorkload()
		clockless := FedProx(3, 5, 3, 0.01, 1)
		var buf bytes.Buffer
		clockless.Trace = obs.NewJSONL(&buf)
		if _, err := Run(mdl, fed, clockless); err != nil {
			t.Fatal(err)
		}
		untimed, err := tracefile.ReadAll(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(mdl, fed.Fleet(), replaySyncConfig(n), untimed); err == nil {
			t.Fatal("replay accepted an untimed trace")
		}
	})

	t.Run("sync-with-worker-loss", func(t *testing.T) {
		mdl, fed := tinyWorkload()
		withLoss := append(append([]obs.Event(nil), evs...), obs.Event{
			Kind: obs.KindWorkerLost, Time: 1, Device: 0,
		})
		if _, err := Replay(mdl, fed.Fleet(), replaySyncConfig(n), withLoss); err == nil {
			t.Fatal("sync replay accepted worker-lost events")
		}
	})
}

// truncatedFleet narrows a fleet to its first n devices.
type truncatedFleet struct {
	Fleet
	n int
}

func (f truncatedFleet) NumDevices() int { return f.n }
