package core

// idleSet tracks which devices are idle (registered, live, and without
// an outstanding dispatch) as a membership bitmap plus a Fenwick tree
// over it. The async scheduler needs two operations the previous
// map[int]bool could not provide at population scale: iterate-free
// uniform sampling and ordered enumeration. With the tree, "the j-th
// smallest idle id" is O(log N), so drawing a uniform device is
// O(log N) instead of the O(N log N) collect-and-sort per dispatch —
// the difference between tens and millions of devices per vtime run.
//
// kth(j) returns exactly the element at index j of the sorted idle-id
// slice the old implementation built, so selection streams consume
// identical draws and histories stay bit-identical.
type idleSet struct {
	in    []bool  // membership bitmap
	tree  []int32 // Fenwick (binary indexed) tree over membership, 1-based
	count int
}

func newIdleSet(n int) *idleSet {
	return &idleSet{in: make([]bool, n), tree: make([]int32, n+1)}
}

func (s *idleSet) len() int { return s.count }

func (s *idleSet) has(id int) bool { return s.in[id] }

func (s *idleSet) add(id int) {
	if s.in[id] {
		return
	}
	s.in[id] = true
	s.count++
	for i := id + 1; i < len(s.tree); i += i & -i {
		s.tree[i]++
	}
}

func (s *idleSet) remove(id int) {
	if !s.in[id] {
		return
	}
	s.in[id] = false
	s.count--
	for i := id + 1; i < len(s.tree); i += i & -i {
		s.tree[i]--
	}
}

// fill marks every device idle in O(N): bitmap set plus one bottom-up
// tree build (tree[i] counts the i&-i members ending at i).
func (s *idleSet) fill() {
	n := len(s.in)
	for i := range s.in {
		s.in[i] = true
	}
	s.count = n
	for i := 1; i <= n; i++ {
		s.tree[i] = int32(i & -i)
	}
}

// kth returns the j-th smallest idle id (0-based). It panics if
// j >= len(), matching a slice index out of range on the old path.
func (s *idleSet) kth(j int) int {
	if j < 0 || j >= s.count {
		panic("core: idleSet rank out of range")
	}
	// Descend the Fenwick tree: find the smallest prefix holding j+1
	// members.
	target := int32(j + 1)
	pos := 0
	bit := 1
	for bit<<1 <= len(s.in) {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := pos + bit
		if next < len(s.tree) && s.tree[next] < target {
			target -= s.tree[next]
			pos = next
		}
	}
	return pos // pos is 1-based index of the member, minus one = id
}

// ascending calls fn(id) for every idle id in ascending order. The
// weighted sampling mode still needs the full ordered idle population
// (its draw folds a float prefix sum that no tree can replicate
// bit-for-bit), so it remains O(N) per dispatch — documented on
// Config.Sampling.
func (s *idleSet) ascending(fn func(id int)) {
	for id, in := range s.in {
		if in {
			fn(id)
		}
	}
}
