package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fedprox/internal/data"
	"fedprox/internal/metrics"
	"fedprox/internal/model"
	"fedprox/internal/solver"
	"fedprox/internal/tensor"
)

// Run executes one federated optimization run of cfg on (m, fed) and
// returns the evaluated trajectory.
func Run(m model.Model, fed *data.Federated, cfg Config) (*History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Async.Enabled() {
		if !cfg.VTime.Enabled() {
			return nil, fmt.Errorf("core: %s aggregation in the simulator requires a virtual-time latency model (set Config.VTime.Model, see internal/vtime); the fednet runtime executes it against the real clock", cfg.Async.Mode)
		}
		return runAsyncVTime(m, fed, cfg)
	}
	cfg = cfg.withDefaults()
	env := NewEnv(fed, cfg)
	w := m.InitParams(env.InitRNG())

	var links *commLinks
	if cfg.Codec.Enabled() {
		var err error
		if links, err = newCommLinks(cfg.CommSpecs()); err != nil {
			return nil, err
		}
	}

	var muc *muController
	if cfg.AdaptiveMu {
		muc = newMuController(cfg.Mu, cfg.MuStep, cfg.MuPatience)
	}

	// With a virtual-time model the synchronous protocol gains duration
	// semantics: every round charges its critical path to the clock and
	// the clock-native straggler policies apply (see vsim.go).
	var vt *vsim
	if cfg.VTime.Enabled() {
		vt = newVsim(cfg.VTime, int64(m.NumParams()*8))
	}

	hist := &History{Label: Label(cfg)}
	var cost Cost
	record := func(round int, mu, gamma float64, participants int) error {
		// With a codec the network evaluates at the decoded eval
		// broadcast — the view the distributed workers hold — and the
		// broadcast's encoded size is charged once (the eval link is
		// shared, not per-device). See recordPoint for the shared
		// evaluation and virtual-clock semantics.
		p, err := recordPoint(m, fed, w, links, vt, cfg.TrackDissimilarity, round, participants, mu, &cost)
		if err != nil {
			return err
		}
		p.MeanGamma = gamma
		hist.Points = append(hist.Points, p)
		return nil
	}

	startRound := 0
	if cfg.Checkpointer != nil {
		next, saved, savedHist, err := cfg.Checkpointer.Load()
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint load: %w", err)
		}
		if saved != nil {
			if len(saved) != len(w) {
				return nil, fmt.Errorf("core: checkpoint has %d params, model has %d", len(saved), len(w))
			}
			copy(w, saved)
			startRound = next
			if savedHist != nil {
				hist.Points = append(hist.Points, savedHist.Points...)
				// Checkpointed histories are always synchronous and
				// clock-free (Validate rejects async and vtime runs with a
				// checkpointer); checkpoints written before the staleness
				// and virtual-time columns existed decode them as 0, which
				// would masquerade as tracked values.
				for i := range hist.Points {
					hist.Points[i].MeanStaleness = math.NaN()
					hist.Points[i].MaxStaleness = math.NaN()
					hist.Points[i].VirtualSeconds = math.NaN()
				}
			}
		}
	}
	ckptEvery := cfg.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = cfg.EvalEvery
	}

	mu0 := cfg.Mu
	if startRound == 0 {
		if err := record(0, mu0, math.NaN(), 0); err != nil {
			return nil, err
		}
	}

	for t := startRound; t < cfg.Rounds; t++ {
		mu := cfg.Mu
		if muc != nil {
			mu = muc.Mu()
		}
		updates, gammaMean, err := runRound(m, fed, env, t, mu, w, links, vt)
		if err != nil {
			return nil, err
		}
		cost.Add(updates.cost)

		if len(updates.params) > 0 {
			aggregate(w, updates, cfg.Sampling)
		}

		// The adaptive-μ controller observes the loss every round; other
		// configurations only pay for evaluation on recorded rounds.
		needEval := (t+1)%cfg.EvalEvery == 0 || t == cfg.Rounds-1
		if muc != nil {
			muc.Observe(metrics.GlobalLoss(m, fed, w))
		}
		if needEval {
			if err := record(t+1, mu, gammaMean, len(updates.params)); err != nil {
				return nil, err
			}
		}
		if cfg.Checkpointer != nil && ((t+1)%ckptEvery == 0 || t == cfg.Rounds-1) {
			if err := cfg.Checkpointer.Save(t+1, w, hist); err != nil {
				return nil, fmt.Errorf("core: checkpoint save: %w", err)
			}
		}
	}
	if vt != nil {
		hist.Arrivals = vt.arrivals
	}
	return hist, nil
}

// updateSet collects the models returned by one round's participants plus
// the round's resource accounting.
type updateSet struct {
	params  [][]float64
	weights []float64 // n_k of each participant
	cost    Cost
}

// runRound performs the local solves of round t from the broadcast global
// model wt at proximal coefficient mu and returns the set of updates to
// aggregate plus the mean achieved γ (NaN unless tracking is enabled).
// With links non-nil every transfer passes through the configured codec.
// With vt non-nil the round is timed on the virtual clock and the
// clock-native straggler policies may drop the arrival-order tail.
func runRound(m model.Model, fed *data.Federated, env *Env, t int, mu float64, wt []float64, links *commLinks, vt *vsim) (updateSet, float64, error) {
	cfg := env.Config()
	selected := env.SelectDevices(t)
	epochs, straggler := env.StragglerPlan(t, selected)
	dropped := func(i int) bool { return cfg.Straggler == DropStragglers && straggler[i] }

	// Broadcast: with a codec, each contacted device receives an encoded
	// (possibly lossy) view of wᵗ over its downlink and trains from that
	// view. Encoding is sequential — it advances per-device link state —
	// but the per-device codecs it creates are then only read in the
	// parallel phase below.
	views := make([][]float64, len(selected))
	downBytes := make([]int64, len(selected))
	for i, k := range selected {
		views[i] = wt
		if links == nil || dropped(i) {
			continue
		}
		view, nbytes, err := links.broadcast(k, wt)
		if err != nil {
			return updateSet{}, 0, err
		}
		views[i] = view
		downBytes[i] = nbytes
	}

	type result struct {
		w       []float64
		nk      float64
		gamma   float64
		upBytes int64
		ok      bool
		err     error
	}
	results := make([]result, len(selected))

	scfg := solver.Config{
		LearningRate: cfg.LearningRate,
		BatchSize:    cfg.BatchSize,
		Mu:           mu,
	}
	local := cfg.Solver
	if local == nil {
		local = solver.SGDSolver{}
	}

	parallelFor(len(selected), cfg.Parallelism, func(i int) {
		k := selected[i]
		if dropped(i) {
			return // dropped: the server never sees this device's work
		}
		shard := fed.Shards[k]
		// Every device trains from its view of the broadcast wᵗ (wt itself
		// without a codec); the view is read-only until all workers in this
		// round finish.
		view := views[i]
		wk := local.Solve(m, shard.Train, view, scfg, epochs[i], env.BatchRNG(t, k))
		if cfg.Privacy != nil {
			cfg.Privacy.Apply(wk, view, t, k)
		}
		res := result{nk: float64(len(shard.Train)), ok: true}
		if cfg.TrackGamma {
			// γ measures the device's true local solution against the
			// broadcast it received, before any uplink loss.
			res.gamma = solver.Gamma(m, shard.Train, wk, view, scfg)
		}
		if links != nil {
			wkHat, nbytes, err := links.uplink(k, wk, view)
			if err != nil {
				results[i] = result{err: err}
				return
			}
			wk = wkHat
			res.upBytes = nbytes
		}
		res.w = wk
		results[i] = res
	})

	for _, r := range results {
		if r.err != nil {
			return updateSet{}, 0, r.err
		}
	}

	// With a virtual clock, time the round: replies race to the server in
	// latency order, the deadline/byte-budget policies cut the tail, and
	// the round's critical path lands on the clock.
	var vdrop []DropReason
	if vt != nil {
		okFlags := make([]bool, len(selected))
		upB := make([]int64, len(selected))
		for i, r := range results {
			okFlags[i] = r.ok
			upB[i] = r.upBytes
		}
		vdrop = vt.planRound(t, selected, epochs, downBytes, upB, okFlags)
	}
	vDropped := func(i int) bool { return vdrop != nil && results[i].ok && vdrop[i] != ArrivalFolded }

	var set updateSet
	// Resource accounting. Without a codec this is the historical model:
	// every selected device downloads wᵗ and performs its epoch budget
	// (real devices can't know in advance they'll be dropped); only
	// aggregated devices upload, and dropped stragglers' epochs are wasted
	// work — the systems cost of FedAvg's policy. With a codec the link is
	// explicit: only contacted devices move bytes or spend epochs, and the
	// byte counts are the encoded wire sizes. Replies cut by a
	// virtual-time policy keep their transfer charges — the bytes moved —
	// except a lost reply's uplink, which never reached the server.
	if links == nil {
		paramBytes := int64(m.NumParams() * 8)
		for i := range selected {
			set.cost.DownlinkBytes += paramBytes
			set.cost.DeviceEpochs += epochs[i]
			if dropped(i) {
				set.cost.WastedEpochs += epochs[i]
			} else if vdrop == nil || vdrop[i] != DropLost {
				set.cost.UplinkBytes += paramBytes
			}
		}
	} else {
		for i := range selected {
			if dropped(i) {
				continue
			}
			set.cost.DownlinkBytes += downBytes[i]
			set.cost.DeviceEpochs += epochs[i]
		}
	}
	gammaSum, gammaN := 0.0, 0
	for i, r := range results {
		if !r.ok {
			continue
		}
		if vDropped(i) {
			set.cost.WastedEpochs += epochs[i]
			if vdrop[i] != DropLost {
				set.cost.UplinkBytes += r.upBytes
			}
			continue
		}
		set.cost.UplinkBytes += r.upBytes
		set.params = append(set.params, r.w)
		set.weights = append(set.weights, r.nk)
		if cfg.TrackGamma {
			gammaSum += r.gamma
			gammaN++
		}
	}
	gamma := math.NaN()
	if gammaN > 0 {
		gamma = gammaSum / float64(gammaN)
	}
	return set, gamma, nil
}

// aggregate folds the round's updates into w in place.
func aggregate(w []float64, set updateSet, scheme SamplingScheme) {
	switch scheme {
	case WeightedSimpleAvg:
		tensor.Mean(w, set.params)
	default:
		tensor.WeightedMean(w, set.params, set.weights)
	}
}

// parallelFor runs fn(i) for i in [0, n) on at most limit workers
// (GOMAXPROCS when limit <= 0).
func parallelFor(n, limit int, fn func(i int)) {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Label renders the conventional method name for a configuration, e.g.
// "FedAvg" or "FedProx(mu=1)". Non-default local solvers are appended as
// a suffix, e.g. "FedProx(mu=1)+adam".
func Label(cfg Config) string {
	var base string
	switch {
	case cfg.AdaptiveMu:
		base = fmt.Sprintf("FedProx(adaptive mu0=%g)", cfg.Mu)
	case cfg.Mu == 0 && cfg.Straggler == DropStragglers:
		base = "FedAvg"
	case cfg.Mu == 0:
		base = "FedProx(mu=0)"
	default:
		base = fmt.Sprintf("FedProx(mu=%g)", cfg.Mu)
	}
	if cfg.Solver != nil && cfg.Solver.Name() != "sgd" {
		base += "+" + cfg.Solver.Name()
	}
	if cfg.Codec.Enabled() {
		base += " @" + cfg.Codec.String()
		if cfg.DownlinkCodec.Enabled() && cfg.DownlinkCodec != cfg.Codec {
			base += "/down:" + cfg.DownlinkCodec.String()
		}
	}
	if cfg.Async.Enabled() {
		a := cfg.Async.WithDefaults(cfg.ClientsPerRound)
		base += fmt.Sprintf(" [%s a=%g p=%g", a.Mode, a.Alpha, a.StalenessExponent)
		if a.Mode == Buffered {
			base += fmt.Sprintf(" K=%d", a.BufferK)
		}
		base += "]"
	}
	if cfg.VTime.Enabled() {
		base += " [vtime]"
	}
	return base
}
