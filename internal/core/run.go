package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"fedprox/internal/data"
	"fedprox/internal/metrics"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
	"fedprox/internal/vtime"
)

// Fleet is the lazy population view the in-process drivers run over:
// population size plus materialize-shard-on-demand. It is an alias for
// data.Fleet (the metrics package shares it without an import cycle);
// any fully materialized *data.Federated adapts via its Fleet method,
// and generators like synthetic.NewFleet implement it natively so a
// 10^5–10^6-device run never holds the population's examples at once.
type Fleet = data.Fleet

// Run executes one federated optimization run of cfg on (m, fed) and
// returns the evaluated trajectory. It is RunFleet over the eager Fleet
// view of fed; results are bit-identical to pre-Fleet versions of this
// API.
func Run(m model.Model, fed *data.Federated, cfg Config) (*History, error) {
	return RunFleet(m, fed.Fleet(), cfg)
}

// RunFleet executes one federated optimization run of cfg over a lazy
// fleet and returns the evaluated trajectory.
//
// RunFleet is the in-process driver of the shared core.Coordinator and
// core.Device: the coordinator makes every server-side decision
// (selection, straggler policies, aggregation, accounting) and one
// Device hosting every fleet device serves the device side (decode,
// solve, privacy, encode). This loop only moves events between the two —
// parallel HandleDispatch calls for Dispatch, metric passes for
// Evaluate/ObserveLoss, and virtual-clock charges for AdvanceClock when
// a latency model is attached. Per-round memory is O(cohort): shards
// are materialized per dispatch and evaluation streams over the fleet.
func RunFleet(m model.Model, fl Fleet, cfg Config) (*History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Async.Enabled() {
		if !cfg.VTime.Enabled() {
			return nil, fmt.Errorf("core: %s aggregation in the simulator requires a virtual-time latency model (set Config.VTime.Model, see internal/vtime); the fednet runtime executes it against the real clock", cfg.Async.Mode)
		}
		return runAsyncVTime(m, fl, cfg)
	}

	coord, dev, err := newSimPair(m, fl, cfg)
	if err != nil {
		return nil, err
	}
	// With a virtual-time model the synchronous protocol gains duration
	// semantics: every round charges its critical path to the clock and
	// the clock-native straggler policies apply.
	var vt *vtimer
	if cfg.VTime.Enabled() {
		vt = newVtimer(cfg.VTime, int64(m.NumParams()*8))
		coord.Tick(vt.eng.Now())
	}

	cmds, err := coord.Start()
	if err != nil {
		return nil, err
	}
	for {
		var dispatches []Dispatch
		var next []Command
		for _, cmd := range cmds {
			switch v := cmd.(type) {
			case Dispatch:
				dispatches = append(dispatches, v)
			case Evaluate:
				if vt != nil {
					// Eval traffic is charged on the virtual clock too, so
					// eval cadence affects deadlines consistently with the
					// analytic byte accounting.
					vt.chargeEval(v.WireBytes)
					coord.Tick(vt.eng.Now())
				}
				more, err := coord.EvalDone(simEval(m, fl, v))
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			case ObserveLoss:
				more, err := coord.LossObserved(metrics.FleetLoss(m, fl, v.Params))
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			case AdvanceClock:
				if vt != nil {
					vt.eng.Advance(v.Seconds)
					coord.Tick(vt.eng.Now())
				}
			case Checkpoint:
				// Persisted by the coordinator; nothing to execute.
			case Done:
				return coord.History(), nil
			}
		}
		if len(dispatches) > 0 {
			replies, err := runDispatches(dev, cfg.Parallelism, vt, dispatches)
			if err != nil {
				return nil, err
			}
			for _, r := range replies {
				more, err := coord.HandleReply(r)
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			}
		} else if len(next) == 0 {
			return nil, errors.New("core: coordinator stalled with no commands")
		}
		cmds = next
	}
}

// newSimPair builds the two halves of an in-process run: a coordinator
// with every fleet device registered as one in-process worker, and one
// core.Device hosting the whole fleet lazily — the same device runtime
// the fednet workers wrap, so device-side behavior cannot drift between
// the simulator and the deployment. With a codec configured the device
// gets its own link endpoint (the simulator's link state lives where the
// deployment's does), and the pair is bound so checkpoints capture both
// endpoints' codec state.
func newSimPair(m model.Model, fl Fleet, cfg Config) (*Coordinator, *Device, error) {
	coord, err := NewCoordinator(m, cfg, CoordinatorOptions{NumDevices: fl.NumDevices()})
	if err != nil {
		return nil, nil, err
	}
	dev := NewFleetDevice(m, fl, DeviceOptions{
		Solver:     cfg.Solver,
		Privacy:    cfg.Privacy,
		TrackGamma: cfg.TrackGamma,
		Precision:  cfg.Precision,
	})
	if cfg.Codec.Enabled() {
		down, up := cfg.CommSpecs()
		if err := dev.InstallLinks(down, up); err != nil {
			return nil, nil, err
		}
	}
	coord.BindDevice(dev)
	if _, err := coord.RegisterWorker(dev.Hosted()); err != nil {
		return nil, nil, err
	}
	return coord, dev, nil
}

// simEval answers an Evaluate command with in-process metric passes over
// the whole network, at the (possibly codec-decoded) eval broadcast
// view. The passes stream over the fleet, so evaluation memory is
// O(workers × shard).
func simEval(m model.Model, fl Fleet, v Evaluate) EvalResult {
	res := EvalResult{
		Loss: metrics.FleetLoss(m, fl, v.Params),
		Acc:  metrics.FleetAccuracy(m, fl, v.Params),
	}
	if v.TrackDissimilarity {
		res.GradVar, res.B = metrics.FleetDissimilarity(m, fl, v.Params)
	}
	return res
}

// runDispatches serves one synchronous round's dispatches in parallel on
// the shared device runtime (the decode → solve → probe → encode path
// lives entirely in core.Device) and, when a latency model is attached,
// stamps each reply with its virtual transfer timing (sequence numbers
// allocated in selection order, the ordering rule the arrival race
// uses). The compute leg is charged for the epochs the device actually
// ran — a device-side budget that truncates the solve also shortens the
// round's critical path.
func runDispatches(dev *Device, parallelism int, vt *vtimer, ds []Dispatch) ([]Reply, error) {
	replies := make([]Reply, len(ds))
	errs := make([]error, len(ds))
	parallelFor(len(ds), parallelism, func(i int) {
		replies[i], errs[i] = dev.HandleDispatch(ds[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if vt != nil {
		lat := vt.cfg.Model
		for i, d := range ds {
			seq := vt.seq
			vt.seq++
			replies[i].Timed = true
			replies[i].Seq = seq
			replies[i].Rel = lat.DownlinkSeconds(seq, d.Device, d.DownBytes) +
				lat.ComputeSeconds(d.Round, d.Device, replies[i].EpochsDone) +
				lat.UplinkSeconds(seq, d.Device, vt.uplinkBytes(replies[i]))
			replies[i].Lost = lat.Dropped(seq, d.Device)
		}
	}
	return replies, nil
}

// vtimer is a driver's virtual-time state: the engine, the latency
// model, and the per-transfer sequence counters. The policy decisions
// (deadline, byte budget) live in the coordinator; this type only turns
// bytes and epochs into seconds.
type vtimer struct {
	cfg        VTimeConfig
	eng        *vtime.Engine
	paramBytes int64
	seq        int // per-dispatch jitter/loss stream index
	evalSeq    int // per-eval-broadcast stream index
}

func newVtimer(cfg VTimeConfig, paramBytes int64) *vtimer {
	return &vtimer{cfg: cfg, eng: vtime.NewEngine(), paramBytes: paramBytes}
}

// uplinkBytes returns a reply's encoded uplink size, falling back to the
// uncompressed parameter bytes for raw in-process replies — shared by
// the synchronous and asynchronous virtual-time drivers so the two
// transfer charges cannot drift.
func (v *vtimer) uplinkBytes(r Reply) int64 {
	if r.Update != nil {
		return r.Update.WireBytes()
	}
	return v.paramBytes
}

// chargeEval advances the clock by the evaluation broadcast's transfer
// time. Eval traffic rides the shared downlink (vtime.EvalDevice), so a
// codec that shrinks the eval broadcast also shrinks the time it costs —
// the virtual-clock counterpart of Cost.EvalBytes.
func (v *vtimer) chargeEval(bytes int64) {
	v.eng.Advance(v.cfg.Model.DownlinkSeconds(v.evalSeq, vtime.EvalDevice, bytes))
	v.evalSeq++
}

// parallelFor runs fn(i) for i in [0, n) on at most limit workers
// (GOMAXPROCS when limit <= 0).
func parallelFor(n, limit int, fn func(i int)) {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Label renders the conventional method name for a configuration, e.g.
// "FedAvg" or "FedProx(mu=1)". Non-default local solvers are appended as
// a suffix, e.g. "FedProx(mu=1)+adam".
func Label(cfg Config) string {
	var base string
	switch {
	case cfg.AdaptiveMu:
		base = fmt.Sprintf("FedProx(adaptive mu0=%g)", cfg.Mu)
	case cfg.Mu == 0 && cfg.Straggler == DropStragglers:
		base = "FedAvg"
	case cfg.Mu == 0:
		base = "FedProx(mu=0)"
	default:
		base = fmt.Sprintf("FedProx(mu=%g)", cfg.Mu)
	}
	if cfg.Solver != nil && cfg.Solver.Name() != "sgd" {
		base += "+" + cfg.Solver.Name()
	}
	if cfg.Codec.Enabled() {
		base += " @" + cfg.Codec.String()
		if cfg.DownlinkCodec.Enabled() && cfg.DownlinkCodec != cfg.Codec {
			base += "/down:" + cfg.DownlinkCodec.String()
		}
	}
	if cfg.Async.Enabled() {
		a := cfg.Async.WithDefaults(cfg.ClientsPerRound)
		base += fmt.Sprintf(" [%s a=%g p=%g", a.Mode, a.Alpha, a.StalenessExponent)
		if a.Mode == Buffered {
			base += fmt.Sprintf(" K=%d", a.BufferK)
		}
		base += "]"
	}
	if cfg.DeviceBudget != nil {
		base += " [budget]"
	}
	if cfg.Precision == tensor.F32 {
		base += " [f32]"
	}
	if cfg.FoldWeight == WeightByEpochs {
		base += " [w=epochs]"
	}
	if cfg.VTime.Enabled() {
		base += " [vtime]"
	}
	return base
}
