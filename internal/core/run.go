package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/metrics"
	"fedprox/internal/model"
	"fedprox/internal/solver"
	"fedprox/internal/vtime"
)

// Run executes one federated optimization run of cfg on (m, fed) and
// returns the evaluated trajectory.
//
// Run is the in-process driver of the shared core.Coordinator: the
// coordinator makes every protocol decision (selection, straggler
// policies, aggregation, accounting) and this loop only executes its
// commands — parallel local solves for Dispatch, metric passes for
// Evaluate/ObserveLoss, and virtual-clock charges for AdvanceClock when
// a latency model is attached.
func Run(m model.Model, fed *data.Federated, cfg Config) (*History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Async.Enabled() {
		if !cfg.VTime.Enabled() {
			return nil, fmt.Errorf("core: %s aggregation in the simulator requires a virtual-time latency model (set Config.VTime.Model, see internal/vtime); the fednet runtime executes it against the real clock", cfg.Async.Mode)
		}
		return runAsyncVTime(m, fed, cfg)
	}

	coord, err := newSimCoordinator(m, fed, cfg)
	if err != nil {
		return nil, err
	}
	// With a virtual-time model the synchronous protocol gains duration
	// semantics: every round charges its critical path to the clock and
	// the clock-native straggler policies apply.
	var vt *vtimer
	if cfg.VTime.Enabled() {
		vt = newVtimer(cfg.VTime, int64(m.NumParams()*8))
		coord.Tick(vt.eng.Now())
	}
	cfg = cfg.withDefaults()
	local := cfg.Solver
	if local == nil {
		local = solver.SGDSolver{}
	}

	cmds, err := coord.Start()
	if err != nil {
		return nil, err
	}
	for {
		var dispatches []Dispatch
		var next []Command
		for _, cmd := range cmds {
			switch v := cmd.(type) {
			case Dispatch:
				dispatches = append(dispatches, v)
			case Evaluate:
				if vt != nil {
					// Eval traffic is charged on the virtual clock too, so
					// eval cadence affects deadlines consistently with the
					// analytic byte accounting.
					vt.chargeEval(v.WireBytes)
					coord.Tick(vt.eng.Now())
				}
				more, err := coord.EvalDone(simEval(m, fed, v))
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			case ObserveLoss:
				more, err := coord.LossObserved(metrics.GlobalLoss(m, fed, v.Params))
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			case AdvanceClock:
				if vt != nil {
					vt.eng.Advance(v.Seconds)
					coord.Tick(vt.eng.Now())
				}
			case Checkpoint:
				// Persisted by the coordinator; nothing to execute.
			case Done:
				return coord.History(), nil
			}
		}
		if len(dispatches) > 0 {
			replies, err := runDispatches(m, fed, coord, cfg, local, vt, dispatches)
			if err != nil {
				return nil, err
			}
			for _, r := range replies {
				more, err := coord.HandleReply(r)
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			}
		} else if len(next) == 0 {
			return nil, errors.New("core: coordinator stalled with no commands")
		}
		cmds = next
	}
}

// newSimCoordinator builds a coordinator with every shard of fed
// registered as one in-process worker.
func newSimCoordinator(m model.Model, fed *data.Federated, cfg Config) (*Coordinator, error) {
	coord, err := NewCoordinator(m, cfg, CoordinatorOptions{NumDevices: fed.NumDevices()})
	if err != nil {
		return nil, err
	}
	regs := make([]DeviceReg, 0, fed.NumDevices())
	for _, s := range fed.Shards {
		regs = append(regs, DeviceReg{ID: s.ID, TrainSize: len(s.Train)})
	}
	if _, err := coord.RegisterWorker(regs); err != nil {
		return nil, err
	}
	return coord, nil
}

// simEval answers an Evaluate command with in-process metric passes over
// the whole network, at the (possibly codec-decoded) eval broadcast view.
func simEval(m model.Model, fed *data.Federated, v Evaluate) EvalResult {
	res := EvalResult{
		Loss: metrics.GlobalLoss(m, fed, v.Params),
		Acc:  metrics.TestAccuracy(m, fed, v.Params),
	}
	if v.TrackDissimilarity {
		res.GradVar, res.B = metrics.Dissimilarity(m, fed, v.Params)
	}
	return res
}

// execDispatch serves one Dispatch in process — the local solve plus
// the uplink encode a remote worker would perform. It returns the
// reply, the raw (post-privacy) local solution for gamma probes, and
// the encoded uplink wire size. Shared by the synchronous driver and
// the virtual-time asynchronous driver so the two cannot drift.
func execDispatch(m model.Model, fed *data.Federated, coord *Coordinator, local solver.LocalSolver, d Dispatch) (Reply, []float64, int64, error) {
	shard := fed.Shards[d.Device]
	scfg := solver.Config{
		LearningRate: d.LearningRate,
		BatchSize:    d.BatchSize,
		Mu:           d.Mu,
	}
	// Every device trains from its view of the broadcast wᵗ; the view is
	// read-only for the life of the dispatch.
	wk := local.Solve(m, shard.Train, d.View, scfg, d.Epochs, frand.New(d.BatchSeed))
	r, err := coord.EncodeUplink(d.Device, wk)
	if err != nil {
		return Reply{}, nil, 0, err
	}
	ub := int64(m.NumParams() * 8)
	if r.Update != nil {
		ub = r.Update.WireBytes()
	}
	return r, wk, ub, nil
}

// runDispatches executes one synchronous round's local solves in
// parallel and, when a latency model is attached, stamps each reply with
// its virtual transfer timing (sequence numbers allocated in selection
// order, the ordering rule the arrival race uses).
func runDispatches(m model.Model, fed *data.Federated, coord *Coordinator, cfg Config, local solver.LocalSolver, vt *vtimer, ds []Dispatch) ([]Reply, error) {
	replies := make([]Reply, len(ds))
	errs := make([]error, len(ds))
	parallelFor(len(ds), cfg.Parallelism, func(i int) {
		d := ds[i]
		r, wk, _, err := execDispatch(m, fed, coord, local, d)
		if err != nil {
			errs[i] = err
			return
		}
		if cfg.TrackGamma {
			// γ measures the device's local solution against the broadcast
			// it received, before any uplink loss.
			scfg := solver.Config{LearningRate: d.LearningRate, BatchSize: d.BatchSize, Mu: d.Mu}
			r.Gamma = solver.Gamma(m, fed.Shards[d.Device].Train, wk, d.View, scfg)
		}
		replies[i] = r
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if vt != nil {
		lat := vt.cfg.Model
		for i, d := range ds {
			seq := vt.seq
			vt.seq++
			ub := vt.paramBytes
			if replies[i].Update != nil {
				ub = replies[i].Update.WireBytes()
			}
			replies[i].Timed = true
			replies[i].Seq = seq
			replies[i].Rel = lat.DownlinkSeconds(seq, d.Device, d.DownBytes) +
				lat.ComputeSeconds(d.Round, d.Device, d.Epochs) +
				lat.UplinkSeconds(seq, d.Device, ub)
			replies[i].Lost = lat.Dropped(seq, d.Device)
		}
	}
	return replies, nil
}

// vtimer is a driver's virtual-time state: the engine, the latency
// model, and the per-transfer sequence counters. The policy decisions
// (deadline, byte budget) live in the coordinator; this type only turns
// bytes and epochs into seconds.
type vtimer struct {
	cfg        VTimeConfig
	eng        *vtime.Engine
	paramBytes int64
	seq        int // per-dispatch jitter/loss stream index
	evalSeq    int // per-eval-broadcast stream index
}

func newVtimer(cfg VTimeConfig, paramBytes int64) *vtimer {
	return &vtimer{cfg: cfg, eng: vtime.NewEngine(), paramBytes: paramBytes}
}

// chargeEval advances the clock by the evaluation broadcast's transfer
// time. Eval traffic rides the shared downlink (vtime.EvalDevice), so a
// codec that shrinks the eval broadcast also shrinks the time it costs —
// the virtual-clock counterpart of Cost.EvalBytes.
func (v *vtimer) chargeEval(bytes int64) {
	v.eng.Advance(v.cfg.Model.DownlinkSeconds(v.evalSeq, vtime.EvalDevice, bytes))
	v.evalSeq++
}

// parallelFor runs fn(i) for i in [0, n) on at most limit workers
// (GOMAXPROCS when limit <= 0).
func parallelFor(n, limit int, fn func(i int)) {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Label renders the conventional method name for a configuration, e.g.
// "FedAvg" or "FedProx(mu=1)". Non-default local solvers are appended as
// a suffix, e.g. "FedProx(mu=1)+adam".
func Label(cfg Config) string {
	var base string
	switch {
	case cfg.AdaptiveMu:
		base = fmt.Sprintf("FedProx(adaptive mu0=%g)", cfg.Mu)
	case cfg.Mu == 0 && cfg.Straggler == DropStragglers:
		base = "FedAvg"
	case cfg.Mu == 0:
		base = "FedProx(mu=0)"
	default:
		base = fmt.Sprintf("FedProx(mu=%g)", cfg.Mu)
	}
	if cfg.Solver != nil && cfg.Solver.Name() != "sgd" {
		base += "+" + cfg.Solver.Name()
	}
	if cfg.Codec.Enabled() {
		base += " @" + cfg.Codec.String()
		if cfg.DownlinkCodec.Enabled() && cfg.DownlinkCodec != cfg.Codec {
			base += "/down:" + cfg.DownlinkCodec.String()
		}
	}
	if cfg.Async.Enabled() {
		a := cfg.Async.WithDefaults(cfg.ClientsPerRound)
		base += fmt.Sprintf(" [%s a=%g p=%g", a.Mode, a.Alpha, a.StalenessExponent)
		if a.Mode == Buffered {
			base += fmt.Sprintf(" K=%d", a.BufferK)
		}
		base += "]"
	}
	if cfg.VTime.Enabled() {
		base += " [vtime]"
	}
	return base
}
