package core

import (
	"math"
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/privacy"
	"fedprox/internal/tensor"
)

// TestF32RunTracksF64 runs the same seeded deployment at both widths
// and checks the f32 trajectory stays within rounding distance of the
// f64 one at every evaluation point — evaluation itself always runs at
// full width, so the losses compare like for like.
func TestF32RunTracksF64(t *testing.T) {
	mdl, fed := tinyWorkload()
	cfg := FedProx(6, 5, 3, 0.01, 1)
	cfg.EvalEvery = 2

	h64, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Precision = tensor.F32
	h32, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h64.Points) != len(h32.Points) {
		t.Fatalf("point counts differ: f64 %d, f32 %d", len(h64.Points), len(h32.Points))
	}
	for i := range h64.Points {
		l64, l32 := h64.Points[i].TrainLoss, h32.Points[i].TrainLoss
		if d := math.Abs(l32-l64) / (math.Abs(l64) + 1); d > 1e-4 {
			t.Fatalf("round %d: f32 loss %.6f drifted %.2e from f64's %.6f", h64.Points[i].Round, l32, d, l64)
		}
	}
	// The nominal wire is priced at the deployment's word size.
	if up64, up32 := h64.Final().Cost.UplinkBytes, h32.Final().Cost.UplinkBytes; up32*2 != up64 {
		t.Fatalf("f32 uplink accounting %d is not half of f64's %d", up32, up64)
	}
	if wantLabel := h64.Label + " [f32]"; h32.Label != wantLabel {
		t.Fatalf("f32 label %q, want %q", h32.Label, wantLabel)
	}
}

// TestF32CodecRunConverges: the f32 path composes with the stateful
// codec chain — the run completes, improves on its starting loss, and
// stays close to the f64 run on the same quantized wire.
func TestF32CodecRunConverges(t *testing.T) {
	mdl, fed := tinyWorkload()
	cfg := FedProx(6, 5, 3, 0.01, 1)
	cfg.EvalEvery = 2
	cfg.Codec = comm.Spec{Name: "delta+qsgd", Bits: 8}

	h64, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Precision = tensor.F32
	h32, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fin64, fin32 := h64.Final().TrainLoss, h32.Final().TrainLoss
	if fin32 >= h32.Points[0].TrainLoss {
		t.Fatalf("f32 codec run did not improve: first %.4f, final %.4f", h32.Points[0].TrainLoss, fin32)
	}
	if d := math.Abs(fin32-fin64) / fin64; d > 0.02 {
		t.Fatalf("f32 codec run final loss %.4f drifted %.1f%% from f64's %.4f", fin32, 100*d, fin64)
	}
}

// TestF32ConfigRejections: every configuration the f32 path cannot
// execute is refused up front — precision is part of the negotiated
// wire format, so there is no silent fall back to f64.
func TestF32ConfigRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unknown precision", func(c *Config) { c.Precision = "f16" }},
		{"privacy hook", func(c *Config) {
			c.Precision = tensor.F32
			c.Privacy = &privacy.Mechanism{ClipNorm: 0.5, NoiseStd: 0.01, Seed: 1}
		}},
		{"topk uplink", func(c *Config) {
			c.Precision = tensor.F32
			c.Codec = comm.Spec{Name: "topk", TopK: 0.25}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := FedProx(4, 3, 2, 0.01, 1)
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid f32 config accepted")
			}
		})
	}
}

// TestF32DeviceConstructorPanics: wiring an f32 device around a runtime
// that cannot execute the width is a programming error, caught at
// construction.
func TestF32DeviceConstructorPanics(t *testing.T) {
	mdl, fed := tinyWorkload()
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice accepted f32 with a privacy mechanism")
		}
	}()
	NewDevice(mdl, fed.Shards[:1], DeviceOptions{
		Precision: tensor.F32,
		Privacy:   &privacy.Mechanism{ClipNorm: 1, NoiseStd: 0.1, Seed: 2},
	})
}
