package core

import "fmt"

// AggregationMode selects how the coordinator folds device updates into
// the global model. SyncRounds is the paper's lock-step protocol, where
// a round barrier makes every round as slow as its slowest contacted
// worker. The asynchronous modes run in two places: the fednet runtime
// executes them against the real clock (wall-clock heterogeneity,
// arrival-order nondeterminism), and the simulator executes them against
// the internal/vtime virtual clock (Config.VTime), where replies arrive
// in seeded latency order and the trajectory is bit-reproducible.
type AggregationMode int

const (
	// SyncRounds is the paper's protocol: select K devices, wait for
	// every contacted reply, aggregate once per round.
	SyncRounds AggregationMode = iota
	// AsyncTotal folds every reply into the global model the moment it
	// arrives: the device's model delta (its local progress relative to
	// the broadcast it trained from) is applied damped by staleness,
	// w ← w + alpha_k·Δ_k with alpha_k = Alpha/(1+s)^StalenessExponent
	// and s = model versions elapsed since the device's snapshot. No
	// round barrier exists; stragglers delay only their own
	// contributions (cf. Xie et al., "Asynchronous Federated
	// Optimization", in delta form).
	AsyncTotal
	// Buffered is the FedBuff-style middle ground (Nguyen et al.): replies
	// accumulate in a buffer and the model advances one version per
	// BufferK replies, each damped by its own staleness at flush time.
	Buffered
)

// String implements fmt.Stringer.
func (m AggregationMode) String() string {
	switch m {
	case SyncRounds:
		return "sync"
	case AsyncTotal:
		return "async"
	case Buffered:
		return "buffered"
	default:
		return fmt.Sprintf("AggregationMode(%d)", int(m))
	}
}

// Default async knob values filled in by AsyncConfig.WithDefaults.
const (
	// DefaultAsyncAlpha is the base mixing rate for a fresh (staleness 0)
	// reply: its full local delta (the synchronous aggregation weight).
	DefaultAsyncAlpha = 1.0
	// DefaultStalenessExponent is the polynomial damping power p in
	// alpha_k = Alpha/(1+s)^p.
	DefaultStalenessExponent = 0.5
)

// AsyncConfig parameterizes the asynchronous aggregation modes of the
// fednet coordinator. The zero value selects SyncRounds and changes
// nothing.
type AsyncConfig struct {
	// Mode selects the aggregation discipline.
	Mode AggregationMode
	// Alpha is the base mixing rate in (0, 1]: a staleness-0 reply
	// applies Alpha times the device's local model delta. At Alpha = 1 a
	// Buffered flush of fresh replies reproduces the synchronous round
	// update exactly. Zero selects DefaultAsyncAlpha.
	Alpha float64
	// StalenessExponent is the damping power p >= 0 in
	// alpha_k = Alpha/(1+s)^p; larger p discounts stale replies harder.
	// Zero selects DefaultStalenessExponent (set it negative to request
	// exactly 0, i.e. no damping).
	StalenessExponent float64
	// BufferK is the replies-per-flush buffer size of the Buffered mode.
	// Zero selects ClientsPerRound.
	BufferK int
	// MaxInFlight bounds concurrently outstanding TrainRequests across
	// all devices. Zero selects ClientsPerRound — the async analogue of
	// "K devices working at any time", which keeps device utilization
	// comparable to the sync protocol.
	MaxInFlight int
}

// Enabled reports whether an asynchronous mode is selected.
func (a AsyncConfig) Enabled() bool { return a.Mode != SyncRounds }

// WithDefaults returns a with zero-valued knobs replaced by the package
// defaults, resolving BufferK and MaxInFlight against clientsPerRound.
func (a AsyncConfig) WithDefaults(clientsPerRound int) AsyncConfig {
	if a.Alpha == 0 {
		a.Alpha = DefaultAsyncAlpha
	}
	if a.StalenessExponent == 0 {
		a.StalenessExponent = DefaultStalenessExponent
	} else if a.StalenessExponent < 0 {
		a.StalenessExponent = 0
	}
	if a.BufferK <= 0 {
		a.BufferK = clientsPerRound
	}
	if a.MaxInFlight <= 0 {
		a.MaxInFlight = clientsPerRound
	}
	return a
}

// Validate reports the first configuration error, or nil. The zero
// (sync) config is valid.
func (a AsyncConfig) Validate() error {
	switch a.Mode {
	case SyncRounds, AsyncTotal, Buffered:
	default:
		return fmt.Errorf("core: unknown aggregation mode %d", int(a.Mode))
	}
	if !a.Enabled() {
		return nil
	}
	if a.Alpha < 0 || a.Alpha > 1 {
		return fmt.Errorf("core: async Alpha must be in (0,1] (0 selects the default), got %g", a.Alpha)
	}
	if a.BufferK < 0 {
		return fmt.Errorf("core: async BufferK must be non-negative, got %d", a.BufferK)
	}
	if a.MaxInFlight < 0 {
		return fmt.Errorf("core: async MaxInFlight must be non-negative, got %d", a.MaxInFlight)
	}
	return nil
}
