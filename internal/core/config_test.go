package core

import (
	"strings"
	"testing"

	"fedprox/internal/comm"
)

// fullBudget is a trivial CapabilityModel for rejection tests.
type fullBudget struct{}

func (fullBudget) EpochBudget(_, _, requested int) int { return requested }

// TestConfigValidateRejections is the table-driven sweep of
// Config.Validate's rejection paths — one row per illegal knob
// combination, plus the combinations that must stay accepted (notably
// Codec+Checkpointer, legal since link state became checkpointable).
func TestConfigValidateRejections(t *testing.T) {
	valid := FedProx(4, 5, 2, 0.01, 1)
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring of the expected error; "" means valid
	}{
		{"baseline is valid", func(c *Config) {}, ""},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }, "Rounds"},
		{"zero clients", func(c *Config) { c.ClientsPerRound = 0 }, "ClientsPerRound"},
		{"zero epochs", func(c *Config) { c.LocalEpochs = 0 }, "LocalEpochs"},
		{"zero learning rate", func(c *Config) { c.LearningRate = 0 }, "LearningRate"},
		{"zero batch size", func(c *Config) { c.BatchSize = 0 }, "BatchSize"},
		{"negative mu", func(c *Config) { c.Mu = -1 }, "Mu"},
		{"straggler fraction above 1", func(c *Config) { c.StragglerFraction = 1.5 }, "StragglerFraction"},

		{"unknown aggregation mode", func(c *Config) { c.Async.Mode = AggregationMode(99) }, "aggregation mode"},
		{"async alpha above 1", func(c *Config) {
			c.Async = AsyncConfig{Mode: AsyncTotal, Alpha: 1.5}
		}, "Alpha"},
		{"async with capability model", func(c *Config) {
			c.Async = AsyncConfig{Mode: AsyncTotal}
			c.Capability = fullBudget{}
		}, "capability"},
		{"async with adaptive mu", func(c *Config) {
			c.Async = AsyncConfig{Mode: Buffered}
			c.AdaptiveMu = true
		}, "adaptive mu"},
		{"async with gamma tracking", func(c *Config) {
			c.Async = AsyncConfig{Mode: AsyncTotal}
			c.TrackGamma = true
		}, "gamma"},

		{"vtime with checkpointer", func(c *Config) {
			c.VTime = VTimeConfig{Model: fakeLatency{}}
			c.Checkpointer = &nopCheckpointer{}
		}, "checkpoint"},
		{"negative deadline", func(c *Config) {
			c.VTime = VTimeConfig{Model: fakeLatency{}, DeadlineSeconds: -1}
		}, "DeadlineSeconds"},
		{"negative byte budget", func(c *Config) {
			c.VTime = VTimeConfig{Model: fakeLatency{}, RoundBytes: -10}
		}, "RoundBytes"},
		{"vtime policy without model", func(c *Config) {
			c.VTime = VTimeConfig{RoundBytes: 100}
		}, "VTime.Model"},

		{"downlink codec without codec", func(c *Config) {
			c.DownlinkCodec = comm.Spec{Name: "raw"}
		}, "DownlinkCodec requires Codec"},
		{"unknown codec", func(c *Config) {
			c.Codec = comm.Spec{Name: "gzip"}
		}, "unknown codec"},
		{"bad qsgd width", func(c *Config) {
			c.Codec = comm.Spec{Name: "qsgd", Bits: 40}
		}, "bit width"},
		{"codec with checkpointer is now valid", func(c *Config) {
			c.Codec = comm.Spec{Name: "qsgd"}
			c.Checkpointer = &nopCheckpointer{}
		}, ""},
		{"checkpointer alone is valid", func(c *Config) {
			c.Checkpointer = &nopCheckpointer{}
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpectedly rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted; want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// fakeLatency is the minimal LatencyModel for Validate tests (never
// executed).
type fakeLatency struct{}

func (fakeLatency) DownlinkSeconds(int, int, int64) float64 { return 0 }
func (fakeLatency) UplinkSeconds(int, int, int64) float64   { return 0 }
func (fakeLatency) ComputeSeconds(int, int, int) float64    { return 0 }
func (fakeLatency) Dropped(int, int) bool                   { return false }
