package core

import (
	"math"
	"strings"
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/tier"
)

func tieredConfig(rounds int) Config {
	cfg := FedProx(rounds, 8, 3, 0.01, 1)
	cfg.EvalEvery = 2
	return cfg
}

func TestTieredFanOutOneMatchesFlat(t *testing.T) {
	m, fed := tinyWorkload()
	for _, tc := range []struct {
		name string
		prep func(*Config)
	}{
		{"sim", func(*Config) {}},
		{"sim stragglers", func(c *Config) { c.StragglerFraction = 0.5 }},
		{"vtime", func(c *Config) {
			c.VTime = VTimeConfig{Model: vtimeModel(fed.NumDevices(), 17), DeadlineSeconds: 60}
		}},
		{"codec", func(c *Config) { c.Codec = comm.Spec{Name: "qsgd", Bits: 8} }},
	} {
		cfg := tieredConfig(4)
		tc.prep(&cfg)
		flat, err := Run(m, fed, cfg)
		if err != nil {
			t.Fatalf("%s: flat: %v", tc.name, err)
		}
		// Fan-out 1 disables the hierarchy entirely, so the tiered entry
		// point must reproduce the flat run bit for bit.
		tiered, err := RunTiered(m, fed.Fleet(), cfg, tier.Topology{FanOut: 1, Depth: 1})
		if err != nil {
			t.Fatalf("%s: tiered: %v", tc.name, err)
		}
		if !historiesEqual(flat, tiered) {
			t.Fatalf("%s: fan-out-1 tiered history differs from flat", tc.name)
		}
	}
}

func TestTieredDeterministicPerSeed(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := tieredConfig(4)
	cfg.StragglerFraction = 0.5
	topo := tier.Topology{FanOut: 2, Depth: 1}
	a, err := RunTiered(m, fed.Fleet(), cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTiered(m, fed.Fleet(), cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !historiesEqual(a, b) {
		t.Fatal("same-seed tiered runs differ")
	}
	if !strings.Contains(a.Label, "[tier f=2 d=1]") {
		t.Fatalf("label missing tier suffix: %q", a.Label)
	}
}

func TestTieredRootIngressShrinksByFanOut(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := tieredConfig(4)
	flat, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := RunTiered(m, fed.Fleet(), cfg, tier.Topology{FanOut: 2, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Without a codec every reply is paramBytes, so root ingress is
	// exactly replies × paramBytes: K per round flat, K/F per window
	// tiered.
	fu := flat.Points[len(flat.Points)-1].Cost.UplinkBytes
	tu := tiered.Points[len(tiered.Points)-1].Cost.UplinkBytes
	if fu != 2*tu {
		t.Fatalf("root ingress: flat %d, tiered %d, want exactly 2x reduction", fu, tu)
	}
	// The fold still learns: the final loss is finite and improves on
	// the round-0 measurement.
	first, last := tiered.Points[0].TrainLoss, tiered.Points[len(tiered.Points)-1].TrainLoss
	if math.IsNaN(last) || last >= first {
		t.Fatalf("tiered loss did not improve: %g -> %g", first, last)
	}
}

func TestTieredDepthTwo(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := tieredConfig(3)
	// F=2, d=2: width 4 divides K=8; the root contacts 2 interior
	// aggregators, each fanning into 2 leaf edges.
	h, err := RunTiered(m, fed.Fleet(), cfg, tier.Topology{FanOut: 2, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	paramBytes := int64(m.NumParams() * 8)
	want := int64(3) * 2 * paramBytes // rounds × root cohort × raw reply
	if got := h.Points[len(h.Points)-1].Cost.UplinkBytes; got != want {
		t.Fatalf("depth-2 root ingress %d, want %d", got, want)
	}
	if last := h.Points[len(h.Points)-1].TrainLoss; math.IsNaN(last) {
		t.Fatal("depth-2 run recorded NaN loss")
	}
}

func TestTieredVTime(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := tieredConfig(4)
	cfg.VTime = VTimeConfig{Model: vtimeModel(fed.NumDevices(), 17)}
	topo := tier.Topology{FanOut: 2, Depth: 1, Model: vtimeModel(16, 23)}
	h, err := RunTiered(m, fed.Fleet(), cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for _, p := range h.Points {
		if math.IsNaN(p.VirtualSeconds) || p.VirtualSeconds < last {
			t.Fatalf("virtual clock not monotone: %v", p.VirtualSeconds)
		}
		last = p.VirtualSeconds
	}
	if last == 0 {
		t.Fatal("virtual clock never advanced")
	}
	// The root's arrival trace records its edge replies: cohort × rounds.
	if want := 4 * 4; len(h.Arrivals) != want {
		t.Fatalf("root arrivals %d, want %d", len(h.Arrivals), want)
	}
	// Same-seed timed runs are bit-deterministic too.
	h2, err := RunTiered(m, fed.Fleet(), cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !historiesEqual(h, h2) {
		t.Fatal("same-seed timed tiered runs differ")
	}
}

func TestTieredCodecComposesPerHop(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := tieredConfig(3)
	cfg.Codec = comm.Spec{Name: "qsgd", Bits: 4}
	h, err := RunTiered(m, fed.Fleet(), cfg, tier.Topology{FanOut: 2, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	paramBytes := int64(m.NumParams() * 8)
	raw := int64(3) * 4 * paramBytes // what raw edge→root replies would cost
	got := h.Points[len(h.Points)-1].Cost.UplinkBytes
	if got == 0 || got >= raw {
		t.Fatalf("encoded root ingress %d, want in (0, %d)", got, raw)
	}
	if last := h.Points[len(h.Points)-1].TrainLoss; math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatalf("codec tiered run diverged: %v", last)
	}
}

func TestTieredRejectsUnsupportedAxes(t *testing.T) {
	m, fed := tinyWorkload()
	topo := tier.Topology{FanOut: 2, Depth: 1}
	for name, prep := range map[string]func(*Config){
		"async": func(c *Config) {
			c.Async = AsyncConfig{Mode: AsyncTotal}
			c.VTime = VTimeConfig{Model: vtimeModel(30, 3)}
		},
		"adaptive mu": func(c *Config) { c.AdaptiveMu = true },
		"track gamma": func(c *Config) { c.TrackGamma = true },
	} {
		cfg := tieredConfig(3)
		prep(&cfg)
		if _, err := RunTiered(m, fed.Fleet(), cfg, topo); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Topology validation: K must be divisible by FanOut^Depth, and the
	// fleet must host the cohort.
	cfg := tieredConfig(3)
	if _, err := RunTiered(m, fed.Fleet(), cfg, tier.Topology{FanOut: 3, Depth: 1}); err == nil {
		t.Error("indivisible fan-out accepted")
	}
	cfg.ClientsPerRound = 32
	if _, err := RunTiered(m, fed.Fleet(), cfg, tier.Topology{FanOut: 2, Depth: 1}); err == nil {
		t.Error("cohort larger than fleet accepted")
	}
}

func TestSteppedCoordinatorPauseResume(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := tieredConfig(2)
	coord, err := NewCoordinator(m, cfg, CoordinatorOptions{NumDevices: fed.NumDevices(), Stepped: true})
	if err != nil {
		t.Fatal(err)
	}
	dev := NewFleetDevice(m, fed.Fleet(), DeviceOptions{})
	if _, err := coord.RegisterWorker(dev.Hosted()); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Resume(nil); err == nil {
		t.Fatal("Resume before Start accepted")
	}
	cmds, err := coord.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Round 0's evaluation completes into a Pause rather than a round.
	ev, ok := cmds[0].(Evaluate)
	if !ok {
		t.Fatalf("first command %T, want Evaluate", cmds[0])
	}
	cmds, err = coord.EvalDone(simEval(m, fed.Fleet(), ev))
	if err != nil {
		t.Fatal(err)
	}
	pause, ok := cmds[len(cmds)-1].(Pause)
	if !ok || pause.NextRound != 0 {
		t.Fatalf("after eval: %T %+v, want Pause{0}", cmds[len(cmds)-1], cmds[len(cmds)-1])
	}
	if _, err := coord.Resume(make([]float64, 1)); err == nil {
		t.Fatal("Resume with mismatched view accepted")
	}
	// Re-base on a fresh view: the next round's broadcasts carry it.
	view := make([]float64, m.NumParams())
	for i := range view {
		view[i] = float64(i%7) * 0.01
	}
	cmds, err = coord.Resume(view)
	if err != nil {
		t.Fatal(err)
	}
	var sent int
	for _, cmd := range cmds {
		d, ok := cmd.(Dispatch)
		if !ok {
			t.Fatalf("post-Resume command %T, want Dispatch", cmd)
		}
		for i, v := range d.View {
			if v != view[i] {
				t.Fatal("broadcast view not re-based on the Resume view")
			}
		}
		sent++
	}
	if sent != cfg.ClientsPerRound {
		t.Fatalf("dispatches %d, want %d", sent, cfg.ClientsPerRound)
	}
	if _, err := coord.Resume(nil); err == nil {
		t.Fatal("Resume without an outstanding Pause accepted")
	}
	// Stepped is a synchronous-protocol option only.
	async := cfg
	async.Async = AsyncConfig{Mode: AsyncTotal}
	async.VTime = VTimeConfig{Model: vtimeModel(fed.NumDevices(), 3)}
	if _, err := NewCoordinator(m, async, CoordinatorOptions{NumDevices: 4, Stepped: true}); err == nil {
		t.Fatal("stepped async coordinator accepted")
	}
}

func TestFoldStaleDeltasTierDepthDamping(t *testing.T) {
	// In a depth-d hierarchy an edge's contribution reaches the root d
	// windows after the view it trained from was broadcast, so a
	// staleness-damped root fold sees s = tier depth. The fold must damp
	// by exactly alpha/(1+s)^p, monotonically in depth.
	const alpha, p = 0.6, 1.0
	delta := []float64{1, -2, 4}
	prev := 0.0
	for depth := 0; depth <= 3; depth++ {
		w := make([]float64, len(delta))
		batch := []StaleDelta{{Delta: delta, Weight: 5, Version: 7 - depth}}
		if !FoldStaleDeltas(w, batch, 7, UniformWeightedAvg, alpha, p) {
			t.Fatalf("depth %d: fold reported no advance", depth)
		}
		damp := alpha / math.Pow(1+float64(depth), p)
		for i := range w {
			if diff := math.Abs(w[i] - damp*delta[i]); diff > 1e-12 {
				t.Fatalf("depth %d: w[%d] = %g, want %g", depth, i, w[i], damp*delta[i])
			}
		}
		if depth > 0 && math.Abs(w[0]) >= prev {
			t.Fatalf("depth %d folded no weaker than depth %d", depth, depth-1)
		}
		prev = math.Abs(w[0])
	}
	// An empty batch must not advance the model.
	if FoldStaleDeltas(make([]float64, 3), nil, 7, UniformWeightedAvg, alpha, p) {
		t.Fatal("empty batch reported an advance")
	}
}
