package core

import (
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
)

func tinyWorkload() (*linear.Model, *data.Federated) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	return linear.ForDataset(fed), fed
}

func TestConfigValidate(t *testing.T) {
	good := FedProx(10, 5, 3, 0.01, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.ClientsPerRound = 0 },
		func(c *Config) { c.LocalEpochs = 0 },
		func(c *Config) { c.LearningRate = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.Mu = -1 },
		func(c *Config) { c.StragglerFraction = 1.5 },
		func(c *Config) { c.StragglerFraction = -0.1 },
	}
	for i, mutate := range bad {
		c := FedProx(10, 5, 3, 0.01, 1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []SamplingScheme{UniformWeightedAvg, WeightedSimpleAvg, SamplingScheme(9)} {
		if s.String() == "" {
			t.Fatal("empty SamplingScheme string")
		}
	}
	for _, p := range []StragglerPolicy{DropStragglers, AggregatePartial, StragglerPolicy(9)} {
		if p.String() == "" {
			t.Fatal("empty StragglerPolicy string")
		}
	}
}

func TestLabelNames(t *testing.T) {
	if got := Label(FedAvg(1, 1, 1, 0.1)); got != "FedAvg" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label(FedProx(1, 1, 1, 0.1, 0)); got != "FedProx(mu=0)" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label(FedProx(1, 1, 1, 0.1, 0.01)); got != "FedProx(mu=0.01)" {
		t.Fatalf("Label = %q", got)
	}
	c := FedProx(1, 1, 1, 0.1, 1)
	c.AdaptiveMu = true
	if got := Label(c); got != "FedProx(adaptive mu0=1)" {
		t.Fatalf("Label = %q", got)
	}
}

func TestEnvDeterministicAcrossMethods(t *testing.T) {
	_, fed := tinyWorkload()
	avg := FedAvg(5, 4, 3, 0.01)
	avg.StragglerFraction = 0.5
	prox := FedProx(5, 4, 3, 0.01, 1)
	prox.StragglerFraction = 0.5
	ea, ep := NewEnv(fed, avg), NewEnv(fed, prox)
	for round := 0; round < 5; round++ {
		sa, sp := ea.SelectDevices(round), ep.SelectDevices(round)
		for i := range sa {
			if sa[i] != sp[i] {
				t.Fatalf("round %d: selection differs across methods", round)
			}
		}
		eaE, eaS := ea.StragglerPlan(round, sa)
		epE, epS := ep.StragglerPlan(round, sp)
		for i := range eaE {
			if eaE[i] != epE[i] || eaS[i] != epS[i] {
				t.Fatalf("round %d: straggler plan differs across methods", round)
			}
		}
	}
}

func TestEnvSelectionChangesPerRound(t *testing.T) {
	_, fed := tinyWorkload()
	env := NewEnv(fed, FedAvg(10, 10, 3, 0.01))
	same := true
	first := env.SelectDevices(0)
	for r := 1; r < 5 && same; r++ {
		sel := env.SelectDevices(r)
		for i := range sel {
			if sel[i] != first[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("device selection identical for 5 rounds")
	}
}

func TestStragglerPlanCounts(t *testing.T) {
	_, fed := tinyWorkload()
	cfg := FedProx(3, 10, 20, 0.01, 0)
	cfg.StragglerFraction = 0.9
	env := NewEnv(fed, cfg)
	sel := env.SelectDevices(0)
	epochs, strag := env.StragglerPlan(0, sel)
	n := 0
	for i := range strag {
		if strag[i] {
			n++
			if epochs[i] < 1 || epochs[i] > 20 {
				t.Fatalf("straggler epochs = %d, want [1,20]", epochs[i])
			}
		} else if epochs[i] != 20 {
			t.Fatalf("non-straggler epochs = %d, want 20", epochs[i])
		}
	}
	if n != 9 {
		t.Fatalf("stragglers = %d, want 9 of 10", n)
	}
}

func TestStragglerPlanZeroFraction(t *testing.T) {
	_, fed := tinyWorkload()
	env := NewEnv(fed, FedProx(3, 10, 20, 0.01, 0))
	epochs, strag := env.StragglerPlan(0, env.SelectDevices(0))
	for i := range strag {
		if strag[i] || epochs[i] != 20 {
			t.Fatal("stragglers designated at fraction 0")
		}
	}
}

// TestFedAvgEqualsFedProxMuZeroNoStragglers is the paper's own identity:
// "FedProx with mu = 0 and without systems heterogeneity corresponds to
// FedAvg" (Figure 1 caption). The trajectories must match exactly.
func TestFedAvgEqualsFedProxMuZeroNoStragglers(t *testing.T) {
	m, fed := tinyWorkload()
	avg, err := Run(m, fed, FedAvg(6, 5, 3, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	prox, err := Run(m, fed, FedProx(6, 5, 3, 0.01, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range avg.Points {
		if avg.Points[i].TrainLoss != prox.Points[i].TrainLoss {
			t.Fatalf("round %d: FedAvg loss %g != FedProx(0) loss %g",
				avg.Points[i].Round, avg.Points[i].TrainLoss, prox.Points[i].TrainLoss)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := FedProx(5, 5, 3, 0.01, 1)
	cfg.StragglerFraction = 0.5
	a, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].TrainLoss != b.Points[i].TrainLoss || a.Points[i].TestAcc != b.Points[i].TestAcc {
			t.Fatalf("run not reproducible at point %d", i)
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := FedProx(4, 6, 3, 0.01, 1)
	cfg.Parallelism = 1
	seq, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	par, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Points {
		if seq.Points[i].TrainLoss != par.Points[i].TrainLoss {
			t.Fatalf("parallel run diverged from sequential at point %d", i)
		}
	}
}

func TestRunReducesLoss(t *testing.T) {
	m, fed := tinyWorkload()
	h, err := Run(m, fed, FedProx(15, 10, 5, 0.01, 0))
	if err != nil {
		t.Fatal(err)
	}
	if h.Final().TrainLoss >= h.Points[0].TrainLoss {
		t.Fatalf("training did not reduce loss: %g -> %g",
			h.Points[0].TrainLoss, h.Final().TrainLoss)
	}
	if h.Final().TestAcc <= 0.2 {
		t.Fatalf("accuracy after training = %g", h.Final().TestAcc)
	}
}

// TestDropVsAggregateUnderStragglers verifies the paper's headline systems
// result on a miniature instance: aggregating partial work beats dropping
// stragglers when 90% of devices straggle.
func TestDropVsAggregateUnderStragglers(t *testing.T) {
	m, fed := tinyWorkload()
	mk := func(policy StragglerPolicy) float64 {
		cfg := FedProx(20, 10, 10, 0.01, 0)
		cfg.Straggler = policy
		cfg.StragglerFraction = 0.9
		h, err := Run(m, fed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h.Final().TrainLoss
	}
	drop, agg := mk(DropStragglers), mk(AggregatePartial)
	if agg >= drop {
		t.Fatalf("aggregating partial work (%g) not better than dropping (%g)", agg, drop)
	}
}

func TestRunDropAllParticipantsKeepsModel(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := FedAvg(3, 5, 3, 0.01)
	cfg.StragglerFraction = 1.0 // every selected device dropped every round
	h, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range h.Points {
		if p.TrainLoss != h.Points[0].TrainLoss {
			t.Fatal("model changed despite zero participants")
		}
		if p.Round > 0 && p.Participants != 0 {
			t.Fatalf("round %d reported %d participants", p.Round, p.Participants)
		}
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	m, fed := tinyWorkload()
	if _, err := Run(m, fed, Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEvalEveryThinsHistory(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := FedProx(10, 5, 2, 0.01, 0)
	cfg.EvalEvery = 5
	h, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := []int{0, 5, 10}
	if len(h.Points) != len(wantRounds) {
		t.Fatalf("points = %d, want %d", len(h.Points), len(wantRounds))
	}
	for i, p := range h.Points {
		if p.Round != wantRounds[i] {
			t.Fatalf("point %d at round %d, want %d", i, p.Round, wantRounds[i])
		}
	}
}

func TestTrackGammaRecordsValues(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := FedProx(3, 5, 3, 0.01, 1)
	cfg.TrackGamma = true
	h, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := h.Final()
	if !(p.MeanGamma >= 0 && p.MeanGamma <= 2) {
		t.Fatalf("MeanGamma = %g, want a sane inexactness value", p.MeanGamma)
	}
}

func TestTrackDissimilarityRecords(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := FedProx(2, 5, 2, 0.01, 0)
	cfg.TrackDissimilarity = true
	h, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range h.Points {
		if !(p.GradVar >= 0) { // also catches NaN
			t.Fatalf("GradVar = %g at round %d", p.GradVar, p.Round)
		}
		if !(p.B >= 0) {
			t.Fatalf("B = %g at round %d", p.B, p.Round)
		}
	}
}

func TestWeightedSimpleAvgScheme(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := FedProx(5, 5, 3, 0.01, 0)
	cfg.Sampling = WeightedSimpleAvg
	h, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Final().TrainLoss >= h.Points[0].TrainLoss {
		t.Fatal("weighted-sampling scheme failed to make progress")
	}
}

func TestMuControllerHeuristic(t *testing.T) {
	c := newMuController(0.5, 0.1, 3)
	c.Observe(1.0) // baseline
	c.Observe(1.2) // increase
	if got := c.Mu(); got != 0.6 {
		t.Fatalf("mu after rise = %g, want 0.6", got)
	}
	c.Observe(1.1)
	c.Observe(1.0)
	if got := c.Mu(); got != 0.6 {
		t.Fatalf("mu mid-streak = %g, want 0.6", got)
	}
	c.Observe(0.9) // third consecutive decrease -> step down
	if got := c.Mu(); got < 0.499 || got > 0.501 {
		t.Fatalf("mu after streak = %g, want 0.5", got)
	}
}

func TestMuControllerFloorsAtZero(t *testing.T) {
	c := newMuController(0.05, 0.1, 1)
	c.Observe(1.0)
	c.Observe(0.9)
	if got := c.Mu(); got != 0 {
		t.Fatalf("mu = %g, want floored 0", got)
	}
}

func TestMuControllerFlatLoss(t *testing.T) {
	c := newMuController(0.3, 0.1, 2)
	c.Observe(1.0)
	c.Observe(1.0)
	c.Observe(1.0)
	if got := c.Mu(); got != 0.3 {
		t.Fatalf("mu after flat losses = %g, want unchanged 0.3", got)
	}
}

func TestAdaptiveMuRunMovesMu(t *testing.T) {
	m, fed := tinyWorkload()
	cfg := FedProx(12, 8, 5, 0.01, 1)
	cfg.AdaptiveMu = true
	h, err := Run(m, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for _, p := range h.Points {
		if p.Mu != 1 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("adaptive mu never moved from its initial value on a converging run")
	}
}

func TestHistoryHelpers(t *testing.T) {
	h := &History{Label: "x", Points: []Point{
		{Round: 0, TrainLoss: 2.0, TestAcc: 0.1},
		{Round: 1, TrainLoss: 1.0, TestAcc: 0.5},
		{Round: 2, TrainLoss: 0.99995, TestAcc: 0.6},
	}}
	if h.Final().Round != 2 {
		t.Fatal("Final wrong")
	}
	if got := h.BestAccuracy(); got != 0.6 {
		t.Fatalf("BestAccuracy = %g", got)
	}
	if !h.Converged(1e-4) {
		t.Fatal("Converged missed the flat step")
	}
	if h.Diverged(0.5, 1) {
		t.Fatal("Diverged on a decreasing series")
	}
	up := &History{Points: []Point{{TrainLoss: 1}, {TrainLoss: 1.2}, {TrainLoss: 2.6}}}
	if !up.Diverged(1.0, 2) {
		t.Fatal("Diverged missed a 1.6 rise over 2 points")
	}
	if got, want := len(h.Losses()), 3; got != want {
		t.Fatalf("Losses len = %d", got)
	}
	if got := h.Accuracies()[1]; got != 0.5 {
		t.Fatalf("Accuracies[1] = %g", got)
	}
	if h.String() == "" {
		t.Fatal("empty history string")
	}
}

func TestSettledAccuracy(t *testing.T) {
	// Converging series: settle at the first flat step.
	conv := &History{Points: []Point{
		{TrainLoss: 2, TestAcc: 0.1},
		{TrainLoss: 1, TestAcc: 0.4},
		{TrainLoss: 0.99999, TestAcc: 0.55},
		{TrainLoss: 0.9, TestAcc: 0.7},
	}}
	if got := conv.SettledAccuracy(1e-4, 1, 2); got != 0.55 {
		t.Fatalf("converged settled accuracy = %g, want 0.55", got)
	}
	// Diverging series: settle at the point before the rise window.
	div := &History{Points: []Point{
		{TrainLoss: 1.0, TestAcc: 0.6},
		{TrainLoss: 1.4, TestAcc: 0.5},
		{TrainLoss: 2.5, TestAcc: 0.2},
	}}
	if got := div.SettledAccuracy(1e-4, 1, 2); got != 0.6 {
		t.Fatalf("diverged settled accuracy = %g, want 0.6", got)
	}
	// Neither: final accuracy.
	plain := &History{Points: []Point{
		{TrainLoss: 2, TestAcc: 0.1},
		{TrainLoss: 1.5, TestAcc: 0.3},
	}}
	if got := plain.SettledAccuracy(1e-4, 1, 1); got != 0.3 {
		t.Fatalf("plain settled accuracy = %g, want 0.3", got)
	}
}

func TestCostAccounting(t *testing.T) {
	m, fed := tinyWorkload()
	mk := func(policy StragglerPolicy) Cost {
		cfg := FedProx(5, 10, 4, 0.01, 0)
		cfg.Straggler = policy
		cfg.StragglerFraction = 0.5
		cfg.EvalEvery = 5
		h, err := Run(m, fed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h.Final().Cost
	}
	drop, agg := mk(DropStragglers), mk(AggregatePartial)
	// Devices perform identical work under both policies (same env).
	if drop.DeviceEpochs != agg.DeviceEpochs {
		t.Fatalf("device epochs differ: %d vs %d", drop.DeviceEpochs, agg.DeviceEpochs)
	}
	if drop.WastedEpochs == 0 || agg.WastedEpochs != 0 {
		t.Fatalf("waste accounting wrong: drop=%d agg=%d", drop.WastedEpochs, agg.WastedEpochs)
	}
	paramBytes := int64(m.NumParams() * 8)
	// 5 rounds x 10 selected devices download each round.
	if want := 5 * 10 * paramBytes; drop.DownlinkBytes != want {
		t.Fatalf("downlink = %d, want %d", drop.DownlinkBytes, want)
	}
	// Aggregate uploads from all 10; drop only from the 5 non-stragglers.
	if agg.UplinkBytes != 2*drop.UplinkBytes {
		t.Fatalf("uplink: agg %d, drop %d (want 2x)", agg.UplinkBytes, drop.UplinkBytes)
	}
}

func TestCostAdd(t *testing.T) {
	c := Cost{UplinkBytes: 1, DownlinkBytes: 2, DeviceEpochs: 3, WastedEpochs: 4}
	c.Add(Cost{UplinkBytes: 10, DownlinkBytes: 20, DeviceEpochs: 30, WastedEpochs: 40})
	if c.UplinkBytes != 11 || c.DownlinkBytes != 22 || c.DeviceEpochs != 33 || c.WastedEpochs != 44 {
		t.Fatalf("Cost.Add wrong: %+v", c)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	hits := make([]int, 37)
	parallelFor(37, 4, func(i int) { hits[i]++ })
	for i, c := range hits {
		if c != 1 {
			t.Fatalf("index %d hit %d times", i, c)
		}
	}
	// Zero work is a no-op.
	parallelFor(0, 4, func(i int) { t.Fatal("called for n=0") })
}
