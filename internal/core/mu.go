package core

// muController implements the adaptive-μ heuristic of Section 5.3.2 and
// Figure 3: "increase μ by 0.1 whenever the loss increases and decrease it
// by 0.1 whenever the loss decreases for 5 consecutive rounds". μ never
// goes below zero.
type muController struct {
	mu       float64
	step     float64
	patience int

	lastLoss   float64
	haveLoss   bool
	downStreak int
}

func newMuController(mu0, step float64, patience int) *muController {
	return &muController{mu: mu0, step: step, patience: patience}
}

// Mu returns the coefficient to use for the next round.
func (c *muController) Mu() float64 { return c.mu }

// muState is the controller's serializable state, carried in the
// coordinator's checkpoint so a resumed adaptive run continues the
// controller instead of restarting it at Config.Mu.
type muState struct {
	Mu         float64
	LastLoss   float64
	HaveLoss   bool
	DownStreak int
}

func (c *muController) snapshot() muState {
	return muState{Mu: c.mu, LastLoss: c.lastLoss, HaveLoss: c.haveLoss, DownStreak: c.downStreak}
}

func (c *muController) restore(st muState) {
	c.mu, c.lastLoss, c.haveLoss, c.downStreak = st.Mu, st.LastLoss, st.HaveLoss, st.DownStreak
}

// Observe feeds the global training loss after a round and updates μ.
func (c *muController) Observe(loss float64) {
	if !c.haveLoss {
		c.lastLoss = loss
		c.haveLoss = true
		return
	}
	switch {
	case loss > c.lastLoss:
		c.mu += c.step
		c.downStreak = 0
	case loss < c.lastLoss:
		c.downStreak++
		if c.downStreak >= c.patience {
			c.mu -= c.step
			if c.mu < 0 {
				c.mu = 0
			}
			c.downStreak = 0
		}
	default:
		// Flat loss: neither streak advances nor μ changes.
	}
	c.lastLoss = loss
}
