package core

import (
	"bytes"
	"runtime"
	"testing"

	"fedprox/internal/obs"
)

// TestVTimeParallelismParity is the solve pool's correctness bar: a
// virtual-time run at any Parallelism produces the bit-identical
// History AND the byte-identical JSONL trace of the serial run. The
// pool may only parallelize the solves between event-queue pops; every
// observable ordering (arrivals, folds, trace emission) stays the
// event queue's.
func TestVTimeParallelismParity(t *testing.T) {
	for _, mode := range []AggregationMode{AsyncTotal, Buffered} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(par int) (*History, []byte) {
				mdl, fed := tinyWorkload()
				cfg := vtimeAsyncConfig(mode, fed.NumDevices())
				if mode == Buffered {
					cfg.Async.BufferK = 3
				}
				cfg.Parallelism = par
				var buf bytes.Buffer
				cfg.Trace = obs.NewJSONL(&buf)
				h, err := Run(mdl, fed, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return h, buf.Bytes()
			}
			serialH, serialTrace := run(1)
			if len(serialTrace) == 0 {
				t.Fatal("serial run emitted no trace")
			}
			for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
				h, trace := run(par)
				if !historiesEqual(serialH, h) {
					t.Errorf("Parallelism=%d history differs from serial", par)
				}
				if !bytes.Equal(serialTrace, trace) {
					t.Errorf("Parallelism=%d trace differs from serial (%d vs %d bytes)",
						par, len(serialTrace), len(trace))
				}
			}
		})
	}
}

// TestSyncParallelismParity: the synchronous driver's bounded fan-out
// keeps the same contract — replies land in selection order regardless
// of solve completion order.
func TestSyncParallelismParity(t *testing.T) {
	run := func(par int) (*History, []byte) {
		mdl, fed := tinyWorkload()
		cfg := FedProx(5, 5, 3, 0.01, 1)
		cfg.StragglerFraction = 0.5
		cfg.EvalEvery = 2
		cfg.Parallelism = par
		var buf bytes.Buffer
		cfg.Trace = obs.NewJSONL(&buf)
		h, err := Run(mdl, fed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h, buf.Bytes()
	}
	serialH, serialTrace := run(1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		h, trace := run(par)
		if !historiesEqual(serialH, h) {
			t.Errorf("Parallelism=%d sync history differs from serial", par)
		}
		if !bytes.Equal(serialTrace, trace) {
			t.Errorf("Parallelism=%d sync trace differs from serial", par)
		}
	}
}
