package core

import (
	"math"
	"strings"
	"testing"
)

// nanPoint returns a Point with every optional float NaN, as the
// recorders produce for untracked features.
func nanPoint(round int, loss, acc float64) Point {
	return Point{
		Round:           round,
		TrainLoss:       loss,
		TestAcc:         acc,
		GradVar:         math.NaN(),
		B:               math.NaN(),
		MeanGamma:       math.NaN(),
		MeanStaleness:   math.NaN(),
		MaxStaleness:    math.NaN(),
		VirtualSeconds:  math.NaN(),
		MeanEpochsDone:  math.NaN(),
		PartialFraction: math.NaN(),
	}
}

// TestHistoryStringGolden pins the rendered table byte for byte for the
// column combinations the executors produce, including the
// staleness+work+vtime combination whose headers drifted from the rows
// under the old per-branch format strings.
func TestHistoryStringGolden(t *testing.T) {
	sync := &History{Label: "FedProx(mu=1)", Points: []Point{
		nanPoint(0, 1.25, 0.5),
		func() Point { p := nanPoint(5, 0.875, 0.625); p.GradVar = 0.25; p.Mu = 1; return p }(),
	}}
	wantSync := strings.Join([]string{
		"FedProx(mu=1)",
		" round   train-loss  test-acc     grad-var       mu",
		"     0       1.2500    0.5000            -        0",
		"     5       0.8750    0.6250         0.25        1",
		"",
	}, "\n")
	if got := sync.String(); got != wantSync {
		t.Errorf("sync table:\n got:\n%s\nwant:\n%s", got, wantSync)
	}

	all := &History{Label: "FedBuff(k=5) [vtime]", Points: []Point{
		func() Point {
			p := nanPoint(0, 1.25, 0.5)
			p.VirtualSeconds = 0
			return p
		}(),
		func() Point {
			p := nanPoint(5, 0.875, 0.625)
			p.Mu = 1
			p.MeanStaleness = 1.5
			p.MaxStaleness = 4
			p.MeanEpochsDone = 12.25
			p.PartialFraction = 0.4
			p.VirtualSeconds = 103.0625
			return p
		}(),
	}}
	wantAll := strings.Join([]string{
		"FedBuff(k=5) [vtime]",
		" round   train-loss  test-acc     grad-var       mu mean-stale max-stale mean-epochs  partial    vtime-s",
		"     0       1.2500    0.5000            -        0          -         -           -        -      0.000",
		"     5       0.8750    0.6250            -        1       1.50         4       12.25      40%    103.062",
		"",
	}, "\n")
	if got := all.String(); got != wantAll {
		t.Errorf("staleness+work+vtime table:\n got:\n%s\nwant:\n%s", got, wantAll)
	}

	// Alignment holds structurally for every combination: each line of
	// the table body is exactly as long as the header line.
	for _, h := range []*History{sync, all} {
		lines := strings.Split(strings.TrimRight(h.String(), "\n"), "\n")
		for i := 2; i < len(lines); i++ {
			if len(lines[i]) != len(lines[1]) {
				t.Errorf("%s: row %d width %d != header width %d", h.Label, i-1, len(lines[i]), len(lines[1]))
			}
		}
	}
}

// TestHistoryStringWideCell verifies a cell wider than its historical
// column width stretches the whole column instead of breaking alignment.
func TestHistoryStringWideCell(t *testing.T) {
	h := &History{Label: "wide", Points: []Point{
		func() Point { p := nanPoint(1234567, 1e10, 0.5); return p }(),
	}}
	lines := strings.Split(strings.TrimRight(h.String(), "\n"), "\n")
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header width %d != row width %d:\n%s", len(lines[1]), len(lines[2]), h.String())
	}
}

func TestReplyLatencyQuantiles(t *testing.T) {
	h := &History{}
	for _, q := range h.ReplyLatencyQuantiles(0.5, 0.9) {
		if !math.IsNaN(q) {
			t.Fatalf("empty trace must yield NaN quantiles, got %v", q)
		}
	}
	// Latencies 1..5 in scrambled arrival order.
	for i, lat := range []float64{3, 1, 5, 2, 4} {
		h.Arrivals = append(h.Arrivals, Arrival{Seq: i, Sent: 10, Arrived: 10 + lat})
	}
	got := h.ReplyLatencyQuantiles(0, 0.5, 0.75, 1)
	want := []float64{1, 3, 4, 5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("quantile %d = %v, want %v", i, got[i], want[i])
		}
	}
	if q := h.ReplyLatencyQuantiles(1.5)[0]; !math.IsNaN(q) {
		t.Errorf("out-of-range quantile must be NaN, got %v", q)
	}
}
