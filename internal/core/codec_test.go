package core

import (
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
)

// TestRawCodecMatchesUncompressed is half of the subsystem's defining
// guarantee: the raw codec is a pure pass-through, so enabling it must
// reproduce the no-codec trajectory bit for bit — and, under
// AggregatePartial (every selected device contacted), the byte and epoch
// accounting too.
func TestRawCodecMatchesUncompressed(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.15))
	mdl := linear.ForDataset(fed)

	base := FedProx(12, 8, 5, 0.01, 1)
	base.StragglerFraction = 0.5
	base.EvalEvery = 3

	plain, err := Run(mdl, fed, base)
	if err != nil {
		t.Fatal(err)
	}
	coded := base
	coded.Codec = comm.Spec{Name: "raw"}
	withRaw, err := Run(mdl, fed, coded)
	if err != nil {
		t.Fatal(err)
	}

	if len(plain.Points) != len(withRaw.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(plain.Points), len(withRaw.Points))
	}
	for i := range plain.Points {
		p, q := plain.Points[i], withRaw.Points[i]
		if p.TrainLoss != q.TrainLoss {
			t.Fatalf("round %d: loss %.17g != %.17g", p.Round, p.TrainLoss, q.TrainLoss)
		}
		if p.TestAcc != q.TestAcc {
			t.Fatalf("round %d: acc %g != %g", p.Round, p.TestAcc, q.TestAcc)
		}
		if p.Participants != q.Participants {
			t.Fatalf("round %d: participants %d != %d", p.Round, p.Participants, q.Participants)
		}
		// AggregatePartial contacts every selected device, so the raw
		// codec's contacted-only accounting coincides with the legacy
		// accounting exactly — except EvalBytes, which only the explicit
		// codec link model charges (legacy accounting predates eval
		// encoding and keeps it at zero).
		pc, qc := p.Cost, q.Cost
		if pc.EvalBytes != 0 {
			t.Fatalf("round %d: legacy accounting charged eval bytes: %+v", p.Round, pc)
		}
		if q.Round > 0 && qc.EvalBytes == 0 {
			t.Fatalf("round %d: codec accounting missed eval bytes: %+v", q.Round, qc)
		}
		qc.EvalBytes = 0
		if pc != qc {
			t.Fatalf("round %d: cost %+v != %+v", p.Round, pc, qc)
		}
	}
}

// TestRawCodecMatchesUnderDrop covers the DropStragglers corner: the
// trajectory (loss/accuracy/participants) must still match bit for bit
// even though the codec path skips contacting dropped stragglers and so
// accounts fewer bytes and epochs.
func TestRawCodecMatchesUnderDrop(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.15))
	mdl := linear.ForDataset(fed)

	base := FedAvg(10, 8, 5, 0.01)
	base.StragglerFraction = 0.9
	base.EvalEvery = 2

	plain, err := Run(mdl, fed, base)
	if err != nil {
		t.Fatal(err)
	}
	coded := base
	coded.Codec = comm.Spec{Name: "raw"}
	withRaw, err := Run(mdl, fed, coded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Points {
		p, q := plain.Points[i], withRaw.Points[i]
		if p.TrainLoss != q.TrainLoss || p.TestAcc != q.TestAcc || p.Participants != q.Participants {
			t.Fatalf("round %d diverged: %+v vs %+v", p.Round, p, q)
		}
	}
	fp, fq := plain.Final().Cost, withRaw.Final().Cost
	if fq.WastedEpochs != 0 {
		t.Fatalf("codec path charged %d wasted epochs; it never contacts dropped stragglers", fq.WastedEpochs)
	}
	if fq.DownlinkBytes >= fp.DownlinkBytes {
		t.Fatalf("codec path should charge fewer downloads under drop: %d vs %d", fq.DownlinkBytes, fp.DownlinkBytes)
	}
}

// TestLossyCodecsCompressWithoutDivergence is the other half of the
// acceptance bar: on the synthetic workload, qsgd and topk must cut
// recorded uplink bytes by at least 4x while landing within 10% of the
// uncompressed final training loss.
func TestLossyCodecsCompressWithoutDivergence(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.15))
	mdl := linear.ForDataset(fed)

	base := FedProx(30, 10, 10, 0.01, 1)
	base.StragglerFraction = 0.5
	base.EvalEvery = 10

	ref, err := Run(mdl, fed, base)
	if err != nil {
		t.Fatal(err)
	}
	refLoss := ref.Final().TrainLoss
	refUp := ref.Final().Cost.UplinkBytes

	cases := []struct {
		codec, down comm.Spec
	}{
		// qsgd tolerates both directions; topk must ride over a dense
		// broadcast (sparsifying the chained downlink starves devices of
		// coordinate updates), the asymmetric shape real deployments use.
		{codec: comm.Spec{Name: "qsgd", Bits: 8}},
		{codec: comm.Spec{Name: "delta+qsgd", Bits: 8}},
		{codec: comm.Spec{Name: "topk", TopK: 0.1}, down: comm.Spec{Name: "raw"}},
	}
	for _, tc := range cases {
		t.Run(tc.codec.String(), func(t *testing.T) {
			cfg := base
			cfg.Codec = tc.codec
			cfg.DownlinkCodec = tc.down
			h, err := Run(mdl, fed, cfg)
			if err != nil {
				t.Fatal(err)
			}
			up := h.Final().Cost.UplinkBytes
			if ratio := float64(refUp) / float64(up); ratio < 4 {
				t.Errorf("uplink compression %.2fx < 4x (%d vs %d bytes)", ratio, up, refUp)
			}
			loss := h.Final().TrainLoss
			if rel := (loss - refLoss) / refLoss; rel > 0.10 {
				t.Errorf("final loss %.4f is %.1f%% above uncompressed %.4f (budget 10%%)",
					loss, 100*rel, refLoss)
			}
		})
	}
}

// TestCodecAcceptsCheckpointing: link state (residuals, rounding
// streams, broadcast shadows) is serialized into the coordinator's
// checkpoint, so synchronous codec runs may checkpoint — the
// resume-equivalence test lives in internal/checkpoint.
func TestCodecAcceptsCheckpointing(t *testing.T) {
	cfg := FedProx(2, 2, 1, 0.01, 1)
	cfg.Codec = comm.Spec{Name: "qsgd"}
	cfg.Checkpointer = &nopCheckpointer{}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("codec + checkpointer rejected: %v", err)
	}
}

type nopCheckpointer struct{}

func (nopCheckpointer) Load() (int, []float64, *History, []byte, error) { return 0, nil, nil, nil, nil }
func (nopCheckpointer) Save(int, []float64, *History, []byte) error     { return nil }
