package core

import (
	"fedprox/internal/data"
	"fedprox/internal/frand"
)

// Env is the simulated federated environment: which devices are selected
// each round, which of them straggle and with what epoch budget, and the
// mini-batch order each device uses.
//
// Every draw is a pure function of (Config.Seed, round, device), so two
// methods compared under the same seed face identical environments — the
// paper's "fix the randomly selected devices, the stragglers, and
// mini-batch orders across all runs" protocol. Env is exported so
// baselines outside this package (e.g. internal/feddane) can run inside
// the identical environment.
type Env struct {
	cfg     Config
	fed     *data.Federated
	weights []float64

	selRoot   *frand.Source
	stragRoot *frand.Source
	batchRoot *frand.Source
	initRng   *frand.Source
}

// NewEnv builds the environment for one (dataset, config) pair.
func NewEnv(fed *data.Federated, cfg Config) *Env {
	root := frand.New(cfg.Seed)
	return &Env{
		cfg:       cfg.WithDefaults(),
		fed:       fed,
		weights:   fed.Weights(),
		selRoot:   root.Split("selection"),
		stragRoot: root.Split("stragglers"),
		batchRoot: root.Split("batches"),
		initRng:   root.Split("init"),
	}
}

// InitRNG returns the stream used to initialize model parameters, shared
// by all methods under the same seed (same w⁰ for every compared run).
func (e *Env) InitRNG() *frand.Source { return e.initRng.Split("params") }

// SelectDevices returns the K device indices participating in the given
// round under the configured sampling scheme.
func (e *Env) SelectDevices(round int) []int {
	return drawSelection(e.cfg, e.selRoot.SplitIndex(round), e.weights, e.fed.NumDevices())
}

// drawSelection is the single implementation of per-round device
// selection: Env and the Coordinator both call it, so every executor and
// baseline sees the identical draw for the same seed — the paper's
// fixed-environment comparison protocol.
func drawSelection(cfg Config, rng *frand.Source, weights []float64, n int) []int {
	k := cfg.ClientsPerRound
	if k > n {
		k = n
	}
	switch cfg.Sampling {
	case WeightedSimpleAvg:
		return rng.WeightedChoice(weights, k)
	default:
		return rng.Choice(n, k)
	}
}

// StragglerPlan returns, for each selected device, its epoch budget and
// whether it was a straggler this round.
//
// With the default model, a StragglerFraction of the selected devices are
// designated stragglers and draw a budget uniformly from [1, E]
// (Section 5.2); everyone else gets the full E epochs. When
// Config.Capability is set, each device's budget instead comes from its
// simulated hardware against the round's global clock cycle, and a device
// straggles exactly when its budget falls short of E.
func (e *Env) StragglerPlan(round int, selected []int) (epochs []int, straggler []bool) {
	return drawStragglerPlan(e.cfg, e.stragRoot.SplitIndex(round), round, selected)
}

// drawStragglerPlan is the single implementation of the per-round
// straggler designation, shared by Env and the Coordinator. rng is the
// round's straggler stream; it is only consumed when designated
// stragglers exist (the capability model replaces the draw entirely).
func drawStragglerPlan(cfg Config, rng *frand.Source, round int, selected []int) (epochs []int, straggler []bool) {
	n := len(selected)
	epochs = make([]int, n)
	straggler = make([]bool, n)
	if cfg.Capability != nil {
		for i, k := range selected {
			b := cfg.Capability.EpochBudget(round, k, cfg.LocalEpochs)
			if b < 0 {
				b = 0
			}
			if b > cfg.LocalEpochs {
				b = cfg.LocalEpochs
			}
			epochs[i] = b
			straggler[i] = b < cfg.LocalEpochs
		}
		return epochs, straggler
	}
	for i := range epochs {
		epochs[i] = cfg.LocalEpochs
	}
	nStrag := int(cfg.StragglerFraction*float64(n) + 0.5)
	if nStrag == 0 {
		return epochs, straggler
	}
	for _, i := range rng.Choice(n, nStrag) {
		straggler[i] = true
		epochs[i] = rng.IntRange(1, cfg.LocalEpochs)
	}
	return epochs, straggler
}

// BatchRNG returns the mini-batch ordering stream for one device in one
// round. It depends only on (seed, round, device), never on the method.
func (e *Env) BatchRNG(round, device int) *frand.Source {
	return e.batchRoot.SplitIndex(round).SplitIndex(device)
}

// Weights returns p_k = n_k/n for every device.
func (e *Env) Weights() []float64 { return e.weights }

// Config returns the environment's configuration (with defaults applied).
func (e *Env) Config() Config { return e.cfg }
