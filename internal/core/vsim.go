package core

// This file drives the asynchronous aggregation modes (AsyncTotal,
// Buffered) on the internal/vtime virtual clock. It is a pure driver of
// the shared core.Coordinator: every protocol decision — device choice,
// staleness damping, milestone cadence, the deadline and byte-budget
// policies — happens in the coordinator; this loop only turns Dispatch
// commands into eagerly computed local solves whose replies arrive on
// the seeded event queue in latency order.
//
// What the fednet runtime buys with wall-clock liveness the simulator
// buys back as reproducibility: the same seed always yields the same
// History, bit for bit, because arrival order is decided by the seeded
// latency model and the queue's (time, seq) tiebreak — never by
// goroutine scheduling. Both executors feed the identical coordinator,
// so their trajectories coincide by construction.

import (
	"errors"

	"fedprox/internal/data"
	"fedprox/internal/model"
)

// runAsyncVTime executes the asynchronous aggregation modes on the
// virtual clock: up to MaxInFlight devices are in flight at all times,
// each reply folds (or buffers) damped by its staleness the moment it
// arrives, and Rounds counts model milestones of roundSize replies each,
// evaluated on the sync cadence.
func runAsyncVTime(m model.Model, fed *data.Federated, cfg Config) (*History, error) {
	if fed.NumDevices() == 0 {
		return nil, errors.New("core: vtime async run on an empty network")
	}
	coord, dev, err := newSimPair(m, fed, cfg)
	if err != nil {
		return nil, err
	}
	vt := newVtimer(cfg.VTime, int64(m.NumParams()*8))
	coord.Tick(vt.eng.Now())
	lat := cfg.VTime.Model

	var (
		queue  []Command
		runErr error
		done   bool
	)
	queue, err = coord.Start()
	if err != nil {
		return nil, err
	}
	for {
		for len(queue) > 0 && runErr == nil {
			cmd := queue[0]
			queue = queue[1:]
			switch v := cmd.(type) {
			case Dispatch:
				// The local solve runs eagerly on the shared device
				// runtime — the simulator already knows the answer — and
				// only the reply's arrival is deferred to the event
				// queue. In-process shipping cannot fail, so the transfer
				// is confirmed immediately. The compute leg charges the
				// epochs the device actually ran (a device-side budget
				// shortens it).
				coord.DispatchSent(v.Device)
				r, err := dev.HandleDispatch(v)
				if err != nil {
					runErr = err
					break
				}
				sent := vt.eng.Now()
				arrive := sent +
					lat.DownlinkSeconds(v.Seq, v.Device, v.DownBytes) +
					lat.ComputeSeconds(v.Seq, v.Device, r.EpochsDone) +
					lat.UplinkSeconds(v.Seq, v.Device, vt.uplinkBytes(r))
				// Stamp the reply's own latency: the deadline policy must
				// judge it, not the clock delta at arrival (an eval charge
				// can overtake the scheduled arrival time).
				r.Timed = true
				r.Seq = v.Seq
				r.Rel = arrive - sent
				r.Lost = lat.Dropped(v.Seq, v.Device)
				vt.eng.Schedule(arrive, func() {
					coord.Tick(vt.eng.Now())
					more, err := coord.HandleReply(r)
					if err != nil && runErr == nil {
						runErr = err
						return
					}
					queue = append(queue, more...)
				})
			case Evaluate:
				// Eval traffic is charged on the virtual clock too, so eval
				// cadence affects deadlines consistently with the analytic
				// byte accounting.
				vt.chargeEval(v.WireBytes)
				coord.Tick(vt.eng.Now())
				more, err := coord.EvalDone(simEval(m, fed, v))
				if err != nil {
					runErr = err
					break
				}
				queue = append(queue, more...)
			case Done:
				done = true
			case Checkpoint, ObserveLoss, AdvanceClock:
				// Never emitted for asynchronous schedules.
			}
		}
		if runErr != nil {
			return nil, runErr
		}
		if done {
			return coord.History(), nil
		}
		// Drain semantics: replies arriving after the schedule completed
		// are waste, recorded in the arrival trace but not the evaluated
		// history — the coordinator emits Done only once the last
		// in-flight reply has landed.
		if !vt.eng.Step() {
			return nil, errors.New("core: vtime async stalled with no replies in flight")
		}
	}
}
