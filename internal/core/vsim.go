package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/metrics"
	"fedprox/internal/model"
	"fedprox/internal/solver"
	"fedprox/internal/vtime"
)

// This file runs the simulator on the internal/vtime virtual clock.
//
// Synchronous rounds gain duration semantics: a round costs its critical
// path — the slowest accepted device's downlink + compute + uplink —
// plus the evaluation broadcast's transfer time, and the clock-native
// straggler policies (VTimeConfig.DeadlineSeconds, VTimeConfig.RoundBytes)
// drop the arrival-order tail by time or by wire bytes instead of by a
// designated epoch budget.
//
// The asynchronous modes (AsyncTotal, Buffered) become a deterministic
// discrete-event simulation that mirrors the fednet coordinator fold for
// fold: device replies arrive in latency order on the event queue,
// staleness damping alpha/(1+s)^p applies exactly as in
// internal/fednet/async.go, and the environment streams (selection,
// straggler budgets, batch orders) are split per dispatch sequence the
// same way the fednet async coordinator splits them. What the runtime
// buys with wall-clock liveness the simulator buys back as
// reproducibility: the same seed always yields the same History, bit for
// bit, because arrival order is decided by the seeded latency model and
// the queue's (time, seq) tiebreak — never by goroutine scheduling.

// vsim is the synchronous path's virtual-time state: the engine, the
// latency model, per-transfer sequence counters, and the arrival trace.
type vsim struct {
	cfg        VTimeConfig
	eng        *vtime.Engine
	paramBytes int64
	seq        int // per-dispatch jitter/loss stream index
	evalSeq    int // per-eval-broadcast stream index
	arrivals   []Arrival
}

func newVsim(cfg VTimeConfig, paramBytes int64) *vsim {
	return &vsim{cfg: cfg, eng: vtime.NewEngine(), paramBytes: paramBytes}
}

// chargeEval advances the clock by the evaluation broadcast's transfer
// time. Eval traffic rides the shared downlink (vtime.EvalDevice), so a
// codec that shrinks the eval broadcast also shrinks the time it costs —
// the virtual-clock counterpart of Cost.EvalBytes.
func (v *vsim) chargeEval(bytes int64) {
	v.eng.Advance(v.cfg.Model.DownlinkSeconds(v.evalSeq, vtime.EvalDevice, bytes))
	v.evalSeq++
}

// planRound computes one synchronous round's virtual timing: per-device
// arrival times for every reply, the clock-native drop policies applied
// in arrival order, and the round's critical-path duration charged to
// the clock. It returns the per-index fate of each selected device
// (ArrivalFolded for replies the caller should aggregate). downBytes and
// upBytes are the encoded wire sizes (zeroes mean the uncompressed
// paramBytes of the legacy accounting); ok marks indices that produced a
// reply at all (policy-dropped stragglers never transmit).
func (v *vsim) planRound(t int, selected, epochs []int, downBytes, upBytes []int64, ok []bool) []DropReason {
	lat := v.cfg.Model
	start := v.eng.Now()
	type leg struct {
		i     int
		seq   int
		rel   float64 // arrival relative to the round's broadcast
		bytes int64
		lost  bool
	}
	legs := make([]leg, 0, len(selected))
	drop := make([]DropReason, len(selected))
	for i, k := range selected {
		if !ok[i] {
			drop[i] = DropPolicy
			continue
		}
		seq := v.seq
		v.seq++
		db, ub := downBytes[i], upBytes[i]
		if db == 0 {
			db = v.paramBytes
		}
		if ub == 0 {
			ub = v.paramBytes
		}
		rel := lat.DownlinkSeconds(seq, k, db) +
			lat.ComputeSeconds(t, k, epochs[i]) +
			lat.UplinkSeconds(seq, k, ub)
		legs = append(legs, leg{i: i, seq: seq, rel: rel, bytes: db + ub, lost: lat.Dropped(seq, k)})
	}
	// Replies race: process them in (arrival, seq) order, the same
	// ordering rule the event queue uses.
	sort.Slice(legs, func(a, b int) bool {
		if legs[a].rel != legs[b].rel {
			return legs[a].rel < legs[b].rel
		}
		return legs[a].seq < legs[b].seq
	})
	deadline := v.cfg.DeadlineSeconds
	duration := 0.0
	var cum int64
	for _, l := range legs {
		// The window budget is consumed in arrival order by every
		// transfer — including replies later lost or late; their bytes
		// moved on the wire too.
		cum += l.bytes
		reason := ArrivalFolded
		switch {
		case l.lost:
			reason = DropLost
		case deadline > 0 && l.rel > deadline:
			reason = DropDeadline
		case v.cfg.RoundBytes > 0 && cum > v.cfg.RoundBytes:
			reason = DropBudget
		}
		// Server occupancy: an accepted reply holds the round until it
		// arrives; a late reply holds it until the deadline closes the
		// round; a lost reply until its expected arrival (the server's
		// detection point) or the deadline, whichever is earlier. A
		// budget-dropped reply holds nothing — budget drops are the
		// arrival-order tail, so the budget was spent (and the round
		// closed) before it arrived.
		occ := l.rel
		switch {
		case reason == DropBudget:
			occ = 0
		case deadline > 0 && (reason == DropDeadline || (reason == DropLost && deadline < occ)):
			occ = deadline
		}
		if occ > duration {
			duration = occ
		}
		drop[l.i] = reason
		stale := 0
		if reason != ArrivalFolded {
			stale = -1
		}
		v.arrivals = append(v.arrivals, Arrival{
			Device:    selected[l.i],
			Seq:       l.seq,
			Sent:      start,
			Arrived:   start + l.rel,
			Staleness: stale,
			Drop:      reason,
		})
	}
	v.eng.Advance(duration)
	return drop
}

// recordPoint evaluates the network at the (possibly codec-decoded) eval
// broadcast, charges the broadcast's transfer to the virtual clock when
// one is attached, and returns the shared point skeleton with the
// cumulative cost snapshot. Every executor of a run (the synchronous
// loop, the virtual-time async loop) builds its points here so the
// evaluation-and-clock semantics cannot drift; callers fill the
// protocol-specific columns (MeanGamma for synchronous runs, staleness
// for asynchronous ones).
func recordPoint(m model.Model, fed *data.Federated, w []float64, links *commLinks, vt *vsim, trackDissim bool, round, participants int, mu float64, cost *Cost) (Point, error) {
	weval := w
	evalWire := int64(m.NumParams() * 8)
	if links != nil {
		view, nbytes, err := links.evalBroadcast(w)
		if err != nil {
			return Point{}, err
		}
		weval = view
		cost.EvalBytes += nbytes
		evalWire = nbytes
	}
	virtual := math.NaN()
	if vt != nil {
		// Eval traffic is charged on the virtual clock too, so eval
		// cadence affects deadlines consistently with the analytic byte
		// accounting.
		vt.chargeEval(evalWire)
		virtual = vt.eng.Now()
	}
	p := Point{
		Round:          round,
		TrainLoss:      metrics.GlobalLoss(m, fed, weval),
		TestAcc:        metrics.TestAccuracy(m, fed, weval),
		GradVar:        math.NaN(),
		B:              math.NaN(),
		Mu:             mu,
		MeanGamma:      math.NaN(),
		Participants:   participants,
		MeanStaleness:  math.NaN(),
		MaxStaleness:   math.NaN(),
		VirtualSeconds: virtual,
		Cost:           *cost,
	}
	if trackDissim {
		p.GradVar, p.B = metrics.Dissimilarity(m, fed, weval)
	}
	return p, nil
}

// vbufEntry is one decoded reply waiting in the virtual coordinator's
// aggregation buffer: the device's model delta relative to the broadcast
// view it trained from (folding deltas lets a stale reply contribute its
// local progress without dragging the model back to its older snapshot).
type vbufEntry struct {
	delta []float64
	nk    float64
	snap  int // model version the reply trained from
}

// foldStats accumulates staleness statistics across folds between
// evaluated points.
type foldStats struct {
	sum float64
	max float64
	n   int
}

// foldBuffered folds the buffered replies into w, FedBuff style: each
// delta damped by its own staleness at flush time and combined under the
// run's sampling scheme,
//
//	w ← w + Σ n_k·alpha_k·Δ_k / Σ n_k   (uniform sampling)
//	w ← w + Σ alpha_k·Δ_k / |B|         (weighted sampling)
//
// with alpha_k = alpha/(1+s)^p. This is the exact fold of
// internal/fednet/async.go; with fresh replies (s = 0, alpha = 1, views
// = w) it reproduces the synchronous round update. It reports whether
// the model advanced a version.
func foldBuffered(w []float64, buffer []vbufEntry, version int, sampling SamplingScheme, alpha, p float64, st *foldStats) bool {
	num := make([]float64, len(w))
	den := 0.0
	for _, e := range buffer {
		s := float64(version - e.snap)
		a := alpha / math.Pow(1+s, p)
		if st != nil {
			st.sum += s
			st.n++
			if s > st.max {
				st.max = s
			}
		}
		cw := 1.0
		if sampling != WeightedSimpleAvg {
			cw = e.nk
		}
		den += cw
		for i, v := range e.delta {
			num[i] += cw * a * v
		}
	}
	if den == 0 {
		return false
	}
	for i := range w {
		w[i] += num[i] / den
	}
	return true
}

// vinflight is one outstanding virtual TrainRequest: the decoded reply
// computed eagerly at dispatch (the simulator need not wait to know it)
// plus the latency-model verdicts that decide its fate on arrival.
type vinflight struct {
	device    int
	seq       int
	sent      float64
	epochs    int
	delta     []float64
	nk        float64
	downBytes int64
	upBytes   int64
	version   int        // model version of the broadcast snapshot
	fate      DropReason // DropLost/DropDeadline predetermined; else ArrivalFolded
}

// runAsyncVTime executes the asynchronous aggregation modes on the
// virtual clock. The schedule mirrors internal/fednet/async.go: up to
// MaxInFlight devices are in flight at all times, each reply folds (or
// buffers) damped by its staleness the moment it arrives, and Rounds
// counts model milestones of roundSize replies each, evaluated on the
// sync cadence. Device selection, partial epoch budgets, and batch
// orders come from the same per-dispatch environment streams the fednet
// coordinator uses.
func runAsyncVTime(m model.Model, fed *data.Federated, cfg Config) (*History, error) {
	cfg = cfg.withDefaults()
	async := cfg.Async.WithDefaults(cfg.ClientsPerRound)
	lat := cfg.VTime.Model
	flushSize, roundSize := 1, cfg.ClientsPerRound
	if async.Mode == Buffered {
		flushSize = async.BufferK
		roundSize = async.BufferK
	}
	target := cfg.Rounds * roundSize

	n := fed.NumDevices()
	if n == 0 {
		return nil, errors.New("core: vtime async run on an empty network")
	}
	root := frand.New(cfg.Seed)
	selRoot := root.Split("selection")
	stragRoot := root.Split("stragglers")
	batchRoot := root.Split("batches")
	w := m.InitParams(root.Split("init").Split("params"))

	var links *commLinks
	if cfg.Codec.Enabled() {
		var err error
		if links, err = newCommLinks(cfg.CommSpecs()); err != nil {
			return nil, err
		}
	}
	paramBytes := int64(m.NumParams() * 8)
	weights := fed.Weights()

	local := cfg.Solver
	if local == nil {
		local = solver.SGDSolver{}
	}
	scfg := solver.Config{LearningRate: cfg.LearningRate, BatchSize: cfg.BatchSize, Mu: cfg.Mu}

	vt := newVsim(cfg.VTime, paramBytes)
	eng := vt.eng
	hist := &History{Label: Label(cfg)}
	var (
		cost        Cost
		version     int
		folded      int
		dispatchSeq int
		inFlight    int
		buffer      []vbufEntry
		idle        = make(map[int]bool, n)
		windowBytes int64
		stats       foldStats
		runErr      error
	)
	for id := 0; id < n; id++ {
		idle[id] = true
	}

	record := func(milestone, participants int) error {
		p, err := recordPoint(m, fed, w, links, vt, cfg.TrackDissimilarity, milestone, participants, cfg.Mu, &cost)
		if err != nil {
			return err
		}
		if stats.n > 0 {
			p.MeanStaleness = stats.sum / float64(stats.n)
			p.MaxStaleness = stats.max
		}
		hist.Points = append(hist.Points, p)
		stats = foldStats{}
		return nil
	}

	// dispatch ships one virtual TrainRequest to an idle device chosen by
	// the environment streams (uniform or size-weighted over the sorted
	// idle set, mirroring the fednet async coordinator). The local solve
	// runs eagerly — the simulator already knows the answer — and only
	// the reply's arrival is deferred to the event queue.
	dispatch := func() error {
		ids := make([]int, 0, len(idle))
		for id := range idle {
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return nil
		}
		sort.Ints(ids)
		rng := selRoot.SplitIndex(dispatchSeq)
		var id int
		if cfg.Sampling == WeightedSimpleAvg {
			ws := make([]float64, len(ids))
			for i, d := range ids {
				ws[i] = weights[d]
			}
			id = ids[rng.WeightedChoice(ws, 1)[0]]
		} else {
			id = ids[rng.Intn(len(ids))]
		}
		epochs := cfg.LocalEpochs
		if cfg.StragglerFraction > 0 {
			srng := stragRoot.SplitIndex(dispatchSeq)
			if srng.Bernoulli(cfg.StragglerFraction) {
				epochs = srng.IntRange(1, cfg.LocalEpochs)
			}
		}
		batchRng := frand.New(batchRoot.SplitIndex(dispatchSeq).SplitIndex(id).State())
		seq := dispatchSeq
		dispatchSeq++

		var view []float64
		var downB int64
		if links != nil {
			var err error
			if view, downB, err = links.broadcast(id, w); err != nil {
				return err
			}
		} else {
			view = append([]float64(nil), w...)
			downB = paramBytes
		}
		cost.DownlinkBytes += downB
		cost.DeviceEpochs += epochs

		shard := fed.Shards[id]
		wk := local.Solve(m, shard.Train, view, scfg, epochs, batchRng)
		if cfg.Privacy != nil {
			cfg.Privacy.Apply(wk, view, seq, id)
		}
		upB := paramBytes
		if links != nil {
			var err error
			if wk, upB, err = links.uplink(id, wk, view); err != nil {
				return err
			}
		}
		delta := make([]float64, len(wk))
		for i := range wk {
			delta[i] = wk[i] - view[i]
		}

		sent := eng.Now()
		arrive := sent +
			lat.DownlinkSeconds(seq, id, downB) +
			lat.ComputeSeconds(seq, id, epochs) +
			lat.UplinkSeconds(seq, id, upB)
		fate := ArrivalFolded
		switch {
		case lat.Dropped(seq, id):
			fate = DropLost
		case cfg.VTime.DeadlineSeconds > 0 && arrive-sent > cfg.VTime.DeadlineSeconds:
			fate = DropDeadline
		}
		in := &vinflight{
			device:    id,
			seq:       seq,
			sent:      sent,
			epochs:    epochs,
			delta:     delta,
			nk:        float64(len(shard.Train)),
			downBytes: downB,
			upBytes:   upB,
			version:   version,
			fate:      fate,
		}
		delete(idle, id)
		inFlight++
		eng.Schedule(arrive, func() {
			inFlight--
			idle[in.device] = true
			reason := in.fate
			if reason == ArrivalFolded && folded >= target {
				reason = DropDrain
			}
			// The byte-budget window consumes each reply's full
			// round-trip (downlink + uplink) in arrival order, exactly as
			// the synchronous planRound does per round — a dispatch's
			// downlink is charged to the window its reply lands in, not
			// the window it was sent from.
			roundTrip := in.downBytes + in.upBytes
			if reason == ArrivalFolded && cfg.VTime.RoundBytes > 0 && windowBytes+roundTrip > cfg.VTime.RoundBytes {
				reason = DropBudget
			}
			staleness := version - in.version
			switch reason {
			case ArrivalFolded:
				cost.UplinkBytes += in.upBytes
				windowBytes += roundTrip
				buffer = append(buffer, vbufEntry{delta: in.delta, nk: in.nk, snap: in.version})
				folded++
				if len(buffer) >= flushSize {
					if foldBuffered(w, buffer, version, cfg.Sampling, async.Alpha, async.StalenessExponent, &stats) {
						version++
					}
					buffer = buffer[:0]
				}
				if folded%roundSize == 0 {
					windowBytes = 0 // the byte-budget window is per milestone
					milestone := folded / roundSize
					if milestone%cfg.EvalEvery == 0 || milestone == cfg.Rounds {
						if err := record(milestone, roundSize); err != nil && runErr == nil {
							runErr = err
						}
					}
				}
			case DropLost:
				// The reply vanished in transit: its uplink never reached
				// the coordinator, so no uplink bytes — only its downlink
				// consumed the window, and its work is waste.
				windowBytes += in.downBytes
				cost.WastedEpochs += in.epochs
				staleness = -1
			default: // DropDeadline, DropBudget, DropDrain
				// The transfer happened; the coordinator ignored it.
				cost.UplinkBytes += in.upBytes
				windowBytes += roundTrip
				cost.WastedEpochs += in.epochs
				staleness = -1
			}
			hist.Arrivals = append(hist.Arrivals, Arrival{
				Device:    in.device,
				Seq:       in.seq,
				Sent:      in.sent,
				Arrived:   eng.Now(),
				Staleness: staleness,
				Drop:      reason,
			})
		})
		return nil
	}

	if err := record(0, 0); err != nil {
		return nil, err
	}
	// Safety valve: policies that drop every reply (a byte budget below
	// one round-trip, a deadline below the fastest latency) would
	// otherwise dispatch forever.
	maxDispatches := 64*target + 1024
	for folded < target && runErr == nil {
		for folded+inFlight < target && inFlight < async.MaxInFlight && len(idle) > 0 {
			if dispatchSeq >= maxDispatches {
				return nil, fmt.Errorf("core: vtime async made no progress after %d dispatches — the deadline/byte-budget policy drops every reply", dispatchSeq)
			}
			if err := dispatch(); err != nil {
				return nil, err
			}
		}
		if inFlight == 0 {
			return nil, errors.New("core: vtime async stalled with no replies in flight")
		}
		eng.Step()
	}
	if runErr != nil {
		return nil, runErr
	}
	// Drain: in-flight replies arriving after the schedule completed are
	// waste, exactly as in the fednet coordinator's drain phase. They
	// extend the arrival trace but not the recorded history.
	eng.Run()
	return hist, nil
}
