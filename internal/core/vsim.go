package core

// This file drives the asynchronous aggregation modes (AsyncTotal,
// Buffered) on the internal/vtime virtual clock. It is a pure driver of
// the shared core.Coordinator: every protocol decision — device choice,
// staleness damping, milestone cadence, the deadline and byte-budget
// policies — happens in the coordinator; this loop only turns Dispatch
// commands into local solves whose replies arrive on the seeded event
// queue in latency order.
//
// What the fednet runtime buys with wall-clock liveness the simulator
// buys back as reproducibility: the same seed always yields the same
// History, bit for bit, because arrival order is decided by the seeded
// latency model and the queue's (time, seq) tiebreak — never by
// goroutine scheduling. Both executors feed the identical coordinator,
// so their trajectories coincide by construction.
//
// Solves run on a bounded worker pool (Config.Parallelism goroutines)
// underneath the event queue. This cannot perturb the trajectory
// because a reply's arrival time is a pure function of the dispatch: the
// compute leg charges the epochs the device will deterministically run
// (the dispatch's budget truncation) and the uplink leg charges the
// codec's data-independent wire size (comm.Spec.WireSize) — so arrivals
// are scheduled before the solve finishes, the solve result is joined
// only when its arrival event fires, and folds still apply in the
// queue's (time, seq) order. Per-device codec state stays single-owner:
// the at-most-one-outstanding-dispatch-per-device invariant means a
// device is redispatched only after its previous reply was folded,
// which happens only after its solve was joined.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"fedprox/internal/model"
)

// solveFuture is one in-flight local solve: the arrival event joins it.
type solveFuture struct {
	done chan struct{}
	r    Reply
	err  error
}

func (f *solveFuture) wait() (Reply, error) {
	<-f.done
	return f.r, f.err
}

// solvePool runs device solves on a fixed set of worker goroutines.
// Submission never blocks the event loop: the backlog is sized to the
// maximum number of in-flight dispatches.
type solvePool struct {
	work chan func()
	wg   sync.WaitGroup
}

func newSolvePool(workers, backlog int) *solvePool {
	if workers < 1 {
		workers = 1
	}
	p := &solvePool{work: make(chan func(), backlog)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.work {
				fn()
			}
		}()
	}
	return p
}

func (p *solvePool) submit(fn func() (Reply, error)) *solveFuture {
	f := &solveFuture{done: make(chan struct{})}
	p.work <- func() {
		f.r, f.err = fn()
		close(f.done)
	}
	return f
}

// close stops the workers after draining queued solves.
func (p *solvePool) close() {
	close(p.work)
	p.wg.Wait()
}

// runAsyncVTime executes the asynchronous aggregation modes on the
// virtual clock: up to MaxInFlight devices are in flight at all times,
// each reply folds (or buffers) damped by its staleness the moment it
// arrives, and Rounds counts model milestones of roundSize replies each,
// evaluated on the sync cadence.
func runAsyncVTime(m model.Model, fl Fleet, cfg Config) (*History, error) {
	if fl.NumDevices() == 0 {
		return nil, errors.New("core: vtime async run on an empty network")
	}
	coord, dev, err := newSimPair(m, fl, cfg)
	if err != nil {
		return nil, err
	}
	vt := newVtimer(cfg.VTime, int64(m.NumParams()*8))
	coord.Tick(vt.eng.Now())
	lat := cfg.VTime.Model

	// The uplink leg is charged before the solve completes, which is
	// only sound because every codec's encoded size is a pure function
	// of the parameter count (asserted against the realized reply at
	// arrival below).
	predictedUp := vt.paramBytes
	if cfg.Codec.Enabled() {
		_, up := cfg.CommSpecs()
		predictedUp = up.WireSize(m.NumParams())
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := newSolvePool(workers, cfg.Async.WithDefaults(cfg.ClientsPerRound).MaxInFlight+workers)
	defer pool.close()

	var (
		queue  []Command
		runErr error
		done   bool
	)
	queue, err = coord.Start()
	if err != nil {
		return nil, err
	}
	for {
		for len(queue) > 0 && runErr == nil {
			cmd := queue[0]
			queue = queue[1:]
			switch v := cmd.(type) {
			case Dispatch:
				// The local solve is handed to the worker pool — the
				// simulator will know the answer before it is due — and
				// the reply's arrival is scheduled immediately from the
				// dispatch alone. In-process shipping cannot fail, so
				// the transfer is confirmed immediately. The compute leg
				// charges the epochs the device will actually run: the
				// budget truncation is deterministic device-side
				// arithmetic, mirrored here.
				coord.DispatchSent(v.Device)
				epochs := v.Epochs
				if v.EpochBudget > 0 && v.EpochBudget < epochs {
					epochs = v.EpochBudget
				}
				up := predictedUp
				fut := pool.submit(func() (Reply, error) { return dev.HandleDispatch(v) })
				sent := vt.eng.Now()
				arrive := sent +
					lat.DownlinkSeconds(v.Seq, v.Device, v.DownBytes) +
					lat.ComputeSeconds(v.Seq, v.Device, epochs) +
					lat.UplinkSeconds(v.Seq, v.Device, up)
				// Stamp the reply's own latency: the deadline policy must
				// judge it, not the clock delta at arrival (an eval charge
				// can overtake the scheduled arrival time).
				rel := arrive - sent
				lost := lat.Dropped(v.Seq, v.Device)
				seq := v.Seq
				vt.eng.Schedule(arrive, func() {
					r, err := fut.wait()
					if err != nil {
						if runErr == nil {
							runErr = err
						}
						return
					}
					if r.EpochsDone != epochs || vt.uplinkBytes(r) != up {
						if runErr == nil {
							runErr = fmt.Errorf("core: vtime arrival charged %d epochs/%d uplink bytes but device %d realized %d/%d",
								epochs, up, r.Device, r.EpochsDone, vt.uplinkBytes(r))
						}
						return
					}
					r.Timed = true
					r.Seq = seq
					r.Rel = rel
					r.Lost = lost
					coord.Tick(vt.eng.Now())
					more, err := coord.HandleReply(r)
					if err != nil && runErr == nil {
						runErr = err
						return
					}
					queue = append(queue, more...)
				})
			case Evaluate:
				// Eval traffic is charged on the virtual clock too, so eval
				// cadence affects deadlines consistently with the analytic
				// byte accounting.
				vt.chargeEval(v.WireBytes)
				coord.Tick(vt.eng.Now())
				more, err := coord.EvalDone(simEval(m, fl, v))
				if err != nil {
					runErr = err
					break
				}
				queue = append(queue, more...)
			case Done:
				done = true
			case Checkpoint, ObserveLoss, AdvanceClock:
				// Never emitted for asynchronous schedules.
			}
		}
		if runErr != nil {
			return nil, runErr
		}
		if done {
			return coord.History(), nil
		}
		// Drain semantics: replies arriving after the schedule completed
		// are waste, recorded in the arrival trace but not the evaluated
		// history — the coordinator emits Done only once the last
		// in-flight reply has landed.
		if !vt.eng.Step() {
			return nil, errors.New("core: vtime async stalled with no replies in flight")
		}
	}
}
