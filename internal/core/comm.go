package core

import (
	"fmt"

	"fedprox/internal/comm"
)

// commLinks is the simulator's view of the network codec state: one
// comm.LinkState holding, per device, the downlink and uplink codec
// instances and the last delivered broadcast. It is the same state the
// fednet runtime keeps at its two endpoints, which is why a
// codec-enabled simulator run and a fednet run under the same seed see
// identical compressed streams.
type commLinks struct {
	state *comm.LinkState
	// eval is the shared evaluation-broadcast link (see ROADMAP "Compress
	// evaluation traffic"): with a codec configured, every evaluation
	// happens at the decoded eval broadcast — exactly what the fednet
	// workers compute their metrics from — and its encoded size lands in
	// Cost.EvalBytes.
	eval *comm.EvalLink
}

func newCommLinks(downSpec, upSpec comm.Spec) (*commLinks, error) {
	state, err := comm.NewLinkState(downSpec, upSpec)
	if err != nil {
		return nil, err
	}
	eval, err := comm.NewEvalLink(downSpec)
	if err != nil {
		return nil, err
	}
	return &commLinks{state: state, eval: eval}, nil
}

// evalBroadcast encodes wt on the shared eval link and returns the view
// the network evaluates at plus the encoded broadcast size.
func (l *commLinks) evalBroadcast(wt []float64) ([]float64, int64, error) {
	u, view, err := l.eval.Broadcast(wt)
	if err != nil {
		return nil, 0, fmt.Errorf("core: eval broadcast: %w", err)
	}
	return view, u.WireBytes(), nil
}

// broadcast encodes wt for device k's downlink, decodes it as the device
// will, and returns the device's view of the global model plus the wire
// bytes moved. It also creates the device's uplink codec on first
// contact, so the parallel solve phase only ever reads the link maps —
// call broadcast sequentially, one round at a time.
func (l *commLinks) broadcast(k int, wt []float64) ([]float64, int64, error) {
	enc, _, err := l.state.Link(k)
	if err != nil {
		return nil, 0, fmt.Errorf("core: device %d: %w", k, err)
	}
	prev := l.state.Prev(k)
	u := enc.Encode(wt, prev)
	view, err := enc.Decode(u, prev)
	if err != nil {
		return nil, 0, fmt.Errorf("core: downlink decode for device %d: %w", k, err)
	}
	l.state.SetPrev(k, view)
	return view, u.WireBytes(), nil
}

// uplink encodes the device's local solution against the broadcast view
// it trained from and returns the coordinator's decoded version plus the
// wire bytes moved. Safe to call concurrently for distinct devices once
// broadcast has created their codecs.
func (l *commLinks) uplink(k int, wk, view []float64) ([]float64, int64, error) {
	_, enc, err := l.state.Link(k)
	if err != nil {
		return nil, 0, fmt.Errorf("core: device %d: %w", k, err)
	}
	u := enc.Encode(wk, view)
	got, err := enc.Decode(u, view)
	if err != nil {
		return nil, 0, fmt.Errorf("core: uplink decode for device %d: %w", k, err)
	}
	return got, u.WireBytes(), nil
}
