package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"fedprox/internal/comm"
	"fedprox/internal/tensor"
)

// commLinks is the coordinator's view of the network codec state: one
// comm.LinkState holding, per device, the downlink and uplink codec
// instances and the last delivered broadcast, plus the shared
// evaluation-broadcast link. It is the same state the fednet runtime
// keeps at its two endpoints, which is why a codec-enabled simulator run
// and a fednet run under the same seed see identical compressed streams.
type commLinks struct {
	state *comm.LinkState
	// eval is the shared evaluation-broadcast link: with a codec
	// configured, every evaluation happens at the decoded eval broadcast
	// — exactly what the fednet workers compute their metrics from — and
	// its encoded size lands in Cost.EvalBytes.
	eval *comm.EvalLink
	// f32 marks an f32-precision deployment: training transfers move
	// float32 payloads and both endpoints advance the f32 prev chains.
	// The eval link is exempt (NewEvalLink strips precision), so
	// evaluation stays at full width.
	f32 bool
}

func newCommLinks(downSpec, upSpec comm.Spec) (*commLinks, error) {
	if downSpec.Precision != upSpec.Precision {
		return nil, fmt.Errorf("core: downlink precision %q != uplink precision %q (both directions of a deployment share one arithmetic width)",
			downSpec.Precision.String(), upSpec.Precision.String())
	}
	state, err := comm.NewLinkState(downSpec, upSpec)
	if err != nil {
		return nil, err
	}
	eval, err := comm.NewEvalLink(downSpec)
	if err != nil {
		return nil, err
	}
	return &commLinks{state: state, eval: eval, f32: downSpec.Precision == tensor.F32}, nil
}

// evalBroadcast encodes wt on the shared eval link and returns the
// encoded update (wire drivers ship it to every evaluator verbatim) plus
// the view the network evaluates at.
func (l *commLinks) evalBroadcast(wt []float64) (*comm.Update, []float64, error) {
	u, view, err := l.eval.Broadcast(wt)
	if err != nil {
		return nil, nil, fmt.Errorf("core: eval broadcast: %w", err)
	}
	return u, view, nil
}

// evalPrev returns the eval link's current chain base (nil when the eval
// codec is chain-free) — the state a re-admitted worker must seed its
// own eval link with to decode the next broadcast in lockstep.
func (l *commLinks) evalPrev() []float64 { return l.eval.PrevView() }

// broadcast encodes wt for device k's downlink, decodes it as the device
// will, and returns the encoded update, the device's view of the global
// model, and the wire bytes moved. It also creates the device's uplink
// codec on first contact, so a parallel solve phase only ever reads the
// link maps — call broadcast sequentially.
func (l *commLinks) broadcast(k int, wt []float64) (*comm.Update, []float64, int64, error) {
	enc, _, err := l.state.Link(k)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: device %d: %w", k, err)
	}
	if l.f32 {
		// f32 deployment: the wire carries float32 payloads and the prev
		// chain lives in float32. The coordinator's own bookkeeping (the
		// pendingDispatch view the fold subtracts against) stays float64:
		// widening an f32 view is exact, and narrowing it back reproduces
		// the original bits, so the f64 shadow is bit-locked with the
		// device's f32 view.
		e32, err := comm.As32(enc)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("core: device %d: %w", k, err)
		}
		w32 := tensor.GetVec32(len(wt))
		tensor.Narrow(w32, wt)
		prev := l.state.Prev32(k)
		u := e32.Encode32(w32, prev)
		view32, err := e32.Decode32(u, prev)
		tensor.PutVec32(w32)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("core: downlink decode for device %d: %w", k, err)
		}
		l.state.SetPrev32(k, view32)
		view := tensor.GetVec(len(wt))
		tensor.Widen(view, view32)
		tensor.PutVec32(view32)
		return u, view, u.WireBytes(), nil
	}
	prev := l.state.Prev(k)
	u := enc.Encode(wt, prev)
	view, err := enc.Decode(u, prev)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: downlink decode for device %d: %w", k, err)
	}
	l.state.SetPrev(k, view)
	return u, view, u.WireBytes(), nil
}

// uplinkEncode encodes the device's local solution against the broadcast
// view it trained from, exactly as the worker-side encoder does
// (advancing the same rounding stream / error-feedback residual). Safe
// to call concurrently for distinct devices once broadcast has created
// their codecs.
func (l *commLinks) uplinkEncode(k int, wk, view []float64) (*comm.Update, error) {
	_, enc, err := l.state.Link(k)
	if err != nil {
		return nil, fmt.Errorf("core: device %d: %w", k, err)
	}
	return enc.Encode(wk, view), nil
}

// uplinkEncode32 is uplinkEncode for an f32 deployment: the device's f32
// solution is encoded directly against the f32 view it trained from — no
// widening copy sits between the solve and the wire.
func (l *commLinks) uplinkEncode32(k int, wk, view tensor.Vec32) (*comm.Update, error) {
	_, enc, err := l.state.Link(k)
	if err != nil {
		return nil, fmt.Errorf("core: device %d: %w", k, err)
	}
	e32, err := comm.As32(enc)
	if err != nil {
		return nil, fmt.Errorf("core: device %d: %w", k, err)
	}
	return e32.Encode32(wk, view), nil
}

// uplinkDecode reconstructs a device's uplink reply against the
// broadcast view it trained from. Decoding is stateless.
func (l *commLinks) uplinkDecode(k int, u *comm.Update, view []float64) ([]float64, error) {
	_, dec, err := l.state.Link(k)
	if err != nil {
		return nil, fmt.Errorf("core: device %d: %w", k, err)
	}
	if l.f32 {
		// The f64 view is an exact widening of the f32 view the device
		// encoded against; narrowing recovers it bit-for-bit.
		d32, err := comm.As32(dec)
		if err != nil {
			return nil, fmt.Errorf("core: device %d: %w", k, err)
		}
		p32 := tensor.GetVec32(len(view))
		tensor.Narrow(p32, view)
		got32, err := d32.Decode32(u, p32)
		tensor.PutVec32(p32)
		if err != nil {
			return nil, fmt.Errorf("core: uplink decode for device %d: %w", k, err)
		}
		got := tensor.GetVec(len(got32))
		tensor.Widen(got, got32)
		tensor.PutVec32(got32)
		return got, nil
	}
	got, err := dec.Decode(u, view)
	if err != nil {
		return nil, fmt.Errorf("core: uplink decode for device %d: %w", k, err)
	}
	return got, nil
}

// reset discards device k's link state (both directions plus the
// broadcast shadow) so the next contact starts a fresh chain — the
// coordinator's half of re-admitting a reconnected worker, whose own
// endpoint starts fresh too.
func (l *commLinks) reset(k int) { l.state.Reset(k) }

// linksSnapshot is the gob envelope of a commLinks checkpoint.
type linksSnapshot struct {
	State comm.LinkSnapshot
	Eval  comm.EvalLinkSnapshot
}

// snapshot serializes every per-device codec state (rounding-stream
// positions, error-feedback residuals, broadcast shadows) and the eval
// chain, so a checkpointed run can resume with bit-identical streams.
func (l *commLinks) snapshot() ([]byte, error) {
	st, err := l.state.Snapshot()
	if err != nil {
		return nil, err
	}
	ev, err := l.eval.Snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(linksSnapshot{State: st, Eval: ev}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// restore rebuilds the link state from a snapshot taken by an equally
// configured run.
func (l *commLinks) restore(data []byte) error {
	var snap linksSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return err
	}
	if err := l.state.Restore(snap.State); err != nil {
		return err
	}
	return l.eval.Restore(snap.Eval)
}
