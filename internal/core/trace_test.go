package core

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"fedprox/internal/obs"
)

// TestTraceDeterministicJSONL is the tentpole's observability
// criterion: two virtual-time runs under the same seed emit
// byte-identical JSONL traces, and attaching the trace does not perturb
// the trajectory — the traced History equals the untraced one bit for
// bit.
func TestTraceDeterministicJSONL(t *testing.T) {
	for _, mode := range []AggregationMode{SyncRounds, AsyncTotal, Buffered} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(sink obs.Sink) *History {
				mdl, fed := tinyWorkload()
				cfg := vtimeAsyncConfig(mode, fed.NumDevices())
				if mode == SyncRounds {
					cfg.Async = AsyncConfig{}
				}
				if mode == Buffered {
					cfg.Async.BufferK = 3
				}
				cfg.Trace = sink
				h, err := Run(mdl, fed, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return h
			}
			var buf1, buf2 bytes.Buffer
			j1, j2 := obs.NewJSONL(&buf1), obs.NewJSONL(&buf2)
			h1, h2 := run(j1), run(j2)
			if err := j1.Err(); err != nil {
				t.Fatal(err)
			}
			if buf1.Len() == 0 {
				t.Fatal("traced run emitted no events")
			}
			if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
				t.Fatal("same seed emitted different traces")
			}
			if !historiesEqual(h1, h2) {
				t.Fatal("same seed produced different histories under tracing")
			}
			if !historiesEqual(h1, run(nil)) {
				t.Fatal("tracing perturbed the trajectory")
			}
			// The trace brackets the run and stamps the virtual clock.
			lines := strings.Split(strings.TrimRight(buf1.String(), "\n"), "\n")
			if !strings.Contains(lines[0], `"kind":"run-start"`) {
				t.Errorf("first event is not run-start: %s", lines[0])
			}
			if last := lines[len(lines)-1]; !strings.Contains(last, `"kind":"run-done"`) ||
				!strings.Contains(last, `"t":`) {
				t.Errorf("last event is not a clock-stamped run-done: %s", last)
			}
			// The async schedules have no round-open: they emit
			// round-close at recording milestones only.
			wants := []string{`"kind":"dispatch"`, `"kind":"reply"`,
				`"kind":"fold"`, `"kind":"eval"`, `"kind":"round-close"`}
			if mode == SyncRounds {
				wants = append(wants, `"kind":"round-open"`)
			}
			for _, want := range wants {
				if !strings.Contains(buf1.String(), want) {
					t.Errorf("trace has no %s event", want)
				}
			}
		})
	}
}

// TestTraceClocklessRunUntimed: a run without a virtual clock emits
// untimed events (no "t" key), the contract that lets deployments stamp
// wall time via obs.WallClock.
func TestTraceClocklessRunUntimed(t *testing.T) {
	mdl, fed := tinyWorkload()
	cfg := FedProx(4, 5, 3, 0.01, 1)
	cfg.EvalEvery = 2
	var buf bytes.Buffer
	cfg.Trace = obs.NewJSONL(&buf)
	if _, err := Run(mdl, fed, cfg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("traced run emitted no events")
	}
	if strings.Contains(buf.String(), `"t":`) {
		t.Fatalf("clockless run emitted timed events:\n%s", buf.String())
	}
}

// BenchmarkTraceOverhead quantifies the tracing spine's cost on a full
// (miniature) run: "off" is the nil-sink fast path every untraced run
// takes — the number that must stay indistinguishable from the
// pre-observability baseline — against a no-op sink that costs the
// interface call and a live JSONL encoder.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, bc := range []struct {
		name string
		sink obs.Sink
	}{
		{"off", nil},
		{"discard-sink", obs.Discard},
		{"jsonl", obs.NewJSONL(io.Discard)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			mdl, fed := tinyWorkload()
			cfg := FedProx(4, 5, 3, 0.01, 1)
			cfg.EvalEvery = 4
			cfg.Trace = bc.sink
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(mdl, fed, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
