package core

import (
	"math/rand"
	"sort"
	"testing"
)

// refIdle mirrors the sorted-slice implementation idleSet replaced; the
// Fenwick tree must agree with it on every operation interleaving.
type refIdle map[int]bool

func (r refIdle) sorted() []int {
	ids := make([]int, 0, len(r))
	for id := range r {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func checkAgainstRef(t *testing.T, s *idleSet, ref refIdle) {
	t.Helper()
	ids := ref.sorted()
	if s.len() != len(ids) {
		t.Fatalf("len = %d, want %d", s.len(), len(ids))
	}
	for j, want := range ids {
		if got := s.kth(j); got != want {
			t.Fatalf("kth(%d) = %d, want %d (idle %v)", j, got, want, ids)
		}
	}
	var walked []int
	s.ascending(func(id int) { walked = append(walked, id) })
	if len(walked) != len(ids) {
		t.Fatalf("ascending walked %d ids, want %d", len(walked), len(ids))
	}
	for j := range ids {
		if walked[j] != ids[j] {
			t.Fatalf("ascending[%d] = %d, want %d", j, walked[j], ids[j])
		}
	}
}

// TestIdleSetMatchesReference drives random add/remove interleavings
// (with redundant operations mixed in) and asserts kth and ascending
// agree with the sorted-slice reference after every step.
func TestIdleSetMatchesReference(t *testing.T) {
	const n = 97 // odd, non-power-of-two to exercise the tree descent
	s := newIdleSet(n)
	ref := refIdle{}
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 2000; step++ {
		id := rng.Intn(n)
		if rng.Intn(2) == 0 {
			s.add(id)
			ref[id] = true
		} else {
			s.remove(id)
			delete(ref, id)
		}
		if got, want := s.has(id), ref[id]; got != want {
			t.Fatalf("step %d: has(%d) = %v, want %v", step, id, got, want)
		}
		if step%97 == 0 {
			checkAgainstRef(t, s, ref)
		}
	}
	checkAgainstRef(t, s, ref)
}

// TestIdleSetFill: fill marks the whole population idle in one pass and
// leaves the tree in the same state incremental adds would have.
func TestIdleSetFill(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 100} {
		s := newIdleSet(n)
		s.add(n / 2) // fill must overwrite prior partial state
		s.fill()
		ref := refIdle{}
		for id := 0; id < n; id++ {
			ref[id] = true
		}
		checkAgainstRef(t, s, ref)
		s.remove(0)
		delete(ref, 0)
		checkAgainstRef(t, s, ref)
	}
}

// TestIdleSetKthPanics: out-of-range ranks panic like the slice index
// they replaced.
func TestIdleSetKthPanics(t *testing.T) {
	s := newIdleSet(8)
	s.add(3)
	for _, j := range []int{-1, 1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("kth(%d) with 1 idle did not panic", j)
				}
			}()
			s.kth(j)
		}()
	}
}
