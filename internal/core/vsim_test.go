package core

import (
	"math"
	"strings"
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/vtime"
)

// historiesEqual compares two histories bit for bit: float fields must
// carry identical IEEE-754 bits (NaN == NaN here, unlike
// reflect.DeepEqual, since untracked columns are NaN by design).
func historiesEqual(a, b *History) bool {
	bits := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if a.Label != b.Label || len(a.Points) != len(b.Points) || len(a.Arrivals) != len(b.Arrivals) {
		return false
	}
	for i := range a.Points {
		p, q := a.Points[i], b.Points[i]
		if p.Round != q.Round || p.Participants != q.Participants || p.Cost != q.Cost {
			return false
		}
		for _, f := range [][2]float64{
			{p.TrainLoss, q.TrainLoss}, {p.TestAcc, q.TestAcc}, {p.GradVar, q.GradVar},
			{p.B, q.B}, {p.Mu, q.Mu}, {p.MeanGamma, q.MeanGamma},
			{p.MeanStaleness, q.MeanStaleness}, {p.MaxStaleness, q.MaxStaleness},
			{p.VirtualSeconds, q.VirtualSeconds},
			{p.MeanEpochsDone, q.MeanEpochsDone}, {p.PartialFraction, q.PartialFraction},
		} {
			if !bits(f[0], f[1]) {
				return false
			}
		}
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			return false
		}
	}
	return true
}

// vtimeModel builds a deterministic latency model with a 10x-slow tail
// over n devices.
func vtimeModel(n int, seed uint64) *vtime.Model {
	return vtime.MustModel(
		vtime.UniformCompute{SecondsPerEpoch: 0.2, Speed: vtime.SlowTail(n, 0.1, 10)},
		vtime.Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.01, JitterStd: 0.2},
		seed,
	)
}

func vtimeAsyncConfig(mode AggregationMode, n int) Config {
	cfg := FedProx(6, 5, 3, 0.01, 1)
	cfg.StragglerFraction = 0.5
	cfg.EvalEvery = 2
	cfg.Async = AsyncConfig{Mode: mode}
	cfg.VTime = VTimeConfig{Model: vtimeModel(n, 17)}
	return cfg
}

// TestAsyncRequiresLatencyModel: async configs without a vtime model are
// still rejected, with a message pointing at the fix, and the
// policy-only knobs demand a model too.
func TestAsyncRequiresLatencyModel(t *testing.T) {
	mdl, fed := tinyWorkload()
	cfg := FedProx(4, 5, 3, 0.01, 1)
	cfg.Async = AsyncConfig{Mode: AsyncTotal}
	_, err := Run(mdl, fed, cfg)
	if err == nil {
		t.Fatal("async config without a latency model accepted")
	}
	if !strings.Contains(err.Error(), "VTime.Model") {
		t.Fatalf("rejection does not point at Config.VTime.Model: %v", err)
	}
	bad := FedProx(4, 5, 3, 0.01, 1)
	bad.VTime = VTimeConfig{DeadlineSeconds: 1} // policy without a model
	if err := bad.Validate(); err == nil {
		t.Fatal("deadline without VTime.Model accepted")
	}
	ck := FedProx(4, 5, 3, 0.01, 1)
	ck.VTime = VTimeConfig{Model: vtimeModel(fed.NumDevices(), 1)}
	ck.Checkpointer = &nullCheckpointer{}
	if err := ck.Validate(); err == nil {
		t.Fatal("vtime + checkpointer accepted")
	}
}

type nullCheckpointer struct{}

func (nullCheckpointer) Load() (int, []float64, *History, []byte, error) {
	return 0, nil, nil, nil, nil
}
func (nullCheckpointer) Save(int, []float64, *History, []byte) error { return nil }

// TestVTimeAsyncDeterministic is the tentpole's reproducibility
// criterion: two virtual-time async runs under the same seed produce
// bit-identical Histories — points, costs, staleness, virtual clocks,
// and the full arrival trace.
func TestVTimeAsyncDeterministic(t *testing.T) {
	for _, mode := range []AggregationMode{AsyncTotal, Buffered} {
		t.Run(mode.String(), func(t *testing.T) {
			mdl, fed := tinyWorkload()
			cfg := vtimeAsyncConfig(mode, fed.NumDevices())
			if mode == Buffered {
				cfg.Async.BufferK = 3
			}
			run := func() *History {
				h, err := Run(mdl, fed, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return h
			}
			a, b := run(), run()
			if !historiesEqual(a, b) {
				t.Fatalf("same seed produced different histories:\n%v\nvs\n%v", a, b)
			}
			if len(a.Arrivals) == 0 {
				t.Fatal("no arrival trace recorded")
			}
			if !a.TracksVirtualTime() {
				t.Fatal("history does not track virtual time")
			}
			if !a.TracksStaleness() {
				t.Fatal("async history has no staleness columns")
			}
			if !(a.Final().TrainLoss < a.Points[0].TrainLoss) {
				t.Fatalf("virtual-time %s did not improve: %g -> %g", mode, a.Points[0].TrainLoss, a.Final().TrainLoss)
			}
		})
	}
}

// TestVTimeAsyncSeedChangesTrajectory: different seeds see different
// environments (the determinism above is not a constant function).
func TestVTimeAsyncSeedChangesTrajectory(t *testing.T) {
	mdl, fed := tinyWorkload()
	cfg := vtimeAsyncConfig(AsyncTotal, fed.NumDevices())
	a, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	b, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if historiesEqual(a, b) {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestFreshFoldReproducesSyncUpdate is the satellite cross-check: a
// buffered flush of fresh replies (staleness 0) at alpha = 1 reproduces
// the synchronous round update — the weighted mean of the returned
// models — for both sampling schemes.
func TestFreshFoldReproducesSyncUpdate(t *testing.T) {
	w0 := []float64{0.5, -1.25, 2}
	params := [][]float64{
		{1, 0, -1},
		{-0.5, 2, 0.25},
		{3, 1, 1},
	}
	weights := []float64{10, 30, 60}
	for _, sampling := range []SamplingScheme{UniformWeightedAvg, WeightedSimpleAvg} {
		sync := append([]float64(nil), w0...)
		aggregate(sync, params, weights, sampling)

		async := append([]float64(nil), w0...)
		var buffer []StaleDelta
		for i, p := range params {
			delta := make([]float64, len(p))
			for j := range p {
				delta[j] = p[j] - w0[j] // fresh: every view is w0
			}
			buffer = append(buffer, StaleDelta{Delta: delta, Weight: weights[i], Version: 0})
		}
		if !FoldStaleDeltas(async, buffer, 0, sampling, 1 /* alpha */, 0.5) {
			t.Fatal("fold did not advance the model")
		}
		for j := range sync {
			if math.Abs(sync[j]-async[j]) > 1e-12 {
				t.Fatalf("%v: fresh fold diverges from sync update at %d: %g vs %g", sampling, j, async[j], sync[j])
			}
		}
	}
}

// TestVTimeAsyncMatchesWorkBudget: the async schedule folds exactly
// Rounds*roundSize replies, milestones evaluate on the sync cadence, and
// every fold shows up in the arrival trace.
func TestVTimeAsyncMatchesWorkBudget(t *testing.T) {
	mdl, fed := tinyWorkload()
	cfg := vtimeAsyncConfig(AsyncTotal, fed.NumDevices())
	h, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := 1 + cfg.Rounds/cfg.EvalEvery
	if len(h.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(h.Points), wantPoints)
	}
	folded := 0
	for _, a := range h.Arrivals {
		if a.Drop == ArrivalFolded {
			folded++
			if a.Staleness < 0 {
				t.Fatalf("folded arrival with negative staleness: %+v", a)
			}
		}
		if a.Arrived < a.Sent {
			t.Fatalf("arrival precedes dispatch: %+v", a)
		}
	}
	if want := cfg.Rounds * cfg.ClientsPerRound; folded != want {
		t.Fatalf("folded %d replies, want %d", folded, want)
	}
	for _, p := range h.Points[1:] {
		if p.Participants != cfg.ClientsPerRound {
			t.Fatalf("milestone %d participants %d, want %d", p.Round, p.Participants, cfg.ClientsPerRound)
		}
	}
	// The virtual clock is monotone over the trajectory.
	for i := 1; i < len(h.Points); i++ {
		if h.Points[i].VirtualSeconds < h.Points[i-1].VirtualSeconds {
			t.Fatalf("virtual clock ran backwards: %g -> %g", h.Points[i-1].VirtualSeconds, h.Points[i].VirtualSeconds)
		}
	}
}

// TestVTimeSyncChargesRounds: a synchronous run under a latency model
// records a growing virtual clock, and a 10x-slow tail makes it slower
// than the same run over a uniform fleet.
func TestVTimeSyncChargesRounds(t *testing.T) {
	mdl, fed := tinyWorkload()
	n := fed.NumDevices()
	base := FedProx(6, 5, 3, 0.01, 1)
	base.EvalEvery = 3
	run := func(speed func(int) float64) *History {
		cfg := base
		cfg.VTime = VTimeConfig{Model: vtime.MustModel(
			vtime.UniformCompute{SecondsPerEpoch: 0.2, Speed: speed},
			vtime.Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.01},
			5,
		)}
		h, err := Run(mdl, fed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	uniform := run(nil)
	tailed := run(vtime.SlowTail(n, 0.2, 10))
	if !uniform.TracksVirtualTime() {
		t.Fatal("sync vtime run does not track virtual time")
	}
	if d := uniform.VirtualDuration(); !(d > 0) {
		t.Fatalf("virtual duration %g, want positive", d)
	}
	if !(tailed.VirtualDuration() > uniform.VirtualDuration()) {
		t.Fatalf("slow tail did not slow the sync run: %g vs %g", tailed.VirtualDuration(), uniform.VirtualDuration())
	}
	// Timing must not perturb the trajectory: the same seed yields the
	// same losses with and without the clock.
	bare, err := Run(mdl, fed, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bare.Points {
		if bare.Points[i].TrainLoss != uniform.Points[i].TrainLoss {
			t.Fatalf("virtual clock changed the trajectory at point %d: %g vs %g", i, uniform.Points[i].TrainLoss, bare.Points[i].TrainLoss)
		}
	}
}

// TestVTimeSyncDeadlineDropsTail: with a deadline between the fast pack
// and the slow tail, tail replies are dropped (wasted) and the round
// closes at the deadline, so the deadline run is both faster and
// tail-starved relative to the unconstrained one.
func TestVTimeSyncDeadlineDropsTail(t *testing.T) {
	mdl, fed := tinyWorkload()
	n := fed.NumDevices()
	mk := func(deadline float64) Config {
		cfg := FedProx(6, 8, 3, 0.01, 1)
		cfg.EvalEvery = 6
		cfg.VTime = VTimeConfig{
			Model: vtime.MustModel(
				vtime.UniformCompute{SecondsPerEpoch: 0.2, Speed: vtime.SlowTail(n, 0.5, 10)},
				vtime.Net{UplinkBps: 1e8, DownlinkBps: 1e8},
				5,
			),
			DeadlineSeconds: deadline,
		}
		return cfg
	}
	free, err := Run(mdl, fed, mk(0))
	if err != nil {
		t.Fatal(err)
	}
	// Fast devices: 3 epochs * 0.2s = 0.6s; slow tail: 6s. Deadline 1s
	// accepts the pack, drops the tail.
	capped, err := Run(mdl, fed, mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if !(capped.VirtualDuration() < free.VirtualDuration()) {
		t.Fatalf("deadline did not shorten the run: %g vs %g", capped.VirtualDuration(), free.VirtualDuration())
	}
	drops := 0
	for _, a := range capped.Arrivals {
		if a.Drop == DropDeadline {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("deadline dropped nothing despite a 10x tail")
	}
	if w := capped.Final().Cost.WastedEpochs; w == 0 {
		t.Fatal("deadline drops did not count as wasted epochs")
	}
	for _, a := range free.Arrivals {
		if a.Drop != ArrivalFolded {
			t.Fatalf("unconstrained run dropped a reply: %+v", a)
		}
	}
}

// TestVTimeSyncByteBudgetDropsTail: a per-round wire-byte budget below
// the full round's traffic cuts the arrival-order tail — the
// ROADMAP's codec-aware straggler policy.
func TestVTimeSyncByteBudgetDropsTail(t *testing.T) {
	mdl, fed := tinyWorkload()
	n := fed.NumDevices()
	paramBytes := int64(mdl.NumParams() * 8)
	cfg := FedProx(4, 6, 3, 0.01, 1)
	cfg.EvalEvery = 4
	cfg.VTime = VTimeConfig{
		Model: vtime.MustModel(
			vtime.UniformCompute{SecondsPerEpoch: 0.1, Speed: vtime.SlowTail(n, 0.3, 10)},
			vtime.Net{UplinkBps: 1e6, DownlinkBps: 1e6},
			3,
		),
		// Budget for roughly 4 of the 6 round-trips.
		RoundBytes: 4 * 2 * paramBytes,
	}
	h, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget, folded := 0, 0
	for _, a := range h.Arrivals {
		switch a.Drop {
		case DropBudget:
			budget++
		case ArrivalFolded:
			folded++
		}
	}
	if budget == 0 {
		t.Fatal("byte budget dropped nothing")
	}
	if folded == 0 {
		t.Fatal("byte budget dropped everything")
	}
	// The budget drops the LATE tail: every folded reply in a round
	// arrived no later than any budget-dropped reply of the same round.
	bySent := map[float64][]Arrival{}
	for _, a := range h.Arrivals {
		bySent[a.Sent] = append(bySent[a.Sent], a)
	}
	for _, round := range bySent {
		worstFold, bestDrop := math.Inf(-1), math.Inf(1)
		for _, a := range round {
			if a.Drop == ArrivalFolded && a.Arrived > worstFold {
				worstFold = a.Arrived
			}
			if a.Drop == DropBudget && a.Arrived < bestDrop {
				bestDrop = a.Arrived
			}
		}
		if worstFold > bestDrop {
			t.Fatalf("budget dropped an earlier arrival than one it kept: fold@%g vs drop@%g", worstFold, bestDrop)
		}
	}
}

// TestVTimeAsyncDeadlineAndLoss: per-dispatch deadlines and network loss
// waste the affected work but the schedule still completes its fold
// target deterministically.
func TestVTimeAsyncDeadlineAndLoss(t *testing.T) {
	mdl, fed := tinyWorkload()
	n := fed.NumDevices()
	cfg := vtimeAsyncConfig(AsyncTotal, n)
	cfg.VTime.Model = vtime.MustModel(
		vtime.UniformCompute{SecondsPerEpoch: 0.2, Speed: vtime.SlowTail(n, 0.2, 10)},
		vtime.Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.01, DropProb: 0.1},
		23,
	)
	cfg.VTime.DeadlineSeconds = 2 // fast round-trips fit, 10x tail does not
	a, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lost, late, folded int
	for _, ar := range a.Arrivals {
		switch ar.Drop {
		case DropLost:
			lost++
		case DropDeadline:
			late++
		case ArrivalFolded:
			folded++
		}
	}
	if lost == 0 || late == 0 {
		t.Fatalf("expected both loss and deadline drops, got lost=%d late=%d", lost, late)
	}
	if want := cfg.Rounds * cfg.ClientsPerRound; folded != want {
		t.Fatalf("folded %d, want %d despite drops", folded, want)
	}
	if a.Final().Cost.WastedEpochs == 0 {
		t.Fatal("drops did not waste epochs")
	}
	b, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !historiesEqual(a, b) {
		t.Fatal("drops broke determinism")
	}
}

// TestVTimeAsyncImpossibleBudgetFails: a byte budget below a single
// round-trip can never fold anything; the engine must error out rather
// than dispatch forever.
func TestVTimeAsyncImpossibleBudgetFails(t *testing.T) {
	mdl, fed := tinyWorkload()
	cfg := vtimeAsyncConfig(AsyncTotal, fed.NumDevices())
	cfg.Rounds = 1
	cfg.VTime.RoundBytes = 1 // below any encoded update
	if _, err := Run(mdl, fed, cfg); err == nil {
		t.Fatal("impossible byte budget did not fail")
	}
}

// TestVTimeAsyncWithCodec: virtual-time async composes with stateful
// codecs (chained downlinks, error feedback) and transfer times follow
// the encoded sizes: a qsgd run moves fewer bytes and finishes sooner
// than a raw run on the same slow network.
func TestVTimeAsyncWithCodec(t *testing.T) {
	mdl, fed := tinyWorkload()
	n := fed.NumDevices()
	run := func(spec comm.Spec) *History {
		cfg := vtimeAsyncConfig(AsyncTotal, n)
		cfg.VTime.Model = vtime.MustModel(
			vtime.UniformCompute{SecondsPerEpoch: 0.01},
			vtime.Net{UplinkBps: 5e4, DownlinkBps: 5e4}, // slow wire: transfer dominates
			17,
		)
		cfg.Codec = spec
		h, err := Run(mdl, fed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	raw := run(comm.Spec{Name: "raw"})
	q := run(comm.Spec{Name: "qsgd", Bits: 4})
	if !(q.Final().Cost.UplinkBytes < raw.Final().Cost.UplinkBytes) {
		t.Fatalf("qsgd moved more bytes than raw: %d vs %d", q.Final().Cost.UplinkBytes, raw.Final().Cost.UplinkBytes)
	}
	if !(q.VirtualDuration() < raw.VirtualDuration()) {
		t.Fatalf("qsgd not faster than raw on a slow wire: %g vs %g", q.VirtualDuration(), raw.VirtualDuration())
	}
	if q.Final().Cost.EvalBytes == 0 {
		t.Fatal("codec run recorded no eval bytes")
	}
	if !(q.Final().TrainLoss < q.Points[0].TrainLoss) {
		t.Fatal("qsgd async run did not improve")
	}
}

// TestVTimeEvalChargedOnClock: eval traffic costs virtual time — more
// frequent evaluation makes the same schedule take longer on the clock
// (the satellite bugfix: eval transfers hit the clock, not just
// Cost.EvalBytes).
func TestVTimeEvalChargedOnClock(t *testing.T) {
	mdl, fed := tinyWorkload()
	n := fed.NumDevices()
	run := func(evalEvery int) *History {
		cfg := FedProx(6, 5, 3, 0.01, 1)
		cfg.EvalEvery = evalEvery
		cfg.VTime = VTimeConfig{Model: vtime.MustModel(
			vtime.UniformCompute{SecondsPerEpoch: 0.01, Speed: vtime.SlowTail(n, 0.1, 10)},
			vtime.Net{UplinkBps: 1e5, DownlinkBps: 1e5}, // slow wire so eval transfers matter
			7,
		)}
		h, err := Run(mdl, fed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	sparse := run(6)
	dense := run(1)
	if !(dense.VirtualDuration() > sparse.VirtualDuration()) {
		t.Fatalf("eval traffic costs no virtual time: dense %g vs sparse %g", dense.VirtualDuration(), sparse.VirtualDuration())
	}
	// Guard against a silently zero den in the fold helper: an empty
	// buffer must not advance or mutate the model.
	w := []float64{1, 2}
	if FoldStaleDeltas(w, nil, 0, UniformWeightedAvg, 1, 0.5) {
		t.Fatal("empty buffer advanced the model")
	}
	if w[0] != 1 || w[1] != 2 {
		t.Fatal("empty fold mutated w")
	}
}
