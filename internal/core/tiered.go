package core

import (
	"errors"
	"fmt"
	"math"

	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/tier"
)

// RunTiered executes one federated optimization run of cfg over fl with
// hierarchical aggregation: the root coordinator fans into topo.Depth
// tiers of edge aggregators, and only the leaf tier contacts devices.
// Every aggregator wraps its own sans-I/O Coordinator in stepped mode —
// the parent's broadcast re-bases the edge's model (Resume), the edge
// runs one full synchronous round over its children as its "window",
// and the fold it pauses on travels upstream as a single device reply.
// Aggregation is therefore the same weighted fold at every level, with
// an edge weighted by its subtree's training examples.
//
// The payoff is the root's ingress: per window the root receives
// K/FanOut^Depth edge replies instead of K device replies, so the
// returned History's Cost.UplinkBytes (root ingress) shrinks by ~FanOut
// while the same K devices run the same local work. Per-hop codec links
// compose: each tier encodes its broadcasts and uplinks independently,
// and on virtual-time runs topo.Model prices the aggregator legs on
// those encoded sizes, so the root's round critical path sees tier
// delay.
//
// A disabled topology delegates to RunFleet — bit-identical to the flat
// run per seed. An enabled one rejects the config axes whose semantics
// are inherently single-coordinator (async modes, adaptive-μ,
// γ-tracking, checkpointing, capability re-planning, device budgets);
// codecs, privacy, straggler policies, sampling schemes, fold weights,
// and virtual time all compose. Note the returned Cost.DeviceEpochs
// includes the root's pseudo-epoch charge for its edge children (one
// LocalEpochs target per edge per window) on top of the leaves' real
// device epochs.
func RunTiered(m model.Model, fl Fleet, cfg Config, topo tier.Topology) (*History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(cfg.ClientsPerRound, fl.NumDevices()); err != nil {
		return nil, err
	}
	if !topo.Enabled() {
		return RunFleet(m, fl, cfg)
	}
	switch {
	case cfg.Async.Enabled():
		return nil, errors.New("core: tiered aggregation is synchronous; async modes have no windowed fold")
	case cfg.AdaptiveMu:
		return nil, errors.New("core: tiered aggregation does not support adaptive mu (per-tier controllers would diverge)")
	case cfg.TrackGamma:
		return nil, errors.New("core: tiered aggregation does not support TrackGamma")
	case cfg.Checkpointer != nil:
		return nil, errors.New("core: tiered aggregation does not support checkpointing")
	case cfg.Capability != nil:
		return nil, errors.New("core: tiered aggregation does not support capability re-planning")
	case cfg.DeviceBudget != nil:
		return nil, errors.New("core: tiered aggregation does not support device budgets")
	}
	cfg = cfg.WithDefaults()

	d := &tieredRun{
		m:     m,
		fl:    fl,
		cfg:   cfg,
		topo:  topo,
		timed: cfg.VTime.Enabled(),
		seeds: frand.New(cfg.Seed).Split("tier"),
	}
	d.dev = NewFleetDevice(m, fl, DeviceOptions{Solver: cfg.Solver, Privacy: cfg.Privacy, Precision: cfg.Precision})
	if cfg.Codec.Enabled() {
		down, up := cfg.CommSpecs()
		if err := d.dev.InstallLinks(down, up); err != nil {
			return nil, err
		}
	}

	root, err := d.buildRoot()
	if err != nil {
		return nil, err
	}
	if d.timed {
		root.coord.Tick(root.vt.eng.Now())
	}
	cmds, err := root.coord.Start()
	if err != nil {
		return nil, err
	}
	for {
		var next []Command
		for _, cmd := range cmds {
			switch v := cmd.(type) {
			case Dispatch:
				// Child windows run sequentially in dispatch order (the
				// determinism rule); virtual time still overlaps them,
				// since every leg is priced relative to the window start.
				r, err := d.serveChild(root, v)
				if err != nil {
					return nil, err
				}
				more, err := root.coord.HandleReply(r)
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			case Evaluate:
				// Only the root measures: the global eval broadcast rides
				// the device-leg model exactly as in the flat drivers.
				if d.timed {
					root.vt.chargeEval(v.WireBytes)
					root.coord.Tick(root.vt.eng.Now())
				}
				more, err := root.coord.EvalDone(simEval(m, fl, v))
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			case AdvanceClock:
				if d.timed {
					root.vt.eng.Advance(v.Seconds)
					root.coord.Tick(root.vt.eng.Now())
				}
			case Done:
				return root.coord.History(), nil
			}
		}
		if len(next) == 0 {
			return nil, errors.New("core: tiered coordinator stalled with no commands")
		}
		cmds = next
	}
}

// tierNode is one aggregator in the tree: its coordinator, its children
// (aggregators, or for a leaf the owned device slice), and its virtual
// clock mirror.
type tierNode struct {
	coord    *Coordinator
	children []*tierNode
	leaf     bool
	lo, hi   int     // leaf: owned global device range [lo, hi)
	size     int     // subtree training examples (the node's fold weight)
	uid      int     // unique node index: topo.Model's "device" stream key
	vt       *vtimer // per-node engine (timed runs only)
}

// tieredRun is the driver state shared across the tree.
type tieredRun struct {
	m     model.Model
	fl    Fleet
	cfg   Config
	topo  tier.Topology
	dev   *Device // one fleet device runtime shared by every leaf
	seeds *frand.Source
	timed bool

	nextUID int
	leafIdx int
	legSeq  int // aggregator-leg jitter/loss stream sequence
}

// nodeSeed derives a per-aggregator seed: node uid under the run seed's
// "tier" split, so edge selection/straggler streams are independent of
// each other and of the root's.
func (d *tieredRun) nodeSeed(uid int) uint64 {
	return d.seeds.SplitIndex(uid).State()
}

// buildRoot builds the whole tree depth-first (uids and leaf slices
// assigned in construction order, so the shape is deterministic) and
// returns the root, with every aggregator below it started and paused
// before its first window.
func (d *tieredRun) buildRoot() (*tierNode, error) {
	cohort := d.topo.RootCohort(d.cfg.ClientsPerRound)
	nd := &tierNode{uid: d.nextUID}
	d.nextUID++
	children, err := d.buildChildren(nd, 1, cohort)
	if err != nil {
		return nil, err
	}
	nd.children = children

	// The root keeps the run's own seed (same init stream as the flat
	// run), evaluation cadence, and fold semantics; only its cohort
	// changes — it contacts every tier-1 aggregator every round. The
	// device-leg deadline/byte policies stay at the leaves, where device
	// replies race; root-side drops come from topo.Model alone.
	rc := d.cfg
	rc.ClientsPerRound = cohort
	rc.StragglerFraction = 0
	rc.VTime = VTimeConfig{Model: d.cfg.VTime.Model}
	coord, err := NewCoordinator(d.m, rc, CoordinatorOptions{
		NumDevices:  cohort,
		Tier:        1,
		LabelSuffix: d.topo.Suffix(),
	})
	if err != nil {
		return nil, err
	}
	nd.coord = coord
	if err := d.registerChildren(nd); err != nil {
		return nil, err
	}
	if d.timed {
		nd.vt = newVtimer(rc.VTime, int64(d.m.NumParams()*8))
	}
	return nd, nil
}

// buildChildren builds n subtrees rooted at depth (1 = the root's
// children), each started and paused.
func (d *tieredRun) buildChildren(parent *tierNode, depth, n int) ([]*tierNode, error) {
	children := make([]*tierNode, n)
	for i := range children {
		child, err := d.buildNode(depth)
		if err != nil {
			return nil, err
		}
		children[i] = child
		parent.size += child.size
	}
	return children, nil
}

// buildNode builds one aggregator at depth: a leaf edge owning a device
// slice when depth == topo.Depth, an interior aggregator over FanOut
// subtrees otherwise.
func (d *tieredRun) buildNode(depth int) (*tierNode, error) {
	nd := &tierNode{uid: d.nextUID}
	d.nextUID++

	nc := d.cfg
	nc.ClientsPerRound = d.topo.FanOut
	nc.EvalEvery = nc.Rounds // evals below the root are stubbed; don't plan them
	nc.TrackDissimilarity = false
	nc.Seed = d.nodeSeed(nd.uid)
	var numDevices int
	if depth == d.topo.Depth {
		// Leaf edge: owns a contiguous slice of the fleet and selects
		// FanOut of its devices per window with its own selection stream.
		// It keeps the full device-leg virtual-time policies and the
		// straggler fraction — device tails are cut where devices reply.
		nd.leaf = true
		leaves := d.topo.Leaves(d.cfg.ClientsPerRound)
		nd.lo, nd.hi = tier.Partition(d.fl.NumDevices(), leaves, d.leafIdx)
		d.leafIdx++
		numDevices = nd.hi - nd.lo
	} else {
		// Interior aggregator: contacts all FanOut children every window.
		children, err := d.buildChildren(nd, depth+1, d.topo.FanOut)
		if err != nil {
			return nil, err
		}
		nd.children = children
		nc.StragglerFraction = 0
		nc.VTime = VTimeConfig{Model: d.cfg.VTime.Model}
		numDevices = d.topo.FanOut
	}
	coord, err := NewCoordinator(d.m, nc, CoordinatorOptions{
		NumDevices: numDevices,
		Stepped:    true,
		Tier:       depth + 1,
	})
	if err != nil {
		return nil, err
	}
	nd.coord = coord
	if nd.leaf {
		regs := make([]DeviceReg, 0, numDevices)
		for g := nd.lo; g < nd.hi; g++ {
			sz := d.fl.TrainSize(g)
			regs = append(regs, DeviceReg{ID: g - nd.lo, TrainSize: sz})
			nd.size += sz
		}
		if _, err := coord.RegisterWorker(regs); err != nil {
			return nil, err
		}
	} else if err := d.registerChildren(nd); err != nil {
		return nil, err
	}
	if d.timed {
		vc := nc.VTime
		if !nd.leaf {
			vc = VTimeConfig{Model: d.cfg.VTime.Model}
		}
		nd.vt = newVtimer(vc, int64(d.m.NumParams()*8))
	}
	if err := d.drainStart(nd); err != nil {
		return nil, err
	}
	return nd, nil
}

// registerChildren registers nd's child aggregators as its coordinator's
// pseudo-devices, each weighted by its subtree's training examples — the
// weight the parent's fold gives the child's aggregate.
func (d *tieredRun) registerChildren(nd *tierNode) error {
	regs := make([]DeviceReg, len(nd.children))
	for i, c := range nd.children {
		regs[i] = DeviceReg{ID: i, TrainSize: c.size}
	}
	_, err := nd.coord.RegisterWorker(regs)
	return err
}

// evalStub answers an aggregator's Evaluate command: edges never
// measure the network (only the root does), so their recorded points
// carry NaNs and are discarded with their Histories.
func evalStub() EvalResult {
	nan := math.NaN()
	return EvalResult{Loss: nan, Acc: nan, GradVar: nan, B: nan}
}

// drainStart starts a stepped aggregator and runs it to its first
// Pause: the round-0 evaluation chain, answered with the stub.
func (d *tieredRun) drainStart(nd *tierNode) error {
	cmds, err := nd.coord.Start()
	if err != nil {
		return err
	}
	for {
		var next []Command
		for _, cmd := range cmds {
			switch cmd.(type) {
			case Evaluate:
				more, err := nd.coord.EvalDone(evalStub())
				if err != nil {
					return err
				}
				next = append(next, more...)
			case Pause:
				return nil
			default:
				return fmt.Errorf("core: tiered aggregator issued %T before its first window", cmd)
			}
		}
		if len(next) == 0 {
			return errors.New("core: tiered aggregator stalled before its first window")
		}
		cmds = next
	}
}

// serveChild executes one parent dispatch against a child aggregator:
// the child's window runs on the parent's decoded broadcast view, and
// the child's fold comes back as a single device reply — re-encoded on
// the parent's uplink when the run has codec links, so codecs compose
// per hop and the wire sizes price the aggregator legs.
func (d *tieredRun) serveChild(parent *tierNode, v Dispatch) (Reply, error) {
	child := parent.children[v.Device]
	seq := d.legSeq
	d.legSeq++
	start, down := math.NaN(), 0.0
	if d.timed {
		if d.topo.Model != nil {
			down = d.topo.Model.DownlinkSeconds(seq, child.uid, v.DownBytes)
		}
		start = parent.vt.eng.Now() + down
	}
	dur, err := d.runWindow(child, v.View, start)
	if err != nil {
		return Reply{}, err
	}
	// The reply's EpochsDone is the dispatched pseudo-target: aggregator
	// accounting charges the target, and the epoch-weighted fold then
	// weighs every edge equally (an edge's real device work is already
	// weighted inside its own fold).
	r := Reply{Device: v.Device, EpochsDone: v.Epochs}
	if parent.coord.links != nil {
		u, err := parent.coord.links.uplinkEncode(v.Device, child.coord.Params(), v.View)
		if err != nil {
			return Reply{}, err
		}
		r.Update = u
	} else {
		r.Params = child.coord.Params()
	}
	if d.timed {
		up, lost := 0.0, false
		if d.topo.Model != nil {
			bytes := parent.coord.paramBytes
			if r.Update != nil {
				bytes = r.Update.WireBytes()
			}
			up = d.topo.Model.UplinkSeconds(seq, child.uid, bytes)
			lost = d.topo.Model.Dropped(seq, child.uid)
		}
		r.Timed, r.Seq, r.Rel, r.Lost = true, seq, down+dur+up, lost
	}
	return r, nil
}

// runWindow resumes a paused aggregator on the parent's broadcast view
// and executes one window — a full synchronous round over its children,
// recursing for interior nodes and solving on the shared fleet device
// for leaves — until the coordinator pauses again (or finishes its
// schedule). Returns the window's virtual duration (NaN untimed).
func (d *tieredRun) runWindow(nd *tierNode, view []float64, start float64) (float64, error) {
	if d.timed {
		// The child's clock joins the global timeline at the moment the
		// parent's broadcast reaches it; parent windows are monotone, so
		// the target never precedes the node's own clock by design.
		if dt := start - nd.vt.eng.Now(); dt > 0 {
			nd.vt.eng.Advance(dt)
		}
		nd.coord.Tick(nd.vt.eng.Now())
	}
	cmds, err := nd.coord.Resume(view)
	if err != nil {
		return 0, err
	}
	for {
		var dispatches []Dispatch
		var next []Command
		ended := false
		for _, cmd := range cmds {
			switch v := cmd.(type) {
			case Dispatch:
				if nd.leaf {
					dispatches = append(dispatches, v)
					continue
				}
				r, err := d.serveChild(nd, v)
				if err != nil {
					return 0, err
				}
				more, err := nd.coord.HandleReply(r)
				if err != nil {
					return 0, err
				}
				next = append(next, more...)
			case Evaluate:
				more, err := nd.coord.EvalDone(evalStub())
				if err != nil {
					return 0, err
				}
				next = append(next, more...)
			case AdvanceClock:
				if d.timed {
					nd.vt.eng.Advance(v.Seconds)
					nd.coord.Tick(nd.vt.eng.Now())
				}
			case Pause, Done:
				ended = true
			}
		}
		if len(dispatches) > 0 {
			if err := d.solveLeaf(nd, dispatches, &next); err != nil {
				return 0, err
			}
		}
		if ended {
			if d.timed {
				return nd.vt.eng.Now() - start, nil
			}
			return math.NaN(), nil
		}
		if len(next) == 0 {
			return 0, errors.New("core: tiered window stalled with no commands")
		}
		cmds = next
	}
}

// solveLeaf serves a leaf window's dispatches on the shared fleet
// device. The edge coordinator speaks local device ids (its slice of
// the fleet); the device runtime keys shards and link state globally,
// so dispatches are remapped up and replies back down. The mapping is
// fixed for the run, so the edge-side and device-side codec chains of a
// device stay in lockstep.
func (d *tieredRun) solveLeaf(nd *tierNode, ds []Dispatch, next *[]Command) error {
	global := make([]Dispatch, len(ds))
	for i, v := range ds {
		v.Device += nd.lo
		global[i] = v
	}
	replies, err := runDispatches(d.dev, d.cfg.Parallelism, nd.vt, global)
	if err != nil {
		return err
	}
	for _, r := range replies {
		r.Device -= nd.lo
		more, err := nd.coord.HandleReply(r)
		if err != nil {
			return err
		}
		*next = append(*next, more...)
	}
	return nil
}
