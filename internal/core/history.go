package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one evaluated round of a run.
type Point struct {
	// Round is the communication round index (0 = before any update).
	Round int
	// TrainLoss is the global objective f(wᵗ) over all devices.
	TrainLoss float64
	// TestAcc is the network-wide test accuracy.
	TestAcc float64
	// GradVar is E_k‖∇F_k(w) − ∇f(w)‖² (NaN when not tracked).
	GradVar float64
	// B is the B(w) dissimilarity estimate (NaN when not tracked).
	B float64
	// Mu is the proximal coefficient in effect at this round.
	Mu float64
	// MeanGamma is the mean achieved γ-inexactness across selected devices
	// (NaN when not tracked).
	MeanGamma float64
	// Participants is the number of device updates aggregated this round.
	Participants int
	// MeanStaleness and MaxStaleness describe the model-version staleness
	// of the updates folded since the previous evaluated point: a reply
	// computed from model version v and folded at version V has staleness
	// V − v. Synchronous runs have no staleness; both fields are NaN
	// there (and in every pre-async history).
	MeanStaleness float64
	MaxStaleness  float64
	// VirtualSeconds is the virtual wall-clock at this evaluation when
	// the run executes on the internal/vtime engine (Config.VTime):
	// cumulative over rounds in the synchronous protocol, the engine's
	// clock at the recording milestone in the asynchronous ones. NaN
	// when the run has no virtual clock.
	VirtualSeconds float64
	// MeanEpochsDone is the mean local epochs actually run by the
	// updates aggregated since the previous evaluated point — the
	// realized work under a device-side compute budget
	// (Config.DeviceBudget). PartialFraction is the fraction of those
	// updates the device truncated below its dispatched epoch target.
	// Both are NaN when the run has no budget model (and at points with
	// no aggregated updates, e.g. round 0).
	MeanEpochsDone  float64
	PartialFraction float64
	// Cost is the cumulative resource accounting up to this round.
	Cost Cost
}

// Cost tracks the resources a run has consumed, cumulatively. It
// quantifies the paper's systems motivation: dropping stragglers
// (FedAvg) wastes the computation they performed before the deadline,
// while FedProx converts the same device work into progress.
type Cost struct {
	// UplinkBytes and DownlinkBytes count model transfers: every selected
	// device downloads wᵗ; only aggregated devices upload a model. With a
	// Config.Codec these are the encoded wire sizes (comm.Update.WireBytes)
	// of the transfers that actually happened.
	UplinkBytes, DownlinkBytes int64
	// WireUplinkBytes and WireDownlinkBytes are actual serialized bytes
	// measured on the transport, including protocol framing and
	// evaluation traffic. Only the fednet runtime fills these; the
	// simulator's analytic accounting lives in Uplink/DownlinkBytes.
	WireUplinkBytes, WireDownlinkBytes int64
	// EvalBytes is the analytic size of the evaluation broadcasts:
	// the encoded global model, charged once per evaluation (broadcast
	// semantics — the eval link is shared, not per-device). Filled only
	// when a codec is configured; the legacy (no-codec) accounting
	// predates eval encoding and keeps it at zero.
	EvalBytes int64
	// DeviceEpochs is the total local epochs executed across all devices,
	// including work the server later discarded.
	DeviceEpochs int
	// WastedEpochs is the subset of DeviceEpochs whose results were
	// dropped (straggler updates under DropStragglers).
	WastedEpochs int
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.UplinkBytes += o.UplinkBytes
	c.DownlinkBytes += o.DownlinkBytes
	c.WireUplinkBytes += o.WireUplinkBytes
	c.WireDownlinkBytes += o.WireDownlinkBytes
	c.EvalBytes += o.EvalBytes
	c.DeviceEpochs += o.DeviceEpochs
	c.WastedEpochs += o.WastedEpochs
}

// Arrival is one transmitted device reply of a virtual-time run: when
// the broadcast was dispatched, when the reply reached (or would have
// reached) the coordinator, and what the coordinator did with it. The
// trace is the raw material for latency-distribution and
// straggler-policy analysis offline. Devices that never transmit — the
// designated stragglers discarded under DropStragglers — do not appear;
// their discarded work is visible in Cost.WastedEpochs instead.
type Arrival struct {
	// Device is the contacted device index.
	Device int
	// Seq is the dispatch sequence number (unique, increasing).
	Seq int
	// Sent is the virtual time the broadcast left the coordinator.
	Sent float64
	// Arrived is the virtual time the reply reached the coordinator.
	Arrived float64
	// Staleness is the model-version staleness at fold time (0 in the
	// synchronous protocol; -1 when the reply was not folded).
	Staleness int
	// Drop records why the reply was discarded, or ArrivalFolded.
	Drop DropReason
	// EpochBudget is the device-side compute budget that rode the
	// dispatch (0 = unlimited) and EpochsDone the local epochs the
	// device actually ran — together they price partial work when a
	// recorded run is replayed under a different policy.
	EpochBudget int
	EpochsDone  int
}

// DropReason classifies the fate of a virtual-time reply.
type DropReason int

const (
	// ArrivalFolded: the reply was aggregated.
	ArrivalFolded DropReason = iota
	// DropPolicy: a designated or capability straggler discarded under
	// DropStragglers. Such devices never transmit a reply, so this
	// reason marks them in the round planner's bookkeeping but never
	// appears in the Arrivals trace.
	DropPolicy
	// DropDeadline: the reply arrived after VTimeConfig.DeadlineSeconds.
	DropDeadline
	// DropBudget: the round/window byte budget (VTimeConfig.RoundBytes)
	// was already spent when the reply arrived.
	DropBudget
	// DropLost: the network lost the reply (LatencyModel.Dropped).
	DropLost
	// DropDrain: the reply arrived after the asynchronous schedule
	// completed its target folds.
	DropDrain
)

// String implements fmt.Stringer.
func (d DropReason) String() string {
	switch d {
	case ArrivalFolded:
		return "folded"
	case DropPolicy:
		return "drop-policy"
	case DropDeadline:
		return "drop-deadline"
	case DropBudget:
		return "drop-budget"
	case DropLost:
		return "drop-lost"
	case DropDrain:
		return "drop-drain"
	default:
		return fmt.Sprintf("DropReason(%d)", int(d))
	}
}

// History is the evaluated trajectory of one run.
type History struct {
	// Label names the method, e.g. "FedProx(mu=1)".
	Label string
	// Points are in increasing round order.
	Points []Point
	// Arrivals is the per-contact trace of a virtual-time run, in
	// dispatch order; empty otherwise.
	Arrivals []Arrival
}

// Final returns the last evaluated point. It panics on an empty history.
func (h *History) Final() Point {
	if len(h.Points) == 0 {
		panic("core: empty history")
	}
	return h.Points[len(h.Points)-1]
}

// Losses returns the training-loss series.
func (h *History) Losses() []float64 {
	out := make([]float64, len(h.Points))
	for i, p := range h.Points {
		out[i] = p.TrainLoss
	}
	return out
}

// Accuracies returns the test-accuracy series.
func (h *History) Accuracies() []float64 {
	out := make([]float64, len(h.Points))
	for i, p := range h.Points {
		out[i] = p.TestAcc
	}
	return out
}

// BestAccuracy returns the maximum test accuracy over the run.
func (h *History) BestAccuracy() float64 {
	best := 0.0
	for _, p := range h.Points {
		if p.TestAcc > best {
			best = p.TestAcc
		}
	}
	return best
}

// Converged reports whether the loss series meets the paper's convergence
// criterion: the difference between two consecutive evaluations drops
// below tol (the paper uses 1e-4 on consecutive rounds).
func (h *History) Converged(tol float64) bool {
	for i := 1; i < len(h.Points); i++ {
		if math.Abs(h.Points[i].TrainLoss-h.Points[i-1].TrainLoss) < tol {
			return true
		}
	}
	return false
}

// Diverged reports whether the loss series meets the paper's divergence
// criterion: the loss rises by more than rise over a window of win
// evaluated points (the paper uses f_t − f_{t−10} > 1).
func (h *History) Diverged(rise float64, win int) bool {
	for i := win; i < len(h.Points); i++ {
		if h.Points[i].TrainLoss-h.Points[i-win].TrainLoss > rise {
			return true
		}
	}
	return false
}

// SettledAccuracy returns the accuracy the paper's Figure 7 accounting
// assigns to a run: the accuracy at the first point where the run has
// converged (|Δloss| < tol), or at the point just before it diverges
// (loss rise > rise over win evaluations), or at the final round —
// whichever comes first.
func (h *History) SettledAccuracy(tol, rise float64, win int) float64 {
	for i := 1; i < len(h.Points); i++ {
		if math.Abs(h.Points[i].TrainLoss-h.Points[i-1].TrainLoss) < tol {
			return h.Points[i].TestAcc
		}
		if i >= win && h.Points[i].TrainLoss-h.Points[i-win].TrainLoss > rise {
			return h.Points[i-win].TestAcc
		}
	}
	return h.Final().TestAcc
}

// TracksStaleness reports whether any evaluated point carries update
// staleness — true only for histories produced by an asynchronous
// aggregation run.
func (h *History) TracksStaleness() bool {
	for _, p := range h.Points {
		if !math.IsNaN(p.MeanStaleness) {
			return true
		}
	}
	return false
}

// TracksWork reports whether any evaluated point carries realized-work
// statistics — true only for runs with a device-side compute budget
// (Config.DeviceBudget).
func (h *History) TracksWork() bool {
	for _, p := range h.Points {
		if !math.IsNaN(p.MeanEpochsDone) {
			return true
		}
	}
	return false
}

// TracksVirtualTime reports whether the run executed on the virtual
// clock (Config.VTime) and its points carry VirtualSeconds.
func (h *History) TracksVirtualTime() bool {
	for _, p := range h.Points {
		if !math.IsNaN(p.VirtualSeconds) {
			return true
		}
	}
	return false
}

// VirtualDuration returns the virtual wall-clock of the full run — the
// final evaluated point's VirtualSeconds — or NaN for runs without a
// virtual clock.
func (h *History) VirtualDuration() float64 {
	if len(h.Points) == 0 {
		return math.NaN()
	}
	return h.Final().VirtualSeconds
}

// ReplyLatencyQuantiles returns the given quantiles (each in [0,1]) of
// the per-reply latencies in the Arrivals trace — Arrived − Sent, the
// network+compute round trip of every transmitted reply, dropped or
// folded. Quantiles interpolate linearly between order statistics. The
// result is all-NaN when the run recorded no arrivals (any run without a
// virtual clock).
func (h *History) ReplyLatencyQuantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(h.Arrivals) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	lat := make([]float64, len(h.Arrivals))
	for i, a := range h.Arrivals {
		lat[i] = a.Arrived - a.Sent
	}
	sort.Float64s(lat)
	for i, q := range qs {
		switch {
		case math.IsNaN(q) || q < 0 || q > 1:
			out[i] = math.NaN()
		default:
			pos := q * float64(len(lat)-1)
			lo := int(pos)
			hi := lo
			if lo+1 < len(lat) {
				hi = lo + 1
			}
			frac := pos - float64(lo)
			out[i] = lat[lo]*(1-frac) + lat[hi]*frac
		}
	}
	return out
}

// histColumn is one column of the String table: the header and every
// cell share the column's width, so headers cannot drift from the rows
// when optional columns (staleness, realized work, virtual time) are
// combined.
type histColumn struct {
	head string
	cell func(Point) string
}

// columns returns the table layout for this history's tracked features.
func (h *History) columns() []histColumn {
	na := func(v float64, format func(float64) string) string {
		if math.IsNaN(v) {
			return "-"
		}
		return format(v)
	}
	cols := []histColumn{
		{"round", func(p Point) string { return fmt.Sprintf("%d", p.Round) }},
		{"train-loss", func(p Point) string { return fmt.Sprintf("%.4f", p.TrainLoss) }},
		{"test-acc", func(p Point) string { return fmt.Sprintf("%.4f", p.TestAcc) }},
		{"grad-var", func(p Point) string {
			return na(p.GradVar, func(v float64) string { return fmt.Sprintf("%.4g", v) })
		}},
		{"mu", func(p Point) string { return fmt.Sprintf("%.3g", p.Mu) }},
	}
	if h.TracksStaleness() {
		cols = append(cols,
			histColumn{"mean-stale", func(p Point) string {
				return na(p.MeanStaleness, func(v float64) string { return fmt.Sprintf("%.2f", v) })
			}},
			histColumn{"max-stale", func(p Point) string {
				return na(p.MeanStaleness, func(float64) string { return fmt.Sprintf("%.0f", p.MaxStaleness) })
			}})
	}
	if h.TracksWork() {
		cols = append(cols,
			histColumn{"mean-epochs", func(p Point) string {
				return na(p.MeanEpochsDone, func(v float64) string { return fmt.Sprintf("%.2f", v) })
			}},
			histColumn{"partial", func(p Point) string {
				return na(p.MeanEpochsDone, func(float64) string { return fmt.Sprintf("%.0f%%", 100*p.PartialFraction) })
			}})
	}
	if h.TracksVirtualTime() {
		cols = append(cols, histColumn{"vtime-s", func(p Point) string {
			return na(p.VirtualSeconds, func(v float64) string { return fmt.Sprintf("%.3f", v) })
		}})
	}
	return cols
}

// histColumnWidths are the historical minimum widths by header; columns
// not listed are at least as wide as their header.
var histColumnWidths = map[string]int{
	"round":      6,
	"train-loss": 12,
	"test-acc":   9,
	"grad-var":   12,
	"mu":         8,
	"mean-stale": 10,
	"max-stale":  9,
	"partial":    8,
	"vtime-s":    10,
}

// String renders the history as an aligned table of evaluated rounds.
// Asynchronous histories gain staleness columns, budgeted runs realized
// work, virtual-time runs the clock; every column's header and cells are
// rendered from one spec and one width, so combinations cannot drift out
// of alignment.
func (h *History) String() string {
	cols := h.columns()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = max(histColumnWidths[c.head], len(c.head))
		for _, p := range h.Points {
			widths[i] = max(widths[i], len(c.cell(p)))
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", h.Label)
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%*s", widths[i], c.head)
	}
	b.WriteByte('\n')
	for _, p := range h.Points {
		for i, c := range cols {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%*s", widths[i], c.cell(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
