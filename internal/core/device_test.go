package core

import (
	"math"
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/data"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
	"fedprox/internal/solver"
)

// fixedBudget grants every dispatch the same epoch allowance.
type fixedBudget int

func (b fixedBudget) EpochBudget(tag, device, requested int) int { return int(b) }

// TestDeviceTruncatesToBudget: the device runtime enforces the dispatch's
// compute budget — the solve runs min(Epochs, EpochBudget) epochs, the
// reply reports it, and the result is bit-identical to solving the
// truncated epoch count directly.
func TestDeviceTruncatesToBudget(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.1))
	mdl := linear.ForDataset(fed)
	dev := NewDevice(mdl, fed.Shards, DeviceOptions{})

	shard := fed.Shards[0]
	w0 := mdl.InitParams(frand.New(3))
	d := Dispatch{
		Device:       shard.ID,
		Epochs:       8,
		EpochBudget:  3,
		LearningRate: 0.01,
		BatchSize:    10,
		BatchSeed:    frand.New(5).State(),
		View:         w0,
	}
	r, err := dev.HandleDispatch(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.EpochsDone != 3 {
		t.Fatalf("EpochsDone = %d, want the budget 3", r.EpochsDone)
	}
	want := solver.SGD(mdl, shard.Train, w0, d.SolverConfig(), 3, frand.New(d.BatchSeed))
	for i := range want {
		if r.Params[i] != want[i] {
			t.Fatalf("truncated solve differs from a direct 3-epoch solve at coordinate %d", i)
		}
	}

	// A budget at or above the target changes nothing.
	d.EpochBudget = 8
	r, err = dev.HandleDispatch(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.EpochsDone != 8 {
		t.Fatalf("EpochsDone = %d, want the full target 8", r.EpochsDone)
	}
}

// TestDeviceBudgetMatchesReducedEpochs: a run whose devices are uniformly
// budget-limited to b epochs reproduces, bit for bit, a run dispatched at
// b epochs — the truncation composes with nothing else.
func TestDeviceBudgetMatchesReducedEpochs(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)

	budgeted := FedProx(6, 5, 8, 0.01, 1)
	budgeted.EvalEvery = 2
	budgeted.DeviceBudget = fixedBudget(3)

	reduced := FedProx(6, 5, 3, 0.01, 1)
	reduced.EvalEvery = 2

	a, err := Run(mdl, fed, budgeted)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mdl, fed, reduced)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].TrainLoss != b.Points[i].TrainLoss {
			t.Fatalf("point %d: budgeted loss %.17g != reduced-epoch loss %.17g",
				i, a.Points[i].TrainLoss, b.Points[i].TrainLoss)
		}
	}
	// The budgeted run charges only the realized work.
	fa, fb := a.Final().Cost, b.Final().Cost
	if fa.DeviceEpochs != fb.DeviceEpochs {
		t.Fatalf("budgeted run charged %d device epochs, want %d (the realized work)",
			fa.DeviceEpochs, fb.DeviceEpochs)
	}
	fin := a.Final()
	if !a.TracksWork() || fin.MeanEpochsDone != 3 {
		t.Fatalf("work columns: tracked=%v mean=%g, want tracked mean 3", a.TracksWork(), fin.MeanEpochsDone)
	}
	if fin.PartialFraction != 1 {
		t.Fatalf("PartialFraction = %g, want 1 (every update truncated below its 8-epoch target)", fin.PartialFraction)
	}
	if b.TracksWork() {
		t.Fatal("run without a budget model must not track work columns")
	}
	if !math.IsNaN(b.Final().MeanEpochsDone) {
		t.Fatal("MeanEpochsDone must be NaN without a budget model")
	}
}

// TestDeviceBudgetClampsLegacyDropCharge: under the legacy (no-codec)
// accounting, never-contacted dropped stragglers are charged a
// counterfactual full run — but a device-side budget bounds that
// counterfactual too, so a drop-vs-aggregate cost comparison under the
// same fleet stays fair.
func TestDeviceBudgetClampsLegacyDropCharge(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)

	drop := FedAvg(6, 8, 8, 0.01)
	drop.StragglerFraction = 0.9
	drop.EvalEvery = 3

	unbudgeted, err := Run(mdl, fed, drop)
	if err != nil {
		t.Fatal(err)
	}
	budgeted := drop
	budgeted.DeviceBudget = fixedBudget(3)
	capped, err := Run(mdl, fed, budgeted)
	if err != nil {
		t.Fatal(err)
	}
	uc, cc := unbudgeted.Final().Cost, capped.Final().Cost
	if cc.WastedEpochs >= uc.WastedEpochs {
		t.Fatalf("budgeted drop run wasted %d epochs, unbudgeted %d — the budget must bound the counterfactual charge",
			cc.WastedEpochs, uc.WastedEpochs)
	}
	if cc.DeviceEpochs >= uc.DeviceEpochs {
		t.Fatalf("budgeted drop run charged %d device epochs, unbudgeted %d", cc.DeviceEpochs, uc.DeviceEpochs)
	}
}

// TestDeviceBudgetAsyncVTimeDeterministic: the variable-work axis runs on
// the virtual-time asynchronous path too, deterministically, charging the
// compute leg for the realized epochs (less virtual time than full work).
func TestDeviceBudgetAsyncVTimeDeterministic(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	n := fed.NumDevices()

	cfg := vtimeAsyncConfig(AsyncTotal, n)
	cfg.StragglerFraction = 0
	cfg.DeviceBudget = fixedBudget(1)

	a, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !historiesEqual(a, b) {
		t.Fatal("budgeted vtime async run is not reproducible under the same seed")
	}
	full := cfg
	full.DeviceBudget = nil
	f, err := Run(mdl, fed, full)
	if err != nil {
		t.Fatal(err)
	}
	if !(a.VirtualDuration() < f.VirtualDuration()) {
		t.Fatalf("budgeted run took %.3f virtual-s, full work %.3f — truncation must shorten the compute leg",
			a.VirtualDuration(), f.VirtualDuration())
	}
	if !a.TracksWork() {
		t.Fatal("async budgeted run must track work columns")
	}
}

// TestDeviceHandleEvalSortedOrder: eval replies list hosted devices in
// ascending ID order regardless of shard registration order, so the wire
// output is deterministic run to run.
func TestDeviceHandleEvalSortedOrder(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.1))
	mdl := linear.ForDataset(fed)
	// Register shards in reverse order.
	rev := append([]*data.Shard(nil), fed.Shards...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	dev := NewDevice(mdl, rev, DeviceOptions{})
	w0 := mdl.InitParams(frand.New(3))
	reply, err := dev.HandleEval(EvalRequest{Seq: 1, Params: w0})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Devices) != fed.NumDevices() {
		t.Fatalf("eval reported %d devices, want %d", len(reply.Devices), fed.NumDevices())
	}
	for i := 1; i < len(reply.Devices); i++ {
		if reply.Devices[i-1].Device >= reply.Devices[i].Device {
			t.Fatalf("eval devices out of order at %d: %d >= %d",
				i, reply.Devices[i-1].Device, reply.Devices[i].Device)
		}
	}
}

// TestDeviceBudgetCheckpointResume: the budget axis composes with
// checkpointing — a resumed codec run continues the work columns and the
// device-side encoder state bit for bit.
func TestDeviceBudgetCheckpointResume(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)

	base := FedProx(6, 5, 8, 0.01, 1)
	base.EvalEvery = 2
	base.DeviceBudget = fixedBudget(3)
	base.Codec = comm.Spec{Name: "delta+qsgd", Bits: 8}

	straight, err := Run(mdl, fed, base)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: stop after the first save, then resume. The
	// checkpoint cadence is deliberately misaligned with EvalEvery so
	// the resume crosses an evaluation window boundary: the partially
	// accumulated work counters must ride the checkpoint for the next
	// Point's MeanEpochsDone to match.
	ck := &memCheckpointer{failAfterSaves: 1}
	interrupted := base
	interrupted.Checkpointer = ck
	interrupted.CheckpointEvery = 1
	if _, err := Run(mdl, fed, interrupted); err == nil {
		t.Fatal("expected the interrupted run to fail at the injected stop")
	}
	ck.failAfterSaves = 0
	resumed, err := Run(mdl, fed, interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Points) != len(straight.Points) {
		t.Fatalf("resumed run has %d points, want %d", len(resumed.Points), len(straight.Points))
	}
	for i := range straight.Points {
		sp, rp := straight.Points[i], resumed.Points[i]
		if sp.TrainLoss != rp.TrainLoss {
			t.Fatalf("point %d: resumed loss %.17g != straight %.17g", i, rp.TrainLoss, sp.TrainLoss)
		}
		if math.Float64bits(sp.MeanEpochsDone) != math.Float64bits(rp.MeanEpochsDone) {
			t.Fatalf("point %d: resumed MeanEpochsDone %g != straight %g", i, rp.MeanEpochsDone, sp.MeanEpochsDone)
		}
	}
	if straight.Final().Cost != resumed.Final().Cost {
		t.Fatalf("resumed cost %+v != straight %+v", resumed.Final().Cost, straight.Final().Cost)
	}
}

// memCheckpointer persists in memory and can fail the run after a set
// number of saves (simulating a crash just past a checkpoint).
type memCheckpointer struct {
	next           int
	params         []float64
	hist           *History
	state          []byte
	saves          int
	failAfterSaves int
}

func (m *memCheckpointer) Load() (int, []float64, *History, []byte, error) {
	if m.params == nil {
		return 0, nil, nil, nil, nil
	}
	var h *History
	if m.hist != nil {
		cp := *m.hist
		cp.Points = append([]Point(nil), m.hist.Points...)
		h = &cp
	}
	return m.next, append([]float64(nil), m.params...), h, append([]byte(nil), m.state...), nil
}

func (m *memCheckpointer) Save(next int, params []float64, hist *History, state []byte) error {
	m.next = next
	m.params = append(m.params[:0], params...)
	cp := *hist
	cp.Points = append([]Point(nil), hist.Points...)
	m.hist = &cp
	m.state = append(m.state[:0], state...)
	m.saves++
	if m.failAfterSaves > 0 && m.saves >= m.failAfterSaves {
		return errInjectedStop
	}
	return nil
}

var errInjectedStop = errInjected{}

type errInjected struct{}

func (errInjected) Error() string { return "injected stop after checkpoint" }
