package core

import (
	"testing"
	"testing/quick"

	"fedprox/internal/tensor"
)

// TestAggregateConvexHullProperty: both aggregation schemes produce a
// convex combination of the device models, so every coordinate of the
// result lies within the coordinate-wise [min, max] of the inputs.
func TestAggregateConvexHullProperty(t *testing.T) {
	f := func(raw [3][4]int16, w1, w2, w3 uint8) bool {
		params := make([][]float64, 3)
		for i := range params {
			params[i] = make([]float64, 4)
			for j := range params[i] {
				params[i][j] = float64(raw[i][j]) / 128 // range ~[-256, 256]
			}
		}
		weights := []float64{float64(w1) + 1, float64(w2) + 1, float64(w3) + 1}
		for _, scheme := range []SamplingScheme{UniformWeightedAvg, WeightedSimpleAvg} {
			dst := make([]float64, 4)
			aggregate(dst, params, weights, scheme)
			for j := 0; j < 4; j++ {
				lo, hi := params[0][j], params[0][j]
				for _, p := range params[1:] {
					if p[j] < lo {
						lo = p[j]
					}
					if p[j] > hi {
						hi = p[j]
					}
				}
				const eps = 1e-9
				if dst[j] < lo-eps || dst[j] > hi+eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAggregateSingleUpdateIsIdentity: with one participant both schemes
// return that participant's model exactly.
func TestAggregateSingleUpdateIsIdentity(t *testing.T) {
	p := []float64{1.5, -2, 0.25}
	for _, scheme := range []SamplingScheme{UniformWeightedAvg, WeightedSimpleAvg} {
		dst := make([]float64, 3)
		aggregate(dst, [][]float64{p}, []float64{7}, scheme)
		for j := range p {
			if dst[j] != p[j] {
				t.Fatalf("%v: single-update aggregate differs at %d", scheme, j)
			}
		}
	}
}

// TestWeightedAggregateBiasesTowardHeavy: the n_k-weighted scheme must
// land closer to the heavier device's model.
func TestWeightedAggregateBiasesTowardHeavy(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{1, 1}
	dst := make([]float64, 2)
	aggregate(dst, [][]float64{a, b}, []float64{1, 9}, UniformWeightedAvg)
	if dst[0] != 0.9 {
		t.Fatalf("weighted aggregate = %v, want 0.9 toward heavy device", dst)
	}
	aggregate(dst, [][]float64{a, b}, []float64{1, 9}, WeightedSimpleAvg)
	if dst[0] != 0.5 {
		t.Fatalf("simple average = %v, want 0.5", dst)
	}
	_ = tensor.Norm2(dst)
}
