package core

// This file is the sans-I/O device runtime: the device half of the
// FedProx protocol, mirroring the coordinator's event API on the other
// end of the link. A Device owns everything a real client owns —
//
//   - the downlink decode and its per-device codec link state (the
//     broadcast shadow a chained codec decodes against),
//   - the shared evaluation-broadcast receive chain,
//   - the local solve (any solver.LocalSolver) with the device-side
//     compute-budget truncation (variable local work: the γ-inexact
//     partial solutions the paper's framework is built to aggregate),
//   - the γ-inexactness probe,
//   - the client-side privacy hook (clip + noise before upload),
//   - the uplink encode with its stateful rounding streams and
//     error-feedback residuals,
//
// behind HandleDispatch/HandleEval, with no I/O, no clocks, and no
// goroutines of its own. Three executors drive the same type:
//
//   - core.Run hosts one Device over every shard and serves each round's
//     Dispatch commands in parallel against it,
//   - the virtual-time driver (vsim.go) solves each Dispatch eagerly on
//     the same Device and defers only the reply's arrival,
//   - fednet.Worker wraps one Device per hosted shard set and translates
//     TrainRequest/EvalRequest wire messages into these events.
//
// Because the solve, the truncation, the privacy hook, and both codec
// endpoints run through this one type, device-side behavior cannot drift
// between the simulator and the deployment: a feature added here (like
// the epoch-budget truncation) is inherited by every executor by
// construction, and the simulator's link state lives where the
// deployment's does — on the device, not folded into the server.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fedprox/internal/comm"
	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/obs"
	"fedprox/internal/privacy"
	"fedprox/internal/solver"
	"fedprox/internal/tensor"
)

// EvalRequest asks a device runtime to evaluate the global model on every
// shard it hosts. Exactly one of Update (the encoded broadcast on the
// deployment's shared eval link) or Params (the decoded view, in-process
// drivers) is set.
type EvalRequest struct {
	// Seq matches replies to requests; eval broadcasts are strictly
	// sequential per deployment (the chained eval link depends on it).
	Seq int
	// Update is the encoded global model on the shared eval link.
	Update *comm.Update
	// Params is the decoded view for runtimes without wire links.
	Params []float64
}

// DeviceEval is one shard's contribution to the global metrics.
type DeviceEval struct {
	Device    int
	TrainLoss float64 // mean loss over the local training set
	TrainN    int
	Correct   int // correct test predictions
	TestN     int
}

// EvalReply answers an EvalRequest with per-device metric contributions,
// in ascending device order (deterministic on the wire).
type EvalReply struct {
	Seq     int
	Devices []DeviceEval
}

// DeviceOptions carries the client-side knobs of a Device.
type DeviceOptions struct {
	// Solver is the local solver; nil selects mini-batch SGD.
	Solver solver.LocalSolver
	// Privacy, when non-nil, clips and noises every local solution in
	// place before the uplink encode — the client-side half of
	// update-level DP (the server never sees the raw solution).
	Privacy *privacy.Mechanism
	// TrackGamma computes the achieved γ-inexactness of every solution
	// (one full local gradient pass per dispatch).
	TrackGamma bool
	// Trace, when non-nil, receives one obs.Event per served dispatch
	// (realized epochs, wire bytes both ways) and eval broadcast — the
	// device-side half of the observability spine, independent of the
	// coordinator's Config.Trace. Events carry no clock (Time NaN);
	// wall-clock runtimes (fednet workers) wrap the sink in
	// obs.WallClock. The sink must tolerate concurrent Emit calls:
	// dispatches for distinct hosted devices are served concurrently,
	// which is also why the deterministic simulators leave this nil and
	// trace only the coordinator.
	Trace obs.Sink
	// Precision selects the dispatch hot path's arithmetic width (see
	// Config.Precision). tensor.F32 requires a model.Model32 model, a
	// solver.LocalSolver32 solver, and no Privacy mechanism — the
	// constructors panic otherwise rather than silently running wide.
	// InstallLinks overrides it with the wire specs' negotiated
	// precision: once links exist, the wire format is the single truth
	// both endpoints must agree on.
	Precision tensor.Precision
}

// Device is the transport-agnostic FedProx client core, hosting one or
// more device shards. Construct with NewDevice, optionally InstallLinks
// for wire codecs, then serve HandleDispatch/HandleEval events.
//
// Device is safe for concurrent use by goroutines handling distinct
// hosted devices (the link maps are mutex-guarded and per-device codec
// state is single-owner, matching the at-most-one-outstanding-request-
// per-device protocol invariant); eval receives are strictly sequential.
type Device struct {
	mdl    model.Model
	shards map[int]*data.Shard
	ids    []int // hosted device IDs, ascending
	// fleet, when non-nil, replaces shards/ids: the runtime hosts the
	// whole population lazily, materializing a device's shard only for
	// the duration of the dispatch (or eval pass) that needs it. This
	// is what keeps a 10^5–10^6-device simulated run at O(cohort)
	// memory.
	fleet data.Fleet
	local solver.LocalSolver
	priv  *privacy.Mechanism
	gamma bool
	trace obs.Sink
	prec  tensor.Precision

	// links, when installed, is the device side of the codec link state:
	// downlink decoders with the last decoded broadcast per device,
	// stateful uplink encoders, and the shared eval receive chain. Nil
	// runs in-process: dispatches carry decoded views and replies carry
	// raw parameters.
	links *commLinks
}

// NewDevice builds a device runtime hosting the given shards.
func NewDevice(mdl model.Model, shards []*data.Shard, opts DeviceOptions) *Device {
	if mdl == nil || len(shards) == 0 {
		panic("core: device runtime needs a model and at least one shard")
	}
	local := opts.Solver
	if local == nil {
		local = solver.SGDSolver{}
	}
	checkPrecision(mdl, local, opts)
	byID := make(map[int]*data.Shard, len(shards))
	ids := make([]int, 0, len(shards))
	for _, s := range shards {
		byID[s.ID] = s
		ids = append(ids, s.ID)
	}
	sort.Ints(ids)
	return &Device{
		mdl:    mdl,
		shards: byID,
		ids:    ids,
		local:  local,
		priv:   opts.Privacy,
		gamma:  opts.TrackGamma,
		trace:  opts.Trace,
		prec:   opts.Precision,
	}
}

// checkPrecision enforces the f32 hot path's prerequisites at
// construction time: a silent fall-back to float64 would desynchronize a
// wire deployment (the negotiated format is part of the protocol), so an
// impossible combination is a programming error, not a runtime choice.
func checkPrecision(mdl model.Model, local solver.LocalSolver, opts DeviceOptions) {
	if opts.Precision != tensor.F32 {
		if err := opts.Precision.Validate(); err != nil {
			panic("core: " + err.Error())
		}
		return
	}
	if _, ok := mdl.(model.Model32); !ok {
		panic("core: Precision f32 needs a model implementing model.Model32")
	}
	if _, ok := local.(solver.LocalSolver32); !ok {
		panic("core: Precision f32 needs a solver implementing solver.LocalSolver32")
	}
	if opts.Privacy != nil {
		panic("core: Precision f32 cannot be combined with a privacy mechanism (the DP hook runs at full width)")
	}
}

// NewFleetDevice builds a device runtime hosting every device of a lazy
// fleet. Unlike NewDevice it keeps no per-device example storage: each
// HandleDispatch materializes its device's shard from the fleet and
// releases it before returning, so resident data is bounded by the
// number of concurrent dispatches, not the population.
func NewFleetDevice(mdl model.Model, fl data.Fleet, opts DeviceOptions) *Device {
	if mdl == nil || fl == nil || fl.NumDevices() == 0 {
		panic("core: fleet device runtime needs a model and a non-empty fleet")
	}
	local := opts.Solver
	if local == nil {
		local = solver.SGDSolver{}
	}
	checkPrecision(mdl, local, opts)
	return &Device{
		mdl:   mdl,
		fleet: fl,
		local: local,
		priv:  opts.Privacy,
		gamma: opts.TrackGamma,
		trace: opts.Trace,
		prec:  opts.Precision,
	}
}

// shardFor resolves a hosted device's shard. On fleet runtimes the shard
// is materialized on demand and release (non-nil only then) must be
// called when the caller is done reading it.
func (dv *Device) shardFor(id int) (shard *data.Shard, release func(), err error) {
	if dv.fleet != nil {
		if id < 0 || id >= dv.fleet.NumDevices() {
			return nil, nil, fmt.Errorf("core: device %d not hosted on this runtime", id)
		}
		return dv.fleet.Shard(id), func() { dv.fleet.Release(id) }, nil
	}
	s, ok := dv.shards[id]
	if !ok {
		return nil, nil, fmt.Errorf("core: device %d not hosted on this runtime", id)
	}
	return s, nil, nil
}

// emit sends one event to the device's trace sink. Device events carry
// no clock (Time NaN): the runtime is sans-I/O, so any timestamp is the
// wrapping driver's business (obs.WallClock on wire runtimes).
func (dv *Device) emit(e obs.Event) {
	if dv.trace == nil {
		return
	}
	e.Time = math.NaN()
	dv.trace.Emit(e)
}

// InstallLinks installs the device-side wire codecs for both directions
// plus the shared eval receive chain, replacing any previous state — a
// worker calls it when the coordinator's Welcome announces the
// negotiated specs; the simulator when Config.Codec is enabled.
func (dv *Device) InstallLinks(down, up comm.Spec) error {
	links, err := newCommLinks(down, up)
	if err != nil {
		return err
	}
	// The wire specs carry the deployment's negotiated precision; adopt
	// it so the solve runs in the same width the link encodes. A spec
	// this runtime cannot execute is a negotiation error, reported here
	// rather than on the first dispatch.
	if down.Precision == tensor.F32 {
		if _, ok := dv.mdl.(model.Model32); !ok {
			return errors.New("core: f32 link specs on a model without a float32 path (model.Model32)")
		}
		if _, ok := dv.local.(solver.LocalSolver32); !ok {
			return errors.New("core: f32 link specs on a solver without a float32 path (solver.LocalSolver32)")
		}
		if dv.priv != nil {
			return errors.New("core: f32 link specs on a runtime with a privacy mechanism (the DP hook runs at full width)")
		}
	}
	dv.prec = down.Precision
	dv.links = links
	return nil
}

// SupportsPrecision reports whether this runtime can execute dispatches
// at the given width — what a fednet worker consults to build its Hello
// precision offer. F32 needs the complete float32 path: a Model32 model,
// a LocalSolver32 solver, and no privacy mechanism.
func (dv *Device) SupportsPrecision(p tensor.Precision) bool {
	if p != tensor.F32 {
		return p.Validate() == nil
	}
	_, mok := dv.mdl.(model.Model32)
	_, sok := dv.local.(solver.LocalSolver32)
	return mok && sok && dv.priv == nil
}

// SeedEvalPrev installs an eval chain base received from the server — a
// re-admitted worker joins an eval chain already in progress.
func (dv *Device) SeedEvalPrev(prev []float64) {
	if dv.links != nil {
		dv.links.eval.SeedPrev(prev)
	}
}

// Hosted returns the hosted devices as registration entries, in
// ascending device order.
func (dv *Device) Hosted() []DeviceReg {
	if dv.fleet != nil {
		// Registration is the one O(population) pass: sizes only, no
		// example data is materialized.
		n := dv.fleet.NumDevices()
		out := make([]DeviceReg, n)
		for id := 0; id < n; id++ {
			out[id] = DeviceReg{ID: id, TrainSize: dv.fleet.TrainSize(id)}
		}
		return out
	}
	out := make([]DeviceReg, 0, len(dv.ids))
	for _, id := range dv.ids {
		out = append(out, DeviceReg{ID: id, TrainSize: len(dv.shards[id].Train)})
	}
	return out
}

// SolverConfig builds the local subproblem hyperparameters of this
// dispatch — the single construction site shared by the solve and the
// γ probe (and any external driver that needs it).
func (d Dispatch) SolverConfig() solver.Config {
	return solver.Config{
		LearningRate: d.LearningRate,
		BatchSize:    d.BatchSize,
		Mu:           d.Mu,
	}
}

// HandleDispatch serves one training dispatch: decode the broadcast
// (advancing this endpoint's downlink chain), run the local solve —
// truncated to the dispatch's device-side epoch budget — apply the
// privacy hook, and encode the uplink reply on the device's stateful
// encoder. The returned Reply carries the encoded update on wire
// runtimes, the raw solution otherwise, and always reports the epochs
// actually run in EpochsDone.
func (dv *Device) HandleDispatch(d Dispatch) (Reply, error) {
	if dv.prec == tensor.F32 {
		return dv.handleDispatch32(d)
	}
	shard, releaseShard, err := dv.shardFor(d.Device)
	if err != nil {
		return Reply{}, err
	}
	if releaseShard != nil {
		defer releaseShard()
	}
	view := d.View
	if d.Update != nil {
		if dv.links == nil {
			return Reply{}, fmt.Errorf("core: encoded dispatch for device %d on a runtime without links", d.Device)
		}
		dec, _, err := dv.links.state.Link(d.Device)
		if err != nil {
			return Reply{}, err
		}
		v, err := dec.Decode(d.Update, dv.links.state.Prev(d.Device))
		if err != nil {
			return Reply{}, err
		}
		view = v
	}
	if view == nil {
		return Reply{}, errors.New("core: dispatch carries neither an encoded update nor a decoded view")
	}
	if len(view) != dv.mdl.NumParams() {
		return Reply{}, fmt.Errorf("core: parameter length %d != model %d", len(view), dv.mdl.NumParams())
	}
	if d.Update != nil {
		dv.links.state.SetPrev(d.Device, view)
	}

	// Variable local work: the device, not the server, decides how much
	// of the dispatched epoch target it completes. A positive budget
	// truncates the solve; the server only learns the realized work from
	// EpochsDone.
	epochs := d.Epochs
	if d.EpochBudget > 0 && d.EpochBudget < epochs {
		epochs = d.EpochBudget
	}
	scfg := d.SolverConfig()
	wk := dv.local.Solve(dv.mdl, shard.Train, view, scfg, epochs, frand.New(d.BatchSeed))
	if dv.priv != nil {
		dv.priv.Apply(wk, view, d.PrivacyTag, d.Device)
	}
	r := Reply{Device: d.Device, EpochsDone: epochs}
	if dv.links != nil {
		u, err := dv.links.uplinkEncode(d.Device, wk, view)
		if err != nil {
			return Reply{}, err
		}
		r.Update = u
	} else {
		r.Params = wk
	}
	if dv.gamma {
		// γ measures the (post-privacy) local solution against the
		// broadcast the device received, before any uplink loss.
		r.Gamma = solver.Gamma(dv.mdl, shard.Train, wk, view, scfg)
	}
	if dv.trace != nil {
		down := d.DownBytes
		if d.Update != nil {
			down = d.Update.WireBytes()
		}
		var up int64
		if r.Update != nil {
			up = r.Update.WireBytes()
		}
		dv.emit(obs.Event{
			Kind: obs.KindDeviceDispatch, Round: d.Round, Seq: d.Seq, Device: d.Device,
			EpochsDone: epochs, BytesUp: up, BytesDown: down,
		})
	}
	// Recycle per-dispatch scratch. A locally decoded view is dead here
	// (SetPrev copied it into the link's own shadow); the raw solution is
	// dead once it left as an encoded Update. When the Reply carries
	// Params instead, ownership of wk moves to the caller.
	if d.Update != nil {
		tensor.PutVec(view)
	}
	if dv.links != nil {
		tensor.PutVec(wk)
	}
	return r, nil
}

// handleDispatch32 is HandleDispatch on the float32 fast path: the
// broadcast is decoded (or narrowed) into a Vec32 once, the whole solve —
// prox term and γ probe included — runs on the f32 kernels, and the
// uplink encodes straight from the f32 solution. The only widening is at
// the reply boundary of link-less runtimes, where Reply.Params keeps its
// float64 contract.
func (dv *Device) handleDispatch32(d Dispatch) (Reply, error) {
	m32, mok := dv.mdl.(model.Model32)
	s32, sok := dv.local.(solver.LocalSolver32)
	if !mok || !sok || dv.priv != nil {
		// Unreachable through the constructors/InstallLinks guards; kept
		// as a defensive check for direct field manipulation in tests.
		return Reply{}, errors.New("core: f32 dispatch on a runtime without a complete float32 path")
	}
	shard, releaseShard, err := dv.shardFor(d.Device)
	if err != nil {
		return Reply{}, err
	}
	if releaseShard != nil {
		defer releaseShard()
	}
	var view32 tensor.Vec32
	switch {
	case d.Update != nil:
		if dv.links == nil {
			return Reply{}, fmt.Errorf("core: encoded dispatch for device %d on a runtime without links", d.Device)
		}
		dec, _, err := dv.links.state.Link(d.Device)
		if err != nil {
			return Reply{}, err
		}
		d32, err := comm.As32(dec)
		if err != nil {
			return Reply{}, err
		}
		v, err := d32.Decode32(d.Update, dv.links.state.Prev32(d.Device))
		if err != nil {
			return Reply{}, err
		}
		view32 = v
	case d.View != nil:
		// In-process dispatch: narrow the driver's f64 view once; every
		// step downstream runs at f32.
		view32 = tensor.GetVec32(len(d.View))
		tensor.Narrow(view32, d.View)
	default:
		return Reply{}, errors.New("core: dispatch carries neither an encoded update nor a decoded view")
	}
	if len(view32) != dv.mdl.NumParams() {
		tensor.PutVec32(view32)
		return Reply{}, fmt.Errorf("core: parameter length %d != model %d", len(view32), dv.mdl.NumParams())
	}
	if d.Update != nil {
		dv.links.state.SetPrev32(d.Device, view32)
	}

	epochs := d.Epochs
	if d.EpochBudget > 0 && d.EpochBudget < epochs {
		epochs = d.EpochBudget
	}
	scfg := d.SolverConfig()
	scfg.Precision = tensor.F32
	wk32 := s32.Solve32(m32, shard.Train, view32, scfg, epochs, frand.New(d.BatchSeed))
	r := Reply{Device: d.Device, EpochsDone: epochs}
	if dv.links != nil {
		u, err := dv.links.uplinkEncode32(d.Device, wk32, view32)
		if err != nil {
			return Reply{}, err
		}
		r.Update = u
	} else {
		// The reply boundary is the one widening of the path.
		out := tensor.GetVec(len(wk32))
		tensor.Widen(out, wk32)
		r.Params = out
	}
	if dv.gamma {
		r.Gamma = solver.Gamma32(m32, shard.Train, wk32, view32, scfg)
	}
	if dv.trace != nil {
		down := d.DownBytes
		if d.Update != nil {
			down = d.Update.WireBytes()
		}
		var up int64
		if r.Update != nil {
			up = r.Update.WireBytes()
		}
		dv.emit(obs.Event{
			Kind: obs.KindDeviceDispatch, Round: d.Round, Seq: d.Seq, Device: d.Device,
			EpochsDone: epochs, BytesUp: up, BytesDown: down,
		})
	}
	tensor.PutVec32(view32)
	tensor.PutVec32(wk32)
	return r, nil
}

// HandleEval serves one evaluation broadcast: decode it on the shared
// eval chain (wire runtimes) and report every hosted shard's metric
// contribution in ascending device order.
func (dv *Device) HandleEval(e EvalRequest) (EvalReply, error) {
	view := e.Params
	if e.Update != nil {
		if dv.links == nil {
			return EvalReply{}, errors.New("core: encoded eval broadcast on a runtime without links")
		}
		v, err := dv.links.eval.Receive(e.Update)
		if err != nil {
			return EvalReply{}, err
		}
		view = v
	}
	if view == nil {
		return EvalReply{}, errors.New("core: eval request carries neither an encoded update nor a decoded view")
	}
	if len(view) != dv.mdl.NumParams() {
		return EvalReply{}, fmt.Errorf("core: parameter length %d != model %d", len(view), dv.mdl.NumParams())
	}
	hosted := dv.ids
	if dv.fleet != nil {
		n := dv.fleet.NumDevices()
		hosted = make([]int, n)
		for i := range hosted {
			hosted[i] = i
		}
	}
	reply := EvalReply{Seq: e.Seq, Devices: make([]DeviceEval, 0, len(hosted))}
	for _, id := range hosted {
		s, releaseShard, err := dv.shardFor(id)
		if err != nil {
			return EvalReply{}, err
		}
		ev := DeviceEval{
			Device:    id,
			TrainLoss: dv.mdl.Loss(view, s.Train),
			TrainN:    len(s.Train),
			TestN:     len(s.Test),
		}
		for _, ex := range s.Test {
			if dv.mdl.Predict(view, ex) == ex.Y {
				ev.Correct++
			}
		}
		if releaseShard != nil {
			releaseShard()
		}
		reply.Devices = append(reply.Devices, ev)
	}
	dv.emit(obs.Event{Kind: obs.KindDeviceEval, Seq: e.Seq, N: len(hosted)})
	return reply, nil
}

// snapshotLinks serializes the device half of the codec link state
// (downlink chains, uplink rounding streams and residuals, the eval
// receive chain) for checkpointing; nil without links.
func (dv *Device) snapshotLinks() ([]byte, error) {
	if dv.links == nil {
		return nil, nil
	}
	return dv.links.snapshot()
}

// restoreLinks replays a snapshotLinks blob into this runtime's links.
func (dv *Device) restoreLinks(state []byte) error {
	if dv.links == nil {
		return errors.New("core: device link snapshot on a runtime without links")
	}
	return dv.links.restore(state)
}
