package core

import (
	"math"
	"testing"
)

// TestReplyLatencyQuantilesEdgeCases covers the order-statistic
// boundaries: a single arrival (every quantile is that latency),
// all-equal latencies (interpolation between equal neighbors), and
// positions landing exactly on an index (no interpolation error, so
// equality is exact).
func TestReplyLatencyQuantilesEdgeCases(t *testing.T) {
	t.Run("zero-arrivals", func(t *testing.T) {
		h := &History{}
		for _, q := range h.ReplyLatencyQuantiles(0, 0.5, 1) {
			if !math.IsNaN(q) {
				t.Fatalf("no arrivals must yield NaN, got %v", q)
			}
		}
	})

	t.Run("single-arrival", func(t *testing.T) {
		h := &History{Arrivals: []Arrival{{Sent: 2, Arrived: 5.5}}}
		for _, q := range h.ReplyLatencyQuantiles(0, 0.25, 0.5, 1) {
			if q != 3.5 {
				t.Fatalf("single arrival: every quantile must be 3.5, got %v", q)
			}
		}
	})

	t.Run("all-equal", func(t *testing.T) {
		h := &History{}
		for i := 0; i < 7; i++ {
			h.Arrivals = append(h.Arrivals, Arrival{Seq: i, Sent: 1, Arrived: 3})
		}
		for _, q := range h.ReplyLatencyQuantiles(0, 0.1, 0.5, 0.9, 1) {
			if q != 2 {
				t.Fatalf("all-equal latencies: every quantile must be 2, got %v", q)
			}
		}
	})

	t.Run("exact-index-boundaries", func(t *testing.T) {
		// Latencies 10,20,30,40,50: with len-1 = 4, quantiles 0, 0.25,
		// 0.5, 0.75, 1 land exactly on indices 0..4 — the results must
		// be the order statistics themselves, bit-exact.
		h := &History{}
		for i, lat := range []float64{30, 10, 50, 20, 40} {
			h.Arrivals = append(h.Arrivals, Arrival{Seq: i, Sent: 0, Arrived: lat})
		}
		got := h.ReplyLatencyQuantiles(0, 0.25, 0.5, 0.75, 1)
		want := []float64{10, 20, 30, 40, 50}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("quantile[%d] = %v, want exactly %v", i, got[i], want[i])
			}
		}
	})

	t.Run("interpolated", func(t *testing.T) {
		// Two arrivals, q=0.5: midpoint of the two order statistics.
		h := &History{Arrivals: []Arrival{{Sent: 0, Arrived: 1}, {Seq: 1, Sent: 0, Arrived: 2}}}
		if q := h.ReplyLatencyQuantiles(0.5)[0]; math.Abs(q-1.5) > 1e-15 {
			t.Fatalf("median of {1,2} = %v, want 1.5", q)
		}
	})

	t.Run("invalid-q", func(t *testing.T) {
		h := &History{Arrivals: []Arrival{{Sent: 0, Arrived: 1}}}
		for _, q := range h.ReplyLatencyQuantiles(-0.1, 1.1, math.NaN()) {
			if !math.IsNaN(q) {
				t.Fatalf("out-of-range q must yield NaN, got %v", q)
			}
		}
	})
}
