package core

// This file is the sans-I/O coordinator: every server-side decision of
// the FedProx protocol — device selection, straggler plans and policies,
// synchronous aggregation, the staleness-damped asynchronous folds,
// adaptive-μ control, codec link state, privacy hooks, and History/Cost
// accounting — lives here, behind an event-driven API with no I/O, no
// clocks, and no goroutines.
//
// The coordinator consumes events (RegisterWorker, HandleReply, Tick,
// WorkerLost, EvalDone, LossObserved) and emits commands (Dispatch,
// Evaluate, ObserveLoss, AdvanceClock, Checkpoint, Done) that a driver
// executes. Three drivers exist:
//
//   - core.Run: the in-process synchronous simulator (parallel local
//     solves, optional virtual-time accounting),
//   - core.runAsyncVTime (vsim.go): the deterministic discrete-event
//     executor of the asynchronous modes on the internal/vtime clock,
//   - internal/fednet.Server: the TCP runtime (sync and async), where
//     Dispatch becomes a TrainRequest and Evaluate an EvalRequest.
//
// Because all aggregation arithmetic and every environment-stream draw
// happens here, cross-executor equivalence (same seed ⇒ bit-identical
// History) holds by construction: the drivers only translate transport
// events and cannot drift from each other.
//
// Event methods return the commands the driver must execute, in order.
// At most one "waiting" command (Evaluate, ObserveLoss) is in flight at a
// time; replies delivered while an evaluation is pending are queued and
// processed after EvalDone, mirroring the fednet aggregator's stash.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sort"

	"fedprox/internal/comm"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/obs"
	"fedprox/internal/tensor"
)

// DeviceReg registers one device a worker hosts.
type DeviceReg struct {
	// ID is the global device index in [0, NumDevices).
	ID int
	// TrainSize is n_k, the device's local training-set size.
	TrainSize int
}

// CoordinatorOptions carries the driver-shape knobs of a Coordinator.
type CoordinatorOptions struct {
	// NumDevices is N, the total number of devices that must register
	// before Start.
	NumDevices int
	// WireEncoded forces every transfer through a codec link even when
	// Config.Codec is disabled: the raw codec is installed so Dispatch
	// and Evaluate carry encoded comm.Updates (the fednet wire always
	// moves Updates). Byte accounting keeps the legacy semantics.
	WireEncoded bool
	// LabelSuffix is appended to the History label (fednet: " [fednet]").
	LabelSuffix string
	// Stepped makes the synchronous protocol pause between rounds: after
	// a round (and its evaluation/checkpoint chain) completes, the
	// coordinator emits Pause{NextRound} instead of opening the next
	// round, and waits for Resume. A tiered driver uses this to re-base
	// an edge coordinator's global model on the parent's view before the
	// next window's broadcasts are encoded, keeping codec link chains
	// and environment streams alive across windows. Synchronous only.
	Stepped bool
	// Tier is 1 + the coordinator's depth in a tiered topology (1 =
	// root, 2 = its children, ...); 0 means untiered. Events emitted by
	// a tiered coordinator carry Tier-1 in obs.Event.Tier, so traces
	// distinguish root decisions (tier 0) from edge decisions (tier ≥ 1)
	// while untiered runs keep emitting the field's absent value (-1).
	Tier int
}

// Command is one instruction the coordinator asks its driver to execute.
type Command interface{ isCommand() }

// Dispatch instructs the driver to run one local solve on a device: ship
// the broadcast (Update on the wire, View in process), solve the
// subproblem at (Mu, LearningRate, BatchSize) for Epochs epochs with the
// batch order seeded by BatchSeed, and deliver the result as a Reply.
type Dispatch struct {
	// Seq is the dispatch sequence number (asynchronous modes: it names
	// the environment and latency streams; synchronous rounds: the
	// position within the round's selection).
	Seq int
	// Round is the communication round (sync) or model milestone (async)
	// at dispatch time.
	Round int
	// Version is the global model version of the broadcast snapshot.
	Version int
	// Device is the target device.
	Device int
	// Epochs is the device's epoch target for this dispatch.
	Epochs int
	// EpochBudget is the device-side compute budget in epochs (0 =
	// unlimited): the device truncates its solve to min(Epochs,
	// EpochBudget) and reports the realized work in Reply.EpochsDone.
	// Drawn from Config.DeviceBudget — the variable-local-work axis,
	// enforced by the device runtime, never re-planned by the server.
	EpochBudget int
	// Mu, LearningRate, BatchSize parameterize the local subproblem.
	Mu           float64
	LearningRate float64
	BatchSize    int
	// BatchSeed is the state of the device's mini-batch order stream.
	BatchSeed uint64
	// PrivacyTag seeds the device's privacy noise stream for this
	// dispatch: the round (synchronous) or the dispatch sequence
	// (asynchronous).
	PrivacyTag int
	// Update is the encoded broadcast (nil when the run has no wire
	// encoding — the plain in-process simulator).
	Update *comm.Update
	// View is the decoded broadcast view the device trains from;
	// in-process drivers solve against it directly.
	View []float64
	// DownBytes is the broadcast's wire size (the uncompressed parameter
	// bytes without a codec).
	DownBytes int64
}

func (Dispatch) isCommand() {}

// Evaluate instructs the driver to measure the global model: compute the
// network training loss and test accuracy at Params (or ship Update to
// distributed evaluators) and deliver an EvalResult via EvalDone.
type Evaluate struct {
	// Round is the milestone being recorded.
	Round int
	// Seq is the evaluation broadcast sequence (the shared eval link
	// chains on it).
	Seq int
	// Update is the encoded eval broadcast (nil without wire encoding).
	Update *comm.Update
	// Params is the decoded view the evaluation happens at.
	Params []float64
	// WireBytes is the encoded broadcast size (virtual-time drivers
	// charge the transfer to their clock).
	WireBytes int64
	// TrackDissimilarity asks the driver to also fill
	// EvalResult.GradVar/B.
	TrackDissimilarity bool
}

func (Evaluate) isCommand() {}

// ObserveLoss asks the driver for the global training loss at Params (the
// adaptive-μ controller observes it every round); answer via
// LossObserved.
type ObserveLoss struct{ Params []float64 }

func (ObserveLoss) isCommand() {}

// AdvanceClock instructs a virtual-time driver to charge Seconds to its
// clock (a synchronous round's critical path). Drivers without a clock
// ignore it.
type AdvanceClock struct{ Seconds float64 }

func (AdvanceClock) isCommand() {}

// Checkpoint reports that the coordinator persisted resumable state
// through round NextRound-1. Purely informational; the save already
// happened.
type Checkpoint struct{ NextRound int }

func (Checkpoint) isCommand() {}

// Pause reports that a stepped coordinator (CoordinatorOptions.Stepped)
// finished its work up to round NextRound and is waiting for Resume
// before opening it. The driver may read Params, re-base the model, and
// must call Resume to continue.
type Pause struct{ NextRound int }

func (Pause) isCommand() {}

// Done reports that the schedule is complete and History() is final.
type Done struct{}

func (Done) isCommand() {}

// Reply delivers one device's training result to the coordinator.
// Exactly one of Update (encoded uplink, wire runtimes) or Params (raw
// local solution, in-process runtimes without links) is set — both are
// produced by core.Device.HandleDispatch.
type Reply struct {
	Device int
	Update *comm.Update
	Params []float64
	// EpochsDone is the local epochs the device actually ran — less than
	// the dispatched target when a device-side budget truncated the
	// solve. Only read when Config.DeviceBudget is configured; the
	// accounting otherwise charges the dispatched epochs unchanged.
	EpochsDone int
	// Gamma is the device's achieved γ-inexactness (only read under
	// Config.TrackGamma).
	Gamma float64
	// Timed marks a virtual-time reply: Seq carries the transfer
	// sequence and Rel the reply's own latency — relative to the round's
	// broadcast for synchronous replies, to its dispatch for
	// asynchronous ones. The deadline and arrival-race policies judge
	// Rel; Lost reports a reply the network dropped in transit.
	Timed bool
	Seq   int
	Rel   float64
	Lost  bool
}

// EvalResult answers an Evaluate command.
type EvalResult struct {
	Loss float64
	Acc  float64
	// GradVar, B fill the dissimilarity columns when the Evaluate
	// command asked for them.
	GradVar float64
	B       float64
	// WireUplinkBytes/WireDownlinkBytes snapshot the transport's
	// measured traffic (fednet only; zero otherwise).
	WireUplinkBytes   int64
	WireDownlinkBytes int64
}

// StaleDelta is one device contribution to a staleness-damped fold: the
// model delta the device computed, its aggregation weight n_k, and the
// model version of the broadcast snapshot it trained from.
type StaleDelta struct {
	Delta   []float64
	Weight  float64
	Version int
}

// FoldStaleDeltas applies the coordinator's asynchronous update rule,
// FedBuff style: each delta is damped by its own staleness at fold time,
// alpha_k = alpha/(1+s)^p with s = version − Version, and the damped
// deltas combine under the run's sampling scheme,
//
//	w ← w + Σ n_k·alpha_k·Δ_k / Σ n_k   (uniform sampling)
//	w ← w + Σ alpha_k·Δ_k / |B|         (weighted sampling)
//
// With fresh replies (s = 0, alpha = 1, views = w) this reproduces the
// synchronous round update exactly; for a single-entry batch it is the
// delta form of the FedAsync fold. It reports whether the model advanced
// a version (false on an empty batch).
func FoldStaleDeltas(w []float64, batch []StaleDelta, version int, sampling SamplingScheme, alpha, p float64) bool {
	return foldStaleDeltas(w, batch, version, sampling, alpha, p, nil)
}

// foldStats accumulates staleness statistics across folds between
// evaluated points.
type foldStats struct {
	sum float64
	max float64
	n   int
}

// workStats accumulates realized-local-work statistics across the
// updates aggregated between evaluated points (only maintained when
// Config.DeviceBudget is set). Fields are exported because the struct
// rides the gob checkpoint envelope: a checkpoint between evaluations
// must carry the partially accumulated counters for exact resume
// equivalence.
type workStats struct {
	Done    int // epochs actually run
	Partial int // updates truncated below their dispatched target
	N       int
}

func (w *workStats) add(done, target int) {
	w.Done += done
	if done < target {
		w.Partial++
	}
	w.N++
}

func foldStaleDeltas(w []float64, batch []StaleDelta, version int, sampling SamplingScheme, alpha, p float64, st *foldStats) bool {
	num := tensor.GetVec(len(w))
	defer tensor.PutVec(num)
	tensor.Zero(num)
	den := 0.0
	for _, e := range batch {
		s := float64(version - e.Version)
		a := alpha / math.Pow(1+s, p)
		if st != nil {
			st.sum += s
			st.n++
			if s > st.max {
				st.max = s
			}
		}
		cw := 1.0
		if sampling != WeightedSimpleAvg {
			cw = e.Weight
		}
		den += cw
		for i, v := range e.Delta {
			num[i] += cw * a * v
		}
	}
	if den == 0 {
		return false
	}
	for i := range w {
		w[i] += num[i] / den
	}
	return true
}

// pendingDispatch is the coordinator's record of one outstanding
// Dispatch.
type pendingDispatch struct {
	device int
	seq    int // async dispatch sequence
	index  int // sync: position within the round's selection
	epochs int // the dispatched epoch target
	// expected is the work the device will actually perform:
	// min(epochs, EpochBudget) when a device-side budget rode the
	// dispatch, epochs otherwise. Charges (DispatchSent, WorkerLost
	// waste) and the realized-work clamp use it so a dispatch that never
	// returns is still billed what the device could have run, matching
	// the sync path's budget-clamped counterfactual.
	expected  int
	budget    int // the raw EpochBudget on the dispatch (0 = unlimited)
	version   int
	view      []float64 // the decoded broadcast view (uplink decode base)
	downBytes int64
	sentAt    float64 // clock at dispatch (async arrival accounting)
	charged   bool    // async: DispatchSent confirmed the transfer
}

// syncReply is one buffered synchronous-round result, held until the
// round completes so aggregation order stays the selection order.
type syncReply struct {
	wk      []float64
	nk      float64
	done    int // realized local epochs (== dispatched without a budget)
	budget  int // the dispatch's raw EpochBudget (0 = unlimited)
	gamma   float64
	upBytes int64
	seq     int
	rel     float64
	lost    bool
	timed   bool
}

// syncRound is the state of the in-flight synchronous round.
type syncRound struct {
	t           int
	mu          float64
	selected    []int
	epochs      []int
	straggler   []bool
	downBytes   []int64
	replies     []*syncReply
	outstanding int
}

// evalPending is a recorded-point skeleton awaiting its EvalResult.
type evalPending struct {
	round        int
	mu           float64
	gamma        float64
	participants int
	after        func() ([]Command, error)
}

// Coordinator is the transport-agnostic FedProx server core. Construct
// with NewCoordinator, register every device with RegisterWorker, then
// call Start and execute the returned commands, feeding events back until
// Done. Coordinator is not safe for concurrent use: drivers serialize
// event delivery. The device half of the protocol — downlink decode,
// local solve, privacy, uplink encode — lives in core.Device; the
// coordinator only encodes broadcasts and decodes replies.
type Coordinator struct {
	cfg   Config
	async AsyncConfig
	opts  CoordinatorOptions
	mdl   model.Model

	// legacy keeps the pre-codec byte accounting (no Config.Codec):
	// every selected device is charged a full-model download and its
	// epochs, dropped stragglers included.
	legacy     bool
	paramBytes int64

	n           int
	sizes       []float64
	weights     []float64
	registered  []bool
	live        []bool
	liveDevices int

	selRoot   *frand.Source
	stragRoot *frand.Source
	batchRoot *frand.Source
	initRoot  *frand.Source

	w     []float64
	links *commLinks
	muc   *muController

	// dev is the in-process device runtime bound for checkpointing: its
	// codec link state (downlink chains, uplink rounding streams and
	// residuals, the eval receive chain) is part of the resumable state.
	// Wire deployments have no access to device state and reject
	// checkpointing instead.
	dev *Device

	hist  *History
	cost  Cost
	work  workStats
	now   float64  // virtual clock mirror; NaN until the driver Ticks
	trace obs.Sink // Config.Trace; nil means tracing off
	tier  int      // obs.Event.Tier stamp: opts.Tier-1 (-1 = untiered)

	evalSeq int

	started  bool
	finished bool

	pending map[int]*pendingDispatch

	// synchronous state
	t         int
	round     *syncRound
	outcome   *roundOutcome
	ckptEvery int
	paused    bool // stepped: a Pause is outstanding, awaiting Resume

	// asynchronous state
	isAsync       bool
	version       int
	folded        int
	dispatchSeq   int
	maxDispatches int
	target        int
	flushSize     int
	roundSize     int
	buffer        []StaleDelta
	idle          *idleSet
	windowBytes   int64
	stats         foldStats

	// wait states
	evalWait *evalPending
	queued   []Reply
}

// NewCoordinator builds a coordinator for one run of cfg on mdl.
func NewCoordinator(mdl model.Model, cfg Config, opts CoordinatorOptions) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.NumDevices <= 0 {
		return nil, errors.New("core: coordinator needs a positive NumDevices")
	}
	if opts.Stepped && cfg.Async.Enabled() {
		return nil, errors.New("core: stepped execution applies only to synchronous rounds")
	}
	if opts.Tier < 0 {
		return nil, fmt.Errorf("core: Tier must be non-negative, got %d", opts.Tier)
	}
	cfg = cfg.WithDefaults()
	root := frand.New(cfg.Seed)
	// Nominal per-transfer cost of an uncoded model: one machine word
	// per coordinate at the deployment's precision — an f32 deployment
	// ships 4-byte coordinates even before any codec.
	wordBytes := 8
	if cfg.Precision == tensor.F32 {
		wordBytes = 4
	}
	c := &Coordinator{
		cfg:        cfg,
		opts:       opts,
		mdl:        mdl,
		legacy:     !cfg.Codec.Enabled(),
		paramBytes: int64(mdl.NumParams() * wordBytes),
		n:          opts.NumDevices,
		sizes:      make([]float64, opts.NumDevices),
		registered: make([]bool, opts.NumDevices),
		live:       make([]bool, opts.NumDevices),
		selRoot:    root.Split("selection"),
		stragRoot:  root.Split("stragglers"),
		batchRoot:  root.Split("batches"),
		initRoot:   root.Split("init"),
		hist:       &History{Label: Label(cfg) + opts.LabelSuffix},
		now:        math.NaN(),
		trace:      cfg.Trace,
		tier:       opts.Tier - 1,
		pending:    make(map[int]*pendingDispatch),
		isAsync:    cfg.Async.Enabled(),
	}
	return c, nil
}

// emit sends one event to the run's trace sink, stamped with the
// coordinator's clock mirror (virtual seconds, or NaN when the run has
// no clock). The nil-sink fast path keeps the untraced hot path at one
// predictable branch.
func (c *Coordinator) emit(e obs.Event) {
	if c.trace == nil {
		return
	}
	e.Time = c.now
	e.Tier = c.tier
	c.trace.Emit(e)
}

// CommSpecs returns the resolved per-direction codec specs of this run —
// what a wire driver must install at the far endpoint. Under WireEncoded
// a disabled codec resolves to "raw".
func (c *Coordinator) CommSpecs() (down, up comm.Spec) {
	down, up = c.cfg.CommSpecs()
	if !up.Enabled() && c.opts.WireEncoded {
		raw := Config{Codec: comm.Spec{Name: "raw"}, Seed: c.cfg.Seed, Precision: c.cfg.Precision}
		down, up = raw.CommSpecs()
	}
	return down, up
}

// BindDevice attaches the in-process device runtime so checkpoints also
// capture the device half of the codec link state. In-process drivers
// call it before Start (the checkpoint load happens there).
func (c *Coordinator) BindDevice(d *Device) { c.dev = d }

// History returns the run's trajectory (final once Done was emitted).
func (c *Coordinator) History() *History { return c.hist }

// Params returns a copy of the current global model parameters. A tiered
// driver reads an edge coordinator's fold here while it is paused, to
// present it upstream as that edge's device reply.
func (c *Coordinator) Params() []float64 {
	out := make([]float64, len(c.w))
	copy(out, c.w)
	return out
}

// Resume continues a stepped coordinator past an outstanding Pause,
// optionally re-basing the global model on view first (nil keeps the
// current parameters). The re-base happens before the next round's
// broadcasts are encoded, so codec link chains stay consistent; this is
// how a tiered driver folds the parent's aggregate back into an edge.
func (c *Coordinator) Resume(view []float64) ([]Command, error) {
	if !c.paused {
		return nil, errors.New("core: Resume without an outstanding Pause")
	}
	if view != nil {
		if len(view) != len(c.w) {
			return nil, fmt.Errorf("core: Resume view has %d params, model has %d", len(view), len(c.w))
		}
		copy(c.w, view)
	}
	c.paused = false
	return c.beginRound()
}

// InFlight returns the number of outstanding dispatches.
func (c *Coordinator) InFlight() int { return len(c.pending) }

// Tick synchronizes the coordinator's virtual clock with the driver's.
// Virtual-time drivers call it after every clock movement; drivers
// without a clock never do, and every Point records VirtualSeconds NaN.
func (c *Coordinator) Tick(now float64) { c.now = now }

// timed reports whether a virtual-time driver is attached.
func (c *Coordinator) timed() bool { return !math.IsNaN(c.now) }

// EvalResyncState returns the shared evaluation link's current chain
// base (the last decoded eval broadcast), or nil when the eval codec is
// chain-free. A wire driver re-admitting a worker mid-run ships it so
// the rejoining endpoint decodes the next eval broadcast in lockstep.
func (c *Coordinator) EvalResyncState() []float64 {
	if c.links == nil {
		return nil
	}
	return c.links.evalPrev()
}

// RegisterWorker registers the devices one worker hosts. Before Start it
// accumulates the roster (every device in [0, NumDevices) must register
// exactly once). After Start — asynchronous runs only — it re-admits
// previously evicted devices: their codec link state is reset on both
// ends (the driver ships fresh state to the worker) and they rejoin the
// idle pool. A validation error after Start leaves the run untouched, so
// wire drivers can refuse the offending worker and continue.
func (c *Coordinator) RegisterWorker(devices []DeviceReg) ([]Command, error) {
	if !c.started {
		for _, d := range devices {
			if d.ID < 0 || d.ID >= c.n {
				return nil, fmt.Errorf("core: device ID %d outside [0,%d)", d.ID, c.n)
			}
			if c.registered[d.ID] {
				return nil, fmt.Errorf("core: device %d registered twice", d.ID)
			}
			if d.TrainSize <= 0 {
				return nil, fmt.Errorf("core: device %d has no training data", d.ID)
			}
			c.registered[d.ID] = true
			c.live[d.ID] = true
			c.liveDevices++
			c.sizes[d.ID] = float64(d.TrainSize)
		}
		return nil, nil
	}
	if !c.isAsync {
		return nil, errors.New("core: synchronous runs cannot re-admit workers")
	}
	// Validate everything before mutating: a rejected re-registration
	// must not leave half a worker admitted.
	seen := make(map[int]bool, len(devices))
	for _, d := range devices {
		if d.ID < 0 || d.ID >= c.n || !c.registered[d.ID] {
			return nil, fmt.Errorf("core: re-admission of unknown device %d", d.ID)
		}
		if c.live[d.ID] {
			return nil, fmt.Errorf("core: device %d is still live", d.ID)
		}
		if seen[d.ID] {
			// A double entry would inflate liveDevices past reality and
			// defeat the lost-every-worker detection forever.
			return nil, fmt.Errorf("core: device %d re-registered twice in one hello", d.ID)
		}
		seen[d.ID] = true
		if float64(d.TrainSize) != c.sizes[d.ID] {
			return nil, fmt.Errorf("core: device %d re-registered with %d training examples, had %g", d.ID, d.TrainSize, c.sizes[d.ID])
		}
	}
	for _, d := range devices {
		if c.links != nil {
			c.links.reset(d.ID)
		}
		c.live[d.ID] = true
		c.liveDevices++
		c.idle.add(d.ID)
		c.emit(obs.Event{Kind: obs.KindWorkerReadmit, Device: d.ID})
	}
	if c.evalWait != nil {
		return nil, nil
	}
	return c.fillAsync()
}

// Start begins the run: initializes the global model from the seed's
// init stream, loads any checkpoint, and returns the first commands
// (round 0's evaluation, or the resumed round's dispatches).
func (c *Coordinator) Start() ([]Command, error) {
	if c.started {
		return nil, errors.New("core: coordinator already started")
	}
	for id, ok := range c.registered {
		if !ok {
			return nil, fmt.Errorf("core: device %d never registered", id)
		}
	}
	c.started = true
	c.emit(obs.Event{Kind: obs.KindRunStart, Label: c.hist.Label, N: c.n})

	total := 0.0
	for _, s := range c.sizes {
		total += s
	}
	c.weights = make([]float64, c.n)
	for i, s := range c.sizes {
		c.weights[i] = s / total
	}

	c.w = c.mdl.InitParams(c.initRoot.Split("params"))

	if c.cfg.Codec.Enabled() || c.opts.WireEncoded {
		down, up := c.CommSpecs()
		links, err := newCommLinks(down, up)
		if err != nil {
			return nil, err
		}
		c.links = links
	}
	if c.cfg.AdaptiveMu {
		c.muc = newMuController(c.cfg.Mu, c.cfg.MuStep, c.cfg.MuPatience)
	}

	if c.isAsync {
		return c.startAsync()
	}
	return c.startSync()
}

// ---------------------------------------------------------------------
// Synchronous protocol
// ---------------------------------------------------------------------

func (c *Coordinator) startSync() ([]Command, error) {
	startRound := 0
	if c.cfg.Checkpointer != nil {
		next, saved, savedHist, state, err := c.cfg.Checkpointer.Load()
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint load: %w", err)
		}
		if saved != nil {
			if len(saved) != len(c.w) {
				return nil, fmt.Errorf("core: checkpoint has %d params, model has %d", len(saved), len(c.w))
			}
			copy(c.w, saved)
			startRound = next
			if savedHist != nil {
				c.hist.Points = append(c.hist.Points, savedHist.Points...)
				// Checkpointed histories are always synchronous and
				// clock-free (Validate rejects async and vtime runs with a
				// checkpointer); checkpoints written before the staleness
				// and virtual-time columns existed decode them as 0, which
				// would masquerade as tracked values.
				for i := range c.hist.Points {
					c.hist.Points[i].MeanStaleness = math.NaN()
					c.hist.Points[i].MaxStaleness = math.NaN()
					c.hist.Points[i].VirtualSeconds = math.NaN()
					if c.cfg.DeviceBudget == nil {
						// Same defence for the work columns — but only
						// when untracked: a budget run's checkpoints
						// carry real values.
						c.hist.Points[i].MeanEpochsDone = math.NaN()
						c.hist.Points[i].PartialFraction = math.NaN()
					}
				}
			}
			if err := c.restoreState(state); err != nil {
				return nil, err
			}
		}
	}
	c.ckptEvery = c.cfg.CheckpointEvery
	if c.ckptEvery <= 0 {
		c.ckptEvery = c.cfg.EvalEvery
	}
	c.t = startRound
	if startRound == 0 {
		return c.beginEval(0, c.cfg.Mu, math.NaN(), 0, c.nextRound)
	}
	return c.nextRound()
}

// nextRound opens round c.t — or, on a stepped coordinator with rounds
// remaining, pauses and waits for Resume to open it.
func (c *Coordinator) nextRound() ([]Command, error) {
	if c.opts.Stepped && c.t < c.cfg.Rounds {
		c.paused = true
		return []Command{Pause{NextRound: c.t}}, nil
	}
	return c.beginRound()
}

// selectDevices and stragglerPlan share the Env draw implementations
// (env.go), so the coordinator and Env-driven baselines see identical
// environments under the same seed.
func (c *Coordinator) selectDevices(round int) []int {
	return drawSelection(c.cfg, c.selRoot.SplitIndex(round), c.weights, c.n)
}

func (c *Coordinator) stragglerPlan(round int, selected []int) (epochs []int, straggler []bool) {
	return drawStragglerPlan(c.cfg, c.stragRoot.SplitIndex(round), round, selected)
}

// deviceBudget draws the device-side compute budget for one dispatch:
// Config.DeviceBudget's allowance for (tag, device), clamped to
// [1, epochs] — a contacted device always completes at least one epoch
// (a device that cannot reply at all is the network/deadline policies'
// job, not the work axis's). Zero without a budget model, the Dispatch
// field's "unlimited" sentinel. tag is the round for synchronous
// dispatches and the dispatch sequence for asynchronous ones, so the
// draw is deterministic and identical across executors.
func (c *Coordinator) deviceBudget(tag, device, epochs int) int {
	if c.cfg.DeviceBudget == nil {
		return 0
	}
	b := c.cfg.DeviceBudget.EpochBudget(tag, device, epochs)
	if b < 1 {
		b = 1
	}
	if b > epochs {
		b = epochs
	}
	return b
}

// expectedEpochs resolves the work a device will perform for a
// dispatch: the budget when one is set (deviceBudget already clamps it
// to [1, epochs]), the dispatched target otherwise. The wire-facing
// device runtime re-clamps with min() because its inputs are untrusted.
func expectedEpochs(budget, epochs int) int {
	if budget > 0 {
		return budget
	}
	return epochs
}

// realizedEpochs resolves the epochs a reply's device actually ran.
// Without a budget model the dispatched target is authoritative (legacy
// replies need not report EpochsDone); with one, the device's report is,
// clamped to [0, dispatched].
func (c *Coordinator) realizedEpochs(dispatched, reported int) int {
	if c.cfg.DeviceBudget == nil {
		return dispatched
	}
	if reported < 0 {
		return 0
	}
	if reported > dispatched {
		return dispatched
	}
	return reported
}

// beginRound opens round c.t: selects devices, plans stragglers, encodes
// broadcasts (advancing per-device link state sequentially, exactly as
// every executor always has), and emits the round's Dispatches. A round
// whose every device is policy-dropped completes immediately.
func (c *Coordinator) beginRound() ([]Command, error) {
	if c.t >= c.cfg.Rounds {
		c.finished = true
		c.emit(obs.Event{Kind: obs.KindRunDone})
		return []Command{Done{}}, nil
	}
	t := c.t
	mu := c.cfg.Mu
	if c.muc != nil {
		mu = c.muc.Mu()
	}
	selected := c.selectDevices(t)
	epochs, straggler := c.stragglerPlan(t, selected)
	r := &syncRound{
		t:         t,
		mu:        mu,
		selected:  selected,
		epochs:    epochs,
		straggler: straggler,
		downBytes: make([]int64, len(selected)),
		replies:   make([]*syncReply, len(selected)),
	}
	c.round = r
	c.emit(obs.Event{Kind: obs.KindRoundOpen, Round: t, N: len(selected)})
	var cmds []Command
	for i, k := range selected {
		if c.cfg.Straggler == DropStragglers && straggler[i] {
			// Never contacted; accounted at round completion.
			c.emit(obs.Event{Kind: obs.KindDrop, Round: t, Device: k, Disposition: DropPolicy.String()})
			continue
		}
		view := c.w
		var u *comm.Update
		db := c.paramBytes
		if c.links != nil {
			var err error
			u, view, db, err = c.links.broadcast(k, c.w)
			if err != nil {
				return nil, err
			}
		}
		r.downBytes[i] = db
		budget := c.deviceBudget(t, k, epochs[i])
		c.pending[k] = &pendingDispatch{
			device:    k,
			index:     i,
			epochs:    epochs[i],
			expected:  expectedEpochs(budget, epochs[i]),
			budget:    budget,
			version:   t,
			view:      view,
			downBytes: db,
		}
		r.outstanding++
		c.emit(obs.Event{
			Kind: obs.KindDispatch, Round: t, Seq: i, Device: k, Version: t,
			Epochs: epochs[i], Budget: budget, BytesDown: db,
		})
		cmds = append(cmds, Dispatch{
			Seq:          i,
			Round:        t,
			Version:      t,
			Device:       k,
			Epochs:       epochs[i],
			EpochBudget:  budget,
			Mu:           mu,
			LearningRate: c.cfg.LearningRate,
			BatchSize:    c.cfg.BatchSize,
			BatchSeed:    c.batchRoot.SplitIndex(t).SplitIndex(k).State(),
			PrivacyTag:   t,
			Update:       u,
			View:         view,
			DownBytes:    db,
		})
	}
	if r.outstanding == 0 {
		return c.completeRound()
	}
	return cmds, nil
}

// cutSyncRound applies the clock-native straggler policies to a timed
// round: replies race in (arrival, seq) order, the deadline and
// byte-budget cut the tail, the round's critical path becomes its
// duration, and every transmitted reply lands in the Arrivals trace.
func (c *Coordinator) cutSyncRound(r *syncRound) (duration float64, drop []DropReason) {
	start := c.now
	type leg struct {
		i     int
		seq   int
		rel   float64
		bytes int64
		lost  bool
	}
	legs := make([]leg, 0, len(r.selected))
	drop = make([]DropReason, len(r.selected))
	for i := range r.selected {
		rep := r.replies[i]
		if rep == nil {
			drop[i] = DropPolicy
			continue
		}
		legs = append(legs, leg{i: i, seq: rep.seq, rel: rep.rel, bytes: r.downBytes[i] + rep.upBytes, lost: rep.lost})
	}
	sort.Slice(legs, func(a, b int) bool {
		if legs[a].rel != legs[b].rel {
			return legs[a].rel < legs[b].rel
		}
		return legs[a].seq < legs[b].seq
	})
	deadline := c.cfg.VTime.DeadlineSeconds
	var cum int64
	for _, l := range legs {
		// The window budget is consumed in arrival order by every
		// transfer — including replies later lost or late; their bytes
		// moved on the wire too.
		cum += l.bytes
		reason := ArrivalFolded
		switch {
		case l.lost:
			reason = DropLost
		case deadline > 0 && l.rel > deadline:
			reason = DropDeadline
		case c.cfg.VTime.RoundBytes > 0 && cum > c.cfg.VTime.RoundBytes:
			reason = DropBudget
		}
		// Server occupancy: an accepted reply holds the round until it
		// arrives; a late reply holds it until the deadline closes the
		// round; a lost reply until its expected arrival (the server's
		// detection point) or the deadline, whichever is earlier. A
		// budget-dropped reply holds nothing — budget drops are the
		// arrival-order tail, so the budget was spent (and the round
		// closed) before it arrived.
		occ := l.rel
		switch {
		case reason == DropBudget:
			occ = 0
		case deadline > 0 && (reason == DropDeadline || (reason == DropLost && deadline < occ)):
			occ = deadline
		}
		if occ > duration {
			duration = occ
		}
		drop[l.i] = reason
		stale := 0
		if reason != ArrivalFolded {
			stale = -1
		}
		c.hist.Arrivals = append(c.hist.Arrivals, Arrival{
			Device:      r.selected[l.i],
			Seq:         l.seq,
			Sent:        start,
			Arrived:     start + l.rel,
			Staleness:   stale,
			Drop:        reason,
			EpochBudget: r.replies[l.i].budget,
			EpochsDone:  r.replies[l.i].done,
		})
	}
	return duration, drop
}

// completeRound closes the in-flight round: applies the virtual-time cut
// when the replies are timed, performs the resource accounting, folds
// the surviving updates, and walks the post-round sequence (adaptive-μ
// observation, evaluation, checkpointing, next round).
func (c *Coordinator) completeRound() ([]Command, error) {
	r := c.round
	c.round = nil

	var pre []Command
	var vdrop []DropReason
	roundSecs := math.NaN()
	timedRound := false
	for _, rep := range r.replies {
		if rep != nil && rep.timed {
			timedRound = true
			break
		}
	}
	if timedRound {
		duration, drop := c.cutSyncRound(r)
		vdrop = drop
		roundSecs = duration
		pre = append(pre, AdvanceClock{Seconds: duration})
	}

	dropped := func(i int) bool { return c.cfg.Straggler == DropStragglers && r.straggler[i] }
	vDropped := func(i int) bool {
		return vdrop != nil && r.replies[i] != nil && vdrop[i] != ArrivalFolded
	}

	// Resource accounting. Under the legacy (no-codec) model every
	// selected device downloads wᵗ and performs its epoch budget (real
	// devices can't know in advance they'll be dropped) and dropped
	// stragglers' epochs are wasted work. With a codec the link is
	// explicit: only contacted devices move bytes or spend epochs.
	// Contacted devices are charged the epochs they actually ran (the
	// reply's realized work — less than the dispatched target when a
	// device-side budget truncated the solve).
	for i := range r.selected {
		if dropped(i) {
			if c.legacy {
				// The counterfactual charge follows the realized-work
				// rule: a never-contacted device modeled as running
				// anyway would still have stopped at its compute budget.
				ep := expectedEpochs(c.deviceBudget(r.t, r.selected[i], r.epochs[i]), r.epochs[i])
				c.cost.DownlinkBytes += c.paramBytes
				c.cost.DeviceEpochs += ep
				c.cost.WastedEpochs += ep
			}
			continue
		}
		c.cost.DownlinkBytes += r.downBytes[i]
		ep := r.epochs[i]
		if rep := r.replies[i]; rep != nil {
			ep = rep.done
		}
		c.cost.DeviceEpochs += ep
	}

	var params [][]float64
	var nks []float64
	gammaSum, gammaN := 0.0, 0
	for i, rep := range r.replies {
		if rep == nil {
			continue
		}
		if c.trace != nil {
			disp, stale := ArrivalFolded, 0
			if vDropped(i) {
				disp, stale = vdrop[i], -1
			}
			rel := math.NaN()
			if rep.timed {
				rel = rep.rel
			}
			c.emit(obs.Event{
				Kind: obs.KindReply, Seq: i, Device: r.selected[i], Version: r.t,
				Staleness: stale, EpochsDone: rep.done, BytesUp: rep.upBytes,
				BytesDown: r.downBytes[i], Seconds: rel, Disposition: disp.String(),
			})
		}
		if vDropped(i) {
			// Replies cut by a virtual-time policy keep their transfer
			// charges — the bytes moved — except a lost reply's uplink,
			// which never reached the server.
			c.cost.WastedEpochs += rep.done
			if vdrop[i] != DropLost {
				c.cost.UplinkBytes += rep.upBytes
			}
			continue
		}
		c.cost.UplinkBytes += rep.upBytes
		params = append(params, rep.wk)
		nks = append(nks, c.foldWeight(rep.nk, rep.done))
		if c.cfg.DeviceBudget != nil {
			c.work.add(rep.done, r.epochs[i])
		}
		if c.cfg.TrackGamma {
			gammaSum += rep.gamma
			gammaN++
		}
	}
	gamma := math.NaN()
	if gammaN > 0 {
		gamma = gammaSum / float64(gammaN)
	}
	if len(params) > 0 {
		aggregate(c.w, params, nks, c.cfg.Sampling)
		c.emit(obs.Event{Kind: obs.KindFold, Round: r.t, Version: r.t + 1, N: len(params)})
	}
	c.emit(obs.Event{Kind: obs.KindRoundClose, Round: r.t, N: len(params), Seconds: roundSecs})

	outcome := &roundOutcome{t: r.t, mu: r.mu, gamma: gamma, participants: len(params)}
	if c.muc != nil {
		// The adaptive-μ controller observes the loss every round; other
		// configurations only pay for evaluation on recorded rounds.
		c.outcome = outcome
		return append(pre, ObserveLoss{Params: c.w}), nil
	}
	more, err := c.afterObserve(outcome)
	return append(pre, more...), err
}

// roundOutcome carries a completed round's recording inputs across the
// adaptive-μ wait state.
type roundOutcome struct {
	t            int
	mu           float64
	gamma        float64
	participants int
}

// LossObserved answers an ObserveLoss command with the global training
// loss at the requested parameters.
func (c *Coordinator) LossObserved(loss float64) ([]Command, error) {
	if c.muc == nil || c.outcome == nil {
		return nil, errors.New("core: unexpected LossObserved")
	}
	c.muc.Observe(loss)
	out := c.outcome
	c.outcome = nil
	return c.afterObserve(out)
}

// afterObserve continues a completed round past the adaptive-μ
// observation: evaluation if the round is recorded, then checkpointing
// and the next round.
func (c *Coordinator) afterObserve(out *roundOutcome) ([]Command, error) {
	t := out.t
	needEval := (t+1)%c.cfg.EvalEvery == 0 || t == c.cfg.Rounds-1
	if needEval {
		return c.beginEval(t+1, out.mu, out.gamma, out.participants, func() ([]Command, error) {
			return c.afterRecord(t)
		})
	}
	return c.afterRecord(t)
}

// afterRecord finishes round t: persists a checkpoint when due and opens
// the next round.
func (c *Coordinator) afterRecord(t int) ([]Command, error) {
	var pre []Command
	if c.cfg.Checkpointer != nil && ((t+1)%c.ckptEvery == 0 || t == c.cfg.Rounds-1) {
		state, err := c.snapshotState()
		if err != nil {
			return nil, err
		}
		if err := c.cfg.Checkpointer.Save(t+1, c.w, c.hist, state); err != nil {
			return nil, fmt.Errorf("core: checkpoint save: %w", err)
		}
		c.emit(obs.Event{Kind: obs.KindCheckpoint, Round: t + 1})
		pre = append(pre, Checkpoint{NextRound: t + 1})
	}
	c.t = t + 1
	more, err := c.nextRound()
	return append(pre, more...), err
}

// coordinatorState is the gob envelope of the opaque checkpoint bytes:
// everything resumable beyond the parameters and the history.
type coordinatorState struct {
	// Cost is the cumulative resource accounting at save time, so a
	// resumed run's Points continue the same counters instead of
	// restarting at zero.
	Cost Cost
	// Links is the serialized codec link state (nil without codecs).
	Links []byte
	// Device is the serialized device-side link state of the bound
	// in-process device runtime — downlink chains, uplink rounding
	// streams and error-feedback residuals, the eval receive chain (nil
	// without codecs). Since the device runtime owns the uplink encoder
	// state, a codec run cannot resume bit-identically without it.
	Device []byte
	// AdaptiveMu is the adaptive-μ controller's state (nil unless
	// Config.AdaptiveMu), so a resumed adaptive run continues the
	// controller's streak instead of restarting at Config.Mu.
	AdaptiveMu *muState
	// Work is the realized-work accumulator since the last evaluated
	// point (Config.DeviceBudget runs). Without it a checkpoint whose
	// cadence is misaligned with EvalEvery would resume with the next
	// Point's MeanEpochsDone/PartialFraction covering only post-resume
	// rounds.
	Work workStats
}

// snapshotState serializes the coordinator's resumable extras.
func (c *Coordinator) snapshotState() ([]byte, error) {
	st := coordinatorState{Cost: c.cost, Work: c.work}
	if c.muc != nil {
		ms := c.muc.snapshot()
		st.AdaptiveMu = &ms
	}
	if c.links != nil {
		var err error
		if st.Links, err = c.links.snapshot(); err != nil {
			return nil, fmt.Errorf("core: checkpoint link state: %w", err)
		}
	}
	if c.dev != nil {
		var err error
		if st.Device, err = c.dev.snapshotLinks(); err != nil {
			return nil, fmt.Errorf("core: checkpoint device link state: %w", err)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("core: checkpoint state: %w", err)
	}
	return buf.Bytes(), nil
}

// restoreState replays a snapshotState blob. An empty blob (a checkpoint
// written before coordinator state existed) is tolerated for plain runs
// — their cost counters restart at zero — but refused for codec runs,
// whose rounding streams and residuals cannot be reconstructed.
func (c *Coordinator) restoreState(state []byte) error {
	if len(state) == 0 {
		if c.links != nil {
			return errors.New("core: checkpoint carries no codec link state (saved by an older run?)")
		}
		return nil
	}
	var st coordinatorState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&st); err != nil {
		return fmt.Errorf("core: checkpoint state: %w", err)
	}
	c.cost = st.Cost
	c.cost.WireUplinkBytes, c.cost.WireDownlinkBytes = 0, 0
	c.work = st.Work
	if c.muc != nil && st.AdaptiveMu != nil {
		c.muc.restore(*st.AdaptiveMu)
	}
	if c.links != nil {
		if len(st.Links) == 0 {
			return errors.New("core: checkpoint carries no codec link state (saved by an older run?)")
		}
		if err := c.links.restore(st.Links); err != nil {
			return fmt.Errorf("core: checkpoint link state: %w", err)
		}
	}
	if c.dev != nil && c.dev.links != nil {
		if len(st.Device) == 0 {
			return errors.New("core: checkpoint carries no device link state (saved by an older run?)")
		}
		if err := c.dev.restoreLinks(st.Device); err != nil {
			return fmt.Errorf("core: checkpoint device link state: %w", err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Asynchronous protocol
// ---------------------------------------------------------------------

func (c *Coordinator) startAsync() ([]Command, error) {
	c.async = c.cfg.Async.WithDefaults(c.cfg.ClientsPerRound)
	c.flushSize, c.roundSize = 1, c.cfg.ClientsPerRound
	if c.async.Mode == Buffered {
		c.flushSize = c.async.BufferK
		c.roundSize = c.async.BufferK
	}
	c.target = c.cfg.Rounds * c.roundSize
	// Safety valve: virtual-time policies that drop every reply (a byte
	// budget below one round-trip, a deadline below the fastest latency)
	// would otherwise dispatch forever.
	c.maxDispatches = 64*c.target + 1024
	c.idle = newIdleSet(c.n)
	c.idle.fill()
	return c.beginEval(0, c.cfg.Mu, math.NaN(), 0, c.fillAsync)
}

// asyncDispatch ships one dispatch to an idle device chosen by the
// environment streams (uniform or size-weighted over the sorted idle
// set). Selection, straggler budgets, and batch orders are split per
// dispatch sequence — the same derivation every async executor has
// always used. The uniform mode draws rank-then-select on the idle
// set's Fenwick tree, O(log N) per dispatch, consuming exactly the draw
// the old sort-the-idle-slice implementation consumed; the weighted
// mode still walks the ordered idle population because its float prefix
// scan is not tree-decomposable without perturbing the draw.
func (c *Coordinator) asyncDispatch() (Dispatch, error) {
	rng := c.selRoot.SplitIndex(c.dispatchSeq)
	var id int
	if c.cfg.Sampling == WeightedSimpleAvg {
		ids := make([]int, 0, c.idle.len())
		ws := make([]float64, 0, c.idle.len())
		c.idle.ascending(func(d int) {
			ids = append(ids, d)
			ws = append(ws, c.weights[d])
		})
		id = ids[rng.WeightedChoice(ws, 1)[0]]
	} else {
		id = c.idle.kth(rng.Intn(c.idle.len()))
	}
	epochs := c.cfg.LocalEpochs
	if c.cfg.StragglerFraction > 0 {
		srng := c.stragRoot.SplitIndex(c.dispatchSeq)
		if srng.Bernoulli(c.cfg.StragglerFraction) {
			epochs = srng.IntRange(1, c.cfg.LocalEpochs)
		}
	}
	batchSeed := c.batchRoot.SplitIndex(c.dispatchSeq).SplitIndex(id).State()
	seq := c.dispatchSeq
	c.dispatchSeq++
	budget := c.deviceBudget(seq, id, epochs)

	view := c.w
	var u *comm.Update
	db := c.paramBytes
	if c.links != nil {
		var err error
		if u, view, db, err = c.links.broadcast(id, c.w); err != nil {
			return Dispatch{}, err
		}
	} else {
		// Freeze the broadcast at dispatch time: the solve may run
		// concurrently with later model folds, so the device must see the
		// version it was dispatched, not a racing c.w. Pooled — the copy
		// is recycled when the reply resolves (or the worker is lost).
		view = tensor.GetVec(len(c.w))
		copy(view, c.w)
	}
	c.idle.remove(id)
	c.pending[id] = &pendingDispatch{
		device:    id,
		seq:       seq,
		epochs:    epochs,
		expected:  expectedEpochs(budget, epochs),
		budget:    budget,
		version:   c.version,
		view:      view,
		downBytes: db,
		sentAt:    c.now,
	}
	c.emit(obs.Event{
		Kind: obs.KindDispatch, Round: c.folded / c.roundSize, Seq: seq, Device: id,
		Version: c.version, Epochs: epochs, Budget: budget, BytesDown: db,
	})
	return Dispatch{
		Seq:          seq,
		Round:        c.folded / c.roundSize,
		Version:      c.version,
		Device:       id,
		Epochs:       epochs,
		EpochBudget:  budget,
		Mu:           c.cfg.Mu,
		LearningRate: c.cfg.LearningRate,
		BatchSize:    c.cfg.BatchSize,
		BatchSeed:    batchSeed,
		PrivacyTag:   seq,
		Update:       u,
		View:         view,
		DownBytes:    db,
	}, nil
}

// fillAsync keeps MaxInFlight devices busy while the schedule has work
// left, and emits Done once every fold landed and the last reply
// drained.
func (c *Coordinator) fillAsync() ([]Command, error) {
	var cmds []Command
	for c.folded+len(c.pending) < c.target && len(c.pending) < c.async.MaxInFlight && c.idle.len() > 0 {
		if c.cfg.VTime.Enabled() && c.dispatchSeq >= c.maxDispatches {
			return nil, fmt.Errorf("core: async schedule made no progress after %d dispatches — the deadline/byte-budget policy drops every reply", c.dispatchSeq)
		}
		d, err := c.asyncDispatch()
		if err != nil {
			return nil, err
		}
		cmds = append(cmds, d)
	}
	if c.folded >= c.target && len(c.pending) == 0 && !c.finished {
		c.finished = true
		c.emit(obs.Event{Kind: obs.KindRunDone})
		cmds = append(cmds, Done{})
	}
	return cmds, nil
}

// DispatchSent confirms that an asynchronous Dispatch actually left the
// coordinator: only then are its downlink bytes and device epochs
// charged, so a dispatch whose send failed (dead worker) is billed as
// neither traffic nor compute. Drivers call it right after shipping the
// request — in-process drivers, where shipping cannot fail,
// immediately. Synchronous rounds account at round completion instead
// and never call it.
func (c *Coordinator) DispatchSent(device int) {
	in, ok := c.pending[device]
	if !ok || in.charged {
		return
	}
	in.charged = true
	c.cost.DownlinkBytes += in.downBytes
	c.cost.DeviceEpochs += in.expected
}

// handleAsyncReply folds (or discards) one arrived reply: the device's
// model delta, damped by its staleness alpha/(1+s)^p, enters the
// aggregation buffer; the model advances one version per flush; every
// roundSize folds is a milestone, evaluated on the sync cadence.
func (c *Coordinator) handleAsyncReply(r Reply) ([]Command, error) {
	in, ok := c.pending[r.Device]
	if !ok {
		return nil, nil // an evicted worker's late reply: drop
	}
	delete(c.pending, r.Device)
	if c.live[r.Device] {
		c.idle.add(r.Device)
	}
	wk, upWire, err := c.decodeReply(in, r)
	if err != nil {
		return nil, err
	}
	// DispatchSent charged the expected (budget-clamped) work; the
	// device's reply reports the realized work — adjust the charge on
	// any residual difference.
	done := c.realizedEpochs(in.expected, r.EpochsDone)
	if in.charged && done != in.expected {
		c.cost.DeviceEpochs += done - in.expected
	}

	// The deadline judges the reply's own network+compute latency, which
	// the driver stamps in Rel. The clock delta c.now-in.sentAt is NOT
	// equivalent: an evaluation charge can Advance the engine past a
	// scheduled arrival, which then fires "at the present" — inflating
	// the observed delta and dropping a reply that was in time.
	rel := math.NaN()
	if r.Timed {
		rel = r.Rel
	}
	reason := ArrivalFolded
	staleness := c.version - in.version
	switch {
	case r.Lost:
		reason = DropLost
	case c.cfg.VTime.DeadlineSeconds > 0 && rel > c.cfg.VTime.DeadlineSeconds:
		reason = DropDeadline
	}
	if reason == ArrivalFolded && c.folded >= c.target {
		reason = DropDrain
	}
	// The byte-budget window consumes each reply's full round-trip
	// (downlink + uplink) in arrival order — a dispatch's downlink is
	// charged to the window its reply lands in, not the window it was
	// sent from.
	roundTrip := in.downBytes + upWire
	if reason == ArrivalFolded && c.cfg.VTime.RoundBytes > 0 && c.windowBytes+roundTrip > c.cfg.VTime.RoundBytes {
		reason = DropBudget
	}

	if c.trace != nil {
		stale := staleness
		if reason != ArrivalFolded {
			stale = -1
		}
		c.emit(obs.Event{
			Kind: obs.KindReply, Seq: in.seq, Device: in.device, Version: in.version,
			Staleness: stale, EpochsDone: done, BytesUp: upWire, BytesDown: in.downBytes,
			Seconds: rel, Disposition: reason.String(),
		})
	}

	var cmds []Command
	switch reason {
	case ArrivalFolded:
		c.cost.UplinkBytes += upWire
		c.windowBytes += roundTrip
		delta := tensor.GetVec(len(wk))
		for i := range wk {
			delta[i] = wk[i] - in.view[i]
		}
		c.buffer = append(c.buffer, StaleDelta{Delta: delta, Weight: c.foldWeight(c.sizes[r.Device], done), Version: in.version})
		if c.cfg.DeviceBudget != nil {
			c.work.add(done, in.epochs)
		}
		c.folded++
		if len(c.buffer) >= c.flushSize {
			if foldStaleDeltas(c.w, c.buffer, c.version, c.cfg.Sampling, c.async.Alpha, c.async.StalenessExponent, &c.stats) {
				c.version++
				c.emit(obs.Event{Kind: obs.KindFold, Round: c.folded / c.roundSize, Version: c.version, N: len(c.buffer)})
			}
			// The fold copied everything it needed into c.w; the buffered
			// deltas are dead.
			for _, sd := range c.buffer {
				tensor.PutVec(sd.Delta)
			}
			c.buffer = c.buffer[:0]
		}
		if c.folded%c.roundSize == 0 {
			c.windowBytes = 0 // the byte-budget window is per milestone
			milestone := c.folded / c.roundSize
			c.emit(obs.Event{Kind: obs.KindRoundClose, Round: milestone, N: c.roundSize, Seconds: math.NaN()})
			if milestone%c.cfg.EvalEvery == 0 || milestone == c.cfg.Rounds {
				// A milestone always folds exactly roundSize replies —
				// the async analogue of the sync per-round participant
				// count.
				more, err := c.beginEval(milestone, c.cfg.Mu, math.NaN(), c.roundSize, c.fillAsync)
				if err != nil {
					return nil, err
				}
				cmds = append(cmds, more...)
			}
		}
	case DropLost:
		// The reply vanished in transit: its uplink never reached the
		// coordinator, so no uplink bytes — only its downlink consumed
		// the window, and its work is waste.
		c.windowBytes += in.downBytes
		c.cost.WastedEpochs += done
		staleness = -1
	default: // DropDeadline, DropBudget, DropDrain
		// The transfer happened; the coordinator ignored it.
		c.cost.UplinkBytes += upWire
		c.windowBytes += roundTrip
		c.cost.WastedEpochs += done
		staleness = -1
	}
	// Past the disposition switch both the decoded solution and the
	// frozen broadcast view are dead (a fold copied what it needed into
	// its delta); recycle them.
	tensor.PutVec(wk)
	tensor.PutVec(in.view)
	if c.timed() {
		c.hist.Arrivals = append(c.hist.Arrivals, Arrival{
			Device:      in.device,
			Seq:         in.seq,
			Sent:        in.sentAt,
			Arrived:     c.now,
			Staleness:   staleness,
			Drop:        reason,
			EpochBudget: in.budget,
			EpochsDone:  done,
		})
	}
	if c.evalWait == nil {
		more, err := c.fillAsync()
		if err != nil {
			return nil, err
		}
		cmds = append(cmds, more...)
	}
	return cmds, nil
}

// WorkerLost evicts devices whose worker died (asynchronous runs): their
// in-flight work is charged as waste and aggregation continues on the
// survivors. Losing the last device fails the run.
func (c *Coordinator) WorkerLost(devices []int) ([]Command, error) {
	if !c.isAsync {
		return nil, errors.New("core: the synchronous protocol cannot continue without its workers")
	}
	for _, id := range devices {
		if id < 0 || id >= c.n || !c.live[id] {
			continue
		}
		c.live[id] = false
		c.liveDevices--
		c.idle.remove(id)
		c.emit(obs.Event{Kind: obs.KindWorkerLost, Device: id})
		if in, ok := c.pending[id]; ok {
			// The expected (budget-clamped) epochs stay charged; whatever
			// the dead worker computed is lost — waste. A dispatch whose
			// send was never confirmed carries no charges to waste.
			if in.charged {
				c.cost.WastedEpochs += in.expected
			}
			tensor.PutVec(in.view)
			delete(c.pending, id)
		}
	}
	if c.liveDevices == 0 {
		return nil, errors.New("core: aggregation lost every worker")
	}
	if c.evalWait != nil {
		return nil, nil
	}
	return c.fillAsync()
}

// ---------------------------------------------------------------------
// Shared reply and evaluation machinery
// ---------------------------------------------------------------------

// decodeReply recovers the device's solution from a Reply: encoded
// uplinks decode against the exact broadcast view the device trained
// from; raw Params pass through.
func (c *Coordinator) decodeReply(in *pendingDispatch, r Reply) (wk []float64, upWire int64, err error) {
	if r.Update != nil {
		if c.links == nil {
			return nil, 0, errors.New("core: encoded reply on a run without codec links")
		}
		wk, err = c.links.uplinkDecode(in.device, r.Update, in.view)
		if err != nil {
			return nil, 0, err
		}
		return wk, r.Update.WireBytes(), nil
	}
	return r.Params, c.paramBytes, nil
}

// HandleReply delivers one device's training result. Replies arriving
// while an evaluation is pending are queued and processed after
// EvalDone, in arrival order.
func (c *Coordinator) HandleReply(r Reply) ([]Command, error) {
	if !c.started {
		return nil, errors.New("core: reply before Start")
	}
	if c.evalWait != nil {
		c.queued = append(c.queued, r)
		return nil, nil
	}
	if c.isAsync {
		return c.handleAsyncReply(r)
	}
	in, ok := c.pending[r.Device]
	if !ok {
		return nil, fmt.Errorf("core: reply from device %d with no outstanding dispatch", r.Device)
	}
	delete(c.pending, r.Device)
	wk, upWire, err := c.decodeReply(in, r)
	if err != nil {
		return nil, err
	}
	c.round.replies[in.index] = &syncReply{
		wk:      wk,
		nk:      c.sizes[r.Device],
		done:    c.realizedEpochs(in.expected, r.EpochsDone),
		budget:  in.budget,
		gamma:   r.Gamma,
		upBytes: upWire,
		seq:     r.Seq,
		rel:     r.Rel,
		lost:    r.Lost,
		timed:   r.Timed,
	}
	c.round.outstanding--
	if c.round.outstanding > 0 {
		return nil, nil
	}
	return c.completeRound()
}

// beginEval opens one evaluation: the global model is encoded once on
// the shared eval link (broadcast semantics) and the Evaluate command
// carries both the encoded update for wire drivers and the decoded view
// in-process drivers measure at.
func (c *Coordinator) beginEval(round int, mu, gamma float64, participants int, after func() ([]Command, error)) ([]Command, error) {
	c.evalSeq++
	params := c.w
	var u *comm.Update
	wire := c.paramBytes
	if c.links != nil {
		var err error
		u, params, err = c.links.evalBroadcast(c.w)
		if err != nil {
			return nil, err
		}
		wire = u.WireBytes()
		// Analytic eval accounting exists only under the explicit codec
		// link model (legacy accounting predates eval encoding).
		if !c.legacy {
			c.cost.EvalBytes += wire
		}
	}
	c.evalWait = &evalPending{round: round, mu: mu, gamma: gamma, participants: participants, after: after}
	return []Command{Evaluate{
		Round:              round,
		Seq:                c.evalSeq,
		Update:             u,
		Params:             params,
		WireBytes:          wire,
		TrackDissimilarity: c.cfg.TrackDissimilarity,
	}}, nil
}

// EvalDone answers an Evaluate command: the point is recorded with the
// coordinator's cumulative cost and staleness statistics, then the run
// continues (queued replies first, in arrival order).
func (c *Coordinator) EvalDone(e EvalResult) ([]Command, error) {
	ew := c.evalWait
	if ew == nil {
		return nil, errors.New("core: unexpected EvalDone")
	}
	c.evalWait = nil

	p := Point{
		Round:           ew.round,
		TrainLoss:       e.Loss,
		TestAcc:         e.Acc,
		GradVar:         math.NaN(),
		B:               math.NaN(),
		Mu:              ew.mu,
		MeanGamma:       ew.gamma,
		Participants:    ew.participants,
		MeanStaleness:   math.NaN(),
		MaxStaleness:    math.NaN(),
		VirtualSeconds:  c.now,
		MeanEpochsDone:  math.NaN(),
		PartialFraction: math.NaN(),
		Cost:            c.cost,
	}
	if c.cfg.DeviceBudget != nil && c.work.N > 0 {
		p.MeanEpochsDone = float64(c.work.Done) / float64(c.work.N)
		p.PartialFraction = float64(c.work.Partial) / float64(c.work.N)
	}
	c.work = workStats{}
	if c.cfg.TrackDissimilarity {
		p.GradVar, p.B = e.GradVar, e.B
	}
	p.Cost.WireUplinkBytes = e.WireUplinkBytes
	p.Cost.WireDownlinkBytes = e.WireDownlinkBytes
	if c.isAsync {
		if c.stats.n > 0 {
			p.MeanStaleness = c.stats.sum / float64(c.stats.n)
			p.MaxStaleness = c.stats.max
		}
		c.stats = foldStats{}
	}
	c.hist.Points = append(c.hist.Points, p)
	c.emit(obs.Event{Kind: obs.KindEval, Round: ew.round, Loss: e.Loss, Acc: e.Acc})

	cmds, err := ew.after()
	if err != nil {
		return nil, err
	}
	for len(c.queued) > 0 && c.evalWait == nil {
		r := c.queued[0]
		c.queued = c.queued[1:]
		more, err := c.HandleReply(r)
		if err != nil {
			return nil, err
		}
		cmds = append(cmds, more...)
	}
	return cmds, nil
}

// foldWeight resolves one update's aggregation weight under
// Config.FoldWeight: the device's n_k, or its realized local epochs.
func (c *Coordinator) foldWeight(nk float64, done int) float64 {
	if c.cfg.FoldWeight == WeightByEpochs {
		return float64(done)
	}
	return nk
}

// aggregate folds a synchronous round's updates into w in place.
func aggregate(w []float64, params [][]float64, nks []float64, scheme SamplingScheme) {
	switch scheme {
	case WeightedSimpleAvg:
		tensor.Mean(w, params)
	default:
		tensor.WeightedMean(w, params, nks)
	}
}
