package core

// Trace replay: re-enact a recorded run's arrivals against a fresh
// coordinator under a (possibly different) policy, without running a
// single local solve.
//
// A JSONL trace (internal/obs, decoded by internal/obs/tracefile)
// records every dispatch and every reply's realized latency, loss
// status, and work. The coordinator is sans-I/O, so "what would a
// 30-second deadline have done to this run?" is pure event-feeding:
// rebuild the coordinator with the alternative Config, let it make its
// own dispatch decisions (same Seed → same selection, straggler, and
// budget draws), and answer each Dispatch with a zero-delta reply
// stamped with the recorded arrival. Zero-delta replies keep the model
// parameters inert — folds still advance versions and the fold
// schedule, arrivals, dispositions, byte and epoch accounting all
// re-derive under the new policy — while the expensive half of the
// simulator (solves, evals) is skipped entirely. Replaying under the
// recorded policy reproduces the original fold schedule and every
// arrival-derived History column exactly (asserted by the
// replay-equivalence test and the CI bench-smoke step); loss and
// accuracy are the one thing replay cannot know, so evaluated points
// carry NaN.

import (
	"errors"
	"fmt"
	"math"

	"fedprox/internal/model"
	"fedprox/internal/obs"
	"fedprox/internal/tensor"
)

// replayEntry is one recorded dispatch→reply round trip of a device.
type replayEntry struct {
	version int
	seq     int
	epochs  int
	budget  int
	done    int
	rel     float64 // the reply's own recorded latency
	lost    bool
	replied bool // false when the worker died before replying
}

// replaySource is the recorded arrival tape, keyed by device: the j-th
// dispatch to device d in the replay consumes d's j-th recorded round
// trip. When an alternative policy extends the schedule past the
// recording, a device's tape cycles (its observed latencies repeat);
// a device the recording never contacted samples the whole recorded
// population round-robin, offset by its index, so the draw stays
// deterministic.
type replaySource struct {
	byDevice map[int][]*replayEntry
	cursor   map[int]int
	all      []*replayEntry
	fallback map[int]int
}

// newReplaySource indexes one recorded run's dispatch/reply events.
func newReplaySource(events []obs.Event) (*replaySource, error) {
	s := &replaySource{
		byDevice: make(map[int][]*replayEntry),
		cursor:   make(map[int]int),
		fallback: make(map[int]int),
	}
	open := make(map[int]*replayEntry)
	for _, e := range events {
		switch e.Kind {
		case obs.KindDispatch:
			if open[e.Device] != nil {
				return nil, fmt.Errorf("core: trace dispatches device %d twice with no reply between", e.Device)
			}
			ent := &replayEntry{
				version: e.Version, seq: e.Seq,
				epochs: e.Epochs, budget: e.Budget,
				rel: math.NaN(),
			}
			s.byDevice[e.Device] = append(s.byDevice[e.Device], ent)
			s.all = append(s.all, ent)
			open[e.Device] = ent
		case obs.KindReply:
			ent := open[e.Device]
			if ent == nil || ent.version != e.Version || ent.seq != e.Seq {
				return nil, fmt.Errorf("core: trace reply (device %d, version %d, seq %d) matches no outstanding dispatch", e.Device, e.Version, e.Seq)
			}
			ent.replied = true
			ent.done = e.EpochsDone
			ent.rel = e.Seconds
			ent.lost = e.Disposition == DropLost.String()
			delete(open, e.Device)
			if math.IsNaN(ent.rel) {
				return nil, errors.New("core: trace was recorded without a virtual clock (replies carry no rel); replay needs timed arrivals")
			}
		case obs.KindWorkerLost:
			// The in-flight dispatch (if any) never resolves; its entry
			// stays unreplied and the replay's scheduled worker-lost
			// event cleans up the pending state exactly as the original.
			delete(open, e.Device)
		}
	}
	if len(s.all) == 0 {
		return nil, errors.New("core: trace contains no dispatches to replay")
	}
	return s, nil
}

// next returns the recorded round trip backing the replay's next
// dispatch to device.
func (s *replaySource) next(device int) *replayEntry {
	if tape := s.byDevice[device]; len(tape) > 0 {
		i := s.cursor[device] % len(tape)
		s.cursor[device]++
		return tape[i]
	}
	i := (device + s.fallback[device]) % len(s.all)
	s.fallback[device]++
	return s.all[i]
}

// replayWorkerEvent is a recorded worker-lost or worker-readmit,
// re-enacted at its recorded virtual time.
type replayWorkerEvent struct {
	t      float64
	device int
	lost   bool
}

func workerEvents(events []obs.Event) ([]replayWorkerEvent, error) {
	var out []replayWorkerEvent
	for _, e := range events {
		switch e.Kind {
		case obs.KindWorkerLost, obs.KindWorkerReadmit:
			if math.IsNaN(e.Time) {
				return nil, errors.New("core: trace has untimed worker-lost/readmit events; replay needs timed arrivals")
			}
			out = append(out, replayWorkerEvent{t: e.Time, device: e.Device, lost: e.Kind == obs.KindWorkerLost})
		}
	}
	return out, nil
}

// replayReject returns the reason cfg cannot drive a replay, or nil.
func replayReject(cfg Config) error {
	switch {
	case !cfg.VTime.Enabled():
		return errors.New("core: Replay requires Config.VTime.Model — recorded arrivals re-enact on the virtual clock")
	case cfg.Codec.Enabled() || cfg.DownlinkCodec.Enabled():
		return errors.New("core: Replay cannot re-enact codec runs — encoded uplinks need the recorded payloads, which traces do not carry")
	case cfg.AdaptiveMu:
		return errors.New("core: Replay cannot drive adaptive-mu — the controller observes losses, which replay does not recompute")
	case cfg.TrackGamma:
		return errors.New("core: Replay cannot track gamma — inexactness probes need real local solves")
	}
	return nil
}

// Replay re-runs one recorded trace's arrivals through a fresh
// coordinator configured with cfg — the recorded policy for an exact
// re-derivation, or an alternative (DeadlineSeconds, RoundBytes, Async
// alpha/staleness-exponent/BufferK, Straggler mode, ...) for a what-if.
// recorded is one run's decoded event stream (split multi-run traces
// with tracefile.Runs). No solver, metric, or privacy code runs; the
// returned History's Loss/Acc columns are NaN and everything else is
// re-derived under cfg.
func Replay(mdl model.Model, fl Fleet, cfg Config, recorded []obs.Event) (*History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := replayReject(cfg); err != nil {
		return nil, err
	}
	for _, e := range recorded {
		if e.Kind == obs.KindRunStart && e.N != fl.NumDevices() {
			return nil, fmt.Errorf("core: trace was recorded over %d devices but the replay fleet has %d", e.N, fl.NumDevices())
		}
	}
	src, err := newReplaySource(recorded)
	if err != nil {
		return nil, err
	}
	wes, err := workerEvents(recorded)
	if err != nil {
		return nil, err
	}

	coord, err := NewCoordinator(mdl, cfg, CoordinatorOptions{NumDevices: fl.NumDevices()})
	if err != nil {
		return nil, err
	}
	regs := make([]DeviceReg, fl.NumDevices())
	for i := range regs {
		regs[i] = DeviceReg{ID: i, TrainSize: fl.TrainSize(i)}
	}
	if _, err := coord.RegisterWorker(regs); err != nil {
		return nil, err
	}
	vt := newVtimer(cfg.VTime, int64(mdl.NumParams()*8))
	coord.Tick(vt.eng.Now())

	if cfg.Async.Enabled() {
		return replayAsync(coord, fl, vt, src, wes)
	}
	if len(wes) > 0 {
		return nil, errors.New("core: trace carries worker-lost events but cfg is synchronous — the sync protocol cannot lose workers")
	}
	return replaySync(coord, vt, src)
}

// replayEval is the evaluation result replay reports: the model was
// never trained, so there is nothing truthful to measure.
func replayEval(v Evaluate) EvalResult {
	res := EvalResult{Loss: math.NaN(), Acc: math.NaN()}
	if v.TrackDissimilarity {
		res.GradVar, res.B = math.NaN(), math.NaN()
	}
	return res
}

// zeroDeltaReply synthesizes the reply replay feeds for one dispatch:
// the broadcast view echoed back (a zero delta — folds advance the
// version without moving the parameters), the deterministic
// budget-clamped work, and the recorded arrival stamp. The view is
// copied because the folds' accumulators zero their destination (the
// live parameter vector) before reading inputs.
func zeroDeltaReply(d Dispatch, seq int, ent *replayEntry) Reply {
	params := tensor.GetVec(len(d.View))
	copy(params, d.View)
	rel, lost := ent.rel, ent.lost
	if !ent.replied {
		// The recording's worker died mid-flight. Sync recordings never
		// produce this; it is reachable only when a what-if replays an
		// async recording synchronously — model the silence as a lost
		// reply with zero latency.
		rel, lost = 0, true
	}
	return Reply{
		Device:     d.Device,
		Params:     params,
		EpochsDone: expectedEpochs(d.EpochBudget, d.Epochs),
		Gamma:      math.NaN(),
		Timed:      true,
		Seq:        seq,
		Rel:        rel,
		Lost:       lost,
	}
}

// replaySync mirrors RunFleet's synchronous command loop with the
// solve/eval work replaced by recorded arrivals and NaN evaluations.
func replaySync(coord *Coordinator, vt *vtimer, src *replaySource) (*History, error) {
	cmds, err := coord.Start()
	if err != nil {
		return nil, err
	}
	for {
		var dispatches []Dispatch
		var next []Command
		for _, cmd := range cmds {
			switch v := cmd.(type) {
			case Dispatch:
				dispatches = append(dispatches, v)
			case Evaluate:
				vt.chargeEval(v.WireBytes)
				coord.Tick(vt.eng.Now())
				more, err := coord.EvalDone(replayEval(v))
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			case ObserveLoss:
				return nil, errors.New("core: replay cannot observe losses (adaptive-mu is rejected up front)")
			case AdvanceClock:
				vt.eng.Advance(v.Seconds)
				coord.Tick(vt.eng.Now())
			case Checkpoint:
				// Never emitted: Validate rejects checkpointers under vtime.
			case Done:
				return coord.History(), nil
			}
		}
		if len(dispatches) > 0 {
			// Reply in dispatch order with the per-transfer sequence
			// numbers the recording's driver allocated (one global counter
			// across rounds) so the arrival race sorts identically.
			for _, d := range dispatches {
				ent := src.next(d.Device)
				seq := vt.seq
				vt.seq++
				more, err := coord.HandleReply(zeroDeltaReply(d, seq, ent))
				if err != nil {
					return nil, err
				}
				next = append(next, more...)
			}
		} else if len(next) == 0 {
			return nil, errors.New("core: replay stalled with no commands")
		}
		cmds = next
	}
}

// replayAsync mirrors runAsyncVTime's event loop: each Dispatch
// schedules its zero-delta reply at the recorded relative latency, and
// recorded worker losses/re-admissions fire at their recorded times.
func replayAsync(coord *Coordinator, fl Fleet, vt *vtimer, src *replaySource, wes []replayWorkerEvent) (*History, error) {
	var (
		queue  []Command
		runErr error
		done   bool
	)
	queue, err := coord.Start()
	if err != nil {
		return nil, err
	}
	for _, we := range wes {
		vt.eng.Schedule(we.t, func() {
			coord.Tick(vt.eng.Now())
			var more []Command
			var err error
			if we.lost {
				more, err = coord.WorkerLost([]int{we.device})
			} else {
				more, err = coord.RegisterWorker([]DeviceReg{{ID: we.device, TrainSize: fl.TrainSize(we.device)}})
			}
			if err != nil && runErr == nil {
				runErr = err
				return
			}
			queue = append(queue, more...)
		})
	}
	for {
		for len(queue) > 0 && runErr == nil {
			cmd := queue[0]
			queue = queue[1:]
			switch v := cmd.(type) {
			case Dispatch:
				coord.DispatchSent(v.Device)
				ent := src.next(v.Device)
				if !ent.replied {
					// The recorded worker died before replying; the
					// scheduled worker-lost event clears the pending
					// dispatch exactly as the original run did.
					continue
				}
				seq := v.Seq
				arrive := vt.eng.Now() + ent.rel
				r := zeroDeltaReply(v, seq, ent)
				vt.eng.Schedule(arrive, func() {
					coord.Tick(vt.eng.Now())
					more, err := coord.HandleReply(r)
					if err != nil && runErr == nil {
						runErr = err
						return
					}
					queue = append(queue, more...)
				})
			case Evaluate:
				vt.chargeEval(v.WireBytes)
				coord.Tick(vt.eng.Now())
				more, err := coord.EvalDone(replayEval(v))
				if err != nil {
					runErr = err
					break
				}
				queue = append(queue, more...)
			case Done:
				done = true
			case Checkpoint, ObserveLoss, AdvanceClock:
				// Never emitted for asynchronous schedules.
			}
		}
		if runErr != nil {
			return nil, runErr
		}
		if done {
			return coord.History(), nil
		}
		if !vt.eng.Step() {
			return nil, errors.New("core: replay stalled with no replies in flight")
		}
	}
}
