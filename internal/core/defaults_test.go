package core

import (
	"runtime"
	"testing"
)

// TestWithDefaultsValidates is the normalization contract promised on
// WithDefaults: from any valid base, zeroing the optional knobs and
// normalizing produces a Config that Validate accepts, with every
// zero-selects-default rule resolved to its documented value.
func TestWithDefaultsValidates(t *testing.T) {
	cases := []struct {
		name string
		base func() Config
	}{
		{"fedavg", func() Config { return FedAvg(10, 5, 3, 0.01) }},
		{"fedprox", func() Config { return FedProx(10, 5, 3, 0.01, 1) }},
		{"zeroed-knobs", func() Config {
			c := FedProx(10, 5, 3, 0.01, 1)
			c.EvalEvery = 0
			c.MuStep = 0
			c.MuPatience = 0
			c.Parallelism = 0
			return c
		}},
		{"negative-knobs", func() Config {
			c := FedAvg(10, 5, 3, 0.01)
			c.EvalEvery = -1
			c.Parallelism = -4
			return c
		}},
		{"async", func() Config {
			c := FedProx(10, 5, 3, 0.01, 1)
			c.Async = AsyncConfig{Mode: AsyncTotal}
			c.VTime = VTimeConfig{Model: vtimeModel(20, 1)}
			return c
		}},
		{"default-config", DefaultConfig},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.base().WithDefaults()
			if err := c.Validate(); err != nil {
				t.Fatalf("Validate rejects WithDefaults output: %v", err)
			}
			if c.EvalEvery < 1 {
				t.Errorf("EvalEvery not defaulted: %d", c.EvalEvery)
			}
			if c.MuStep == 0 || c.MuPatience == 0 {
				t.Errorf("mu controller knobs not defaulted: step %g patience %d", c.MuStep, c.MuPatience)
			}
			if c.Parallelism < 1 {
				t.Errorf("Parallelism not defaulted: %d", c.Parallelism)
			}
			// Idempotence: normalizing twice changes nothing.
			if again := c.WithDefaults(); again != c {
				t.Error("WithDefaults is not idempotent")
			}
		})
	}
}

// TestWithDefaultsResolvedValues pins the documented defaults.
func TestWithDefaultsResolvedValues(t *testing.T) {
	c := FedAvg(10, 5, 3, 0.01)
	c.EvalEvery, c.MuStep, c.MuPatience, c.Parallelism = 0, 0, 0, 0
	d := c.WithDefaults()
	if d.EvalEvery != 1 {
		t.Errorf("EvalEvery = %d, want 1", d.EvalEvery)
	}
	if d.MuStep != 0.1 {
		t.Errorf("MuStep = %g, want 0.1", d.MuStep)
	}
	if d.MuPatience != 5 {
		t.Errorf("MuPatience = %d, want 5", d.MuPatience)
	}
	if d.Parallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism = %d, want GOMAXPROCS %d", d.Parallelism, runtime.GOMAXPROCS(0))
	}
	// Set knobs pass through untouched.
	c.EvalEvery, c.MuStep, c.MuPatience, c.Parallelism = 3, 0.5, 2, 2
	d = c.WithDefaults()
	if d.EvalEvery != 3 || d.MuStep != 0.5 || d.MuPatience != 2 || d.Parallelism != 2 {
		t.Errorf("explicit knobs rewritten: %+v", d)
	}
}

// TestDefaultConfigIsPaperBaseline: DefaultConfig is a valid, fully
// normalized FedAvg at the synthetic-suite scale.
func TestDefaultConfigIsPaperBaseline(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("DefaultConfig does not validate: %v", err)
	}
	if c.Rounds != 200 || c.ClientsPerRound != 10 || c.LocalEpochs != 20 || c.LearningRate != 0.01 {
		t.Errorf("DefaultConfig scale drifted: %+v", c)
	}
	if c.Mu != 0 {
		t.Errorf("DefaultConfig must be FedAvg (mu 0), got mu %g", c.Mu)
	}
}
