// Package checkpoint persists and restores federated training state so
// long runs survive process restarts and results can be archived next to
// the experiment output.
//
// A checkpoint carries the global model parameters, the round cursor, the
// full evaluated history, and the configuration fingerprint used to
// detect mismatched resumes. The format is gob with a magic header and a
// version byte; all state is self-contained (no external references), so
// a checkpoint written by the simulator can seed a fednet deployment and
// vice versa.
package checkpoint

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"fedprox/internal/core"
)

// magic guards against feeding arbitrary gob streams into Load.
const magic = "FEDPROXCKPT"

// version is bumped on incompatible layout changes.
const version = 1

// Fingerprint identifies the run a checkpoint belongs to. Two runs with
// equal fingerprints may resume each other's checkpoints.
type Fingerprint struct {
	// Dataset names the federated dataset (e.g. "Synthetic(1,1)").
	Dataset string
	// NumParams is the model's parameter count.
	NumParams int
	// Label is the method label (core.Label of the configuration).
	Label string
	// Seed is the environment seed.
	Seed uint64
}

// State is everything needed to resume a run.
type State struct {
	// Fingerprint identifies the run.
	Fingerprint Fingerprint
	// NextRound is the first round that has not yet executed.
	NextRound int
	// Params is the global model wᵗ at NextRound.
	Params []float64
	// History is the evaluated trajectory so far.
	History core.History
	// Coordinator is the coordinator's opaque resumable state beyond
	// params and history: cumulative cost counters plus, for codec runs,
	// the serialized link state (rounding-stream positions,
	// error-feedback residuals, broadcast shadows). Checkpoints written
	// before it existed decode it as nil; core tolerates that for plain
	// runs and refuses to resume a codec run from such a file.
	Coordinator []byte
}

// Validate reports structural problems with the state.
func (s *State) Validate() error {
	switch {
	case s.NextRound < 0:
		return fmt.Errorf("checkpoint: negative round %d", s.NextRound)
	case len(s.Params) == 0:
		return errors.New("checkpoint: empty parameters")
	case s.Fingerprint.NumParams != len(s.Params):
		return fmt.Errorf("checkpoint: fingerprint says %d params, state has %d",
			s.Fingerprint.NumParams, len(s.Params))
	}
	return nil
}

// header is the on-disk preamble.
type header struct {
	Magic   string
	Version int
}

// Save writes the state to w.
func Save(w io.Writer, s *State) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version}); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("checkpoint: write state: %w", err)
	}
	return nil
}

// Load reads a state from r, verifying the header.
func Load(r io.Reader) (*State, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("checkpoint: read header: %w", err)
	}
	if h.Magic != magic {
		return nil, errors.New("checkpoint: bad magic (not a checkpoint file)")
	}
	if h.Version != version {
		return nil, fmt.Errorf("checkpoint: version %d not supported (want %d)", h.Version, version)
	}
	var s State
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: read state: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// SaveFile writes the state atomically: to a temp file in the same
// directory, then rename, so a crash mid-write never corrupts the
// previous checkpoint.
func SaveFile(path string, s *State) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Save(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Compatible reports whether a checkpoint may resume a run with the given
// fingerprint, with a reason when it may not.
func Compatible(s *State, fp Fingerprint) error {
	if s.Fingerprint != fp {
		return fmt.Errorf("checkpoint: fingerprint mismatch: saved %+v, run %+v", s.Fingerprint, fp)
	}
	return nil
}

// FileCheckpointer adapts the file format to core.Checkpointer so
// core.Run can persist and resume transparently. The opaque coordinator
// state carries the cumulative cost counters, codec link state, and the
// adaptive-μ controller, so a resumed run continues all of them.
type FileCheckpointer struct {
	// Path is the checkpoint file location.
	Path string
	// Fingerprint guards against resuming the wrong run.
	Fingerprint Fingerprint
}

var _ core.Checkpointer = (*FileCheckpointer)(nil)

// File returns a checkpointer persisting to path for the run identified
// by fp.
func File(path string, fp Fingerprint) *FileCheckpointer {
	return &FileCheckpointer{Path: path, Fingerprint: fp}
}

// Load implements core.Checkpointer. A missing file means "start fresh";
// an existing file with a mismatched fingerprint is an error.
func (f *FileCheckpointer) Load() (int, []float64, *core.History, []byte, error) {
	st, err := LoadFile(f.Path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil, nil, nil, nil
		}
		return 0, nil, nil, nil, err
	}
	if err := Compatible(st, f.Fingerprint); err != nil {
		return 0, nil, nil, nil, err
	}
	hist := st.History
	return st.NextRound, st.Params, &hist, st.Coordinator, nil
}

// Save implements core.Checkpointer with an atomic file write.
func (f *FileCheckpointer) Save(nextRound int, params []float64, hist *core.History, state []byte) error {
	st := &State{
		Fingerprint: f.Fingerprint,
		NextRound:   nextRound,
		Params:      append([]float64(nil), params...),
		Coordinator: append([]byte(nil), state...),
	}
	st.Fingerprint.NumParams = len(params)
	if hist != nil {
		st.History = *hist
	}
	return SaveFile(f.Path, st)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
