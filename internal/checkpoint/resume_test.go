package checkpoint

import (
	"path/filepath"
	"testing"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
)

// TestResumeMatchesUninterruptedRun is the integration guarantee: running
// 10 rounds straight equals running 5 rounds, "crashing", and resuming
// from the checkpoint for 5 more — bit for bit on the final loss.
func TestResumeMatchesUninterruptedRun(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	base := core.FedProx(10, 5, 3, 0.01, 1)
	base.EvalEvery = 5

	straight, err := core.Run(mdl, fed, base)
	if err != nil {
		t.Fatal(err)
	}

	fp := Fingerprint{
		Dataset:   fed.Name,
		NumParams: mdl.NumParams(),
		Label:     core.Label(base),
		Seed:      base.Seed,
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")

	// Phase 1: first 5 rounds, then "crash".
	half := base
	half.Rounds = 5
	half.Checkpointer = File(path, fp)
	if _, err := core.Run(mdl, fed, half); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume to the full 10 rounds.
	full := base
	full.Checkpointer = File(path, fp)
	resumed, err := core.Run(mdl, fed, full)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := resumed.Final().TrainLoss, straight.Final().TrainLoss; got != want {
		t.Fatalf("resumed final loss %.17g != straight %.17g", got, want)
	}
	if got, want := resumed.Final().Round, straight.Final().Round; got != want {
		t.Fatalf("resumed final round %d != %d", got, want)
	}
	if len(resumed.Points) != len(straight.Points) {
		t.Fatalf("resumed history has %d points, straight %d", len(resumed.Points), len(straight.Points))
	}
}

func TestResumeRejectsWrongFingerprint(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	cfg := core.FedProx(4, 5, 2, 0.01, 1)
	cfg.EvalEvery = 2
	fp := Fingerprint{Dataset: fed.Name, NumParams: mdl.NumParams(), Label: core.Label(cfg), Seed: cfg.Seed}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg.Checkpointer = File(path, fp)
	if _, err := core.Run(mdl, fed, cfg); err != nil {
		t.Fatal(err)
	}
	// Resume under a different label must fail loudly, not silently train.
	wrong := fp
	wrong.Label = "FedAvg"
	cfg.Checkpointer = File(path, wrong)
	if _, err := core.Run(mdl, fed, cfg); err == nil {
		t.Fatal("mismatched fingerprint resumed")
	}
}

func TestFreshRunWithCheckpointerStartsAtZero(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	cfg := core.FedProx(3, 5, 2, 0.01, 0)
	fp := Fingerprint{Dataset: fed.Name, NumParams: mdl.NumParams(), Label: core.Label(cfg), Seed: cfg.Seed}
	cfg.Checkpointer = File(filepath.Join(t.TempDir(), "run.ckpt"), fp)
	h, err := core.Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Points[0].Round != 0 {
		t.Fatalf("fresh run did not record round 0: %+v", h.Points[0])
	}
}

// TestCompletedRunResumesAsNoOp: resuming a finished run returns the
// saved history without executing any rounds.
func TestCompletedRunResumesAsNoOp(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	cfg := core.FedProx(4, 5, 2, 0.01, 0)
	cfg.EvalEvery = 2
	fp := Fingerprint{Dataset: fed.Name, NumParams: mdl.NumParams(), Label: core.Label(cfg), Seed: cfg.Seed}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg.Checkpointer = File(path, fp)
	first, err := core.Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := core.Run(mdl, fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Final().TrainLoss != first.Final().TrainLoss {
		t.Fatal("no-op resume changed the final loss")
	}
	if len(again.Points) != len(first.Points) {
		t.Fatalf("no-op resume history %d points, want %d", len(again.Points), len(first.Points))
	}
}

// TestCodecResumeMatchesUninterruptedRun is the link-state checkpoint
// guarantee: codec runs carry rounding-stream positions, error-feedback
// residuals, and broadcast shadows in the checkpoint, so a crash-resume
// cycle reproduces the uninterrupted compressed trajectory bit for bit.
func TestCodecResumeMatchesUninterruptedRun(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	for _, spec := range []comm.Spec{
		{Name: "qsgd", Bits: 8},    // stochastic rounding streams
		{Name: "topk", TopK: 0.25}, // error-feedback residuals
		{Name: "delta"},            // chained broadcast shadows
	} {
		t.Run(spec.Name, func(t *testing.T) {
			base := core.FedProx(10, 5, 3, 0.01, 1)
			base.EvalEvery = 5
			base.Codec = spec
			if spec.Name == "topk" {
				base.DownlinkCodec = comm.Spec{Name: "raw"}
			}

			straight, err := core.Run(mdl, fed, base)
			if err != nil {
				t.Fatal(err)
			}
			fp := Fingerprint{Dataset: fed.Name, NumParams: mdl.NumParams(), Label: core.Label(base), Seed: base.Seed}
			path := filepath.Join(t.TempDir(), "run.ckpt")

			half := base
			half.Rounds = 5
			half.Checkpointer = File(path, fp)
			if _, err := core.Run(mdl, fed, half); err != nil {
				t.Fatal(err)
			}
			full := base
			full.Checkpointer = File(path, fp)
			resumed, err := core.Run(mdl, fed, full)
			if err != nil {
				t.Fatal(err)
			}

			if len(resumed.Points) != len(straight.Points) {
				t.Fatalf("resumed history has %d points, straight %d", len(resumed.Points), len(straight.Points))
			}
			for i := range straight.Points {
				sp, rp := straight.Points[i], resumed.Points[i]
				if sp.TrainLoss != rp.TrainLoss || sp.TestAcc != rp.TestAcc {
					t.Fatalf("round %d: resumed (%.17g, %g) != straight (%.17g, %g)",
						sp.Round, rp.TrainLoss, rp.TestAcc, sp.TrainLoss, sp.TestAcc)
				}
			}
			// The byte accounting must survive the crash too: the final
			// cumulative counters coincide because the resumed run
			// replays neither transfers nor charges.
			if resumed.Final().Cost != straight.Final().Cost {
				t.Fatalf("resumed cost %+v != straight %+v", resumed.Final().Cost, straight.Final().Cost)
			}
		})
	}
}

// TestCodecRefusesLinklessCheckpoint: a codec run must not resume from a
// checkpoint that carries no link state (e.g. written by a pre-link-state
// build) — silently restarting the streams would corrupt the chain.
func TestCodecRefusesLinklessCheckpoint(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	base := core.FedProx(6, 5, 2, 0.01, 1)
	base.EvalEvery = 3
	base.Codec = comm.Spec{Name: "qsgd", Bits: 8}

	fp := Fingerprint{Dataset: fed.Name, NumParams: mdl.NumParams(), Label: core.Label(base), Seed: base.Seed}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	half := base
	half.Rounds = 3
	half.Checkpointer = File(path, fp)
	if _, err := core.Run(mdl, fed, half); err != nil {
		t.Fatal(err)
	}
	// Strip the link state, as an old-format checkpoint would decode.
	st, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st.Coordinator = nil
	if err := SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	full := base
	full.Checkpointer = File(path, fp)
	if _, err := core.Run(mdl, fed, full); err == nil {
		t.Fatal("codec run resumed from a checkpoint without link state")
	}
}

// TestAdaptiveMuResumeMatchesUninterruptedRun: the adaptive-mu
// controller's state (current mu, loss memory, decrease streak) rides in
// the coordinator checkpoint, so a crash-resume cycle reproduces the
// uninterrupted adaptive trajectory bit for bit.
func TestAdaptiveMuResumeMatchesUninterruptedRun(t *testing.T) {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.12))
	mdl := linear.ForDataset(fed)
	base := core.FedProx(10, 5, 3, 0.01, 1)
	base.EvalEvery = 5
	base.AdaptiveMu = true
	base.MuStep = 0.5
	base.MuPatience = 1 // aggressive controller so divergence would show

	straight, err := core.Run(mdl, fed, base)
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint{Dataset: fed.Name, NumParams: mdl.NumParams(), Label: core.Label(base), Seed: base.Seed}
	path := filepath.Join(t.TempDir(), "run.ckpt")

	half := base
	half.Rounds = 5
	half.Checkpointer = File(path, fp)
	if _, err := core.Run(mdl, fed, half); err != nil {
		t.Fatal(err)
	}
	full := base
	full.Checkpointer = File(path, fp)
	resumed, err := core.Run(mdl, fed, full)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Points) != len(straight.Points) {
		t.Fatalf("resumed history has %d points, straight %d", len(resumed.Points), len(straight.Points))
	}
	for i := range straight.Points {
		sp, rp := straight.Points[i], resumed.Points[i]
		if sp.TrainLoss != rp.TrainLoss || sp.Mu != rp.Mu {
			t.Fatalf("round %d: resumed (loss %.17g, mu %g) != straight (loss %.17g, mu %g)",
				sp.Round, rp.TrainLoss, rp.Mu, sp.TrainLoss, sp.Mu)
		}
	}
}
