package checkpoint

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"fedprox/internal/core"
)

func sampleState() *State {
	return &State{
		Fingerprint: Fingerprint{
			Dataset:   "Synthetic(1,1)",
			NumParams: 3,
			Label:     "FedProx(mu=1)",
			Seed:      7,
		},
		NextRound: 42,
		Params:    []float64{0.1, -2.5, math.Pi},
		History: core.History{
			Label: "FedProx(mu=1)",
			Points: []core.Point{
				{Round: 0, TrainLoss: 2.3, TestAcc: 0.1, GradVar: math.NaN(), B: math.NaN(), MeanGamma: math.NaN()},
				{Round: 40, TrainLoss: 0.5, TestAcc: 0.8, GradVar: math.NaN(), B: math.NaN(), MeanGamma: math.NaN()},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := sampleState()
	if err := Save(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Fatalf("fingerprint: %+v != %+v", got.Fingerprint, want.Fingerprint)
	}
	if got.NextRound != want.NextRound {
		t.Fatalf("round: %d != %d", got.NextRound, want.NextRound)
	}
	for i := range want.Params {
		if got.Params[i] != want.Params[i] {
			t.Fatalf("param %d: %g != %g", i, got.Params[i], want.Params[i])
		}
	}
	if len(got.History.Points) != 2 || got.History.Points[1].TestAcc != 0.8 {
		t.Fatalf("history corrupted: %+v", got.History)
	}
	// NaN fields must survive (gob encodes NaN fine).
	if !math.IsNaN(got.History.Points[0].GradVar) {
		t.Fatal("NaN GradVar did not survive the round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	s := sampleState()
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the magic string region.
	b := buf.Bytes()
	for i := range b {
		if b[i] == 'F' {
			b[i] = 'X'
			break
		}
	}
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted magic accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []func(*State){
		func(s *State) { s.NextRound = -1 },
		func(s *State) { s.Params = nil },
		func(s *State) { s.Fingerprint.NumParams = 99 },
	}
	for i, mutate := range cases {
		s := sampleState()
		mutate(s)
		var buf bytes.Buffer
		if err := Save(&buf, s); err == nil {
			t.Errorf("case %d: invalid state saved", i)
		}
	}
}

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	want := sampleState()
	if err := SaveFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextRound != want.NextRound {
		t.Fatalf("round trip through file lost state")
	}
	// Overwrite must succeed and leave no temp litter.
	want.NextRound = 43
	if err := SaveFile(path, want); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1 (no temp litter)", len(entries))
	}
	got, err = LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextRound != 43 {
		t.Fatalf("overwrite not visible: round %d", got.NextRound)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompatible(t *testing.T) {
	s := sampleState()
	if err := Compatible(s, s.Fingerprint); err != nil {
		t.Fatalf("matching fingerprint rejected: %v", err)
	}
	other := s.Fingerprint
	other.Seed = 99
	if err := Compatible(s, other); err == nil {
		t.Fatal("mismatched fingerprint accepted")
	}
}

func TestDirOf(t *testing.T) {
	if got := dirOf("/a/b/c.ckpt"); got != "/a/b" {
		t.Fatalf("dirOf = %q", got)
	}
	if got := dirOf("c.ckpt"); got != "." {
		t.Fatalf("dirOf bare = %q", got)
	}
}
