// Package mlp implements a multi-layer perceptron with tanh hidden
// activations and a softmax head, with manual backpropagation.
//
// The paper's convex experiments use multinomial logistic regression; the
// FedProx framework itself is model-agnostic and its analysis explicitly
// covers non-convex F_k (Theorem 4). This package provides the natural
// non-convex counterpart for the dense-input datasets, used by the
// ext-nonconvex ablation to show the straggler and proximal results
// survive non-convexity on the same data.
//
// Parameters are flat: for each layer, W (out×in) row-major then b (out).
package mlp

import (
	"math"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

// Model is a dense feed-forward classifier.
type Model struct {
	// sizes is [in, hidden..., classes].
	sizes   []int
	offsets []layerOffsets
	nParams int
}

type layerOffsets struct {
	w, b    int
	in, out int
}

var _ model.Model = (*Model)(nil)

// New returns an MLP with the given layer sizes: input dimension, one or
// more hidden widths, and the class count last.
func New(sizes ...int) *Model {
	if len(sizes) < 2 {
		panic("mlp: need at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic("mlp: non-positive layer size")
		}
	}
	if sizes[len(sizes)-1] < 2 {
		panic("mlp: need at least 2 classes")
	}
	m := &Model{sizes: append([]int(nil), sizes...)}
	off := 0
	for l := 0; l+1 < len(sizes); l++ {
		lo := layerOffsets{in: sizes[l], out: sizes[l+1], w: off}
		off += lo.in * lo.out
		lo.b = off
		off += lo.out
		m.offsets = append(m.offsets, lo)
	}
	m.nParams = off
	return m
}

// ForDataset returns an MLP sized for a dense federated dataset with the
// given hidden widths.
func ForDataset(f *data.Federated, hidden ...int) *Model {
	if f.FeatureDim == 0 {
		panic("mlp: dataset is not dense")
	}
	sizes := append([]int{f.FeatureDim}, hidden...)
	sizes = append(sizes, f.NumClasses)
	return New(sizes...)
}

// NumParams returns the flat parameter count.
func (m *Model) NumParams() int { return m.nParams }

// InitParams returns Glorot-normal initialized weights with zero biases.
func (m *Model) InitParams(rng *frand.Source) []float64 {
	w := make([]float64, m.nParams)
	for _, lo := range m.offsets {
		std := math.Sqrt(2 / float64(lo.in+lo.out))
		rng.NormVec(w[lo.w:lo.w+lo.in*lo.out], 0, std)
	}
	return w
}

func (m *Model) layer(w []float64, l int) (tensor.Mat, []float64) {
	lo := m.offsets[l]
	return tensor.MatView(w[lo.w:lo.w+lo.in*lo.out], lo.out, lo.in), w[lo.b : lo.b+lo.out]
}

// forward computes logits; when acts is non-nil it records the
// post-activation output of every hidden layer (acts[0] is the input).
func (m *Model) forward(w []float64, x []float64, acts [][]float64, logits []float64) {
	cur := x
	for l := 0; l < len(m.offsets); l++ {
		W, b := m.layer(w, l)
		last := l == len(m.offsets)-1
		var out []float64
		if last {
			out = logits
		} else {
			out = make([]float64, m.offsets[l].out)
		}
		tensor.MatVecAdd(out, W, cur, b)
		if !last {
			for i := range out {
				out[i] = math.Tanh(out[i])
			}
		}
		if acts != nil {
			acts[l] = cur
		}
		cur = out
	}
}

// Loss returns mean cross-entropy over the batch.
func (m *Model) Loss(w []float64, batch []data.Example) float64 {
	if len(batch) == 0 {
		return 0
	}
	if len(w) != m.nParams {
		panic("mlp: parameter vector size mismatch")
	}
	logits := make([]float64, m.sizes[len(m.sizes)-1])
	total := 0.0
	for _, ex := range batch {
		m.forward(w, ex.X, nil, logits)
		total += tensor.LogSumExp(logits) - logits[ex.Y]
	}
	return total / float64(len(batch))
}

// Grad writes the mean gradient into dst and returns the mean loss.
func (m *Model) Grad(dst, w []float64, batch []data.Example) float64 {
	if len(dst) != m.nParams {
		panic("mlp: gradient buffer size mismatch")
	}
	tensor.Zero(dst)
	if len(batch) == 0 {
		return 0
	}
	classes := m.sizes[len(m.sizes)-1]
	logits := make([]float64, classes)
	probs := make([]float64, classes)
	nLayers := len(m.offsets)
	acts := make([][]float64, nLayers)
	total := 0.0
	inv := 1 / float64(len(batch))
	for _, ex := range batch {
		m.forward(w, ex.X, acts, logits)
		total += tensor.LogSumExp(logits) - logits[ex.Y]
		tensor.Softmax(probs, logits)
		probs[ex.Y] -= 1

		// Backprop: delta starts as dL/dlogits.
		delta := probs
		for l := nLayers - 1; l >= 0; l-- {
			W, _ := m.layer(w, l)
			gW, gb := m.layer(dst, l)
			tensor.AddOuter(gW, inv, delta, acts[l])
			tensor.Axpy(inv, delta, gb)
			if l == 0 {
				break
			}
			// dL/d(activation of layer l-1) through Wᵀ, then through tanh'.
			prev := make([]float64, m.offsets[l].in)
			tensor.MatTVec(prev, W, delta)
			h := acts[l] // tanh outputs of layer l-1
			for i := range prev {
				prev[i] *= 1 - h[i]*h[i]
			}
			delta = prev
		}
	}
	return total * inv
}

// Predict returns the argmax class for one example.
func (m *Model) Predict(w []float64, ex data.Example) int {
	logits := make([]float64, m.sizes[len(m.sizes)-1])
	m.forward(w, ex.X, nil, logits)
	return tensor.ArgMax(logits)
}
