package mlp

import (
	"math"
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
)

func randBatch(rng *frand.Source, n, dim, classes int) []data.Example {
	out := make([]data.Example, n)
	for i := range out {
		x := rng.NormVec(make([]float64, dim), 0, 1)
		out[i] = data.Example{X: x, Y: rng.Intn(classes)}
	}
	return out
}

func TestNumParamsLayout(t *testing.T) {
	m := New(5, 7, 3)
	// layer0: 7*5 + 7; layer1: 3*7 + 3.
	if got, want := m.NumParams(), 35+7+21+3; got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestNewPanics(t *testing.T) {
	cases := [][]int{{5}, {5, 0, 3}, {5, -1, 3}, {5, 4, 1}}
	for i, sizes := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%v) did not panic", i, sizes)
				}
			}()
			New(sizes...)
		}()
	}
}

// TestGradMatchesNumerical validates the backprop against central finite
// differences for a 2-hidden-layer network.
func TestGradMatchesNumerical(t *testing.T) {
	rng := frand.New(71)
	m := New(5, 6, 4, 3)
	batch := randBatch(rng, 4, 5, 3)
	w := m.InitParams(rng)
	grad := make([]float64, m.NumParams())
	m.Grad(grad, w, batch)
	const h = 1e-6
	for i := 0; i < m.NumParams(); i++ {
		orig := w[i]
		w[i] = orig + h
		up := m.Loss(w, batch)
		w[i] = orig - h
		down := m.Loss(w, batch)
		w[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("grad[%d] = %g, numerical %g", i, grad[i], num)
		}
	}
}

func TestGradReturnsLoss(t *testing.T) {
	rng := frand.New(73)
	m := New(4, 5, 3)
	batch := randBatch(rng, 6, 4, 3)
	w := m.InitParams(rng)
	grad := make([]float64, m.NumParams())
	if gl, l := m.Grad(grad, w, batch), m.Loss(w, batch); math.Abs(gl-l) > 1e-12 {
		t.Fatalf("Grad loss %g != Loss %g", gl, l)
	}
}

func TestEmptyBatch(t *testing.T) {
	m := New(3, 4, 2)
	w := m.InitParams(frand.New(1))
	grad := make([]float64, m.NumParams())
	grad[0] = 5
	if l := m.Grad(grad, w, nil); l != 0 || grad[0] != 0 {
		t.Fatal("empty batch not handled")
	}
	if l := m.Loss(w, nil); l != 0 {
		t.Fatal("empty loss not zero")
	}
}

// TestSolvesXOR: the canonical non-convex sanity check no linear model can
// pass.
func TestSolvesXOR(t *testing.T) {
	m := New(2, 8, 2)
	batch := []data.Example{
		{X: []float64{0, 0}, Y: 0},
		{X: []float64{0, 1}, Y: 1},
		{X: []float64{1, 0}, Y: 1},
		{X: []float64{1, 1}, Y: 0},
	}
	w := m.InitParams(frand.New(5))
	grad := make([]float64, m.NumParams())
	for step := 0; step < 2000; step++ {
		m.Grad(grad, w, batch)
		for i := range w {
			w[i] -= 0.5 * grad[i]
		}
	}
	if acc := model.Accuracy(m, w, batch); acc != 1 {
		t.Fatalf("XOR accuracy = %g, want 1", acc)
	}
}

func TestForDataset(t *testing.T) {
	fed := &data.Federated{Name: "d", NumClasses: 4, FeatureDim: 9,
		Shards: []*data.Shard{{Train: []data.Example{{X: make([]float64, 9), Y: 0}}}}}
	m := ForDataset(fed, 16, 8)
	if m.NumParams() != 16*9+16+8*16+8+4*8+4 {
		t.Fatalf("ForDataset params = %d", m.NumParams())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("sequence dataset did not panic")
		}
	}()
	ForDataset(&data.Federated{VocabSize: 5, NumClasses: 2}, 4)
}

func TestDeterministicInit(t *testing.T) {
	m := New(4, 5, 3)
	a := m.InitParams(frand.New(9))
	b := m.InitParams(frand.New(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("init not deterministic")
		}
	}
	// Biases start at zero.
	for _, lo := range m.offsets {
		for j := 0; j < lo.out; j++ {
			if a[lo.b+j] != 0 {
				t.Fatal("bias not zero-initialized")
			}
		}
	}
}
