package mlp

import (
	"fedprox/internal/data"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

var _ model.Model32 = (*Model)(nil)

func (m *Model) layer32(w tensor.Vec32, l int) (tensor.Mat32, tensor.Vec32) {
	lo := m.offsets[l]
	return tensor.MatView32(w[lo.w:lo.w+lo.in*lo.out], lo.out, lo.in), w[lo.b : lo.b+lo.out]
}

// Grad32 is the batched float32 backpropagation: one activation panel
// per layer (B×width, pooled), forward as panel·Wᵀ multiplies, and the
// backward pass pushing a whole B×width delta panel through each layer —
// so every weight row is streamed against the full minibatch instead of
// re-entering the per-example rank-one loop of the f64 Grad.
func (m *Model) Grad32(dst, w tensor.Vec32, batch []data.Example) float32 {
	if len(dst) != m.nParams {
		panic("mlp: gradient buffer size mismatch")
	}
	tensor.Zero32(dst)
	if len(batch) == 0 {
		return 0
	}
	B := len(batch)
	L := len(m.offsets)

	// A[l] holds the layer-l activations for the whole batch: A[0] the
	// narrowed inputs, A[1..L-1] tanh outputs, A[L] logits-then-probs.
	bufs := make([]tensor.Vec32, L+1)
	A := make([]tensor.Mat32, L+1)
	for l := 0; l <= L; l++ {
		bufs[l] = tensor.GetVec32(B * m.sizes[l])
		A[l] = tensor.MatView32(bufs[l], B, m.sizes[l])
	}
	for e, ex := range batch {
		tensor.Narrow(A[0].Row(e), ex.X)
	}
	for l := 0; l < L; l++ {
		W, b := m.layer32(w, l)
		tensor.MatMulNT32(A[l+1], A[l], W, b)
		if l < L-1 {
			out := bufs[l+1]
			for i, v := range out {
				out[i] = tensor.Tanh32(v)
			}
		}
	}

	var total float32
	for e, ex := range batch {
		row := A[L].Row(e)
		total += tensor.CrossEntropySoftmax32(row, row, ex.Y)
		row[ex.Y] -= 1
	}

	inv := 1 / float32(B)
	delta := A[L] // dL/dlogits panel; aliases bufs[L]
	var spent tensor.Vec32
	for l := L - 1; l >= 0; l-- {
		W, _ := m.layer32(w, l)
		gW, gb := m.layer32(dst, l)
		tensor.AddOuterPanel32(gW, inv, delta, A[l])
		for e := 0; e < B; e++ {
			tensor.Axpy32(inv, delta.Row(e), gb)
		}
		if l == 0 {
			break
		}
		// dL/d(activation of layer l-1): delta·W, then through tanh'.
		next := tensor.GetVec32(B * m.offsets[l].in)
		D := tensor.MatView32(next, B, m.offsets[l].in)
		tensor.MatMul32(D, delta, W)
		h := bufs[l] // tanh outputs of layer l-1, same B×in layout
		for i, v := range next {
			next[i] = v * (1 - h[i]*h[i])
		}
		if spent != nil {
			tensor.PutVec32(spent)
		}
		spent = next
		delta = D
	}
	if spent != nil {
		tensor.PutVec32(spent)
	}
	for l := range bufs {
		tensor.PutVec32(bufs[l])
	}
	return total * inv
}
